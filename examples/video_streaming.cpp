/// \file video_streaming.cpp
/// Scenario from the paper's introduction: a cluster serving MPEG-4 video
/// while best-effort traffic fills the remaining bandwidth. Compares how
/// each switch architecture holds the 10 ms frame-latency target as load
/// rises, and shows the frame-latency CDF at full load — the shape of the
/// paper's Figure 3.
///
///   ./video_streaming [--paper]
#include <cstdio>

#include "core/experiment.hpp"
#include "core/network_simulator.hpp"

using namespace dqos;
using namespace dqos::literals;

int main(int argc, char** argv) {
  const bool paper_scale = has_flag(argc, argv, "--paper");

  std::printf("Video streaming under contention: frame latency vs load\n");
  std::printf("(frame budget 10 ms; EDF architectures should pin latency "
              "there regardless of load)\n");

  SimConfig base = paper_scale ? SimConfig::paper(SwitchArch::kAdvanced2Vc, 1.0)
                               : SimConfig::small(SwitchArch::kAdvanced2Vc, 1.0);
  base.measure = paper_scale ? 60_ms : 40_ms;
  base.drain = 15_ms;

  const SwitchArch archs[] = {SwitchArch::kTraditional2Vc, SwitchArch::kAdvanced2Vc};
  const double loads[] = {0.5, 1.0};
  const auto points = run_sweep(base, archs, loads);

  print_series(stdout, points, "Average video frame latency", "ms",
               video_frame_latency_ms, 2);

  for (const auto& p : points) {
    if (p.load != 1.0) continue;
    const auto& frames = p.report.metrics->message_latency(TrafficClass::kMultimedia);
    print_cdf(stdout, frames,
              std::string("Frame latency CDF at 100% load — ") +
                  std::string(to_string(p.arch)) + " [us]",
              15);
    std::printf("P[frame latency <= 10 ms] = %.3f\n", frames.cdf_at(10'000.0));
  }
  return 0;
}
