/// \file custom_fabric.cpp
/// Composing the library's lower-level pieces by hand — no NetworkSimulator.
/// Builds a 4-port Advanced-2VC switch with two hosts, opens one video flow
/// (frame-budget deadlines + eligible time) and one control flow, and
/// traces every delivery. Start here if you want to embed dqos components
/// in your own simulator.
#include <cstdio>

#include "host/host.hpp"
#include "switchfab/switch.hpp"
#include "traffic/cbr_source.hpp"

using namespace dqos;
using namespace dqos::literals;

int main() {
  Simulator sim;
  PacketPool pool;

  // --- platform: two hosts on a 4-port Advanced 2 VCs switch -------------
  SwitchParams sp;
  sp.arch = SwitchArch::kAdvanced2Vc;
  Switch sw(sim, /*id=*/100, /*num_ports=*/4, sp);

  HostParams hp;
  Host sender(sim, 0, hp, LocalClock{}, pool);
  Host receiver(sim, 1, hp, LocalClock(/*offset=*/7'777_us), pool);  // skewed!

  const Bandwidth bw = Bandwidth::from_gbps(8.0);
  std::vector<std::unique_ptr<Channel>> channels;
  // sender <-> switch port 0
  channels.push_back(std::make_unique<Channel>(sim, bw, 100_ns, 2, 8192));
  channels.back()->connect_to(&sw, 0);
  sender.attach_uplink(channels.back().get());
  sw.attach_input(0, channels.back().get());
  channels.push_back(std::make_unique<Channel>(sim, bw, 100_ns, 2, 8192));
  channels.back()->connect_to(&sender, 0);
  sw.attach_output(0, channels.back().get());
  sender.attach_downlink(channels.back().get());
  // receiver <-> switch port 1
  channels.push_back(std::make_unique<Channel>(sim, bw, 100_ns, 2, 8192));
  channels.back()->connect_to(&sw, 1);
  receiver.attach_uplink(channels.back().get());
  sw.attach_input(1, channels.back().get());
  channels.push_back(std::make_unique<Channel>(sim, bw, 100_ns, 2, 8192));
  channels.back()->connect_to(&receiver, 0);
  sw.attach_output(1, channels.back().get());
  receiver.attach_downlink(channels.back().get());

  // --- flows --------------------------------------------------------------
  FlowSpec video;
  video.id = 1;
  video.src = 0;
  video.dst = 1;
  video.tclass = TrafficClass::kMultimedia;
  video.vc = kRegulatedVc;
  video.policy = DeadlinePolicy::kFrameBudget;
  video.deadline_bw = Bandwidth::from_bytes_per_sec(3e6);
  video.frame_budget = 10_ms;
  video.use_eligible_time = true;
  video.route.push_hop(1);  // switch output port toward the receiver
  sender.open_flow(video);

  FlowSpec control;
  control.id = 2;
  control.src = 0;
  control.dst = 1;
  control.tclass = TrafficClass::kControl;
  control.vc = kRegulatedVc;
  control.policy = DeadlinePolicy::kControlLatency;
  control.deadline_bw = bw;  // link rate: maximum priority (§3.1)
  control.route.push_hop(1);
  sender.open_flow(control);

  receiver.set_message_callback([&](const MessageDelivered& m) {
    std::printf("  [%8.3f ms] %-11s message done: %6llu B in %8.1f us\n",
                m.completed.ms(), std::string(to_string(m.tclass)).c_str(),
                static_cast<unsigned long long>(m.bytes),
                (m.completed - m.created).us());
  });

  // --- workload: one 80 KB video frame per 40 ms, control pings ----------
  std::printf("custom fabric: 2 hosts, 1 Advanced-2VC switch, receiver clock "
              "skewed by 7.777 ms\n\n");
  CbrParams frames;
  frames.message_bytes = 80 * 1024;
  frames.period = 40_ms;
  frames.tclass = TrafficClass::kMultimedia;
  CbrSource video_src(sim, sender, Rng(1), nullptr, 1, frames);
  CbrParams pings;
  pings.message_bytes = 256;
  pings.period = 5_ms;
  pings.phase = 1_ms;
  pings.tclass = TrafficClass::kControl;
  CbrSource ping_src(sim, sender, Rng(2), nullptr, 2, pings);

  video_src.start(TimePoint::zero() + 120_ms);
  ping_src.start(TimePoint::zero() + 120_ms);
  sim.run();

  std::printf("\nframes take ~10 ms (the budget), pings take microseconds —\n"
              "deadline scheduling, not FIFO order, decides. out-of-order "
              "deliveries: %llu\n",
              static_cast<unsigned long long>(receiver.out_of_order_deliveries()));
  return 0;
}
