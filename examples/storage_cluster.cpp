/// \file storage_cluster.cpp
/// The MareNostrum motivation from §1: instead of three physical networks
/// (compute / storage / management), run management (Control), storage
/// (Best-effort bulk transfers) and backup (Background) over ONE fabric
/// with deadline-based QoS. Shows that management latency stays flat while
/// storage and backup split the leftover bandwidth by their configured
/// deadline weights (3:1 here).
///
///   ./storage_cluster [--paper]
#include <cstdio>

#include "core/experiment.hpp"
#include "core/network_simulator.hpp"

using namespace dqos;
using namespace dqos::literals;

int main(int argc, char** argv) {
  const bool paper_scale = has_flag(argc, argv, "--paper");

  SimConfig base = paper_scale ? SimConfig::paper(SwitchArch::kAdvanced2Vc, 1.0)
                               : SimConfig::small(SwitchArch::kAdvanced2Vc, 1.0);
  // No video in this cluster: management 10%, storage 60%, backup 30%.
  base.enable_video = false;
  base.class_share = {0.10, 0.0, 0.60, 0.30};
  base.best_effort_weight = 3.0;  // storage gets 3x backup's deadline weight
  base.background_weight = 1.0;

  std::printf("Consolidated storage cluster (one fabric instead of three "
              "networks)\n");
  std::printf("management 10%% / storage 60%% / backup 30%%, storage:backup "
              "deadline weights 3:1\n");

  const SwitchArch archs[] = {SwitchArch::kTraditional2Vc, SwitchArch::kAdvanced2Vc};
  const double loads[] = {0.6, 1.0, 1.4};  // include overload
  const auto points = run_sweep(base, archs, loads);

  print_series(stdout, points, "Management (control) avg latency", "us",
               control_latency_us, 1);
  print_series(stdout, points, "Storage accepted throughput / offered", "frac",
               best_effort_throughput_frac, 3);
  print_series(stdout, points, "Backup accepted throughput / offered", "frac",
               background_throughput_frac, 3);

  std::printf("\nUnder overload the EDF fabric differentiates storage from "
              "backup by deadline weight;\nthe traditional fabric serves "
              "both classes identically (same VC, no deadlines).\n");
  return 0;
}
