/// \file trace_analysis.cpp
/// Where does latency come from? Attaches a PacketTracer to a full
/// simulation and decomposes control-packet latency into its stages:
/// NIC queueing (created -> injected), network transit (injected ->
/// delivered), and per-hop residence — comparing Traditional vs Advanced
/// to show *where* the EDF architecture wins.
///
///   ./trace_analysis [--paper]
#include <cstdio>

#include "core/experiment.hpp"
#include "core/network_simulator.hpp"
#include "trace/tracer.hpp"
#include "util/stats.hpp"

using namespace dqos;
using namespace dqos::literals;

namespace {

StreamingStats summarize(const std::vector<double>& samples) {
  StreamingStats s;
  for (const double v : samples) s.add(v);
  return s;
}

void analyze(SwitchArch arch, const SimConfig& base) {
  SimConfig cfg = base;
  cfg.arch = arch;
  NetworkSimulator net(cfg);
  PacketTracer tracer(1u << 22);
  for (std::uint32_t h = 0; h < net.num_hosts(); ++h) net.host(h).set_tracer(&tracer);
  for (std::uint32_t s = 0; s < net.num_switches(); ++s) {
    net.fabric_switch(s).set_tracer(&tracer);
  }
  (void)net.run();

  // Stage decomposition over every traced packet.
  const auto nic = summarize(
      tracer.stage_latencies_us(TraceEvent::kCreated, TraceEvent::kInjected));
  const auto net_transit = summarize(
      tracer.stage_latencies_us(TraceEvent::kInjected, TraceEvent::kDelivered));
  const auto hop = summarize(
      tracer.stage_latencies_us(TraceEvent::kHopArrival, TraceEvent::kLinkDepart));

  std::printf("%-18s | NIC queueing %8.1f us avg (max %9.1f) | network "
              "%7.1f us avg | per-hop residence %6.2f us avg\n",
              std::string(to_string(arch)).c_str(), nic.mean(), nic.max(),
              net_transit.mean(), hop.mean());
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = has_flag(argc, argv, "--paper");
  SimConfig base = paper ? SimConfig::paper(SwitchArch::kAdvanced2Vc, 1.0)
                         : SimConfig::small(SwitchArch::kAdvanced2Vc, 1.0);
  base.measure = 5_ms;  // tracing every packet event is memory-heavy
  base.drain = 2_ms;

  std::printf("Latency decomposition from packet traces (all classes, 100%% "
              "load):\n\n");
  analyze(SwitchArch::kTraditional2Vc, base);
  analyze(SwitchArch::kAdvanced2Vc, base);

  std::printf("\nReading: under Traditional the per-hop residence and NIC "
              "queueing balloon for\neveryone (FIFO sharing); under the EDF "
              "fabric regulated packets move hop-to-hop\nin near-constant "
              "time and the *deadline*, not congestion, sets delivery.\n");
  return 0;
}
