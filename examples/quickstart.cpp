/// \file quickstart.cpp
/// Minimal end-to-end use of the dqos library: build the paper's platform
/// (scaled down by default; pass --paper for the full 128-endpoint MIN),
/// offer the Table 1 traffic mix at 80% load through the Advanced 2 VCs
/// architecture, and print the per-class QoS indices of §5.
///
///   ./quickstart [--paper]
#include <cstdio>

#include "core/experiment.hpp"
#include "core/network_simulator.hpp"
#include "util/table.hpp"

using namespace dqos;

int main(int argc, char** argv) {
  const bool paper_scale = has_flag(argc, argv, "--paper");
  SimConfig cfg = paper_scale ? SimConfig::paper(SwitchArch::kAdvanced2Vc, 0.8)
                              : SimConfig::small(SwitchArch::kAdvanced2Vc, 0.8);

  std::printf("dqos quickstart: %u hosts, %s, load %.0f%%\n", cfg.num_hosts(),
              std::string(to_string(cfg.arch)).c_str(), cfg.load * 100.0);

  NetworkSimulator net(cfg);
  net.prepare_workload();  // admit the static Table 1 flows (run() would too)
  std::printf("topology: %s, %u switches, %llu flows admitted\n",
              net.topology().name().c_str(), net.num_switches(),
              static_cast<unsigned long long>(net.admission().admitted_flows()));

  const SimReport rep = net.run();

  TableWriter table({"class", "packets", "avg latency [us]", "p99 [us]",
                     "jitter [us]", "throughput [MB/s]", "offered [MB/s]"});
  for (const TrafficClass c : all_traffic_classes()) {
    const ClassReport& r = rep.of(c);
    table.row({std::string(to_string(c)), TableWriter::num(r.packets),
               TableWriter::num(r.avg_packet_latency_us, 1),
               TableWriter::num(r.p99_packet_latency_us, 1),
               TableWriter::num(r.jitter_us, 1),
               TableWriter::num(r.throughput_bytes_per_sec / 1e6, 1),
               TableWriter::num(r.offered_bytes_per_sec / 1e6, 1)});
  }
  table.print(stdout);

  std::printf("\nvideo frames delivered: %llu, avg frame latency %.2f ms "
              "(budget: %.0f ms)\n",
              static_cast<unsigned long long>(rep.of(TrafficClass::kMultimedia).messages),
              rep.of(TrafficClass::kMultimedia).avg_message_latency_us / 1000.0,
              cfg.video_frame_budget.ms());
  std::printf("order errors: %llu, take-overs: %llu, out-of-order: %llu "
              "(must be 0)\n",
              static_cast<unsigned long long>(rep.order_errors),
              static_cast<unsigned long long>(rep.takeovers),
              static_cast<unsigned long long>(rep.out_of_order));
  return rep.out_of_order == 0 ? 0 : 1;
}
