#include "host/host.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace dqos {
namespace {

/// unordered_map never releases its bucket array, so a churn or retry
/// spike ratchets the host's memory for the rest of the run. Rebuild a
/// map that has gone sparse (under 1/8 occupancy past a small floor);
/// callers invoke this after erases on the rx/retry maps.
template <typename Map>
void shrink_if_sparse(Map& m) {
  if (m.bucket_count() > 64 && m.size() * 8 < m.bucket_count()) {
    Map rebuilt(m.begin(), m.end());
    m.swap(rebuilt);
  }
}

}  // namespace

Host::Host(Simulator& sim, NodeId id, const HostParams& params, LocalClock clock,
           PacketPool& pool)
    : sim_(sim),
      id_(id),
      params_(params),
      clock_(clock),
      pool_(pool),
      next_packet_id_(static_cast<std::uint64_t>(id) << 40) {
  DQOS_EXPECTS(params.num_vcs >= 1);
  DQOS_EXPECTS(params.mtu_bytes > kHeaderBytes);
  DQOS_EXPECTS(params.vc_weights.empty() ||
               params.vc_weights.size() == params.num_vcs);
  ready_q_.resize(params.num_vcs);
  fifo_q_.resize(params.num_vcs);
  if (!params.vc_weights.empty()) {
    weighted_vc_ = std::make_unique<WeightedVcPolicy>(params.vc_weights);
  }
}

void Host::attach_uplink(Channel* to_switch) {
  DQOS_EXPECTS(to_switch != nullptr && uplink_ == nullptr);
  uplink_ = to_switch;
  uplink_->set_on_credit(
      {[](void* ctx) { static_cast<Host*>(ctx)->pump(); }, this});
}

void Host::attach_downlink(Channel* from_switch) {
  DQOS_EXPECTS(from_switch != nullptr && downlink_ == nullptr);
  downlink_ = from_switch;
}

void Host::open_flow(const FlowSpec& spec) {
  DQOS_EXPECTS(spec.id != kInvalidFlow);
  DQOS_EXPECTS(spec.src == id_);
  DQOS_EXPECTS(spec.vc < params_.num_vcs);
  const FlowId skey = spec.aggregate != kInvalidFlow ? spec.aggregate : spec.id;
  FlowState state{spec, skey, 0, 1, nullptr};
  if (spec.police) {
    DQOS_EXPECTS(spec.reserve_bw.valid());
    const auto burst = static_cast<std::uint64_t>(
        spec.reserve_bw.bytes_per_sec() * spec.police_burst.sec());
    state.policer = std::make_unique<TokenBucket>(
        spec.reserve_bw, std::max<std::uint64_t>(burst, 128 * 1024));
  }
  flows_.insert(spec.id, std::move(state));  // aborts on duplicate open
  if (!stampers_.contains(skey)) stampers_.insert(skey, DeadlineStamper(spec));
}

void Host::push_entry(MinHeap& h, TimePoint key, PacketPtr p) {
  QEntry e{key, next_qseq_++, std::move(p)};
  std::size_t i = h.size();
  h.emplace_back();
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!(h[parent] > e)) break;
    h[i] = std::move(h[parent]);
    i = parent;
  }
  h[i] = std::move(e);
}

PacketPtr Host::pop_entry(MinHeap& h) {
  DQOS_EXPECTS(!h.empty());
  PacketPtr p = std::move(h.front().pkt);
  if (h.size() > 1) {
    h.front() = std::move(h.back());
    h.pop_back();
    heap_sift_down(h, 0);
  } else {
    h.pop_back();
  }
  return p;
}

void Host::heap_sift_down(MinHeap& h, std::size_t i) {
  const std::size_t n = h.size();
  QEntry e = std::move(h[i]);
  for (;;) {
    const std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t m = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (h[m] > h[c]) m = c;
    }
    if (!(e > h[m])) break;
    h[i] = std::move(h[m]);
    i = m;
  }
  h[i] = std::move(e);
}

void Host::heap_make(MinHeap& h) {
  if (h.size() < 2) return;
  for (std::size_t i = (h.size() - 2) / 4 + 1; i-- > 0;) {
    heap_sift_down(h, i);
  }
}

bool Host::submit(FlowId flow, std::uint64_t bytes) {
  return do_submit(flow, bytes, 0);
}

bool Host::do_submit(FlowId flow, std::uint64_t bytes, std::uint32_t attempt) {
  DQOS_EXPECTS(bytes > 0);
  // Table references are held only across the fragment loop, which touches
  // nothing but the NIC queues; the trailing pump() — which *can* retire
  // flows via the abort callback — runs after the last use of either.
  FlowState& fs = flows_.at(flow);
  const VcId vc = fs.spec.vc;

  // Shed flows (close_flow) accept nothing; the application-side source
  // keeps producing, so the refusals are counted as degradation.
  if (fs.closed) {
    ++shed_submissions_;
    if (tracer_) tracer_->record_drop(sim_.now(), flow, fs.spec.tclass, id_);
    return false;
  }

  // Ingress policing (A9): a reserved flow may not exceed its reservation;
  // non-conformant messages are shed before they can poison the regulated
  // VC's buffers and deadlines.
  if (fs.policer &&
      !fs.policer->try_consume(bytes, clock_.local_now(sim_.now()))) {
    ++policed_drops_;
    if (tracer_) tracer_->record_drop(sim_.now(), flow, fs.spec.tclass, id_);
    return false;
  }

  // Unregulated traffic has no delivery guarantee (§3): shed the whole
  // message if the NIC backlog for its VC is past the cap.
  if (vc != kRegulatedVc) {
    const std::size_t backlog = ready_q_[vc].size() + fifo_q_[vc].size();
    if (backlog >= params_.best_effort_queue_cap) {
      ++be_drops_;
      if (tracer_) tracer_->record_drop(sim_.now(), flow, fs.spec.tclass, id_);
      return false;
    }
  }

  const std::uint32_t payload_mtu = params_.mtu_bytes;
  const auto parts =
      static_cast<std::uint16_t>((bytes + payload_mtu - 1) / payload_mtu);
  DeadlineStamper& stamper = stampers_.at(fs.stamper_key);
  if (fs.spec.policy == DeadlinePolicy::kFrameBudget) stamper.begin_frame(parts);

  const TimePoint created = sim_.now();
  const TimePoint local_now = clock_.local_now(created);
  const std::uint32_t message_id = fs.next_message++;
  if (retry_ && fs.spec.tclass == TrafficClass::kControl) {
    arm_retry(flow, message_id, bytes, attempt);
  }

  std::uint64_t remaining = bytes;
  for (std::uint16_t part = 0; part < parts; ++part) {
    const auto payload =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(remaining, payload_mtu));
    remaining -= payload;
    const std::uint32_t wire = payload + kHeaderBytes;

    const TimePoint deadline = fs.spec.policy == DeadlinePolicy::kFrameBudget
                                   ? stamper.stamp_frame_packet(local_now)
                                   : stamper.stamp(local_now, wire);

    PacketPtr p = pool_.make();
    p->hdr.packet_id = next_packet_id_++;
    p->hdr.flow = flow;
    p->hdr.src = id_;
    p->hdr.dst = fs.spec.dst;
    p->hdr.tclass = fs.spec.tclass;
    p->hdr.vc = vc;
    p->hdr.wire_bytes = wire;
    p->hdr.flow_seq = fs.next_seq++;
    p->hdr.route = fs.spec.route;
    p->hdr.route.reset_cursor();
    p->hdr.message_id = message_id;
    p->hdr.message_parts = parts;
    p->hdr.message_part_idx = part;
    p->local_deadline = deadline;
    p->eligible_local =
        fs.spec.use_eligible_time ? deadline - fs.spec.eligible_lead : local_now;
    p->t_created = created;
    if (tracer_) tracer_->record(created, TraceEvent::kCreated, *p, id_);

    if (vc != kRegulatedVc) {
      ++unreg_backlog_[static_cast<std::size_t>(fs.spec.tclass)];
    }
    const TimePoint eligible_at = p->eligible_local;
    if (!params_.edf_queues) {
      fifo_q_[vc].push_back(std::move(p));
    } else if (eligible_at > local_now) {
      push_entry(eligible_q_, eligible_at, std::move(p));
    } else {
      push_entry(ready_q_[vc], deadline, std::move(p));
    }
  }
  pump();
  return true;
}

void Host::update_flow_route(FlowId flow, const SourceRoute& route,
                             std::size_t choice) {
  FlowState& fs = flows_.at(flow);
  fs.spec.route = route;
  fs.spec.route_choice = choice;
  // Queued packets still carry the dead path; re-stamp them so they survive.
  // (Heap order depends only on time keys, so in-place rewrite is safe.)
  const auto restamp = [&](Packet& p) {
    if (p.hdr.flow != flow) return;
    p.hdr.route = route;
    p.hdr.route.reset_cursor();
  };
  for (auto& e : eligible_q_) restamp(*e.pkt);
  for (auto& q : ready_q_) {
    for (auto& e : q) restamp(*e.pkt);
  }
  for (auto& q : fifo_q_) {
    for (auto& p : q) restamp(*p);
  }
}

void Host::close_flow(FlowId flow) {
  flows_.at(flow).closed = true;

  // Purge queued packets of the shed flow; they have nowhere to go. Each
  // purged packet is retired through the audited pool path, then the null
  // slots are compacted out.
  const auto doom = [&](PacketPtr& p) {
    if (p == nullptr || p->hdr.flow != flow) return false;
    if (p->hdr.vc != kRegulatedVc) {
      auto& backlog = unreg_backlog_[static_cast<std::size_t>(p->hdr.tclass)];
      DQOS_ASSERT(backlog > 0);
      --backlog;
    }
    ++shed_submissions_;
    if (tracer_) tracer_->record_drop(sim_.now(), flow, p->hdr.tclass, id_);
    retire_packet(std::move(p));
    return true;
  };
  const auto purge_heap = [&](MinHeap& h) {
    bool purged = false;
    for (auto& e : h) purged = doom(e.pkt) || purged;
    if (!purged) return;
    h.erase(std::remove_if(h.begin(), h.end(),
                           [](const QEntry& e) { return e.pkt == nullptr; }),
            h.end());
    heap_make(h);
  };
  purge_heap(eligible_q_);
  for (auto& q : ready_q_) purge_heap(q);
  for (auto& q : fifo_q_) {
    bool purged = false;
    for (auto& p : q) purged = doom(p) || purged;
    if (purged) {
      q.erase(std::remove(q.begin(), q.end(), nullptr), q.end());
    }
  }
}

NodeId Host::retire_flow(FlowId flow) {
  const FlowState& gone = flows_.at(flow);
  const FlowId skey = gone.stamper_key;
  const NodeId dst = gone.spec.dst;
  flows_.erase(flow);
  // The stamper may be shared by an aggregate; drop it with its last user.
  // Existence scan only — the result is order-independent.
  bool shared = false;
  flows_.for_each([&](FlowId, const FlowState& fs) {
    if (fs.stamper_key == skey) shared = true;
  });
  if (!shared) stampers_.erase(skey);
  return dst;
}

void Host::purge_rx_flow(FlowId flow) {
  // Tombstone rather than erase: packets of the retired flow may still be
  // draining from the fabric, and a plain erase would let the first
  // straggler re-create full tracking (a permanent leak for a partial
  // message whose remaining parts never arrive). The tombstone costs one
  // 16-byte record and makes stragglers inert.
  rx_seq_.get_or_insert(flow) = kRetiredSeq;
  for (auto it = rx_messages_.begin(); it != rx_messages_.end();) {
    // Key-match reaping: the surviving set is visit-order independent.
    const bool ours = static_cast<FlowId>(it->first >> 32) == flow;
    it = ours ? rx_messages_.erase(it) : std::next(it);
  }
  shrink_if_sparse(rx_messages_);
}

void Host::enable_control_retry(const RetryParams& params) {
  DQOS_EXPECTS(params.timeout > Duration::zero());
  retry_ = params;
}

void Host::arm_retry(FlowId flow, std::uint32_t message_id, std::uint64_t bytes,
                     std::uint32_t attempt) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(flow) << 32) | message_id;
  // Exponential backoff: timeout doubles with every unacked attempt.
  const Duration wait = Duration::picoseconds(retry_->timeout.ps() << attempt);
  const EventId timer = sim_.schedule_after(wait, [this, key] { retry_timeout(key); });
  const bool inserted =
      pending_retry_.emplace(key, PendingRetry{bytes, attempt, timer}).second;
  DQOS_ASSERT(inserted);
}

void Host::retry_timeout(std::uint64_t key) {
  const auto it = pending_retry_.find(key);
  if (it == pending_retry_.end()) return;  // acked after the timer fired
  const PendingRetry pr = it->second;
  pending_retry_.erase(it);
  shrink_if_sparse(pending_retry_);
  if (pr.attempt >= retry_->max_retries) {
    ++retries_abandoned_;
    return;
  }
  ++retries_;
  const auto flow = static_cast<FlowId>(key >> 32);
  // Resubmitted as a *new* message (fresh id and deadline stamps); if the
  // flow was shed or policed in the meantime, the message is lost for good.
  if (!do_submit(flow, pr.bytes, pr.attempt + 1)) ++retries_abandoned_;
}

void Host::on_message_acked(FlowId flow, std::uint32_t message_id) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(flow) << 32) | message_id;
  const auto it = pending_retry_.find(key);
  if (it == pending_retry_.end()) return;
  sim_.cancel(it->second.timer);
  pending_retry_.erase(it);
  shrink_if_sparse(pending_retry_);
}

void Host::pump() {
  const TimePoint now = sim_.now();
  const TimePoint local_now = clock_.local_now(now);

  // Eligibility transition: first queue (eligible-ordered) feeds the second
  // (deadline-ordered), §3.2.
  while (!eligible_q_.empty() && eligible_q_.front().key <= local_now) {
    PacketPtr p = pop_entry(eligible_q_);
    const VcId vc = p->hdr.vc;
    const TimePoint d = p->local_deadline;
    push_entry(ready_q_[vc], d, std::move(p));
  }
  schedule_eligible_wakeup();

  if (link_busy_until_ > now) return;
  DQOS_ASSERT(uplink_ != nullptr);
  // Injection link down (fault injection): stall; Channel::repair() fires
  // the credit callback, which resumes the pump.
  if (!uplink_->is_up()) return;

  if (weighted_vc_ == nullptr) {
    // Strict VC priority (all paper architectures): VC0 first, no order
    // materialization, no arbitration-policy virtual calls.
    for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
      if (inject_from_vc(vc, now)) return;
    }
    return;
  }
  weighted_vc_->order(vc_order_scratch_);
  for (const VcId vc : vc_order_scratch_) {
    if (inject_from_vc(vc, now)) return;
  }
}

void Host::expire_packet(PacketPtr p, TimePoint now) {
  DQOS_ASSERT(p->hdr.vc == kRegulatedVc);
  ++expired_packets_;
  expired_bytes_ += p->size();
  const FlowId flow = p->hdr.flow;
  if (tracer_) tracer_->record_drop(now, flow, p->hdr.tclass, id_);
  if (on_expired_) on_expired_(*p, now);
  FlowState* fsp = flows_.find(flow);  // churn may have retired the flow
  if (fsp != nullptr) {
    FlowState& fs = *fsp;
    ++fs.expired_packets;
    fs.expired_bytes += p->size();
    retire_packet(std::move(p));
    // Abort threshold: once a flow misses more than its share, stop
    // spending link time on it at all. The 16-packet floor keeps one
    // unlucky burst from killing a flow that has barely started.
    const std::uint64_t decided = fs.sent_packets + fs.expired_packets;
    if (!fs.closed && params_.expiry_abort_ratio > 0.0 && decided >= 16 &&
        static_cast<double>(fs.expired_packets) >
            params_.expiry_abort_ratio * static_cast<double>(decided)) {
      ++flows_aborted_;
      close_flow(flow);
      if (on_flow_aborted_) on_flow_aborted_(flow);
    }
  } else {
    retire_packet(std::move(p));
  }
}

bool Host::inject_from_vc(VcId vc, TimePoint now) {
  // Expiry at the transmission decision ("skip it, already late"): the
  // ready queue is deadline-ordered, so every already-late packet sits at
  // the front. Dropping them frees the link for packets that can still
  // make it. Opt-in; EDF regulated VC only.
  if (params_.expiry_drop && params_.edf_queues && vc == kRegulatedVc) {
    const TimePoint local_now = clock_.local_now(now);
    while (!ready_q_[vc].empty() &&
           ready_q_[vc].front().pkt->local_deadline < local_now) {
      expire_packet(pop_entry(ready_q_[vc]), now);
    }
  }
  const Packet* head = nullptr;
  if (params_.edf_queues) {
    if (!ready_q_[vc].empty()) head = ready_q_[vc].front().pkt.get();
  } else {
    if (!fifo_q_[vc].empty()) head = fifo_q_[vc].front().get();
  }
  if (head == nullptr) return false;
  if (!uplink_->has_credits(vc, head->size())) return false;

  PacketPtr p;
  if (params_.edf_queues) {
    p = pop_entry(ready_q_[vc]);
  } else {
    p = std::move(fifo_q_[vc].front());
    fifo_q_[vc].pop_front();
  }
  if (vc != kRegulatedVc) {
    auto& backlog = unreg_backlog_[static_cast<std::size_t>(p->hdr.tclass)];
    DQOS_ASSERT(backlog > 0);
    --backlog;
  }
  if (params_.expiry_drop && vc == kRegulatedVc) {
    if (FlowState* fs = flows_.find(p->hdr.flow)) ++fs->sent_packets;
  }
  p->t_injected = now;
  p->hdr.ttd = clock_.encode_ttd(p->local_deadline, now);
  if (tracer_) tracer_->record(now, TraceEvent::kInjected, *p, id_);
  const std::uint32_t wire = p->size();
  const Duration ser = uplink_->serialization_time(wire);
  uplink_->consume_credits(vc, wire);
  if (weighted_vc_) weighted_vc_->granted(vc, wire);
  uplink_->send(std::move(p));
  ++injected_;
  bytes_injected_ += wire;
  link_busy_until_ = now + ser;
  sim_.schedule_after(ser, [this] { pump(); });
  return true;
}

void Host::schedule_eligible_wakeup() {
  if (eligible_q_.empty()) return;
  // Convert the earliest eligibility instant back to the global domain.
  const TimePoint global_wake = eligible_q_.front().key - clock_.offset();
  if (eligible_wakeup_at_ == global_wake) return;  // already armed
  if (eligible_wakeup_ != 0) sim_.cancel(eligible_wakeup_);
  const TimePoint at = max(global_wake, sim_.now());
  eligible_wakeup_at_ = global_wake;
  eligible_wakeup_ = sim_.schedule_at(at, [this] {
    eligible_wakeup_ = 0;
    eligible_wakeup_at_ = TimePoint::max();
    pump();
  });
}

void Host::receive_packet(PacketPtr p, PortId /*in_port*/) {
  DQOS_EXPECTS(p != nullptr);
  DQOS_ASSERT(p->hdr.dst == id_);
  DQOS_ASSERT(p->hdr.route.at_destination());
  ++received_;
  p->t_delivered = sim_.now();
  if (tracer_) tracer_->record(p->t_delivered, TraceEvent::kDelivered, *p, id_);

  // The host consumes instantly; buffer space frees immediately. The
  // channel coalesces same-instant returns per VC into one flush event
  // (DESIGN.md §11) — per-packet calls here stay the simple model.
  DQOS_ASSERT(downlink_ != nullptr);
  downlink_->return_credits(p->hdr.vc, p->size());

  // Remaining deadline budget at delivery (header-anchored reconstruction,
  // like a switch): negative slack = deadline miss.
  const Duration rx_ser = downlink_->serialization_time(p->size());
  const TimePoint deadline_local =
      clock_.decode_ttd(p->hdr.ttd, p->t_delivered - rx_ser);
  const Duration slack = deadline_local - clock_.local_now(p->t_delivered);

  // Out-of-order delivery detection (must never fire: paper appendix).
  // Dense per-flow record keyed by the flows *this host* receives; absent
  // means nothing delivered yet, kRetiredSeq marks a purged (retired)
  // flow whose stragglers must stay inert.
  std::int64_t* last_seq = rx_seq_.find(p->hdr.flow);
  const bool retired_flow = last_seq != nullptr && *last_seq == kRetiredSeq;
  if (retired_flow) {
    // no sequence tracking for stragglers of a purged flow
  } else if (last_seq == nullptr) {
    rx_seq_.insert(p->hdr.flow, p->hdr.flow_seq);
  } else if (static_cast<std::int64_t>(p->hdr.flow_seq) <= *last_seq) {
    ++ooo_;
  } else {
    *last_seq = p->hdr.flow_seq;
  }

  if (!watched_.empty()) {
    if (FlowWatch* w = watched_.find(p->hdr.flow)) {
      ++w->packets;
      w->bytes += p->size();
      w->latency_us.add((p->t_delivered - p->t_created).us());
    }
  }

  if (on_packet_) on_packet_(*p, p->t_delivered, slack);

  // Message completion tracking (frame-level latency, Fig. 3).
  // Single-part messages (any message <= one MTU) complete with this very
  // packet: skip the progress map — and its node allocate/erase — entirely.
  if (p->hdr.message_parts == 1) {
    if (on_message_) {
      on_message_(MessageDelivered{p->hdr.flow, p->hdr.tclass, p->t_created,
                                   p->t_delivered, p->size(),
                                   p->hdr.message_id});
    }
    return;
  }
  // Multi-part progress for a purged flow would re-enter the map with a
  // part already missing and sit there forever; drop it instead.
  if (retired_flow) return;
  const std::uint64_t mkey =
      (static_cast<std::uint64_t>(p->hdr.flow) << 32) | p->hdr.message_id;
  auto [mit, fresh] = rx_messages_.try_emplace(
      mkey, MessageProgress{p->hdr.message_parts, 0, p->t_created});
  (void)fresh;
  mit->second.bytes += p->size();
  if (--mit->second.parts_left == 0) {
    if (on_message_) {
      on_message_(MessageDelivered{p->hdr.flow, p->hdr.tclass, mit->second.created,
                                   p->t_delivered, mit->second.bytes,
                                   p->hdr.message_id});
    }
    rx_messages_.erase(mit);
    shrink_if_sparse(rx_messages_);
  }
}

std::size_t Host::queued_packets() const {
  std::size_t n = eligible_q_.size();
  for (const auto& q : ready_q_) n += q.size();
  for (const auto& q : fifo_q_) n += q.size();
  return n;
}

}  // namespace dqos
