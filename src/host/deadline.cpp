#include "host/deadline.hpp"

#include "util/contracts.hpp"

namespace dqos {

DeadlineStamper::DeadlineStamper(const FlowSpec& spec)
    : policy_(spec.policy),
      deadline_bw_(spec.deadline_bw),
      frame_budget_(spec.frame_budget) {
  DQOS_EXPECTS(deadline_bw_.valid());
  if (policy_ == DeadlinePolicy::kFrameBudget) {
    DQOS_EXPECTS(frame_budget_ > Duration::zero());
  }
}

TimePoint DeadlineStamper::stamp(TimePoint local_now, std::uint32_t wire_bytes) {
  DQOS_EXPECTS(policy_ != DeadlinePolicy::kFrameBudget);
  last_deadline_ =
      max(last_deadline_, local_now) + deadline_bw_.transfer_time(wire_bytes);
  return last_deadline_;
}

void DeadlineStamper::begin_frame(std::uint16_t parts) {
  DQOS_EXPECTS(policy_ == DeadlinePolicy::kFrameBudget);
  DQOS_EXPECTS(parts > 0);
  per_packet_budget_ = frame_budget_ / parts;
}

TimePoint DeadlineStamper::stamp_frame_packet(TimePoint local_now) {
  DQOS_EXPECTS(policy_ == DeadlinePolicy::kFrameBudget);
  DQOS_EXPECTS(per_packet_budget_ > Duration::zero());
  last_deadline_ = max(last_deadline_, local_now) + per_packet_budget_;
  return last_deadline_;
}

}  // namespace dqos
