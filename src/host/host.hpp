/// \file host.hpp
/// End-host network interface (§3.2, "the organization of end-hosts").
///
/// Send path (EDF mode — all EDF-based architectures):
///   application frame -> MTU fragmentation -> per-flow deadline stamping ->
///   regulated VC: an eligible-time-ordered queue feeding a
///   deadline-ordered ready queue ("as soon as the first packet in the
///   queue is eligible, it goes to another queue where packets are sorted
///   according to ascending deadlines"); best-effort VC: deadline-ordered,
///   injected only when the link is free, credits exist, and the regulated
///   VC has nothing ready.
/// In FIFO mode (Traditional architecture) the NIC keeps plain FIFO queues
/// per VC and ignores deadlines/eligible times, like a PCI AS endpoint.
///
/// Receive path: packets are consumed immediately (credits return at wire
/// latency), per-flow sequence is checked (out-of-order delivery must never
/// happen — paper appendix), and message completion is reported for
/// frame-level latency metrics.
///
/// Unregulated overload: best-effort flows have "no guarantee of delivery";
/// when the NIC's unregulated backlog exceeds a cap the submission is
/// dropped and counted (open-loop sources would otherwise grow memory
/// without bound).
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "host/deadline.hpp"
#include "util/dense_flow_table.hpp"
#include "proto/packet_pool.hpp"
#include "qos/flow.hpp"
#include "qos/token_bucket.hpp"
#include "util/stats.hpp"
#include "switchfab/arbiter.hpp"
#include "switchfab/channel.hpp"
#include "trace/tracer.hpp"

namespace dqos {

struct HostParams {
  std::uint8_t num_vcs = 2;
  std::uint32_t mtu_bytes = 2048;  ///< max payload per packet (§3.1 example)
  bool edf_queues = true;          ///< false = Traditional FIFO endpoint
  /// Weighted VC arbitration at the injection link (Traditional multi-VC
  /// ablation); empty = strict priority.
  std::vector<std::uint32_t> vc_weights;
  /// Drop threshold for unregulated (VC != 0) backlog, in packets,
  /// applied **per traffic class** (each aggregated best-effort class gets
  /// its own quota, so a backlogged class cannot crowd out its siblings'
  /// acceptance — the EDF deadline weights then govern service).
  std::size_t best_effort_queue_cap = 4096;
  /// Deadline expiry at the injection point (overload degradation, opt-in):
  /// a regulated packet whose deadline has already passed when it reaches
  /// the head of the ready queue is dropped instead of transmitted — it
  /// cannot arrive in time, so sending it only steals bandwidth from
  /// packets that still can ("skip it, already late"). EDF mode only.
  bool expiry_drop = false;
  /// With expiry_drop: a flow whose expired fraction (expired packets over
  /// packets reaching the injection decision) exceeds this ratio is aborted
  /// outright — its queue purged and future submissions refused — freeing
  /// its bandwidth for flows still meeting deadlines. 0 = never abort.
  double expiry_abort_ratio = 0.0;
};

/// Per-delivered-packet observer. `now` is global time; `slack` is the
/// remaining time-to-deadline at delivery (negative = the packet missed
/// its deadline), computed in the receiving host's clock domain.
using PacketDeliveredFn =
    std::function<void(const Packet& pkt, TimePoint now, Duration slack)>;
/// Message (application frame / transfer) fully delivered.
struct MessageDelivered {
  FlowId flow;
  TrafficClass tclass;
  TimePoint created;
  TimePoint completed;
  std::uint64_t bytes;
  std::uint32_t message_id;  ///< source-assigned (acks for control retry)
};
using MessageDeliveredFn = std::function<void(const MessageDelivered&)>;
/// A regulated packet expired unsent at the injection point (expiry_drop).
using PacketExpiredFn = std::function<void(const Packet& pkt, TimePoint now)>;
/// A flow was aborted because its expiry ratio crossed expiry_abort_ratio.
using FlowAbortedFn = std::function<void(FlowId flow)>;

class Host final : public PacketReceiver {
 public:
  Host(Simulator& sim, NodeId id, const HostParams& params, LocalClock clock,
       PacketPool& pool);

  void attach_uplink(Channel* to_switch);      ///< host -> leaf switch
  void attach_downlink(Channel* from_switch);  ///< leaf switch -> host

  void set_packet_callback(PacketDeliveredFn fn) { on_packet_ = std::move(fn); }
  /// Optional packet-event tracing (null = off, zero cost).
  void set_tracer(PacketTracer* tracer) { tracer_ = tracer; }
  void set_message_callback(MessageDeliveredFn fn) { on_message_ = std::move(fn); }
  void set_expired_callback(PacketExpiredFn fn) { on_expired_ = std::move(fn); }
  void set_flow_aborted_callback(FlowAbortedFn fn) {
    on_flow_aborted_ = std::move(fn);
  }

  /// Registers an admitted flow originating at this host.
  void open_flow(const FlowSpec& spec);

  /// --- fault handling ------------------------------------------------------
  /// Replaces the fixed route of an open flow (admission rerouted it around
  /// a failed link). Packets already queued in the NIC are re-stamped with
  /// the new route; packets already in the fabric are beyond help.
  void update_flow_route(FlowId flow, const SourceRoute& route, std::size_t choice);
  /// Shuts an open flow whose reservation was shed (no surviving path):
  /// queued packets are purged and future submissions are refused (counted
  /// in shed_submissions()).
  void close_flow(FlowId flow);
  /// Fault injection: per-host clock drift (replaces the LocalClock skew).
  void set_clock_offset(Duration offset) { clock_ = LocalClock(offset); }

  /// Removes a departed flow (mid-run churn): the flow-table entry is
  /// erased — packets already queued or in flight drain and deliver
  /// normally (the pump and receive paths never consult the table) — and
  /// the flow's deadline stamper is dropped with its last user. The caller
  /// must stop the flow's source first: submitting to a retired flow is a
  /// contract violation. Works on live and shed (close_flow) flows alike.
  /// Returns the flow's destination so the caller can reclaim the receive
  /// side too (purge_rx_flow on that host).
  NodeId retire_flow(FlowId flow);

  /// Receive-side reclamation for a retired flow (call on the flow's
  /// *destination* host, after retire_flow at the source): drops any
  /// partial-message progress and tombstones the sequence record so
  /// straggler packets still draining from the fabric cannot resurrect
  /// per-flow tracking. One 16-byte tombstone per retired flow remains —
  /// bounded by the flows this host ever received, not by the global flow
  /// counter. Without this hook a churn workload ratchets rx memory for
  /// the rest of the run.
  void purge_rx_flow(FlowId flow);

  /// End-to-end retry for control-class messages: when enabled, a control
  /// submission that is not acknowledged (on_message_acked) within
  /// `timeout << attempt` is resubmitted as a fresh message, up to
  /// `max_retries` times, then abandoned. Lossless fabrics never ack late,
  /// so this is inert without fault injection.
  struct RetryParams {
    Duration timeout = Duration::zero();
    std::uint32_t max_retries = 0;
  };
  void enable_control_retry(const RetryParams& params);
  /// Destination completed (flow, message_id) — cancels the pending retry.
  void on_message_acked(FlowId flow, std::uint32_t message_id);

  /// Receiver-side per-flow observation (opt-in; global metrics stay
  /// aggregate). Call on the *destination* host of the flow.
  struct FlowWatch {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    StreamingStats latency_us;
  };
  void watch_flow(FlowId flow) { watched_.get_or_insert(flow); }
  /// nullptr if the flow is not watched here. Invalidated by watch_flow.
  [[nodiscard]] const FlowWatch* flow_watch(FlowId flow) const {
    return watched_.find(flow);
  }

  /// Application hands over a message (control message, video frame,
  /// best-effort transfer) of `bytes` payload. Returns false if dropped
  /// (unregulated backlog cap).
  bool submit(FlowId flow, std::uint64_t bytes);

  void receive_packet(PacketPtr p, PortId in_port) override;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const LocalClock& clock() const { return clock_; }

  // --- introspection / statistics ---
  [[nodiscard]] std::uint64_t packets_injected() const { return injected_; }
  [[nodiscard]] std::uint64_t bytes_injected() const { return bytes_injected_; }
  [[nodiscard]] std::uint64_t packets_received() const { return received_; }
  [[nodiscard]] std::uint64_t out_of_order_deliveries() const { return ooo_; }
  [[nodiscard]] std::uint64_t best_effort_drops() const { return be_drops_; }
  /// Regulated messages shed by ingress policing (token bucket, A9).
  [[nodiscard]] std::uint64_t policed_drops() const { return policed_drops_; }
  [[nodiscard]] std::size_t queued_packets() const;
  [[nodiscard]] std::size_t eligible_waiting() const { return eligible_q_.size(); }
  /// Control messages resubmitted after an ack timeout.
  [[nodiscard]] std::uint64_t control_retries() const { return retries_; }
  /// Control messages given up on after max_retries unacked attempts.
  [[nodiscard]] std::uint64_t control_retries_abandoned() const {
    return retries_abandoned_;
  }
  /// Submissions refused because the flow was shed (close_flow), plus
  /// packets purged from the NIC queues at shedding time.
  [[nodiscard]] std::uint64_t shed_submissions() const { return shed_submissions_; }
  /// Regulated packets dropped already-late at the injection point.
  [[nodiscard]] std::uint64_t expired_packets() const { return expired_packets_; }
  [[nodiscard]] std::uint64_t expired_bytes() const { return expired_bytes_; }
  /// Flows aborted by the expiry-ratio threshold (expiry_abort_ratio).
  [[nodiscard]] std::uint64_t flows_aborted() const { return flows_aborted_; }
  /// Expired-packet count of one open flow (0 if unknown/retired) — the
  /// video source consults this to drop late B-frames at the application.
  [[nodiscard]] std::uint64_t flow_expired_packets(FlowId flow) const {
    const FlowState* fs = flows_.find(flow);
    return fs == nullptr ? 0 : fs->expired_packets;
  }

 private:
  struct FlowState {
    FlowSpec spec;
    FlowId stamper_key;  ///< == spec.aggregate for aggregated flows
    std::uint32_t next_seq = 0;
    std::uint32_t next_message = 1;
    std::unique_ptr<TokenBucket> policer;  ///< non-null iff spec.police
    bool closed = false;                   ///< shed by fault re-routing/abort
    // expiry accounting (expiry_drop mode; zero-cost otherwise)
    std::uint64_t sent_packets = 0;     ///< reached injection and transmitted
    std::uint64_t expired_packets = 0;  ///< reached injection already late
    std::uint64_t expired_bytes = 0;
  };
  /// Min-heap entry for both NIC queues (key = eligible time or deadline).
  struct QEntry {
    TimePoint key;
    std::uint64_t seq;
    PacketPtr pkt;
    bool operator>(const QEntry& o) const {
      if (key != o.key) return key > o.key;
      return seq > o.seq;
    }
  };
  /// 4-ary min-heap in a flat vector (root at 0, children of i at 4i+1..).
  /// Half the levels of the binary std::*_heap layout, so the hot pop's
  /// sift-down touches fewer cache lines at NIC backlog depths. Extraction
  /// order is identical to any min-heap: (key, seq) is a strict total
  /// order, so the pop sequence — and the golden fire order — cannot
  /// depend on the layout.
  using MinHeap = std::vector<QEntry>;

  void push_entry(MinHeap& h, TimePoint key, PacketPtr p);
  PacketPtr pop_entry(MinHeap& h);
  /// Sift h[i] down to its 4-ary position (pop and Floyd-heapify core).
  static void heap_sift_down(MinHeap& h, std::size_t i);
  /// Re-establishes the 4-ary heap property after bulk edits (purges).
  static void heap_make(MinHeap& h);

  /// Moves newly eligible packets, then tries to start one injection.
  void pump();
  /// Drops one already-late regulated packet (expiry_drop): accounts it,
  /// notifies observers, retires it to the pool, and aborts the flow when
  /// its expiry ratio crosses the configured threshold.
  void expire_packet(PacketPtr p, TimePoint now);
  /// One arbitration decision: if `vc` has a transmittable head packet and
  /// credits, injects it and schedules the next pump. Returns whether the
  /// link was taken (the caller's VC scan stops there).
  bool inject_from_vc(VcId vc, TimePoint now);
  void schedule_eligible_wakeup();
  /// Shared by submit() (attempt 0) and retry timeouts (attempt > 0).
  bool do_submit(FlowId flow, std::uint64_t bytes, std::uint32_t attempt);
  void arm_retry(FlowId flow, std::uint32_t message_id, std::uint64_t bytes,
                 std::uint32_t attempt);
  void retry_timeout(std::uint64_t key);

  Simulator& sim_;
  NodeId id_;
  HostParams params_;
  LocalClock clock_;
  PacketPool& pool_;
  Channel* uplink_ = nullptr;
  Channel* downlink_ = nullptr;

  /// Per-flow send state, dense (DESIGN.md §13): churn-heavy runs open and
  /// retire thousands of flows, and node-per-entry hash maps both ratchet
  /// memory and scatter the hot do_submit lookup across the heap.
  DenseFlowTable<FlowState> flows_;
  DenseFlowTable<DeadlineStamper> stampers_;  ///< keyed by stamper_key
  MinHeap eligible_q_;                 ///< regulated, waiting for eligibility
  std::vector<MinHeap> ready_q_;       ///< per VC, deadline-ordered (EDF mode)
  std::vector<std::deque<PacketPtr>> fifo_q_;  ///< per VC (FIFO mode)
  /// Non-null only under weighted arbitration. Null means strict VC
  /// priority (the paper architectures), which pump() runs as a plain
  /// VC0-first loop — no virtual order/granted calls per injection.
  std::unique_ptr<WeightedVcPolicy> weighted_vc_;
  std::vector<VcId> vc_order_scratch_;  ///< pump() hot-path scratch
  TimePoint link_busy_until_;
  EventId eligible_wakeup_ = 0;
  TimePoint eligible_wakeup_at_ = TimePoint::max();
  std::uint64_t next_qseq_ = 0;
  std::uint64_t next_packet_id_;

  // receive-side state
  /// rx_seq_ tombstone: the flow was retired and purged; stragglers still
  /// deliver (and count) but never restart sequence/message tracking.
  static constexpr std::int64_t kRetiredSeq =
      std::numeric_limits<std::int64_t>::min();
  /// Highest flow_seq delivered per flow this host has received (absent =
  /// nothing delivered yet; kRetiredSeq tombstone = flow retired, tracking
  /// purged). A dense table sized by *this host's* receive set — the flat
  /// vector it replaces was indexed by the global flow counter, so every
  /// host paid 8 bytes per flow anyone ever opened.
  DenseFlowTable<std::int64_t> rx_seq_;
  struct MessageProgress {
    std::uint16_t parts_left;
    std::uint64_t bytes = 0;
    TimePoint created;
  };
  /// In-progress multi-part messages, keyed (flow << 32) | message_id.
  /// Completed messages erase themselves; purge_rx_flow reaps partials of
  /// retired flows and shrinks the bucket array below its high-water mark.
  std::unordered_map<std::uint64_t, MessageProgress> rx_messages_;
  DenseFlowTable<FlowWatch> watched_;

  PacketTracer* tracer_ = nullptr;
  PacketDeliveredFn on_packet_;
  MessageDeliveredFn on_message_;
  PacketExpiredFn on_expired_;
  FlowAbortedFn on_flow_aborted_;
  std::uint64_t injected_ = 0;
  std::uint64_t bytes_injected_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t ooo_ = 0;
  std::uint64_t be_drops_ = 0;
  std::uint64_t policed_drops_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t retries_abandoned_ = 0;
  std::uint64_t shed_submissions_ = 0;
  std::uint64_t expired_packets_ = 0;
  std::uint64_t expired_bytes_ = 0;
  std::uint64_t flows_aborted_ = 0;
  /// Unacked control messages, keyed (flow << 32) | message_id.
  struct PendingRetry {
    std::uint64_t bytes;
    std::uint32_t attempt;
    EventId timer;
  };
  std::optional<RetryParams> retry_;
  std::unordered_map<std::uint64_t, PendingRetry> pending_retry_;
  /// Unregulated NIC backlog per traffic class (quota accounting).
  std::array<std::size_t, kNumTrafficClasses> unreg_backlog_{};
};

}  // namespace dqos
