/// \file deadline.hpp
/// Per-flow deadline computation at the source host (§3.1).
///
/// The stamper owns the single piece of per-flow state the scheme needs:
/// the previous packet's deadline D(P_{i-1}). Three policies:
///
///   Virtual Clock:  D(P_i) = max(D(P_{i-1}), T_now) + L(P_i) / BW_avg
///   Control:        same, with BW_avg = link bandwidth (max priority,
///                   no admission)
///   Frame budget:   D(P_i) = max(D(P_{i-1}), T_now) + budget / Parts(F_i)
///                   so a frame of any size completes ~budget after arrival
///                   with a smooth packet distribution.
///
/// All times are in the *source host's local clock* domain; deadlines leave
/// the host as TTD (§3.3).
#pragma once

#include "qos/flow.hpp"
#include "util/time.hpp"

namespace dqos {

class DeadlineStamper {
 public:
  explicit DeadlineStamper(const FlowSpec& spec);

  /// Per-packet deadline under kVirtualClock / kControlLatency.
  TimePoint stamp(TimePoint local_now, std::uint32_t wire_bytes);

  /// Starts a new application frame of `parts` network packets
  /// (kFrameBudget only).
  void begin_frame(std::uint16_t parts);

  /// Deadline of the next packet of the current frame (kFrameBudget only).
  TimePoint stamp_frame_packet(TimePoint local_now);

  [[nodiscard]] TimePoint last_deadline() const { return last_deadline_; }
  [[nodiscard]] DeadlinePolicy policy() const { return policy_; }

 private:
  DeadlinePolicy policy_;
  Bandwidth deadline_bw_;
  Duration frame_budget_;
  Duration per_packet_budget_ = Duration::zero();  ///< budget / Parts(F)
  TimePoint last_deadline_;                        ///< D(P_{i-1})
};

}  // namespace dqos
