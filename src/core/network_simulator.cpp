#include "core/network_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/run_controller.hpp"
#include "topo/kary_ntree.hpp"
#include "topo/mesh2d.hpp"
#include "topo/single_switch.hpp"
#include "topo/two_level_clos.hpp"
#include "traffic/control_source.hpp"
#include "traffic/selfsimilar_source.hpp"
#include "traffic/video_source.hpp"
#include "traffic/video_trace.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace dqos {
namespace {

std::array<VcId, kNumTrafficClasses> class_vc_map(std::uint8_t num_vcs) {
  switch (num_vcs) {
    case 1: return {0, 0, 0, 0};
    case 2: return {0, 0, 1, 1};
    case 3: return {0, 0, 1, 2};
    default: return {0, 1, 2, 3};  // one VC per class (A5)
  }
}

bool same_pattern(const PatternParams& a, const PatternParams& b) {
  return a.kind == b.kind && a.hotspot_fraction == b.hotspot_fraction &&
         a.hotspot_node == b.hotspot_node &&
         a.permutation_seed == b.permutation_seed;
}

}  // namespace

NetworkSimulator::NetworkSimulator(const SimConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), metrics_(std::make_shared<MetricsCollector>()) {
  cfg_.validate();
  fault_active_ = cfg_.fault.enabled || cfg_.fault.any_faults();
  // Frame-aware degradation rides the expiry switch: when the NIC drops
  // late packets, the video sources also withhold the next B frame.
  cfg_.video.drop_late_b_frames = cfg_.expiry_drop;
  build_topology();
  build_shards();
  injector_ = std::make_unique<FaultInjector>(sim_, *topo_, cfg_.fault);
  injector_->set_admission(admission_.get());
  if (fault_active_ && cfg_.fault.watchdog_interval > Duration::zero()) {
    watchdog_ = std::make_unique<DeadlockWatchdog>(
        sim_, cfg_.fault.watchdog_interval, cfg_.fault.watchdog_rounds);
    if (engine_) {
      // The control calendar alone reads empty at end of run while data
      // events still sit on shard calendars; the final-check probe must
      // span every calendar or it false-fires under sharding.
      watchdog_->set_pending_probe(
          {[](void* c) {
             return static_cast<ShardExecutor*>(c)->events_pending();
           },
           engine_.get()});
    }
  }
  if (cfg_.fault.audit_epoch > Duration::zero()) {
    auditor_ = std::make_unique<InvariantAuditor>(sim_, pool_);
    auditor_->set_admission(admission_.get());
    for (const auto& p : shard_pools_) auditor_->register_pool(p.get());
  }
  build_nodes();
  build_channels();
  if (!cfg_.video_trace_path.empty()) {
    video_trace_ = load_frame_trace(cfg_.video_trace_path);
    // A configured-but-unreadable trace is a setup error, not a fallback —
    // caught at construction even though the workload is built lazily.
    DQOS_EXPECTS(!video_trace_.empty());
  }
}

NetworkSimulator::~NetworkSimulator() {
  // The last window's barrier drained every lane; this catches frees parked
  // by an aborted (exception) run so the pool dtor census still holds.
  for (const auto& p : shard_pools_) p->drain_free_lanes();
}

void NetworkSimulator::build_shards() {
  // More shards than switches would leave empty calendars; clamp instead of
  // erroring so one sweep config can span topology sizes.
  const std::uint32_t shards = std::min(
      cfg_.shards, std::max<std::uint32_t>(topo_->num_switches(), 1));
  if (shards <= 1) return;
  part_ = partition_topology(*topo_, shards);
  const bool threads =
      cfg_.shard_threads == 1 ||
      (cfg_.shard_threads == -1 && std::thread::hardware_concurrency() > 1);
  // The conservative lookahead: every cross-shard interaction rides a
  // channel, and every channel has the same fixed wire latency.
  engine_ = std::make_unique<ShardExecutor>(sim_, shards,
                                            cfg_.link_latency.ps(), threads);
  engine_window_ = engine_->window_active_flag();
  shard_pools_.reserve(shards);
  shard_metrics_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shard_pools_.push_back(std::make_unique<PacketPool>());
    shard_pools_.back()->enable_cross_free(shards,
                                           static_cast<std::int32_t>(s));
    shard_metrics_.push_back(std::make_unique<MetricsCollector>());
    shard_metrics_.back()->set_relay(metrics_.get(), &engine_->log(s),
                                     engine_window_);
  }
  engine_->set_effect_sink({[](void* ctx, const DeferredEffect& e) {
                              auto* self = static_cast<NetworkSimulator*>(ctx);
                              if (e.kind == DeferredEffect::Kind::kFlowAborted) {
                                self->finish_flow_abort(
                                    static_cast<FlowId>(e.id));
                              } else {
                                self->metrics_->apply(e);
                              }
                            },
                            this});
  engine_->set_barrier_hook(
      {[](void* ctx) { static_cast<NetworkSimulator*>(ctx)->on_shard_barrier(); },
       this});
}

Simulator& NetworkSimulator::sim_for(NodeId n) {
  return engine_ ? engine_->shard_sim(part_.shard_of(n)) : sim_;
}

MetricsCollector* NetworkSimulator::metrics_for(NodeId n) {
  return engine_ ? shard_metrics_[part_.shard_of(n)].get() : metrics_.get();
}

PacketPool& NetworkSimulator::pool_for(NodeId n) {
  return engine_ ? *shard_pools_[part_.shard_of(n)] : pool_;
}

void NetworkSimulator::on_shard_barrier() {
  for (std::uint32_t s = 0; s < engine_->num_shards(); ++s) {
    std::vector<CrossArrivalNote>& notes = engine_->arrival_notes(s);
    for (const CrossArrivalNote& note : notes) {
      static_cast<Channel*>(note.ch)->apply_cross_arrival(note.vc, note.bytes);
    }
    notes.clear();
  }
  for (const auto& p : shard_pools_) p->drain_free_lanes();
}

void NetworkSimulator::run_calendar_until(TimePoint t) {
  if (engine_) {
    engine_->run_until(t);
  } else {
    sim_.run_until(t);
  }
}

void NetworkSimulator::build_topology() {
  switch (cfg_.topology) {
    case TopologyKind::kFoldedClos:
      topo_ = make_two_level_clos(cfg_.num_leaves, cfg_.hosts_per_leaf,
                                  cfg_.num_spines);
      break;
    case TopologyKind::kKaryNTree:
      topo_ = make_kary_ntree(cfg_.kary_k, cfg_.kary_n);
      break;
    case TopologyKind::kSingleSwitch:
      topo_ = make_single_switch(cfg_.single_switch_hosts);
      break;
    case TopologyKind::kMesh2D:
      topo_ = make_mesh2d(cfg_.mesh_width, cfg_.mesh_height,
                          cfg_.mesh_concentration);
      break;
  }
  admission_ = std::make_unique<AdmissionController>(
      *topo_, cfg_.link_bw, cfg_.reservable_fraction, cfg_.hier_admission);
  admission_->set_class_vc_map(class_vc_map(cfg_.num_vcs));
  pattern_ = make_pattern(cfg_.pattern, topo_->num_hosts());
}

void NetworkSimulator::build_nodes() {
  Rng clock_rng = rng_.split(0x10c);
  auto draw_offset = [&]() -> Duration {
    if (cfg_.max_clock_skew <= Duration::zero()) return Duration::zero();
    return Duration::picoseconds(static_cast<std::int64_t>(
        clock_rng.uniform_int(0, static_cast<std::uint64_t>(cfg_.max_clock_skew.ps()))));
  };

  SwitchParams sw;
  sw.arch = cfg_.arch;
  sw.num_vcs = cfg_.num_vcs;
  sw.buffer_bytes_per_vc = cfg_.buffer_bytes_per_vc;
  sw.vc_weights = cfg_.vc_weights;
  sw.heap_op_latency = cfg_.heap_op_latency;
  switches_.reserve(topo_->num_switches());
  for (std::uint32_t s = 0; s < topo_->num_switches(); ++s) {
    const NodeId id = topo_->switch_id(s);
    switches_.push_back(std::make_unique<Switch>(
        sim_for(id), id, topo_->num_ports(id), sw, LocalClock(draw_offset())));
    switches_.back()->set_drop_callback(
        {[](void* ctx, TrafficClass tc) {
           static_cast<MetricsCollector*>(ctx)->on_packet_dropped(tc);
         },
         metrics_for(id)});
    injector_->register_switch(switches_.back().get());
    if (watchdog_) watchdog_->register_switch(switches_.back().get());
    if (auditor_) auditor_->register_switch(switches_.back().get());
  }

  HostParams hp;
  hp.num_vcs = cfg_.num_vcs;
  hp.mtu_bytes = cfg_.mtu_bytes;
  hp.edf_queues = cfg_.arch != SwitchArch::kTraditional2Vc;
  hp.vc_weights = cfg_.vc_weights;
  hp.expiry_drop = cfg_.expiry_drop;
  hp.expiry_abort_ratio = cfg_.expiry_abort_ratio;
  hosts_.reserve(topo_->num_hosts());
  // Warm the packet pool(s) to the expected steady-state working set (a few
  // packets in flight per host plus NIC backlog) so the measured phase never
  // touches the general heap on the packet path. Sharded runs allocate from
  // per-shard pools, warmed by their own hosts' share.
  if (engine_) {
    for (NodeId h = 0; h < topo_->num_hosts(); ++h) {
      pool_for(h).preallocate(pool_for(h).free_count() + 64);
    }
  } else {
    pool_.preallocate(static_cast<std::size_t>(topo_->num_hosts()) * 64);
  }
  const bool retry_on = fault_active_ && cfg_.fault.control_retry;
  for (NodeId h = 0; h < topo_->num_hosts(); ++h) {
    hosts_.push_back(std::make_unique<Host>(sim_for(h), h, hp,
                                            LocalClock(draw_offset()),
                                            pool_for(h)));
    hosts_.back()->set_packet_callback(
        [m = metrics_for(h)](const Packet& p, TimePoint now, Duration slack) {
          m->on_packet_delivered(p, now, slack);
        });
    // Message completion doubles as the (zero-latency, control-plane) ack
    // that disarms a pending control retry at the source. (Retries are
    // config-rejected under sharding: the ack is a cross-host touch no
    // lookahead covers.)
    hosts_.back()->set_message_callback(
        [this, retry_on, m = metrics_for(h)](const MessageDelivered& d) {
          m->on_message_delivered(d.tclass, d.created, d.bytes, d.completed);
          if (retry_on && d.tclass == TrafficClass::kControl) {
            if (const NodeId* src = flow_src_.find(d.flow)) {
              hosts_[*src]->on_message_acked(d.flow, d.message_id);
            }
          }
        });
    if (retry_on) {
      hosts_.back()->enable_control_retry(
          Host::RetryParams{cfg_.fault.retry_timeout, cfg_.fault.max_retries});
    }
    if (cfg_.expiry_drop) {
      hosts_.back()->set_expired_callback(
          [m = metrics_for(h)](const Packet& p, TimePoint /*now*/) {
            m->on_packet_expired(p);
          });
      hosts_.back()->set_flow_aborted_callback(
          [this](FlowId id) { on_flow_aborted(id); });
    }
    injector_->register_host(hosts_.back().get());
    if (watchdog_) watchdog_->register_host(hosts_.back().get());
    if (auditor_) auditor_->register_host(hosts_.back().get());
  }
}

void NetworkSimulator::build_channels() {
  // One directed channel per (node, port) with a wired peer.
  for (NodeId n = 0; n < topo_->num_nodes(); ++n) {
    for (PortId p = 0; p < topo_->num_ports(n); ++p) {
      const Endpoint peer = topo_->peer(n, p);
      if (!peer.valid()) continue;
      channels_.push_back(std::make_unique<Channel>(
          sim_for(n), cfg_.link_bw, cfg_.link_latency, cfg_.num_vcs,
          cfg_.buffer_bytes_per_vc));
      Channel* ch = channels_.back().get();
      if (engine_) {
        const std::uint32_t s_src = part_.shard_of(n);
        const std::uint32_t s_dst = part_.shard_of(peer.node);
        if (s_src != s_dst) {
          ch->set_cross_shard(engine_.get(), s_src, s_dst,
                              &engine_->shard_sim(s_dst));
        }
      }
      injector_->register_channel(Endpoint{n, p}, ch);
      if (auditor_) auditor_->register_channel(Endpoint{n, p}, ch);
      channel_tier_.push_back(topo_->is_host(n)
                                  ? LinkTier::kInjection
                                  : (topo_->is_host(peer.node) ? LinkTier::kDelivery
                                                               : LinkTier::kFabric));
      // Receiver side.
      if (topo_->is_switch(peer.node)) {
        Switch& sw = *switches_[topo_->switch_index(peer.node)];
        ch->connect_to(&sw, peer.port);
        sw.attach_input(peer.port, ch);
      } else {
        Host& host = *hosts_[peer.node];
        ch->connect_to(&host, 0);
        host.attach_downlink(ch);
      }
      // Sender side.
      if (topo_->is_switch(n)) {
        switches_[topo_->switch_index(n)]->attach_output(p, ch);
      } else {
        hosts_[n]->attach_uplink(ch);
      }
    }
  }
}

double NetworkSimulator::phase_rate(const PhaseSpec& ph, TrafficClass c) const {
  return ph.load * ph.class_share[static_cast<std::size_t>(c)] *
         cfg_.link_bw.bytes_per_sec();
}

std::uint32_t NetworkSimulator::bounded_fanout() const {
  const std::uint32_t n = topo_->num_hosts();
  return (cfg_.fanout > 0 && n >= 2 && cfg_.fanout < n - 1) ? cfg_.fanout : 0;
}

void NetworkSimulator::activate_pattern(const PatternParams& params) {
  if (same_pattern(params, active_pattern_params_)) return;
  extra_patterns_.push_back(make_pattern(params, topo_->num_hosts()));
  active_pattern_ = extra_patterns_.back().get();
  active_pattern_params_ = params;
}

void NetworkSimulator::prepare_workload() {
  prepare_workload(Scenario::single_phase(cfg_));
}

void NetworkSimulator::prepare_workload(const Scenario& scn) {
  if (workload_prepared_) return;
  workload_prepared_ = true;
  DQOS_EXPECTS(!scn.phases.empty());
  const PhaseSpec& p0 = scn.phases.front();
  active_pattern_ = pattern_.get();
  active_pattern_params_ = cfg_.pattern;
  activate_pattern(p0.pattern);  // no-op for single_phase(cfg_)
  // A class's sources exist iff it is enabled and offers load in *some*
  // phase; phase 0 sets the initial rate (possibly zero = paused). For a
  // one-phase scenario this collapses to the legacy "enabled && rate > 0".
  const auto peak_rate = [&](TrafficClass c) {
    double r = 0.0;
    for (const PhaseSpec& ph : scn.phases) {
      r = std::max(r, phase_rate(ph, c));
    }
    return r;
  };
  // Per-stream video rate: from the trace if one is configured, else from
  // the clamp-corrected synthetic model, so the class actually offers its
  // Table 1 share. Computed once — churn admissions reuse it. (The
  // estimate draws from a fresh split of the seed, so hoisting it out of
  // the per-host loop changes no stream: every host saw the same value.)
  if (cfg_.enable_video) {
    video_realized_bps_ =
        video_trace_.empty()
            ? VideoSource::estimate_realized_bytes_per_sec(cfg_.video,
                                                           rng_.split(0x71de0))
            : TraceVideoSource::trace_mean_bytes(video_trace_) /
                  cfg_.video.frame_period.sec();
  }
  const std::uint32_t n = topo_->num_hosts();
  const std::uint32_t fanout = bounded_fanout();
  for (NodeId h = 0; h < n; ++h) {
    Host& host = *hosts_[h];
    Rng host_rng = rng_.split(0xbeef0000ULL + h);

    // Bounded fanout (datacenter scale): draw this host's peer set once —
    // pattern-shaped, deterministic from the seed — and share it across
    // the per-destination classes below. Their flow tables and admission
    // records then grow O(fanout) per host instead of O(N). fanout == 0
    // (the default, and every golden config) takes the all-peers path and
    // draws nothing, so legacy runs stay byte-identical.
    std::vector<NodeId> peers;
    const DestinationPattern* host_pattern = active_pattern_;
    if (fanout > 0) {
      Rng peer_rng = host_rng.split(7);
      std::vector<std::uint8_t> chosen(n, 0);
      // Deterministic patterns (transpose, tornado) offer fewer distinct
      // destinations than asked; the attempt cap makes that a smaller peer
      // set rather than a spin.
      for (std::uint32_t tries = 0;
           peers.size() < fanout && tries < 16u * fanout + n; ++tries) {
        const NodeId d = active_pattern_->pick(h, peer_rng);
        if (d == h || chosen[d] != 0) continue;
        chosen[d] = 1;
        peers.push_back(d);
      }
      std::sort(peers.begin(), peers.end());
      peer_patterns_.push_back(std::make_unique<SubsetPattern>(peers));
      host_pattern = peer_patterns_.back().get();
    } else {
      peers.reserve(n - 1);
      for (NodeId d = 0; d < n; ++d) {
        if (d != h) peers.push_back(d);
      }
    }

    // ---- Control: latency-critical small messages to patterned peers ----
    if (cfg_.enable_control && peak_rate(TrafficClass::kControl) > 0.0) {
      std::vector<FlowId> flows_by_dst(n, kInvalidFlow);
      for (const NodeId d : peers) {
        FlowRequest req;
        req.src = h;
        req.dst = d;
        req.tclass = TrafficClass::kControl;
        req.policy = DeadlinePolicy::kControlLatency;
        const auto spec = admission_->admit(req);
        DQOS_ASSERT(spec.has_value());  // control reserves nothing
        host.open_flow(*spec);
        flow_src_.insert(spec->id, h);
        flows_by_dst[d] = spec->id;
      }
      ControlParams cp;
      cp.target_bytes_per_sec = phase_rate(p0, TrafficClass::kControl);
      sources_.push_back(std::make_unique<ControlSource>(
          sim_for(h), host, host_rng.split(1), metrics_for(h),
          std::move(flows_by_dst), cp, host_pattern));
    }

    // ---- Multimedia: admitted MPEG-4 streams with 10 ms frame budget ----
    // Static streams are sized by phase 0; later phases change the video
    // population through churn (whole streams admitted/departed), never by
    // retargeting a running stream's rate.
    if (cfg_.enable_video && phase_rate(p0, TrafficClass::kMultimedia) > 0.0) {
      const auto n_streams = static_cast<std::uint32_t>(std::lround(
          phase_rate(p0, TrafficClass::kMultimedia) / video_realized_bps_));
      Rng pick = host_rng.split(2);
      for (std::uint32_t v = 0; v < n_streams; ++v) {
        const NodeId dst = active_pattern_->pick(h, pick);
        FlowRequest req;
        req.src = h;
        req.dst = dst;
        req.tclass = TrafficClass::kMultimedia;
        req.policy = DeadlinePolicy::kFrameBudget;
        req.reserve_bw = Bandwidth::from_bytes_per_sec(video_realized_bps_);
        req.frame_budget = cfg_.video_frame_budget;
        req.use_eligible_time = cfg_.video_eligible_time;
        req.eligible_lead = cfg_.eligible_lead;
        const auto spec = admission_->admit(req);
        if (!spec) continue;  // network reservation exhausted
        host.open_flow(*spec);
        flow_src_.insert(spec->id, h);
        if (video_trace_.empty()) {
          sources_.push_back(std::make_unique<VideoSource>(
              sim_for(h), host, pick.split(100 + v), metrics_for(h), spec->id,
              cfg_.video));
        } else {
          TraceVideoParams tv;
          tv.frame_period = cfg_.video.frame_period;
          tv.start_frame = static_cast<std::size_t>(
              pick.uniform_int(0, video_trace_.size() - 1));
          sources_.push_back(std::make_unique<TraceVideoSource>(
              sim_for(h), host, pick.split(100 + v), metrics_for(h), spec->id,
              &video_trace_, tv));
        }
      }
    }

    // ---- Unregulated classes: self-similar, aggregated per class --------
    // Deadline ("guaranteed minimum") bandwidths partition the capacity the
    // regulated classes leave over, in proportion to the configured weights
    // — §3: "several aggregated flows, each one with a different bandwidth
    // to compute deadlines ... we can guarantee minimum bandwidth if we are
    // careful assigning weights". If the clocks were allowed to outrun the
    // arrival rates, every deadline would sit at ~now and the weights would
    // differentiate nothing (Fig. 4 would flatten).
    // Deadline weights are fixed at admission from the phase 0 shares;
    // later phases shift *offered* rates via retarget(), not the weights
    // (re-deriving weights would mean re-admitting every aggregate).
    const double regulated_share =
        p0.class_share[static_cast<std::size_t>(TrafficClass::kControl)] +
        p0.class_share[static_cast<std::size_t>(TrafficClass::kMultimedia)];
    const double leftover_bps =
        std::max(0.05, 1.0 - regulated_share) * cfg_.link_bw.bytes_per_sec();
    const double weight_sum =
        (cfg_.enable_best_effort ? cfg_.best_effort_weight : 0.0) +
        (cfg_.enable_background ? cfg_.background_weight : 0.0);
    const auto add_unregulated = [&](TrafficClass tc, double weight, bool enabled,
                                     std::uint64_t salt) {
      if (!enabled || peak_rate(tc) <= 0.0) return;
      std::vector<FlowId> flows_by_dst(n, kInvalidFlow);
      FlowId aggregate = kInvalidFlow;
      for (const NodeId d : peers) {
        FlowRequest req;
        req.src = h;
        req.dst = d;
        req.tclass = tc;
        req.policy = DeadlinePolicy::kVirtualClock;
        // The class's deadline weight: the "bandwidth to compute deadlines"
        // of the aggregated flow (Fig. 4 differentiation).
        req.deadline_bw =
            Bandwidth::from_bytes_per_sec(leftover_bps * weight / weight_sum);
        auto spec = admission_->admit(req);
        DQOS_ASSERT(spec.has_value());  // no reservation -> always admitted
        if (aggregate == kInvalidFlow) aggregate = spec->id;
        spec->aggregate = aggregate;
        host.open_flow(*spec);
        flow_src_.insert(spec->id, h);
        flows_by_dst[d] = spec->id;
      }
      SelfSimilarParams sp;
      sp.target_bytes_per_sec = phase_rate(p0, tc);
      sp.tclass = tc;
      sources_.push_back(std::make_unique<SelfSimilarSource>(
          sim_for(h), host, host_rng.split(salt), metrics_for(h),
          std::move(flows_by_dst), sp, host_pattern));
    };
    add_unregulated(TrafficClass::kBestEffort, cfg_.best_effort_weight,
                    cfg_.enable_best_effort, 3);
    add_unregulated(TrafficClass::kBackground, cfg_.background_weight,
                    cfg_.enable_background, 4);
  }
}

SimReport NetworkSimulator::run() {
  // The legacy single-shot entry point is now literally a one-phase
  // scenario; RunController replays the old lifecycle event-for-event.
  RunController controller(*this, Scenario::single_phase(cfg_));
  return controller.run().total;
}

void NetworkSimulator::begin_run() {
  if (ran_) {
    throw RunError(
        "run error: this NetworkSimulator has already run; the event "
        "calendar and metric windows are single-shot — construct a fresh "
        "simulator per run (phased experiments go through RunController)");
  }
  ran_ = true;
  prepare_workload();
}

void NetworkSimulator::start_sources(TimePoint stop) {
  for (const auto& src : sources_) src->start(stop);
}

void NetworkSimulator::arm_run_services(TimePoint horizon) {
  const TimePoint t0 = sim_.now();
  // Fault machinery (opt-in: schedules nothing when inactive, so the
  // default run stays bit-identical). Periodic processes are bounded by
  // the run horizon so the calendar can still drain.
  if (fault_active_) {
    if (cfg_.fault.credit_resync_window > Duration::zero()) {
      for (const auto& ch : channels_) {
        ch->enable_credit_resync(cfg_.fault.credit_resync_window, horizon);
      }
    }
    injector_->start(horizon);
    if (watchdog_) watchdog_->arm(horizon);
  }
  // The auditor opts in independently of fault injection: a clean overload
  // run still wants its conservation laws checked at every epoch.
  if (auditor_) auditor_->arm(cfg_.fault.audit_epoch, horizon);

  if (cfg_.probe_interval > Duration::zero()) {
    const TimePoint probe_end = horizon;
    const auto bins = static_cast<std::size_t>((probe_end - t0) / cfg_.probe_interval) + 1;
    queue_depth_series_ = std::make_shared<TimeSeries>(t0, cfg_.probe_interval, bins);
    injection_series_ = std::make_shared<TimeSeries>(t0, cfg_.probe_interval, bins);
    // Self-rescheduling sampler. Queue depth is a snapshot per bin;
    // injection is the byte delta since the previous sample.
    probe_fn_ = [this, probe_end] {
      const TimePoint now = sim_.now();
      std::size_t queued = 0;
      for (const auto& s : switches_) queued += s->packets_queued();
      queue_depth_series_->add(now, static_cast<double>(queued));
      std::uint64_t injected = 0;
      for (const auto& h : hosts_) injected += h->bytes_injected();
      injection_series_->add(now, static_cast<double>(injected - last_injected_bytes_));
      last_injected_bytes_ = injected;
      if (now + cfg_.probe_interval <= probe_end) {
        sim_.schedule_after(cfg_.probe_interval, [this] { probe_fn_(); });
      }
    };
    sim_.schedule_after(cfg_.probe_interval, [this] { probe_fn_(); });
  }
}

SimReport NetworkSimulator::collect_report(TimePoint t0) {
  if (watchdog_) watchdog_->final_check();

  SimReport rep;
  rep.arch = cfg_.arch;
  rep.load = cfg_.load;
  for (const TrafficClass c : all_traffic_classes()) {
    rep.classes[static_cast<std::size_t>(c)] = metrics_->report(c);
  }
  rep.order_errors = total_order_errors();
  rep.order_errors_regulated = total_order_errors_vc(kRegulatedVc);
  rep.takeovers = total_takeovers();
  rep.credit_stalls = total_credit_stalls();
  for (const auto& h : hosts_) {
    rep.out_of_order += h->out_of_order_deliveries();
    rep.best_effort_drops += h->best_effort_drops();
    rep.packets_injected += h->packets_injected();
    rep.packets_delivered += h->packets_received();
  }
  rep.events_processed =
      engine_ ? engine_->events_processed() : sim_.events_processed();
  rep.flows_admitted = admission_->admitted_flows();
  rep.flows_rejected = admission_->rejected_flows();
  rep.metrics = metrics_;

  rep.fault.active = fault_active_;
  rep.fault.injected = injector_->stats();
  for (const auto& ch : channels_) {
    rep.fault.credit_resyncs += ch->resyncs();
    rep.fault.credit_bytes_resynced += ch->resynced_bytes();
  }
  for (const auto& s : switches_) {
    rep.fault.packets_dropped_link_down += s->counters().dropped_link_down;
    rep.fault.link_down_stalls += s->counters().link_down_stalls;
  }
  for (const auto& h : hosts_) {
    rep.fault.control_retries += h->control_retries();
    rep.fault.control_retries_abandoned += h->control_retries_abandoned();
    rep.fault.shed_submissions += h->shed_submissions();
  }
  rep.fault.flows_rerouted = admission_->flows_rerouted();
  rep.fault.flows_shed = admission_->flows_shed();
  if (watchdog_) {
    rep.fault.watchdog_fired = watchdog_->fired();
    rep.fault.watchdog_report = watchdog_->report();
  }
  rep.queue_depth = queue_depth_series_;
  rep.injected_bytes = injection_series_;

  for (const auto& h : hosts_) {
    rep.degradation.expired_packets += h->expired_packets();
    rep.degradation.expired_bytes += h->expired_bytes();
    rep.degradation.flows_aborted += h->flows_aborted();
  }
  rep.degradation.frames_dropped = total_frames_dropped();
  rep.degradation.messages_refused = total_messages_refused();
  if (auditor_) {
    auditor_->audit_now("collect_report");
    rep.degradation.audits_passed = auditor_->audits_passed();
  }

  // Per-tier link utilization over the whole run.
  const double elapsed_sec = (sim_.now() - t0).sec();
  if (elapsed_sec > 0.0) {
    std::array<StreamingStats, 3> tiers;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      tiers[static_cast<std::size_t>(channel_tier_[i])].add(
          channels_[i]->busy_time().sec() / elapsed_sec);
    }
    rep.util_injection = {tiers[0].mean(), tiers[0].max()};
    rep.util_delivery = {tiers[1].mean(), tiers[1].max()};
    rep.util_fabric = {tiers[2].mean(), tiers[2].max()};
  }
  return rep;
}

void NetworkSimulator::apply_phase(const PhaseSpec& phase) {
  DQOS_EXPECTS(workload_prepared_);
  activate_pattern(phase.pattern);
  for (const auto& src : sources_) {
    // Multimedia streams are fixed-rate; their population is churn-driven.
    // Stopped sources (departed churn flows) ignore the retarget.
    if (src->tclass() == TrafficClass::kMultimedia) continue;
    // Bounded-fanout sources keep their per-host peer sets across phases —
    // only flows that were opened can carry traffic, so handing them the
    // phase's full-fabric pattern would pick destinations with no flow.
    const DestinationPattern* pat =
        bounded_fanout() > 0 ? nullptr : active_pattern_;
    src->retarget(phase_rate(phase, src->tclass()), pat);
  }
}

std::optional<FlowId> NetworkSimulator::open_video_flow(NodeId src, Rng rng,
                                                        TimePoint stop) {
  DQOS_EXPECTS(workload_prepared_);
  DQOS_EXPECTS(cfg_.enable_video);
  DQOS_EXPECTS(src < topo_->num_hosts());
  const NodeId dst = active_pattern_->pick(src, rng);
  FlowRequest req;
  req.src = src;
  req.dst = dst;
  req.tclass = TrafficClass::kMultimedia;
  req.policy = DeadlinePolicy::kFrameBudget;
  req.reserve_bw = Bandwidth::from_bytes_per_sec(video_realized_bps_);
  req.frame_budget = cfg_.video_frame_budget;
  req.use_eligible_time = cfg_.video_eligible_time;
  req.eligible_lead = cfg_.eligible_lead;
  const auto spec = admission_->admit(req);
  if (!spec) return std::nullopt;  // mid-run rejection: no headroom left
  Host& host = *hosts_[src];
  host.open_flow(*spec);
  flow_src_.insert(spec->id, src);
  if (video_trace_.empty()) {
    sources_.push_back(std::make_unique<VideoSource>(
        sim_for(src), host, rng.split(1), metrics_for(src), spec->id,
        cfg_.video));
  } else {
    TraceVideoParams tv;
    tv.frame_period = cfg_.video.frame_period;
    tv.start_frame = static_cast<std::size_t>(
        rng.uniform_int(0, video_trace_.size() - 1));
    sources_.push_back(std::make_unique<TraceVideoSource>(
        sim_for(src), host, rng.split(1), metrics_for(src), spec->id,
        &video_trace_, tv));
  }
  churn_sources_.insert(spec->id, sources_.back().get());
  sources_.back()->start(stop);
  return spec->id;
}

void NetworkSimulator::close_video_flow(FlowId id) {
  // Order matters: silence the source before retiring its host flow
  // (submitting to a retired flow is a contract violation), and release
  // the reservation only if the fault path hasn't already shed it.
  churn_sources_.at(id)->stop();
  churn_sources_.erase(id);
  if (admission_->has_flow(id)) admission_->release(id);
  const NodeId src = flow_src_.at(id);
  const NodeId dst = hosts_[src]->retire_flow(id);
  flow_src_.erase(id);
  // Receive-side reclamation: without it, churn ratchets the destination's
  // per-flow rx tracking for the rest of the run. Safe here — churn events
  // run serially (control calendar under the sharded engine), so touching
  // the destination host cannot race a shard window.
  hosts_[dst]->purge_rx_flow(id);
}

std::uint64_t NetworkSimulator::close_remaining_churn_flows() {
  const std::vector<FlowId> ids = churn_sources_.ids_ascending();
  for (const FlowId id : ids) close_video_flow(id);
  return ids.size();
}

void NetworkSimulator::retire_shed_flow(FlowId id, NodeId src) {
  if (churn_sources_.contains(id)) {
    close_video_flow(id);  // reservation already gone: release is guarded
    return;
  }
  DQOS_EXPECTS(src < hosts_.size());
  hosts_[src]->close_flow(id);
  if (admission_->has_flow(id)) admission_->release(id);
}

void NetworkSimulator::on_flow_aborted(FlowId id) {
  // Inside a parallel window only the aborting host's shard may be touched:
  // silence its source now (local state) and defer the admission-side
  // release — shared, serial-only state — to the barrier, sequenced by the
  // abort's position in the merged fire order.
  if (engine_ != nullptr && *engine_window_) {
    if (TrafficSource** src = churn_sources_.find(id)) (*src)->stop();
    DeferredEffect e;
    e.kind = DeferredEffect::Kind::kFlowAborted;
    e.id = id;
    engine_->log(part_.shard_of(flow_src_.at(id))).effects.push_back(e);
    return;
  }
  finish_flow_abort(id);
}

void NetworkSimulator::finish_flow_abort(FlowId id) {
  // The host has already closed the flow and purged its queues; free its
  // reservation so the bandwidth helps flows still meeting deadlines.
  if (churn_sources_.contains(id)) {
    close_video_flow(id);  // stops the source, releases, retires
    return;
  }
  if (admission_->has_flow(id)) admission_->release(id);
  // Static sources keep producing into the closed flow; every refused
  // submission is counted (shed_submissions) as degradation.
}

std::uint64_t NetworkSimulator::total_frames_dropped() const {
  std::uint64_t sum = 0;
  for (const auto& s : sources_) sum += s->frames_dropped();
  return sum;
}

std::uint64_t NetworkSimulator::total_messages_refused() const {
  std::uint64_t sum = 0;
  for (const auto& s : sources_) sum += s->messages_refused();
  return sum;
}

std::uint64_t NetworkSimulator::total_order_errors() const {
  std::uint64_t sum = 0;
  for (const auto& s : switches_) sum += s->order_errors();
  return sum;
}

std::uint64_t NetworkSimulator::total_order_errors_vc(VcId vc) const {
  std::uint64_t sum = 0;
  for (const auto& s : switches_) sum += s->order_errors_vc(vc);
  return sum;
}

std::uint64_t NetworkSimulator::total_takeovers() const {
  std::uint64_t sum = 0;
  for (const auto& s : switches_) sum += s->takeovers();
  return sum;
}

std::uint64_t NetworkSimulator::total_credit_stalls() const {
  std::uint64_t sum = 0;
  for (const auto& s : switches_) sum += s->counters().credit_stalls;
  return sum;
}

}  // namespace dqos
