#include "core/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <thread>
#include <vector>

namespace dqos {

unsigned SweepRunner::resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DQOS_SWEEP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned SweepRunner::clamp_for_width(unsigned threads,
                                      unsigned threads_per_job) {
  if (threads_per_job <= 1 || threads <= 1) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned cores = hw > 0 ? hw : 1;
  if (static_cast<std::uint64_t>(threads) * threads_per_job <= cores) {
    return threads;
  }
  const unsigned clamped = std::max(1u, cores / threads_per_job);
  if (clamped < threads) {
    std::fprintf(stderr,
                 "[sweep] clamping replica pool %u -> %u: %u-thread replicas "
                 "would oversubscribe %u cores\n",
                 threads, clamped, threads_per_job, cores);
  }
  return clamped;
}

SweepRunner::SweepRunner(unsigned threads, unsigned threads_per_job)
    : threads_(clamp_for_width(resolve_threads(threads), threads_per_job)) {}

void SweepRunner::run(std::size_t n, const std::function<void(std::size_t)>& job) {
  if (n == 0) return;
  const std::size_t nthreads = std::min<std::size_t>(threads_, n);
  if (nthreads <= 1) {
    // Serial path: no pool, exceptions propagate naturally. This is also
    // the reference execution order the parallel path must reproduce.
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mutex;
  std::exception_ptr first_err;
  std::size_t first_err_index = std::numeric_limits<std::size_t>::max();

  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        job(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lk(err_mutex);
        if (i < first_err_index) {
          first_err_index = i;
          first_err = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  if (first_err) std::rethrow_exception(first_err);
}

void SweepRunner::log(const std::string& line) {
  const std::lock_guard<std::mutex> lk(log_mutex_);
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
}

}  // namespace dqos
