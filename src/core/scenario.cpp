#include "core/scenario.hpp"

namespace dqos {

namespace {

std::string phase_err(std::size_t i, const std::string& why) {
  return "phase " + std::to_string(i) + " " + why;
}

}  // namespace

std::string Scenario::check(const SimConfig& base) const {
  if (phases.empty()) return "scenario needs at least one phase";
  if (phases.front().start != Duration::zero()) {
    return "phase 0 must start at offset 0 (it also covers warm-up)";
  }
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpec& ph = phases[i];
    if (i > 0 && ph.start <= phases[i - 1].start) {
      return phase_err(i, "must start strictly after phase " +
                              std::to_string(i - 1) +
                              " (starts must be sorted and distinct)");
    }
    if (ph.start >= base.measure) {
      return phase_err(i, "starts at or past the end of the measurement "
                          "window (measure-ms)");
    }
    if (!(ph.load > 0.0) || ph.load > 2.0) {
      return phase_err(i, "load must be in (0, 2]");
    }
    double share_sum = 0.0;
    for (const double s : ph.class_share) {
      if (s < 0.0) return phase_err(i, "class shares must be non-negative");
      share_sum += s;
    }
    if (share_sum > 2.0 + 1e-9) {
      return phase_err(i, "class shares must sum to at most 2.0");
    }
    if (ph.flow_arrivals_per_sec < 0.0 || ph.flow_departures_per_sec < 0.0) {
      return phase_err(i, "churn rates must be non-negative");
    }
    if (ph.flow_arrivals_per_sec > 0.0 && !base.enable_video) {
      return phase_err(i, "requests flow churn but video traffic is disabled "
                          "(churn arrivals are multimedia streams)");
    }
  }
  return "";
}

bool Scenario::has_churn() const {
  for (const PhaseSpec& ph : phases) {
    if (ph.flow_arrivals_per_sec > 0.0) return true;
  }
  return false;
}

Scenario Scenario::single_phase(const SimConfig& cfg) {
  Scenario scn;
  PhaseSpec ph;
  ph.start = Duration::zero();
  ph.load = cfg.load;
  ph.class_share = cfg.class_share;
  ph.pattern = cfg.pattern;
  scn.phases.push_back(ph);
  return scn;
}

Scenario Scenario::scaled(double load_factor) const {
  Scenario out = *this;
  for (PhaseSpec& ph : out.phases) ph.load *= load_factor;
  return out;
}

}  // namespace dqos
