/// \file config_io.hpp
/// SimConfig <-> command line / config file mapping, so every bench,
/// example and the dqos_sim tool accept one uniform set of switches:
///
///   --arch=traditional|ideal|simple|advanced   --load=0.8
///   --topology=clos|kary|single  --leaves=16 --hosts-per-leaf=8 --spines=8
///   --kary-k=4 --kary-n=2  --hosts=16
///   --vcs=2 --vc-weights=8,4,2,1 --buffer=8192 --speedup=2.0
///   --link-gbps=8 --link-latency-ns=100 --mtu=2048
///   --measure-ms=20 --warmup-ms=2 --drain-ms=3 --seed=1
///   --no-video --no-control --no-besteffort --no-background
///   --video-rate-mbs=3 --frame-budget-ms=10 --no-eligible
///   --eligible-lead-us=20 --be-weight=2 --bg-weight=1 --skew-us=0
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "core/scenario.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace dqos {

/// A malformed, unknown, or out-of-range configuration value. The message
/// names the offending key, the rejected value, and where it came from
/// (config-file line or command line) — tools print it and exit instead of
/// tripping a contract abort on user input.
class ConfigError : public DqosError {
 public:
  explicit ConfigError(const std::string& what) : DqosError(what) {}
};

[[nodiscard]] std::optional<SwitchArch> parse_arch(const std::string& name);
[[nodiscard]] std::optional<TopologyKind> parse_topology(const std::string& name);

/// Overlays recognized keys from `args` onto `base` and validates.
/// Throws ConfigError on malformed or out-of-range values (unrecognized
/// keys are still ignored here — callers may use extra keys themselves;
/// see require_known_keys for strict checking).
[[nodiscard]] SimConfig config_from_args(const ArgParser& args,
                                         SimConfig base = SimConfig{});

/// Throws ConfigError if `args` holds a key that is neither a SimConfig key
/// nor listed in `extra` (tool-specific switches). Catches typos like
/// --laod=0.9 that would otherwise be silently ignored.
void require_known_keys(const ArgParser& args,
                        std::initializer_list<std::string_view> extra = {});

/// Serializes a SimConfig to `key=value` lines accepted back by
/// ArgParser::load_file + config_from_args (round-trippable).
[[nodiscard]] std::string config_to_string(const SimConfig& cfg);

/// Builds a Scenario from `[phase.N]` sections (keys `phase.N.<subkey>`
/// after ArgParser::load_file prefixing). Returns nullopt when `args`
/// carries no phase keys at all. Phases must be numbered contiguously
/// from 0; phase 0 starts at the measurement window's origin, later
/// phases need `start-ms` (offset from that origin, strictly
/// increasing). Subkeys: start-ms, load, share (4-value csv summing like
/// SimConfig::class_share), pattern, hotspot-fraction, hotspot-node,
/// flow-arrivals-per-sec, flow-departures-per-sec; omitted subkeys
/// inherit from `base` (phase 0) — i.e. each phase is a delta on the
/// base single-phase run. Throws ConfigError (with the file:line origin)
/// on malformed values, overlapping/unsorted starts, or index gaps.
[[nodiscard]] std::optional<Scenario> scenario_from_args(const ArgParser& args,
                                                         const SimConfig& base);

/// Serializes a Scenario to `[phase.N]` sections accepted back by
/// ArgParser::load_file + scenario_from_args (round-trippable).
[[nodiscard]] std::string scenario_to_string(const Scenario& scn);

}  // namespace dqos
