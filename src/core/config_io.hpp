/// \file config_io.hpp
/// SimConfig <-> command line / config file mapping, so every bench,
/// example and the dqos_sim tool accept one uniform set of switches:
///
///   --arch=traditional|ideal|simple|advanced   --load=0.8
///   --topology=clos|kary|single  --leaves=16 --hosts-per-leaf=8 --spines=8
///   --kary-k=4 --kary-n=2  --hosts=16
///   --vcs=2 --vc-weights=8,4,2,1 --buffer=8192 --speedup=2.0
///   --link-gbps=8 --link-latency-ns=100 --mtu=2048
///   --measure-ms=20 --warmup-ms=2 --drain-ms=3 --seed=1
///   --no-video --no-control --no-besteffort --no-background
///   --video-rate-mbs=3 --frame-budget-ms=10 --no-eligible
///   --eligible-lead-us=20 --be-weight=2 --bg-weight=1 --skew-us=0
#pragma once

#include <optional>
#include <string>

#include "core/config.hpp"
#include "util/cli.hpp"

namespace dqos {

[[nodiscard]] std::optional<SwitchArch> parse_arch(const std::string& name);
[[nodiscard]] std::optional<TopologyKind> parse_topology(const std::string& name);

/// Overlays recognized keys from `args` onto `base` and validates.
/// Unrecognized keys are ignored (callers may use extra keys themselves).
[[nodiscard]] SimConfig config_from_args(const ArgParser& args,
                                         SimConfig base = SimConfig{});

/// Serializes a SimConfig to `key=value` lines accepted back by
/// ArgParser::load_file + config_from_args (round-trippable).
[[nodiscard]] std::string config_to_string(const SimConfig& cfg);

}  // namespace dqos
