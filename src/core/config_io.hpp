/// \file config_io.hpp
/// SimConfig <-> command line / config file mapping, so every bench,
/// example and the dqos_sim tool accept one uniform set of switches:
///
///   --arch=traditional|ideal|simple|advanced   --load=0.8
///   --topology=clos|kary|single  --leaves=16 --hosts-per-leaf=8 --spines=8
///   --kary-k=4 --kary-n=2  --hosts=16
///   --vcs=2 --vc-weights=8,4,2,1 --buffer=8192 --speedup=2.0
///   --link-gbps=8 --link-latency-ns=100 --mtu=2048
///   --measure-ms=20 --warmup-ms=2 --drain-ms=3 --seed=1
///   --no-video --no-control --no-besteffort --no-background
///   --video-rate-mbs=3 --frame-budget-ms=10 --no-eligible
///   --eligible-lead-us=20 --be-weight=2 --bg-weight=1 --skew-us=0
#pragma once

#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/config.hpp"
#include "util/cli.hpp"

namespace dqos {

/// A malformed, unknown, or out-of-range configuration value. The message
/// names the offending key, the rejected value, and where it came from
/// (config-file line or command line) — tools print it and exit instead of
/// tripping a contract abort on user input.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

[[nodiscard]] std::optional<SwitchArch> parse_arch(const std::string& name);
[[nodiscard]] std::optional<TopologyKind> parse_topology(const std::string& name);

/// Overlays recognized keys from `args` onto `base` and validates.
/// Throws ConfigError on malformed or out-of-range values (unrecognized
/// keys are still ignored here — callers may use extra keys themselves;
/// see require_known_keys for strict checking).
[[nodiscard]] SimConfig config_from_args(const ArgParser& args,
                                         SimConfig base = SimConfig{});

/// Throws ConfigError if `args` holds a key that is neither a SimConfig key
/// nor listed in `extra` (tool-specific switches). Catches typos like
/// --laod=0.9 that would otherwise be silently ignored.
void require_known_keys(const ArgParser& args,
                        std::initializer_list<std::string_view> extra = {});

/// Serializes a SimConfig to `key=value` lines accepted back by
/// ArgParser::load_file + config_from_args (round-trippable).
[[nodiscard]] std::string config_to_string(const SimConfig& cfg);

}  // namespace dqos
