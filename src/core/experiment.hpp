/// \file experiment.hpp
/// Experiment-runner helpers shared by the benchmark harnesses (bench/):
/// architecture x load sweeps, paper-style table printing, and CSV export.
#pragma once

#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/network_simulator.hpp"
#include "util/table.hpp"

namespace dqos {

struct SweepPoint {
  SwitchArch arch;
  double load;
  SimReport report;
};

/// Runs `base` for every (arch, load) combination. `tweak` (optional) can
/// adjust the config per point before the run. Progress goes to stderr.
/// When `scenario` is non-null every point runs through a RunController
/// executing `scenario->scaled(point load)` — phase loads act as
/// multipliers of the sweep point's load — and reports the whole-run
/// totals; invalid scaled scenarios throw RunError before any replica
/// starts. `threads` bounds the replica pool (0 = SweepRunner's default:
/// DQOS_SWEEP_THREADS, else hardware concurrency); when `base.shards`
/// makes each replica itself multi-threaded, the pool is clamped so
/// replicas x shards never silently oversubscribes the machine.
std::vector<SweepPoint> run_sweep(
    const SimConfig& base, std::span<const SwitchArch> archs,
    std::span<const double> loads,
    const std::function<void(SimConfig&)>& tweak = nullptr,
    const Scenario* scenario = nullptr, unsigned threads = 0);

/// Metric accessor: one number out of a report (e.g. control avg latency).
using MetricFn = std::function<double(const SimReport&)>;

/// Prints a figure-style series table: rows = load, one column per
/// architecture, values from `metric`. Optionally mirrors to CSV.
void print_series(std::FILE* out, const std::vector<SweepPoint>& points,
                  const std::string& title, const std::string& unit,
                  const MetricFn& metric, int precision = 1,
                  const std::string& csv_path = {});

/// Prints the CDF of a latency sample set, paper Fig 2/3 style.
void print_cdf(std::FILE* out, const SampleSet& samples, const std::string& title,
               std::size_t points = 20, const std::string& csv_path = {});

/// Common metric accessors.
double control_latency_us(const SimReport& r);
double control_throughput_frac(const SimReport& r);
double video_frame_latency_ms(const SimReport& r);
double best_effort_throughput_frac(const SimReport& r);
double background_throughput_frac(const SimReport& r);

/// True if `--paper` (full 128-endpoint scale) was passed.
bool has_flag(int argc, char** argv, std::string_view flag);

}  // namespace dqos
