#include "core/config_io.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace dqos {
namespace {

/// Builds the ConfigError for a bad value of `key`, citing its origin.
[[noreturn]] void fail_key(const ArgParser& args, const std::string& key,
                           const std::string& why) {
  std::string msg = "config error: --" + key + ": " + why;
  const std::string origin = args.origin(key);
  if (!origin.empty()) msg += " (from " + origin + ")";
  throw ConfigError(msg);
}

/// Strict full-string numeric parsing: "1x", "", "--" are errors, not
/// silent fallbacks.
double num_double(const ArgParser& args, const std::string& key, double cur) {
  const auto v = args.get(key);
  if (!v) return cur;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    fail_key(args, key, "'" + *v + "' is not a number");
  }
  return d;
}

std::int64_t num_int(const ArgParser& args, const std::string& key,
                     std::int64_t cur) {
  const auto v = args.get(key);
  if (!v) return cur;
  char* end = nullptr;
  const long long n = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    fail_key(args, key, "'" + *v + "' is not an integer");
  }
  return n;
}

std::uint32_t num_u32(const ArgParser& args, const std::string& key,
                      std::uint32_t cur) {
  const std::int64_t n = num_int(args, key, cur);
  if (n < 0 || n > std::numeric_limits<std::uint32_t>::max()) {
    fail_key(args, key, "value " + std::to_string(n) + " is out of range");
  }
  return static_cast<std::uint32_t>(n);
}

bool flag(const ArgParser& args, const std::string& key, bool cur) {
  const auto v = args.get(key);
  if (!v) return cur;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  fail_key(args, key, "'" + *v + "' is not a boolean");
}

std::vector<std::uint32_t> parse_weight_list(const ArgParser& args,
                                             const std::string& key,
                                             const std::string& csv) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const unsigned long w = std::strtoul(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' ||
        w > std::numeric_limits<std::uint32_t>::max()) {
      fail_key(args, key, "'" + item + "' is not a valid weight");
    }
    out.push_back(static_cast<std::uint32_t>(w));
  }
  return out;
}

std::string arch_key(SwitchArch a) {
  switch (a) {
    case SwitchArch::kTraditional2Vc: return "traditional";
    case SwitchArch::kIdeal: return "ideal";
    case SwitchArch::kSimple2Vc: return "simple";
    case SwitchArch::kAdvanced2Vc: return "advanced";
  }
  return "?";
}

std::string topology_key(TopologyKind t) {
  switch (t) {
    case TopologyKind::kFoldedClos: return "clos";
    case TopologyKind::kKaryNTree: return "kary";
    case TopologyKind::kSingleSwitch: return "single";
    case TopologyKind::kMesh2D: return "mesh";
  }
  return "?";
}

PatternKind parse_pattern_or_fail(const ArgParser& args, const std::string& key,
                                  const std::string& name) {
  if (name == "uniform") return PatternKind::kUniform;
  if (name == "hotspot") return PatternKind::kHotSpot;
  if (name == "bit-complement") return PatternKind::kBitComplement;
  if (name == "transpose") return PatternKind::kTranspose;
  if (name == "tornado") return PatternKind::kTornado;
  if (name == "permutation") return PatternKind::kPermutation;
  fail_key(args, key, "unknown traffic pattern '" + name + "'");
}

}  // namespace

std::optional<SwitchArch> parse_arch(const std::string& name) {
  if (name == "traditional" || name == "trad") return SwitchArch::kTraditional2Vc;
  if (name == "ideal") return SwitchArch::kIdeal;
  if (name == "simple") return SwitchArch::kSimple2Vc;
  if (name == "advanced" || name == "takeover") return SwitchArch::kAdvanced2Vc;
  return std::nullopt;
}

std::optional<TopologyKind> parse_topology(const std::string& name) {
  if (name == "clos" || name == "min" || name == "butterfly") {
    return TopologyKind::kFoldedClos;
  }
  if (name == "kary" || name == "tree") return TopologyKind::kKaryNTree;
  if (name == "single") return TopologyKind::kSingleSwitch;
  if (name == "mesh") return TopologyKind::kMesh2D;
  return std::nullopt;
}

SimConfig config_from_args(const ArgParser& args, SimConfig cfg) {
  if (const auto a = args.get("arch")) {
    const auto parsed = parse_arch(*a);
    if (!parsed) {
      fail_key(args, "arch",
               "unknown architecture '" + *a +
                   "' (expected traditional|ideal|simple|advanced)");
    }
    cfg.arch = *parsed;
  }
  if (const auto t = args.get("topology")) {
    const auto parsed = parse_topology(*t);
    if (!parsed) {
      fail_key(args, "topology",
               "unknown topology '" + *t + "' (expected clos|kary|single|mesh)");
    }
    cfg.topology = *parsed;
  }
  auto u32 = [&](const char* key, std::uint32_t cur) {
    return num_u32(args, key, cur);
  };
  cfg.num_leaves = u32("leaves", cfg.num_leaves);
  cfg.hosts_per_leaf = u32("hosts-per-leaf", cfg.hosts_per_leaf);
  cfg.num_spines = u32("spines", cfg.num_spines);
  cfg.kary_k = u32("kary-k", cfg.kary_k);
  cfg.kary_n = u32("kary-n", cfg.kary_n);
  cfg.single_switch_hosts = u32("hosts", cfg.single_switch_hosts);
  cfg.mesh_width = u32("mesh-width", cfg.mesh_width);
  cfg.mesh_height = u32("mesh-height", cfg.mesh_height);
  cfg.mesh_concentration = u32("mesh-concentration", cfg.mesh_concentration);

  cfg.load = num_double(args, "load", cfg.load);
  cfg.seed = static_cast<std::uint64_t>(
      num_int(args, "seed", static_cast<std::int64_t>(cfg.seed)));
  const std::uint32_t vcs = u32("vcs", cfg.num_vcs);
  if (vcs > 255) fail_key(args, "vcs", "value is out of range");
  cfg.num_vcs = static_cast<std::uint8_t>(vcs);
  if (const auto w = args.get("vc-weights")) {
    cfg.vc_weights = parse_weight_list(args, "vc-weights", *w);
  }
  cfg.buffer_bytes_per_vc = u32("buffer", cfg.buffer_bytes_per_vc);
  cfg.mtu_bytes = u32("mtu", cfg.mtu_bytes);
  if (args.has("link-gbps")) {
    const double gbps = num_double(args, "link-gbps", cfg.link_bw.gbps());
    if (gbps <= 0.0) fail_key(args, "link-gbps", "bandwidth must be positive");
    cfg.link_bw = Bandwidth::from_gbps(gbps);
  }
  if (args.has("heap-op-ns")) {
    cfg.heap_op_latency = Duration::nanoseconds(num_int(args, "heap-op-ns", 0));
  }
  if (args.has("link-latency-ns")) {
    cfg.link_latency = Duration::nanoseconds(
        num_int(args, "link-latency-ns", cfg.link_latency.ps() / 1000));
  }

  cfg.shards = u32("shards", cfg.shards);
  if (args.has("shard-threads")) {
    const std::int64_t st = num_int(args, "shard-threads", cfg.shard_threads);
    if (st < -1 || st > 1) {
      fail_key(args, "shard-threads", "must be -1 (auto), 0 (inline) or 1");
    }
    cfg.shard_threads = static_cast<std::int32_t>(st);
  }

  cfg.warmup = Duration::from_seconds_double(
      num_double(args, "warmup-ms", cfg.warmup.ms()) / 1e3);
  cfg.measure = Duration::from_seconds_double(
      num_double(args, "measure-ms", cfg.measure.ms()) / 1e3);
  cfg.drain = Duration::from_seconds_double(
      num_double(args, "drain-ms", cfg.drain.ms()) / 1e3);

  cfg.enable_control = !flag(args, "no-control", !cfg.enable_control);
  cfg.enable_video = !flag(args, "no-video", !cfg.enable_video);
  cfg.enable_best_effort = !flag(args, "no-besteffort", !cfg.enable_best_effort);
  cfg.enable_background = !flag(args, "no-background", !cfg.enable_background);

  if (const auto trace = args.get("video-trace")) cfg.video_trace_path = *trace;
  if (args.has("video-rate-mbs")) {
    cfg.video.mean_bytes_per_sec = num_double(args, "video-rate-mbs", 3.0) * 1e6;
  }
  if (args.has("frame-period-ms")) {
    const double ms = num_double(args, "frame-period-ms", cfg.video.frame_period.ms());
    if (ms <= 0.0) fail_key(args, "frame-period-ms", "period must be positive");
    cfg.video.frame_period = Duration::from_seconds_double(ms / 1e3);
  }
  cfg.video_frame_budget = Duration::from_seconds_double(
      num_double(args, "frame-budget-ms", cfg.video_frame_budget.ms()) / 1e3);
  cfg.video_eligible_time = !flag(args, "no-eligible", !cfg.video_eligible_time);
  cfg.eligible_lead = Duration::from_seconds_double(
      num_double(args, "eligible-lead-us", cfg.eligible_lead.us()) / 1e6);
  cfg.best_effort_weight = num_double(args, "be-weight", cfg.best_effort_weight);
  cfg.background_weight = num_double(args, "bg-weight", cfg.background_weight);
  cfg.reservable_fraction =
      num_double(args, "reservable-fraction", cfg.reservable_fraction);
  cfg.fanout = u32("fanout", cfg.fanout);
  cfg.hier_admission = flag(args, "hier-admission", cfg.hier_admission);
  cfg.max_clock_skew = Duration::from_seconds_double(
      num_double(args, "skew-us", cfg.max_clock_skew.us()) / 1e6);

  if (const auto p = args.get("pattern")) {
    cfg.pattern.kind = parse_pattern_or_fail(args, "pattern", *p);
  }
  cfg.pattern.hotspot_fraction =
      num_double(args, "hotspot-fraction", cfg.pattern.hotspot_fraction);
  cfg.pattern.hotspot_node =
      static_cast<NodeId>(num_u32(args, "hotspot-node", cfg.pattern.hotspot_node));

  // --- fault injection ------------------------------------------------------
  cfg.fault.enabled = flag(args, "fault-inject", cfg.fault.enabled);
  cfg.fault.seed = static_cast<std::uint64_t>(
      num_int(args, "fault-seed", static_cast<std::int64_t>(cfg.fault.seed)));
  cfg.fault.link_down_per_sec =
      num_double(args, "fault-link-down-per-sec", cfg.fault.link_down_per_sec);
  cfg.fault.link_outage_mean = Duration::from_seconds_double(
      num_double(args, "fault-link-outage-ms", cfg.fault.link_outage_mean.ms()) /
      1e3);
  cfg.fault.link_permanent_fraction = num_double(
      args, "fault-permanent-fraction", cfg.fault.link_permanent_fraction);
  cfg.fault.credit_loss_per_sec =
      num_double(args, "fault-credit-loss-per-sec", cfg.fault.credit_loss_per_sec);
  cfg.fault.credit_loss_bytes =
      u32("fault-credit-loss-bytes", cfg.fault.credit_loss_bytes);
  cfg.fault.ttd_corrupt_per_sec =
      num_double(args, "fault-ttd-corrupt-per-sec", cfg.fault.ttd_corrupt_per_sec);
  cfg.fault.ttd_corrupt_max = Duration::from_seconds_double(
      num_double(args, "fault-ttd-corrupt-max-us", cfg.fault.ttd_corrupt_max.us()) /
      1e6);
  cfg.fault.clock_drift_per_sec =
      num_double(args, "fault-clock-drift-per-sec", cfg.fault.clock_drift_per_sec);
  cfg.fault.clock_drift_max = Duration::from_seconds_double(
      num_double(args, "fault-clock-drift-max-us", cfg.fault.clock_drift_max.us()) /
      1e6);
  cfg.fault.credit_resync_window = Duration::from_seconds_double(
      num_double(args, "credit-resync-us", cfg.fault.credit_resync_window.us()) /
      1e6);
  cfg.fault.control_retry = !flag(args, "no-control-retry", !cfg.fault.control_retry);
  cfg.fault.retry_timeout = Duration::from_seconds_double(
      num_double(args, "retry-timeout-us", cfg.fault.retry_timeout.us()) / 1e6);
  cfg.fault.max_retries = u32("retry-max", cfg.fault.max_retries);
  cfg.fault.watchdog_interval = Duration::from_seconds_double(
      num_double(args, "watchdog-ms", cfg.fault.watchdog_interval.ms()) / 1e3);
  cfg.fault.watchdog_rounds = u32("watchdog-rounds", cfg.fault.watchdog_rounds);
  cfg.fault.audit_epoch = Duration::from_seconds_double(
      num_double(args, "audit-epoch-us", cfg.fault.audit_epoch.us()) / 1e6);

  // --- overload degradation -------------------------------------------------
  cfg.expiry_drop = flag(args, "expiry-drop", cfg.expiry_drop);
  cfg.expiry_abort_ratio =
      num_double(args, "expiry-abort-ratio", cfg.expiry_abort_ratio);
  cfg.admit_retry_max = u32("admit-retry-max", cfg.admit_retry_max);
  cfg.admit_retry_backoff = Duration::from_seconds_double(
      num_double(args, "admit-retry-backoff-us", cfg.admit_retry_backoff.us()) /
      1e6);
  cfg.shed_highwater = num_double(args, "shed-highwater", cfg.shed_highwater);

  const std::string problem = cfg.check();
  if (!problem.empty()) throw ConfigError("config error: " + problem);
  return cfg;
}

namespace {

constexpr std::array kKnownKeys = {
    "arch", "topology", "leaves", "hosts-per-leaf", "spines", "kary-k",
    "kary-n", "hosts", "mesh-width", "mesh-height", "mesh-concentration",
    "load", "seed", "vcs", "vc-weights", "buffer", "mtu", "link-gbps",
    "heap-op-ns", "link-latency-ns", "shards", "shard-threads", "warmup-ms",
    "measure-ms", "drain-ms",
    "no-control", "no-video", "no-besteffort", "no-background", "video-trace",
    "video-rate-mbs", "frame-period-ms", "frame-budget-ms", "no-eligible",
    "eligible-lead-us",
    "be-weight", "bg-weight", "reservable-fraction", "fanout",
    "hier-admission", "skew-us", "pattern",
    "hotspot-fraction",
    "hotspot-node", "fault-inject", "fault-seed", "fault-link-down-per-sec",
    "fault-link-outage-ms", "fault-permanent-fraction",
    "fault-credit-loss-per-sec", "fault-credit-loss-bytes",
    "fault-ttd-corrupt-per-sec", "fault-ttd-corrupt-max-us",
    "fault-clock-drift-per-sec", "fault-clock-drift-max-us", "credit-resync-us",
    "no-control-retry", "retry-timeout-us", "retry-max", "watchdog-ms",
    "watchdog-rounds", "audit-epoch-us", "expiry-drop", "expiry-abort-ratio",
    "admit-retry-max", "admit-retry-backoff-us", "shed-highwater",
};

constexpr std::array kKnownPhaseSubkeys = {
    "start-ms",      "load",
    "share",         "pattern",
    "hotspot-fraction", "hotspot-node",
    "flow-arrivals-per-sec", "flow-departures-per-sec",
};

/// `phase.<index>.<subkey>` -> index; nullopt when `key` is not a phase key
/// at all; ConfigError when it is one but malformed (bad index, unknown
/// subkey).
std::optional<std::size_t> phase_index(const ArgParser& args,
                                       const std::string& key) {
  if (key.rfind("phase.", 0) != 0) return std::nullopt;
  const auto dot = key.find('.', 6);
  if (dot == std::string::npos || dot == 6) {
    fail_key(args, key, "expected phase.<index>.<key>");
  }
  const std::string idx = key.substr(6, dot - 6);
  const std::string sub = key.substr(dot + 1);
  bool digits = true;
  for (const char ch : idx) digits = digits && ch >= '0' && ch <= '9';
  if (!digits) fail_key(args, key, "'" + idx + "' is not a phase index");
  if (std::strtoul(idx.c_str(), nullptr, 10) > 4095) {
    fail_key(args, key, "phase index " + idx + " is out of range (max 4095)");
  }
  for (const char* k : kKnownPhaseSubkeys) {
    if (sub == k) return std::strtoul(idx.c_str(), nullptr, 10);
  }
  fail_key(args, key, "unknown phase key '" + sub + "'");
}

}  // namespace

void require_known_keys(const ArgParser& args,
                        std::initializer_list<std::string_view> extra) {
  for (const std::string& key : args.keys()) {
    bool known = phase_index(args, key).has_value();
    for (const char* k : kKnownKeys) {
      if (key == k) {
        known = true;
        break;
      }
    }
    for (const std::string_view k : extra) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string msg = "config error: unknown key '--" + key + "'";
      const std::string origin = args.origin(key);
      if (!origin.empty()) msg += " (from " + origin + ")";
      throw ConfigError(msg);
    }
  }
}

std::string config_to_string(const SimConfig& cfg) {
  std::ostringstream out;
  out << "# dqos simulation configuration\n";
  out << "arch=" << arch_key(cfg.arch) << "\n";
  out << "topology=" << topology_key(cfg.topology) << "\n";
  out << "leaves=" << cfg.num_leaves << "\n";
  out << "hosts-per-leaf=" << cfg.hosts_per_leaf << "\n";
  out << "spines=" << cfg.num_spines << "\n";
  out << "kary-k=" << cfg.kary_k << "\n";
  out << "kary-n=" << cfg.kary_n << "\n";
  out << "hosts=" << cfg.single_switch_hosts << "\n";
  out << "mesh-width=" << cfg.mesh_width << "\n";
  out << "mesh-height=" << cfg.mesh_height << "\n";
  out << "mesh-concentration=" << cfg.mesh_concentration << "\n";
  out << "load=" << cfg.load << "\n";
  out << "seed=" << cfg.seed << "\n";
  out << "vcs=" << static_cast<int>(cfg.num_vcs) << "\n";
  if (!cfg.vc_weights.empty()) {
    out << "vc-weights=";
    for (std::size_t i = 0; i < cfg.vc_weights.size(); ++i) {
      out << (i ? "," : "") << cfg.vc_weights[i];
    }
    out << "\n";
  }
  out << "buffer=" << cfg.buffer_bytes_per_vc << "\n";
  out << "mtu=" << cfg.mtu_bytes << "\n";
  out << "link-gbps=" << cfg.link_bw.gbps() << "\n";
  out << "link-latency-ns=" << cfg.link_latency.ps() / 1000 << "\n";
  if (cfg.shards != 1) out << "shards=" << cfg.shards << "\n";
  if (cfg.shard_threads != -1) out << "shard-threads=" << cfg.shard_threads << "\n";
  out << "warmup-ms=" << cfg.warmup.ms() << "\n";
  out << "measure-ms=" << cfg.measure.ms() << "\n";
  out << "drain-ms=" << cfg.drain.ms() << "\n";
  if (!cfg.enable_control) out << "no-control=true\n";
  if (!cfg.enable_video) out << "no-video=true\n";
  if (!cfg.enable_best_effort) out << "no-besteffort=true\n";
  if (!cfg.enable_background) out << "no-background=true\n";
  if (!cfg.video_trace_path.empty()) {
    out << "video-trace=" << cfg.video_trace_path << "\n";
  }
  out << "video-rate-mbs=" << cfg.video.mean_bytes_per_sec / 1e6 << "\n";
  if (cfg.video.frame_period != Duration::milliseconds(40)) {
    out << "frame-period-ms=" << cfg.video.frame_period.ms() << "\n";
  }
  out << "frame-budget-ms=" << cfg.video_frame_budget.ms() << "\n";
  if (!cfg.video_eligible_time) out << "no-eligible=true\n";
  out << "eligible-lead-us=" << cfg.eligible_lead.us() << "\n";
  out << "be-weight=" << cfg.best_effort_weight << "\n";
  out << "bg-weight=" << cfg.background_weight << "\n";
  if (cfg.reservable_fraction != 1.0) {  // emission gated: legacy dump bytes
    out << "reservable-fraction=" << cfg.reservable_fraction << "\n";
  }
  if (cfg.fanout != 0) out << "fanout=" << cfg.fanout << "\n";
  if (cfg.hier_admission) out << "hier-admission=true\n";
  out << "skew-us=" << cfg.max_clock_skew.us() << "\n";
  out << "pattern=" << to_string(cfg.pattern.kind) << "\n";
  out << "hotspot-fraction=" << cfg.pattern.hotspot_fraction << "\n";
  out << "hotspot-node=" << cfg.pattern.hotspot_node << "\n";
  if (cfg.fault.enabled || cfg.fault.any_faults() ||
      cfg.fault.audit_epoch > Duration::zero()) {
    if (cfg.fault.enabled || cfg.fault.any_faults()) out << "fault-inject=true\n";
    out << "fault-seed=" << cfg.fault.seed << "\n";
    out << "fault-link-down-per-sec=" << cfg.fault.link_down_per_sec << "\n";
    out << "fault-link-outage-ms=" << cfg.fault.link_outage_mean.ms() << "\n";
    out << "fault-permanent-fraction=" << cfg.fault.link_permanent_fraction << "\n";
    out << "fault-credit-loss-per-sec=" << cfg.fault.credit_loss_per_sec << "\n";
    out << "fault-credit-loss-bytes=" << cfg.fault.credit_loss_bytes << "\n";
    out << "fault-ttd-corrupt-per-sec=" << cfg.fault.ttd_corrupt_per_sec << "\n";
    out << "fault-ttd-corrupt-max-us=" << cfg.fault.ttd_corrupt_max.us() << "\n";
    out << "fault-clock-drift-per-sec=" << cfg.fault.clock_drift_per_sec << "\n";
    out << "fault-clock-drift-max-us=" << cfg.fault.clock_drift_max.us() << "\n";
    out << "credit-resync-us=" << cfg.fault.credit_resync_window.us() << "\n";
    if (!cfg.fault.control_retry) out << "no-control-retry=true\n";
    out << "retry-timeout-us=" << cfg.fault.retry_timeout.us() << "\n";
    out << "retry-max=" << cfg.fault.max_retries << "\n";
    out << "watchdog-ms=" << cfg.fault.watchdog_interval.ms() << "\n";
    out << "watchdog-rounds=" << cfg.fault.watchdog_rounds << "\n";
    if (cfg.fault.audit_epoch > Duration::zero()) {
      out << "audit-epoch-us=" << cfg.fault.audit_epoch.us() << "\n";
    }
  }
  // Degradation knobs print only when on, keeping legacy dump bytes intact.
  if (cfg.expiry_drop) {
    out << "expiry-drop=true\n";
    if (cfg.expiry_abort_ratio > 0.0) {
      out << "expiry-abort-ratio=" << cfg.expiry_abort_ratio << "\n";
    }
  }
  if (cfg.admit_retry_max > 0) {
    out << "admit-retry-max=" << cfg.admit_retry_max << "\n";
    out << "admit-retry-backoff-us=" << cfg.admit_retry_backoff.us() << "\n";
  }
  if (cfg.shed_highwater > 0.0) {
    out << "shed-highwater=" << cfg.shed_highwater << "\n";
  }
  return out.str();
}

std::optional<Scenario> scenario_from_args(const ArgParser& args,
                                           const SimConfig& base) {
  std::size_t max_index = 0;
  bool any = false;
  for (const std::string& key : args.keys()) {
    if (const auto idx = phase_index(args, key)) {
      any = true;
      max_index = std::max(max_index, *idx);
    }
  }
  if (!any) return std::nullopt;

  std::vector<bool> present(max_index + 1, false);
  for (const std::string& key : args.keys()) {
    if (const auto idx = phase_index(args, key)) present[*idx] = true;
  }
  for (std::size_t i = 0; i <= max_index; ++i) {
    if (!present[i]) {
      throw ConfigError(
          "config error: phase indices must be contiguous from 0; [phase." +
          std::to_string(i) + "] is missing");
    }
  }

  Scenario scn;
  scn.phases.resize(max_index + 1);
  for (std::size_t i = 0; i < scn.phases.size(); ++i) {
    PhaseSpec& ph = scn.phases[i];
    const std::string p = "phase." + std::to_string(i) + ".";
    // Omitted subkeys inherit the base single-phase run: each phase is a
    // delta against the flat config.
    ph.load = base.load;
    ph.class_share = base.class_share;
    ph.pattern = base.pattern;

    const std::string start_key = p + "start-ms";
    if (i == 0) {
      if (num_double(args, start_key, 0.0) != 0.0) {
        fail_key(args, start_key,
                 "phase 0 always starts at offset 0 (the measurement-window "
                 "start)");
      }
    } else {
      if (!args.has(start_key)) {
        throw ConfigError("config error: --" + start_key +
                          " is required: the start offset of phase " +
                          std::to_string(i) +
                          " in ms from the measurement-window start");
      }
      ph.start =
          Duration::from_seconds_double(num_double(args, start_key, 0.0) / 1e3);
      if (ph.start <= scn.phases[i - 1].start) {
        fail_key(args, start_key,
                 "phase starts must be strictly increasing (phase " +
                     std::to_string(i - 1) + " starts at " +
                     std::to_string(scn.phases[i - 1].start.ms()) + " ms)");
      }
    }

    ph.load = num_double(args, p + "load", ph.load);
    if (const auto csv = args.get(p + "share")) {
      // Control, Multimedia, BestEffort, Background.
      std::stringstream ss(*csv);
      std::string item;
      std::size_t c = 0;
      while (std::getline(ss, item, ',')) {
        char* end = nullptr;
        const double s = std::strtod(item.c_str(), &end);
        if (end == item.c_str() || *end != '\0' || c >= kNumTrafficClasses) {
          fail_key(args, p + "share",
                   "expected 4 comma-separated class shares");
        }
        ph.class_share[c++] = s;
      }
      if (c != kNumTrafficClasses) {
        fail_key(args, p + "share", "expected 4 comma-separated class shares");
      }
    }
    if (const auto pat = args.get(p + "pattern")) {
      ph.pattern.kind = parse_pattern_or_fail(args, p + "pattern", *pat);
    }
    ph.pattern.hotspot_fraction =
        num_double(args, p + "hotspot-fraction", ph.pattern.hotspot_fraction);
    ph.pattern.hotspot_node = static_cast<NodeId>(
        num_u32(args, p + "hotspot-node", ph.pattern.hotspot_node));
    ph.flow_arrivals_per_sec =
        num_double(args, p + "flow-arrivals-per-sec", ph.flow_arrivals_per_sec);
    ph.flow_departures_per_sec = num_double(args, p + "flow-departures-per-sec",
                                            ph.flow_departures_per_sec);
  }

  const std::string problem = scn.check(base);
  if (!problem.empty()) throw ConfigError("config error: " + problem);
  return scn;
}

std::string scenario_to_string(const Scenario& scn) {
  std::ostringstream out;
  out << "# dqos run scenario (starts are offsets from the measurement "
         "window)\n";
  for (std::size_t i = 0; i < scn.phases.size(); ++i) {
    const PhaseSpec& ph = scn.phases[i];
    out << "[phase." << i << "]\n";
    if (i > 0) out << "start-ms=" << ph.start.ms() << "\n";
    out << "load=" << ph.load << "\n";
    out << "share=" << ph.class_share[0] << "," << ph.class_share[1] << ","
        << ph.class_share[2] << "," << ph.class_share[3] << "\n";
    out << "pattern=" << to_string(ph.pattern.kind) << "\n";
    out << "hotspot-fraction=" << ph.pattern.hotspot_fraction << "\n";
    out << "hotspot-node=" << ph.pattern.hotspot_node << "\n";
    out << "flow-arrivals-per-sec=" << ph.flow_arrivals_per_sec << "\n";
    out << "flow-departures-per-sec=" << ph.flow_departures_per_sec << "\n";
  }
  return out.str();
}

}  // namespace dqos
