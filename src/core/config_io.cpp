#include "core/config_io.hpp"

#include <cstdio>
#include <sstream>

namespace dqos {
namespace {

std::vector<std::uint32_t> parse_weight_list(const std::string& csv) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<std::uint32_t>(std::strtoul(item.c_str(), nullptr, 10)));
    }
  }
  return out;
}

std::string arch_key(SwitchArch a) {
  switch (a) {
    case SwitchArch::kTraditional2Vc: return "traditional";
    case SwitchArch::kIdeal: return "ideal";
    case SwitchArch::kSimple2Vc: return "simple";
    case SwitchArch::kAdvanced2Vc: return "advanced";
  }
  return "?";
}

std::string topology_key(TopologyKind t) {
  switch (t) {
    case TopologyKind::kFoldedClos: return "clos";
    case TopologyKind::kKaryNTree: return "kary";
    case TopologyKind::kSingleSwitch: return "single";
    case TopologyKind::kMesh2D: return "mesh";
  }
  return "?";
}

}  // namespace

std::optional<SwitchArch> parse_arch(const std::string& name) {
  if (name == "traditional" || name == "trad") return SwitchArch::kTraditional2Vc;
  if (name == "ideal") return SwitchArch::kIdeal;
  if (name == "simple") return SwitchArch::kSimple2Vc;
  if (name == "advanced" || name == "takeover") return SwitchArch::kAdvanced2Vc;
  return std::nullopt;
}

std::optional<TopologyKind> parse_topology(const std::string& name) {
  if (name == "clos" || name == "min" || name == "butterfly") {
    return TopologyKind::kFoldedClos;
  }
  if (name == "kary" || name == "tree") return TopologyKind::kKaryNTree;
  if (name == "single") return TopologyKind::kSingleSwitch;
  if (name == "mesh") return TopologyKind::kMesh2D;
  return std::nullopt;
}

SimConfig config_from_args(const ArgParser& args, SimConfig cfg) {
  if (const auto a = args.get("arch")) {
    if (const auto parsed = parse_arch(*a)) cfg.arch = *parsed;
  }
  if (const auto t = args.get("topology")) {
    if (const auto parsed = parse_topology(*t)) cfg.topology = *parsed;
  }
  auto u32 = [&](const char* key, std::uint32_t cur) {
    return static_cast<std::uint32_t>(args.get_int(key, cur));
  };
  cfg.num_leaves = u32("leaves", cfg.num_leaves);
  cfg.hosts_per_leaf = u32("hosts-per-leaf", cfg.hosts_per_leaf);
  cfg.num_spines = u32("spines", cfg.num_spines);
  cfg.kary_k = u32("kary-k", cfg.kary_k);
  cfg.kary_n = u32("kary-n", cfg.kary_n);
  cfg.single_switch_hosts = u32("hosts", cfg.single_switch_hosts);
  cfg.mesh_width = u32("mesh-width", cfg.mesh_width);
  cfg.mesh_height = u32("mesh-height", cfg.mesh_height);
  cfg.mesh_concentration = u32("mesh-concentration", cfg.mesh_concentration);

  cfg.load = args.get_double("load", cfg.load);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.num_vcs = static_cast<std::uint8_t>(args.get_int("vcs", cfg.num_vcs));
  if (const auto w = args.get("vc-weights")) cfg.vc_weights = parse_weight_list(*w);
  cfg.buffer_bytes_per_vc = u32("buffer", cfg.buffer_bytes_per_vc);
  cfg.mtu_bytes = u32("mtu", cfg.mtu_bytes);
  if (args.has("link-gbps")) {
    cfg.link_bw = Bandwidth::from_gbps(args.get_double("link-gbps", cfg.link_bw.gbps()));
  }
  if (args.has("heap-op-ns")) {
    cfg.heap_op_latency =
        Duration::nanoseconds(args.get_int("heap-op-ns", 0));
  }
  if (args.has("link-latency-ns")) {
    cfg.link_latency =
        Duration::nanoseconds(args.get_int("link-latency-ns", cfg.link_latency.ps() / 1000));
  }

  cfg.warmup = Duration::from_seconds_double(
      args.get_double("warmup-ms", cfg.warmup.ms()) / 1e3);
  cfg.measure = Duration::from_seconds_double(
      args.get_double("measure-ms", cfg.measure.ms()) / 1e3);
  cfg.drain = Duration::from_seconds_double(
      args.get_double("drain-ms", cfg.drain.ms()) / 1e3);

  cfg.enable_control = !args.get_bool("no-control", !cfg.enable_control);
  cfg.enable_video = !args.get_bool("no-video", !cfg.enable_video);
  cfg.enable_best_effort = !args.get_bool("no-besteffort", !cfg.enable_best_effort);
  cfg.enable_background = !args.get_bool("no-background", !cfg.enable_background);

  if (const auto trace = args.get("video-trace")) cfg.video_trace_path = *trace;
  if (args.has("video-rate-mbs")) {
    cfg.video.mean_bytes_per_sec = args.get_double("video-rate-mbs", 3.0) * 1e6;
  }
  cfg.video_frame_budget = Duration::from_seconds_double(
      args.get_double("frame-budget-ms", cfg.video_frame_budget.ms()) / 1e3);
  cfg.video_eligible_time = !args.get_bool("no-eligible", !cfg.video_eligible_time);
  cfg.eligible_lead = Duration::from_seconds_double(
      args.get_double("eligible-lead-us", cfg.eligible_lead.us()) / 1e6);
  cfg.best_effort_weight = args.get_double("be-weight", cfg.best_effort_weight);
  cfg.background_weight = args.get_double("bg-weight", cfg.background_weight);
  cfg.max_clock_skew = Duration::from_seconds_double(
      args.get_double("skew-us", cfg.max_clock_skew.us()) / 1e6);

  if (const auto p = args.get("pattern")) {
    if (*p == "uniform") cfg.pattern.kind = PatternKind::kUniform;
    else if (*p == "hotspot") cfg.pattern.kind = PatternKind::kHotSpot;
    else if (*p == "bit-complement") cfg.pattern.kind = PatternKind::kBitComplement;
    else if (*p == "transpose") cfg.pattern.kind = PatternKind::kTranspose;
    else if (*p == "tornado") cfg.pattern.kind = PatternKind::kTornado;
    else if (*p == "permutation") cfg.pattern.kind = PatternKind::kPermutation;
  }
  cfg.pattern.hotspot_fraction =
      args.get_double("hotspot-fraction", cfg.pattern.hotspot_fraction);
  cfg.pattern.hotspot_node = static_cast<NodeId>(
      args.get_int("hotspot-node", cfg.pattern.hotspot_node));

  cfg.validate();
  return cfg;
}

std::string config_to_string(const SimConfig& cfg) {
  std::ostringstream out;
  out << "# dqos simulation configuration\n";
  out << "arch=" << arch_key(cfg.arch) << "\n";
  out << "topology=" << topology_key(cfg.topology) << "\n";
  out << "leaves=" << cfg.num_leaves << "\n";
  out << "hosts-per-leaf=" << cfg.hosts_per_leaf << "\n";
  out << "spines=" << cfg.num_spines << "\n";
  out << "kary-k=" << cfg.kary_k << "\n";
  out << "kary-n=" << cfg.kary_n << "\n";
  out << "hosts=" << cfg.single_switch_hosts << "\n";
  out << "mesh-width=" << cfg.mesh_width << "\n";
  out << "mesh-height=" << cfg.mesh_height << "\n";
  out << "mesh-concentration=" << cfg.mesh_concentration << "\n";
  out << "load=" << cfg.load << "\n";
  out << "seed=" << cfg.seed << "\n";
  out << "vcs=" << static_cast<int>(cfg.num_vcs) << "\n";
  if (!cfg.vc_weights.empty()) {
    out << "vc-weights=";
    for (std::size_t i = 0; i < cfg.vc_weights.size(); ++i) {
      out << (i ? "," : "") << cfg.vc_weights[i];
    }
    out << "\n";
  }
  out << "buffer=" << cfg.buffer_bytes_per_vc << "\n";
  out << "mtu=" << cfg.mtu_bytes << "\n";
  out << "link-gbps=" << cfg.link_bw.gbps() << "\n";
  out << "link-latency-ns=" << cfg.link_latency.ps() / 1000 << "\n";
  out << "warmup-ms=" << cfg.warmup.ms() << "\n";
  out << "measure-ms=" << cfg.measure.ms() << "\n";
  out << "drain-ms=" << cfg.drain.ms() << "\n";
  if (!cfg.enable_control) out << "no-control=true\n";
  if (!cfg.enable_video) out << "no-video=true\n";
  if (!cfg.enable_best_effort) out << "no-besteffort=true\n";
  if (!cfg.enable_background) out << "no-background=true\n";
  if (!cfg.video_trace_path.empty()) {
    out << "video-trace=" << cfg.video_trace_path << "\n";
  }
  out << "video-rate-mbs=" << cfg.video.mean_bytes_per_sec / 1e6 << "\n";
  out << "frame-budget-ms=" << cfg.video_frame_budget.ms() << "\n";
  if (!cfg.video_eligible_time) out << "no-eligible=true\n";
  out << "eligible-lead-us=" << cfg.eligible_lead.us() << "\n";
  out << "be-weight=" << cfg.best_effort_weight << "\n";
  out << "bg-weight=" << cfg.background_weight << "\n";
  out << "skew-us=" << cfg.max_clock_skew.us() << "\n";
  out << "pattern=" << to_string(cfg.pattern.kind) << "\n";
  out << "hotspot-fraction=" << cfg.pattern.hotspot_fraction << "\n";
  out << "hotspot-node=" << cfg.pattern.hotspot_node << "\n";
  return out.str();
}

}  // namespace dqos
