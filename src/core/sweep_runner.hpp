/// \file sweep_runner.hpp
/// Parallel fan-out for embarrassingly-parallel simulation sweeps.
///
/// Each sweep point is an independent single-threaded NetworkSimulator
/// replica with its own seed, pool, and metrics — there is no shared
/// mutable state between points, so running them on a thread pool cannot
/// perturb results. Determinism is preserved by construction:
///   * configs (including per-point seeds) are built by the caller on the
///     main thread, in the same order as the serial loop;
///   * each job writes only to its own pre-sized result slot, so collected
///     results are index-ordered regardless of completion order;
///   * the golden-determinism suite (tests/core/test_determinism.cpp)
///     pins the resulting CSV bytes against the serial baseline.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>

namespace dqos {

class SweepRunner {
 public:
  /// threads == 0: use DQOS_SWEEP_THREADS if set (positive integer),
  /// else std::thread::hardware_concurrency(), else 1. When each replica
  /// is itself `threads_per_job` wide (a sharded NetworkSimulator running
  /// worker threads), the pool is clamped so pool x width never exceeds
  /// the core count — oversubscription warns on stderr instead of
  /// silently thrashing the barrier-synchronized shard workers.
  explicit SweepRunner(unsigned threads = 0, unsigned threads_per_job = 1);

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Runs job(i) for every i in [0, n) across the pool (work-stealing via
  /// a shared atomic index). Jobs must be self-contained: each may touch
  /// only its own result slot. Blocks until all jobs finish. If any job
  /// throws, the remaining queue is abandoned, in-flight jobs complete,
  /// and the exception from the lowest-indexed failure is rethrown on the
  /// calling thread.
  void run(std::size_t n, const std::function<void(std::size_t)>& job);

  /// Serialized progress line (jobs finish out of order; interleaved
  /// two-part "start ... done" logs would garble). Appends its own '\n'.
  void log(const std::string& line);

  /// What SweepRunner{0} would use — for harness banners.
  [[nodiscard]] static unsigned resolve_threads(unsigned requested);

  /// The oversubscription guard: largest pool size such that
  /// pool x threads_per_job fits the machine (>= 1). Warns on stderr when
  /// it shrinks `threads`.
  [[nodiscard]] static unsigned clamp_for_width(unsigned threads,
                                                unsigned threads_per_job);

 private:
  unsigned threads_;
  std::mutex log_mutex_;
};

}  // namespace dqos
