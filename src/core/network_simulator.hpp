/// \file network_simulator.hpp
/// The top-level facade: builds the full platform (topology, switches,
/// channels, hosts, admission control) from a SimConfig and exposes the
/// run lifecycle as narrow verbs (prepare_workload, start_sources,
/// arm_run_services, apply_phase, open/close_video_flow, collect_report)
/// that core/run_controller.hpp sequences. run() is the one-call legacy
/// entry point: it executes a single-phase scenario, bit-identical to the
/// pre-scenario-engine behavior.
///
/// Typical use (see examples/quickstart.cpp):
///
///   SimConfig cfg = SimConfig::paper(SwitchArch::kAdvanced2Vc, 1.0);
///   NetworkSimulator net(cfg);
///   SimReport rep = net.run();
///   printf("control latency: %.1f us\n",
///          rep.classes[0].avg_packet_latency_us);
///
/// For phased runs with load shifts and flow churn, build a Scenario and
/// drive it through RunController instead (core/scenario.hpp).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/scenario.hpp"
#include "fault/auditor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "host/host.hpp"
#include "qos/admission.hpp"
#include "sim/shard_executor.hpp"
#include "stats/metrics.hpp"
#include "stats/timeseries.hpp"
#include "switchfab/switch.hpp"
#include "topo/partition.hpp"
#include "topo/topology.hpp"
#include "traffic/patterns.hpp"
#include "traffic/source.hpp"
#include "util/dense_flow_table.hpp"

namespace dqos {

/// Results of one run.
struct SimReport {
  SwitchArch arch = SwitchArch::kAdvanced2Vc;
  double load = 0.0;
  std::array<ClassReport, kNumTrafficClasses> classes;

  // network-level diagnostics
  std::uint64_t order_errors = 0;     ///< across all switch queues
  std::uint64_t order_errors_regulated = 0;  ///< on VC0 only
  std::uint64_t takeovers = 0;        ///< take-over enqueues (Advanced)
  std::uint64_t credit_stalls = 0;
  std::uint64_t out_of_order = 0;     ///< must be 0 (paper appendix)
  std::uint64_t best_effort_drops = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t flows_admitted = 0;
  std::uint64_t flows_rejected = 0;

  /// Full latency distributions for CDF curves (shared with the collector).
  std::shared_ptr<const MetricsCollector> metrics;

  /// Link utilization by tier (busy fraction of the whole run):
  /// injection = host->switch, delivery = switch->host, fabric =
  /// switch<->switch. `max` is the hottest single link of the tier.
  struct TierUtilization {
    double mean = 0.0;
    double max = 0.0;
  };
  TierUtilization util_injection, util_delivery, util_fabric;

  /// Probe series (null unless SimConfig::probe_interval > 0):
  /// per-bin snapshots of packets queued inside switches, and per-bin bytes
  /// injected by all hosts (burstiness of the offered aggregate).
  std::shared_ptr<const TimeSeries> queue_depth;
  std::shared_ptr<const TimeSeries> injected_bytes;

  /// Fault-injection outcome (all-zero unless faults were configured or
  /// scripted through NetworkSimulator::fault_injector()).
  struct FaultReport {
    bool active = false;             ///< fault machinery was armed this run
    FaultStats injected;             ///< what the injector actually did
    std::uint64_t credit_resyncs = 0;
    std::uint64_t credit_bytes_resynced = 0;
    std::uint64_t packets_dropped_link_down = 0;
    std::uint64_t link_down_stalls = 0;
    std::uint64_t control_retries = 0;
    std::uint64_t control_retries_abandoned = 0;
    std::uint64_t shed_submissions = 0;
    std::uint64_t flows_rerouted = 0;
    std::uint64_t flows_shed = 0;
    bool watchdog_fired = false;
    std::string watchdog_report;     ///< per-switch diagnostics when fired
  };
  FaultReport fault;

  /// Overload-degradation outcome (all-zero unless expiry/backoff/auditing
  /// was configured — the features schedule nothing when off).
  struct DegradationReport {
    std::uint64_t expired_packets = 0;   ///< dropped already-late at the NIC
    std::uint64_t expired_bytes = 0;
    std::uint64_t flows_aborted = 0;     ///< expiry ratio over the threshold
    std::uint64_t frames_dropped = 0;    ///< late B frames withheld at source
    std::uint64_t messages_refused = 0;  ///< NIC refused (cap/policer/shed)
    std::uint64_t admit_retries = 0;         ///< backoff re-admission attempts
    std::uint64_t admit_retries_exhausted = 0;  ///< gave up after max retries
    std::uint64_t flows_readmitted = 0;  ///< retries that eventually succeeded
    std::uint64_t flows_shed_highwater = 0;  ///< load-shed at the high-water mark
    std::uint64_t audits_passed = 0;     ///< invariant audits that held
  };
  DegradationReport degradation;

  [[nodiscard]] const ClassReport& of(TrafficClass c) const {
    return classes[static_cast<std::size_t>(c)];
  }
};

class NetworkSimulator {
 public:
  /// Builds the entire platform; ready to run.
  explicit NetworkSimulator(const SimConfig& cfg);
  ~NetworkSimulator();
  NetworkSimulator(const NetworkSimulator&) = delete;
  NetworkSimulator& operator=(const NetworkSimulator&) = delete;

  /// Starts traffic, runs warm-up + measurement + drain, returns the report.
  /// Equivalent to driving Scenario::single_phase(config()) through a
  /// RunController. A second call throws RunError (the event calendar and
  /// metric windows are single-shot; build a fresh simulator per run).
  SimReport run();

  // --- scenario-engine verbs (sequenced by RunController) --------------
  /// Admits the Table 1 workload and creates its sources. Idempotent, and
  /// implied by run()/begin_run() — call it explicitly only to inspect or
  /// adjust flows before the run starts. The parameterless overload
  /// prepares the legacy single-phase workload; the Scenario overload
  /// sizes sources for phase 0 (later phases retarget them mid-run).
  void prepare_workload();
  void prepare_workload(const Scenario& scn);
  /// Marks the run started (throws RunError when called twice) and
  /// prepares the workload if prepare_workload() hasn't run yet.
  void begin_run();
  /// Starts every source; each keeps generating until `stop`.
  void start_sources(TimePoint stop);
  /// Arms the opt-in run services — fault injection, credit resync,
  /// watchdog, probe sampling — exactly as the legacy run() did, bounded
  /// by the drain horizon so the calendar can empty.
  void arm_run_services(TimePoint horizon);
  /// Runs the watchdog final check and assembles the SimReport. Must be
  /// called before any teardown releases admission state (flows_admitted
  /// reads the live ledger).
  [[nodiscard]] SimReport collect_report(TimePoint t0);
  /// Applies a phase's load/shares/pattern to the running sources via
  /// retarget(). The multimedia population is churn-driven (admitted and
  /// departed as whole streams), not retargeted.
  void apply_phase(const PhaseSpec& phase);
  /// Mid-run churn: admits and starts one video stream from `src` toward
  /// a pattern-drawn destination, at the same per-stream rate as the
  /// static workload. nullopt = admission rejected (reservation
  /// exhausted). The stream generates until `stop` or close_video_flow().
  std::optional<FlowId> open_video_flow(NodeId src, Rng rng, TimePoint stop);
  /// Departs a churn flow: stops its source, releases its reservation (if
  /// the fault path hasn't already shed it) and retires the flow from its
  /// host. Packets already queued drain and deliver normally.
  void close_video_flow(FlowId id);
  /// Teardown sweep: close_video_flow() on every churn flow still open,
  /// in flow-id order. Returns how many were closed.
  std::uint64_t close_remaining_churn_flows();
  /// Retires a flow shed by the high-water load shedder (the shedder has
  /// already erased its reservation): churn flows fully depart — source
  /// stopped, host flow retired — while static flows merely close at the
  /// host (their sources keep producing; every refused submission is
  /// counted as shed degradation).
  void retire_shed_flow(FlowId id, NodeId src);

  /// Runs the event calendar(s) up to and including `t`: the sharded
  /// engine when cfg.shards > 1, else the plain serial Simulator. The only
  /// clock-advancing verb RunController uses — output is bit-identical
  /// either way (DESIGN.md §12).
  void run_calendar_until(TimePoint t);

  // --- component access for tests, examples and custom experiments ---
  /// The control calendar: run orchestration (phases, churn, faults,
  /// audits, probes) schedules here in every mode.
  [[nodiscard]] Simulator& sim() { return sim_; }
  /// Null unless the run is sharded (cfg.shards > 1 after clamping).
  [[nodiscard]] ShardExecutor* shard_engine() { return engine_.get(); }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] AdmissionController& admission() { return *admission_; }
  [[nodiscard]] MetricsCollector& metrics() { return *metrics_; }
  [[nodiscard]] Host& host(std::uint32_t i) { return *hosts_.at(i); }
  [[nodiscard]] Switch& fabric_switch(std::uint32_t i) { return *switches_.at(i); }
  [[nodiscard]] std::uint32_t num_hosts() const {
    return static_cast<std::uint32_t>(hosts_.size());
  }
  [[nodiscard]] std::uint32_t num_switches() const {
    return static_cast<std::uint32_t>(switches_.size());
  }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }

  /// Fault scripting interface (tests pin exact faults at exact instants).
  /// Scripted faults work even when SimConfig::fault is all-default, but
  /// recovery machinery (resync, retry, watchdog) is armed only when
  /// cfg.fault.enabled is set or a random fault rate is nonzero.
  [[nodiscard]] FaultInjector& fault_injector() { return *injector_; }
  /// Null unless the fault machinery is armed with a watchdog interval.
  [[nodiscard]] DeadlockWatchdog* watchdog() { return watchdog_.get(); }
  /// Null unless FaultConfig::audit_epoch > 0.
  [[nodiscard]] InvariantAuditor* auditor() { return auditor_.get(); }
  /// The packet pool (auditor tests plant custody leaks through this).
  [[nodiscard]] PacketPool& packet_pool() { return pool_; }
  /// Channels in construction order (auditor tests plant credit corruption
  /// through Channel::debug_corrupt_credits()).
  [[nodiscard]] Channel& channel(std::size_t i) { return *channels_.at(i); }
  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }
  /// Sum of frames_dropped / messages_refused over every source.
  [[nodiscard]] std::uint64_t total_frames_dropped() const;
  [[nodiscard]] std::uint64_t total_messages_refused() const;

  /// Sum of order errors / take-overs / credit stalls over all switches.
  [[nodiscard]] std::uint64_t total_order_errors() const;
  [[nodiscard]] std::uint64_t total_order_errors_vc(VcId vc) const;
  [[nodiscard]] std::uint64_t total_takeovers() const;
  [[nodiscard]] std::uint64_t total_credit_stalls() const;

 private:
  void build_topology();
  /// Partitions the fabric and builds the sharded engine, per-shard pools
  /// and metric relays (no-op when cfg.shards clamps to 1). Must run before
  /// anything schedules an event: every calendar shares the engine-global
  /// sequence counter from the first schedule on.
  void build_shards();
  void build_nodes();
  void build_channels();

  /// The calendar a node's components live on (its shard's, or sim_).
  [[nodiscard]] Simulator& sim_for(NodeId n);
  /// The collector a node's components report to (its shard's relay, or
  /// the primary).
  [[nodiscard]] MetricsCollector* metrics_for(NodeId n);
  [[nodiscard]] PacketPool& pool_for(NodeId n);
  /// Barrier reconciliation: applies parked cross-shard arrival notes to
  /// sender-owned wire accounting and folds foreign pool frees back.
  void on_shard_barrier();
  /// The serial tail of a flow abort (ledger release, host retirement);
  /// runs immediately in serial mode, at the barrier replay when the abort
  /// fired inside a window.
  void finish_flow_abort(FlowId id);

  /// Per-class offered bandwidth (bytes/s) under a phase's load and shares.
  [[nodiscard]] double phase_rate(const PhaseSpec& ph, TrafficClass c) const;
  /// The effective per-host peer bound: cfg.fanout when it actually binds
  /// (0 < fanout < N-1), else 0 = legacy all-to-all.
  [[nodiscard]] std::uint32_t bounded_fanout() const;
  /// Points active_pattern_ at (a pattern equal to) `params`, instantiating
  /// a new one only when it differs from the current pattern.
  void activate_pattern(const PatternParams& params);
  /// Host reported a flow aborted by the expiry-ratio threshold: release
  /// its reservation and silence its source (churn flows fully depart).
  void on_flow_aborted(FlowId id);

  SimConfig cfg_;
  Rng rng_;
  // Destruction order matters: the pools must outlive every queued packet —
  // including packets captured in pending simulator events (the control
  // calendar's and the engine-owned shard calendars') — so the pools are
  // declared before (destroyed after) the simulator, the engine and all
  // node objects.
  PacketPool pool_;
  std::vector<std::unique_ptr<PacketPool>> shard_pools_;
  Simulator sim_;  ///< the control calendar (the only one when serial)
  /// Sharded engine (null when serial). Owns the shard calendars, so it is
  /// declared after sim_ (its control reference) and before every component.
  std::unique_ptr<ShardExecutor> engine_;
  Partition part_;  ///< node -> shard map (empty when serial)
  const bool* engine_window_ = nullptr;  ///< engine's window-active flag
  std::unique_ptr<Topology> topo_;
  std::shared_ptr<MetricsCollector> metrics_;
  /// Per-shard relay collectors (defer-or-forward to metrics_).
  std::vector<std::unique_ptr<MetricsCollector>> shard_metrics_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<DestinationPattern> pattern_;
  /// Patterns instantiated for phases whose params differ from the
  /// config's (apply_phase); active_pattern_ points into pattern_ or here.
  std::vector<std::unique_ptr<DestinationPattern>> extra_patterns_;
  const DestinationPattern* active_pattern_ = nullptr;
  PatternParams active_pattern_params_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Channel>> channels_;
  enum class LinkTier : std::uint8_t { kInjection, kDelivery, kFabric };
  std::vector<LinkTier> channel_tier_;  ///< parallel to channels_
  std::vector<std::unique_ptr<TrafficSource>> sources_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<DeadlockWatchdog> watchdog_;
  std::unique_ptr<InvariantAuditor> auditor_;
  DenseFlowTable<NodeId> flow_src_;  ///< ack routing (retries)
  /// Churn-created flows still open, keyed to their sources (owned by
  /// sources_; pointers stay valid because sources_ only grows mid-run).
  DenseFlowTable<TrafficSource*> churn_sources_;
  /// Per-host bounded peer sets (cfg.fanout > 0): one SubsetPattern per
  /// host, shared by its control and unregulated sources.
  std::vector<std::unique_ptr<DestinationPattern>> peer_patterns_;
  bool fault_active_ = false;
  bool workload_prepared_ = false;
  /// Per-stream video rate (bytes/s) shared by the static population and
  /// churn admissions; computed once in prepare_workload.
  double video_realized_bps_ = 0.0;
  std::vector<std::uint32_t> video_trace_;  ///< loaded frame sizes (optional)
  std::shared_ptr<TimeSeries> queue_depth_series_;
  std::shared_ptr<TimeSeries> injection_series_;
  std::function<void()> probe_fn_;
  std::uint64_t last_injected_bytes_ = 0;
  bool ran_ = false;
};

}  // namespace dqos
