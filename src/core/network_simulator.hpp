/// \file network_simulator.hpp
/// The top-level facade: builds the full platform (topology, switches,
/// channels, hosts, admission control, Table 1 traffic) from a SimConfig,
/// runs warm-up + measurement + drain, and returns a SimReport.
///
/// Typical use (see examples/quickstart.cpp):
///
///   SimConfig cfg = SimConfig::paper(SwitchArch::kAdvanced2Vc, 1.0);
///   NetworkSimulator net(cfg);
///   SimReport rep = net.run();
///   printf("control latency: %.1f us\n",
///          rep.classes[0].avg_packet_latency_us);
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "host/host.hpp"
#include "qos/admission.hpp"
#include "stats/metrics.hpp"
#include "stats/timeseries.hpp"
#include "switchfab/switch.hpp"
#include "topo/topology.hpp"
#include "traffic/patterns.hpp"
#include "traffic/source.hpp"

namespace dqos {

/// Results of one run.
struct SimReport {
  SwitchArch arch = SwitchArch::kAdvanced2Vc;
  double load = 0.0;
  std::array<ClassReport, kNumTrafficClasses> classes;

  // network-level diagnostics
  std::uint64_t order_errors = 0;     ///< across all switch queues
  std::uint64_t order_errors_regulated = 0;  ///< on VC0 only
  std::uint64_t takeovers = 0;        ///< take-over enqueues (Advanced)
  std::uint64_t credit_stalls = 0;
  std::uint64_t out_of_order = 0;     ///< must be 0 (paper appendix)
  std::uint64_t best_effort_drops = 0;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t flows_admitted = 0;
  std::uint64_t flows_rejected = 0;

  /// Full latency distributions for CDF curves (shared with the collector).
  std::shared_ptr<const MetricsCollector> metrics;

  /// Link utilization by tier (busy fraction of the whole run):
  /// injection = host->switch, delivery = switch->host, fabric =
  /// switch<->switch. `max` is the hottest single link of the tier.
  struct TierUtilization {
    double mean = 0.0;
    double max = 0.0;
  };
  TierUtilization util_injection, util_delivery, util_fabric;

  /// Probe series (null unless SimConfig::probe_interval > 0):
  /// per-bin snapshots of packets queued inside switches, and per-bin bytes
  /// injected by all hosts (burstiness of the offered aggregate).
  std::shared_ptr<const TimeSeries> queue_depth;
  std::shared_ptr<const TimeSeries> injected_bytes;

  /// Fault-injection outcome (all-zero unless faults were configured or
  /// scripted through NetworkSimulator::fault_injector()).
  struct FaultReport {
    bool active = false;             ///< fault machinery was armed this run
    FaultStats injected;             ///< what the injector actually did
    std::uint64_t credit_resyncs = 0;
    std::uint64_t credit_bytes_resynced = 0;
    std::uint64_t packets_dropped_link_down = 0;
    std::uint64_t link_down_stalls = 0;
    std::uint64_t control_retries = 0;
    std::uint64_t control_retries_abandoned = 0;
    std::uint64_t shed_submissions = 0;
    std::uint64_t flows_rerouted = 0;
    std::uint64_t flows_shed = 0;
    bool watchdog_fired = false;
    std::string watchdog_report;     ///< per-switch diagnostics when fired
  };
  FaultReport fault;

  [[nodiscard]] const ClassReport& of(TrafficClass c) const {
    return classes[static_cast<std::size_t>(c)];
  }
};

class NetworkSimulator {
 public:
  /// Builds the entire platform; ready to run.
  explicit NetworkSimulator(const SimConfig& cfg);
  ~NetworkSimulator();
  NetworkSimulator(const NetworkSimulator&) = delete;
  NetworkSimulator& operator=(const NetworkSimulator&) = delete;

  /// Starts traffic, runs warm-up + measurement + drain, returns the report.
  /// May be called once.
  SimReport run();

  // --- component access for tests, examples and custom experiments ---
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] AdmissionController& admission() { return *admission_; }
  [[nodiscard]] MetricsCollector& metrics() { return *metrics_; }
  [[nodiscard]] Host& host(std::uint32_t i) { return *hosts_.at(i); }
  [[nodiscard]] Switch& fabric_switch(std::uint32_t i) { return *switches_.at(i); }
  [[nodiscard]] std::uint32_t num_hosts() const {
    return static_cast<std::uint32_t>(hosts_.size());
  }
  [[nodiscard]] std::uint32_t num_switches() const {
    return static_cast<std::uint32_t>(switches_.size());
  }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }

  /// Fault scripting interface (tests pin exact faults at exact instants).
  /// Scripted faults work even when SimConfig::fault is all-default, but
  /// recovery machinery (resync, retry, watchdog) is armed only when
  /// cfg.fault.enabled is set or a random fault rate is nonzero.
  [[nodiscard]] FaultInjector& fault_injector() { return *injector_; }
  /// Null unless the fault machinery is armed with a watchdog interval.
  [[nodiscard]] DeadlockWatchdog* watchdog() { return watchdog_.get(); }

  /// Sum of order errors / take-overs / credit stalls over all switches.
  [[nodiscard]] std::uint64_t total_order_errors() const;
  [[nodiscard]] std::uint64_t total_order_errors_vc(VcId vc) const;
  [[nodiscard]] std::uint64_t total_takeovers() const;
  [[nodiscard]] std::uint64_t total_credit_stalls() const;

 private:
  void build_topology();
  void build_nodes();
  void build_channels();
  void build_workload();

  /// Per-class offered bandwidth (bytes/s) at the configured load.
  [[nodiscard]] double class_rate(TrafficClass c) const;

  SimConfig cfg_;
  Rng rng_;
  // Destruction order matters: the pool must outlive every queued packet —
  // including packets captured in pending simulator events — so the pool is
  // declared before (destroyed after) the simulator and all node objects.
  PacketPool pool_;
  Simulator sim_;
  std::unique_ptr<Topology> topo_;
  std::shared_ptr<MetricsCollector> metrics_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<DestinationPattern> pattern_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Channel>> channels_;
  enum class LinkTier : std::uint8_t { kInjection, kDelivery, kFabric };
  std::vector<LinkTier> channel_tier_;  ///< parallel to channels_
  std::vector<std::unique_ptr<TrafficSource>> sources_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<DeadlockWatchdog> watchdog_;
  std::unordered_map<FlowId, NodeId> flow_src_;  ///< ack routing (retries)
  bool fault_active_ = false;
  std::vector<std::uint32_t> video_trace_;  ///< loaded frame sizes (optional)
  std::shared_ptr<TimeSeries> queue_depth_series_;
  std::shared_ptr<TimeSeries> injection_series_;
  std::function<void()> probe_fn_;
  std::uint64_t last_injected_bytes_ = 0;
  bool ran_ = false;
};

}  // namespace dqos
