/// \file run_controller.hpp
/// The scenario engine's executor: owns the run lifecycle that used to be
/// inlined in NetworkSimulator::run() — warm-up / measurement / drain
/// boundaries, per-phase metric windows, phase-transition events on the
/// simulator calendar, and Poisson flow churn (mid-run video admissions
/// with exponential lifetimes).
///
/// The controller drives the facade through narrow verbs
/// (prepare_workload, start_sources, arm_run_services, apply_phase,
/// open/close_video_flow, collect_report); the facade keeps owning the
/// platform. A one-phase scenario schedules zero extra events and replays
/// the legacy run() bit-for-bit — same fire order, same RNG streams, same
/// CSV bytes (tests/core/test_determinism.cpp pins this).
///
/// At teardown (after the drain), every churn flow still open is departed,
/// and — for scenario runs (multi-phase or churn) — every remaining
/// reservation is released through AdmissionController::release(), so
/// `reserved_bps_after_teardown` checks the §3.2 accounting invariant:
/// exact rollback, reserved bandwidth back to zero.
///
/// Admission backpressure (opt-in, SimConfig::admit_retry_max > 0): a
/// rejected churn arrival — or a flow shed by the fault path or the
/// high-water load shedder — re-enters through a deterministic
/// exponential-backoff retry queue. Backoff jitter and retried-flow
/// internals draw from a dedicated split stream, so runs without retries
/// draw nothing and runs with them replay bit-for-bit under one seed.
/// When SimConfig::shed_highwater > 0, every successful admission is
/// followed by AdmissionController::shed_to_highwater(), dropping the
/// lowest-class reserving flows until every link is back under the mark.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/network_simulator.hpp"
#include "core/scenario.hpp"
#include "util/dense_flow_table.hpp"

namespace dqos {

/// Per-phase slice of the run: metric window [start, end) plus the churn
/// activity observed while the phase was active.
struct PhaseReport {
  std::size_t index = 0;
  TimePoint start;  ///< absolute (phase offset + measurement-window start)
  TimePoint end;
  double load = 0.0;
  std::array<ClassReport, kNumTrafficClasses> classes;
  std::uint64_t churn_arrivals = 0;   ///< admitted mid-run video flows
  std::uint64_t churn_rejected = 0;   ///< admission refused (no headroom)
  std::uint64_t churn_departures = 0;

  [[nodiscard]] const ClassReport& of(TrafficClass c) const {
    return classes[static_cast<std::size_t>(c)];
  }
};

struct ScenarioReport {
  /// Whole-run report, identical in layout (and — for one-phase scenarios —
  /// in content) to what the legacy NetworkSimulator::run() returned.
  SimReport total;
  std::vector<PhaseReport> phases;
  /// Reserved bandwidth summed over every directed link after teardown.
  /// Exactly 0.0 for scenario runs — any residue is accounting drift.
  double reserved_bps_after_teardown = 0.0;
  std::uint64_t flows_released = 0;  ///< releases performed at teardown
};

class RunController {
 public:
  /// Validates `scenario` against the simulator's config; throws RunError
  /// (not a contract abort) on an inconsistent scenario so tools can print
  /// a diagnostic and exit.
  RunController(NetworkSimulator& net, Scenario scenario);

  /// Executes the scenario: prepares the workload (phase 0 rates), starts
  /// sources, arms fault/probe services, schedules phase transitions and
  /// churn, runs to the drain horizon, collects reports and tears down.
  /// Throws RunError if the simulator has already run.
  ScenarioReport run();

  [[nodiscard]] const Scenario& scenario() const { return scn_; }

 private:
  void enter_phase(std::size_t idx);
  /// Draws the next churn arrival for the active phase; no-op when the
  /// phase's arrival rate is zero or the draw lands past the window end.
  void arm_churn();
  void churn_arrival();
  /// Schedules an exponential-lifetime departure for an admitted churn
  /// flow, drawing from `stream` (churn stream for ordinary arrivals,
  /// backoff stream for readmitted retries — so retries never perturb the
  /// churn draws). No-op when the phase's departure rate is zero or the
  /// lifetime outlives the measurement window.
  void arm_departure(FlowId id, Rng& stream);
  /// Queues a backoff retry for a rejected or shed admission from `src`:
  /// wait = admit_retry_backoff * 2^(attempt-1) * jitter in [0.5, 1.5).
  /// Counts the flow as exhausted when attempts or the window run out.
  void schedule_retry(NodeId src, Rng flow_rng, std::uint32_t attempt);
  /// A retry fired: re-offer the flow to admission; on success arm its
  /// departure and re-check the high-water mark, on rejection re-queue.
  void retry_admission(NodeId src, Rng flow_rng, std::uint32_t attempt);
  /// Sheds reserving flows down to SimConfig::shed_highwater (no-op when
  /// the mark is unset); shed flows re-enter the retry queue.
  void shed_check();
  void teardown();

  NetworkSimulator& net_;
  Scenario scn_;
  /// Dedicated stream: seed-derived, disjoint from every workload stream,
  /// so churn draws never perturb the static sources (and a churn-free
  /// scenario draws nothing at all).
  Rng churn_rng_;
  /// Backpressure stream, disjoint from churn_rng_: backoff jitter,
  /// retried-flow internals and retry-flow lifetimes all draw here, so a
  /// retry storm leaves the churn sequence untouched.
  Rng backoff_rng_;

  TimePoint t0_;
  TimePoint window_start_;
  TimePoint window_end_;
  std::size_t active_phase_ = 0;
  EventId churn_event_ = 0;
  std::vector<EventId> transition_events_;
  DenseFlowTable<EventId> departure_events_;
  std::uint64_t arrival_seq_ = 0;  ///< salts the per-arrival RNG split
  std::vector<std::uint64_t> arrivals_;
  std::vector<std::uint64_t> rejected_;
  std::vector<std::uint64_t> departed_;
  std::uint64_t flows_released_ = 0;
  /// Pending backoff retries, token -> calendar event (cancelled at
  /// teardown; tokens also salt the per-retry RNG splits).
  std::unordered_map<std::uint64_t, EventId> retry_events_;
  std::uint64_t retry_seq_ = 0;
  std::uint64_t retries_ = 0;            ///< retry attempts fired
  std::uint64_t retries_exhausted_ = 0;  ///< flows that gave up
  std::uint64_t readmitted_ = 0;         ///< retries that succeeded
  std::uint64_t shed_flows_ = 0;         ///< high-water load sheds
};

}  // namespace dqos
