/// \file scenario.hpp
/// Declarative run scenarios: a timeline of phases, each with its own load
/// level, class shares, destination pattern and Poisson flow churn rates,
/// executed by RunController (run_controller.hpp).
///
/// The paper evaluates a *static* Table 1 mix; its admission-control story
/// (§3.2) only matters when flows arrive and leave while the network is
/// hot. A Scenario describes that regime declaratively:
///
///   Scenario scn;
///   scn.phases = {
///     {0_ms,  0.3, {0.25, 0.25, 0.25, 0.25}, {}, 0.0,    0.0},
///     {4_ms,  0.9, {0.25, 0.25, 0.25, 0.25}, {}, 2000.0, 500.0},
///     {8_ms,  0.5, {0.40, 0.10, 0.25, 0.25}, {}, 0.0,    0.0},
///   };
///   RunController rc(net, scn);
///   ScenarioReport rep = rc.run();
///
/// Phase starts are offsets from the *measurement-window* start; phase 0
/// must start at offset 0 (it also governs the warm-up period). The last
/// phase ends with the measurement window. A one-phase scenario built by
/// Scenario::single_phase() reproduces the legacy NetworkSimulator::run()
/// bit-for-bit (same events, same RNG streams, same CSV bytes).
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "traffic/patterns.hpp"
#include "util/error.hpp"

namespace dqos {

/// A run-lifecycle error: run() called twice, or a scenario that cannot be
/// executed against the given config. Sibling of ConfigError (config_io.hpp)
/// and AuditError (fault/auditor.hpp) — tools print it and exit instead of
/// tripping a contract abort.
class RunError : public DqosError {
 public:
  explicit RunError(const std::string& what) : DqosError(what) {}
};

/// One segment of the run timeline.
struct PhaseSpec {
  /// Offset from the measurement-window start. Phase 0 must be zero.
  Duration start = Duration::zero();
  /// Offered load (fraction of each host's injection bandwidth) while the
  /// phase is active. Applied to the Control/BestEffort/Background sources
  /// via retarget(); the Multimedia population is churn-driven instead.
  double load = 1.0;
  /// Class shares of the offered load (Control, Multimedia, BE, Background).
  /// A zero share pauses that class's sources for the phase.
  std::array<double, kNumTrafficClasses> class_share = {0.25, 0.25, 0.25,
                                                        0.25};
  /// Destination pattern for retargeted sources and churn admissions.
  PatternParams pattern;
  /// Poisson rate of new video-stream admissions (flows/s; 0 = no churn).
  /// Each arrival picks a uniform source host and a pattern-drawn
  /// destination, and goes through AdmissionController::admit() — so churn
  /// exercises mid-run admission and rejection.
  double flow_arrivals_per_sec = 0.0;
  /// Per-flow departure rate (1/s) of churn-created flows: each admitted
  /// churn flow draws an exponential lifetime with this rate (0 = flows
  /// live until the window ends). The static Table 1 population never
  /// departs — that keeps the single-phase path identical to legacy runs.
  double flow_departures_per_sec = 0.0;
};

struct Scenario {
  std::vector<PhaseSpec> phases;

  /// First inconsistency as a human-readable message ("" = valid), in the
  /// style of SimConfig::check(). Validated against `base` because phase
  /// offsets must fit the measurement window and churn needs video enabled.
  [[nodiscard]] std::string check(const SimConfig& base) const;

  [[nodiscard]] bool multi_phase() const { return phases.size() > 1; }
  [[nodiscard]] bool has_churn() const;

  /// The scenario equivalent of the legacy single-shot run: one phase with
  /// the config's load, shares and pattern, and no churn.
  [[nodiscard]] static Scenario single_phase(const SimConfig& cfg);

  /// Every phase load multiplied by `load_factor` — sweep composition
  /// (run_sweep treats phase loads as multipliers of the sweep point load).
  [[nodiscard]] Scenario scaled(double load_factor) const;
};

}  // namespace dqos
