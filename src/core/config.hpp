/// \file config.hpp
/// Complete configuration of one simulation run. Defaults reproduce the
/// paper's platform (§4.1): 128 endpoints in a folded perfect-shuffle
/// butterfly MIN of 16-port switches, 8 Gb/s links, 2 VCs, 8 KB buffer per
/// VC, credit flow control, and the Table 1 traffic mix (four classes at
/// 25% of the offered load each).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_config.hpp"
#include "switchfab/switch.hpp"
#include "traffic/patterns.hpp"
#include "traffic/video_source.hpp"
#include "util/time.hpp"

namespace dqos {

enum class TopologyKind : std::uint8_t {
  kFoldedClos = 0,   ///< the paper's MIN (num_leaves x hosts_per_leaf, spines)
  kKaryNTree = 1,    ///< deeper-network ablation
  kSingleSwitch = 2, ///< isolation tests
  kMesh2D = 3,       ///< direct-network extension (XY routing)
};

struct SimConfig {
  // --- platform (§4.1) ---
  TopologyKind topology = TopologyKind::kFoldedClos;
  std::uint32_t num_leaves = 16;
  std::uint32_t hosts_per_leaf = 8;
  std::uint32_t num_spines = 8;
  std::uint32_t kary_k = 4;  ///< kKaryNTree parameters
  std::uint32_t kary_n = 2;
  std::uint32_t single_switch_hosts = 16;
  std::uint32_t mesh_width = 4;   ///< kMesh2D parameters
  std::uint32_t mesh_height = 4;
  std::uint32_t mesh_concentration = 2;

  SwitchArch arch = SwitchArch::kAdvanced2Vc;
  std::uint8_t num_vcs = 2;
  std::vector<std::uint32_t> vc_weights;  ///< Traditional multi-VC table (A5)
  std::uint32_t buffer_bytes_per_vc = 8 * 1024;
  /// A10: per-decision latency of heap buffers (Ideal architecture only).
  Duration heap_op_latency = Duration::zero();
  Bandwidth link_bw = Bandwidth::from_gbps(8.0);
  Duration link_latency = Duration::nanoseconds(100);  ///< wire + hop processing
  std::uint32_t mtu_bytes = 2048;

  // --- workload (Table 1) ---
  /// Offered input load as a fraction of each host's injection bandwidth.
  double load = 1.0;
  /// Class shares of the offered load (Control, Multimedia, BE, Background).
  std::array<double, kNumTrafficClasses> class_share = {0.25, 0.25, 0.25, 0.25};
  bool enable_control = true;
  bool enable_video = true;
  bool enable_best_effort = true;
  bool enable_background = true;
  VideoParams video;  ///< per-flow MPEG-4 model (3 MB/s, 40 ms, 1-120 KB)
  /// Non-empty: drive multimedia from a frame-size trace file instead of
  /// the synthetic GoP model (one frame size per line; see
  /// data/mpeg4_sample.trace). Streams share the trace with random phases.
  std::string video_trace_path;
  /// Spatial destination pattern for control and unregulated traffic
  /// (video pairings also follow it). Default: uniform (the paper's).
  PatternParams pattern;
  Duration video_frame_budget = Duration::milliseconds(10);  ///< §3.1 target
  bool video_eligible_time = true;
  Duration eligible_lead = Duration::microseconds(20);
  /// Deadline-bandwidth weights for the two unregulated classes (Fig. 4:
  /// EDF architectures differentiate classes sharing a VC by these).
  double best_effort_weight = 2.0;
  double background_weight = 1.0;
  double reservable_fraction = 1.0;
  /// Bounded fanout (datacenter-scale runs, DESIGN.md §13): each host opens
  /// control/unregulated flows to at most this many pattern-drawn peers
  /// instead of to all N-1 hosts. 0 = legacy all-to-all (the paper's
  /// workload; the default keeps every golden byte-identical). Values
  /// >= N-1 behave like 0.
  std::uint32_t fanout = 0;
  /// Hierarchical pod-level admission (DESIGN.md §13): split the ledger
  /// into per-pod brokers plus a root broker on pod-structured topologies
  /// (k-ary n-trees, n >= 2). Identical route decisions in both modes —
  /// this moves state and the recovery sweep order, never a path. Ignored
  /// (flat) on topologies without pods.
  bool hier_admission = false;

  // --- clocks (§3.3) ---
  /// Each node gets a local-clock offset uniform in [0, max_clock_skew]
  /// (0 = perfectly synchronized). Results must not depend on it.
  Duration max_clock_skew = Duration::zero();

  // --- fault injection (all off by default: bit-identical baseline) ---
  FaultConfig fault;

  // --- overload degradation (all off by default: bit-identical baseline) ---
  /// End-host expiry & drop: a regulated packet whose deadline has already
  /// passed when it reaches the NIC head is dropped at the source ("skip
  /// it, already late") instead of hauling worthless bytes.
  bool expiry_drop = false;
  /// Retire a flow once its expired/submitted byte ratio exceeds this
  /// (0 = never abort). Only consulted when expiry_drop is on and the flow
  /// has submitted enough bytes for the ratio to be meaningful.
  double expiry_abort_ratio = 0.0;
  /// Admission backpressure: rejected or fault-shed churn flows re-try
  /// admission up to this many times with exponential backoff (0 = rejected
  /// flows are dropped on the floor, the legacy behaviour).
  std::uint32_t admit_retry_max = 0;
  /// Base backoff before the first retry; attempt k waits base << k, with
  /// deterministic jitter from a dedicated split RNG stream.
  Duration admit_retry_backoff = Duration::microseconds(100);
  /// Load shedding: when total reserved bandwidth on any link exceeds this
  /// fraction of its reservable budget, shed lowest-class flows first until
  /// back under the mark (0 = shedding off).
  double shed_highwater = 0.0;

  // --- run control ---
  std::uint64_t seed = 1;
  /// Sharded conservative-parallel execution (DESIGN.md §12): partition the
  /// fabric across this many event calendars and run them window-parallel
  /// with the fixed wire latency as lookahead. 1 = the serial engine.
  /// Output is bit-identical at any shard count; clamped to the number of
  /// switches at build time. Requires link_latency > 0 and, when fault
  /// machinery is armed, control retries off (the retry ack path is a
  /// zero-latency cross-host touch the lookahead cannot cover).
  std::uint32_t shards = 1;
  /// Worker threading for shards > 1: 1 forces worker threads, 0 forces the
  /// inline (single-thread) window drains, -1 picks threads only on a
  /// multi-core machine. Purely a performance knob — output is identical.
  std::int32_t shard_threads = -1;
  /// Periodic probe sampling of fabric occupancy and injection rate into
  /// TimeSeries (SimReport::queue_depth / injected_bytes). Zero = off.
  Duration probe_interval = Duration::zero();
  Duration warmup = Duration::milliseconds(2);
  Duration measure = Duration::milliseconds(20);
  Duration drain = Duration::milliseconds(3);

  /// Number of hosts implied by the topology settings.
  [[nodiscard]] std::uint32_t num_hosts() const;
  /// First inconsistency found, as a human-readable message ("" = valid).
  /// config_io turns this into a ConfigError with file/line context.
  [[nodiscard]] std::string check() const;
  /// Aborts (contract) on inconsistent settings.
  void validate() const;

  /// The paper's exact evaluation platform at the given offered load.
  static SimConfig paper(SwitchArch arch, double load);
  /// A scaled-down platform (32 hosts) for fast tests and default benches.
  static SimConfig small(SwitchArch arch, double load);
};

}  // namespace dqos
