#include "core/run_controller.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/contracts.hpp"

namespace dqos {

RunController::RunController(NetworkSimulator& net, Scenario scenario)
    : net_(net),
      scn_(std::move(scenario)),
      churn_rng_(Rng(net.config().seed).split(0x5ce7a810)),
      backoff_rng_(Rng(net.config().seed).split(0xbacc0ff5)) {
  const std::string problem = scn_.check(net_.config());
  if (!problem.empty()) throw RunError("scenario error: " + problem);
}

ScenarioReport RunController::run() {
  net_.begin_run();
  Simulator& sim = net_.sim();
  const SimConfig& cfg = net_.config();
  MetricsCollector& metrics = net_.metrics();

  t0_ = sim.now();
  window_start_ = t0_ + cfg.warmup;
  window_end_ = window_start_ + cfg.measure;
  const TimePoint horizon = window_end_ + cfg.drain;
  metrics.set_window(window_start_, window_end_);
  {
    // Pre-size latency sample stores from the offered load so the
    // measurement phase never reallocates mid-run. Worst case each class
    // carries the whole offered load at the heaviest phase; SampleSet
    // clamps at its cap, so an over-estimate only wastes address space,
    // never memory commit. (For a one-phase scenario the peak is the
    // config load and this reproduces the legacy arithmetic bit-for-bit.)
    double peak_load = 0.0;
    for (const PhaseSpec& ph : scn_.phases) {
      peak_load = std::max(peak_load, ph.load);
    }
    const double offered_bytes = static_cast<double>(cfg.num_hosts()) *
                                 peak_load * cfg.link_bw.bytes_per_sec() *
                                 cfg.measure.sec();
    double max_share = 0.0;
    for (const PhaseSpec& ph : scn_.phases) {
      for (const double s : ph.class_share) max_share = std::max(max_share, s);
    }
    const auto pkts = static_cast<std::size_t>(
        offered_bytes * max_share / static_cast<double>(cfg.mtu_bytes)) + 64;
    metrics.reserve_samples(pkts, pkts / 8 + 64);
  }
  if (scn_.multi_phase()) {
    std::vector<TimePoint> starts;
    starts.reserve(scn_.phases.size());
    for (const PhaseSpec& ph : scn_.phases) {
      starts.push_back(window_start_ + ph.start);
    }
    metrics.set_phase_starts(std::move(starts));
  }

  net_.prepare_workload(scn_);
  net_.start_sources(window_end_);
  net_.arm_run_services(horizon);

  // Phase transitions ride the ordinary event calendar. A one-phase
  // scenario schedules none of these (and no churn below) — zero extra
  // events, which is what keeps the golden fire-order hashes intact.
  for (std::size_t i = 1; i < scn_.phases.size(); ++i) {
    transition_events_.push_back(sim.schedule_at(
        window_start_ + scn_.phases[i].start, [this, i] { enter_phase(i); }));
  }
  arrivals_.assign(scn_.phases.size(), 0);
  rejected_.assign(scn_.phases.size(), 0);
  departed_.assign(scn_.phases.size(), 0);
  arm_churn();
  if (cfg.admit_retry_max > 0) {
    // Flows the fault path sheds (no surviving feasible route) re-enter
    // through the same backoff queue as rejected churn arrivals.
    net_.fault_injector().set_flow_displaced(
        [this](const AdmissionController::Reroute& r) {
          if (r.rerouted) return;  // moved, not shed: nothing to re-admit
          schedule_retry(r.src, backoff_rng_.split(0xd15b00d5 + retry_seq_),
                         1);
        });
  }

  net_.run_calendar_until(horizon);

  ScenarioReport out;
  out.total = net_.collect_report(t0_);
  // The facade filled the host/source-derived degradation fields; the
  // backpressure counters live here.
  out.total.degradation.admit_retries = retries_;
  out.total.degradation.admit_retries_exhausted = retries_exhausted_;
  out.total.degradation.flows_readmitted = readmitted_;
  out.total.degradation.flows_shed_highwater = shed_flows_;
  out.phases.resize(scn_.phases.size());
  for (std::size_t i = 0; i < scn_.phases.size(); ++i) {
    PhaseReport& pr = out.phases[i];
    pr.index = i;
    pr.start = window_start_ + scn_.phases[i].start;
    pr.end = i + 1 < scn_.phases.size()
                 ? window_start_ + scn_.phases[i + 1].start
                 : window_end_;
    pr.load = scn_.phases[i].load;
    for (const TrafficClass c : all_traffic_classes()) {
      const auto ci = static_cast<std::size_t>(c);
      pr.classes[ci] = scn_.multi_phase() ? metrics.phase_report(i, c)
                                          : out.total.classes[ci];
    }
    pr.churn_arrivals = arrivals_[i];
    pr.churn_rejected = rejected_[i];
    pr.churn_departures = departed_[i];
  }
  teardown();
  out.reserved_bps_after_teardown =
      net_.admission().total_reserved_bytes_per_sec();
  out.flows_released = flows_released_;
  return out;
}

void RunController::enter_phase(std::size_t idx) {
  DQOS_ASSERT(idx < scn_.phases.size());
  // Phase boundaries are natural audit points: the workload is about to
  // shift, so any conservation drift the old phase caused is pinned to it.
  if (InvariantAuditor* aud = net_.auditor()) {
    aud->audit_now("enter phase " + std::to_string(idx));
  }
  active_phase_ = idx;
  net_.apply_phase(scn_.phases[idx]);
  // Re-draw the churn clock at the new phase's arrival rate.
  if (churn_event_ != 0) {
    net_.sim().cancel(churn_event_);
    churn_event_ = 0;
  }
  arm_churn();
}

void RunController::arm_churn() {
  const double lambda = scn_.phases[active_phase_].flow_arrivals_per_sec;
  if (lambda <= 0.0) return;
  const double wait = -std::log(churn_rng_.uniform_pos()) / lambda;
  const TimePoint at = net_.sim().now() + Duration::from_seconds_double(wait);
  if (at >= window_end_) return;  // no churn into the drain
  churn_event_ = net_.sim().schedule_at(at, [this] {
    churn_event_ = 0;
    churn_arrival();
  });
}

void RunController::churn_arrival() {
  const auto src = static_cast<NodeId>(
      churn_rng_.uniform_int(0, net_.num_hosts() - 1));
  // Per-arrival stream: the flow's own draws (GOP phase, frame sizes) come
  // from a split, so the arrival process stays independent of flow internals.
  const Rng flow_rng = churn_rng_.split(0xc0ffee00ULL + arrival_seq_++);
  const auto flow = net_.open_video_flow(src, flow_rng, window_end_);
  if (flow.has_value()) {
    ++arrivals_[active_phase_];
    arm_departure(*flow, churn_rng_);
    shed_check();
  } else {
    ++rejected_[active_phase_];
    if (net_.config().admit_retry_max > 0) schedule_retry(src, flow_rng, 1);
  }
  arm_churn();
}

void RunController::arm_departure(FlowId id, Rng& stream) {
  const double mu = scn_.phases[active_phase_].flow_departures_per_sec;
  if (mu <= 0.0) return;
  const double life = -std::log(stream.uniform_pos()) / mu;
  const TimePoint at = net_.sim().now() + Duration::from_seconds_double(life);
  if (at >= window_end_) return;
  departure_events_.get_or_insert(id) = net_.sim().schedule_at(at, [this, id] {
    departure_events_.erase(id);
    ++departed_[active_phase_];
    net_.close_video_flow(id);
  });
}

void RunController::schedule_retry(NodeId src, Rng flow_rng,
                                   std::uint32_t attempt) {
  const SimConfig& cfg = net_.config();
  if (attempt > cfg.admit_retry_max) {
    ++retries_exhausted_;
    return;
  }
  // Exponential backoff with jitter in [0.5, 1.5): doubling spreads a
  // rejection storm out in time, the jitter keeps retriers that collided
  // once from re-colliding on the same calendar instant forever.
  const double scale = static_cast<double>(1ULL << (attempt - 1));
  const double jitter = 0.5 + backoff_rng_.uniform();
  const TimePoint at =
      net_.sim().now() + Duration::from_seconds_double(
                             cfg.admit_retry_backoff.sec() * scale * jitter);
  if (at >= window_end_) {  // never retry into the drain: give up instead
    ++retries_exhausted_;
    return;
  }
  const std::uint64_t token = retry_seq_++;
  retry_events_[token] =
      net_.sim().schedule_at(at, [this, token, src, flow_rng, attempt] {
        retry_events_.erase(token);
        retry_admission(src, flow_rng, attempt);
      });
}

void RunController::retry_admission(NodeId src, Rng flow_rng,
                                    std::uint32_t attempt) {
  ++retries_;
  const auto flow = net_.open_video_flow(src, flow_rng, window_end_);
  if (!flow.has_value()) {
    schedule_retry(src, flow_rng, attempt + 1);
    return;
  }
  ++readmitted_;
  ++arrivals_[active_phase_];
  // Lifetime from the backoff stream: a retry storm must not advance the
  // churn stream, or retry-free replays of the same seed would diverge.
  arm_departure(*flow, backoff_rng_);
  shed_check();
}

void RunController::shed_check() {
  const double highwater = net_.config().shed_highwater;
  if (highwater <= 0.0) return;
  for (const auto& r : net_.admission().shed_to_highwater(highwater)) {
    ++shed_flows_;
    if (const EventId* ev = departure_events_.find(r.flow)) {
      net_.sim().cancel(*ev);
      departure_events_.erase(r.flow);
    }
    net_.retire_shed_flow(r.flow, r.src);
    if (net_.config().admit_retry_max > 0) {
      // The shed flow queues for re-admission once load subsides.
      schedule_retry(r.src, backoff_rng_.split(0x5eed0000 + retry_seq_), 1);
    }
  }
}

void RunController::teardown() {
  // Belt and braces: every churn/transition event fires before window_end_
  // (< horizon), so these cancels are no-ops on a completed run — but they
  // make partial teardown safe if a future caller stops the clock early.
  Simulator& sim = net_.sim();
  if (churn_event_ != 0) {
    sim.cancel(churn_event_);
    churn_event_ = 0;
  }
  for (const EventId id : transition_events_) sim.cancel(id);
  transition_events_.clear();
  // Cancel in ascending FlowId order: cancellation mutates kernel state —
  // keep teardown replayable no matter what insertion order did.
  for (const FlowId flow : departure_events_.ids_ascending()) {
    sim.cancel(departure_events_.at(flow));
  }
  departure_events_.clear();
  // Copy-harvest then sort: cancellation order is insertion-independent.
  std::vector<std::pair<std::uint64_t, EventId>> retries(retry_events_.begin(),
                                                         retry_events_.end());
  std::sort(retries.begin(), retries.end());
  for (const auto& [token, ev] : retries) sim.cancel(ev);
  retry_events_.clear();

  flows_released_ += net_.close_remaining_churn_flows();
  if (scn_.multi_phase() || scn_.has_churn()) {
    // Scenario runs hand every remaining reservation back so the ledger
    // provably returns to zero. The legacy one-phase path skips this and
    // leaves admission state inspectable after run(), as it always was.
    for (const FlowId id : net_.admission().admitted_ids()) {
      net_.admission().release(id);
      ++flows_released_;
    }
  }
}

}  // namespace dqos
