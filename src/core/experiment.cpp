#include "core/experiment.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "core/run_controller.hpp"
#include "core/sweep_runner.hpp"
#include "util/contracts.hpp"

namespace dqos {

namespace {

/// How many OS threads one replica of `cfg` occupies: a sharded simulator
/// with worker threads is `shards` wide, everything else is 1.
unsigned replica_width(const SimConfig& cfg) {
  if (cfg.shards <= 1 || cfg.shard_threads == 0) return 1;
  if (cfg.shard_threads == -1 && std::thread::hardware_concurrency() <= 1) {
    return 1;  // auto mode picks the inline drain on a single-core box
  }
  return cfg.shards;
}

}  // namespace

std::vector<SweepPoint> run_sweep(const SimConfig& base,
                                  std::span<const SwitchArch> archs,
                                  std::span<const double> loads,
                                  const std::function<void(SimConfig&)>& tweak,
                                  const Scenario* scenario, unsigned threads) {
  // Build every point's config on this thread, in serial-loop order; the
  // tweak callback therefore never runs concurrently and per-point seeds
  // are fixed before any replica starts.
  std::vector<SimConfig> cfgs;
  std::vector<Scenario> scns;
  cfgs.reserve(archs.size() * loads.size());
  if (scenario) scns.reserve(archs.size() * loads.size());
  for (const SwitchArch arch : archs) {
    for (const double load : loads) {
      SimConfig cfg = base;
      cfg.arch = arch;
      cfg.load = load;
      if (tweak) tweak(cfg);
      if (scenario) {
        // Validate every scaled scenario serially so a bad phase load
        // surfaces as one RunError here, not a race of worker failures.
        Scenario scn = scenario->scaled(load);
        const std::string problem = scn.check(cfg);
        if (!problem.empty()) throw RunError("scenario error: " + problem);
        scns.push_back(std::move(scn));
      }
      cfgs.push_back(std::move(cfg));
    }
  }

  // Fan out: one independent single-threaded replica per point, collected
  // by index so the result order (and every downstream table/CSV byte)
  // matches the serial loop exactly.
  std::vector<SweepPoint> points(cfgs.size());
  unsigned width = 1;
  for (const SimConfig& cfg : cfgs) width = std::max(width, replica_width(cfg));
  SweepRunner runner(threads, width);
  runner.run(cfgs.size(), [&](std::size_t i) {
    NetworkSimulator net(cfgs[i]);
    SimReport rep;
    if (scenario) {
      RunController rc(net, scns[i]);
      rep = rc.run().total;
    } else {
      rep = net.run();
    }
    char line[160];
    std::snprintf(line, sizeof line, "  [run] %-17s load=%.2f done (%llu pkts, %llu events)",
                  std::string(to_string(cfgs[i].arch)).c_str(), cfgs[i].load,
                  static_cast<unsigned long long>(rep.packets_delivered),
                  static_cast<unsigned long long>(rep.events_processed));
    runner.log(line);
    points[i] = SweepPoint{cfgs[i].arch, cfgs[i].load, std::move(rep)};
  });
  return points;
}

void print_series(std::FILE* out, const std::vector<SweepPoint>& points,
                  const std::string& title, const std::string& unit,
                  const MetricFn& metric, int precision,
                  const std::string& csv_path) {
  DQOS_EXPECTS(!points.empty());
  // Distinct architectures / loads, in first-seen order.
  std::vector<SwitchArch> archs;
  std::vector<double> loads;
  for (const auto& p : points) {
    if (std::find(archs.begin(), archs.end(), p.arch) == archs.end()) {
      archs.push_back(p.arch);
    }
    if (std::find(loads.begin(), loads.end(), p.load) == loads.end()) {
      loads.push_back(p.load);
    }
  }
  std::vector<std::string> header{"load"};
  for (const SwitchArch a : archs) header.emplace_back(to_string(a));
  TableWriter table(header);
  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty()) csv.row(header);

  auto value_at = [&](SwitchArch a, double l) -> double {
    for (const auto& p : points) {
      if (p.arch == a && p.load == l) return metric(p.report);
    }
    return 0.0;
  };
  for (const double l : loads) {
    std::vector<std::string> row{TableWriter::num(l, 2)};
    for (const SwitchArch a : archs) {
      row.push_back(TableWriter::num(value_at(a, l), precision));
    }
    if (!csv_path.empty()) csv.row(row);
    table.row(std::move(row));
  }
  std::fprintf(out, "\n%s [%s]\n", title.c_str(), unit.c_str());
  table.print(out);
}

void print_cdf(std::FILE* out, const SampleSet& samples, const std::string& title,
               std::size_t points, const std::string& csv_path) {
  std::fprintf(out, "\n%s (n=%llu, mean=%.1f, max=%.1f)\n", title.c_str(),
               static_cast<unsigned long long>(samples.count()), samples.mean(),
               samples.max());
  if (samples.count() == 0) return;
  TableWriter table({"latency", "P[X<=x]"});
  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path);
  if (!csv_path.empty()) csv.row({"latency", "cdf"});
  for (const auto& [x, p] : samples.cdf_curve(points)) {
    table.row({TableWriter::num(x, 1), TableWriter::num(p, 4)});
    if (!csv_path.empty()) csv.row({TableWriter::num(x, 4), TableWriter::num(p, 6)});
  }
  table.print(out);
}

double control_latency_us(const SimReport& r) {
  return r.of(TrafficClass::kControl).avg_packet_latency_us;
}

double control_throughput_frac(const SimReport& r) {
  const auto& c = r.of(TrafficClass::kControl);
  return c.offered_bytes_per_sec > 0.0
             ? c.throughput_bytes_per_sec / c.offered_bytes_per_sec
             : 0.0;
}

double video_frame_latency_ms(const SimReport& r) {
  return r.of(TrafficClass::kMultimedia).avg_message_latency_us / 1000.0;
}

double best_effort_throughput_frac(const SimReport& r) {
  const auto& c = r.of(TrafficClass::kBestEffort);
  return c.offered_bytes_per_sec > 0.0
             ? c.throughput_bytes_per_sec / c.offered_bytes_per_sec
             : 0.0;
}

double background_throughput_frac(const SimReport& r) {
  const auto& c = r.of(TrafficClass::kBackground);
  return c.offered_bytes_per_sec > 0.0
             ? c.throughput_bytes_per_sec / c.offered_bytes_per_sec
             : 0.0;
}

bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace dqos
