#include "core/config.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

std::uint32_t SimConfig::num_hosts() const {
  switch (topology) {
    case TopologyKind::kFoldedClos: return num_leaves * hosts_per_leaf;
    case TopologyKind::kKaryNTree: {
      std::uint32_t n = 1;
      for (std::uint32_t i = 0; i < kary_n; ++i) n *= kary_k;
      return n;
    }
    case TopologyKind::kSingleSwitch: return single_switch_hosts;
    case TopologyKind::kMesh2D: return mesh_width * mesh_height * mesh_concentration;
  }
  DQOS_ASSERT(false);
  return 0;
}

std::string SimConfig::check() const {
  if (num_hosts() < 2) return "topology must provide at least 2 hosts";
  if (!(load > 0.0 && load <= 2.0)) return "load must be in (0, 2]";
  if (!(num_vcs >= 1 && num_vcs <= 8)) return "vcs must be in [1, 8]";
  if (!vc_weights.empty() && vc_weights.size() != num_vcs) {
    return "vc-weights must list exactly one weight per VC";
  }
  if (!link_bw.valid()) return "link-gbps must be positive";
  if (buffer_bytes_per_vc < mtu_bytes + kHeaderBytes) {
    return "buffer-bytes must hold at least one MTU packet plus header";
  }
  if (warmup < Duration::zero()) return "warmup-ms must be non-negative";
  if (measure <= Duration::zero()) return "measure-ms must be positive";
  double share_sum = 0.0;
  for (const double s : class_share) {
    if (s < 0.0) return "class shares must be non-negative";
    share_sum += s;
  }
  // > 1.0 deliberately oversubscribes (Fig. 4 stresses the unregulated
  // classes); cap at 2x to catch unit mistakes.
  if (share_sum > 2.0 + 1e-9) return "class shares must sum to at most 2.0";
  if (!(best_effort_weight > 0.0 && background_weight > 0.0)) {
    return "class weights must be positive";
  }
  if (!(reservable_fraction > 0.0 && reservable_fraction <= 1.0)) {
    return "reservable-fraction must be in (0, 1]";
  }
  if (fault.link_down_per_sec < 0.0 || fault.credit_loss_per_sec < 0.0 ||
      fault.ttd_corrupt_per_sec < 0.0 || fault.clock_drift_per_sec < 0.0) {
    return "fault rates must be non-negative";
  }
  if (fault.link_permanent_fraction < 0.0 || fault.link_permanent_fraction > 1.0) {
    return "fault-permanent-fraction must be in [0, 1]";
  }
  if (fault.link_outage_mean <= Duration::zero()) {
    return "fault-link-outage-ms must be positive";
  }
  if (fault.credit_loss_bytes == 0 && fault.credit_loss_per_sec > 0.0) {
    return "fault-credit-loss-bytes must be positive when losses are enabled";
  }
  if (fault.credit_resync_window < Duration::zero()) {
    return "credit-resync-us must be non-negative (0 = off)";
  }
  if (fault.control_retry && fault.retry_timeout <= Duration::zero()) {
    return "retry-timeout-us must be positive";
  }
  if (fault.watchdog_interval < Duration::zero()) {
    return "watchdog-ms must be non-negative (0 = off)";
  }
  if (fault.watchdog_interval > Duration::zero() && fault.watchdog_rounds == 0) {
    return "watchdog-rounds must be positive";
  }
  if (fault.audit_epoch < Duration::zero()) {
    return "audit-epoch-us must be non-negative (0 = off)";
  }
  if (expiry_abort_ratio < 0.0 || expiry_abort_ratio > 1.0) {
    return "expiry-abort-ratio must be in [0, 1]";
  }
  if (expiry_abort_ratio > 0.0 && !expiry_drop) {
    return "expiry-abort-ratio requires expiry-drop";
  }
  if (admit_retry_max > 0 && admit_retry_backoff <= Duration::zero()) {
    return "admit-retry-backoff-us must be positive when retries are enabled";
  }
  if (shed_highwater < 0.0 || shed_highwater > 1.0) {
    return "shed-highwater must be in [0, 1] (0 = off)";
  }
  if (shards == 0) return "shards must be at least 1";
  if (shards > 1) {
    if (link_latency <= Duration::zero()) {
      return "shards > 1 requires a positive link-latency-ns (the lookahead)";
    }
    if ((fault.enabled || fault.any_faults()) && fault.control_retry) {
      return "shards > 1 requires no-control-retry (zero-latency ack path)";
    }
  }
  if (shard_threads < -1 || shard_threads > 1) {
    return "shard-threads must be -1 (auto), 0 (inline) or 1 (threads)";
  }
  return "";
}

void SimConfig::validate() const {
  const std::string msg = check();
  if (!msg.empty()) {
    DQOS_EXPECTS(msg.empty() && "invalid SimConfig");
  }
}

SimConfig SimConfig::paper(SwitchArch arch, double load) {
  SimConfig cfg;
  cfg.arch = arch;
  cfg.load = load;
  return cfg;
}

SimConfig SimConfig::small(SwitchArch arch, double load) {
  SimConfig cfg;
  cfg.arch = arch;
  cfg.load = load;
  cfg.num_leaves = 4;
  cfg.hosts_per_leaf = 8;
  cfg.num_spines = 8;
  cfg.warmup = Duration::milliseconds(1);
  cfg.measure = Duration::milliseconds(10);
  cfg.drain = Duration::milliseconds(2);
  return cfg;
}

}  // namespace dqos
