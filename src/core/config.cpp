#include "core/config.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

std::uint32_t SimConfig::num_hosts() const {
  switch (topology) {
    case TopologyKind::kFoldedClos: return num_leaves * hosts_per_leaf;
    case TopologyKind::kKaryNTree: {
      std::uint32_t n = 1;
      for (std::uint32_t i = 0; i < kary_n; ++i) n *= kary_k;
      return n;
    }
    case TopologyKind::kSingleSwitch: return single_switch_hosts;
    case TopologyKind::kMesh2D: return mesh_width * mesh_height * mesh_concentration;
  }
  DQOS_ASSERT(false);
  return 0;
}

void SimConfig::validate() const {
  DQOS_EXPECTS(num_hosts() >= 2);
  DQOS_EXPECTS(load > 0.0 && load <= 2.0);
  DQOS_EXPECTS(num_vcs >= 1 && num_vcs <= 8);
  DQOS_EXPECTS(vc_weights.empty() || vc_weights.size() == num_vcs);
  DQOS_EXPECTS(link_bw.valid());
  DQOS_EXPECTS(buffer_bytes_per_vc >= mtu_bytes + kHeaderBytes);
  DQOS_EXPECTS(warmup >= Duration::zero() && measure > Duration::zero());
  double share_sum = 0.0;
  for (const double s : class_share) {
    DQOS_EXPECTS(s >= 0.0);
    share_sum += s;
  }
  // > 1.0 deliberately oversubscribes (Fig. 4 stresses the unregulated
  // classes); cap at 2x to catch unit mistakes.
  DQOS_EXPECTS(share_sum <= 2.0 + 1e-9);
  DQOS_EXPECTS(best_effort_weight > 0.0 && background_weight > 0.0);
}

SimConfig SimConfig::paper(SwitchArch arch, double load) {
  SimConfig cfg;
  cfg.arch = arch;
  cfg.load = load;
  return cfg;
}

SimConfig SimConfig::small(SwitchArch arch, double load) {
  SimConfig cfg;
  cfg.arch = arch;
  cfg.load = load;
  cfg.num_leaves = 4;
  cfg.hosts_per_leaf = 8;
  cfg.num_spines = 8;
  cfg.warmup = Duration::milliseconds(1);
  cfg.measure = Duration::milliseconds(10);
  cfg.drain = Duration::milliseconds(2);
  return cfg;
}

}  // namespace dqos
