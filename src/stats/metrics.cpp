#include "stats/metrics.hpp"

#include "util/contracts.hpp"

namespace dqos {

MetricsCollector::MetricsCollector() = default;

void MetricsCollector::set_window(TimePoint start, TimePoint end) {
  DQOS_EXPECTS(start < end);
  start_ = start;
  end_ = end;
}

void MetricsCollector::reserve_samples(std::size_t packets_per_class,
                                       std::size_t messages_per_class) {
  for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
    pkt_latency_[c].reserve(packets_per_class);
    msg_latency_[c].reserve(messages_per_class);
  }
}

void MetricsCollector::set_phase_starts(std::vector<TimePoint> starts) {
  DQOS_EXPECTS(!starts.empty());
  DQOS_EXPECTS(starts.front() == start_);
  DQOS_EXPECTS(starts.back() < end_);
  phases_.clear();
  phases_.resize(starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    if (i > 0) DQOS_EXPECTS(starts[i] > starts[i - 1]);
    phases_[i].start = starts[i];
    phases_[i].end = i + 1 < starts.size() ? starts[i + 1] : end_;
  }
}

void MetricsCollector::on_packet_delivered(const Packet& p, TimePoint now,
                                           Duration slack) {
  if (relay_primary_ != nullptr) {
    if (*relay_window_) {
      relay_log_->effects.push_back(DeferredEffect{
          DeferredEffect::Kind::kPacketDelivered,
          static_cast<std::uint8_t>(p.hdr.tclass),
          static_cast<std::uint32_t>(p.size()), p.t_created.ps(), now.ps(),
          slack.ps(), 0});
    } else {
      relay_primary_->on_packet_delivered(p, now, slack);
    }
    return;
  }
  record_packet_delivered(p.hdr.tclass, static_cast<std::uint32_t>(p.size()),
                          p.t_created, now, slack);
}

void MetricsCollector::record_packet_delivered(TrafficClass tclass,
                                               std::uint32_t size,
                                               TimePoint created, TimePoint now,
                                               Duration slack) {
  if (!in_window(created)) return;
  const auto c = static_cast<std::size_t>(tclass);
  pkt_latency_[c].add((now - created).us());
  bytes_delivered_[c] += size;
  slack_us_[c].add(slack.us());
  if (slack < Duration::zero()) {
    ++deadline_misses_[c];
  } else {
    goodput_bytes_[c] += size;
  }
  if (PhaseStore* ph = phase_of(created)) {
    ph->pkt_latency[c].add((now - created).us());
    ph->bytes_delivered[c] += size;
    ph->slack_us[c].add(slack.us());
    if (slack < Duration::zero()) {
      ++ph->deadline_misses[c];
    } else {
      ph->goodput_bytes[c] += size;
    }
  }
}

void MetricsCollector::on_packet_expired(const Packet& p) {
  if (relay_primary_ != nullptr) {
    if (*relay_window_) {
      relay_log_->effects.push_back(DeferredEffect{
          DeferredEffect::Kind::kPacketExpired,
          static_cast<std::uint8_t>(p.hdr.tclass),
          static_cast<std::uint32_t>(p.size()), p.t_created.ps(), 0, 0, 0});
    } else {
      relay_primary_->on_packet_expired(p);
    }
    return;
  }
  record_packet_expired(p.hdr.tclass, static_cast<std::uint32_t>(p.size()),
                        p.t_created);
}

void MetricsCollector::record_packet_expired(TrafficClass tclass,
                                             std::uint32_t size,
                                             TimePoint created) {
  if (!in_window(created)) return;
  const auto c = static_cast<std::size_t>(tclass);
  ++expired_packets_[c];
  expired_bytes_[c] += size;
  if (PhaseStore* ph = phase_of(created)) {
    ++ph->expired_packets[c];
    ph->expired_bytes[c] += size;
  }
}

void MetricsCollector::on_packet_dropped(TrafficClass tclass) {
  if (relay_primary_ != nullptr) {
    if (*relay_window_) {
      relay_log_->effects.push_back(DeferredEffect{
          DeferredEffect::Kind::kPacketDropped,
          static_cast<std::uint8_t>(tclass), 0, 0, 0, 0, 0});
    } else {
      relay_primary_->on_packet_dropped(tclass);
    }
    return;
  }
  ++dropped_[static_cast<std::size_t>(tclass)];
}

void MetricsCollector::on_message_delivered(TrafficClass tclass, TimePoint created,
                                            std::uint64_t bytes,
                                            TimePoint completed) {
  if (relay_primary_ != nullptr) {
    if (*relay_window_) {
      relay_log_->effects.push_back(DeferredEffect{
          DeferredEffect::Kind::kMessageDelivered,
          static_cast<std::uint8_t>(tclass), 0, created.ps(), completed.ps(),
          0, bytes});
    } else {
      relay_primary_->on_message_delivered(tclass, created, bytes, completed);
    }
    return;
  }
  static_cast<void>(bytes);
  if (!in_window(created)) return;
  const auto c = static_cast<std::size_t>(tclass);
  msg_latency_[c].add((completed - created).us());
  ++messages_[c];
  if (PhaseStore* ph = phase_of(created)) {
    ph->msg_latency[c].add((completed - created).us());
    ++ph->messages[c];
  }
}

void MetricsCollector::on_message_offered(TrafficClass tclass, std::uint64_t bytes,
                                          TimePoint now) {
  if (relay_primary_ != nullptr) {
    if (*relay_window_) {
      relay_log_->effects.push_back(DeferredEffect{
          DeferredEffect::Kind::kMessageOffered,
          static_cast<std::uint8_t>(tclass), 0, 0, now.ps(), 0, bytes});
    } else {
      relay_primary_->on_message_offered(tclass, bytes, now);
    }
    return;
  }
  if (!in_window(now)) return;
  bytes_offered_[static_cast<std::size_t>(tclass)] += bytes;
  if (PhaseStore* ph = phase_of(now)) {
    ph->bytes_offered[static_cast<std::size_t>(tclass)] += bytes;
  }
}

void MetricsCollector::set_relay(MetricsCollector* primary, ShardWindowLog* log,
                                 const bool* window_active) {
  DQOS_EXPECTS(primary != nullptr && log != nullptr && window_active != nullptr);
  DQOS_EXPECTS(primary != this);
  relay_primary_ = primary;
  relay_log_ = log;
  relay_window_ = window_active;
}

void MetricsCollector::apply(const DeferredEffect& e) {
  DQOS_ASSERT(relay_primary_ == nullptr);
  const auto tclass = static_cast<TrafficClass>(e.tclass);
  switch (e.kind) {
    case DeferredEffect::Kind::kPacketDelivered:
      record_packet_delivered(tclass, e.size, TimePoint::from_ps(e.t_created_ps),
                              TimePoint::from_ps(e.t_now_ps),
                              Duration::picoseconds(e.slack_ps));
      break;
    case DeferredEffect::Kind::kPacketExpired:
      record_packet_expired(tclass, e.size, TimePoint::from_ps(e.t_created_ps));
      break;
    case DeferredEffect::Kind::kPacketDropped:
      ++dropped_[static_cast<std::size_t>(tclass)];
      break;
    case DeferredEffect::Kind::kMessageDelivered:
      on_message_delivered(tclass, TimePoint::from_ps(e.t_created_ps), e.id,
                           TimePoint::from_ps(e.t_now_ps));
      break;
    case DeferredEffect::Kind::kMessageOffered:
      on_message_offered(tclass, e.id, TimePoint::from_ps(e.t_now_ps));
      break;
    case DeferredEffect::Kind::kFlowAborted:
      // Routed by the engine's effect sink to the network layer, never here.
      DQOS_ASSERT(false);
      break;
  }
}

ClassReport MetricsCollector::report(TrafficClass tc) const {
  const auto c = static_cast<std::size_t>(tc);
  ClassReport r;
  r.tclass = tc;
  r.packets = pkt_latency_[c].count();
  r.messages = messages_[c];
  const double window_sec = (end_ - start_).sec();
  DQOS_ASSERT(window_sec > 0.0);
  r.throughput_bytes_per_sec = static_cast<double>(bytes_delivered_[c]) / window_sec;
  r.offered_bytes_per_sec = static_cast<double>(bytes_offered_[c]) / window_sec;
  r.avg_packet_latency_us = pkt_latency_[c].mean();
  r.max_packet_latency_us = pkt_latency_[c].max();
  r.jitter_us = pkt_latency_[c].stddev();
  r.p99_packet_latency_us = pkt_latency_[c].p99();
  r.p999_packet_latency_us = pkt_latency_[c].p999();
  r.avg_message_latency_us = msg_latency_[c].mean();
  r.max_message_latency_us = msg_latency_[c].max();
  r.p99_message_latency_us = msg_latency_[c].p99();
  r.avg_slack_us = slack_us_[c].mean();
  r.dropped_packets = dropped_[c];
  r.deadline_miss_fraction =
      r.packets ? static_cast<double>(deadline_misses_[c]) /
                      static_cast<double>(r.packets)
                : 0.0;
  r.expired_packets = expired_packets_[c];
  r.expired_bytes = expired_bytes_[c];
  r.goodput_bytes_per_sec = static_cast<double>(goodput_bytes_[c]) / window_sec;
  const std::uint64_t decided = r.packets + r.expired_packets;
  r.deadline_miss_rate =
      decided ? static_cast<double>(deadline_misses_[c] + r.expired_packets) /
                    static_cast<double>(decided)
              : 0.0;
  return r;
}

ClassReport MetricsCollector::phase_report(std::size_t phase,
                                           TrafficClass tc) const {
  DQOS_EXPECTS(phase < phases_.size());
  const PhaseStore& ph = phases_[phase];
  const auto c = static_cast<std::size_t>(tc);
  ClassReport r;
  r.tclass = tc;
  r.packets = ph.pkt_latency[c].count();
  r.messages = ph.messages[c];
  const double window_sec = (ph.end - ph.start).sec();
  DQOS_ASSERT(window_sec > 0.0);
  r.throughput_bytes_per_sec =
      static_cast<double>(ph.bytes_delivered[c]) / window_sec;
  r.offered_bytes_per_sec =
      static_cast<double>(ph.bytes_offered[c]) / window_sec;
  r.avg_packet_latency_us = ph.pkt_latency[c].mean();
  r.max_packet_latency_us = ph.pkt_latency[c].max();
  r.jitter_us = ph.pkt_latency[c].stddev();
  r.p99_packet_latency_us = ph.pkt_latency[c].p99();
  r.p999_packet_latency_us = ph.pkt_latency[c].p999();
  r.avg_message_latency_us = ph.msg_latency[c].mean();
  r.max_message_latency_us = ph.msg_latency[c].max();
  r.p99_message_latency_us = ph.msg_latency[c].p99();
  r.avg_slack_us = ph.slack_us[c].mean();
  // dropped_packets deliberately stays 0: the drop hook has no creation
  // timestamp to attribute a drop to a phase (whole-run report has them).
  r.deadline_miss_fraction =
      r.packets ? static_cast<double>(ph.deadline_misses[c]) /
                      static_cast<double>(r.packets)
                : 0.0;
  r.expired_packets = ph.expired_packets[c];
  r.expired_bytes = ph.expired_bytes[c];
  r.goodput_bytes_per_sec =
      static_cast<double>(ph.goodput_bytes[c]) / window_sec;
  const std::uint64_t decided = r.packets + r.expired_packets;
  r.deadline_miss_rate =
      decided ? static_cast<double>(ph.deadline_misses[c] + r.expired_packets) /
                    static_cast<double>(decided)
              : 0.0;
  return r;
}

}  // namespace dqos
