#include "stats/metrics.hpp"

#include "util/contracts.hpp"

namespace dqos {

MetricsCollector::MetricsCollector() = default;

void MetricsCollector::set_window(TimePoint start, TimePoint end) {
  DQOS_EXPECTS(start < end);
  start_ = start;
  end_ = end;
}

void MetricsCollector::reserve_samples(std::size_t packets_per_class,
                                       std::size_t messages_per_class) {
  for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
    pkt_latency_[c].reserve(packets_per_class);
    msg_latency_[c].reserve(messages_per_class);
  }
}

void MetricsCollector::on_packet_delivered(const Packet& p, TimePoint now,
                                           Duration slack) {
  if (!in_window(p.t_created)) return;
  const auto c = static_cast<std::size_t>(p.hdr.tclass);
  pkt_latency_[c].add((now - p.t_created).us());
  bytes_delivered_[c] += p.size();
  slack_us_[c].add(slack.us());
  if (slack < Duration::zero()) ++deadline_misses_[c];
}

void MetricsCollector::on_message_delivered(TrafficClass tclass, TimePoint created,
                                            std::uint64_t /*bytes*/,
                                            TimePoint completed) {
  if (!in_window(created)) return;
  const auto c = static_cast<std::size_t>(tclass);
  msg_latency_[c].add((completed - created).us());
  ++messages_[c];
}

void MetricsCollector::on_message_offered(TrafficClass tclass, std::uint64_t bytes,
                                          TimePoint now) {
  if (!in_window(now)) return;
  bytes_offered_[static_cast<std::size_t>(tclass)] += bytes;
}

ClassReport MetricsCollector::report(TrafficClass tc) const {
  const auto c = static_cast<std::size_t>(tc);
  ClassReport r;
  r.tclass = tc;
  r.packets = pkt_latency_[c].count();
  r.messages = messages_[c];
  const double window_sec = (end_ - start_).sec();
  DQOS_ASSERT(window_sec > 0.0);
  r.throughput_bytes_per_sec = static_cast<double>(bytes_delivered_[c]) / window_sec;
  r.offered_bytes_per_sec = static_cast<double>(bytes_offered_[c]) / window_sec;
  r.avg_packet_latency_us = pkt_latency_[c].mean();
  r.max_packet_latency_us = pkt_latency_[c].max();
  r.jitter_us = pkt_latency_[c].stddev();
  r.p99_packet_latency_us = pkt_latency_[c].p99();
  r.avg_message_latency_us = msg_latency_[c].mean();
  r.max_message_latency_us = msg_latency_[c].max();
  r.p99_message_latency_us = msg_latency_[c].p99();
  r.avg_slack_us = slack_us_[c].mean();
  r.dropped_packets = dropped_[c];
  r.deadline_miss_fraction =
      r.packets ? static_cast<double>(deadline_misses_[c]) /
                      static_cast<double>(r.packets)
                : 0.0;
  return r;
}

}  // namespace dqos
