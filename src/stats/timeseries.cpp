#include "stats/timeseries.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace dqos {

TimeSeries::TimeSeries(TimePoint start, Duration bin_width, std::size_t max_bins)
    : start_(start), bin_width_(bin_width), sums_(max_bins, 0.0) {
  DQOS_EXPECTS(bin_width > Duration::zero());
  DQOS_EXPECTS(max_bins > 0);
}

void TimeSeries::add(TimePoint t, double value) {
  if (t < start_) {
    ++clipped_;
    return;
  }
  const auto bin = static_cast<std::size_t>((t - start_) / bin_width_);
  if (bin >= sums_.size()) {
    ++clipped_;
    return;
  }
  sums_[bin] += value;
}

StreamingStats TimeSeries::bin_stats(std::size_t first_bin,
                                     std::size_t last_bin) const {
  StreamingStats s;
  const std::size_t end = std::min(last_bin, sums_.size());
  for (std::size_t i = first_bin; i < end; ++i) s.add(sums_[i]);
  return s;
}

double TimeSeries::burstiness(std::size_t first_bin, std::size_t last_bin) const {
  const StreamingStats s = bin_stats(first_bin, last_bin);
  return s.mean() != 0.0 ? s.stddev() / s.mean() : 0.0;
}

}  // namespace dqos
