/// \file metrics.hpp
/// Network-wide performance metrics, collected with the global observer
/// clock (never visible to any scheduling decision).
///
/// The paper's §5 indices per traffic class:
///   - throughput        — delivered bytes / measurement window,
///   - latency           — end-to-end per packet (creation -> delivery),
///                         and per *message* for multimedia (whole video
///                         frames) and best-effort transfers,
///   - jitter            — standard deviation of latency,
///   - CDF of latency    — P[latency <= x] curves,
/// plus maximum latency ("the closing vertical line in the CDF figure").
///
/// Only traffic *created inside* the measurement window is counted, so
/// warm-up transients and drain-phase tails don't bias the numbers.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "proto/packet.hpp"
#include "proto/types.hpp"
#include "sim/shard_link.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace dqos {

/// Aggregated per-class results, in convenient printable units.
struct ClassReport {
  TrafficClass tclass = TrafficClass::kControl;
  std::uint64_t packets = 0;
  std::uint64_t messages = 0;
  double throughput_bytes_per_sec = 0.0;
  double offered_bytes_per_sec = 0.0;  ///< injected into NIC queues
  double avg_packet_latency_us = 0.0;
  double max_packet_latency_us = 0.0;
  double jitter_us = 0.0;  ///< stddev of packet latency
  double p99_packet_latency_us = 0.0;
  double p999_packet_latency_us = 0.0;
  double avg_message_latency_us = 0.0;
  double max_message_latency_us = 0.0;
  double p99_message_latency_us = 0.0;
  /// EDF view: fraction of packets delivered past their deadline tag, and
  /// the mean remaining budget (us; negative = late on average).
  double deadline_miss_fraction = 0.0;
  double avg_slack_us = 0.0;
  /// Packets shed inside the fabric (failed-link drops; whole run, since
  /// faults strike outside the measurement window too). Zero without fault
  /// injection: credit flow control never drops.
  std::uint64_t dropped_packets = 0;
  // --- overload SLO view (EXPERIMENTS.md O1) ------------------------------
  /// Packets dropped already-late at the source NIC (Host expiry_drop).
  std::uint64_t expired_packets = 0;
  std::uint64_t expired_bytes = 0;
  /// Delivered bytes that arrived *before* their deadline (slack >= 0) over
  /// the window: throughput that was actually worth delivering.
  double goodput_bytes_per_sec = 0.0;
  /// The SLO miss rate: packets that failed their deadline either way —
  /// delivered late or expired unsent — over all deadline decisions.
  double deadline_miss_rate = 0.0;
};

class MetricsCollector {
 public:
  MetricsCollector();

  /// Only samples with creation time in [start, end) are recorded.
  void set_window(TimePoint start, TimePoint end);

  /// Pre-sizes the per-class latency sample stores from config-derived
  /// traffic estimates so the measurement phase never reallocates a
  /// multi-megabyte vector mid-run (the growth copy used to show up as a
  /// periodic latency spike in event-rate profiles). Over-estimates cost
  /// only address space: SampleSet clamps at its reservoir cap.
  void reserve_samples(std::size_t packets_per_class,
                       std::size_t messages_per_class);
  [[nodiscard]] TimePoint window_start() const { return start_; }
  [[nodiscard]] TimePoint window_end() const { return end_; }

  /// Arms per-phase sub-windows (scenario engine): `starts` are absolute
  /// phase boundaries, sorted ascending; the first must equal the window
  /// start and the last must precede the window end (phase i spans
  /// [starts[i], starts[i+1]), the final phase runs to the window end).
  /// Call after set_window and before traffic flows. Single-phase runs
  /// never call this, so the per-sample hooks stay branch-cheap.
  void set_phase_starts(std::vector<TimePoint> starts);
  [[nodiscard]] std::size_t num_phases() const { return phases_.size(); }
  /// Per-phase analogue of report(): same indices over the phase's
  /// sub-window. dropped_packets stays 0 per phase — the switch drop hook
  /// carries no creation timestamp to attribute a drop to a phase; use
  /// the whole-run report for drops.
  [[nodiscard]] ClassReport phase_report(std::size_t phase, TrafficClass c) const;

  /// Hooks — wire these to the Hosts' callbacks. `slack` is the remaining
  /// time-to-deadline at delivery (negative = missed).
  void on_packet_delivered(const Packet& p, TimePoint now,
                           Duration slack = Duration::zero());
  void on_message_delivered(TrafficClass tclass, TimePoint created,
                            std::uint64_t bytes, TimePoint completed);
  /// Offered load accounting (called at submission).
  void on_message_offered(TrafficClass tclass, std::uint64_t bytes, TimePoint now);
  /// A switch shed a packet (failed link). Counted over the whole run.
  void on_packet_dropped(TrafficClass tclass);
  /// A source NIC dropped a packet already past its deadline (expiry_drop).
  /// Unlike fabric drops the packet is at hand, so expiry is attributed to
  /// the phase that created it.
  void on_packet_expired(const Packet& p);

  // --- sharded execution relay (DESIGN.md §12) ---------------------------
  /// Turns this instance into a per-shard relay for `primary`: while
  /// `*window_active` the hooks append DeferredEffect records to `log`
  /// instead of touching any accumulator (the engine replays them on the
  /// primary, in merged global fire order, at the window barrier); outside
  /// windows they forward to the primary directly. The relay itself holds
  /// no samples. Window filtering happens at replay/forward time on the
  /// primary — every record carries its own timestamps, so the outcome is
  /// bit-identical to the serial call sequence.
  void set_relay(MetricsCollector* primary, ShardWindowLog* log,
                 const bool* window_active);
  /// Replays one deferred record on this (primary) collector.
  void apply(const DeferredEffect& e);

  [[nodiscard]] ClassReport report(TrafficClass c) const;

  /// Raw sample access for CDF curves.
  [[nodiscard]] const SampleSet& packet_latency(TrafficClass c) const {
    return pkt_latency_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const SampleSet& message_latency(TrafficClass c) const {
    return msg_latency_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t delivered_bytes(TrafficClass c) const {
    return bytes_delivered_[static_cast<std::size_t>(c)];
  }

 private:
  /// One phase's sub-window accumulators (mirrors the aggregate stores;
  /// phases add *in addition to* the aggregates, never instead).
  struct PhaseStore {
    TimePoint start;
    TimePoint end;
    std::array<SampleSet, kNumTrafficClasses> pkt_latency;
    std::array<SampleSet, kNumTrafficClasses> msg_latency;
    std::array<std::uint64_t, kNumTrafficClasses> bytes_delivered{};
    std::array<std::uint64_t, kNumTrafficClasses> bytes_offered{};
    std::array<std::uint64_t, kNumTrafficClasses> messages{};
    std::array<StreamingStats, kNumTrafficClasses> slack_us{};
    std::array<std::uint64_t, kNumTrafficClasses> deadline_misses{};
    std::array<std::uint64_t, kNumTrafficClasses> expired_packets{};
    std::array<std::uint64_t, kNumTrafficClasses> expired_bytes{};
    std::array<std::uint64_t, kNumTrafficClasses> goodput_bytes{};
  };

  [[nodiscard]] bool in_window(TimePoint created) const {
    return created >= start_ && created < end_;
  }
  /// Phase containing `t` (caller guarantees t is inside the window);
  /// null when no phases are armed.
  [[nodiscard]] PhaseStore* phase_of(TimePoint t) {
    if (phases_.empty()) return nullptr;
    std::size_t i = phases_.size() - 1;
    while (i > 0 && t < phases_[i].start) --i;
    return &phases_[i];
  }

  /// Shared accumulator bodies (primary-side): the public hooks and the
  /// replay path both land here.
  void record_packet_delivered(TrafficClass tclass, std::uint32_t size,
                               TimePoint created, TimePoint now,
                               Duration slack);
  void record_packet_expired(TrafficClass tclass, std::uint32_t size,
                             TimePoint created);

  TimePoint start_ = TimePoint::zero();
  TimePoint end_ = TimePoint::max();
  // relay wiring (null for a normal collector)
  MetricsCollector* relay_primary_ = nullptr;
  ShardWindowLog* relay_log_ = nullptr;
  const bool* relay_window_ = nullptr;
  std::vector<PhaseStore> phases_;  ///< empty unless set_phase_starts ran
  std::array<SampleSet, kNumTrafficClasses> pkt_latency_;   // microseconds
  std::array<SampleSet, kNumTrafficClasses> msg_latency_;   // microseconds
  std::array<std::uint64_t, kNumTrafficClasses> bytes_delivered_{};
  std::array<std::uint64_t, kNumTrafficClasses> bytes_offered_{};
  std::array<std::uint64_t, kNumTrafficClasses> messages_{};
  std::array<StreamingStats, kNumTrafficClasses> slack_us_{};
  std::array<std::uint64_t, kNumTrafficClasses> deadline_misses_{};
  std::array<std::uint64_t, kNumTrafficClasses> dropped_{};
  std::array<std::uint64_t, kNumTrafficClasses> expired_packets_{};
  std::array<std::uint64_t, kNumTrafficClasses> expired_bytes_{};
  std::array<std::uint64_t, kNumTrafficClasses> goodput_bytes_{};
};

}  // namespace dqos
