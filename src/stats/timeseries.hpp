/// \file timeseries.hpp
/// Fixed-bin time series for occupancy and burstiness probes.
///
/// The eligible-time ablation (A2) needs to *see* injection bursts, not
/// just their downstream symptoms: a TimeSeries accumulates a quantity
/// (bytes injected, packets queued, link busy time) into fixed time bins
/// and reports per-bin statistics — in particular the coefficient of
/// variation across bins, the standard burstiness index.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace dqos {

class TimeSeries {
 public:
  /// Bins cover [start, start + bin_width * max_bins); samples outside are
  /// dropped (counted as `clipped`).
  TimeSeries(TimePoint start, Duration bin_width, std::size_t max_bins);

  /// Accumulates `value` into the bin containing `t`.
  void add(TimePoint t, double value);

  [[nodiscard]] std::size_t bins() const { return sums_.size(); }
  [[nodiscard]] double bin_sum(std::size_t i) const { return sums_.at(i); }
  [[nodiscard]] TimePoint bin_start(std::size_t i) const {
    return start_ + bin_width_ * static_cast<std::int64_t>(i);
  }
  [[nodiscard]] Duration bin_width() const { return bin_width_; }
  [[nodiscard]] std::uint64_t clipped() const { return clipped_; }

  /// Statistics over the per-bin sums, restricted to [first_bin, last_bin)
  /// so callers can skip warm-up bins. Defaults to all bins.
  [[nodiscard]] StreamingStats bin_stats(std::size_t first_bin = 0,
                                         std::size_t last_bin = ~std::size_t{0}) const;

  /// Coefficient of variation of the per-bin sums — the burstiness index
  /// (0 = perfectly smooth). Zero-mean series report 0.
  [[nodiscard]] double burstiness(std::size_t first_bin = 0,
                                  std::size_t last_bin = ~std::size_t{0}) const;

 private:
  TimePoint start_;
  Duration bin_width_;
  std::vector<double> sums_;
  std::uint64_t clipped_ = 0;
};

}  // namespace dqos
