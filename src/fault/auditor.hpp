/// \file auditor.hpp
/// Runtime invariant auditor: cross-checks the conservation laws the whole
/// simulator is built on, at configurable epochs on the event calendar.
///
/// Three ledgers are audited, each against an independent source of truth:
///
///   1. *Credit conservation* (per channel, per VC): credits held by the
///      sender + bytes serialized onto the wire + credit symbols on the
///      reverse wire + bytes queued downstream must equal the configured
///      buffer capacity — exactly, for an up channel that has never dropped
///      a packet or lost a credit symbol. Channels touched by faults may
///      run a *deficit* (capacity minus the sum is positive: bytes
///      genuinely lost on a dead wire) but never a surplus.
///
///   2. *Packet custody* (pool census): every packet the pool has handed
///      out and not yet taken back must be accounted for in exactly one
///      place — a host NIC queue, a switch buffer, mid-crossbar, or on a
///      wire. Pool outstanding == allocated − recycled, and equals the sum
///      over all registered custody points.
///
///   3. *Admission ledger*: the incrementally-maintained per-link
///      reservation table must match what re-summing every admitted flow
///      record produces (AdmissionController::audit_ledger).
///
/// A violated invariant throws AuditError (a DqosError, like RunError and
/// ConfigError) carrying a full state dump; the simulation stops at the
/// offending epoch instead of silently corrupting results. Auditing
/// schedules calendar events, so it is strictly opt-in
/// (FaultConfig::audit_epoch > 0) and excluded from golden-hash runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proto/packet_pool.hpp"
#include "qos/admission.hpp"
#include "host/host.hpp"
#include "sim/simulator.hpp"
#include "switchfab/channel.hpp"
#include "switchfab/switch.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"

namespace dqos {

/// A conservation invariant did not hold at an audit epoch. `what()` leads
/// with the violated law and the audit site (file:line of the check);
/// `dump()` carries the full custody/credit census for post-mortems.
class AuditError : public DqosError {
 public:
  AuditError(const std::string& what, std::string dump)
      : DqosError(what), dump_(std::move(dump)) {}
  [[nodiscard]] const std::string& dump() const { return dump_; }

 private:
  std::string dump_;
};

class InvariantAuditor {
 public:
  InvariantAuditor(Simulator& sim, const PacketPool& pool);

  /// --- wiring (done once, before arm()) -----------------------------------
  /// Registers an additional packet pool (sharded runs keep one per shard);
  /// the custody census is checked against the sum over all pools.
  void register_pool(const PacketPool* pool);
  /// Registers the channel carrying the directed link departing `from`.
  void register_channel(const Endpoint& from, const Channel* ch);
  void register_switch(const Switch* sw);
  void register_host(const Host* host);
  /// Optional: without an admission controller invariant 3 is skipped.
  void set_admission(const AdmissionController* adm) { admission_ = adm; }

  /// Arms the periodic audit: every `epoch` until `horizon`, all three
  /// invariants are checked; the first violation throws AuditError out of
  /// the event loop. Self-rescheduling, bounded so the calendar can drain.
  void arm(Duration epoch, TimePoint horizon);

  /// One immediate audit pass (phase transitions, teardown, tests).
  /// `context` labels the check site in any thrown AuditError.
  void audit_now(const std::string& context);

  [[nodiscard]] std::uint64_t audits_passed() const { return audits_passed_; }

 private:
  void epoch_check();
  /// Each returns "" when the invariant holds, else a one-line diagnosis.
  [[nodiscard]] std::string check_credits() const;
  [[nodiscard]] std::string check_packet_custody() const;
  [[nodiscard]] std::string check_admission() const;
  /// Full census, attached to every AuditError.
  [[nodiscard]] std::string dump_state() const;
  void sort_registries();

  Simulator& sim_;
  std::vector<const PacketPool*> pools_;
  const AdmissionController* admission_ = nullptr;
  std::vector<std::pair<std::uint64_t, const Channel*>> channels_;  ///< keyed
  std::vector<const Switch*> switches_;
  std::vector<const Host*> hosts_;
  bool sorted_ = false;
  Duration epoch_ = Duration::zero();
  TimePoint horizon_ = TimePoint::zero();
  std::uint64_t audits_passed_ = 0;
};

}  // namespace dqos
