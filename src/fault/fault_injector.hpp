/// \file fault_injector.hpp
/// Deterministic fault injection driven by the simulation calendar.
///
/// Faults come in two flavours:
///   - *scripted*: tests pin an exact fault at an exact instant
///     (fail_link_at, lose_credits_at, ...) for reproducible scenarios;
///   - *random*: Poisson processes over the fabric, drawn from a dedicated
///     seeded RNG stream (FaultConfig::seed) so fault sequences are
///     identical across scheduler/architecture ablations.
///
/// Link failures take down *both directions* of the physical link (cable
/// model). Transient failures stall traffic (senders hold, credits freeze)
/// and repair after an outage drawn from an exponential distribution;
/// permanent failures additionally flush the queues feeding the dead link,
/// mark it failed at the admission controller, and trigger re-routing of
/// every admitted flow whose fixed path crossed it (shedding the ones that
/// no longer fit — fixed routing means in-flight/queued packets of shed
/// flows are dropped and accounted, never silently lost).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fault/fault_config.hpp"
#include "qos/admission.hpp"
#include "host/host.hpp"
#include "sim/simulator.hpp"
#include "switchfab/channel.hpp"
#include "switchfab/switch.hpp"
#include "topo/topology.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dqos {

struct FaultStats {
  std::uint64_t link_failures = 0;
  std::uint64_t permanent_link_failures = 0;
  std::uint64_t link_repairs = 0;
  std::uint64_t credit_loss_events = 0;
  std::uint64_t credit_bytes_lost = 0;
  std::uint64_t ttd_corruptions = 0;
  std::uint64_t clock_drift_events = 0;
  /// Outage-to-repair times (us) of transient link failures, streamed —
  /// bench_fault_recovery reports recovery percentiles from these P²
  /// estimators instead of storing per-event samples.
  StreamingStats recovery_us;
  P2Quantile recovery_p50{0.5};
  P2Quantile recovery_p99{0.99};
};

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, const Topology& topo, const FaultConfig& cfg);

  /// --- wiring (done once, before start()) ---------------------------------
  /// Registers the channel carrying the directed link departing (from).
  void register_channel(const Endpoint& from, Channel* ch);
  void register_switch(Switch* sw);
  void register_host(Host* host);
  /// Optional: without an admission controller permanent failures only
  /// drop (no re-routing).
  void set_admission(AdmissionController* adm) { admission_ = adm; }
  void set_tracer(PacketTracer* tracer) { tracer_ = tracer; }
  /// Observer fired for every flow the fault path displaced — rerouted
  /// (entry.rerouted) or shed. The backpressure layer (RunController) uses
  /// shed notifications to queue deterministic re-admission retries.
  using FlowDisplacedFn = std::function<void(const AdmissionController::Reroute&)>;
  void set_flow_displaced(FlowDisplacedFn fn) { on_displaced_ = std::move(fn); }

  /// --- scripted faults ----------------------------------------------------
  /// Takes the physical link through (link) down at `when`; transient
  /// failures repair after `outage`.
  void fail_link_at(TimePoint when, const Endpoint& link, Duration outage,
                    bool permanent = false);
  /// Destroys `bytes` of sender-side credit on the directed link at `when`.
  void lose_credits_at(TimePoint when, const Endpoint& link, VcId vc,
                       std::uint32_t bytes);
  /// Adds `delta` to the TTD header of the next packet sent on the link.
  void corrupt_ttd_at(TimePoint when, const Endpoint& link, Duration delta);
  /// Re-skews a host's local clock to `offset` at `when`.
  void drift_clock_at(TimePoint when, NodeId host, Duration offset);

  /// Starts the random fault processes (no-op unless cfg.enabled and some
  /// rate is nonzero); events are generated up to `horizon`.
  void start(TimePoint horizon);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  [[nodiscard]] static std::uint64_t key(const Endpoint& e) {
    return (static_cast<std::uint64_t>(e.node) << 8) | e.port;
  }
  [[nodiscard]] Channel* channel_at(const Endpoint& e) const;

  void fail_link(const Endpoint& link, Duration outage, bool permanent);
  void repair_link(const Endpoint& fwd, const Endpoint& rev);
  /// Flush the switch output queues feeding the dead directed link.
  void flush_dead_output(const Endpoint& link);
  void apply_reroutes();

  /// Poisson processes: each schedules its own next arrival.
  void schedule_next_link_down(TimePoint horizon);
  void schedule_next_credit_loss(TimePoint horizon);
  void schedule_next_ttd_corrupt(TimePoint horizon);
  void schedule_next_clock_drift(TimePoint horizon);
  [[nodiscard]] Duration exp_interval(double rate_per_sec);

  Simulator& sim_;
  const Topology& topo_;
  FaultConfig cfg_;
  Rng rng_;
  AdmissionController* admission_ = nullptr;
  PacketTracer* tracer_ = nullptr;

  std::unordered_map<std::uint64_t, Channel*> channels_;
  std::unordered_map<NodeId, Switch*> switches_;
  std::unordered_map<NodeId, Host*> hosts_;
  /// Transient outages in progress: fail instant keyed by the forward link.
  std::unordered_map<std::uint64_t, TimePoint> down_since_;
  FlowDisplacedFn on_displaced_;
  /// Random-target pools, in deterministic (registration-independent) order.
  std::vector<Endpoint> fabric_links_;  ///< switch->switch directed links
  std::vector<Endpoint> all_links_;     ///< every registered directed link
  std::vector<NodeId> host_ids_;
  bool pools_sorted_ = false;
  void sort_pools();

  FaultStats stats_;
};

}  // namespace dqos
