#include "fault/watchdog.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace dqos {

DeadlockWatchdog::DeadlockWatchdog(Simulator& sim, Duration interval,
                                   std::uint32_t rounds)
    : sim_(sim), interval_(interval), rounds_(rounds) {
  DQOS_EXPECTS(interval > Duration::zero());
  DQOS_EXPECTS(rounds >= 1);
}

void DeadlockWatchdog::register_switch(Switch* sw) {
  DQOS_EXPECTS(sw != nullptr);
  switches_.push_back(sw);
}

void DeadlockWatchdog::register_host(Host* host) {
  DQOS_EXPECTS(host != nullptr);
  hosts_.push_back(host);
}

std::uint64_t DeadlockWatchdog::progress_signature() const {
  // Any packet movement — forward, delivery, injection — or accounted loss
  // (drop, shed) changes the signature. Frozen signature + queued traffic
  // means nothing is moving *and* nothing is being shed: a wedge.
  std::uint64_t sig = 0;
  for (const Switch* sw : switches_) {
    const SwitchCounters& c = sw->counters();
    for (const auto n : c.packets_forwarded) sig += n;
    sig += c.dropped_link_down;
  }
  for (const Host* h : hosts_) {
    sig += h->packets_injected() + h->packets_received() + h->shed_submissions();
  }
  return sig;
}

std::size_t DeadlockWatchdog::queued_packets() const {
  std::size_t n = 0;
  for (const Switch* sw : switches_) n += sw->packets_queued();
  for (const Host* h : hosts_) {
    // Eligible-queue packets are parked on purpose (future eligible time).
    n += h->queued_packets() - h->eligible_waiting();
  }
  return n;
}

void DeadlockWatchdog::arm(TimePoint horizon) {
  last_signature_ = progress_signature();
  stalled_rounds_ = 0;
  const TimePoint first = sim_.now() + interval_;
  if (first <= horizon) {
    sim_.schedule_at(first, [this, horizon] { tick(horizon); });
  }
}

void DeadlockWatchdog::tick(TimePoint horizon) {
  if (fired_) return;  // one post-mortem is enough
  const std::uint64_t sig = progress_signature();
  if (queued_packets() > 0 && sig == last_signature_) {
    if (++stalled_rounds_ >= rounds_) {
      fire("progress signature frozen with traffic queued");
      return;
    }
  } else {
    stalled_rounds_ = 0;
  }
  last_signature_ = sig;
  const TimePoint next = sim_.now() + interval_;
  if (next <= horizon) {
    sim_.schedule_at(next, [this, horizon] { tick(horizon); });
  }
}

void DeadlockWatchdog::final_check() {
  if (fired_) return;
  const std::size_t pending =
      pending_probe_ ? pending_probe_() : sim_.events_pending();
  if (queued_packets() > 0 && pending == 0) {
    fire("queued traffic with an empty event calendar");
  }
}

void DeadlockWatchdog::fire(const char* cause) {
  fired_ = true;
  std::ostringstream os;
  os << "DEADLOCK WATCHDOG at t=" << sim_.now().ps() << "ps: " << cause
     << " (stalled_rounds=" << stalled_rounds_
     << ", queued=" << queued_packets() << ")\n";
  for (const Switch* sw : switches_) {
    if (sw->packets_queued() > 0) os << sw->debug_dump();
  }
  for (const Host* h : hosts_) {
    const std::size_t q = h->queued_packets();
    if (q > 0) {
      os << "host " << h->id() << ": queued=" << q
         << " (eligible=" << h->eligible_waiting() << ")\n";
    }
  }
  report_ = os.str();
}

}  // namespace dqos
