#include "fault/auditor.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace dqos {

namespace {

/// Audit failures carry their check site: "file:line: <law>: <diagnosis>".
std::string at(const char* file, int line, const std::string& msg) {
  std::string f(file);
  const auto slash = f.find_last_of('/');
  if (slash != std::string::npos) f.erase(0, slash + 1);
  return f + ":" + std::to_string(line) + ": " + msg;
}

}  // namespace

InvariantAuditor::InvariantAuditor(Simulator& sim, const PacketPool& pool)
    : sim_(sim), pools_{&pool} {}

void InvariantAuditor::register_pool(const PacketPool* pool) {
  DQOS_EXPECTS(pool != nullptr);
  pools_.push_back(pool);
}

void InvariantAuditor::register_channel(const Endpoint& from, const Channel* ch) {
  DQOS_EXPECTS(ch != nullptr);
  channels_.emplace_back((static_cast<std::uint64_t>(from.node) << 8) | from.port,
                         ch);
  sorted_ = false;
}

void InvariantAuditor::register_switch(const Switch* sw) {
  DQOS_EXPECTS(sw != nullptr);
  switches_.push_back(sw);
  sorted_ = false;
}

void InvariantAuditor::register_host(const Host* host) {
  DQOS_EXPECTS(host != nullptr);
  hosts_.push_back(host);
  sorted_ = false;
}

void InvariantAuditor::sort_registries() {
  if (sorted_) return;
  // Deterministic check order, independent of registration order: the first
  // violation reported must be the same across identical runs.
  std::sort(channels_.begin(), channels_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(switches_.begin(), switches_.end(),
            [](const Switch* a, const Switch* b) { return a->id() < b->id(); });
  std::sort(hosts_.begin(), hosts_.end(),
            [](const Host* a, const Host* b) { return a->id() < b->id(); });
  sorted_ = true;
}

void InvariantAuditor::arm(Duration epoch, TimePoint horizon) {
  DQOS_EXPECTS(epoch > Duration::zero());
  epoch_ = epoch;
  horizon_ = horizon;
  if (sim_.now() + epoch <= horizon) {
    sim_.schedule_after(epoch, [this] { epoch_check(); });
  }
}

void InvariantAuditor::epoch_check() {
  audit_now("epoch " + std::to_string(audits_passed_));
  if (sim_.now() + epoch_ <= horizon_) {
    sim_.schedule_after(epoch_, [this] { epoch_check(); });
  }
}

void InvariantAuditor::audit_now(const std::string& context) {
  sort_registries();
  std::string problem = check_credits();
  if (problem.empty()) problem = check_packet_custody();
  if (problem.empty()) problem = check_admission();
  if (!problem.empty()) {
    throw AuditError("audit failed (" + context + ", t=" +
                         std::to_string(sim_.now().us()) + "us): " + problem,
                     dump_state());
  }
  ++audits_passed_;
}

std::string InvariantAuditor::check_credits() const {
  for (const auto& [key, ch] : channels_) {
    const auto node = static_cast<NodeId>(key >> 8);
    const auto port = static_cast<PortId>(key & 0xff);
    for (VcId vc = 0; vc < ch->num_vcs(); ++vc) {
      const std::int64_t held = ch->credits(vc);
      const std::int64_t wire = ch->in_flight_bytes(vc);
      const std::int64_t back = ch->credits_in_flight(vc);
      const auto occ = static_cast<std::int64_t>(ch->downstream_occupancy(vc));
      const std::int64_t deficit =
          static_cast<std::int64_t>(ch->credits_per_vc()) -
          (held + wire + back + occ);
      // A surplus means credits were invented from nothing: always a bug,
      // faulted or not.
      if (deficit < 0) {
        return at(__FILE__, __LINE__,
                  "credit conservation: link (" + std::to_string(node) + "," +
                      std::to_string(port) + ") vc" + std::to_string(vc) +
                      " holds a credit surplus of " + std::to_string(-deficit) +
                      " B (held " + std::to_string(held) + " + wire " +
                      std::to_string(wire) + " + returning " +
                      std::to_string(back) + " + queued " + std::to_string(occ) +
                      " > capacity " + std::to_string(ch->credits_per_vc()) + ")");
      }
      // A deficit is legitimate only on a channel faults have touched
      // (packets evaporated on a dead wire, credit symbols destroyed).
      const bool clean = ch->is_up() && ch->packets_dropped() == 0 &&
                         ch->credits_lost() == 0;
      if (clean && deficit != 0) {
        return at(__FILE__, __LINE__,
                  "credit conservation: link (" + std::to_string(node) + "," +
                      std::to_string(port) + ") vc" + std::to_string(vc) +
                      " leaks " + std::to_string(deficit) +
                      " B of credit with no fault to blame (held " +
                      std::to_string(held) + " + wire " + std::to_string(wire) +
                      " + returning " + std::to_string(back) + " + queued " +
                      std::to_string(occ) + " != capacity " +
                      std::to_string(ch->credits_per_vc()) + ")");
      }
    }
  }
  return "";
}

std::string InvariantAuditor::check_packet_custody() const {
  // Pool self-consistency: the counters are incremented/decremented in
  // lock-step, so a divergence means raw deleter bypass. Checked per pool
  // (sharded runs register one per shard), census against the sum.
  std::uint64_t outstanding = 0;
  for (const PacketPool* pool : pools_) {
    const std::uint64_t ledger =
        pool->allocated_total() - pool->recycled_total();
    if (ledger != pool->outstanding()) {
      return at(__FILE__, __LINE__,
                "packet custody: pool outstanding " +
                    std::to_string(pool->outstanding()) + " != allocated " +
                    std::to_string(pool->allocated_total()) + " - recycled " +
                    std::to_string(pool->recycled_total()));
    }
    outstanding += pool->outstanding();
  }
  // Census: every outstanding packet is in exactly one custody point.
  std::uint64_t census = 0;
  for (const Host* h : hosts_) census += h->queued_packets();
  for (const Switch* s : switches_) {
    census += s->packets_queued() + s->packets_in_transit();
  }
  for (const auto& [key, ch] : channels_) census += ch->packets_in_flight();
  if (census != outstanding) {
    return at(__FILE__, __LINE__,
              "packet custody: " + std::to_string(outstanding) +
                  " packets outstanding but custody census finds " +
                  std::to_string(census) +
                  " (host queues + switch buffers + crossbar + wires)");
  }
  return "";
}

std::string InvariantAuditor::check_admission() const {
  if (admission_ == nullptr) return "";
  std::string problem = admission_->audit_ledger();
  if (!problem.empty()) return at(__FILE__, __LINE__, problem);
  return "";
}

std::string InvariantAuditor::dump_state() const {
  std::ostringstream out;
  out << "audit state dump @" << sim_.now().us() << "us\n";
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    const PacketPool& pool = *pools_[i];
    out << "pool";
    if (i > 0) out << "[" << i << "]";
    out << ": outstanding=" << pool.outstanding()
        << " allocated=" << pool.allocated_total()
        << " recycled=" << pool.recycled_total()
        << " retired=" << pool.retired_total() << "\n";
  }
  for (const Host* h : hosts_) {
    out << "host " << h->id() << ": queued=" << h->queued_packets()
        << " injected=" << h->packets_injected()
        << " received=" << h->packets_received() << "\n";
  }
  for (const Switch* s : switches_) {
    out << "switch " << s->id() << ": queued=" << s->packets_queued()
        << " xbar=" << s->packets_in_transit() << "\n";
  }
  for (const auto& [key, ch] : channels_) {
    out << "link (" << (key >> 8) << "," << (key & 0xff) << "):"
        << (ch->is_up() ? "" : " DOWN") << " in_flight=" << ch->packets_in_flight()
        << " dropped=" << ch->packets_dropped()
        << " credits_lost=" << ch->credits_lost();
    for (VcId vc = 0; vc < ch->num_vcs(); ++vc) {
      out << " vc" << static_cast<int>(vc) << "={held=" << ch->credits(vc)
          << ",wire=" << ch->in_flight_bytes(vc)
          << ",returning=" << ch->credits_in_flight(vc)
          << ",queued=" << ch->downstream_occupancy(vc) << "}";
    }
    out << "\n";
  }
  if (admission_ != nullptr) {
    out << "admission: flows=" << admission_->admitted_flows()
        << " reserved=" << admission_->total_reserved_bytes_per_sec()
        << " B/s shed=" << admission_->flows_shed() << "\n";
  }
  return out.str();
}

}  // namespace dqos
