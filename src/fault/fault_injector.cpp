#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

FaultInjector::FaultInjector(Simulator& sim, const Topology& topo,
                             const FaultConfig& cfg)
    : sim_(sim), topo_(topo), cfg_(cfg), rng_(cfg.seed) {}

void FaultInjector::register_channel(const Endpoint& from, Channel* ch) {
  DQOS_EXPECTS(ch != nullptr);
  const bool inserted = channels_.emplace(key(from), ch).second;
  DQOS_EXPECTS(inserted);
  all_links_.push_back(from);
  const Endpoint to = topo_.peer(from.node, from.port);
  if (topo_.is_switch(from.node) && to.valid() && topo_.is_switch(to.node)) {
    fabric_links_.push_back(from);
  }
  pools_sorted_ = false;
}

void FaultInjector::register_switch(Switch* sw) {
  DQOS_EXPECTS(sw != nullptr);
  switches_.emplace(sw->id(), sw);
}

void FaultInjector::register_host(Host* host) {
  DQOS_EXPECTS(host != nullptr);
  hosts_.emplace(host->id(), host);
  host_ids_.push_back(host->id());
  pools_sorted_ = false;
}

Channel* FaultInjector::channel_at(const Endpoint& e) const {
  const auto it = channels_.find(key(e));
  return it == channels_.end() ? nullptr : it->second;
}

void FaultInjector::sort_pools() {
  if (pools_sorted_) return;
  const auto by_key = [](const Endpoint& a, const Endpoint& b) {
    return key(a) < key(b);
  };
  std::sort(fabric_links_.begin(), fabric_links_.end(), by_key);
  std::sort(all_links_.begin(), all_links_.end(), by_key);
  std::sort(host_ids_.begin(), host_ids_.end());
  pools_sorted_ = true;
}

/// ---- scripted faults -----------------------------------------------------

void FaultInjector::fail_link_at(TimePoint when, const Endpoint& link,
                                 Duration outage, bool permanent) {
  DQOS_EXPECTS(when >= sim_.now());
  sim_.schedule_at(when, [this, link, outage, permanent] {
    fail_link(link, outage, permanent);
  });
}

void FaultInjector::lose_credits_at(TimePoint when, const Endpoint& link, VcId vc,
                                    std::uint32_t bytes) {
  DQOS_EXPECTS(when >= sim_.now());
  sim_.schedule_at(when, [this, link, vc, bytes] {
    Channel* ch = channel_at(link);
    DQOS_EXPECTS(ch != nullptr);
    const std::uint32_t lost = ch->lose_credits(vc, bytes);
    ++stats_.credit_loss_events;
    stats_.credit_bytes_lost += lost;
  });
}

void FaultInjector::corrupt_ttd_at(TimePoint when, const Endpoint& link,
                                   Duration delta) {
  DQOS_EXPECTS(when >= sim_.now());
  sim_.schedule_at(when, [this, link, delta] {
    Channel* ch = channel_at(link);
    DQOS_EXPECTS(ch != nullptr);
    ch->corrupt_next_ttd(delta);
    ++stats_.ttd_corruptions;
  });
}

void FaultInjector::drift_clock_at(TimePoint when, NodeId host, Duration offset) {
  DQOS_EXPECTS(when >= sim_.now());
  sim_.schedule_at(when, [this, host, offset] {
    const auto it = hosts_.find(host);
    DQOS_EXPECTS(it != hosts_.end());
    it->second->set_clock_offset(offset);
    ++stats_.clock_drift_events;
  });
}

/// ---- link failure / repair -----------------------------------------------

void FaultInjector::fail_link(const Endpoint& link, Duration outage,
                              bool permanent) {
  Channel* fwd = channel_at(link);
  const Endpoint rev = topo_.peer(link.node, link.port);
  DQOS_EXPECTS(fwd != nullptr && rev.valid());
  Channel* bwd = channel_at(rev);
  DQOS_EXPECTS(bwd != nullptr);
  // A link already down cannot fail again (random processes may collide).
  if (!fwd->is_up() || !bwd->is_up()) return;

  fwd->fail(permanent);
  bwd->fail(permanent);
  ++stats_.link_failures;
  if (tracer_) {
    tracer_->record_link_event(sim_.now(), TraceEvent::kLinkDown, link.node, link.port);
    tracer_->record_link_event(sim_.now(), TraceEvent::kLinkDown, rev.node, rev.port);
  }

  if (permanent) {
    ++stats_.permanent_link_failures;
    // Queued traffic aimed at the dead cable has nowhere to go: shed it
    // (with upstream credits returned) before re-routing the survivors.
    flush_dead_output(link);
    flush_dead_output(rev);
    if (admission_ != nullptr) {
      admission_->mark_link_failed(link);
      admission_->mark_link_failed(rev);
      apply_reroutes();
    }
  } else {
    down_since_[key(link)] = sim_.now();
    sim_.schedule_after(outage, [this, link, rev] { repair_link(link, rev); });
  }
}

void FaultInjector::repair_link(const Endpoint& fwd_ep, const Endpoint& rev_ep) {
  Channel* fwd = channel_at(fwd_ep);
  Channel* bwd = channel_at(rev_ep);
  DQOS_ASSERT(fwd != nullptr && bwd != nullptr);
  // A scripted permanent failure may have landed during the outage.
  if (fwd->failed_permanently() || bwd->failed_permanently()) return;
  if (!fwd->is_up()) fwd->repair();
  if (!bwd->is_up()) bwd->repair();
  ++stats_.link_repairs;
  // Stream the outage duration into the recovery-time estimators.
  const auto dit = down_since_.find(key(fwd_ep));
  if (dit != down_since_.end()) {
    const double us = (sim_.now() - dit->second).us();
    stats_.recovery_us.add(us);
    stats_.recovery_p50.add(us);
    stats_.recovery_p99.add(us);
    down_since_.erase(dit);
  }
  if (tracer_) {
    tracer_->record_link_event(sim_.now(), TraceEvent::kLinkUp, fwd_ep.node,
                               fwd_ep.port);
    tracer_->record_link_event(sim_.now(), TraceEvent::kLinkUp, rev_ep.node,
                               rev_ep.port);
  }
}

void FaultInjector::flush_dead_output(const Endpoint& link) {
  if (!topo_.is_switch(link.node)) return;  // host NICs purge via close_flow
  const auto it = switches_.find(link.node);
  if (it == switches_.end()) return;
  it->second->flush_output(link.port);
}

void FaultInjector::apply_reroutes() {
  DQOS_ASSERT(admission_ != nullptr);
  for (const auto& r : admission_->reroute_around_failures()) {
    const auto it = hosts_.find(r.src);
    if (it != hosts_.end()) {  // source may not be simulated (unit tests)
      if (r.rerouted) {
        it->second->update_flow_route(r.flow, r.new_route, r.new_choice);
      } else {
        it->second->close_flow(r.flow);
      }
    }
    if (on_displaced_) on_displaced_(r);
  }
}

/// ---- random fault processes ----------------------------------------------

Duration FaultInjector::exp_interval(double rate_per_sec) {
  DQOS_ASSERT(rate_per_sec > 0.0);
  return Duration::from_seconds_double(-std::log(rng_.uniform_pos()) /
                                       rate_per_sec);
}

void FaultInjector::start(TimePoint horizon) {
  if (!cfg_.enabled || !cfg_.any_faults()) return;
  sort_pools();
  if (cfg_.link_down_per_sec > 0.0 && !fabric_links_.empty()) {
    schedule_next_link_down(horizon);
  }
  if (cfg_.credit_loss_per_sec > 0.0 && !all_links_.empty()) {
    schedule_next_credit_loss(horizon);
  }
  if (cfg_.ttd_corrupt_per_sec > 0.0 && !all_links_.empty()) {
    schedule_next_ttd_corrupt(horizon);
  }
  if (cfg_.clock_drift_per_sec > 0.0 && !host_ids_.empty()) {
    schedule_next_clock_drift(horizon);
  }
}

void FaultInjector::schedule_next_link_down(TimePoint horizon) {
  const TimePoint at = sim_.now() + exp_interval(cfg_.link_down_per_sec);
  if (at > horizon) return;
  sim_.schedule_at(at, [this, horizon] {
    const auto idx = rng_.uniform_int(0, fabric_links_.size() - 1);
    const Endpoint link = fabric_links_[idx];
    const bool permanent = rng_.chance(cfg_.link_permanent_fraction);
    const Duration outage = Duration::from_seconds_double(
        -std::log(rng_.uniform_pos()) * cfg_.link_outage_mean.sec());
    fail_link(link, outage, permanent);
    schedule_next_link_down(horizon);
  });
}

void FaultInjector::schedule_next_credit_loss(TimePoint horizon) {
  const TimePoint at = sim_.now() + exp_interval(cfg_.credit_loss_per_sec);
  if (at > horizon) return;
  sim_.schedule_at(at, [this, horizon] {
    const auto idx = rng_.uniform_int(0, all_links_.size() - 1);
    Channel* ch = channel_at(all_links_[idx]);
    const auto vc = static_cast<VcId>(rng_.uniform_int(0, ch->num_vcs() - 1));
    const std::uint32_t lost = ch->lose_credits(vc, cfg_.credit_loss_bytes);
    ++stats_.credit_loss_events;
    stats_.credit_bytes_lost += lost;
    schedule_next_credit_loss(horizon);
  });
}

void FaultInjector::schedule_next_ttd_corrupt(TimePoint horizon) {
  const TimePoint at = sim_.now() + exp_interval(cfg_.ttd_corrupt_per_sec);
  if (at > horizon) return;
  sim_.schedule_at(at, [this, horizon] {
    const auto idx = rng_.uniform_int(0, all_links_.size() - 1);
    const auto max_ps = static_cast<std::uint64_t>(cfg_.ttd_corrupt_max.ps());
    const auto raw = rng_.uniform_int(0, 2 * max_ps);
    const Duration delta =
        Duration::picoseconds(static_cast<std::int64_t>(raw) -
                              cfg_.ttd_corrupt_max.ps());
    channel_at(all_links_[idx])->corrupt_next_ttd(delta);
    ++stats_.ttd_corruptions;
    schedule_next_ttd_corrupt(horizon);
  });
}

void FaultInjector::schedule_next_clock_drift(TimePoint horizon) {
  const TimePoint at = sim_.now() + exp_interval(cfg_.clock_drift_per_sec);
  if (at > horizon) return;
  sim_.schedule_at(at, [this, horizon] {
    const auto idx = rng_.uniform_int(0, host_ids_.size() - 1);
    const auto max_ps = static_cast<std::uint64_t>(cfg_.clock_drift_max.ps());
    const auto raw = rng_.uniform_int(0, 2 * max_ps);
    const Duration offset =
        Duration::picoseconds(static_cast<std::int64_t>(raw) -
                              cfg_.clock_drift_max.ps());
    hosts_.at(host_ids_[idx])->set_clock_offset(offset);
    ++stats_.clock_drift_events;
    schedule_next_clock_drift(horizon);
  });
}

}  // namespace dqos
