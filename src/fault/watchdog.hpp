/// \file watchdog.hpp
/// Deadlock/livelock watchdog for fault runs.
///
/// Credit-based flow control plus fault injection can wedge: a lost credit
/// symbol or a link that fails while holding buffered traffic may leave
/// "queues non-empty but nothing moving". The watchdog samples a global
/// progress signature (total packets forwarded by switches + received and
/// injected by hosts) on a fixed cadence; if the signature freezes for N
/// consecutive samples while traffic is still queued, it fires: the run is
/// declared stuck and a per-switch credit/occupancy diagnostic report is
/// captured for the post-mortem.
///
/// Host packets waiting in the *eligible* queue are excluded from the
/// "queued" criterion — they are deliberately parked until their eligible
/// time and would otherwise read as a stall.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/host.hpp"
#include "sim/simulator.hpp"
#include "switchfab/switch.hpp"
#include "util/callback.hpp"

namespace dqos {

class DeadlockWatchdog {
 public:
  /// Fires after `rounds` consecutive samples (every `interval`) with
  /// queued traffic and a frozen progress signature.
  DeadlockWatchdog(Simulator& sim, Duration interval, std::uint32_t rounds);

  void register_switch(Switch* sw);
  void register_host(Host* host);

  /// Starts sampling; no events are scheduled past `horizon` (so the
  /// calendar can still drain and the run can end).
  void arm(TimePoint horizon);

  /// End-of-run check: with an empty calendar, queued traffic can never
  /// move again — that is a deadlock even if the cadence never caught it.
  /// Call after the simulator ran out of events (or hit its horizon).
  void final_check();

  /// Overrides where final_check reads "events still pending". Under the
  /// sharded engine (DESIGN.md §12) the watchdog's `sim_` is the control
  /// calendar, which is legitimately empty at end of run while data events
  /// still sit on shard calendars — the probe must span all of them.
  void set_pending_probe(Callback<std::size_t()> probe) {
    pending_probe_ = probe;
  }

  [[nodiscard]] bool fired() const { return fired_; }
  /// Per-switch credit/occupancy diagnostics captured when it fired.
  [[nodiscard]] const std::string& report() const { return report_; }

  /// Progress signature / queued census (exposed for tests).
  [[nodiscard]] std::uint64_t progress_signature() const;
  [[nodiscard]] std::size_t queued_packets() const;

 private:
  void tick(TimePoint horizon);
  void fire(const char* cause);

  Simulator& sim_;
  Duration interval_;
  std::uint32_t rounds_;
  Callback<std::size_t()> pending_probe_;
  std::vector<Switch*> switches_;
  std::vector<Host*> hosts_;

  std::uint64_t last_signature_ = 0;
  std::uint32_t stalled_rounds_ = 0;
  bool fired_ = false;
  std::string report_;
};

}  // namespace dqos
