/// \file fault_config.hpp
/// Knobs for the fault-injection subsystem (all off by default).
///
/// The QoS guarantees of the paper assume a lossless, fully-working fabric.
/// This subsystem stresses that assumption: links fail (transiently or for
/// good), credit symbols get lost on the wire, TTD headers get corrupted,
/// and host clocks drift — and the stack has to degrade *predictably*:
/// stall-and-resume for transient outages, reroute-or-shed with full
/// accounting for permanent ones, credit resync for lost symbols.
///
/// Determinism contract: with `enabled == false` and no scripted faults the
/// simulator must be bit-identical to a build without this subsystem — no
/// extra calendar events, no RNG draws, no behavioural branches taken.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace dqos {

struct FaultConfig {
  /// Master switch for *random* fault processes. Scripted faults
  /// (FaultInjector::fail_link_at etc.) work regardless.
  bool enabled = false;
  /// Seed for the dedicated fault RNG stream (independent of workload RNG,
  /// so the same traffic sees the same faults across scheduler ablations).
  std::uint64_t seed = 1;

  // --- random fault processes (Poisson, per simulated second) -------------
  double link_down_per_sec = 0.0;    ///< link failure rate (whole fabric)
  Duration link_outage_mean = Duration::microseconds(500);  ///< transient repair mean
  double link_permanent_fraction = 0.0;  ///< P[failure is permanent]
  double credit_loss_per_sec = 0.0;  ///< lost-credit-symbol events per second
  std::uint32_t credit_loss_bytes = 256;  ///< credits destroyed per event
  double ttd_corrupt_per_sec = 0.0;  ///< TTD header corruption events per second
  Duration ttd_corrupt_max = Duration::microseconds(50);  ///< |delta| bound
  double clock_drift_per_sec = 0.0;  ///< host clock re-skew events per second
  Duration clock_drift_max = Duration::microseconds(10);  ///< |offset| bound

  // --- recovery ------------------------------------------------------------
  /// Credit resync: a VC quiet for this long gets its sender-side credit
  /// counter re-derived from downstream occupancy (zero = resync off).
  Duration credit_resync_window = Duration::microseconds(200);
  /// End-to-end retry for control-class messages. The timeout must sit well
  /// above the healthy-network delivery latency (ms-scale under load) or
  /// every slow-but-successful message spawns a spurious duplicate.
  bool control_retry = true;
  Duration retry_timeout = Duration::milliseconds(10);
  std::uint32_t max_retries = 3;

  // --- deadlock watchdog ---------------------------------------------------
  /// Sampling cadence of the progress watchdog (zero = watchdog off).
  Duration watchdog_interval = Duration::milliseconds(1);
  /// Consecutive zero-progress samples (with traffic queued) before firing.
  std::uint32_t watchdog_rounds = 5;

  // --- invariant auditor ---------------------------------------------------
  /// Cadence of the runtime invariant auditor (fault/auditor.hpp): every
  /// epoch it walks the network asserting credit/packet/bandwidth
  /// conservation and throws AuditError with a dump on the first violation.
  /// Zero = auditor off (the default; auditing schedules calendar events,
  /// so it is excluded from the golden fire-order runs).
  Duration audit_epoch = Duration::zero();

  /// True if any random fault process has a nonzero rate.
  [[nodiscard]] bool any_faults() const {
    return link_down_per_sec > 0.0 || credit_loss_per_sec > 0.0 ||
           ttd_corrupt_per_sec > 0.0 || clock_drift_per_sec > 0.0;
  }
};

}  // namespace dqos
