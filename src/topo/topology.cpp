#include "topo/topology.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace dqos {

Topology::Topology(std::uint32_t hosts, std::uint32_t switches, std::size_t switch_ports)
    : num_hosts_(hosts), num_switches_(switches), switch_ports_(switch_ports) {
  DQOS_EXPECTS(hosts >= 2);
  DQOS_EXPECTS(switches >= 1);
  DQOS_EXPECTS(switch_ports >= 2 && switch_ports <= 255);
  adjacency_.assign(num_link_slots(), Endpoint{});
}

std::uint32_t Topology::switch_index(NodeId n) const {
  DQOS_EXPECTS(is_switch(n));
  return n - num_hosts_;
}

std::size_t Topology::num_ports(NodeId n) const {
  DQOS_EXPECTS(n < num_nodes());
  return is_host(n) ? 1 : switch_ports_;
}

Endpoint Topology::peer(NodeId n, PortId port) const {
  DQOS_EXPECTS(n < num_nodes());
  DQOS_EXPECTS(port < num_ports(n));
  return adjacency_[link_index(n, port)];
}

Endpoint Topology::link_endpoint(std::uint32_t slot) const {
  DQOS_EXPECTS(slot < num_link_slots());
  if (slot < num_hosts_) return Endpoint{slot, 0};
  const std::uint32_t rel = slot - num_hosts_;
  const auto ports = static_cast<std::uint32_t>(switch_ports_);
  return Endpoint{num_hosts_ + rel / ports, static_cast<PortId>(rel % ports)};
}

void Topology::connect(NodeId a, PortId ap, NodeId b, PortId bp) {
  DQOS_EXPECTS(a < num_nodes() && b < num_nodes() && a != b);
  DQOS_EXPECTS(ap < num_ports(a) && bp < num_ports(b));
  DQOS_EXPECTS(!adjacency_[link_index(a, ap)].valid() &&
               !adjacency_[link_index(b, bp)].valid());
  adjacency_[link_index(a, ap)] = Endpoint{b, bp};
  adjacency_[link_index(b, bp)] = Endpoint{a, ap};
}

void Topology::set_pods(std::uint32_t num_pods, std::vector<std::uint32_t> pods) {
  DQOS_EXPECTS(num_pods_ == 0 && pods_.empty());
  DQOS_EXPECTS(num_pods >= 1);
  DQOS_EXPECTS(pods.size() == num_nodes());
  for (const std::uint32_t p : pods) DQOS_EXPECTS(p < num_pods || p == kNoPod);
  num_pods_ = num_pods;
  pods_ = std::move(pods);
}

bool Topology::link_intra_pod(const Endpoint& e) const {
  return link_pod(e) != kNoPod;
}

std::uint32_t Topology::link_pod(const Endpoint& e) const {
  const std::uint32_t from = pod_of(e.node);
  if (from == kNoPod) return kNoPod;
  const Endpoint to = peer(e.node, e.port);
  if (!to.valid() || pod_of(to.node) != from) return kNoPod;
  return from;
}

std::vector<Endpoint> Topology::route_links(NodeId src, NodeId dst,
                                            std::size_t choice) const {
  std::vector<Endpoint> links;
  route_links_into(src, dst, choice, links);
  return links;
}

void Topology::route_links_into(NodeId src, NodeId dst, std::size_t choice,
                                std::vector<Endpoint>& out) const {
  DQOS_EXPECTS(is_host(src) && is_host(dst) && src != dst);
  const SourceRoute route = build_route(src, dst, choice);
  out.clear();
  out.reserve(route.length() + 1);
  out.push_back(Endpoint{src, 0});
  Endpoint at = host_attach(src);
  for (std::size_t h = 0; h < route.length(); ++h) {
    DQOS_ASSERT(is_switch(at.node));
    const PortId port = route.hop(h);
    out.push_back(Endpoint{at.node, port});
    at = peer(at.node, port);
    DQOS_ASSERT(at.valid());
  }
  DQOS_ASSERT(at.node == dst);
}

void Topology::validate() const {
  // Link symmetry.
  for (NodeId n = 0; n < num_nodes(); ++n) {
    for (PortId p = 0; p < num_ports(n); ++p) {
      const Endpoint e = peer(n, p);
      if (!e.valid()) continue;
      const Endpoint back = peer(e.node, e.port);
      DQOS_ASSERT(back.node == n && back.port == p);
    }
  }
  // Hosts wired.
  for (NodeId h = 0; h < num_hosts_; ++h) {
    DQOS_ASSERT(host_attach(h).valid());
    DQOS_ASSERT(is_switch(host_attach(h).node));
  }
  // Pod sanity: every host belongs to a pod when pods are declared, and
  // same-pod host pairs route without leaving the pod (spot-checked below
  // through link_pod on the sampled routes).
  if (num_pods_ > 0) {
    for (NodeId h = 0; h < num_hosts_; ++h) DQOS_ASSERT(pod_of(h) != kNoPod);
  }
  // Every route of every (sampled) pair terminates correctly (route_links
  // asserts it). Above the exhaustive cap, stride the pair space and the
  // choice space deterministically: the full product is O(hosts^2*routes).
  const std::uint32_t stride =
      num_hosts_ <= kValidateExhaustiveHosts
          ? 1
          : (num_hosts_ + kValidateExhaustiveHosts - 1) / kValidateExhaustiveHosts;
  std::vector<Endpoint> links;
  for (NodeId s = 0; s < num_hosts_; s += stride) {
    for (NodeId d = 0; d < num_hosts_; d += stride) {
      if (s == d) continue;
      const std::size_t routes = route_count(s, d);
      DQOS_ASSERT(routes >= 1);
      const std::size_t choice_step =
          stride == 1 ? 1 : std::max<std::size_t>(1, routes / 8);
      for (std::size_t c = 0; c < routes; c += choice_step) {
        route_links_into(s, d, c, links);
        if (num_pods_ > 0 && pod_of(s) != kNoPod && pod_of(s) == pod_of(d)) {
          for (const Endpoint& e : links) DQOS_ASSERT(link_pod(e) == pod_of(s));
        }
      }
    }
  }
}

}  // namespace dqos
