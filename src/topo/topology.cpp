#include "topo/topology.hpp"

#include "util/contracts.hpp"

namespace dqos {

Topology::Topology(std::uint32_t hosts, std::uint32_t switches, std::size_t switch_ports)
    : num_hosts_(hosts), num_switches_(switches), switch_ports_(switch_ports) {
  DQOS_EXPECTS(hosts >= 2);
  DQOS_EXPECTS(switches >= 1);
  DQOS_EXPECTS(switch_ports >= 2 && switch_ports <= 255);
  adjacency_.resize(num_nodes());
  for (NodeId n = 0; n < num_nodes(); ++n) {
    adjacency_[n].resize(is_host(n) ? 1 : switch_ports_);
  }
}

std::uint32_t Topology::switch_index(NodeId n) const {
  DQOS_EXPECTS(is_switch(n));
  return n - num_hosts_;
}

std::size_t Topology::num_ports(NodeId n) const {
  DQOS_EXPECTS(n < num_nodes());
  return adjacency_[n].size();
}

Endpoint Topology::peer(NodeId n, PortId port) const {
  DQOS_EXPECTS(n < num_nodes());
  DQOS_EXPECTS(port < adjacency_[n].size());
  return adjacency_[n][port];
}

void Topology::connect(NodeId a, PortId ap, NodeId b, PortId bp) {
  DQOS_EXPECTS(a < num_nodes() && b < num_nodes() && a != b);
  DQOS_EXPECTS(ap < adjacency_[a].size() && bp < adjacency_[b].size());
  DQOS_EXPECTS(!adjacency_[a][ap].valid() && !adjacency_[b][bp].valid());
  adjacency_[a][ap] = Endpoint{b, bp};
  adjacency_[b][bp] = Endpoint{a, ap};
}

std::vector<Endpoint> Topology::route_links(NodeId src, NodeId dst,
                                            std::size_t choice) const {
  DQOS_EXPECTS(is_host(src) && is_host(dst) && src != dst);
  SourceRoute route = build_route(src, dst, choice);
  std::vector<Endpoint> links;
  links.reserve(route.length() + 1);
  links.push_back(Endpoint{src, 0});
  Endpoint at = host_attach(src);
  for (std::size_t h = 0; h < route.length(); ++h) {
    DQOS_ASSERT(is_switch(at.node));
    const PortId out = route.hop(h);
    links.push_back(Endpoint{at.node, out});
    at = peer(at.node, out);
    DQOS_ASSERT(at.valid());
  }
  DQOS_ASSERT(at.node == dst);
  return links;
}

void Topology::validate() const {
  // Link symmetry.
  for (NodeId n = 0; n < num_nodes(); ++n) {
    for (PortId p = 0; p < adjacency_[n].size(); ++p) {
      const Endpoint e = adjacency_[n][p];
      if (!e.valid()) continue;
      const Endpoint back = peer(e.node, e.port);
      DQOS_ASSERT(back.node == n && back.port == p);
    }
  }
  // Hosts wired.
  for (NodeId h = 0; h < num_hosts_; ++h) {
    DQOS_ASSERT(host_attach(h).valid());
    DQOS_ASSERT(is_switch(host_attach(h).node));
  }
  // Every route of every pair terminates correctly (route_links asserts it).
  for (NodeId s = 0; s < num_hosts_; ++s) {
    for (NodeId d = 0; d < num_hosts_; ++d) {
      if (s == d) continue;
      const std::size_t routes = route_count(s, d);
      DQOS_ASSERT(routes >= 1);
      for (std::size_t c = 0; c < routes; ++c) {
        (void)route_links(s, d, c);
      }
    }
  }
}

}  // namespace dqos
