#include "topo/two_level_clos.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace dqos {

TwoLevelClos::TwoLevelClos(std::uint32_t num_leaves, std::uint32_t hosts_per_leaf,
                           std::uint32_t num_spines)
    : Topology(num_leaves * hosts_per_leaf, num_leaves + num_spines,
               std::max<std::size_t>(hosts_per_leaf + num_spines, num_leaves)),
      num_leaves_(num_leaves),
      hosts_per_leaf_(hosts_per_leaf),
      num_spines_(num_spines) {
  DQOS_EXPECTS(num_leaves >= 2 && hosts_per_leaf >= 1 && num_spines >= 1);
  // Hosts to leaf down-ports [0, hosts_per_leaf).
  for (NodeId h = 0; h < num_hosts(); ++h) {
    const std::uint32_t leaf = h / hosts_per_leaf_;
    const auto port = static_cast<PortId>(h % hosts_per_leaf_);
    connect(h, 0, leaf_switch(leaf), port);
  }
  // Leaf uplink u (port hosts_per_leaf + u) to spine u, spine port = leaf.
  for (std::uint32_t leaf = 0; leaf < num_leaves_; ++leaf) {
    for (std::uint32_t u = 0; u < num_spines_; ++u) {
      connect(leaf_switch(leaf), static_cast<PortId>(hosts_per_leaf_ + u),
              spine_switch(u), static_cast<PortId>(leaf));
    }
  }
}

std::size_t TwoLevelClos::route_count(NodeId src, NodeId dst) const {
  DQOS_EXPECTS(is_host(src) && is_host(dst) && src != dst);
  return leaf_of_host(src) == leaf_of_host(dst) ? 1 : num_spines_;
}

SourceRoute TwoLevelClos::build_route(NodeId src, NodeId dst, std::size_t choice) const {
  DQOS_EXPECTS(choice < route_count(src, dst));
  SourceRoute r;
  const std::uint32_t src_leaf = leaf_of_host(src);
  const std::uint32_t dst_leaf = leaf_of_host(dst);
  const auto dst_port = static_cast<PortId>(dst % hosts_per_leaf_);
  if (src_leaf == dst_leaf) {
    r.push_hop(dst_port);  // turn around inside the leaf
    return r;
  }
  r.push_hop(static_cast<PortId>(hosts_per_leaf_ + choice));  // up to spine `choice`
  r.push_hop(static_cast<PortId>(dst_leaf));                  // spine down to dst leaf
  r.push_hop(dst_port);                                       // leaf down to host
  return r;
}

std::string TwoLevelClos::name() const {
  return "folded-clos(" + std::to_string(num_leaves_) + "x" +
         std::to_string(hosts_per_leaf_) + "," + std::to_string(num_spines_) +
         " spines)";
}

std::unique_ptr<Topology> make_two_level_clos(std::uint32_t num_leaves,
                                              std::uint32_t hosts_per_leaf,
                                              std::uint32_t num_spines) {
  return std::make_unique<TwoLevelClos>(num_leaves, hosts_per_leaf, num_spines);
}

}  // namespace dqos
