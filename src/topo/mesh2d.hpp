/// \file mesh2d.hpp
/// 2D mesh with XY dimension-order routing — a *direct-network* extension
/// beyond the paper's MIN evaluation (§6 closes with the EDF adaptation as
/// a general switch mechanism; meshes are the other dominant HPC fabric).
///
/// Geometry: width x height switches, `concentration` hosts attached to
/// each. Port layout per switch: [0, c) host down-ports, then +X, -X, +Y,
/// -Y (edge switches leave the outward ports unwired). XY routing is
/// deterministic (route_count == 1) and deadlock-free, so it composes with
/// credit flow control without extra VCs — matching the paper's fixed
/// routing requirement trivially.
#pragma once

#include "topo/topology.hpp"

namespace dqos {

class Mesh2D final : public Topology {
 public:
  Mesh2D(std::uint32_t width, std::uint32_t height, std::uint32_t concentration);

  [[nodiscard]] std::size_t route_count(NodeId src, NodeId dst) const override;
  [[nodiscard]] SourceRoute build_route(NodeId src, NodeId dst,
                                        std::size_t choice) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  [[nodiscard]] NodeId mesh_switch(std::uint32_t x, std::uint32_t y) const {
    return switch_id(y * width_ + x);
  }

  /// Port indices of the four directions (after the host ports).
  [[nodiscard]] PortId east_port() const { return static_cast<PortId>(conc_ + 0); }
  [[nodiscard]] PortId west_port() const { return static_cast<PortId>(conc_ + 1); }
  [[nodiscard]] PortId north_port() const { return static_cast<PortId>(conc_ + 2); }
  [[nodiscard]] PortId south_port() const { return static_cast<PortId>(conc_ + 3); }

 private:
  std::uint32_t width_, height_, conc_;
};

std::unique_ptr<Topology> make_mesh2d(std::uint32_t width, std::uint32_t height,
                                      std::uint32_t concentration);

}  // namespace dqos
