#include "topo/single_switch.hpp"

#include "util/contracts.hpp"

namespace dqos {

SingleSwitch::SingleSwitch(std::uint32_t n_hosts)
    : Topology(n_hosts, 1, n_hosts) {
  for (NodeId h = 0; h < num_hosts(); ++h) {
    connect(h, 0, switch_id(0), static_cast<PortId>(h));
  }
}

std::size_t SingleSwitch::route_count(NodeId src, NodeId dst) const {
  DQOS_EXPECTS(is_host(src) && is_host(dst) && src != dst);
  return 1;
}

SourceRoute SingleSwitch::build_route(NodeId src, NodeId dst, std::size_t choice) const {
  DQOS_EXPECTS(choice == 0);
  (void)src;
  SourceRoute r;
  r.push_hop(static_cast<PortId>(dst));
  return r;
}

std::string SingleSwitch::name() const {
  return "single-switch(" + std::to_string(num_hosts()) + ")";
}

std::unique_ptr<Topology> make_single_switch(std::uint32_t n_hosts) {
  return std::make_unique<SingleSwitch>(n_hosts);
}

}  // namespace dqos
