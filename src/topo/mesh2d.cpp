#include "topo/mesh2d.hpp"

#include "util/contracts.hpp"

namespace dqos {

Mesh2D::Mesh2D(std::uint32_t width, std::uint32_t height, std::uint32_t concentration)
    : Topology(width * height * concentration, width * height,
               concentration + 4),
      width_(width),
      height_(height),
      conc_(concentration) {
  DQOS_EXPECTS(width >= 2 && height >= 1 && concentration >= 1);
  // Hosts: host h lives at switch h / conc_, local port h % conc_.
  for (NodeId h = 0; h < num_hosts(); ++h) {
    connect(h, 0, switch_id(h / conc_), static_cast<PortId>(h % conc_));
  }
  // Mesh links: +X east, +Y north (each also wires the reverse direction).
  for (std::uint32_t y = 0; y < height_; ++y) {
    for (std::uint32_t x = 0; x < width_; ++x) {
      if (x + 1 < width_) {
        connect(mesh_switch(x, y), east_port(), mesh_switch(x + 1, y), west_port());
      }
      if (y + 1 < height_) {
        connect(mesh_switch(x, y), north_port(), mesh_switch(x, y + 1), south_port());
      }
    }
  }
}

std::size_t Mesh2D::route_count(NodeId src, NodeId dst) const {
  DQOS_EXPECTS(is_host(src) && is_host(dst) && src != dst);
  return 1;  // XY dimension order is deterministic
}

SourceRoute Mesh2D::build_route(NodeId src, NodeId dst, std::size_t choice) const {
  DQOS_EXPECTS(choice == 0);
  DQOS_EXPECTS(is_host(src) && is_host(dst) && src != dst);
  SourceRoute r;
  const std::uint32_t s = src / conc_, d = dst / conc_;
  std::uint32_t x = s % width_, y = s / width_;
  const std::uint32_t dx = d % width_, dy = d / width_;
  while (x != dx) {
    if (x < dx) {
      r.push_hop(east_port());
      ++x;
    } else {
      r.push_hop(west_port());
      --x;
    }
  }
  while (y != dy) {
    if (y < dy) {
      r.push_hop(north_port());
      ++y;
    } else {
      r.push_hop(south_port());
      --y;
    }
  }
  r.push_hop(static_cast<PortId>(dst % conc_));  // exit to the host
  return r;
}

std::string Mesh2D::name() const {
  return "mesh2d(" + std::to_string(width_) + "x" + std::to_string(height_) +
         ",c=" + std::to_string(conc_) + ")";
}

std::unique_ptr<Topology> make_mesh2d(std::uint32_t width, std::uint32_t height,
                                      std::uint32_t concentration) {
  return std::make_unique<Mesh2D>(width, height, concentration);
}

}  // namespace dqos
