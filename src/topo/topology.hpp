/// \file topology.hpp
/// Network topology abstraction: nodes, ports, links and fixed-route
/// computation.
///
/// The paper evaluates a folded (bidirectional) perfect-shuffle butterfly
/// MIN with 128 endpoints built from 16-port switches (§4.1) and mandates
/// **fixed routing** chosen at admission time (§3): packets follow the route
/// their flow reserved; path diversity exists only at reservation time,
/// where the admission controller balances load across the minimal paths.
///
/// A Topology therefore exposes:
///   - the node/port graph (hosts have one port; switches have many),
///   - `route_count(src,dst)`: how many distinct minimal paths exist,
///   - `build_route(src,dst,k)`: the k-th minimal path as a SourceRoute
///     (one output port per traversed switch, PCI AS source-routing style),
///   - a dense directed-link index (`link_index`): every (node, port)
///     departure maps to a slot in [0, num_link_slots()), so per-link state
///     (the admission ledger, failure marks) lives in flat arrays instead
///     of hash maps — the datacenter-scale memory model of DESIGN.md §13,
///   - pod structure, when the builder defines one (`num_pods`, `pod_of`,
///     `link_intra_pod`): the unit of hierarchical admission. A pod is a
///     sub-fabric whose internal minimal routes never leave it (a k-ary
///     n-tree's top-digit subtree); switches above every pod report kNoPod.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "proto/packet.hpp"
#include "proto/types.hpp"

namespace dqos {

/// One end of a link.
struct Endpoint {
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
  [[nodiscard]] bool valid() const { return node != kInvalidNode; }
  bool operator==(const Endpoint&) const = default;
};

/// Base class: owns the port-level adjacency and id layout.
/// Id layout: hosts occupy [0, num_hosts); switches [num_hosts, num_nodes).
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] std::uint32_t num_hosts() const { return num_hosts_; }
  [[nodiscard]] std::uint32_t num_switches() const { return num_switches_; }
  [[nodiscard]] std::uint32_t num_nodes() const { return num_hosts_ + num_switches_; }

  [[nodiscard]] bool is_host(NodeId n) const { return n < num_hosts_; }
  [[nodiscard]] bool is_switch(NodeId n) const {
    return n >= num_hosts_ && n < num_nodes();
  }
  [[nodiscard]] NodeId switch_id(std::uint32_t index) const { return num_hosts_ + index; }
  [[nodiscard]] std::uint32_t switch_index(NodeId n) const;

  /// Number of ports on node `n` (hosts always have exactly 1).
  [[nodiscard]] std::size_t num_ports(NodeId n) const;

  /// Peer endpoint wired to (n, port); invalid Endpoint if unwired.
  [[nodiscard]] Endpoint peer(NodeId n, PortId port) const;

  /// Switch+port a host's single link attaches to.
  [[nodiscard]] Endpoint host_attach(NodeId host) const { return peer(host, 0); }

  /// Number of distinct minimal fixed routes from src host to dst host.
  [[nodiscard]] virtual std::size_t route_count(NodeId src, NodeId dst) const = 0;

  /// The `choice`-th minimal route (choice in [0, route_count)). The route
  /// lists the output port to take at each switch on the path, in order.
  [[nodiscard]] virtual SourceRoute build_route(NodeId src, NodeId dst,
                                                std::size_t choice) const = 0;

  /// Directed link sequence (as (node,port) departures) for a route —
  /// used by the admission controller's per-link reservation ledger and by
  /// topology validation. First entry is the host's injection link.
  [[nodiscard]] std::vector<Endpoint> route_links(NodeId src, NodeId dst,
                                                  std::size_t choice) const;
  /// Allocation-free variant: fills `out` (cleared first) so hot admission
  /// loops can reuse one scratch buffer across candidate routes.
  void route_links_into(NodeId src, NodeId dst, std::size_t choice,
                        std::vector<Endpoint>& out) const;

  /// --- dense directed-link indexing ---------------------------------------
  /// Every (node, port) departure occupies one slot: hosts first (one port
  /// each), then switches at `switch_ports` slots apiece. Flat per-link
  /// arrays indexed by this replace hashed ledgers at scale.
  [[nodiscard]] std::uint32_t num_link_slots() const {
    return num_hosts_ + num_switches_ * static_cast<std::uint32_t>(switch_ports_);
  }
  [[nodiscard]] std::uint32_t link_index(NodeId n, PortId port) const {
    return port_base(n) + port;
  }
  [[nodiscard]] std::uint32_t link_index(const Endpoint& e) const {
    return link_index(e.node, e.port);
  }
  /// Inverse of link_index: the (node, port) a slot stands for.
  [[nodiscard]] Endpoint link_endpoint(std::uint32_t slot) const;

  /// --- pod structure -------------------------------------------------------
  static constexpr std::uint32_t kNoPod = 0xffffffffu;
  /// 0 = the builder defines no pods (flat admission only).
  [[nodiscard]] std::uint32_t num_pods() const { return num_pods_; }
  /// Pod of a node; kNoPod for nodes above every pod (core switches) or
  /// when the topology has no pods.
  [[nodiscard]] std::uint32_t pod_of(NodeId n) const {
    return pods_.empty() ? kNoPod : pods_[n];
  }
  /// A directed link is intra-pod when both of its endpoints sit in the
  /// same pod — the links a PodBroker owns exclusively.
  [[nodiscard]] bool link_intra_pod(const Endpoint& e) const;
  /// The owning pod of a directed link (kNoPod for inter-pod/core links).
  [[nodiscard]] std::uint32_t link_pod(const Endpoint& e) const;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Structural self-check (every link bidirectional and consistent; every
  /// route terminates at its destination). Aborts via contract on failure.
  /// Above kValidateExhaustiveHosts hosts the route check covers a
  /// deterministic sample of pairs and choices instead of all of them —
  /// the full product is O(hosts^2 * routes) and unaffordable at 1k+.
  void validate() const;
  static constexpr std::uint32_t kValidateExhaustiveHosts = 256;

 protected:
  Topology(std::uint32_t hosts, std::uint32_t switches, std::size_t switch_ports);

  /// Wires (a,ap) <-> (b,bp). Both sides must be free.
  void connect(NodeId a, PortId ap, NodeId b, PortId bp);

  /// Declares the pod structure (builder call, at most once): `pods` maps
  /// every NodeId to its pod in [0, num_pods) or kNoPod for core nodes.
  /// The builder guarantees minimal routes between same-pod hosts stay
  /// inside the pod — hierarchical admission relies on it.
  void set_pods(std::uint32_t num_pods, std::vector<std::uint32_t> pods);

 private:
  [[nodiscard]] std::uint32_t port_base(NodeId n) const {
    // Closed form of the arena layout: hosts own slot [0, H); switch i
    // owns [H + i*P, H + (i+1)*P).
    return is_host(n) ? n
                      : num_hosts_ + (n - num_hosts_) *
                                         static_cast<std::uint32_t>(switch_ports_);
  }

  std::uint32_t num_hosts_;
  std::uint32_t num_switches_;
  std::size_t switch_ports_;
  /// Arena-backed adjacency: adjacency_[link_index(n, p)] = peer endpoint.
  /// One flat allocation instead of num_nodes() separate port vectors.
  std::vector<Endpoint> adjacency_;
  std::uint32_t num_pods_ = 0;
  /// NodeId -> pod (empty when the builder defines no pods).
  std::vector<std::uint32_t> pods_;
};

/// ---- Builders ----------------------------------------------------------

/// The paper's network: a two-level folded-Clos ("folded perfect-shuffle
/// butterfly"). `num_leaves` leaf switches each host `hosts_per_leaf`
/// endpoints and have `num_spines` uplinks (one per spine switch); each
/// spine has `num_leaves` down ports. The IPPS'07 configuration is
/// (16 leaves, 8 hosts/leaf, 8 spines): 128 endpoints, 16-port switches.
std::unique_ptr<Topology> make_two_level_clos(std::uint32_t num_leaves,
                                              std::uint32_t hosts_per_leaf,
                                              std::uint32_t num_spines);

/// Generalized k-ary n-tree (k^n hosts, n levels of k^(n-1) switches with
/// k down / k up ports). Deeper-network ablations use this.
std::unique_ptr<Topology> make_kary_ntree(std::uint32_t k, std::uint32_t n);

/// Degenerate single-switch "network" (crossbar with n hosts) for unit and
/// integration tests of the switch architectures in isolation.
std::unique_ptr<Topology> make_single_switch(std::uint32_t n_hosts);

}  // namespace dqos
