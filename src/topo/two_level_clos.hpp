/// \file two_level_clos.hpp
/// The paper's evaluation topology: a folded (bidirectional) perfect-shuffle
/// butterfly MIN, i.e. a two-level folded Clos. With the IPPS'07 parameters
/// (16-port switches, 128 endpoints) it has 16 leaf switches (8 hosts +
/// 8 uplinks each) and 8 spine switches (16 down-ports each): the unique
/// such MIN, with full bisection bandwidth and `num_spines` minimal paths
/// between hosts on different leaves.
#pragma once

#include "topo/topology.hpp"

namespace dqos {

class TwoLevelClos final : public Topology {
 public:
  TwoLevelClos(std::uint32_t num_leaves, std::uint32_t hosts_per_leaf,
               std::uint32_t num_spines);

  [[nodiscard]] std::size_t route_count(NodeId src, NodeId dst) const override;
  [[nodiscard]] SourceRoute build_route(NodeId src, NodeId dst,
                                        std::size_t choice) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] NodeId leaf_switch(std::uint32_t leaf) const { return switch_id(leaf); }
  [[nodiscard]] NodeId spine_switch(std::uint32_t spine) const {
    return switch_id(num_leaves_ + spine);
  }
  [[nodiscard]] std::uint32_t leaf_of_host(NodeId host) const {
    return host / hosts_per_leaf_;
  }

 private:
  std::uint32_t num_leaves_;
  std::uint32_t hosts_per_leaf_;
  std::uint32_t num_spines_;
};

}  // namespace dqos
