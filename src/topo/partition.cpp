#include "topo/partition.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace dqos {

namespace {

/// Unique switch-index neighbors of each switch, ascending. Parallel links
/// collapse to one adjacency edge (the cut metric counts links, not edges,
/// separately).
std::vector<std::vector<std::uint32_t>> switch_adjacency(const Topology& topo) {
  const std::uint32_t nsw = topo.num_switches();
  std::vector<std::vector<std::uint32_t>> adj(nsw);
  for (std::uint32_t si = 0; si < nsw; ++si) {
    const NodeId n = topo.switch_id(si);
    for (PortId p = 0; p < topo.num_ports(n); ++p) {
      const Endpoint peer = topo.peer(n, p);
      if (!peer.valid() || !topo.is_switch(peer.node)) continue;
      adj[si].push_back(topo.switch_index(peer.node));
    }
    std::sort(adj[si].begin(), adj[si].end());
    adj[si].erase(std::unique(adj[si].begin(), adj[si].end()), adj[si].end());
  }
  return adj;
}

}  // namespace

Partition partition_topology(const Topology& topo, std::uint32_t shards) {
  DQOS_EXPECTS(shards >= 1);
  DQOS_EXPECTS(shards <= topo.num_switches());
  const std::uint32_t nsw = topo.num_switches();
  constexpr std::uint32_t kUnassigned = 0xffffffffu;

  Partition part;
  part.num_shards = shards;
  part.node_shard.assign(topo.num_nodes(), kUnassigned);
  part.weight.assign(shards, 0);

  // Weight of a switch = itself plus the hosts that will follow it.
  std::vector<std::uint32_t> sw_weight(nsw, 1);
  for (NodeId h = 0; h < topo.num_hosts(); ++h) {
    const Endpoint at = topo.host_attach(h);
    DQOS_EXPECTS(at.valid() && topo.is_switch(at.node));
    ++sw_weight[topo.switch_index(at.node)];
  }

  const std::vector<std::vector<std::uint32_t>> adj = switch_adjacency(topo);
  std::vector<std::uint32_t> sw_shard(nsw, kUnassigned);

  // Seed selection. When the topology declares pods, shard growths start
  // from pod roots round-robin — shard boundaries then tend to align with
  // pod boundaries, so intra-pod traffic (and a PodBroker's whole link
  // set, DESIGN.md §13) stays shard-local. Without pods, seeds spread
  // across the index space: builders lay switches out by level/position,
  // so equidistant indices start the growths far apart.
  std::vector<std::uint32_t> seeds;
  seeds.reserve(shards);
  if (topo.num_pods() > 0) {
    // Per-pod switch lists, ascending index (deterministic). Core switches
    // (kNoPod) seed only as a fallback once every pod list is exhausted.
    std::vector<std::vector<std::uint32_t>> pod_switches(topo.num_pods());
    std::vector<std::uint32_t> core;
    for (std::uint32_t si = 0; si < nsw; ++si) {
      const std::uint32_t pod = topo.pod_of(topo.switch_id(si));
      if (pod == Topology::kNoPod) {
        core.push_back(si);
      } else {
        pod_switches[pod].push_back(si);
      }
    }
    std::size_t core_next = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const std::uint32_t pod = s % topo.num_pods();
      const std::uint32_t round = s / topo.num_pods();
      if (round < pod_switches[pod].size()) {
        // The round-th switch of the pod: round 0 starts every growth at a
        // pod's first (leaf) switch; later rounds walk deeper into it.
        seeds.push_back(pod_switches[pod][round]);
      } else if (core_next < core.size()) {
        seeds.push_back(core[core_next++]);
      } else {
        // More shards than distinct pod slots + core switches remain:
        // fall back to the first still-unused switch index.
        std::vector<bool> used(nsw, false);
        for (const std::uint32_t t : seeds) used[t] = true;
        for (std::uint32_t si = 0; si < nsw; ++si) {
          if (!used[si]) {
            seeds.push_back(si);
            break;
          }
        }
      }
    }
  } else {
    for (std::uint32_t s = 0; s < shards; ++s) {
      seeds.push_back(static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(s) * nsw) / shards));
    }
  }
  DQOS_ASSERT(seeds.size() == shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint32_t seed = seeds[s];
    DQOS_ASSERT(sw_shard[seed] == kUnassigned);
    sw_shard[seed] = s;
    part.weight[s] += sw_weight[seed];
  }

  std::uint32_t assigned = shards;
  while (assigned < nsw) {
    // Grow the lightest shard (lowest index on ties) by the unassigned
    // switch with the most links into it (lowest index on ties).
    std::uint32_t grow = 0;
    for (std::uint32_t s = 1; s < shards; ++s) {
      if (part.weight[s] < part.weight[grow]) grow = s;
    }
    std::uint32_t best = kUnassigned;
    std::uint32_t best_links = 0;
    for (std::uint32_t si = 0; si < nsw; ++si) {
      if (sw_shard[si] != kUnassigned) continue;
      std::uint32_t links = 0;
      for (const std::uint32_t nb : adj[si]) {
        if (sw_shard[nb] == grow) ++links;
      }
      if (links > 0 && (best == kUnassigned || links > best_links)) {
        best = si;
        best_links = links;
      }
    }
    if (best == kUnassigned) {
      // The shard's component is exhausted (or the graph is disconnected):
      // take the lowest-index unassigned switch so progress is guaranteed.
      for (std::uint32_t si = 0; si < nsw; ++si) {
        if (sw_shard[si] == kUnassigned) {
          best = si;
          break;
        }
      }
    }
    DQOS_ASSERT(best != kUnassigned);
    sw_shard[best] = grow;
    part.weight[grow] += sw_weight[best];
    ++assigned;
  }

  for (std::uint32_t si = 0; si < nsw; ++si) {
    part.node_shard[topo.switch_id(si)] = sw_shard[si];
  }
  for (NodeId h = 0; h < topo.num_hosts(); ++h) {
    part.node_shard[h] =
        part.node_shard[topo.host_attach(h).node];
  }

  // Count cut switch-to-switch links once per unordered wire.
  for (std::uint32_t si = 0; si < nsw; ++si) {
    const NodeId n = topo.switch_id(si);
    for (PortId p = 0; p < topo.num_ports(n); ++p) {
      const Endpoint peer = topo.peer(n, p);
      if (!peer.valid() || !topo.is_switch(peer.node)) continue;
      if (peer.node > n || (peer.node == n && peer.port > p)) {
        if (part.node_shard[n] != part.node_shard[peer.node]) ++part.cut_links;
      }
    }
  }
  return part;
}

}  // namespace dqos
