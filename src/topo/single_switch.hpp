/// \file single_switch.hpp
/// One switch, n hosts: the minimal network. Isolates the switch
/// architectures (queue disciplines, arbitration, credits) from topological
/// effects in unit and integration tests.
#pragma once

#include "topo/topology.hpp"

namespace dqos {

class SingleSwitch final : public Topology {
 public:
  explicit SingleSwitch(std::uint32_t n_hosts);

  [[nodiscard]] std::size_t route_count(NodeId src, NodeId dst) const override;
  [[nodiscard]] SourceRoute build_route(NodeId src, NodeId dst,
                                        std::size_t choice) const override;
  [[nodiscard]] std::string name() const override;
};

}  // namespace dqos
