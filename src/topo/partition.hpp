/// \file partition.hpp
/// Deterministic graph partitioner for sharded parallel execution
/// (DESIGN.md §12).
///
/// Splits a topology's node set into N shards along switch boundaries:
/// switches are distributed by a seeded greedy BFS growth that balances
/// shard weight while preferring neighbors with the most intra-shard
/// links (a cheap edge-cut heuristic — the fewer cut links, the less
/// cross-shard mailbox traffic the engine pays for). Hosts always land in
/// the shard of the switch they attach to, so a host's injection link is
/// never a cut edge and the host<->switch datapath stays shard-local.
/// Topologies that declare pods seed the growths from pod roots
/// round-robin, aligning shard boundaries with pod boundaries.
///
/// The assignment is a pure function of (topology, shard count): no RNG,
/// no pointer order, no iteration over unordered containers — the same
/// inputs partition identically on every run and platform, which the
/// bit-identical-output guarantee of the parallel engine relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace dqos {

/// A computed shard assignment over a topology's nodes.
struct Partition {
  std::uint32_t num_shards = 1;
  /// NodeId -> shard index (hosts and switches both).
  std::vector<std::uint32_t> node_shard;
  /// Switch-to-switch links whose endpoints landed in different shards
  /// (each unordered link counted once).
  std::uint32_t cut_links = 0;
  /// Per-shard weight (switches + attached hosts), for balance inspection.
  std::vector<std::uint32_t> weight;

  [[nodiscard]] std::uint32_t shard_of(NodeId n) const {
    return node_shard[n];
  }
};

/// Partitions `topo` into `shards` shards (1 <= shards <= num_switches).
Partition partition_topology(const Topology& topo, std::uint32_t shards);

}  // namespace dqos
