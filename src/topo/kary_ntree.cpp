#include "topo/kary_ntree.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {
namespace {

std::uint32_t ipow(std::uint32_t base, std::uint32_t exp) {
  std::uint32_t r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) r *= base;
  return r;
}

}  // namespace

KaryNTree::KaryNTree(std::uint32_t k, std::uint32_t n)
    : Topology(ipow(k, n), n * ipow(k, n - 1), 2 * k),
      k_(k),
      n_(n),
      switches_per_level_(ipow(k, n - 1)) {
  DQOS_EXPECTS(k >= 2 && n >= 1);
  // Hosts to leaf switches: host h at leaf h/k, down-port h%k.
  for (NodeId h = 0; h < num_hosts(); ++h) {
    connect(h, 0, tree_switch(0, h / k_), static_cast<PortId>(h % k_));
  }
  // Up-ports are [k, 2k): up-port k+p of <l, w> reaches <l+1, w with
  // digit l = p>, arriving at that parent's down-port w_l.
  for (std::uint32_t l = 0; l + 1 < n_; ++l) {
    const std::uint32_t stride = ipow(k_, l);
    for (std::uint32_t w = 0; w < switches_per_level_; ++w) {
      const std::uint32_t wl = digit(w, l);
      for (std::uint32_t p = 0; p < k_; ++p) {
        const std::uint32_t parent = w + (p - wl) * stride;
        connect(tree_switch(l, w), static_cast<PortId>(k_ + p),
                tree_switch(l + 1, parent), static_cast<PortId>(wl));
      }
    }
  }
  // Pod structure (n >= 2): the k top-digit subtrees. Pod of host h is its
  // most significant digit; a switch <l, w> with l <= n-2 serves exactly
  // the hosts whose top digit equals w's top digit (digit n-2 of w), and a
  // minimal route between same-pod hosts peaks at level <= n-2 — it never
  // leaves the subtree. Level n-1 switches are the inter-pod core (kNoPod).
  if (n_ >= 2) {
    const std::uint32_t host_div = ipow(k_, n_ - 1);
    const std::uint32_t sw_div = ipow(k_, n_ - 2);
    std::vector<std::uint32_t> pods(num_nodes(), kNoPod);
    for (NodeId h = 0; h < num_hosts(); ++h) pods[h] = h / host_div;
    for (std::uint32_t l = 0; l + 1 < n_; ++l) {
      for (std::uint32_t w = 0; w < switches_per_level_; ++w) {
        pods[tree_switch(l, w)] = w / sw_div;
      }
    }
    set_pods(k_, std::move(pods));
  }
}

std::uint32_t KaryNTree::digit(std::uint32_t v, std::uint32_t i) const {
  return (v / ipow(k_, i)) % k_;
}

std::uint32_t KaryNTree::ancestor_level(NodeId src, NodeId dst) const {
  // Host digits: a_{n-1}..a_0; leaf digit j = a_{j+1}. The LCA sits at
  // level (most significant differing host digit).
  std::uint32_t m = 0;
  for (std::uint32_t i = 1; i < n_; ++i) {
    if (digit(src, i) != digit(dst, i)) m = i;
  }
  return m;
}

std::size_t KaryNTree::route_count(NodeId src, NodeId dst) const {
  DQOS_EXPECTS(is_host(src) && is_host(dst) && src != dst);
  return ipow(k_, ancestor_level(src, dst));
}

SourceRoute KaryNTree::build_route(NodeId src, NodeId dst, std::size_t choice) const {
  DQOS_EXPECTS(choice < route_count(src, dst));
  SourceRoute r;
  const std::uint32_t m = ancestor_level(src, dst);
  // Ascent: at level l in [0, m) pick up-port from the choice's digits.
  std::size_t c = choice;
  for (std::uint32_t l = 0; l < m; ++l) {
    r.push_hop(static_cast<PortId>(k_ + c % k_));
    c /= k_;
  }
  // Descent from level m down to level 1: entering level l-1 fixes its
  // digit l-1 = dst host digit l, i.e. down-port = digit l of dst.
  for (std::uint32_t l = m; l >= 1; --l) {
    r.push_hop(static_cast<PortId>(digit(dst, l)));
  }
  // Leaf to host.
  r.push_hop(static_cast<PortId>(dst % k_));
  return r;
}

std::string KaryNTree::name() const {
  return std::to_string(k_) + "-ary " + std::to_string(n_) + "-tree";
}

std::unique_ptr<Topology> make_kary_ntree(std::uint32_t k, std::uint32_t n) {
  return std::make_unique<KaryNTree>(k, n);
}

}  // namespace dqos
