/// \file kary_ntree.hpp
/// Generalized k-ary n-tree (Petrini & Vanneschi): k^n hosts, n levels of
/// k^(n-1) switches with k down-ports and k up-ports each. Used for the
/// deeper-network ablations; the two-level Clos covers the paper's exact
/// configuration.
///
/// Switch identity: <level l, index w>, where w is read as n-1 base-k
/// digits. <l, w> connects upward to <l+1, w'> iff w and w' agree on every
/// digit except digit l. Minimal routing ascends to the lowest common
/// ancestor level (free up-port choice at each level — the path diversity
/// the admission controller balances over) and then descends along the
/// destination's digits.
#pragma once

#include "topo/topology.hpp"

namespace dqos {

class KaryNTree final : public Topology {
 public:
  KaryNTree(std::uint32_t k, std::uint32_t n);

  [[nodiscard]] std::size_t route_count(NodeId src, NodeId dst) const override;
  [[nodiscard]] SourceRoute build_route(NodeId src, NodeId dst,
                                        std::size_t choice) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] std::uint32_t levels() const { return n_; }
  [[nodiscard]] NodeId tree_switch(std::uint32_t level, std::uint32_t w) const {
    return switch_id(level * switches_per_level_ + w);
  }

 private:
  /// Level of the lowest common ancestor of two hosts (0 = same leaf).
  [[nodiscard]] std::uint32_t ancestor_level(NodeId src, NodeId dst) const;
  /// Digit `i` (base k) of value `v`.
  [[nodiscard]] std::uint32_t digit(std::uint32_t v, std::uint32_t i) const;

  std::uint32_t k_;
  std::uint32_t n_;
  std::uint32_t switches_per_level_;
};

}  // namespace dqos
