/// \file patterns.hpp
/// Destination-selection patterns for workload sources.
///
/// The paper's evaluation draws destinations uniformly (the NPF benchmark's
/// default); real clusters also see adversarial spatial patterns. These are
/// the standard interconnection-network patterns (Dally & Towles):
///
///   uniform        — every other host equally likely
///   hot-spot       — a fraction of traffic targets one hot node
///   bit-complement — dst = bitwise complement of src (needs 2^k hosts)
///   transpose      — view src as (row,col) of a square, dst = (col,row)
///   tornado        — dst = (src + N/2) mod N (worst case for rings; here a
///                    fixed permutation stressing specific spines)
///   permutation    — a fixed random permutation drawn from the seed
///
/// Deterministic patterns that would map a host to itself fall back to the
/// next host (self-traffic never enters the network).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "proto/types.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace dqos {

enum class PatternKind : std::uint8_t {
  kUniform = 0,
  kHotSpot = 1,
  kBitComplement = 2,
  kTranspose = 3,
  kTornado = 4,
  kPermutation = 5,
};

std::string_view to_string(PatternKind k);

class DestinationPattern {
 public:
  virtual ~DestinationPattern() = default;
  /// Picks a destination for `src` in [0, num_hosts), never `src` itself.
  [[nodiscard]] virtual NodeId pick(NodeId src, Rng& rng) const = 0;
  [[nodiscard]] virtual PatternKind kind() const = 0;
};

struct PatternParams {
  PatternKind kind = PatternKind::kUniform;
  /// kHotSpot: fraction of messages directed at the hot node.
  double hotspot_fraction = 0.25;
  NodeId hotspot_node = 0;
  /// kPermutation: seed for drawing the permutation.
  std::uint64_t permutation_seed = 0x9e3779b9;
};

/// Builds a pattern over `num_hosts` endpoints.
std::unique_ptr<DestinationPattern> make_pattern(const PatternParams& params,
                                                 std::uint32_t num_hosts);

/// Uniform choice over a fixed peer list — the bounded-fanout workload
/// (SimConfig::fanout): at datacenter scale a host talks to a bounded set
/// of peers, not to all N-1, and per-destination flow state must not grow
/// O(N) per host. One instance per source host; the peer list is drawn at
/// workload-preparation time (pattern-shaped, deterministic from the seed).
class SubsetPattern final : public DestinationPattern {
 public:
  explicit SubsetPattern(std::vector<NodeId> peers) : peers_(std::move(peers)) {
    DQOS_EXPECTS(!peers_.empty());
  }
  [[nodiscard]] NodeId pick(NodeId /*src*/, Rng& rng) const override {
    return peers_[rng.uniform_int(0, peers_.size() - 1)];
  }
  [[nodiscard]] PatternKind kind() const override { return PatternKind::kUniform; }
  [[nodiscard]] const std::vector<NodeId>& peers() const { return peers_; }

 private:
  std::vector<NodeId> peers_;  ///< non-empty, never contains the source
};

}  // namespace dqos
