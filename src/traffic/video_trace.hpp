/// \file video_trace.hpp
/// Trace-driven video: plays a recorded sequence of frame sizes at a fixed
/// frame period — the paper transmits "actual MPEG video sequences", and
/// this source accepts such traces in the standard one-frame-size-per-line
/// text format (as published by the TU-Berlin / ASU video trace libraries).
/// `data/mpeg4_sample.trace` ships a synthetic trace with the paper's
/// Table 1 statistics for out-of-the-box runs.
#pragma once

#include <string>
#include <vector>

#include "traffic/source.hpp"

namespace dqos {

/// Parses a frame-size trace: one frame size in bytes per line; blank
/// lines and `#` comments ignored. Returns empty on unreadable file.
std::vector<std::uint32_t> load_frame_trace(const std::string& path);

struct TraceVideoParams {
  Duration frame_period = Duration::milliseconds(40);  ///< 25 fps
  /// Starting index into the trace (desynchronizes streams sharing one
  /// trace). The trace is played cyclically.
  std::size_t start_frame = 0;
  bool randomize_phase = true;  ///< random offset within one period
};

class TraceVideoSource final : public TrafficSource {
 public:
  /// `trace` must outlive the source (it is shared across streams).
  TraceVideoSource(Simulator& sim, Host& host, Rng rng, MetricsCollector* metrics,
                   FlowId flow, const std::vector<std::uint32_t>* trace,
                   const TraceVideoParams& params);

  void start(TimePoint stop) override;
  [[nodiscard]] TrafficClass tclass() const override {
    return TrafficClass::kMultimedia;
  }

  /// Mean frame bytes of a trace (for reservation sizing).
  static double trace_mean_bytes(const std::vector<std::uint32_t>& trace);

 private:
  void frame_tick();

  FlowId flow_;
  const std::vector<std::uint32_t>* trace_;
  TraceVideoParams params_;
  std::size_t next_frame_;
};

}  // namespace dqos
