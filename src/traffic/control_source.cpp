#include "traffic/control_source.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

ControlSource::ControlSource(Simulator& sim, Host& host, Rng rng,
                             MetricsCollector* metrics,
                             std::vector<FlowId> flows_by_dst,
                             const ControlParams& params,
                             const DestinationPattern* pattern)
    : TrafficSource(sim, host, rng, metrics),
      flows_by_dst_(std::move(flows_by_dst)),
      params_(params),
      pattern_(pattern) {
  DQOS_EXPECTS(flows_by_dst_.size() >= 2);
  DQOS_EXPECTS(params.target_bytes_per_sec >= 0.0);  // 0 = paused until retarget
  DQOS_EXPECTS(params.min_bytes > 0 && params.min_bytes <= params.max_bytes);
  if (pattern_ == nullptr) {
    owned_ = make_pattern(PatternParams{},
                          static_cast<std::uint32_t>(flows_by_dst_.size()));
    pattern_ = owned_.get();
  }
  const double mean_msg = (params.min_bytes + params.max_bytes) / 2.0;
  mean_interarrival_sec_ = params.target_bytes_per_sec > 0.0
                               ? mean_msg / params.target_bytes_per_sec
                               : 0.0;
}

void ControlSource::start(TimePoint stop) {
  started_ = true;
  stop_ = stop;
  schedule_next();
}

void ControlSource::retarget(double target_bytes_per_sec,
                             const DestinationPattern* pattern) {
  DQOS_EXPECTS(target_bytes_per_sec >= 0.0);
  params_.target_bytes_per_sec = target_bytes_per_sec;
  if (pattern != nullptr) pattern_ = pattern;
  const double mean_msg = (params_.min_bytes + params_.max_bytes) / 2.0;
  mean_interarrival_sec_ =
      target_bytes_per_sec > 0.0 ? mean_msg / target_bytes_per_sec : 0.0;
  if (!started_ || stopped_) return;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
  schedule_next();
}

void ControlSource::schedule_next() {
  if (mean_interarrival_sec_ <= 0.0) return;  // paused (rate 0)
  const double wait = -mean_interarrival_sec_ * std::log(rng_.uniform_pos());
  const TimePoint at = sim_.now() + Duration::from_seconds_double(wait);
  if (at >= stop_) return;
  pending_ = sim_.schedule_at(at, [this] {
    pending_ = 0;
    arrival();
  });
}

void ControlSource::arrival() {
  const NodeId dst = pattern_->pick(host_.id(), rng_);
  const FlowId f = flows_by_dst_.at(dst);
  DQOS_ASSERT(f != kInvalidFlow);
  const auto bytes = rng_.uniform_int(params_.min_bytes, params_.max_bytes);
  emit(f, bytes);
  schedule_next();
}

}  // namespace dqos
