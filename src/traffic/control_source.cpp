#include "traffic/control_source.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

ControlSource::ControlSource(Simulator& sim, Host& host, Rng rng,
                             MetricsCollector* metrics,
                             std::vector<FlowId> flows_by_dst,
                             const ControlParams& params,
                             const DestinationPattern* pattern)
    : TrafficSource(sim, host, rng, metrics),
      flows_by_dst_(std::move(flows_by_dst)),
      params_(params),
      pattern_(pattern) {
  DQOS_EXPECTS(flows_by_dst_.size() >= 2);
  DQOS_EXPECTS(params.target_bytes_per_sec > 0.0);
  DQOS_EXPECTS(params.min_bytes > 0 && params.min_bytes <= params.max_bytes);
  if (pattern_ == nullptr) {
    owned_ = make_pattern(PatternParams{},
                          static_cast<std::uint32_t>(flows_by_dst_.size()));
    pattern_ = owned_.get();
  }
  const double mean_msg = (params.min_bytes + params.max_bytes) / 2.0;
  mean_interarrival_sec_ = mean_msg / params.target_bytes_per_sec;
}

void ControlSource::start(TimePoint stop) {
  stop_ = stop;
  schedule_next();
}

void ControlSource::schedule_next() {
  const double wait = -mean_interarrival_sec_ * std::log(rng_.uniform_pos());
  const TimePoint at = sim_.now() + Duration::from_seconds_double(wait);
  if (at >= stop_) return;
  sim_.schedule_at(at, [this] { arrival(); });
}

void ControlSource::arrival() {
  const NodeId dst = pattern_->pick(host_.id(), rng_);
  const FlowId f = flows_by_dst_.at(dst);
  DQOS_ASSERT(f != kInvalidFlow);
  const auto bytes = rng_.uniform_int(params_.min_bytes, params_.max_bytes);
  emit(f, bytes);
  schedule_next();
}

}  // namespace dqos
