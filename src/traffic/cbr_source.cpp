#include "traffic/cbr_source.hpp"

#include "util/contracts.hpp"

namespace dqos {

CbrSource::CbrSource(Simulator& sim, Host& host, Rng rng, MetricsCollector* metrics,
                     FlowId flow, const CbrParams& params)
    : TrafficSource(sim, host, rng, metrics), flow_(flow), params_(params) {
  DQOS_EXPECTS(params.message_bytes > 0);
  DQOS_EXPECTS(params.period > Duration::zero());
}

void CbrSource::start(TimePoint stop) {
  started_ = true;
  stop_ = stop;
  const TimePoint first = sim_.now() + params_.phase;
  if (first >= stop_) return;
  pending_ = sim_.schedule_at(first, [this] {
    pending_ = 0;
    tick();
  });
}

void CbrSource::tick() {
  emit(flow_, params_.message_bytes);
  const TimePoint next = sim_.now() + params_.period;
  if (next < stop_) {
    pending_ = sim_.schedule_at(next, [this] {
      pending_ = 0;
      tick();
    });
  }
}

}  // namespace dqos
