#include "traffic/video_source.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/distributions.hpp"

namespace dqos {
namespace {

// IBBPBBPBBPBB with relative sizes I:2.5, P:1.0, B:0.5.
constexpr std::array<double, 12> kGopRaw = {2.5, 0.5, 0.5, 1.0, 0.5, 0.5,
                                            1.0, 0.5, 0.5, 1.0, 0.5, 0.5};

}  // namespace

VideoSource::VideoSource(Simulator& sim, Host& host, Rng rng,
                         MetricsCollector* metrics, FlowId flow,
                         const VideoParams& params)
    : TrafficSource(sim, host, rng, metrics), flow_(flow), params_(params) {
  DQOS_EXPECTS(params.mean_bytes_per_sec > 0.0);
  DQOS_EXPECTS(params.frame_period > Duration::zero());
  DQOS_EXPECTS(params.min_frame_bytes < params.max_frame_bytes);
  double sum = 0.0;
  for (const double w : kGopRaw) sum += w;
  for (std::size_t i = 0; i < kGopRaw.size(); ++i) {
    gop_scale_[i] = kGopRaw[i] * (static_cast<double>(kGopRaw.size()) / sum);
  }
  // Streams join mid-GoP in reality; starting everyone at the I-frame
  // would make short measurement windows see only clamped I-frames.
  gop_pos_ = static_cast<std::size_t>(rng_.uniform_int(0, kGopRaw.size() - 1));
}

double VideoSource::mean_frame_bytes() const {
  return params_.mean_bytes_per_sec * params_.frame_period.sec();
}

std::uint32_t VideoSource::draw_frame_size() {
  const double type_mean = mean_frame_bytes() * gop_scale_[gop_pos_];
  gop_pos_ = (gop_pos_ + 1) % gop_scale_.size();
  LogNormal dist(type_mean, params_.size_cv);
  const double raw = dist(rng_);
  const double clamped =
      std::clamp(raw, static_cast<double>(params_.min_frame_bytes),
                 static_cast<double>(params_.max_frame_bytes));
  return static_cast<std::uint32_t>(clamped);
}

double VideoSource::estimate_realized_bytes_per_sec(const VideoParams& params,
                                                    Rng rng, int samples) {
  // A throwaway source bound to nothing: only draw_frame_size is used.
  // Simulator/Host references are never touched by the draws.
  double sum = 0.0;
  LogNormal unused(1.0, 0.1);
  (void)unused;
  std::array<double, 12> scale{};
  double wsum = 0.0;
  for (const double w : kGopRaw) wsum += w;
  for (std::size_t i = 0; i < kGopRaw.size(); ++i) {
    scale[i] = kGopRaw[i] * (static_cast<double>(kGopRaw.size()) / wsum);
  }
  const double mean_frame = params.mean_bytes_per_sec * params.frame_period.sec();
  for (int i = 0; i < samples; ++i) {
    LogNormal dist(mean_frame * scale[static_cast<std::size_t>(i) % scale.size()],
                   params.size_cv);
    const double raw = dist(rng);
    sum += std::clamp(raw, static_cast<double>(params.min_frame_bytes),
                      static_cast<double>(params.max_frame_bytes));
  }
  return (sum / samples) / params.frame_period.sec();
}

void VideoSource::start(TimePoint stop) {
  started_ = true;
  stop_ = stop;
  Duration phase = Duration::zero();
  if (params_.randomize_phase) {
    phase = Duration::picoseconds(static_cast<std::int64_t>(
        rng_.uniform_int(0, static_cast<std::uint64_t>(params_.frame_period.ps() - 1))));
  }
  const TimePoint first = sim_.now() + phase;
  if (first >= stop_) return;
  pending_ = sim_.schedule_at(first, [this] {
    pending_ = 0;
    frame_tick();
  });
}

void VideoSource::frame_tick() {
  bool drop = false;
  if (params_.drop_late_b_frames) {
    // B slots are the only GoP positions scaled below the mean.
    const bool b_frame = gop_scale_[gop_pos_] < 1.0;
    const std::uint64_t expired = host_.flow_expired_packets(flow_);
    if (b_frame && expired > last_seen_expired_) {
      drop = true;
      ++dropped_frames_;
    }
    last_seen_expired_ = expired;
  }
  const std::uint32_t bytes = draw_frame_size();
  if (!drop) emit(flow_, bytes);
  const TimePoint next = sim_.now() + params_.frame_period;
  if (next < stop_) {
    pending_ = sim_.schedule_at(next, [this] {
      pending_ = 0;
      frame_tick();
    });
  }
}

}  // namespace dqos
