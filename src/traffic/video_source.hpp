/// \file video_source.hpp
/// *Multimedia* traffic (Table 1): a synthetic MPEG-4 video stream.
///
/// The paper transmits "actual MPEG video sequences" (3 Mbyte/s MPEG-4
/// traces, one frame per 40 ms, frame sizes 1-120 KB). We have no trace
/// files, so this source reproduces their published statistics: a
/// 12-frame IBBPBBPBBPBB group of pictures with lognormal frame sizes per
/// type (I > P > B), scaled to the configured mean rate and clamped to the
/// paper's [min,max] frame range. Only those statistics feed the deadline
/// algorithm, so the substitution preserves the evaluated behaviour
/// (DESIGN.md, substitution table).
#pragma once

#include <array>

#include "traffic/source.hpp"

namespace dqos {

struct VideoParams {
  double mean_bytes_per_sec = 3.0e6;  ///< 3 Mbyte/s (Table 1)
  Duration frame_period = Duration::milliseconds(40);  ///< 25 fps
  std::uint32_t min_frame_bytes = 1024;
  std::uint32_t max_frame_bytes = 120 * 1024;
  double size_cv = 0.35;  ///< within-type coefficient of variation
  /// Start phase is randomized within one period so hosts don't beat.
  bool randomize_phase = true;
  /// Frame-aware degradation (overload, opt-in): when the NIC reports the
  /// flow expired packets since the last frame, the next *B* frame is
  /// dropped at the source instead of submitted — losing a B frame costs
  /// only itself, while I/P frames carry the rest of the GoP. The frame
  /// size is still drawn (RNG stream stays aligned with a non-dropping
  /// run), it just is not handed to the NIC.
  bool drop_late_b_frames = false;
};

class VideoSource final : public TrafficSource {
 public:
  VideoSource(Simulator& sim, Host& host, Rng rng, MetricsCollector* metrics,
              FlowId flow, const VideoParams& params);

  void start(TimePoint stop) override;
  [[nodiscard]] TrafficClass tclass() const override {
    return TrafficClass::kMultimedia;
  }
  /// B frames withheld by the drop_late_b_frames policy.
  [[nodiscard]] std::uint64_t frames_dropped() const override {
    return dropped_frames_;
  }

  /// Mean frame size implied by rate and period (before clamping).
  [[nodiscard]] double mean_frame_bytes() const;
  /// Next frame size draw (exposed for workload validation tests).
  std::uint32_t draw_frame_size();

  /// Monte-Carlo estimate of the *realized* rate after the [min,max] frame
  /// clamp (I-frames saturate the Table 1 cap). Workload builders divide
  /// the class budget by this to pick stream counts that actually offer
  /// the configured share.
  static double estimate_realized_bytes_per_sec(const VideoParams& params,
                                                Rng rng, int samples = 4096);

 private:
  void frame_tick();

  FlowId flow_;
  VideoParams params_;
  std::size_t gop_pos_ = 0;
  std::uint64_t dropped_frames_ = 0;
  std::uint64_t last_seen_expired_ = 0;  ///< NIC expiry count at last frame
  /// Relative mean size per GoP slot (I/P/B pattern), normalized to 1.
  std::array<double, 12> gop_scale_{};
};

}  // namespace dqos
