#include "traffic/source.hpp"

namespace dqos {

TrafficSource::TrafficSource(Simulator& sim, Host& host, Rng rng,
                             MetricsCollector* metrics)
    : sim_(sim), host_(host), rng_(rng), metrics_(metrics) {}

void TrafficSource::stop() {
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
  stopped_ = true;
  stop_ = sim_.now();
}

void TrafficSource::emit(FlowId flow, std::uint64_t bytes) {
  ++messages_;
  bytes_ += bytes;
  last_enqueue_ = sim_.now();
  if (metrics_) metrics_->on_message_offered(tclass(), bytes, sim_.now());
  if (!host_.submit(flow, bytes)) ++refused_;
}

}  // namespace dqos
