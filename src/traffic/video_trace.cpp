#include "traffic/video_trace.hpp"

#include <fstream>

#include "util/contracts.hpp"

namespace dqos {

std::vector<std::uint32_t> load_frame_trace(const std::string& path) {
  std::vector<std::uint32_t> frames;
  std::ifstream in(path);
  if (!in) return frames;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Skip whitespace-only lines.
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    const long v = std::strtol(line.c_str() + pos, nullptr, 10);
    if (v > 0) frames.push_back(static_cast<std::uint32_t>(v));
  }
  return frames;
}

TraceVideoSource::TraceVideoSource(Simulator& sim, Host& host, Rng rng,
                                   MetricsCollector* metrics, FlowId flow,
                                   const std::vector<std::uint32_t>* trace,
                                   const TraceVideoParams& params)
    : TrafficSource(sim, host, rng, metrics),
      flow_(flow),
      trace_(trace),
      params_(params),
      next_frame_(params.start_frame) {
  DQOS_EXPECTS(trace_ != nullptr && !trace_->empty());
  DQOS_EXPECTS(params.frame_period > Duration::zero());
  next_frame_ %= trace_->size();
}

double TraceVideoSource::trace_mean_bytes(const std::vector<std::uint32_t>& trace) {
  DQOS_EXPECTS(!trace.empty());
  double sum = 0.0;
  for (const auto f : trace) sum += f;
  return sum / static_cast<double>(trace.size());
}

void TraceVideoSource::start(TimePoint stop) {
  started_ = true;
  stop_ = stop;
  Duration phase = Duration::zero();
  if (params_.randomize_phase) {
    phase = Duration::picoseconds(static_cast<std::int64_t>(
        rng_.uniform_int(0, static_cast<std::uint64_t>(params_.frame_period.ps() - 1))));
  }
  const TimePoint first = sim_.now() + phase;
  if (first >= stop_) return;
  pending_ = sim_.schedule_at(first, [this] {
    pending_ = 0;
    frame_tick();
  });
}

void TraceVideoSource::frame_tick() {
  emit(flow_, (*trace_)[next_frame_]);
  next_frame_ = (next_frame_ + 1) % trace_->size();
  const TimePoint next = sim_.now() + params_.frame_period;
  if (next < stop_) {
    pending_ = sim_.schedule_at(next, [this] {
      pending_ = 0;
      frame_tick();
    });
  }
}

}  // namespace dqos
