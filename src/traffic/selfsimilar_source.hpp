/// \file selfsimilar_source.hpp
/// Self-similar internet-like traffic (Table 1, *Best-effort* and
/// *Background* classes): an on/off source emitting bursts of messages that
/// all head to the same destination, with Pareto-distributed message sizes
/// (Jain [10]) and Pareto burst lengths — the heavy tails that produce
/// self-similarity in aggregate.
#pragma once

#include <vector>

#include "traffic/patterns.hpp"
#include "traffic/source.hpp"
#include "util/distributions.hpp"

namespace dqos {

struct SelfSimilarParams {
  double target_bytes_per_sec = 0.0;
  TrafficClass tclass = TrafficClass::kBestEffort;  ///< or kBackground
  double size_alpha = 1.3;     ///< Pareto shape for message sizes
  std::uint32_t min_bytes = 128;
  std::uint32_t max_bytes = 100 * 1024;
  double burst_alpha = 1.5;    ///< Pareto shape for burst length (messages)
  double burst_min = 1.0;      ///< minimum burst length
  /// Messages within a burst are spaced at the class's fair line share to
  /// avoid an artificial single-instant dump.
  Duration intra_burst_gap = Duration::microseconds(2);
};

class SelfSimilarSource final : public TrafficSource {
 public:
  /// `flows_by_dst` — pre-admitted flow per destination host id
  /// (kInvalidFlow at the host's own id). Null pattern = uniform.
  SelfSimilarSource(Simulator& sim, Host& host, Rng rng, MetricsCollector* metrics,
                    std::vector<FlowId> flows_by_dst,
                    const SelfSimilarParams& params,
                    const DestinationPattern* pattern = nullptr);

  void start(TimePoint stop) override;
  /// Re-calibrates the on/off cycle for the new rate and abandons any
  /// in-progress burst. Rate 0 pauses the source until a later retarget.
  void retarget(double target_bytes_per_sec,
                const DestinationPattern* pattern) override;
  [[nodiscard]] TrafficClass tclass() const override { return params_.tclass; }

 private:
  void begin_burst();
  void burst_message();
  void schedule_next_burst();
  /// Derives mean_off_sec_ from the current target rate (0 = paused),
  /// re-deciding the intra-burst-gap clamp from the configured gap.
  void recalibrate();

  std::vector<FlowId> flows_by_dst_;
  SelfSimilarParams params_;
  const DestinationPattern* pattern_;
  std::unique_ptr<DestinationPattern> owned_;
  BoundedPareto size_dist_;
  Pareto burst_dist_;
  Duration configured_gap_;  ///< pre-clamp gap, restored on recalibrate
  double mean_off_sec_;
  // current burst state
  FlowId burst_flow_ = kInvalidFlow;
  std::uint32_t burst_left_ = 0;
};

}  // namespace dqos
