/// \file source.hpp
/// Workload sources implementing the paper's traffic model (Table 1, §4.2,
/// following the Network Processing Forum switch-fabric benchmark and
/// Jain's recommendations). Each source is attached to one host, draws from
/// its own RNG stream, and schedules its own arrival events until the stop
/// time.
#pragma once

#include <cstdint>

#include "host/host.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "util/rng.hpp"

namespace dqos {

class DestinationPattern;

class TrafficSource {
 public:
  TrafficSource(Simulator& sim, Host& host, Rng rng, MetricsCollector* metrics);
  virtual ~TrafficSource() = default;
  TrafficSource(const TrafficSource&) = delete;
  TrafficSource& operator=(const TrafficSource&) = delete;

  /// Begins generation; the source keeps scheduling arrivals until `stop`.
  /// May be called mid-run (churn): implementations set started_, record
  /// `stop` in stop_, and track their in-flight arrival event in pending_.
  virtual void start(TimePoint stop) = 0;

  /// Halts generation immediately: cancels the pending arrival event and
  /// pulls the stop time to now. Idempotent; safe before start(). A stopped
  /// source stays stopped (restart by constructing a new source).
  void stop();

  /// Re-aims a running source at a new offered rate (bytes/s; 0 pauses it
  /// until a later retarget) and optionally a new destination pattern
  /// (null = keep current). Fixed-rate sources (video) ignore this — their
  /// class shifts load by changing the stream population instead.
  virtual void retarget(double target_bytes_per_sec,
                        const DestinationPattern* pattern) {
    (void)target_bytes_per_sec;
    (void)pattern;
  }

  [[nodiscard]] virtual TrafficClass tclass() const = 0;
  [[nodiscard]] std::uint64_t messages_generated() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_generated() const { return bytes_; }
  /// Submissions the NIC refused (backlog cap, policer, shed flow).
  [[nodiscard]] std::uint64_t messages_refused() const { return refused_; }
  /// When the last chunk was handed to the NIC (zero before the first):
  /// the per-chunk enqueue timestamp degradation accounting keys off.
  [[nodiscard]] TimePoint last_enqueue() const { return last_enqueue_; }
  /// Application frames dropped at the source (late-B-frame policy); only
  /// video overrides this.
  [[nodiscard]] virtual std::uint64_t frames_dropped() const { return 0; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool stopped() const { return stopped_; }

 protected:
  /// Submits a message to the host NIC and records offered load.
  void emit(FlowId flow, std::uint64_t bytes);

  Simulator& sim_;
  Host& host_;
  Rng rng_;
  MetricsCollector* metrics_;
  TimePoint stop_ = TimePoint::max();
  /// The single in-flight arrival event (0 = none). Every subclass routes
  /// its self-scheduling chain through this so stop()/retarget() can
  /// cancel it; the ids of fired events are stale, so a missed clear is
  /// harmless, but keep it accurate for readability.
  EventId pending_ = 0;
  bool started_ = false;
  bool stopped_ = false;

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t refused_ = 0;
  TimePoint last_enqueue_ = TimePoint::zero();
};

}  // namespace dqos
