/// \file source.hpp
/// Workload sources implementing the paper's traffic model (Table 1, §4.2,
/// following the Network Processing Forum switch-fabric benchmark and
/// Jain's recommendations). Each source is attached to one host, draws from
/// its own RNG stream, and schedules its own arrival events until the stop
/// time.
#pragma once

#include <cstdint>

#include "host/host.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "util/rng.hpp"

namespace dqos {

class TrafficSource {
 public:
  TrafficSource(Simulator& sim, Host& host, Rng rng, MetricsCollector* metrics);
  virtual ~TrafficSource() = default;
  TrafficSource(const TrafficSource&) = delete;
  TrafficSource& operator=(const TrafficSource&) = delete;

  /// Begins generation; the source keeps scheduling arrivals until `stop`.
  virtual void start(TimePoint stop) = 0;

  [[nodiscard]] virtual TrafficClass tclass() const = 0;
  [[nodiscard]] std::uint64_t messages_generated() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_generated() const { return bytes_; }

 protected:
  /// Submits a message to the host NIC and records offered load.
  void emit(FlowId flow, std::uint64_t bytes);

  Simulator& sim_;
  Host& host_;
  Rng rng_;
  MetricsCollector* metrics_;
  TimePoint stop_ = TimePoint::max();

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace dqos
