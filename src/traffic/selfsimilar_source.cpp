#include "traffic/selfsimilar_source.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

SelfSimilarSource::SelfSimilarSource(Simulator& sim, Host& host, Rng rng,
                                     MetricsCollector* metrics,
                                     std::vector<FlowId> flows_by_dst,
                                     const SelfSimilarParams& params,
                                     const DestinationPattern* pattern)
    : TrafficSource(sim, host, rng, metrics),
      flows_by_dst_(std::move(flows_by_dst)),
      params_(params),
      pattern_(pattern),
      size_dist_(params.size_alpha, params.min_bytes, params.max_bytes),
      burst_dist_(params.burst_alpha, params.burst_min),
      configured_gap_(params.intra_burst_gap) {
  DQOS_EXPECTS(flows_by_dst_.size() >= 2);
  if (pattern_ == nullptr) {
    owned_ = make_pattern(PatternParams{},
                          static_cast<std::uint32_t>(flows_by_dst_.size()));
    pattern_ = owned_.get();
  }
  DQOS_EXPECTS(params.target_bytes_per_sec >= 0.0);  // 0 = paused until retarget
  recalibrate();
}

void SelfSimilarSource::recalibrate() {
  if (params_.target_bytes_per_sec <= 0.0) {
    mean_off_sec_ = 0.0;  // paused: schedule_next_burst becomes a no-op
    return;
  }
  // Calibrate the off period so the long-run rate hits the target:
  //   rate = E[burst bytes] / (E[burst duration] + E[off])
  // At high targets the configured intra-burst gap can exceed the whole
  // byte budget; drop the gap to zero (back-to-back burst) in that case so
  // calibration stays feasible. The clamp is re-decided from the
  // configured gap each time, so a rate drop can restore the gap.
  const double mean_burst_msgs = burst_dist_.mean();
  const double mean_burst_bytes = mean_burst_msgs * size_dist_.mean();
  const double budget_sec = mean_burst_bytes / params_.target_bytes_per_sec;
  params_.intra_burst_gap = configured_gap_;
  double mean_burst_dur = mean_burst_msgs * params_.intra_burst_gap.sec();
  if (mean_burst_dur >= 0.5 * budget_sec) {
    params_.intra_burst_gap = Duration::zero();
    mean_burst_dur = 0.0;
  }
  mean_off_sec_ = budget_sec - mean_burst_dur;
  DQOS_ENSURES(mean_off_sec_ > 0.0);
}

void SelfSimilarSource::start(TimePoint stop) {
  started_ = true;
  stop_ = stop;
  schedule_next_burst();
}

void SelfSimilarSource::retarget(double target_bytes_per_sec,
                                 const DestinationPattern* pattern) {
  DQOS_EXPECTS(target_bytes_per_sec >= 0.0);
  params_.target_bytes_per_sec = target_bytes_per_sec;
  if (pattern != nullptr) pattern_ = pattern;
  recalibrate();
  if (!started_ || stopped_) return;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
  // Abandon any burst in progress; the next burst draws fresh under the
  // new rate and pattern.
  burst_left_ = 0;
  burst_flow_ = kInvalidFlow;
  schedule_next_burst();
}

void SelfSimilarSource::schedule_next_burst() {
  if (mean_off_sec_ <= 0.0) return;  // paused (rate 0)
  const double wait = -mean_off_sec_ * std::log(rng_.uniform_pos());
  const TimePoint at = sim_.now() + Duration::from_seconds_double(wait);
  if (at >= stop_) return;
  pending_ = sim_.schedule_at(at, [this] {
    pending_ = 0;
    begin_burst();
  });
}

void SelfSimilarSource::begin_burst() {
  const NodeId dst = pattern_->pick(host_.id(), rng_);
  burst_flow_ = flows_by_dst_.at(dst);
  DQOS_ASSERT(burst_flow_ != kInvalidFlow);
  burst_left_ = static_cast<std::uint32_t>(std::lround(burst_dist_(rng_)));
  if (burst_left_ == 0) burst_left_ = 1;
  burst_message();
}

void SelfSimilarSource::burst_message() {
  const auto bytes = static_cast<std::uint64_t>(size_dist_(rng_));
  emit(burst_flow_, bytes);
  if (--burst_left_ > 0 && sim_.now() + params_.intra_burst_gap < stop_) {
    pending_ = sim_.schedule_after(params_.intra_burst_gap, [this] {
      pending_ = 0;
      burst_message();
    });
  } else {
    schedule_next_burst();
  }
}

}  // namespace dqos
