#include "traffic/selfsimilar_source.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

SelfSimilarSource::SelfSimilarSource(Simulator& sim, Host& host, Rng rng,
                                     MetricsCollector* metrics,
                                     std::vector<FlowId> flows_by_dst,
                                     const SelfSimilarParams& params,
                                     const DestinationPattern* pattern)
    : TrafficSource(sim, host, rng, metrics),
      flows_by_dst_(std::move(flows_by_dst)),
      params_(params),
      pattern_(pattern),
      size_dist_(params.size_alpha, params.min_bytes, params.max_bytes),
      burst_dist_(params.burst_alpha, params.burst_min) {
  DQOS_EXPECTS(flows_by_dst_.size() >= 2);
  if (pattern_ == nullptr) {
    owned_ = make_pattern(PatternParams{},
                          static_cast<std::uint32_t>(flows_by_dst_.size()));
    pattern_ = owned_.get();
  }
  DQOS_EXPECTS(params.target_bytes_per_sec > 0.0);
  // Calibrate the off period so the long-run rate hits the target:
  //   rate = E[burst bytes] / (E[burst duration] + E[off])
  // At high targets the configured intra-burst gap can exceed the whole
  // byte budget; drop the gap to zero (back-to-back burst) in that case so
  // calibration stays feasible.
  const double mean_burst_msgs = burst_dist_.mean();
  const double mean_burst_bytes = mean_burst_msgs * size_dist_.mean();
  const double budget_sec = mean_burst_bytes / params.target_bytes_per_sec;
  double mean_burst_dur = mean_burst_msgs * params.intra_burst_gap.sec();
  if (mean_burst_dur >= 0.5 * budget_sec) {
    params_.intra_burst_gap = Duration::zero();
    mean_burst_dur = 0.0;
  }
  mean_off_sec_ = budget_sec - mean_burst_dur;
  DQOS_ENSURES(mean_off_sec_ > 0.0);
}

void SelfSimilarSource::start(TimePoint stop) {
  stop_ = stop;
  schedule_next_burst();
}

void SelfSimilarSource::schedule_next_burst() {
  const double wait = -mean_off_sec_ * std::log(rng_.uniform_pos());
  const TimePoint at = sim_.now() + Duration::from_seconds_double(wait);
  if (at >= stop_) return;
  sim_.schedule_at(at, [this] { begin_burst(); });
}

void SelfSimilarSource::begin_burst() {
  const NodeId dst = pattern_->pick(host_.id(), rng_);
  burst_flow_ = flows_by_dst_.at(dst);
  DQOS_ASSERT(burst_flow_ != kInvalidFlow);
  burst_left_ = static_cast<std::uint32_t>(std::lround(burst_dist_(rng_)));
  if (burst_left_ == 0) burst_left_ = 1;
  burst_message();
}

void SelfSimilarSource::burst_message() {
  const auto bytes = static_cast<std::uint64_t>(size_dist_(rng_));
  emit(burst_flow_, bytes);
  if (--burst_left_ > 0 && sim_.now() + params_.intra_burst_gap < stop_) {
    sim_.schedule_after(params_.intra_burst_gap, [this] { burst_message(); });
  } else {
    schedule_next_burst();
  }
}

}  // namespace dqos
