#include "traffic/patterns.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"

namespace dqos {
namespace {

/// Self-avoidance for deterministic maps: step to the next host.
NodeId avoid_self(NodeId dst, NodeId src, std::uint32_t n) {
  return dst == src ? (dst + 1) % n : dst;
}

class UniformPattern final : public DestinationPattern {
 public:
  explicit UniformPattern(std::uint32_t n) : n_(n) { DQOS_EXPECTS(n >= 2); }
  NodeId pick(NodeId src, Rng& rng) const override {
    // Uniform over the n-1 others.
    return static_cast<NodeId>((src + 1 + rng.uniform_int(0, n_ - 2)) % n_);
  }
  PatternKind kind() const override { return PatternKind::kUniform; }

 private:
  std::uint32_t n_;
};

class HotSpotPattern final : public DestinationPattern {
 public:
  HotSpotPattern(std::uint32_t n, double fraction, NodeId hot)
      : uniform_(n), n_(n), fraction_(fraction), hot_(hot) {
    DQOS_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
    DQOS_EXPECTS(hot < n);
  }
  NodeId pick(NodeId src, Rng& rng) const override {
    if (src != hot_ && rng.chance(fraction_)) return hot_;
    return uniform_.pick(src, rng);
  }
  PatternKind kind() const override { return PatternKind::kHotSpot; }

 private:
  UniformPattern uniform_;
  std::uint32_t n_;
  double fraction_;
  NodeId hot_;
};

class BitComplementPattern final : public DestinationPattern {
 public:
  explicit BitComplementPattern(std::uint32_t n) : n_(n), mask_(n - 1) {
    DQOS_EXPECTS(n >= 2 && (n & (n - 1)) == 0);  // power of two
  }
  NodeId pick(NodeId src, Rng&) const override {
    return avoid_self((~src) & mask_, src, n_);
  }
  PatternKind kind() const override { return PatternKind::kBitComplement; }

 private:
  std::uint32_t n_;
  std::uint32_t mask_;
};

class TransposePattern final : public DestinationPattern {
 public:
  explicit TransposePattern(std::uint32_t n) : n_(n) {
    side_ = static_cast<std::uint32_t>(std::lround(std::sqrt(static_cast<double>(n))));
    DQOS_EXPECTS(side_ * side_ == n);  // square host count
  }
  NodeId pick(NodeId src, Rng&) const override {
    const std::uint32_t row = src / side_, col = src % side_;
    return avoid_self(col * side_ + row, src, n_);
  }
  PatternKind kind() const override { return PatternKind::kTranspose; }

 private:
  std::uint32_t n_;
  std::uint32_t side_;
};

class TornadoPattern final : public DestinationPattern {
 public:
  explicit TornadoPattern(std::uint32_t n) : n_(n) { DQOS_EXPECTS(n >= 2); }
  NodeId pick(NodeId src, Rng&) const override {
    return avoid_self((src + n_ / 2) % n_, src, n_);
  }
  PatternKind kind() const override { return PatternKind::kTornado; }

 private:
  std::uint32_t n_;
};

class PermutationPattern final : public DestinationPattern {
 public:
  PermutationPattern(std::uint32_t n, std::uint64_t seed) : map_(n) {
    DQOS_EXPECTS(n >= 2);
    std::iota(map_.begin(), map_.end(), NodeId{0});
    Rng rng(seed);
    // Fisher-Yates; then fix any fixed points by swapping with a neighbour.
    for (std::uint32_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::uint32_t>(rng.uniform_int(0, i));
      std::swap(map_[i], map_[j]);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (map_[i] == i) std::swap(map_[i], map_[(i + 1) % n]);
    }
  }
  NodeId pick(NodeId src, Rng&) const override {
    return avoid_self(map_[src], src, static_cast<std::uint32_t>(map_.size()));
  }
  PatternKind kind() const override { return PatternKind::kPermutation; }

 private:
  std::vector<NodeId> map_;
};

}  // namespace

std::string_view to_string(PatternKind k) {
  switch (k) {
    case PatternKind::kUniform: return "uniform";
    case PatternKind::kHotSpot: return "hotspot";
    case PatternKind::kBitComplement: return "bit-complement";
    case PatternKind::kTranspose: return "transpose";
    case PatternKind::kTornado: return "tornado";
    case PatternKind::kPermutation: return "permutation";
  }
  return "?";
}

std::unique_ptr<DestinationPattern> make_pattern(const PatternParams& params,
                                                 std::uint32_t num_hosts) {
  switch (params.kind) {
    case PatternKind::kUniform:
      return std::make_unique<UniformPattern>(num_hosts);
    case PatternKind::kHotSpot:
      return std::make_unique<HotSpotPattern>(num_hosts, params.hotspot_fraction,
                                              params.hotspot_node);
    case PatternKind::kBitComplement:
      return std::make_unique<BitComplementPattern>(num_hosts);
    case PatternKind::kTranspose:
      return std::make_unique<TransposePattern>(num_hosts);
    case PatternKind::kTornado:
      return std::make_unique<TornadoPattern>(num_hosts);
    case PatternKind::kPermutation:
      return std::make_unique<PermutationPattern>(num_hosts,
                                                  params.permutation_seed);
  }
  DQOS_ASSERT(false);
  return nullptr;
}

}  // namespace dqos
