/// \file control_source.hpp
/// *Control* traffic (Table 1): small messages, [128 B, 2 KB], to uniformly
/// random destinations, Poisson arrivals, demanding minimal latency. Rides
/// kControlLatency flows (deadline bandwidth = link rate, no reservation).
#pragma once

#include <vector>

#include "traffic/patterns.hpp"
#include "traffic/source.hpp"

namespace dqos {

struct ControlParams {
  double target_bytes_per_sec = 0.0;  ///< offered load for this source
  std::uint32_t min_bytes = 128;
  std::uint32_t max_bytes = 2048;
};

class ControlSource final : public TrafficSource {
 public:
  /// `flows_by_dst` — pre-admitted flow per destination host id
  /// (kInvalidFlow at `host.id()` itself). `pattern` selects destinations
  /// (non-owning; must outlive the source). Null pattern = uniform.
  ControlSource(Simulator& sim, Host& host, Rng rng, MetricsCollector* metrics,
                std::vector<FlowId> flows_by_dst, const ControlParams& params,
                const DestinationPattern* pattern = nullptr);

  void start(TimePoint stop) override;
  /// Rate 0 pauses the source; a later retarget resumes it.
  void retarget(double target_bytes_per_sec,
                const DestinationPattern* pattern) override;
  [[nodiscard]] TrafficClass tclass() const override {
    return TrafficClass::kControl;
  }

 private:
  void arrival();
  void schedule_next();

  std::vector<FlowId> flows_by_dst_;
  ControlParams params_;
  const DestinationPattern* pattern_;           // may be null (uniform)
  std::unique_ptr<DestinationPattern> owned_;   // fallback uniform pattern
  double mean_interarrival_sec_;
};

}  // namespace dqos
