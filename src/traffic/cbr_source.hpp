/// \file cbr_source.hpp
/// Constant-bit-rate source: fixed-size messages at a fixed period.
/// Not part of the paper's Table 1 mix; used by examples, unit tests and
/// the eligible-time ablation (a perfectly regular flow makes injection
/// smoothing directly observable).
#pragma once

#include "traffic/source.hpp"

namespace dqos {

struct CbrParams {
  std::uint32_t message_bytes = 2048;
  Duration period = Duration::microseconds(100);
  Duration phase = Duration::zero();  ///< offset of the first message
  TrafficClass tclass = TrafficClass::kMultimedia;
};

class CbrSource final : public TrafficSource {
 public:
  CbrSource(Simulator& sim, Host& host, Rng rng, MetricsCollector* metrics,
            FlowId flow, const CbrParams& params);

  void start(TimePoint stop) override;
  [[nodiscard]] TrafficClass tclass() const override { return params_.tclass; }

 private:
  void tick();

  FlowId flow_;
  CbrParams params_;
};

}  // namespace dqos
