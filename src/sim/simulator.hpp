/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// A single-threaded event calendar: components schedule closures at
/// absolute instants; the kernel fires them in (time, insertion-sequence)
/// order. The sequence tie-break makes runs bit-for-bit deterministic —
/// two events at the same instant always fire in the order they were
/// scheduled, independent of heap internals.
///
/// The kernel is deliberately minimal (Core Guidelines P.11: encapsulate
/// the messy construct once): no process abstraction, no channels — the
/// network components in src/switchfab and src/host are plain objects that
/// schedule their own wake-ups.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/contracts.hpp"
#include "util/time.hpp"

namespace dqos {

/// Opaque handle to a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated instant (global clock).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. `t` must not be in the past.
  EventId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` after a non-negative delay from now.
  EventId schedule_after(Duration d, std::function<void()> fn) {
    DQOS_EXPECTS(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op. Only ids still in the calendar are recorded for lazy deletion,
  /// and the record is pruned when the heap entry is popped, so repeated
  /// cancellation in a long run cannot grow memory without bound.
  void cancel(EventId id);

  /// Fires the next event. Returns false when the calendar is empty.
  bool step();

  /// Runs events with time <= `t`, then advances the clock to exactly `t`
  /// (even if the calendar empties earlier).
  void run_until(TimePoint t);

  /// Convenience: run_until(now + d).
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drains the calendar completely.
  void run();

  [[nodiscard]] std::uint64_t events_processed() const { return fired_; }
  /// Live (scheduled, not yet fired, not cancelled) events.
  [[nodiscard]] std::size_t events_pending() const { return pending_.size(); }
  /// Cancelled entries still awaiting heap removal (bounded by heap size;
  /// exposed for the regression test of the pruning behaviour).
  [[nodiscard]] std::size_t cancelled_pending() const { return cancelled_.size(); }

 private:
  struct Entry {
    TimePoint time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  /// Pops entries, skipping cancelled ones; returns false if empty.
  bool pop_next(Entry& out);

  TimePoint now_ = TimePoint::zero();
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    ///< ids currently live in the heap
  std::unordered_set<EventId> cancelled_;  ///< subset awaiting heap removal
};

}  // namespace dqos
