/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// A single-threaded event calendar: components schedule closures at
/// absolute instants; the kernel fires them in (time, insertion-sequence)
/// order. The sequence tie-break makes runs bit-for-bit deterministic —
/// two events at the same instant always fire in the order they were
/// scheduled, independent of heap internals.
///
/// The kernel is deliberately minimal (Core Guidelines P.11: encapsulate
/// the messy construct once): no process abstraction, no channels — the
/// network components in src/switchfab and src/host are plain objects that
/// schedule their own wake-ups.
///
/// Hot-path design (see DESIGN.md §7): closures are stored as InlineTask
/// (48-byte small-buffer, move-only — steady-state scheduling performs no
/// heap allocation), and the calendar is a calendar queue (Brown, CACM
/// '88) with a ladder-queue-style bottom rung: a power-of-two ring of
/// unsorted buckets, each covering a power-of-two time width, over a slot
/// table indexed by the event handle. Insertion is O(1) — shift, mask,
/// append — with no comparisons at all; the pop side harvests one
/// bucket-year at a time into a sorted "bottom" vector consumed by index,
/// so the per-event fast path is a plain array read (one amortized sort
/// replaces the per-pop bucket rescans of a textbook calendar queue, and
/// same-instant bursts cost one sort instead of a quadratic rescan).
/// Against the previous d-ary heap this removes the ~20 data-dependent
/// (≈unpredictable) sift branches per event that dominated the kernel
/// profile. The ring rebuilds itself — count-driven resize plus a periodic
/// width re-estimate from the observed *fire* rate (mean sim-time advance
/// per pop): the pending set mixes a dense near-now working set with
/// sparse ms-scale timers, so widths derived from pending-gap statistics
/// come out orders of magnitude too wide and cram the whole working set
/// into one bucket. Cancellation is O(1): the slot is tombstoned (closure
/// destroyed immediately) while the bucket entry dies lazily when the
/// harvest reaches it. Handles are generation-tagged slot indices; stale
/// handles from fired or cancelled events miss the generation check and
/// are no-ops.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_task.hpp"
#include "util/callback.hpp"
#include "util/contracts.hpp"
#include "util/time.hpp"

namespace dqos {

/// Opaque handle to a scheduled event, usable for cancellation. Zero is
/// never a valid handle (components use 0 as "no event armed").
using EventId = std::uint64_t;

struct ShardWindowLog;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated instant (global clock).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. `t` must not be in the past.
  /// Rvalue-reference (not by-value) on purpose: the closure is built once
  /// at the call site and relocated exactly once, into the slot table.
  EventId schedule_at(TimePoint t, InlineTask&& fn);

  /// Schedules `fn` after a non-negative delay from now.
  EventId schedule_after(Duration d, InlineTask&& fn) {
    DQOS_EXPECTS(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (the generation tag in the handle goes stale when the slot is
  /// reused). The closure is destroyed immediately. An entry still in a
  /// bucket is reclaimed lazily — in bulk, when the harvest sweep or a ring
  /// rebuild reaches it; an entry already harvested into the sorted bottom
  /// rung is located by (time, seq) binary search and blanked in place (no
  /// linear scan), recycling its slot immediately. Either way, repeated
  /// cancellation in a long run cannot grow memory without bound.
  void cancel(EventId id);

  /// Fires the next event. Returns false when the calendar is empty.
  bool step();

  /// Runs events with time <= `t`, then advances the clock to exactly `t`
  /// (even if the calendar empties earlier). Implemented as repeated
  /// drain_due() batches.
  void run_until(TimePoint t);

  /// Batch drain (DESIGN.md §11): fires every event due at or before
  /// `limit` out of the current bottom-rung window in one pass, skipping
  /// in-place tombstones in bulk and deferring the ring-maintenance checks
  /// to the batch boundary. Exactly the (time, seq) order of repeated
  /// step() calls — the rung is sorted, closures scheduled from inside the
  /// batch splice into it at their sorted position, and rebuild timing
  /// never affects fire order. Returns false when nothing at or before
  /// `limit` remains; run()/run_until() are loops over this.
  bool drain_due(TimePoint limit);

  /// Convenience: run_until(now + d).
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drains the calendar completely.
  void run();

  /// Test/diagnostic instrumentation: called after the clock advances and
  /// before each event's closure runs, with the event's scheduling sequence
  /// number (FIFO tie-break key; assigned 1, 2, 3, … in schedule order) and
  /// fire time. The golden-determinism test hashes this stream; keep the
  /// (seq, time) contract stable across kernel implementations. The hook is
  /// a raw Callback (fn-pointer + context) so instrumented builds stay
  /// type-erasure-free on the hot path; the context must outlive the run.
  void set_fire_hook(Callback<void(std::uint64_t, TimePoint)> hook) {
    fire_hook_ = hook;
  }

  [[nodiscard]] std::uint64_t events_processed() const { return fired_; }
  /// Live (scheduled, not yet fired, not cancelled) events.
  [[nodiscard]] std::size_t events_pending() const { return live_; }
  /// Cancelled entries still awaiting lazy bucket removal (bounded by the
  /// pending-entry count; exposed for the reclamation regression test).
  [[nodiscard]] std::size_t cancelled_pending() const { return tombstones_; }

  // --- Sharded-execution support (DESIGN.md §12) -------------------------
  //
  // The sharded conservative engine (shard_executor.hpp) runs one Simulator
  // per shard and reconstructs the serial engine's global sequence numbers
  // at window barriers. These hooks exist for that engine; a stand-alone
  // Simulator never needs them and pays one predictable branch plus one
  // pointer indirection on the schedule path for their existence.

  /// Provisional sequence numbers assigned during a shard window start
  /// here: above every final sequence a run can produce, so provisional
  /// keys order after finals at the same instant and encode their own
  /// registry index (seq - kProvSeqBase).
  static constexpr std::uint64_t kProvSeqBase = 1ULL << 62;

  /// Redirects sequence assignment to an external counter (the engine's
  /// shared global counter during serially-executed stretches), or back to
  /// the internal one (nullptr). A window log, when set, takes precedence.
  void set_seq_source(std::uint64_t* src);

  /// Enters (non-null) or leaves (null) window mode: sequence numbers come
  /// from the log's provisional counter and every schedule call is recorded
  /// as a kid of the currently-firing event. Only the sharded engine calls
  /// this.
  void set_window_log(ShardWindowLog* log);

  /// Schedules with a caller-chosen sequence number (a cross-shard arrival
  /// carrying its merge-assigned final seq). Bypasses kid logging.
  EventId schedule_keyed(TimePoint t, std::uint64_t seq, InlineTask&& fn);

  /// Replaces a pending event's sequence number in place (provisional ->
  /// final, at the barrier merge). The handle, slot and closure are
  /// untouched, so component-held EventIds stay valid. Returns false for a
  /// stale handle (the event fired or was cancelled meanwhile) — a no-op,
  /// matching the serial run where the sequence was consumed regardless.
  /// Precondition (asserted): the new key preserves calendar order, which
  /// the merge guarantees by assigning finals in fire order.
  bool rekey(EventId id, std::uint64_t new_seq);

  /// Peeks the earliest pending event's (time, seq) without extracting it.
  /// Returns false when the calendar is empty. May harvest buckets into the
  /// bottom rung (amortized; identical to what the next pop would do).
  bool peek_next(std::int64_t& time_ps, std::uint64_t& seq);

  /// Fires the next event only if it is due at or before `limit`. The
  /// engine uses this to interleave several calendars at one instant in
  /// global (time, seq) order.
  bool step_due(TimePoint limit);

  /// Window-mode batch drain: like drain_due, but records a FireRec (fire
  /// key + kid/effect ranges) per event into `log` and does NOT invoke the
  /// fire hook — the engine emits the hook stream at the barrier merge,
  /// once keys are final. Requires set_window_log(&log) to be in effect.
  bool drain_window(TimePoint limit, ShardWindowLog& log);

  /// Advances the clock without firing anything (the engine aligns every
  /// shard's clock to the run horizon once all calendars are past it).
  void advance_to(TimePoint t) {
    DQOS_EXPECTS(t >= now_);
    now_ = t;
  }

 private:
  /// One calendar entry's storage. The closure lives here; the bucket ring
  /// refers to slots by index. A slot is freed (generation bumped, index
  /// pushed on the free list) exactly once — when its entry is extracted.
  struct Slot {
    InlineTask fn;
    /// Copy of the entry's ordering key, written at schedule time: cancel()
    /// uses `time_ps < bottom_end_ps_` to decide whether the entry already
    /// sits in the (sorted) bottom rung and, if so, binary-searches it by
    /// (time, seq) instead of scanning.
    std::int64_t time_ps = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
    bool live = false;       ///< scheduled, not fired, not cancelled
    bool cancelled = false;  ///< tombstoned, awaiting lazy bucket removal
  };

  /// A bucket entry: 24 bytes, trivially movable, holds the full
  /// (time, seq) ordering key so bucket scans never touch the slot table.
  struct CalEntry {
    TimePoint time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Bottom-rung tombstone sentinel: cancel() of an already-harvested
  /// entry blanks the entry's slot index in place (the (time, seq) key is
  /// kept so the rung stays sorted); the drain skips such entries without
  /// loading the slot table, and the slot itself recycles immediately.
  static constexpr std::uint32_t kTombstoneSlot = 0xffffffffu;

  static constexpr std::size_t kMinBuckets = 256;      // power of two
  static constexpr std::size_t kMaxBuckets = 1u << 20;
  static constexpr unsigned kDefaultWidthShift = 10;   // 1024 ps buckets
  /// Pops between unconditional rebuilds: re-estimates the bucket width so
  /// the ring tracks workload phase changes (warmup → measure → drain)
  /// even when the pending count, which drives resize, stays flat.
  static constexpr std::uint32_t kRebuildPeriod = 1u << 16;

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// Strict total order of the calendar: earliest time first, FIFO among
  /// simultaneous events. Implementation-independent — any structure that
  /// pops in this order reproduces the golden fire sequence bit-for-bit.
  static bool earlier(const CalEntry& a, const CalEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  /// Function-object form for the sort/lower_bound call sites: a stateless
  /// functor inlines per comparison where a function pointer compiles to an
  /// indirect call — measurable on the refill path, which sorts ~a handful
  /// of entries a million times per second.
  struct Earlier {
    bool operator()(const CalEntry& a, const CalEntry& b) const {
      return earlier(a, b);
    }
  };

  void push_entry(CalEntry e);
  /// Refills the sorted bottom rung with the next non-empty bucket-year's
  /// due entries: sweeps forward from the bucket containing bottom_end_,
  /// falling back to a direct scan when a full revolution finds nothing
  /// due. Lazily-cancelled bucket entries are reclaimed here, in bulk,
  /// before the sort — tombstones are never sorted or drained. Returns
  /// false only when the calendar is empty.
  bool refill_bottom();
  /// Gathers every entry, re-estimates the bucket width from the observed
  /// fire rate (mean sim-time advance per pop since the last rebuild),
  /// resizes the ring to ~2 buckets per entry, and redistributes.
  /// O(entries + buckets); triggered by count thresholds and every
  /// kRebuildPeriod pops.
  void rebuild();
  [[nodiscard]] unsigned estimate_width_shift();
  void free_slot(std::uint32_t slot);
  /// Pops due entries, skipping tombstones; returns false when the calendar
  /// is empty or the earliest live entry is after `limit` (nothing is
  /// extracted in that case). On success the slot is already recycled and
  /// the closure moved to `fn`.
  bool pop_next(TimePoint limit, TimePoint& t, std::uint64_t& seq, InlineTask& fn);

  TimePoint now_ = TimePoint::zero();
  std::uint64_t next_seq_ = 1;
  /// Where schedule_at draws sequence numbers from: the internal counter,
  /// an engine-shared global counter, or the window log's provisional
  /// counter. Self-reference is safe — Simulator is neither copyable nor
  /// movable.
  std::uint64_t* seq_src_ = &next_seq_;
  std::uint64_t* ext_seq_ = nullptr;
  ShardWindowLog* wlog_ = nullptr;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<std::vector<CalEntry>> buckets_{kMinBuckets};
  std::size_t bucket_mask_ = kMinBuckets - 1;
  unsigned width_shift_ = kDefaultWidthShift;
  std::size_t entries_ = 0;  ///< live + tombstoned entries (buckets + bottom)
  /// Bottom rung (ladder-queue style): the already-harvested due window,
  /// sorted ascending by (time, seq) and consumed by index. Every pending
  /// entry with time < bottom_end_ps_ lives here — the pop fast path is an
  /// array read, and short-delay inserts binary-search into the tail.
  std::vector<CalEntry> bottom_;
  std::size_t bottom_idx_ = 0;
  std::int64_t bottom_end_ps_ = 0;  ///< exclusive upper edge of the window
  std::uint32_t pops_since_rebuild_ = 0;
  std::int64_t last_rebuild_now_ps_ = 0;  ///< fire-rate window anchor
  std::vector<CalEntry> scratch_;     ///< rebuild staging (retains capacity)
  std::vector<std::int64_t> times_;   ///< width-estimation staging
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Callback<void(std::uint64_t, TimePoint)> fire_hook_;
};

}  // namespace dqos
