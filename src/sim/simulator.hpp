/// \file simulator.hpp
/// Discrete-event simulation kernel.
///
/// A single-threaded event calendar: components schedule closures at
/// absolute instants; the kernel fires them in (time, insertion-sequence)
/// order. The sequence tie-break makes runs bit-for-bit deterministic —
/// two events at the same instant always fire in the order they were
/// scheduled, independent of heap internals.
///
/// The kernel is deliberately minimal (Core Guidelines P.11: encapsulate
/// the messy construct once): no process abstraction, no channels — the
/// network components in src/switchfab and src/host are plain objects that
/// schedule their own wake-ups.
///
/// Hot-path design (see DESIGN.md §7): closures are stored as InlineTask
/// (48-byte small-buffer, move-only — steady-state scheduling performs no
/// heap allocation), and the calendar is a 4-ary heap of 24-byte nodes
/// over a slot table indexed by the event handle. Cancellation is O(1):
/// the slot is tombstoned (and its closure destroyed immediately) while
/// the heap node dies lazily on pop, so the pop path does no hash lookups
/// at all. Handles are generation-tagged slot indices; stale handles from
/// fired or cancelled events miss the generation check and are no-ops.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/inline_task.hpp"
#include "util/contracts.hpp"
#include "util/time.hpp"

namespace dqos {

/// Opaque handle to a scheduled event, usable for cancellation. Zero is
/// never a valid handle (components use 0 as "no event armed").
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated instant (global clock).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. `t` must not be in the past.
  EventId schedule_at(TimePoint t, InlineTask fn);

  /// Schedules `fn` after a non-negative delay from now.
  EventId schedule_after(Duration d, InlineTask fn) {
    DQOS_EXPECTS(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (the generation tag in the handle goes stale when the slot is
  /// reused). The closure is destroyed immediately; the heap node is
  /// reclaimed when it reaches the top, so repeated cancellation in a long
  /// run cannot grow memory without bound.
  void cancel(EventId id);

  /// Fires the next event. Returns false when the calendar is empty.
  bool step();

  /// Runs events with time <= `t`, then advances the clock to exactly `t`
  /// (even if the calendar empties earlier).
  void run_until(TimePoint t);

  /// Convenience: run_until(now + d).
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drains the calendar completely.
  void run();

  /// Test/diagnostic instrumentation: called after the clock advances and
  /// before each event's closure runs, with the event's scheduling sequence
  /// number (FIFO tie-break key; assigned 1, 2, 3, … in schedule order) and
  /// fire time. The golden-determinism test hashes this stream; keep the
  /// (seq, time) contract stable across kernel implementations.
  void set_fire_hook(std::function<void(std::uint64_t, TimePoint)> hook) {
    fire_hook_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t events_processed() const { return fired_; }
  /// Live (scheduled, not yet fired, not cancelled) events.
  [[nodiscard]] std::size_t events_pending() const { return live_; }
  /// Cancelled entries still awaiting heap removal (bounded by heap size;
  /// exposed for the regression test of the pruning behaviour).
  [[nodiscard]] std::size_t cancelled_pending() const { return tombstones_; }

 private:
  /// One calendar entry's storage. The closure lives here; the heap refers
  /// to slots by index. A slot is freed (generation bumped, index pushed on
  /// the free list) exactly once — when its heap node is popped.
  struct Slot {
    InlineTask fn;
    std::uint32_t gen = 1;
    bool live = false;       ///< scheduled, not fired, not cancelled
    bool cancelled = false;  ///< tombstoned, awaiting lazy heap removal
  };

  /// A 4-ary min-heap node: 24 bytes, trivially movable, holds the full
  /// (time, seq) ordering key so sift compares never touch the slot table.
  struct HeapNode {
    TimePoint time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static constexpr std::size_t kArity = 4;

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// Strict-weak order of the calendar: earliest time first, FIFO among
  /// simultaneous events.
  static bool earlier(const HeapNode& a, const HeapNode& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_root();
  void free_slot(std::uint32_t slot);
  /// Pops entries, skipping tombstones; returns false if empty. On success
  /// the slot is already recycled and the closure moved to `fn`.
  bool pop_next(TimePoint& t, std::uint64_t& seq, InlineTask& fn);
  /// Discards tombstoned entries at the heap root (peek must see a live
  /// head to decide whether it is due).
  void prune_cancelled_head();

  TimePoint now_ = TimePoint::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<HeapNode> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::function<void(std::uint64_t, TimePoint)> fire_hook_;
};

}  // namespace dqos
