/// \file shard_executor.hpp
/// Sharded conservative parallel discrete-event engine (DESIGN.md §12).
///
/// Runs one Simulator (calendar queue) per shard plus the caller-owned
/// "control" Simulator that carries run-orchestration events (phase
/// transitions, churn, audits, probes, fault scripts). Execution
/// alternates between two regimes:
///
///  - **Windows** (parallel): when every calendar's next event is a data
///    event, the engine computes the conservative safe horizon
///    H = min(T_min + L, T_ctrl, T_end+1) — T_min the global minimum
///    next-event time, L the minimum cross-shard link latency (the
///    lookahead), T_ctrl the control calendar's next event — and every
///    shard drains its own calendar up to H-1 concurrently. Cross-shard
///    interactions ride mailboxes and, by the lookahead bound, land at or
///    after H: no shard can affect another inside a window.
///
///  - **Serial instants**: when the control calendar is due (T_ctrl <=
///    T_min), the engine executes *every* calendar's events at exactly
///    that instant on one thread, interleaved in global (time, seq) order
///    — control events may touch any shard's state, so the engine simply
///    degenerates to the serial execution for that instant.
///
/// Bit-identical output: during windows shards assign provisional keys;
/// at each window barrier the coordinator k-way-merges the shards' fire
/// logs in global (time, key) order and replays the serial kernel's
/// sequence assignment (see shard_link.hpp), emits the fire-hook stream,
/// applies deferred side effects in merged order, stamps and delivers
/// mailbox messages, and invokes a reconciliation hook for sender-owned
/// accounting. The result of a run is byte-identical to the serial
/// engine's at any shard count.
///
/// Threading: shard 0 is drained by the coordinating (calling) thread;
/// shards 1..N-1 each get a persistent worker synchronized by an
/// epoch/arrival spin barrier (exponential backoff, then yield — the
/// engine stays live-lock-free even when oversubscribed). `use_threads =
/// false` drains all shards sequentially on the caller thread with the
/// identical window/merge machinery — same output, no thread overhead;
/// useful on single-core machines and for debugging.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/shard_link.hpp"
#include "sim/simulator.hpp"
#include "util/callback.hpp"

namespace dqos {

class ShardExecutor {
 public:
  /// `lookahead_ps` must be positive: it is the conservative bound under
  /// which windows make progress (the minimum cross-shard wire latency).
  ShardExecutor(Simulator& control, std::uint32_t num_shards,
                std::int64_t lookahead_ps, bool use_threads);
  ~ShardExecutor();
  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(sims_.size());
  }
  [[nodiscard]] Simulator& shard_sim(std::uint32_t s) { return *sims_[s]; }
  [[nodiscard]] Simulator& control() { return control_; }
  [[nodiscard]] ShardWindowLog& log(std::uint32_t s) { return logs_[s]; }
  [[nodiscard]] std::vector<CrossArrivalNote>& arrival_notes(std::uint32_t s) {
    return notes_[s];
  }

  /// True while a parallel window is in flight. Cross-shard components
  /// (Channel, metrics relays) branch on this to pick the mailbox/deferral
  /// path; outside windows they behave exactly serially. Written only by
  /// the coordinator while workers are parked at the barrier.
  [[nodiscard]] const bool* window_active_flag() const {
    return &window_active_;
  }
  /// Monotone window counter — lets receiver-side per-window caches
  /// (credit folding) invalidate without being cleared at every barrier.
  [[nodiscard]] std::uint64_t window_id() const { return window_id_; }

  /// Golden fire-order hook: receives exactly the serial engine's
  /// (seq, time) stream — emitted live at serial instants, replayed at the
  /// barrier merge for window events.
  void set_fire_hook(Callback<void(std::uint64_t, TimePoint)> hook);
  /// Applies one deferred side effect (metrics record, flow abort) during
  /// the merge replay. Installed by the network layer.
  void set_effect_sink(Callback<void(const DeferredEffect&)> sink) {
    effect_sink_ = sink;
  }
  /// Runs after every barrier's merge + mailbox delivery, while all
  /// workers are parked: the network layer reconciles sender-owned wire
  /// accounting and drains cross-shard pool-free lanes here.
  void set_barrier_hook(Callback<void()> hook) { barrier_hook_ = hook; }

  /// Runs all calendars (control + shards) up to and including `t`, then
  /// aligns every clock to exactly `t` — the sharded equivalent of
  /// Simulator::run_until.
  void run_until(TimePoint t);

  [[nodiscard]] std::uint64_t events_processed() const;
  /// Live (scheduled, uncancelled) events across all calendars — the
  /// whole-engine analogue of Simulator::events_pending.
  [[nodiscard]] std::size_t events_pending() const;
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  [[nodiscard]] std::uint64_t instants_run() const { return instants_; }
  [[nodiscard]] std::uint64_t cross_messages() const { return cross_msgs_; }
  [[nodiscard]] std::int64_t lookahead_ps() const { return lookahead_ps_; }
  [[nodiscard]] bool threaded() const { return !workers_.empty(); }

  /// The engine-global serial sequence counter. The network layer points
  /// every Simulator (control + shards) at this source so construction,
  /// workload setup and serial instants consume exactly the serial run's
  /// sequence numbers; the barrier merge draws kids' final numbers from the
  /// same counter.
  [[nodiscard]] std::uint64_t* global_seq_source() { return &global_seq_; }

 private:
  static std::int64_t peek_time(Simulator& sim);
  void run_window(std::int64_t limit_ps);
  void run_instant(std::int64_t t_ps);
  void merge_and_transfer();
  void drain_shard(std::uint32_t s);
  void worker_main(std::uint32_t s);

  Simulator& control_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<ShardWindowLog> logs_;
  std::vector<std::vector<CrossArrivalNote>> notes_;
  std::vector<std::uint32_t> cursor_;  ///< merge cursors (scratch)
  std::int64_t lookahead_ps_;
  std::uint64_t global_seq_ = 1;

  Callback<void(std::uint64_t, TimePoint)> hook_;
  Callback<void(const DeferredEffect&)> effect_sink_;
  Callback<void()> barrier_hook_;

  bool window_active_ = false;
  std::uint64_t window_id_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t instants_ = 0;
  std::uint64_t cross_msgs_ = 0;
  std::int64_t window_limit_ps_ = 0;

  // Epoch/arrival barrier. The coordinator publishes window parameters,
  // then bumps epoch_ (release); workers spin on epoch_ (acquire), drain,
  // and bump arrived_ (release); the coordinator spins on arrived_
  // (acquire). Each handoff is a full happens-before edge, so the logs and
  // calendars need no further synchronization.
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace dqos
