/// \file inline_task.hpp
/// Move-only callable for the event calendar, optimized for zero heap
/// allocations on the scheduling hot path.
///
/// Every scheduled event in the simulator is a small closure — typically
/// `[this, vc, bytes]` or `[this, p = std::move(packet), out]`, 16–40
/// bytes. `std::function` stores anything beyond its 16-byte small buffer
/// on the general heap *and* requires copyability, which forced
/// `shared_ptr<PacketPtr>` shims around move-only packets. InlineTask fixes
/// both:
///
///   - a 48-byte inline buffer holds every hot-path closure in place
///     (no allocation, no pointer chase on invoke);
///   - move-only targets (unique_ptr captures) are supported directly;
///   - closures that do overflow the buffer fall back to a thread-local
///     slab of fixed-size blocks, recycled on a free list, so even the
///     cold path stops paying one malloc/free per event in steady state.
///
/// Thread model: tasks are created, invoked, and destroyed on the thread
/// that owns their Simulator (each replica of a parallel sweep is
/// single-threaded). Slab blocks are individually heap-allocated, so a
/// block released on a different thread than the one that allocated it is
/// still safe — it simply joins the releasing thread's free list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace dqos {

namespace detail {

/// Thread-local recycling allocator for oversized task closures. Fixed
/// block size keeps the free list trivially reusable; blocks are plain
/// `operator new` allocations, freed for real only when the owning thread
/// exits (so sanitizers see no leaks).
class TaskSlab {
 public:
  /// Generous upper bound: any closure the simulator schedules should be
  /// far below this; bigger ones use plain operator new.
  static constexpr std::size_t kBlockBytes = 192;

  static void* allocate() {
    TaskSlab& s = instance();
    if (s.free_.empty()) {
      return ::operator new(kBlockBytes, std::align_val_t{alignof(std::max_align_t)});
    }
    void* p = s.free_.back();
    s.free_.pop_back();
    return p;
  }

  static void deallocate(void* p) { instance().free_.push_back(p); }

  ~TaskSlab() {
    for (void* p : free_) {
      ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
    }
  }

 private:
  static TaskSlab& instance() {
    thread_local TaskSlab slab;
    return slab;
  }
  std::vector<void*> free_;
};

}  // namespace detail

/// Opt-in relocatability: `true` when move-constructing a `T` into fresh
/// storage and then destroying the source is equivalent to memcpy'ing the
/// object representation and *never* destroying the source. Trivially
/// copyable types qualify automatically. Move-only closure structs whose
/// captures are pointer-like (PacketPtr, raw pointers, scalars) specialize
/// this to route their relocation through InlineTask's branch-free memcpy
/// path instead of an indirect `relocate` call — each packet hop relocates
/// its arrival closure twice (into the slot table at schedule, out of it at
/// fire), so the indirect calls are measurable at datapath rates. The
/// specializing type promises its moved-from state owns nothing that the
/// skipped destructor call would have released (a null unique_ptr does not).
template <typename T>
struct is_trivially_relocatable : std::is_trivially_copyable<T> {};
template <typename T>
inline constexpr bool is_trivially_relocatable_v =
    is_trivially_relocatable<T>::value;

/// A move-only `void()` callable with a 48-byte small-buffer optimization
/// and slab-allocated overflow. Drop-in replacement for
/// `std::function<void()>` on the Simulator API (minus copyability).
class InlineTask {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  InlineTask() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineTask> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineTask(F&& f) {  // NOLINT(google-explicit-constructor) — mirrors std::function
    constexpr bool kInline = sizeof(D) <= kInlineBytes &&
                             alignof(D) <= alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<D>;
    if constexpr (kInline) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::kOps;
    } else if constexpr (sizeof(D) <= detail::TaskSlab::kBlockBytes &&
                         alignof(D) <= alignof(std::max_align_t)) {
      void* mem = detail::TaskSlab::allocate();
      ::new (mem) D(std::forward<F>(f));
      ptr() = mem;
      ops_ = &HeapOps<D, true>::kOps;
    } else {
      void* mem = ::operator new(sizeof(D), std::align_val_t{alignof(D)});
      ::new (mem) D(std::forward<F>(f));
      ptr() = mem;
      ops_ = &HeapOps<D, false>::kOps;
    }
  }

  InlineTask(InlineTask&& other) noexcept {
    if (other.ops_ != nullptr) {
      // Most hot-path closures capture `this` plus scalars: trivially
      // copyable, trivially destructible. Relocating those with a fixed
      // 48-byte memcpy (vectorized, branch-free) instead of an indirect
      // call matters at millions of schedule/fire pairs per second; heap
      // targets relocate by pointer, so the same memcpy moves them too.
      if (other.ops_->trivial_relocate) {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      } else {
        other.ops_->relocate(*this, other);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        if (other.ops_->trivial_relocate) {
          std::memcpy(buf_, other.buf_, kInlineBytes);
        } else {
          other.ops_->relocate(*this, other);
        }
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    DQOS_EXPECTS(ops_ != nullptr);
    ops_->invoke(*this);
  }

 private:
  struct Ops {
    void (*invoke)(InlineTask&);
    /// Move-construct the target into raw `dst` storage, destroying `src`'s.
    void (*relocate)(InlineTask& dst, InlineTask& src) noexcept;
    void (*destroy)(InlineTask&) noexcept;
    /// Relocation is equivalent to memcpy of the buffer (trivially copyable
    /// inline targets, or heap targets whose buffer holds just a pointer).
    bool trivial_relocate;
    /// Destruction is a no-op (trivially destructible inline targets).
    bool trivial_destroy;
  };

  [[nodiscard]] void*& ptr() { return *reinterpret_cast<void**>(buf_); }

  template <typename D>
  struct InlineOps {
    static D& target(InlineTask& t) {
      return *std::launder(reinterpret_cast<D*>(t.buf_));
    }
    static void invoke(InlineTask& t) { target(t)(); }
    static void relocate(InlineTask& dst, InlineTask& src) noexcept {
      ::new (static_cast<void*>(dst.buf_)) D(std::move(target(src)));
      target(src).~D();
    }
    static void destroy(InlineTask& t) noexcept { target(t).~D(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy,
                              is_trivially_relocatable_v<D>,
                              std::is_trivially_destructible_v<D>};
  };

  template <typename D, bool kSlab>
  struct HeapOps {
    static D& target(InlineTask& t) { return *static_cast<D*>(t.ptr()); }
    static void invoke(InlineTask& t) { target(t)(); }
    static void relocate(InlineTask& dst, InlineTask& src) noexcept {
      dst.ptr() = src.ptr();  // ownership transfer: just move the pointer
    }
    static void destroy(InlineTask& t) noexcept {
      D* d = &target(t);
      d->~D();
      if constexpr (kSlab) {
        detail::TaskSlab::deallocate(t.ptr());
      } else {
        ::operator delete(t.ptr(), std::align_val_t{alignof(D)});
      }
    }
    // Heap targets: the inline buffer holds only the owning pointer, so a
    // buffer memcpy *is* the ownership transfer; destruction is real.
    static constexpr Ops kOps{&invoke, &relocate, &destroy, true, false};
  };

  // Zero-initialized so the fixed-size relocation memcpy never reads
  // indeterminate tail bytes when the stored closure is smaller than the
  // buffer (three vector stores; noise next to the indirect call it saves).
  alignas(std::max_align_t) std::byte buf_[kInlineBytes] = {};
  const Ops* ops_ = nullptr;
};

}  // namespace dqos
