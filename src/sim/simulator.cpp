// The calendar is the event store: slot, FIFO, and tier growth in this
// file is amortized doubling over arrays the steady state never shrinks,
// reviewed as a whole. Hot callers (drain_window, try_fill) still keep
// their own bodies allocation-free.
// dqos-lint: allow-file(hot-path-transitive)
#include "sim/simulator.hpp"

#include <algorithm>

#include "sim/shard_link.hpp"

namespace dqos {

EventId Simulator::schedule_at(TimePoint t, InlineTask&& fn) {
  DQOS_EXPECTS(t >= now_);
  DQOS_EXPECTS(static_cast<bool>(fn));
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  s.time_ps = t.ps();
  const std::uint64_t seq = (*seq_src_)++;
  s.seq = seq;
  push_entry(CalEntry{t, seq, slot});
  ++live_;
  const EventId id = make_id(s.gen, slot);
  if (wlog_ != nullptr) {
    // Window mode: this schedule is a kid of the currently-firing event.
    // The provisional key doubles as the registry index.
    DQOS_ASSERT(seq >= kProvSeqBase);
    wlog_->kids.push_back(seq);
    wlog_->prov_ids.push_back(id);
    wlog_->prov_fired.push_back(0);
  }
  return id;
}

EventId Simulator::schedule_keyed(TimePoint t, std::uint64_t seq,
                                  InlineTask&& fn) {
  DQOS_EXPECTS(t >= now_);
  DQOS_EXPECTS(static_cast<bool>(fn));
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  s.time_ps = t.ps();
  s.seq = seq;
  push_entry(CalEntry{t, seq, slot});
  ++live_;
  return make_id(s.gen, slot);
}

void Simulator::set_seq_source(std::uint64_t* src) {
  ext_seq_ = src;
  if (wlog_ == nullptr) seq_src_ = src != nullptr ? src : &next_seq_;
}

void Simulator::set_window_log(ShardWindowLog* log) {
  wlog_ = log;
  if (log != nullptr) {
    seq_src_ = &log->window_seq;
  } else {
    seq_src_ = ext_seq_ != nullptr ? ext_seq_ : &next_seq_;
  }
}

bool Simulator::rekey(EventId id, std::uint64_t new_seq) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return false;
  if (s.time_ps < bottom_end_ps_) {
    // Harvested into the sorted bottom rung: locate by the old key and
    // update in place. Order is preserved — the merge assigns final keys in
    // the rung's own (time, provisional) order, and every final assigned
    // this window exceeds every pre-window final still pending.
    const CalEntry key{TimePoint::from_ps(s.time_ps), s.seq, slot};
    const auto it = std::lower_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_idx_),
        bottom_.end(), key, Earlier{});
    DQOS_ASSERT(it != bottom_.end() && it->seq == key.seq && it->slot == slot);
    it->seq = new_seq;
    DQOS_ASSERT(it == bottom_.begin() +
                          static_cast<std::ptrdiff_t>(bottom_idx_) ||
                earlier(*(it - 1), *it));
    DQOS_ASSERT(it + 1 == bottom_.end() || earlier(*it, *(it + 1)));
  } else {
    // Still in an (unsorted) bucket: a live slot has exactly one entry, so
    // matching the slot index suffices. Buckets hold roughly a bucket-year
    // of events by design, so the scan is short.
    std::vector<CalEntry>& vec =
        buckets_[static_cast<std::size_t>(s.time_ps >> width_shift_) &
                 bucket_mask_];
    bool found = false;
    for (CalEntry& e : vec) {
      if (e.slot == slot) {
        DQOS_ASSERT(e.seq == s.seq);
        e.seq = new_seq;
        found = true;
        break;
      }
    }
    DQOS_ASSERT(found);
    static_cast<void>(found);
  }
  s.seq = new_seq;
  return true;
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Fired/cancelled/reused slots fail the live || generation check: no
  // residue, so schedule/fire/cancel cycles cannot grow memory unboundedly.
  if (!s.live || s.gen != gen) return;
  s.live = false;
  s.fn.reset();  // release captures now
  --live_;
  if (s.time_ps < bottom_end_ps_) {
    // Already harvested into the bottom rung: every pending entry with
    // time < bottom_end_ps_ lives in bottom_[bottom_idx_..), sorted by
    // (time, seq). Binary-search the exact entry and blank its slot index
    // in place — no linear scan, and the slot recycles immediately. The
    // blank entry keeps its key so the rung stays sorted; the drain skips
    // it without a slot-table load.
    const CalEntry key{TimePoint::from_ps(s.time_ps), s.seq, slot};
    const auto it = std::lower_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_idx_),
        bottom_.end(), key, Earlier{});
    DQOS_ASSERT(it != bottom_.end() && it->seq == key.seq && it->slot == slot);
    it->slot = kTombstoneSlot;
    free_slot(slot);
    return;
  }
  s.cancelled = true;  // the bucket entry dies lazily at harvest/rebuild
  ++tombstones_;
}

void Simulator::push_entry(const CalEntry e) {
  if (e.time.ps() < bottom_end_ps_) {
    // Due inside the already-harvested window: keep the bottom rung
    // exhaustive and sorted. The insert position is at or after the
    // consumption index (e.time >= now_ >= last popped entry).
    const auto it = std::lower_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_idx_),
        bottom_.end(), e, Earlier{});
    bottom_.insert(it, e);
  } else {
    buckets_[static_cast<std::size_t>(e.time.ps() >> width_shift_) &
             bucket_mask_]
        .push_back(e);
  }
  ++entries_;
  if (entries_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    rebuild();
  }
}

bool Simulator::refill_bottom() {
  bottom_.clear();
  bottom_idx_ = 0;
  // Harvests one bucket's current-year entries into bottom_, reclaiming
  // lazily-cancelled ones on the way: tombstones die here in bulk, before
  // the sort, so the drain never sees them.
  const auto harvest = [this](std::int64_t abs) {
    std::vector<CalEntry>& vec =
        buckets_[static_cast<std::size_t>(abs) & bucket_mask_];
    const std::int64_t limit = (abs + 1) << width_shift_;
    if (tombstones_ == 0) {
      // Tombstone-free calendar (the steady-state datapath): skip the
      // per-entry slot-table load — a random-access cache miss per event —
      // and just split the bucket into due and future-year entries.
      for (std::size_t i = 0; i < vec.size();) {
        if (vec[i].time.ps() >= limit) {
          ++i;
          continue;
        }
        bottom_.push_back(vec[i]);
        vec[i] = vec.back();
        vec.pop_back();
      }
      return limit;
    }
    for (std::size_t i = 0; i < vec.size();) {
      if (vec[i].time.ps() >= limit) {
        ++i;
        continue;
      }
      const CalEntry e = vec[i];
      vec[i] = vec.back();
      vec.pop_back();
      if (slots_[e.slot].cancelled) {
        free_slot(e.slot);
        --tombstones_;
        --entries_;
      } else {
        bottom_.push_back(e);
      }
    }
    return limit;
  };
  while (entries_ != 0) {
    const std::size_t nbuckets = bucket_mask_ + 1;
    std::int64_t abs = bottom_end_ps_ >> width_shift_;
    for (std::size_t step = 0; step < nbuckets; ++step, ++abs) {
      if (buckets_[static_cast<std::size_t>(abs) & bucket_mask_].empty()) {
        continue;
      }
      // Harvest this bucket's current-year entries. A skipped (future-year)
      // entry is at least a full ring revolution away, so it cannot beat
      // anything harvested further ahead in this sweep.
      const std::int64_t limit = harvest(abs);
      if (!bottom_.empty()) {
        std::sort(bottom_.begin(), bottom_.end(), Earlier{});
        bottom_end_ps_ = limit;
        return true;
      }
      // The year held only tombstones (all just reclaimed): advance the
      // window past it and keep sweeping.
      bottom_end_ps_ = limit;
      if (entries_ == 0) return false;
    }
    // A full revolution found nothing due: the pending set is sparse and
    // far ahead (a drained network waiting on ms-scale timers). Direct scan
    // for the earliest entry, then harvest its bucket-year.
    std::int64_t min_ps = 0;
    bool have = false;
    for (const std::vector<CalEntry>& vec : buckets_) {
      for (const CalEntry& e : vec) {
        if (!have || e.time.ps() < min_ps) {
          min_ps = e.time.ps();
          have = true;
        }
      }
    }
    DQOS_ASSERT(have);
    bottom_end_ps_ = harvest(min_ps >> width_shift_);
    if (!bottom_.empty()) {
      std::sort(bottom_.begin(), bottom_.end(), Earlier{});
      return true;
    }
    // That year, too, was all tombstones; loop (entries_ re-checked above).
  }
  return false;
}

unsigned Simulator::estimate_width_shift() {
  // The cursor bucket accumulates every event due inside its window, and
  // each harvest rescans it — so occupancy there is governed by the *fire*
  // rate, not by gaps in a pending-set snapshot (a snapshot mixes the
  // dense near-now working set with sparse far-out timers and lands on a
  // width orders of magnitude too wide). Width ≈ 4 mean inter-fire gaps
  // keeps the rescan a handful of entries; wider years were measured
  // slower — they push short serialization delays onto the sorted-rung
  // insert path (DESIGN.md §11).
  if (pops_since_rebuild_ >= 64) {
    const std::int64_t advance = now_.ps() - last_rebuild_now_ps_;
    const std::int64_t target = advance * 4 / pops_since_rebuild_;
    unsigned shift = 0;
    while ((std::int64_t{1} << shift) < target && shift < 40) ++shift;
    return shift;
  }
  // No fire history yet (count-triggered rebuild during a scheduling
  // burst): fall back to the median positive gap between pending entries.
  if (scratch_.size() < 8) return width_shift_;
  times_.clear();
  const std::size_t stride = scratch_.size() / 4096 + 1;
  for (std::size_t i = 0; i < scratch_.size(); i += stride) {
    times_.push_back(scratch_[i].time.ps());
  }
  std::sort(times_.begin(), times_.end());
  std::size_t ngaps = 0;
  for (std::size_t i = 1; i < times_.size(); ++i) {
    const std::int64_t gap = times_[i] - times_[i - 1];
    if (gap > 0) times_[ngaps++] = gap;
  }
  if (ngaps == 0) return width_shift_;
  std::nth_element(times_.begin(),
                   times_.begin() + static_cast<std::ptrdiff_t>(ngaps / 2),
                   times_.begin() + static_cast<std::ptrdiff_t>(ngaps));
  const std::int64_t target = times_[ngaps / 2] * 4;
  unsigned shift = 0;
  while ((std::int64_t{1} << shift) < target && shift < 40) ++shift;
  return shift;
}

void Simulator::rebuild() {
  scratch_.clear();
  for (std::size_t i = bottom_idx_; i < bottom_.size(); ++i) {
    if (bottom_[i].slot == kTombstoneSlot) {
      --entries_;  // cancelled in place; drop the blank entry
    } else {
      scratch_.push_back(bottom_[i]);
    }
  }
  bottom_.clear();
  bottom_idx_ = 0;
  for (std::vector<CalEntry>& vec : buckets_) {
    for (const CalEntry& e : vec) {
      if (slots_[e.slot].cancelled) {
        // Reclaim lazily-tombstoned bucket entries while we hold them all
        // anyway — rebuild is the other bulk-reclamation point besides the
        // harvest sweep.
        free_slot(e.slot);
        --tombstones_;
        --entries_;
      } else {
        scratch_.push_back(e);
      }
    }
    vec.clear();
  }
  std::size_t m = kMinBuckets;
  while (m < entries_ * 2 && m < kMaxBuckets) m <<= 1;
  if (m != buckets_.size()) {
    buckets_.assign(m, {});
  }
  bucket_mask_ = m - 1;
  width_shift_ = estimate_width_shift();
  last_rebuild_now_ps_ = now_.ps();
  pops_since_rebuild_ = 0;
  // All entries are >= now_, so an empty bottom window ending at now_ is
  // exhaustive; the next pop harvests afresh at the new width.
  bottom_end_ps_ = now_.ps();
  for (const CalEntry& e : scratch_) {
    buckets_[static_cast<std::size_t>(e.time.ps() >> width_shift_) &
             bucket_mask_]
        .push_back(e);
  }
}

void Simulator::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  s.cancelled = false;
  if (++s.gen == 0) s.gen = 1;  // ids are never zero
  free_slots_.push_back(slot);
}

bool Simulator::pop_next(TimePoint limit, TimePoint& t, std::uint64_t& seq,
                         InlineTask& fn) {
  while (true) {
    if (bottom_idx_ >= bottom_.size() && !refill_bottom()) return false;
    const CalEntry head = bottom_[bottom_idx_];
    if (head.slot == kTombstoneSlot) {  // cancelled in place — skip
      ++bottom_idx_;
      --entries_;
      continue;
    }
    if (head.time > limit) return false;  // leave it queued
    ++bottom_idx_;
    --entries_;
    if (++pops_since_rebuild_ >= kRebuildPeriod ||
        (buckets_.size() > kMinBuckets && entries_ < buckets_.size() / 8)) {
      rebuild();
    }
    Slot& s = slots_[head.slot];
    DQOS_ASSERT(s.live);
    t = head.time;
    seq = head.seq;
    fn = std::move(s.fn);
    free_slot(head.slot);
    --live_;
    return true;
  }
}

bool Simulator::step() {
  TimePoint t;
  std::uint64_t seq = 0;
  InlineTask fn;
  if (!pop_next(TimePoint::max(), t, seq, fn)) return false;
  DQOS_ASSERT(t >= now_);
  now_ = t;
  ++fired_;
  if (fire_hook_) fire_hook_(seq, t);
  fn();
  return true;
}

bool Simulator::peek_next(std::int64_t& time_ps, std::uint64_t& seq) {
  while (true) {
    if (bottom_idx_ >= bottom_.size() && !refill_bottom()) return false;
    const CalEntry head = bottom_[bottom_idx_];
    if (head.slot == kTombstoneSlot) {  // cancelled in place — skip
      ++bottom_idx_;
      --entries_;
      continue;
    }
    time_ps = head.time.ps();
    seq = head.seq;
    return true;
  }
}

bool Simulator::step_due(TimePoint limit) {
  TimePoint t;
  std::uint64_t seq = 0;
  InlineTask fn;
  if (!pop_next(limit, t, seq, fn)) return false;
  DQOS_ASSERT(t >= now_);
  now_ = t;
  ++fired_;
  if (fire_hook_) fire_hook_(seq, t);
  fn();
  return true;
}

// dqos-lint: hot
bool Simulator::drain_window(TimePoint limit, ShardWindowLog& log) {
  DQOS_ASSERT(wlog_ == &log);
  if (bottom_idx_ >= bottom_.size() && !refill_bottom()) return false;
  const bool whole_window_due = bottom_end_ps_ <= limit.ps();
  while (bottom_idx_ < bottom_.size()) {
    const CalEntry head = bottom_[bottom_idx_];
    if (head.slot == kTombstoneSlot) {  // cancelled in place — bulk skip
      ++bottom_idx_;
      --entries_;
      continue;
    }
    if (!whole_window_due && head.time > limit) return false;
    ++bottom_idx_;
    --entries_;
    ++pops_since_rebuild_;
    Slot& s = slots_[head.slot];
    DQOS_ASSERT(s.live);
    InlineTask fn = std::move(s.fn);
    free_slot(head.slot);
    --live_;
    DQOS_ASSERT(head.time >= now_);
    now_ = head.time;
    ++fired_;
    // No fire hook here: the engine replays the hook stream at the barrier
    // merge, in global order, once every key is final.
    if (head.seq >= kProvSeqBase) {
      log.prov_fired[head.seq - kProvSeqBase] =
          static_cast<std::uint32_t>(log.fires.size()) + 1;
    }
    ShardWindowLog::FireRec rec;
    rec.time_ps = head.time.ps();
    rec.key = head.seq;
    rec.kid_begin = static_cast<std::uint32_t>(log.kids.size());
    rec.kid_end = rec.kid_begin;
    rec.fx_begin = static_cast<std::uint32_t>(log.effects.size());
    rec.fx_end = rec.fx_begin;
    const std::size_t rec_idx = log.fires.size();
    // Log capacity is retained across windows (reset() clears, never
    // shrinks), so steady-state appends are allocation-free.
    log.fires.push_back(rec);  // dqos-lint: allow(hot-path-alloc)
    fn();
    // Nothing else appends to `fires` while the closure runs, so the
    // record's index is stable even though the vector may have grown.
    log.fires[rec_idx].kid_end = static_cast<std::uint32_t>(log.kids.size());
    log.fires[rec_idx].fx_end = static_cast<std::uint32_t>(log.effects.size());
  }
  if (pops_since_rebuild_ >= kRebuildPeriod ||
      (buckets_.size() > kMinBuckets && entries_ < buckets_.size() / 8)) {
    rebuild();
  }
  return entries_ != 0;
}

// dqos-lint: hot
bool Simulator::drain_due(TimePoint limit) {
  if (bottom_idx_ >= bottom_.size() && !refill_bottom()) return false;
  // When the whole harvested window is due, the per-event limit compare
  // drops out of the loop: anything a closure splices into the rung
  // mid-batch has time < bottom_end_ps_ <= limit and is due as well.
  const bool whole_window_due = bottom_end_ps_ <= limit.ps();
  // The loop re-reads bottom_ every iteration on purpose: a fired closure
  // may schedule into the rung (relocating it) or trigger a count-driven
  // rebuild (clearing it). The head is copied out and the closure moved to
  // a local before invocation for the same reason.
  while (bottom_idx_ < bottom_.size()) {
    const CalEntry head = bottom_[bottom_idx_];
    if (head.slot == kTombstoneSlot) {  // cancelled in place — bulk skip
      ++bottom_idx_;
      --entries_;
      continue;
    }
    if (!whole_window_due && head.time > limit) return false;
    ++bottom_idx_;
    --entries_;
    ++pops_since_rebuild_;
    Slot& s = slots_[head.slot];
    DQOS_ASSERT(s.live);
    InlineTask fn = std::move(s.fn);
    free_slot(head.slot);
    --live_;
    DQOS_ASSERT(head.time >= now_);
    now_ = head.time;
    ++fired_;
    if (fire_hook_) fire_hook_(head.seq, head.time);
    fn();
  }
  // Batch-boundary maintenance: the single-step path runs these checks per
  // pop; batching amortizes them. Rebuild timing only affects bucket
  // geometry, never the (time, seq) fire order.
  if (pops_since_rebuild_ >= kRebuildPeriod ||
      (buckets_.size() > kMinBuckets && entries_ < buckets_.size() / 8)) {
    rebuild();
  }
  return entries_ != 0;
}

void Simulator::run_until(TimePoint t) {
  DQOS_EXPECTS(t >= now_);
  while (drain_due(t)) {
  }
  now_ = t;
}

void Simulator::run() {
  while (drain_due(TimePoint::max())) {
  }
}

}  // namespace dqos
