#include "sim/simulator.hpp"

namespace dqos {

EventId Simulator::schedule_at(TimePoint t, InlineTask fn) {
  DQOS_EXPECTS(t >= now_);
  DQOS_EXPECTS(static_cast<bool>(fn));
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(HeapNode{t, seq, slot});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(s.gen, slot);
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Fired/cancelled/reused slots fail the live || generation check: no
  // residue, so schedule/fire/cancel cycles cannot grow memory unboundedly.
  if (!s.live || s.gen != gen) return;
  s.live = false;
  s.cancelled = true;
  s.fn.reset();  // release captures now; the heap node dies lazily
  --live_;
  ++tombstones_;
}

void Simulator::sift_up(std::size_t i) {
  const HeapNode moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapNode moving = heap_[i];
  while (true) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = (first + kArity < n) ? first + kArity : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void Simulator::pop_root() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulator::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  s.cancelled = false;
  if (++s.gen == 0) s.gen = 1;  // ids are never zero
  free_slots_.push_back(slot);
}

bool Simulator::pop_next(TimePoint& t, std::uint64_t& seq, InlineTask& fn) {
  while (!heap_.empty()) {
    const HeapNode node = heap_[0];
    pop_root();
    Slot& s = slots_[node.slot];
    if (s.cancelled) {
      free_slot(node.slot);
      --tombstones_;
      continue;
    }
    DQOS_ASSERT(s.live);
    t = node.time;
    seq = node.seq;
    fn = std::move(s.fn);
    free_slot(node.slot);
    --live_;
    return true;
  }
  return false;
}

void Simulator::prune_cancelled_head() {
  while (!heap_.empty() && slots_[heap_[0].slot].cancelled) {
    const std::uint32_t slot = heap_[0].slot;
    pop_root();
    free_slot(slot);
    --tombstones_;
  }
}

bool Simulator::step() {
  TimePoint t;
  std::uint64_t seq = 0;
  InlineTask fn;
  if (!pop_next(t, seq, fn)) return false;
  DQOS_ASSERT(t >= now_);
  now_ = t;
  ++fired_;
  if (fire_hook_) fire_hook_(seq, t);
  fn();
  return true;
}

void Simulator::run_until(TimePoint t) {
  DQOS_EXPECTS(t >= now_);
  while (true) {
    // Peek without committing: if the earliest live event is past t, stop.
    prune_cancelled_head();
    if (heap_.empty() || heap_[0].time > t) break;
    const bool fired = step();
    DQOS_ASSERT(fired);
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace dqos
