#include "sim/simulator.hpp"

namespace dqos {

EventId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  DQOS_EXPECTS(t >= now_);
  DQOS_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

void Simulator::cancel(EventId id) {
  // Only an id that is actually pending gets a lazy-delete marker; fired or
  // unknown ids leave no residue (the marker set would otherwise grow
  // unboundedly under schedule/fire/cancel cycles).
  if (pending_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::pop_next(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the function object must be moved out,
    // so use const_cast on the known-safe mutable member (standard idiom).
    out.time = heap_.top().time;
    out.id = heap_.top().id;
    out.fn = std::move(const_cast<Entry&>(heap_.top()).fn);
    heap_.pop();
    if (cancelled_.erase(out.id) == 0) {
      pending_.erase(out.id);
      return true;
    }
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!pop_next(e)) return false;
  DQOS_ASSERT(e.time >= now_);
  now_ = e.time;
  ++fired_;
  e.fn();
  return true;
}

void Simulator::run_until(TimePoint t) {
  DQOS_EXPECTS(t >= now_);
  while (!heap_.empty()) {
    Entry e;
    // Peek without committing: if the earliest live event is past t, stop.
    // pop_next would discard it, so check the raw top first and prune
    // cancelled heads explicitly.
    while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().time > t) break;
    const bool fired = step();
    DQOS_ASSERT(fired);
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace dqos
