#include "sim/simulator.hpp"

#include <algorithm>

namespace dqos {

EventId Simulator::schedule_at(TimePoint t, InlineTask&& fn) {
  DQOS_EXPECTS(t >= now_);
  DQOS_EXPECTS(static_cast<bool>(fn));
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  const std::uint64_t seq = next_seq_++;
  push_entry(CalEntry{t, seq, slot});
  ++live_;
  return make_id(s.gen, slot);
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Fired/cancelled/reused slots fail the live || generation check: no
  // residue, so schedule/fire/cancel cycles cannot grow memory unboundedly.
  if (!s.live || s.gen != gen) return;
  s.live = false;
  s.cancelled = true;
  s.fn.reset();  // release captures now; the bucket entry dies lazily
  --live_;
  ++tombstones_;
}

void Simulator::push_entry(const CalEntry e) {
  if (e.time.ps() < bottom_end_ps_) {
    // Due inside the already-harvested window: keep the bottom rung
    // exhaustive and sorted. The insert position is at or after the
    // consumption index (e.time >= now_ >= last popped entry).
    const auto it = std::lower_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_idx_),
        bottom_.end(), e, &earlier);
    bottom_.insert(it, e);
  } else {
    buckets_[static_cast<std::size_t>(e.time.ps() >> width_shift_) &
             bucket_mask_]
        .push_back(e);
  }
  ++entries_;
  if (entries_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    rebuild();
  }
}

bool Simulator::refill_bottom() {
  bottom_.clear();
  bottom_idx_ = 0;
  if (entries_ == 0) return false;
  const std::size_t nbuckets = bucket_mask_ + 1;
  std::int64_t abs = bottom_end_ps_ >> width_shift_;
  for (std::size_t step = 0; step < nbuckets; ++step, ++abs) {
    std::vector<CalEntry>& vec =
        buckets_[static_cast<std::size_t>(abs) & bucket_mask_];
    if (vec.empty()) continue;
    // Harvest this bucket's current-year entries. A skipped (future-year)
    // entry is at least a full ring revolution away, so it cannot beat
    // anything harvested further ahead in this sweep.
    const std::int64_t limit = (abs + 1) << width_shift_;
    for (std::size_t i = 0; i < vec.size();) {
      if (vec[i].time.ps() < limit) {
        bottom_.push_back(vec[i]);
        vec[i] = vec.back();
        vec.pop_back();
      } else {
        ++i;
      }
    }
    if (!bottom_.empty()) {
      std::sort(bottom_.begin(), bottom_.end(), &earlier);
      bottom_end_ps_ = limit;
      return true;
    }
  }
  // A full revolution found nothing due: the pending set is sparse and far
  // ahead (a drained network waiting on ms-scale timers). Direct scan for
  // the earliest entry, then harvest its bucket-year.
  std::int64_t min_ps = 0;
  bool have = false;
  for (const std::vector<CalEntry>& vec : buckets_) {
    for (const CalEntry& e : vec) {
      if (!have || e.time.ps() < min_ps) {
        min_ps = e.time.ps();
        have = true;
      }
    }
  }
  DQOS_ASSERT(have);
  abs = min_ps >> width_shift_;
  const std::int64_t limit = (abs + 1) << width_shift_;
  std::vector<CalEntry>& vec =
      buckets_[static_cast<std::size_t>(abs) & bucket_mask_];
  for (std::size_t i = 0; i < vec.size();) {
    if (vec[i].time.ps() < limit) {
      bottom_.push_back(vec[i]);
      vec[i] = vec.back();
      vec.pop_back();
    } else {
      ++i;
    }
  }
  DQOS_ASSERT(!bottom_.empty());
  std::sort(bottom_.begin(), bottom_.end(), &earlier);
  bottom_end_ps_ = limit;
  return true;
}

unsigned Simulator::estimate_width_shift() {
  // The cursor bucket accumulates every event due inside its window, and
  // each pop rescans it — so occupancy there is governed by the *fire*
  // rate, not by gaps in a pending-set snapshot (a snapshot mixes the
  // dense near-now working set with sparse far-out timers and lands on a
  // width orders of magnitude too wide). Width ≈ 4 mean inter-fire gaps
  // keeps the rescan a handful of entries.
  if (pops_since_rebuild_ >= 64) {
    const std::int64_t advance = now_.ps() - last_rebuild_now_ps_;
    const std::int64_t target = advance * 4 / pops_since_rebuild_;
    unsigned shift = 0;
    while ((std::int64_t{1} << shift) < target && shift < 40) ++shift;
    return shift;
  }
  // No fire history yet (count-triggered rebuild during a scheduling
  // burst): fall back to the median positive gap between pending entries.
  if (scratch_.size() < 8) return width_shift_;
  times_.clear();
  const std::size_t stride = scratch_.size() / 4096 + 1;
  for (std::size_t i = 0; i < scratch_.size(); i += stride) {
    times_.push_back(scratch_[i].time.ps());
  }
  std::sort(times_.begin(), times_.end());
  std::size_t ngaps = 0;
  for (std::size_t i = 1; i < times_.size(); ++i) {
    const std::int64_t gap = times_[i] - times_[i - 1];
    if (gap > 0) times_[ngaps++] = gap;
  }
  if (ngaps == 0) return width_shift_;
  std::nth_element(times_.begin(),
                   times_.begin() + static_cast<std::ptrdiff_t>(ngaps / 2),
                   times_.begin() + static_cast<std::ptrdiff_t>(ngaps));
  const std::int64_t target = times_[ngaps / 2] * 4;
  unsigned shift = 0;
  while ((std::int64_t{1} << shift) < target && shift < 40) ++shift;
  return shift;
}

void Simulator::rebuild() {
  scratch_.clear();
  scratch_.insert(scratch_.end(),
                  bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_idx_),
                  bottom_.end());
  bottom_.clear();
  bottom_idx_ = 0;
  for (std::vector<CalEntry>& vec : buckets_) {
    scratch_.insert(scratch_.end(), vec.begin(), vec.end());
    vec.clear();
  }
  std::size_t m = kMinBuckets;
  while (m < entries_ * 2 && m < kMaxBuckets) m <<= 1;
  if (m != buckets_.size()) {
    buckets_.assign(m, {});
  }
  bucket_mask_ = m - 1;
  width_shift_ = estimate_width_shift();
  last_rebuild_now_ps_ = now_.ps();
  pops_since_rebuild_ = 0;
  // All entries are >= now_, so an empty bottom window ending at now_ is
  // exhaustive; the next pop harvests afresh at the new width.
  bottom_end_ps_ = now_.ps();
  for (const CalEntry& e : scratch_) {
    buckets_[static_cast<std::size_t>(e.time.ps() >> width_shift_) &
             bucket_mask_]
        .push_back(e);
  }
}

void Simulator::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  s.cancelled = false;
  if (++s.gen == 0) s.gen = 1;  // ids are never zero
  free_slots_.push_back(slot);
}

bool Simulator::pop_next(TimePoint limit, TimePoint& t, std::uint64_t& seq,
                         InlineTask& fn) {
  while (true) {
    if (bottom_idx_ >= bottom_.size() && !refill_bottom()) return false;
    const CalEntry head = bottom_[bottom_idx_];
    Slot& s = slots_[head.slot];
    if (!s.cancelled && head.time > limit) return false;  // leave it queued
    ++bottom_idx_;
    --entries_;
    if (++pops_since_rebuild_ >= kRebuildPeriod ||
        (buckets_.size() > kMinBuckets && entries_ < buckets_.size() / 8)) {
      rebuild();
    }
    if (s.cancelled) {
      free_slot(head.slot);
      --tombstones_;
      continue;
    }
    DQOS_ASSERT(s.live);
    t = head.time;
    seq = head.seq;
    fn = std::move(s.fn);
    free_slot(head.slot);
    --live_;
    return true;
  }
}

bool Simulator::step() {
  TimePoint t;
  std::uint64_t seq = 0;
  InlineTask fn;
  if (!pop_next(TimePoint::max(), t, seq, fn)) return false;
  DQOS_ASSERT(t >= now_);
  now_ = t;
  ++fired_;
  if (fire_hook_) fire_hook_(seq, t);
  fn();
  return true;
}

void Simulator::run_until(TimePoint t) {
  DQOS_EXPECTS(t >= now_);
  TimePoint ft;
  std::uint64_t seq = 0;
  InlineTask fn;
  if (fire_hook_) {  // instrumented runs (golden-determinism tests)
    while (pop_next(t, ft, seq, fn)) {
      DQOS_ASSERT(ft >= now_);
      now_ = ft;
      ++fired_;
      fire_hook_(seq, ft);
      fn();
    }
    now_ = t;
    return;
  }
  while (pop_next(t, ft, seq, fn)) {
    DQOS_ASSERT(ft >= now_);
    now_ = ft;
    ++fired_;
    fn();
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace dqos
