#include "sim/shard_executor.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace dqos {

namespace {

/// Bounded spin with escalating politeness: brief busy loop for the common
/// sub-microsecond barrier, then yield so an oversubscribed (or
/// single-core) machine makes progress instead of burning a quantum.
struct Backoff {
  std::uint32_t spins = 0;
  void pause() {
    if (++spins < 64) return;
    std::this_thread::yield();
  }
};

}  // namespace

ShardExecutor::ShardExecutor(Simulator& control, std::uint32_t num_shards,
                             std::int64_t lookahead_ps, bool use_threads)
    : control_(control), lookahead_ps_(lookahead_ps) {
  DQOS_EXPECTS(num_shards >= 2);
  DQOS_EXPECTS(lookahead_ps > 0);
  sims_.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  logs_.resize(num_shards);
  for (ShardWindowLog& log : logs_) {
    log.outboxes.resize(num_shards);
    log.reset(Simulator::kProvSeqBase);
  }
  notes_.resize(num_shards);
  cursor_.assign(num_shards, 0);
  control_.set_seq_source(&global_seq_);
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    sim->set_seq_source(&global_seq_);
  }
  if (use_threads) {
    workers_.reserve(num_shards - 1);
    for (std::uint32_t s = 1; s < num_shards; ++s) {
      workers_.emplace_back([this, s] { worker_main(s); });
    }
  }
}

ShardExecutor::~ShardExecutor() {
  if (!workers_.empty()) {
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& w : workers_) w.join();
  }
}

void ShardExecutor::set_fire_hook(Callback<void(std::uint64_t, TimePoint)> hook) {
  hook_ = hook;
  // Serial instants run through Simulator::step_due, which emits the hook
  // itself — in true global order, since instants are single-threaded.
  // Window drains bypass the hook (the merge replays it), so installing it
  // on every calendar is safe.
  control_.set_fire_hook(hook);
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    sim->set_fire_hook(hook);
  }
}

std::int64_t ShardExecutor::peek_time(Simulator& sim) {
  std::int64_t tps = 0;
  std::uint64_t seq = 0;
  if (!sim.peek_next(tps, seq)) return std::numeric_limits<std::int64_t>::max();
  return tps;
}

std::uint64_t ShardExecutor::events_processed() const {
  std::uint64_t n = control_.events_processed();
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    n += sim->events_processed();
  }
  return n;
}

std::size_t ShardExecutor::events_pending() const {
  std::size_t n = control_.events_pending();
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    n += sim->events_pending();
  }
  return n;
}

void ShardExecutor::drain_shard(std::uint32_t s) {
  const TimePoint limit = TimePoint::from_ps(window_limit_ps_);
  Simulator& sim = *sims_[s];
  ShardWindowLog& log = logs_[s];
  PacketPool::set_current_shard(static_cast<std::int32_t>(s));
  while (sim.drain_window(limit, log)) {
  }
  PacketPool::set_current_shard(-1);
}

void ShardExecutor::worker_main(std::uint32_t s) {
  std::uint64_t seen = 0;
  for (;;) {
    Backoff bo;
    std::uint64_t e;
    while ((e = epoch_.load(std::memory_order_acquire)) == seen) bo.pause();
    seen = e;
    if (stop_.load(std::memory_order_relaxed)) return;
    drain_shard(s);
    arrived_.fetch_add(1, std::memory_order_release);
  }
}

void ShardExecutor::run_window(std::int64_t limit_ps) {
  ++windows_;
  ++window_id_;
  window_limit_ps_ = limit_ps;
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    sims_[s]->set_window_log(&logs_[s]);
  }
  window_active_ = true;
  if (workers_.empty()) {
    for (std::uint32_t s = 0; s < num_shards(); ++s) drain_shard(s);
  } else {
    epoch_.fetch_add(1, std::memory_order_release);
    drain_shard(0);
    Backoff bo;
    const std::uint32_t n = static_cast<std::uint32_t>(workers_.size());
    while (arrived_.load(std::memory_order_acquire) != n) bo.pause();
    arrived_.store(0, std::memory_order_relaxed);
  }
  window_active_ = false;
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    sims_[s]->set_window_log(nullptr);
  }
  merge_and_transfer();
}

void ShardExecutor::merge_and_transfer() {
  const std::uint32_t n = num_shards();
  std::fill(cursor_.begin(), cursor_.end(), 0u);
  // K-way merge of the shards' fire logs by (time, key). Every record's key
  // is final by the time it reaches the merge front: a provisionally-keyed
  // record's parent fired earlier on the same shard (and thus merges
  // first), and patching assigns its final key then.
  for (;;) {
    std::uint32_t best = n;
    std::int64_t best_t = 0;
    std::uint64_t best_k = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (cursor_[s] >= logs_[s].fires.size()) continue;
      const ShardWindowLog::FireRec& r = logs_[s].fires[cursor_[s]];
      if (best == n || r.time_ps < best_t ||
          (r.time_ps == best_t && r.key < best_k)) {
        best = s;
        best_t = r.time_ps;
        best_k = r.key;
      }
    }
    if (best == n) break;
    ShardWindowLog& log = logs_[best];
    const ShardWindowLog::FireRec& r = log.fires[cursor_[best]++];
    DQOS_ASSERT(r.key < Simulator::kProvSeqBase);
    if (hook_) hook_(r.key, TimePoint::from_ps(r.time_ps));
    for (std::uint32_t i = r.fx_begin; i < r.fx_end; ++i) {
      effect_sink_(log.effects[i]);
    }
    for (std::uint32_t i = r.kid_begin; i < r.kid_end; ++i) {
      const std::uint64_t kid = log.kids[i];
      const std::uint64_t fin = global_seq_++;
      if ((kid & ShardWindowLog::kMailboxBit) != 0) {
        const auto dst = static_cast<std::uint32_t>((kid >> 32) & 0xffffu);
        const auto idx = static_cast<std::uint32_t>(kid & 0xffffffffu);
        log.outboxes[dst][idx].seq = fin;
      } else {
        DQOS_ASSERT(kid >= Simulator::kProvSeqBase);
        const std::size_t pi =
            static_cast<std::size_t>(kid - Simulator::kProvSeqBase);
        const std::uint32_t fi = log.prov_fired[pi];
        if (fi != 0) {
          log.fires[fi - 1].key = fin;
        } else {
          // Still pending: patch the calendar entry in place. A stale
          // handle means the event was cancelled inside the window — the
          // serial run consumed the sequence number all the same.
          static_cast<void>(sims_[best]->rekey(log.prov_ids[pi], fin));
        }
      }
    }
  }
  // Deliver mailboxes in deterministic (source, destination, index) order.
  // The lookahead guarantee: nothing lands at or before the window edge.
  for (std::uint32_t src = 0; src < n; ++src) {
    for (std::uint32_t dst = 0; dst < n; ++dst) {
      for (CrossMsg& m : logs_[src].outboxes[dst]) {
        DQOS_ASSERT(m.at_ps > window_limit_ps_);
        DQOS_ASSERT(m.seq != 0);
        ++cross_msgs_;
        m.deliver(std::move(m));
      }
    }
  }
  if (barrier_hook_) barrier_hook_();
  for (std::uint32_t s = 0; s < n; ++s) {
    logs_[s].reset(Simulator::kProvSeqBase);
  }
}

void ShardExecutor::run_instant(std::int64_t t_ps) {
  ++instants_;
  const TimePoint limit = TimePoint::from_ps(t_ps);
  // Align every clock first: a control event may synchronously touch a
  // shard's components (retarget a source, open a flow), and those read
  // their own calendar's now() — which must equal the instant, exactly as
  // in the serial run, even on shards with no event due here.
  if (control_.now() < limit) control_.advance_to(limit);
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    if (sim->now() < limit) sim->advance_to(limit);
  }
  // Interleave every calendar's events at this instant in global
  // (time, seq) order — all keys are final outside windows, so the
  // comparison is exact. New events scheduled at the same instant join the
  // interleave via the re-peek.
  for (;;) {
    Simulator* pick = nullptr;
    std::uint64_t pick_seq = 0;
    const auto consider = [&](Simulator& sim) {
      std::int64_t tps = 0;
      std::uint64_t seq = 0;
      if (!sim.peek_next(tps, seq) || tps != t_ps) return;
      if (pick == nullptr || seq < pick_seq) {
        pick = &sim;
        pick_seq = seq;
      }
    };
    consider(control_);
    for (const std::unique_ptr<Simulator>& sim : sims_) consider(*sim);
    if (pick == nullptr) break;
    const bool fired = pick->step_due(limit);
    DQOS_ASSERT(fired);
    static_cast<void>(fired);
  }
}

void ShardExecutor::run_until(TimePoint t) {
  const std::int64_t target_ps = t.ps();
  for (;;) {
    std::int64_t t_ctrl = peek_time(control_);
    std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
    for (const std::unique_ptr<Simulator>& sim : sims_) {
      t_min = std::min(t_min, peek_time(*sim));
    }
    const std::int64_t next = std::min(t_ctrl, t_min);
    if (next > target_ps) break;
    if (t_ctrl <= t_min) {
      run_instant(t_ctrl);
      continue;
    }
    // Conservative window over [t_min, H): no calendar can produce a
    // cross-shard effect before t_min + lookahead, and the control
    // calendar (whose events may touch any shard) is not due before H.
    std::int64_t horizon = t_min + lookahead_ps_;
    horizon = std::min(horizon, t_ctrl);
    horizon = std::min(horizon, target_ps + 1);
    DQOS_ASSERT(horizon > t_min);
    run_window(horizon - 1);
  }
  if (control_.now() < t) control_.advance_to(t);
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    if (sim->now() < t) sim->advance_to(t);
  }
}

}  // namespace dqos
