/// \file shard_link.hpp
/// Shared data types linking one shard's Simulator to the sharded
/// conservative engine (shard_executor.hpp): the per-window log a shard
/// records while draining, the cross-shard mailbox message, and the
/// deferred side-effect record.
///
/// The parallel engine reproduces the serial engine's output bit-for-bit
/// (DESIGN.md §12). The mechanism: during a time window every shard
/// assigns *provisional* sequence numbers (kProvSeqBase | n) to the events
/// it schedules, and logs — per fired event, in call order — every
/// schedule it performed (its "kids"). At the window barrier a coordinator
/// k-way-merges the shards' fire logs in global (time, key) order and
/// replays the serial kernel's sequence assignment: walking fired events
/// in exactly the order the serial kernel would have fired them, it hands
/// each kid the next global sequence number, patching pending calendar
/// entries (Simulator::rekey), later fire records, and mailbox messages.
/// The result is that every event carries the exact sequence number the
/// serial run would have given it, so the (time, seq) fire order — and the
/// golden fire-order hash — are byte-identical at any shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/packet_pool.hpp"
#include "util/time.hpp"

namespace dqos {

/// A cross-shard event in transit: posted by a sender-shard component
/// (Channel) during a window, sequence-stamped by the coordinator during
/// the barrier merge, then delivered (scheduled onto the destination
/// shard's calendar) by `deliver`. The conservative lookahead contract:
/// `at_ps` is at least one full lookahead after the instant the message
/// was posted, so it can never land inside the window that produced it.
struct CrossMsg {
  std::int64_t at_ps = 0;
  std::uint64_t seq = 0;       ///< final serial seq, stamped at the merge
  std::uint32_t bytes = 0;     ///< payload size / credit bytes (foldable)
  std::uint8_t vc = 0;
  std::uint8_t kind = 0;       ///< producer-private discriminator
  void* ctx = nullptr;         ///< producer object (e.g. the Channel)
  PacketPtr p;                 ///< packet payload (null for credit returns)
  /// Schedules the message body on the destination shard; set by the
  /// producer at post time, invoked by the coordinator at the barrier.
  void (*deliver)(CrossMsg&& m) = nullptr;
};

/// A side effect recorded during a window instead of being applied:
/// order-sensitive writes against shared state (the MetricsCollector's
/// reservoirs and streaming accumulators, admission-ledger releases). The
/// coordinator replays effects in merged global fire order, so shared
/// state sees exactly the serial call sequence.
struct DeferredEffect {
  enum class Kind : std::uint8_t {
    kPacketDelivered,
    kPacketExpired,
    kPacketDropped,
    kMessageDelivered,
    kMessageOffered,
    kFlowAborted,
  };
  Kind kind = Kind::kPacketDropped;
  std::uint8_t tclass = 0;
  std::uint32_t size = 0;
  std::int64_t t_created_ps = 0;
  std::int64_t t_now_ps = 0;
  std::int64_t slack_ps = 0;
  std::uint64_t id = 0;  ///< flow id / message bytes, kind-dependent
};

/// Everything one shard records during one window. Owned by the engine,
/// wired into the shard's Simulator (set_window_log) for the duration of
/// the window, reset at every barrier.
struct ShardWindowLog {
  /// Kid-reference encoding (one uint64 per schedule call, in call order):
  /// either a provisional sequence number (bit 62 set, assigned by the
  /// local calendar) or a mailbox reference (bit 63 set, destination shard
  /// in bits 32..47, message index in the low 32 bits).
  static constexpr std::uint64_t kMailboxBit = 1ULL << 63;
  static std::uint64_t mailbox_ref(std::uint32_t dst_shard, std::size_t idx) {
    return kMailboxBit | (static_cast<std::uint64_t>(dst_shard) << 32) |
           static_cast<std::uint64_t>(idx);
  }

  /// One fired event: its fire key (provisional or final; patched to final
  /// before the merge ever reads it) plus the half-open ranges of kids and
  /// effects it produced.
  struct FireRec {
    std::int64_t time_ps;
    std::uint64_t key;
    std::uint32_t kid_begin, kid_end;
    std::uint32_t fx_begin, fx_end;
  };

  std::vector<FireRec> fires;
  std::vector<std::uint64_t> kids;
  std::vector<DeferredEffect> effects;
  /// Provisional index -> the event's handle (for rekeying still-pending
  /// events) and, when it fired inside the same window, 1 + its index in
  /// `fires` (for patching the fire record instead).
  std::vector<std::uint64_t> prov_ids;
  std::vector<std::uint32_t> prov_fired;
  /// The shard's sequence source during a window: restarts at kProvSeqBase
  /// each window, so provisional keys order after every final sequence
  /// number and encode their own registry index (seq - kProvSeqBase).
  std::uint64_t window_seq = 0;
  /// Outboxes, one per destination shard (index = destination).
  std::vector<std::vector<CrossMsg>> outboxes;

  void reset(std::uint64_t prov_base) {
    fires.clear();
    kids.clear();
    effects.clear();
    prov_ids.clear();
    prov_fired.clear();
    window_seq = prov_base;
    for (auto& box : outboxes) box.clear();
  }
};

/// Receiver-shard note of a cross-shard packet arrival whose sender-owned
/// wire accounting (Channel::in_flight_bytes_/packets_in_flight_) must be
/// reconciled at the next barrier instead of being written from the
/// receiving thread.
struct CrossArrivalNote {
  void* ch = nullptr;  ///< the Channel
  std::uint8_t vc = 0;
  std::uint32_t bytes = 0;
};

}  // namespace dqos
