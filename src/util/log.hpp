/// \file log.hpp
/// Leveled, compile-out-able logging. Simulators produce torrents of trace
/// output; the discipline here is: Error/Warn always on, Info for phase
/// transitions, Debug/Trace for per-packet events (off by default, enabled
/// via Logger::set_level or the DQOS_LOG environment variable).
#pragma once

#include <cstdarg>
#include <string_view>

namespace dqos {

enum class LogLevel : int { kError = 0, kWarn, kInfo, kDebug, kTrace };

class Logger {
 public:
  /// Global log level; reads DQOS_LOG (error|warn|info|debug|trace) once.
  static LogLevel level();
  static void set_level(LogLevel lv);
  static bool enabled(LogLevel lv) { return lv <= level(); }

  /// printf-style emission with a level prefix. Thread-compatible (the
  /// simulator is single-threaded; benches may run several simulators
  /// sequentially).
  static void logf(LogLevel lv, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
};

}  // namespace dqos

#define DQOS_LOG(lv, ...)                                    \
  do {                                                       \
    if (::dqos::Logger::enabled(lv)) {                       \
      ::dqos::Logger::logf(lv, __VA_ARGS__);                 \
    }                                                        \
  } while (0)

#define DQOS_ERROR(...) DQOS_LOG(::dqos::LogLevel::kError, __VA_ARGS__)
#define DQOS_WARN(...) DQOS_LOG(::dqos::LogLevel::kWarn, __VA_ARGS__)
#define DQOS_INFO(...) DQOS_LOG(::dqos::LogLevel::kInfo, __VA_ARGS__)
#define DQOS_DEBUG(...) DQOS_LOG(::dqos::LogLevel::kDebug, __VA_ARGS__)
#define DQOS_TRACE(...) DQOS_LOG(::dqos::LogLevel::kTrace, __VA_ARGS__)
