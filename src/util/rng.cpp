#include "util/rng.hpp"

// Header-only; this TU exists so the library always has at least one object
// file per module and to hold future out-of-line additions.
