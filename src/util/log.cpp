#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dqos {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("DQOS_LOG");
  if (!env) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

LogLevel g_level = parse_env_level();

const char* prefix(LogLevel lv) {
  switch (lv) {
    case LogLevel::kError: return "[error] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kTrace: return "[trace] ";
  }
  return "";
}

}  // namespace

LogLevel Logger::level() { return g_level; }
void Logger::set_level(LogLevel lv) { g_level = lv; }

void Logger::logf(LogLevel lv, const char* fmt, ...) {
  std::fputs(prefix(lv), stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace dqos
