/// \file cli.hpp
/// Tiny command-line / key=value configuration parser used by the bench
/// harnesses and the dqos_sim tool.
///
/// Grammar: arguments are either bare flags (`--paper`), options
/// (`--load=0.8` or `--load 0.8`), or positionals. The same `key=value`
/// lines are accepted from config files (one per line, `#` comments), so a
/// run can be described once and replayed:
///
///   dqos_sim --config=run.cfg --arch=advanced --load=1.0
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dqos {

class ArgParser {
 public:
  /// Parses argv. Later duplicates override earlier ones (so CLI args can
  /// override file settings loaded first via load_file()).
  ArgParser() = default;
  ArgParser(int argc, const char* const* argv) { parse(argc, argv); }

  void parse(int argc, const char* const* argv);

  /// Loads `key=value` lines; returns false if the file can't be read.
  /// `[section]` headers prefix subsequent keys with `section.` (so
  /// `load=0.9` under `[phase.1]` becomes `phase.1.load`); a bare `[]`
  /// returns to top level.
  bool load_file(const std::string& path);

  /// Inserts/overrides a single setting. `origin` says where the value came
  /// from ("command line", "file.cfg:12") for error messages.
  void set(const std::string& key, const std::string& value,
           const std::string& origin = "command line");

  /// Where the key's value was defined ("" for unknown keys).
  [[nodiscard]] std::string origin(const std::string& key) const;

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  /// All keys, for validation/diagnostics.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> origins_;
  std::vector<std::string> positionals_;
};

}  // namespace dqos
