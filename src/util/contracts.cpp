#include "util/contracts.hpp"

#include <cstdio>

namespace dqos {

void contract_violation(std::string_view kind, std::string_view condition,
                        std::source_location where) {
  std::fprintf(stderr, "dqos: %.*s violated: `%.*s` at %s:%u (%s)\n",
               static_cast<int>(kind.size()), kind.data(),
               static_cast<int>(condition.size()), condition.data(),
               where.file_name(), where.line(), where.function_name());
  std::abort();
}

}  // namespace dqos
