/// \file simd.hpp
/// Portable horizontal-argmin kernels for the datapath's SoA scans.
///
/// The switch arbiter's candidate cache (`voq_dl_`, DESIGN.md §8) stores
/// per-VOQ deadlines as contiguous int64 rows precisely so one arbitration
/// round is a linear scan. This header supplies that scan as a single
/// utility, `dqos::simd::argmin_i64`, with three compile-time-selected
/// implementations:
///
///   - SSE4.2 (x86): two 2-lane vectors (4-wide), `pcmpgtq` + blends;
///   - NEON (aarch64): two 2-lane vectors (4-wide), `cmgt` + `bsl`;
///   - portable fallback: a 4-accumulator unrolled scalar kernel that
///     optimizing compilers reduce to branchless conditional moves.
///
/// All three return the index of the minimum element, breaking ties toward
/// the **lowest index** — the same contract as the reference scalar loop
/// (`argmin_i64_scalar`), which the exhaustive equivalence test
/// (tests/util/test_simd.cpp) pins across every lane position, tie shape,
/// sentinel placement, and non-multiple-of-width length.
///
/// Selection is per-translation-unit at compile time: the top-level CMake
/// probe enables `-msse4.2` only when the build host can execute it, so a
/// plain build stays baseline-portable.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/contracts.hpp"

#if defined(__SSE4_2__)
#include <smmintrin.h>
#define DQOS_SIMD_SSE42 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define DQOS_SIMD_NEON 1
#endif

namespace dqos::simd {

/// Reference implementation: the contract all kernels must match bit-for-
/// bit (first index of the minimum value). `n` must be >= 1.
[[nodiscard]] inline std::size_t argmin_i64_scalar(const std::int64_t* v,
                                                   std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

namespace detail {

/// Folds four (value, first-index-in-lane) accumulators — lane k covering
/// indices ≡ k (mod 4) — into the global first-minimum index. Each lane
/// holds the first index of its own minimum, so the fold only needs the
/// value-then-lowest-index tie-break.
[[nodiscard]] inline std::size_t fold4(std::int64_t m0, std::size_t i0,
                                       std::int64_t m1, std::size_t i1,
                                       std::int64_t m2, std::size_t i2,
                                       std::int64_t m3, std::size_t i3) {
  std::int64_t mb = m0;
  std::size_t ib = i0;
  if (m1 < mb || (m1 == mb && i1 < ib)) { mb = m1; ib = i1; }
  if (m2 < mb || (m2 == mb && i2 < ib)) { mb = m2; ib = i2; }
  if (m3 < mb || (m3 == mb && i3 < ib)) { mb = m3; ib = i3; }
  return ib;
}

}  // namespace detail

/// 4-accumulator unrolled kernel: four independent strided minima break
/// the loop-carried compare dependency; compilers emit cmov/csel for the
/// lane updates. Short rows take the scalar loop directly.
// dqos-lint: hot
[[nodiscard]] inline std::size_t argmin_i64_unrolled(const std::int64_t* v,
                                                     std::size_t n) {
  DQOS_EXPECTS(n >= 1);
  if (n < 8) return argmin_i64_scalar(v, n);
  std::int64_t m0 = v[0], m1 = v[1], m2 = v[2], m3 = v[3];
  std::size_t i0 = 0, i1 = 1, i2 = 2, i3 = 3;
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    if (v[i + 0] < m0) { m0 = v[i + 0]; i0 = i + 0; }
    if (v[i + 1] < m1) { m1 = v[i + 1]; i1 = i + 1; }
    if (v[i + 2] < m2) { m2 = v[i + 2]; i2 = i + 2; }
    if (v[i + 3] < m3) { m3 = v[i + 3]; i3 = i + 3; }
  }
  std::size_t best = detail::fold4(m0, i0, m1, i1, m2, i2, m3, i3);
  for (; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

#if defined(DQOS_SIMD_SSE42)

/// SSE4.2 kernel: two 2-lane int64 vectors per iteration (4-wide). The
/// strict `pcmpgtq(min, a)` mask replaces a lane only when the new value
/// is strictly smaller, so each lane keeps the *first* index of its
/// minimum — the fold then matches the scalar tie-break exactly.
// dqos-lint: hot
[[nodiscard]] inline std::size_t argmin_i64_sse42(const std::int64_t* v,
                                                  std::size_t n) {
  DQOS_EXPECTS(n >= 1);
  if (n < 8) return argmin_i64_scalar(v, n);
  __m128i minv0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + 0));
  __m128i minv1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + 2));
  __m128i mini0 = _mm_set_epi64x(1, 0);
  __m128i mini1 = _mm_set_epi64x(3, 2);
  __m128i cur0 = mini0;
  __m128i cur1 = mini1;
  const __m128i step = _mm_set1_epi64x(4);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    cur0 = _mm_add_epi64(cur0, step);
    cur1 = _mm_add_epi64(cur1, step);
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i + 0));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i + 2));
    const __m128i lt0 = _mm_cmpgt_epi64(minv0, a);  // a strictly smaller
    const __m128i lt1 = _mm_cmpgt_epi64(minv1, b);
    minv0 = _mm_blendv_epi8(minv0, a, lt0);
    mini0 = _mm_blendv_epi8(mini0, cur0, lt0);
    minv1 = _mm_blendv_epi8(minv1, b, lt1);
    mini1 = _mm_blendv_epi8(mini1, cur1, lt1);
  }
  std::size_t best = detail::fold4(
      _mm_cvtsi128_si64(minv0), static_cast<std::size_t>(_mm_cvtsi128_si64(mini0)),
      _mm_extract_epi64(minv0, 1),
      static_cast<std::size_t>(_mm_extract_epi64(mini0, 1)),
      _mm_cvtsi128_si64(minv1), static_cast<std::size_t>(_mm_cvtsi128_si64(mini1)),
      _mm_extract_epi64(minv1, 1),
      static_cast<std::size_t>(_mm_extract_epi64(mini1, 1)));
  for (; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

#elif defined(DQOS_SIMD_NEON)

/// NEON (aarch64) kernel: the mirror of the SSE4.2 one — `vcgtq_s64` for
/// the strict compare, `vbslq` for the blends.
// dqos-lint: hot
[[nodiscard]] inline std::size_t argmin_i64_neon(const std::int64_t* v,
                                                 std::size_t n) {
  DQOS_EXPECTS(n >= 1);
  if (n < 8) return argmin_i64_scalar(v, n);
  int64x2_t minv0 = vld1q_s64(v + 0);
  int64x2_t minv1 = vld1q_s64(v + 2);
  const std::int64_t init0[2] = {0, 1};
  const std::int64_t init1[2] = {2, 3};
  int64x2_t mini0 = vld1q_s64(init0);
  int64x2_t mini1 = vld1q_s64(init1);
  int64x2_t cur0 = mini0;
  int64x2_t cur1 = mini1;
  const int64x2_t step = vdupq_n_s64(4);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    cur0 = vaddq_s64(cur0, step);
    cur1 = vaddq_s64(cur1, step);
    const int64x2_t a = vld1q_s64(v + i + 0);
    const int64x2_t b = vld1q_s64(v + i + 2);
    const uint64x2_t lt0 = vcgtq_s64(minv0, a);  // a strictly smaller
    const uint64x2_t lt1 = vcgtq_s64(minv1, b);
    minv0 = vbslq_s64(lt0, a, minv0);
    mini0 = vbslq_s64(lt0, cur0, mini0);
    minv1 = vbslq_s64(lt1, b, minv1);
    mini1 = vbslq_s64(lt1, cur1, mini1);
  }
  std::size_t best = detail::fold4(
      vgetq_lane_s64(minv0, 0), static_cast<std::size_t>(vgetq_lane_s64(mini0, 0)),
      vgetq_lane_s64(minv0, 1), static_cast<std::size_t>(vgetq_lane_s64(mini0, 1)),
      vgetq_lane_s64(minv1, 0), static_cast<std::size_t>(vgetq_lane_s64(mini1, 0)),
      vgetq_lane_s64(minv1, 1), static_cast<std::size_t>(vgetq_lane_s64(mini1, 1)));
  for (; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

#endif

/// Name of the implementation `argmin_i64` dispatches to in this
/// translation unit (bench/diagnostic labelling).
inline constexpr const char* kArgminImpl =
#if defined(DQOS_SIMD_SSE42)
    "sse4.2";
#elif defined(DQOS_SIMD_NEON)
    "neon";
#else
    "unrolled";
#endif

/// First index of the minimum of `v[0..n)`, `n` >= 1. Compile-time
/// dispatch; every implementation is tie-break-identical to
/// argmin_i64_scalar.
[[nodiscard]] inline std::size_t argmin_i64(const std::int64_t* v,
                                            std::size_t n) {
#if defined(DQOS_SIMD_SSE42)
  return argmin_i64_sse42(v, n);
#elif defined(DQOS_SIMD_NEON)
  return argmin_i64_neon(v, n);
#else
  return argmin_i64_unrolled(v, n);
#endif
}

}  // namespace dqos::simd
