/// \file callback.hpp
/// A non-allocating, non-owning callback: a plain function pointer plus an
/// opaque context pointer.
///
/// The hot-path components (src/sim, src/switchfab) were de-virtualized in
/// PRs 2–3; `std::function` was the last remaining type-erasure there — it
/// heap-allocates beyond its small buffer, and its indirect call defeats
/// the branch predictor the same way a virtual dispatch does. Callback is
/// the deterministic replacement: 16 bytes, trivially copyable, no
/// allocation ever, and the dqos_lint rule `hot-path-type-erasure` keeps
/// `std::function`/`shared_ptr` from creeping back in.
///
/// Wiring idiom (the context pointer must outlive the callback):
///
///   ch->set_on_credit({[](void* c) { static_cast<Host*>(c)->pump(); },
///                      this});
///
/// A capture-less lambda converts to the raw function pointer; access
/// checking happens in the enclosing scope, so member functions can wire
/// private methods without trampolines.
#pragma once

namespace dqos {

template <typename Sig>
class Callback;

template <typename R, typename... Args>
class Callback<R(Args...)> {
 public:
  using RawFn = R (*)(void*, Args...);

  constexpr Callback() = default;
  constexpr Callback(RawFn fn, void* ctx) : fn_(fn), ctx_(ctx) {}

  /// True when a target is installed; an empty Callback must not be invoked.
  [[nodiscard]] constexpr explicit operator bool() const {
    return fn_ != nullptr;
  }

  R operator()(Args... args) const { return fn_(ctx_, args...); }

 private:
  RawFn fn_ = nullptr;
  void* ctx_ = nullptr;
};

}  // namespace dqos
