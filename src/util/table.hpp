/// \file table.hpp
/// Console table and CSV emission for benchmark harnesses. Every bench
/// binary prints the same rows/series the paper's table or figure reports;
/// TableWriter renders aligned text, CsvWriter dumps machine-readable data
/// alongside (for replotting).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dqos {

/// Aligned fixed-width console table. Usage:
///   TableWriter t({"load", "latency_us", "throughput"});
///   t.row({"0.2", "12.4", "0.199"});
///   t.print(stdout);
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void row(std::vector<std::string> cells);
  void print(std::FILE* out) const;

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 3);
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (RFC-4180-ish quoting for cells containing commas or
/// quotes). Opens lazily, creates parent-less paths as given.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<std::string>& cells);
  [[nodiscard]] bool ok() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace dqos
