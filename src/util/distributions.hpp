/// \file distributions.hpp
/// Random variates used by the workload models.
///
/// The paper's traffic model (Table 1, §4.2) needs:
///   - uniform packet/message sizes (control traffic),
///   - exponential inter-arrivals (Poisson arrival processes),
///   - Pareto variates for self-similar internet-like traffic
///     (burst lengths and packet sizes, per Jain [10] and the NPF switch
///     fabric benchmark [5]),
///   - lognormal frame sizes for the synthetic MPEG-4 model.
/// All distributions draw from an explicit Rng so streams stay independent.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace dqos {

/// Uniform real on [lo, hi).
class UniformReal {
 public:
  UniformReal(double lo, double hi) : lo_(lo), hi_(hi) { DQOS_EXPECTS(lo <= hi); }
  double operator()(Rng& rng) const { return lo_ + (hi_ - lo_) * rng.uniform(); }

 private:
  double lo_, hi_;
};

/// Uniform integer on [lo, hi] inclusive.
class UniformInt {
 public:
  UniformInt(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) { DQOS_EXPECTS(lo <= hi); }
  std::int64_t operator()(Rng& rng) const {
    return static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(lo_), static_cast<std::uint64_t>(hi_)));
  }

 private:
  std::int64_t lo_, hi_;
};

/// Exponential with the given mean (= 1/lambda).
class Exponential {
 public:
  explicit Exponential(double mean) : mean_(mean) { DQOS_EXPECTS(mean > 0); }
  double operator()(Rng& rng) const;
  [[nodiscard]] double mean() const { return mean_; }

 private:
  double mean_;
};

/// Pareto with shape alpha and scale x_m (support [x_m, inf)).
/// alpha in (1, 2] yields infinite variance — the self-similarity driver.
class Pareto {
 public:
  Pareto(double alpha, double xm) : alpha_(alpha), xm_(xm) {
    DQOS_EXPECTS(alpha > 0 && xm > 0);
  }
  double operator()(Rng& rng) const;
  /// Mean, defined only for alpha > 1.
  [[nodiscard]] double mean() const;

 private:
  double alpha_, xm_;
};

/// Pareto truncated to [lo, hi] by inverse-CDF restriction (not clipping),
/// so the tail shape inside the window is preserved. Used for packet sizes
/// in [128 B, 100 KB] (Table 1).
class BoundedPareto {
 public:
  BoundedPareto(double alpha, double lo, double hi);
  double operator()(Rng& rng) const;
  /// Analytic mean of the truncated distribution.
  [[nodiscard]] double mean() const;

 private:
  double alpha_, lo_, hi_;
};

/// Lognormal parameterized by the *target* mean and coefficient of
/// variation of the variate itself (not of the underlying normal) — the
/// natural way to express "mean frame size 120 KB, CV 0.4".
class LogNormal {
 public:
  LogNormal(double mean, double cv);
  double operator()(Rng& rng) const;
  [[nodiscard]] double mean() const { return mean_; }

 private:
  double mean_, mu_, sigma_;
};

/// Standard normal via Box–Muller (single value per call; simple and
/// branch-free enough for our rates).
double standard_normal(Rng& rng);

}  // namespace dqos
