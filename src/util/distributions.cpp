#include "util/distributions.hpp"

#include <cmath>
#include <numbers>

namespace dqos {

double Exponential::operator()(Rng& rng) const {
  return -mean_ * std::log(rng.uniform_pos());
}

double Pareto::operator()(Rng& rng) const {
  return xm_ / std::pow(rng.uniform_pos(), 1.0 / alpha_);
}

double Pareto::mean() const {
  DQOS_EXPECTS(alpha_ > 1.0);
  return alpha_ * xm_ / (alpha_ - 1.0);
}

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  DQOS_EXPECTS(alpha > 0 && lo > 0 && lo < hi);
}

double BoundedPareto::operator()(Rng& rng) const {
  // Inverse CDF of the Pareto restricted to [lo, hi]:
  //   F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a)
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  return std::min(std::max(x, lo_), hi_);
}

double BoundedPareto::mean() const {
  if (alpha_ == 1.0) {
    return lo_ * hi_ / (hi_ - lo_) * std::log(hi_ / lo_);
  }
  const double la = std::pow(lo_, alpha_);
  const double t = 1.0 - std::pow(lo_ / hi_, alpha_);
  return la / t * alpha_ / (alpha_ - 1.0) *
         (1.0 / std::pow(lo_, alpha_ - 1.0) - 1.0 / std::pow(hi_, alpha_ - 1.0));
}

LogNormal::LogNormal(double mean, double cv) : mean_(mean) {
  DQOS_EXPECTS(mean > 0 && cv >= 0);
  const double s2 = std::log(1.0 + cv * cv);
  sigma_ = std::sqrt(s2);
  mu_ = std::log(mean) - 0.5 * s2;
}

double LogNormal::operator()(Rng& rng) const {
  return std::exp(mu_ + sigma_ * standard_normal(rng));
}

double standard_normal(Rng& rng) {
  const double u1 = rng.uniform_pos();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace dqos
