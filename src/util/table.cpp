#include "util/table.hpp"

#include <algorithm>
#include <cinttypes>

#include "util/contracts.hpp"

namespace dqos {

TableWriter::TableWriter(std::vector<std::string> header) : header_(std::move(header)) {
  DQOS_EXPECTS(!header_.empty());
}

void TableWriter::row(std::vector<std::string> cells) {
  DQOS_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::fprintf(out, "%s%-*s", c ? "  " : "", static_cast<int>(width[c]), r[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& r : rows_) print_row(r);
}

std::string TableWriter::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TableWriter::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

CsvWriter::CsvWriter(std::string path) { file_ = std::fopen(path.c_str(), "w"); }

CsvWriter::~CsvWriter() {
  if (file_) std::fclose(file_);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!file_) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (i) std::fputc(',', file_);
    if (quote) {
      std::fputc('"', file_);
      for (char ch : cell) {
        if (ch == '"') std::fputc('"', file_);
        std::fputc(ch, file_);
      }
      std::fputc('"', file_);
    } else {
      std::fputs(cell.c_str(), file_);
    }
  }
  std::fputc('\n', file_);
}

}  // namespace dqos
