/// \file error.hpp
/// Common base for the library's structured runtime errors.
///
/// Every "this run cannot continue" condition — malformed configuration
/// (ConfigError), scenario/lifecycle misuse (RunError), or a conservation
/// invariant tripping at an audit epoch (AuditError) — derives from
/// DqosError, so tools embedding the library can catch one type and still
/// get the specific diagnostic (file:line for config, the audit dump for
/// invariants) through what().
#pragma once

#include <stdexcept>
#include <string>

namespace dqos {

class DqosError : public std::runtime_error {
 public:
  explicit DqosError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace dqos
