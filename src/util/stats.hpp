/// \file stats.hpp
/// Streaming statistics, quantiles and CDFs for the performance metrics the
/// paper reports: average latency, jitter (latency standard deviation),
/// maximum latency (the "closing vertical line" of the CDF plots), and the
/// cumulative distribution function of latency (§5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dqos {

/// Count / mean / variance / min / max in one pass (Welford's algorithm,
/// numerically stable). Values are doubles in whatever unit the caller uses
/// consistently (metrics code uses microseconds for latency, bytes for
/// sizes).
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< Population variance.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantile estimator — the P² (P-square) algorithm of Jain &
/// Chlamtac (CACM 1985). Tracks one quantile with five markers (heights +
/// positions) in O(1) memory and O(1) per sample, no allocation, no
/// sorting. Exact until five samples have arrived; afterwards the classic
/// piecewise-parabolic marker update. Used as the tail-latency fallback
/// once a SampleSet's reservoir engages (the reservoir's p99 carries
/// sampling noise exactly where the paper's plots care most).
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return n_; }
  /// Current estimate (exact small-sample quantile before 5 samples).
  [[nodiscard]] double value() const;

 private:
  double q_;
  std::uint64_t n_ = 0;
  double heights_[5]{};
  double pos_[5]{};      ///< actual marker positions (1-based)
  double desired_[5]{};  ///< desired marker positions
  double incr_[5]{};     ///< desired-position increments per sample
};

/// Sample collection for exact quantiles/CDFs. Stores every sample up to
/// `cap`, then switches to uniform reservoir sampling so memory stays
/// bounded while quantile estimates remain unbiased. Min/max/mean are always
/// exact (tracked separately).
class SampleSet {
 public:
  explicit SampleSet(std::size_t cap = 1u << 20, std::uint64_t seed = 0xda7a5e7);

  void add(double x);

  /// Pre-sizes the backing store for `n` expected samples (clamped at the
  /// reservoir cap) so steady-state sampling never reallocates multi-MB
  /// vectors mid-run. Call before the first add().
  void reserve(std::size_t n);

  [[nodiscard]] std::uint64_t count() const { return stats_.count(); }
  [[nodiscard]] double mean() const { return stats_.mean(); }
  [[nodiscard]] double stddev() const { return stats_.stddev(); }
  [[nodiscard]] double min() const { return stats_.min(); }
  [[nodiscard]] double max() const { return stats_.max(); }
  [[nodiscard]] const StreamingStats& stats() const { return stats_; }

  /// Exact (or reservoir-estimated) quantile, q in [0,1]. Empty set => 0.
  [[nodiscard]] double quantile(double q) const;

  /// 99th percentile: exact while every sample is stored; once the
  /// reservoir engages (count > cap), falls back to the P² streaming
  /// estimator, which has no subsampling noise. Small runs are unaffected.
  [[nodiscard]] double p99() const;

  /// 99.9th percentile, same exact-then-P² strategy — the deeper tail the
  /// overload SLO metrics report (EXPERIMENTS.md O1).
  [[nodiscard]] double p999() const;

  /// Fraction of samples <= x — one point of the empirical CDF.
  [[nodiscard]] double cdf_at(double x) const;

  /// Evaluates the empirical CDF at `points` evenly spaced values covering
  /// [min, max]; returns (x, P[X<=x]) pairs ready for plotting/printing.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_curve(std::size_t points = 50) const;

 private:
  void sort_if_needed() const;

  StreamingStats stats_;
  std::size_t cap_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  Rng rng_;
  P2Quantile p99_est_{0.99};
  P2Quantile p999_est_{0.999};
};

/// Jain's fairness index over per-entity allocations x_i:
///   J = (sum x)^2 / (n * sum x^2),  in (0, 1];  1 = perfectly fair.
/// Standard metric for best-effort bandwidth sharing (Jain [10] of the
/// paper's references). Empty input returns 0.
double jain_fairness(const std::vector<double>& allocations);

/// Fixed-bin histogram (linear bins). Used for burstiness/occupancy probes
/// where bounded memory and O(1) insert matter more than exactness.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace dqos
