#include "util/cli.hpp"

#include <cstdlib>
#include <fstream>

namespace dqos {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      // `--key value` form — but only if the next token isn't a flag.
      set(arg, argv[++i]);
    } else {
      set(arg, "true");  // bare flag
    }
  }
}

bool ArgParser::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  std::string section;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      // `[phase.2]` opens a section: subsequent keys get the prefix
      // `phase.2.`. `[]` returns to top level.
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::string prefix = section.empty() ? "" : section + ".";
    const std::string origin = path + ":" + std::to_string(lineno);
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      set(prefix + trim(line), "true", origin);
    } else {
      set(prefix + trim(line.substr(0, eq)), trim(line.substr(eq + 1)), origin);
    }
  }
  return true;
}

void ArgParser::set(const std::string& key, const std::string& value,
                    const std::string& origin) {
  values_[key] = value;
  origins_[key] = origin;
}

std::string ArgParser::origin(const std::string& key) const {
  const auto it = origins_.find(key);
  return it == origins_.end() ? "" : it->second;
}

bool ArgParser::has(const std::string& key) const { return values_.contains(key); }

std::optional<std::string> ArgParser::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(const std::string& key,
                              const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  return end == v->c_str() ? fallback : d;
}

std::int64_t ArgParser::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long n = std::strtoll(v->c_str(), &end, 10);
  return end == v->c_str() ? fallback : n;
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::string> ArgParser::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace dqos
