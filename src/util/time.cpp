#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace dqos {
namespace {

std::string format_ps(std::int64_t ps) {
  const double a = std::abs(static_cast<double>(ps));
  char buf[64];
  if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ps", static_cast<long long>(ps));
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f ns", static_cast<double>(ps) / 1e3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(ps) / 1e6);
  } else if (a < 1e12) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(ps) / 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(ps) / 1e12);
  }
  return buf;
}

}  // namespace

std::string to_string(Duration d) { return format_ps(d.ps()); }
std::string to_string(TimePoint t) { return format_ps(t.ps()); }

}  // namespace dqos
