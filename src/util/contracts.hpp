/// \file contracts.hpp
/// Lightweight Expects/Ensures-style contract checks (C++ Core Guidelines
/// I.6/I.8). Violations abort with a diagnostic: simulation code must never
/// continue past a broken invariant, since results would be silently wrong.
#pragma once

#include <cstdlib>
#include <source_location>
#include <string_view>

namespace dqos {

/// Prints a contract-violation diagnostic and aborts. Out-of-line so the
/// checking macros stay cheap at call sites.
[[noreturn]] void contract_violation(std::string_view kind,
                                     std::string_view condition,
                                     std::source_location where);

namespace detail {
inline void check(bool ok, std::string_view kind, std::string_view cond,
                  std::source_location where = std::source_location::current()) {
  if (!ok) contract_violation(kind, cond, where);
}
}  // namespace detail

}  // namespace dqos

/// Precondition check: argument/state requirements at function entry.
#define DQOS_EXPECTS(cond) \
  ::dqos::detail::check(static_cast<bool>(cond), "precondition", #cond)

/// Postcondition / invariant check.
#define DQOS_ENSURES(cond) \
  ::dqos::detail::check(static_cast<bool>(cond), "postcondition", #cond)

/// Internal invariant that should be unreachable if the module is correct.
#define DQOS_ASSERT(cond) \
  ::dqos::detail::check(static_cast<bool>(cond), "invariant", #cond)
