/// \file time.hpp
/// Strongly-typed simulated time.
///
/// All simulation time is kept in integer **picoseconds**. At the paper's
/// 8 Gb/s link rate one byte serializes in exactly 1000 ps, so the Virtual
/// Clock deadline increment L(P)/BW (paper §3.1) is exact for every packet
/// length — no floating-point drift can reorder deadlines.
///
/// Two distinct types are used (Core Guidelines I.4: strong types over
/// primitives):
///   - Duration  — a span of time (signed; differences may be negative),
///   - TimePoint — an absolute instant on some clock.
/// TimePoint - TimePoint = Duration; TimePoint + Duration = TimePoint.
/// Deadlines travel between nodes as Duration (the paper's TTD, §3.3).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace dqos {

/// A span of simulated time in picoseconds. Signed: TTD values and jitter
/// measurements may legitimately be negative.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration picoseconds(std::int64_t ps) { return Duration(ps); }
  constexpr static Duration nanoseconds(std::int64_t ns) { return Duration(ns * 1000); }
  constexpr static Duration microseconds(std::int64_t us) { return Duration(us * 1'000'000); }
  constexpr static Duration milliseconds(std::int64_t ms) { return Duration(ms * 1'000'000'000); }
  constexpr static Duration seconds(std::int64_t s) { return Duration(s * 1'000'000'000'000); }
  constexpr static Duration zero() { return Duration(0); }
  constexpr static Duration max() { return Duration(std::numeric_limits<std::int64_t>::max()); }

  /// Builds a duration from a (possibly fractional) count of seconds.
  /// Used by workload generators; deadline arithmetic stays integral.
  constexpr static Duration from_seconds_double(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e12));
  }

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) / 1e3; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) / 1e6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) / 1e9; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ps_) / 1e12; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(ps_ + o.ps_); }
  constexpr Duration operator-(Duration o) const { return Duration(ps_ - o.ps_); }
  constexpr Duration operator-() const { return Duration(-ps_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ps_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ps_ / k); }
  constexpr std::int64_t operator/(Duration o) const { return ps_ / o.ps_; }
  constexpr Duration& operator+=(Duration o) { ps_ += o.ps_; return *this; }
  constexpr Duration& operator-=(Duration o) { ps_ -= o.ps_; return *this; }

 private:
  constexpr explicit Duration(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

/// An absolute instant of simulated time (picoseconds since simulation
/// start on the *global* clock, or since boot on a node's skewed local
/// clock — the type does not distinguish clock domains; LocalClock does).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr static TimePoint from_ps(std::int64_t ps) { return TimePoint(ps); }
  constexpr static TimePoint zero() { return TimePoint(0); }
  constexpr static TimePoint max() { return TimePoint(std::numeric_limits<std::int64_t>::max()); }

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) / 1e6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) / 1e9; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ps_) / 1e12; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ps_ + d.ps()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ps_ - d.ps()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::picoseconds(ps_ - o.ps_); }
  constexpr TimePoint& operator+=(Duration d) { ps_ += d.ps(); return *this; }

 private:
  constexpr explicit TimePoint(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

constexpr TimePoint max(TimePoint a, TimePoint b) { return a < b ? b : a; }
constexpr TimePoint min(TimePoint a, TimePoint b) { return a < b ? a : b; }
constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }
constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }

namespace literals {
constexpr Duration operator""_ps(unsigned long long v) { return Duration::picoseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ns(unsigned long long v) { return Duration::nanoseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::microseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::milliseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::seconds(static_cast<std::int64_t>(v)); }
}  // namespace literals

/// Human-readable rendering with an auto-selected unit ("12.3 us").
std::string to_string(Duration d);
std::string to_string(TimePoint t);

/// Link bandwidth as an exact integral picoseconds-per-byte figure plus the
/// conversions the deadline algebra needs. 8 Gb/s => 1000 ps/byte.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr static Bandwidth from_gbps(double gbps) {
    // ps per byte = 8 bits / (gbps * 1e9 b/s) in ps.
    return Bandwidth(static_cast<std::int64_t>(8000.0 / gbps));
  }
  constexpr static Bandwidth from_bytes_per_sec(double bps) {
    return Bandwidth(static_cast<std::int64_t>(1e12 / bps));
  }
  constexpr static Bandwidth from_ps_per_byte(std::int64_t ppb) { return Bandwidth(ppb); }

  [[nodiscard]] constexpr std::int64_t ps_per_byte() const { return ps_per_byte_; }
  [[nodiscard]] constexpr double bytes_per_sec() const {
    return 1e12 / static_cast<double>(ps_per_byte_);
  }
  [[nodiscard]] constexpr double gbps() const {
    return 8000.0 / static_cast<double>(ps_per_byte_);
  }

  /// Serialization (or Virtual-Clock charging) time of `bytes` at this rate.
  [[nodiscard]] constexpr Duration transfer_time(std::int64_t bytes) const {
    return Duration::picoseconds(bytes * ps_per_byte_);
  }

  /// Scales the rate by `factor` (e.g. reserve 25% of a link).
  [[nodiscard]] constexpr Bandwidth scaled(double factor) const {
    return Bandwidth(static_cast<std::int64_t>(static_cast<double>(ps_per_byte_) / factor));
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;
  [[nodiscard]] constexpr bool valid() const { return ps_per_byte_ > 0; }

 private:
  constexpr explicit Bandwidth(std::int64_t ppb) : ps_per_byte_(ppb) {}
  std::int64_t ps_per_byte_ = 0;  ///< 0 = invalid/unset.
};

}  // namespace dqos
