/// \file dense_flow_table.hpp
/// Compact per-flow state storage for datacenter-scale runs (DESIGN.md §13).
///
/// `DenseFlowTable<T>` maps a 32-bit flow id to a T held in a *dense* slot
/// array: values live contiguously (cache-friendly iteration, zero per-node
/// heap overhead), and a private open-addressing index gives O(1)
/// id -> slot translation. Compare `std::unordered_map<FlowId, T>`: one
/// heap node (~48+ bytes of overhead) per entry, pointer-chasing lookups,
/// and buckets that never shrink — the memory ratchet this table replaces.
///
/// Layout:
///   ids_[s], values_[s]   — parallel dense arrays; slot s is whatever
///                           position the entry currently occupies
///   index_                — power-of-two open-addressing array of
///                           (id, slot) pairs, Fibonacci-hashed, linear
///                           probing with backward-shift deletion (no
///                           tombstones, so probe chains never rot)
///
/// Erase swap-removes: the last slot moves into the hole and its index
/// entry is patched. Consequently **references and slot positions are
/// invalidated by any insert or erase** — callers copy what they need
/// before mutating, exactly as they would around unordered_map::erase of
/// the element they hold.
///
/// Determinism contract: slot order is insertion-history dependent and
/// must never leak into simulation behaviour. Ordered traversal goes
/// through `ids_ascending()` (harvest-then-sort, the project-wide idiom);
/// `for_each` is provided for order-independent accumulation only.
///
/// Shrinking: the index halves itself when occupancy falls below 1/8 and
/// the dense arrays release capacity when size falls below a quarter of
/// it, so a churn spike does not ratchet RSS for the rest of a run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace dqos {

template <typename T>
class DenseFlowTable {
 public:
  using Id = std::uint32_t;

  DenseFlowTable() = default;

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] bool empty() const { return ids_.empty(); }

  [[nodiscard]] bool contains(Id id) const { return probe(id) != kNotFound; }

  /// Pointer to the value for `id`, nullptr if absent. Invalidated by any
  /// insert or erase.
  [[nodiscard]] T* find(Id id) {
    const std::size_t p = probe(id);
    return p == kNotFound ? nullptr : &values_[index_[p].slot];
  }
  [[nodiscard]] const T* find(Id id) const {
    const std::size_t p = probe(id);
    return p == kNotFound ? nullptr : &values_[index_[p].slot];
  }

  /// The value for `id`; the entry must exist.
  [[nodiscard]] T& at(Id id) {
    T* v = find(id);
    DQOS_EXPECTS(v != nullptr);
    return *v;
  }
  [[nodiscard]] const T& at(Id id) const {
    const T* v = find(id);
    DQOS_EXPECTS(v != nullptr);
    return *v;
  }

  /// Inserts a new entry; `id` must not be present. Returns the stored
  /// value (reference valid until the next insert/erase).
  T& insert(Id id, T value) {
    DQOS_EXPECTS(id != kInvalidId);
    DQOS_EXPECTS(!contains(id));
    grow_index_if_needed();
    const auto slot = static_cast<std::uint32_t>(ids_.size());
    // dqos-lint: allow(hot-path-transitive) — amortized dense growth
    ids_.push_back(id);
    // dqos-lint: allow(hot-path-transitive) — amortized dense growth
    values_.push_back(std::move(value));
    index_insert(id, slot);
    return values_.back();
  }

  /// The value for `id`, default-constructing a new entry if absent.
  T& get_or_insert(Id id) {
    if (T* v = find(id)) return *v;
    return insert(id, T{});
  }

  /// Removes `id` if present; returns whether an entry was erased.
  bool erase(Id id) {
    const std::size_t p = probe(id);
    if (p == kNotFound) return false;
    const std::uint32_t slot = index_[p].slot;
    index_remove(p);
    const std::uint32_t last = static_cast<std::uint32_t>(ids_.size()) - 1;
    if (slot != last) {
      ids_[slot] = ids_[last];
      values_[slot] = std::move(values_[last]);
      const std::size_t moved = probe(ids_[slot]);
      DQOS_ASSERT(moved != kNotFound);
      index_[moved].slot = slot;
    }
    ids_.pop_back();
    values_.pop_back();
    maybe_shrink();
    return true;
  }

  void clear() {
    ids_.clear();
    ids_.shrink_to_fit();
    values_.clear();
    values_.shrink_to_fit();
    index_.clear();
    index_.shrink_to_fit();
    mask_ = 0;
  }

  /// Every stored id in ascending order — the deterministic traversal.
  [[nodiscard]] std::vector<Id> ids_ascending() const {
    std::vector<Id> out(ids_.begin(), ids_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Unordered traversal over (id, value). Slot order depends on the
  /// insert/erase history: use only for order-independent work
  /// (accumulation, existence scans) — never to derive event order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t s = 0; s < ids_.size(); ++s) fn(ids_[s], values_[s]);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t s = 0; s < ids_.size(); ++s) fn(ids_[s], values_[s]);
  }

  /// Approximate heap footprint (dense arrays + index), for memory audits.
  [[nodiscard]] std::size_t memory_bytes() const {
    return ids_.capacity() * sizeof(Id) + values_.capacity() * sizeof(T) +
           index_.capacity() * sizeof(IndexEntry);
  }

 private:
  static constexpr Id kInvalidId = ~Id{0};
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kMinIndexCap = 16;

  struct IndexEntry {
    Id id = kInvalidId;
    std::uint32_t slot = 0;
  };

  /// Fibonacci multiplicative hash: spreads the sequential ids the flow
  /// registry hands out across the table.
  [[nodiscard]] std::size_t home(Id id) const {
    return static_cast<std::size_t>(
               (static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  /// Index position holding `id`, or kNotFound.
  [[nodiscard]] std::size_t probe(Id id) const {
    if (index_.empty()) return kNotFound;
    std::size_t p = home(id);
    while (index_[p].id != kInvalidId) {
      if (index_[p].id == id) return p;
      p = (p + 1) & mask_;
    }
    return kNotFound;
  }

  void index_insert(Id id, std::uint32_t slot) {
    std::size_t p = home(id);
    while (index_[p].id != kInvalidId) p = (p + 1) & mask_;
    index_[p] = IndexEntry{id, slot};
  }

  /// Backward-shift deletion: close the probe chain through `hole` so
  /// lookups never need tombstones.
  void index_remove(std::size_t hole) {
    index_[hole].id = kInvalidId;
    std::size_t p = (hole + 1) & mask_;
    while (index_[p].id != kInvalidId) {
      const std::size_t want = home(index_[p].id);
      // Shift back iff the hole sits within [want, p] cyclically.
      const bool reachable =
          hole <= p ? (want <= hole || want > p) : (want <= hole && want > p);
      if (reachable) {
        index_[hole] = index_[p];
        index_[p].id = kInvalidId;
        hole = p;
      }
      p = (p + 1) & mask_;
    }
  }

  void grow_index_if_needed() {
    // Keep occupancy under ~70%.
    if (index_.empty() || (ids_.size() + 1) * 10 > index_.size() * 7) {
      rebuild_index(std::max<std::size_t>(kMinIndexCap, index_.size() * 2));
    }
  }

  void maybe_shrink() {
    // Index: halve when below 1/8 occupancy. Dense arrays: release
    // capacity when under a quarter used. Both keep a small floor so
    // steady small tables never thrash.
    if (index_.size() > kMinIndexCap && ids_.size() * 8 < index_.size()) {
      std::size_t cap = index_.size();
      while (cap > kMinIndexCap && ids_.size() * 8 < cap) cap /= 2;
      rebuild_index(cap);
    }
    if (ids_.capacity() > 64 && ids_.size() * 4 < ids_.capacity()) {
      ids_.shrink_to_fit();
      values_.shrink_to_fit();
    }
  }

  void rebuild_index(std::size_t cap) {
    DQOS_ASSERT((cap & (cap - 1)) == 0);
    // dqos-lint: allow(hot-path-transitive) — occupancy-bounded rehash
    index_.assign(cap, IndexEntry{});
    index_.shrink_to_fit();
    mask_ = cap - 1;
    for (std::size_t s = 0; s < ids_.size(); ++s) {
      index_insert(ids_[s], static_cast<std::uint32_t>(s));
    }
  }

  std::vector<Id> ids_;
  std::vector<T> values_;
  std::vector<IndexEntry> index_;
  std::size_t mask_ = 0;
};

}  // namespace dqos
