/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every stochastic component (traffic generators, clock-skew assignment,
/// destination pickers) draws from its own Rng *stream*, derived from the
/// experiment seed with SplitMix64. Two properties matter for a simulator:
///   1. Reproducibility — same seed, same results, regardless of the order
///      in which components happen to be constructed.
///   2. Stream independence — adding a generator must not perturb the draws
///      of existing ones, so A/B architecture comparisons see identical
///      offered traffic.
/// The core generator is xoshiro256** (public domain, Blackman & Vigna),
/// which is much faster than std::mt19937_64 and has no observed failures
/// in BigCrush.
#pragma once

#include <array>
#include <cstdint>

#include "util/contracts.hpp"

namespace dqos {

/// SplitMix64 step: used for seeding and stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience draws. Satisfies
/// std::uniform_random_bit_generator so it can feed <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state by running SplitMix64 on `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) : seed_(seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in (0, 1] — safe as an argument to log().
  double uniform_pos() { return 1.0 - uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Uses Lemire-style rejection to
  /// stay unbiased.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    DQOS_EXPECTS(lo <= hi);
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return next();  // full 64-bit range
    const std::uint64_t limit = ~0ULL - ~0ULL % range;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return lo + v % range;
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child stream; `salt` distinguishes siblings.
  /// Child state depends only on (parent seed material, salt), never on how
  /// many numbers the parent has drawn — call order can't couple streams.
  [[nodiscard]] Rng split(std::uint64_t salt) const {
    std::uint64_t sm = seed_ ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;  ///< original seed material; basis for split()
};

}  // namespace dqos
