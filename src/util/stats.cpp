#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double StreamingStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

P2Quantile::P2Quantile(double q) : q_(q) {
  DQOS_EXPECTS(q > 0.0 && q < 1.0);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) pos_[i] = static_cast<double>(i + 1);
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
      incr_[0] = 0.0;
      incr_[1] = q_ / 2.0;
      incr_[2] = q_;
      incr_[3] = (1.0 + q_) / 2.0;
      incr_[4] = 1.0;
    }
    return;
  }
  ++n_;
  // Locate the cell containing x and stretch the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];
  // Nudge interior markers toward their desired positions, adjusting the
  // heights with the piecewise-parabolic (P²) formula, falling back to
  // linear interpolation when the parabola would break monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    const double right = pos_[i + 1] - pos_[i];
    const double left = pos_[i - 1] - pos_[i];
    if ((d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double hi = heights_[i + 1];
      const double hm = heights_[i];
      const double lo = heights_[i - 1];
      double cand = hm + s / (right - left) *
                             ((s - left) * (hi - hm) / right +
                              (right - s) * (hm - lo) / -left);
      if (cand <= lo || cand >= hi) {
        // Parabolic step left the bracket: use the linear formula.
        cand = s > 0 ? hm + (hi - hm) / right : hm + (lo - hm) / -left;
      }
      heights_[i] = cand;
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact small-sample quantile with linear interpolation (matches
    // SampleSet::quantile so the fallback is seamless for tiny sets).
    double tmp[5];
    std::copy(heights_, heights_ + n_, tmp);
    std::sort(tmp, tmp + n_);
    const double posn = q_ * static_cast<double>(n_ - 1);
    const auto i = static_cast<std::size_t>(posn);
    const double frac = posn - static_cast<double>(i);
    if (i + 1 >= n_) return tmp[n_ - 1];
    return tmp[i] * (1.0 - frac) + tmp[i + 1] * frac;
  }
  return heights_[2];
}

SampleSet::SampleSet(std::size_t cap, std::uint64_t seed) : cap_(cap), rng_(seed) {
  DQOS_EXPECTS(cap > 0);
}

void SampleSet::reserve(std::size_t n) {
  samples_.reserve(std::min(n, cap_));
}

void SampleSet::add(double x) {
  stats_.add(x);
  p99_est_.add(x);
  p999_est_.add(x);
  if (samples_.size() < cap_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Reservoir sampling: keep each of the n samples seen so far with equal
  // probability cap/n.
  const std::uint64_t n = stats_.count();
  const std::uint64_t j = rng_.uniform_int(0, n - 1);
  if (j < samples_.size()) {
    samples_[j] = x;
    sorted_ = false;
  }
}

void SampleSet::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  DQOS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= samples_.size()) return samples_.back();
  return samples_[i] * (1.0 - frac) + samples_[i + 1] * frac;
}

double SampleSet::p99() const {
  // While every sample is retained the sorted-set quantile is exact; once
  // the reservoir engages, prefer the P² estimate — it tracks the true
  // tail without the reservoir's subsampling noise.
  if (stats_.count() <= cap_) return quantile(0.99);
  return p99_est_.value();
}

double SampleSet::p999() const {
  if (stats_.count() <= cap_) return quantile(0.999);
  return p999_est_.value();
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || points < 2) return curve;
  sort_if_needed();
  curve.reserve(points);
  const double lo = stats_.min();
  const double hi = stats_.max();
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    curve.emplace_back(x, cdf_at(x));
  }
  return curve;
}

double jain_fairness(const std::vector<double>& allocations) {
  if (allocations.empty()) return 0.0;
  double sum = 0.0, sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sq);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  DQOS_EXPECTS(lo < hi && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(i, counts_.size() - 1)];
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

}  // namespace dqos
