#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double StreamingStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

SampleSet::SampleSet(std::size_t cap, std::uint64_t seed) : cap_(cap), rng_(seed) {
  DQOS_EXPECTS(cap > 0);
}

void SampleSet::add(double x) {
  stats_.add(x);
  if (samples_.size() < cap_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Reservoir sampling: keep each of the n samples seen so far with equal
  // probability cap/n.
  const std::uint64_t n = stats_.count();
  const std::uint64_t j = rng_.uniform_int(0, n - 1);
  if (j < samples_.size()) {
    samples_[j] = x;
    sorted_ = false;
  }
}

void SampleSet::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  DQOS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= samples_.size()) return samples_.back();
  return samples_[i] * (1.0 - frac) + samples_[i + 1] * frac;
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || points < 2) return curve;
  sort_if_needed();
  curve.reserve(points);
  const double lo = stats_.min();
  const double hi = stats_.max();
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    curve.emplace_back(x, cdf_at(x));
  }
  return curve;
}

double jain_fairness(const std::vector<double>& allocations) {
  if (allocations.empty()) return 0.0;
  double sum = 0.0, sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sq);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  DQOS_EXPECTS(lo < hi && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(i, counts_.size() - 1)];
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

}  // namespace dqos
