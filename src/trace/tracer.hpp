/// \file tracer.hpp
/// Packet event tracing: every hop of every packet, timestamped on the
/// global observer clock, for debugging schedules and auditing QoS
/// decisions ("why was this control packet late?").
///
/// Components accept an optional PacketTracer via set_tracer(); tracing is
/// off (null) by default and costs nothing. The tracer keeps a bounded
/// in-memory log (records beyond the capacity are counted, not stored) and
/// can dump RFC-4180 CSV for offline analysis (scripts/ shows examples).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proto/packet.hpp"
#include "proto/types.hpp"
#include "util/time.hpp"

namespace dqos {

enum class TraceEvent : std::uint8_t {
  kCreated = 0,       ///< application handed the message part to the NIC
  kInjected = 1,      ///< first byte left the source host
  kHopArrival = 2,    ///< tail arrived at a switch input buffer
  kXbarTransfer = 3,  ///< crossbar moved it to the output buffer
  kLinkDepart = 4,    ///< started serializing on an output link
  kDelivered = 5,     ///< last byte reached the destination host
  kDropped = 6,       ///< unregulated message shed at the source NIC
  kLinkDown = 7,      ///< fault injection took a link down
  kLinkUp = 8,        ///< a transiently-failed link was repaired
};

std::string_view to_string(TraceEvent ev);

struct TraceRecord {
  TimePoint when;
  TraceEvent event = TraceEvent::kCreated;
  std::uint64_t packet_id = 0;
  FlowId flow = kInvalidFlow;
  NodeId node = kInvalidNode;   ///< where it happened
  TrafficClass tclass = TrafficClass::kControl;
  std::uint32_t bytes = 0;
  Duration ttd;                 ///< header TTD at the event (deadline slack)
};

class PacketTracer {
 public:
  explicit PacketTracer(std::size_t capacity = 1u << 20);

  void record(TimePoint when, TraceEvent ev, const Packet& p, NodeId node);
  /// Packet-less record (message drops).
  void record_drop(TimePoint when, FlowId flow, TrafficClass tclass, NodeId node);
  /// Link state change at (node, port); `bytes` carries the port number.
  void record_link_event(TimePoint when, TraceEvent ev, NodeId node, PortId port);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// All records of one packet, in time order (records are appended in
  /// simulation order, so no sort is needed).
  [[nodiscard]] std::vector<TraceRecord> packet_history(std::uint64_t packet_id) const;

  /// Per-packet wall time between two events (e.g. kInjected->kDelivered);
  /// returns samples for every packet that has both.
  [[nodiscard]] std::vector<double> stage_latencies_us(TraceEvent from,
                                                       TraceEvent to) const;

  /// CSV: when_ps,event,packet_id,flow,node,class,bytes,ttd_ps.
  bool dump_csv(const std::string& path) const;

  void clear();

 private:
  void push(const TraceRecord& r);

  std::size_t capacity_;
  std::vector<TraceRecord> records_;
  std::uint64_t overflow_ = 0;
};

}  // namespace dqos
