#include "trace/tracer.hpp"

#include <cstdio>
#include <unordered_map>

#include "util/contracts.hpp"

namespace dqos {

std::string_view to_string(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kCreated: return "created";
    case TraceEvent::kInjected: return "injected";
    case TraceEvent::kHopArrival: return "hop-arrival";
    case TraceEvent::kXbarTransfer: return "xbar-transfer";
    case TraceEvent::kLinkDepart: return "link-depart";
    case TraceEvent::kDelivered: return "delivered";
    case TraceEvent::kDropped: return "dropped";
    case TraceEvent::kLinkDown: return "link-down";
    case TraceEvent::kLinkUp: return "link-up";
  }
  return "?";
}

PacketTracer::PacketTracer(std::size_t capacity) : capacity_(capacity) {
  DQOS_EXPECTS(capacity > 0);
  records_.reserve(std::min<std::size_t>(capacity, 4096));
}

void PacketTracer::push(const TraceRecord& r) {
  if (records_.size() >= capacity_) {
    ++overflow_;
    return;
  }
  records_.push_back(r);
}

void PacketTracer::record(TimePoint when, TraceEvent ev, const Packet& p,
                          NodeId node) {
  push(TraceRecord{when, ev, p.hdr.packet_id, p.hdr.flow, node, p.hdr.tclass,
                   p.hdr.wire_bytes, p.hdr.ttd});
}

void PacketTracer::record_drop(TimePoint when, FlowId flow, TrafficClass tclass,
                               NodeId node) {
  push(TraceRecord{when, TraceEvent::kDropped, 0, flow, node, tclass, 0,
                   Duration::zero()});
}

void PacketTracer::record_link_event(TimePoint when, TraceEvent ev, NodeId node,
                                     PortId port) {
  DQOS_EXPECTS(ev == TraceEvent::kLinkDown || ev == TraceEvent::kLinkUp);
  push(TraceRecord{when, ev, 0, kInvalidFlow, node, TrafficClass::kControl, port,
                   Duration::zero()});
}

std::vector<TraceRecord> PacketTracer::packet_history(std::uint64_t packet_id) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.packet_id == packet_id) out.push_back(r);
  }
  return out;
}

std::vector<double> PacketTracer::stage_latencies_us(TraceEvent from,
                                                     TraceEvent to) const {
  std::unordered_map<std::uint64_t, TimePoint> starts;
  std::vector<double> out;
  for (const auto& r : records_) {
    if (r.packet_id == 0) continue;
    if (r.event == from) {
      starts[r.packet_id] = r.when;
    } else if (r.event == to) {
      const auto it = starts.find(r.packet_id);
      if (it != starts.end()) {
        out.push_back((r.when - it->second).us());
        starts.erase(it);
      }
    }
  }
  return out;
}

bool PacketTracer::dump_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fputs("when_ps,event,packet_id,flow,node,class,bytes,ttd_ps\n", f);
  for (const auto& r : records_) {
    std::fprintf(f, "%lld,%s,%llu,%u,%u,%s,%u,%lld\n",
                 static_cast<long long>(r.when.ps()),
                 std::string(to_string(r.event)).c_str(),
                 static_cast<unsigned long long>(r.packet_id), r.flow, r.node,
                 std::string(to_string(r.tclass)).c_str(), r.bytes,
                 static_cast<long long>(r.ttd.ps()));
  }
  std::fclose(f);
  return true;
}

void PacketTracer::clear() {
  records_.clear();
  overflow_ = 0;
}

}  // namespace dqos
