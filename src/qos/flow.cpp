#include "qos/flow.hpp"

namespace dqos {

std::string_view to_string(DeadlinePolicy p) {
  switch (p) {
    case DeadlinePolicy::kVirtualClock: return "virtual-clock";
    case DeadlinePolicy::kControlLatency: return "control-latency";
    case DeadlinePolicy::kFrameBudget: return "frame-budget";
  }
  return "?";
}

}  // namespace dqos
