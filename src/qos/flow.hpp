/// \file flow.hpp
/// Flow descriptions (§3): "a flow would be a single connection, like a TCP
/// connection or traffic from a single application. Each flow would have
/// the following parameters: source, destination, a fixed route, and the
/// information necessary to compute deadlines."
///
/// All per-flow state lives at the **end hosts** (and, for admission, at the
/// central fabric manager). Switches never see these records.
#pragma once

#include <cstdint>

#include "proto/packet.hpp"
#include "proto/types.hpp"
#include "util/time.hpp"

namespace dqos {

/// How the source host computes deadlines for this flow (§3.1).
enum class DeadlinePolicy : std::uint8_t {
  /// D(P_i) = max(D(P_{i-1}), T_now) + L(P_i)/BW_avg — the Virtual Clock
  /// rule with the flow's (reserved or nominal) average bandwidth.
  kVirtualClock = 0,
  /// Control traffic: same formula with BW_avg = the *link* bandwidth, no
  /// admission — "control traffic gets the maximum priority".
  kControlLatency = 1,
  /// Multimedia: per application frame, D(P_i) = max(D(P_{i-1}), T_now) +
  /// frame_budget / Parts(F_i), so every frame lands close to the budget
  /// regardless of its size.
  kFrameBudget = 2,
};

std::string_view to_string(DeadlinePolicy p);

/// What a host asks the admission controller for.
struct FlowRequest {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TrafficClass tclass = TrafficClass::kBestEffort;
  DeadlinePolicy policy = DeadlinePolicy::kVirtualClock;

  /// Bandwidth reserved along the path (regulated flows with
  /// kVirtualClock). Invalid (default) => no reservation, only
  /// load-balanced path assignment.
  Bandwidth reserve_bw;

  /// Bandwidth used for *deadline computation*. For best-effort classes
  /// this acts as the weight that differentiates classes sharing a VC
  /// (§3: "several aggregated flows, each one with a different bandwidth
  /// to compute deadlines"). Unset => reserve_bw, or link bandwidth for
  /// kControlLatency.
  Bandwidth deadline_bw;

  /// kFrameBudget: the user-fixed per-frame latency target (e.g. 10 ms).
  Duration frame_budget = Duration::milliseconds(10);

  /// Smooth injection: hold packets until deadline minus `eligible_lead`
  /// (§3.1 recommends 20 us for multimedia).
  bool use_eligible_time = false;
  Duration eligible_lead = Duration::microseconds(20);

  /// Ingress policing: enforce the reservation with a token bucket at the
  /// source NIC (requires reserve_bw). `police_burst` sizes the bucket
  /// (reserve_bw x police_burst, floored at one max-size frame).
  bool police = false;
  Duration police_burst = Duration::milliseconds(40);
};

/// An admitted flow: the request plus the controller's decisions.
struct FlowSpec {
  FlowId id = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TrafficClass tclass = TrafficClass::kBestEffort;
  VcId vc = kBestEffortVc;
  DeadlinePolicy policy = DeadlinePolicy::kVirtualClock;
  Bandwidth reserve_bw;       ///< valid iff bandwidth was reserved
  Bandwidth deadline_bw;      ///< always valid
  Duration frame_budget = Duration::milliseconds(10);
  bool use_eligible_time = false;
  Duration eligible_lead = Duration::microseconds(20);
  bool police = false;
  Duration police_burst = Duration::milliseconds(40);
  SourceRoute route;          ///< the fixed route (choice made at admission)
  std::size_t route_choice = 0;

  /// Aggregated-flow support (§3: unregulated traffic keeps "a generic flow
  /// record" per class at the end host): flows sharing an `aggregate` id
  /// share one Virtual Clock deadline state, so `deadline_bw` is the
  /// *class* budget rather than a per-destination one. kInvalidFlow =
  /// stand-alone flow.
  FlowId aggregate = kInvalidFlow;
};

}  // namespace dqos
