#include "qos/token_bucket.hpp"

#include "util/contracts.hpp"

namespace dqos {

TokenBucket::TokenBucket(Bandwidth rate, std::uint64_t capacity_bytes)
    : rate_(rate), capacity_(capacity_bytes), tokens_(capacity_bytes) {
  DQOS_EXPECTS(rate.valid());
  DQOS_EXPECTS(capacity_bytes > 0);
}

void TokenBucket::refill(TimePoint local_now) {
  if (!started_) {
    last_refill_ = local_now;
    started_ = true;
    return;
  }
  DQOS_EXPECTS(local_now >= last_refill_);
  const std::int64_t elapsed_ps = (local_now - last_refill_).ps();
  const auto earned =
      static_cast<std::uint64_t>(elapsed_ps / rate_.ps_per_byte());
  if (earned == 0) return;  // keep the remainder accruing in last_refill_
  tokens_ = std::min(capacity_, tokens_ + earned);
  // Charge only the time actually converted into tokens, so sub-byte
  // remainders are never lost (exact long-run rate).
  last_refill_ += Duration::picoseconds(static_cast<std::int64_t>(earned) *
                                        rate_.ps_per_byte());
}

bool TokenBucket::try_consume(std::uint64_t bytes, TimePoint local_now) {
  refill(local_now);
  if (tokens_ < bytes) return false;
  tokens_ -= bytes;
  return true;
}

std::uint64_t TokenBucket::available(TimePoint local_now) {
  refill(local_now);
  return tokens_;
}

}  // namespace dqos
