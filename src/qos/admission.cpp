#include "qos/admission.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/contracts.hpp"

namespace dqos {

AdmissionController::AdmissionController(const Topology& topo, Bandwidth link_bw,
                                         double reservable_fraction)
    : topo_(topo), link_bw_(link_bw), reservable_fraction_(reservable_fraction) {
  DQOS_EXPECTS(link_bw.valid());
  DQOS_EXPECTS(reservable_fraction > 0.0 && reservable_fraction <= 1.0);
}

std::pair<double, std::uint32_t> AdmissionController::path_load(
    const std::vector<Endpoint>& links) const {
  // The first (host injection) and last (leaf -> destination) links are
  // shared by every minimal path of the pair; including them in the *max*
  // would mask the differences between candidate paths. Feasibility is
  // still checked on every link in admit().
  double max_frac = 0.0;
  std::uint32_t max_flows = 0;
  for (std::size_t i = 1; i + 1 < links.size(); ++i) {
    const auto it = load_.find(key(links[i]));
    if (it == load_.end()) continue;
    max_frac = std::max(max_frac,
                        it->second.reserved_bytes_per_sec / link_bw_.bytes_per_sec());
    max_flows = std::max(max_flows, it->second.flow_count);
  }
  return {max_frac, max_flows};
}

std::optional<std::size_t> AdmissionController::pick_route(NodeId src, NodeId dst,
                                                           double want_bps) const {
  const double budget_bps = link_bw_.bytes_per_sec() * reservable_fraction_;

  // Evaluate every minimal path; keep the least loaded feasible one.
  const std::size_t n_choices = topo_.route_count(src, dst);
  std::optional<std::size_t> best;
  std::pair<double, std::uint32_t> best_load{0.0, 0};
  for (std::size_t c = 0; c < n_choices; ++c) {
    const auto links = topo_.route_links(src, dst, c);
    bool feasible = true;
    for (const auto& e : links) {
      if (failed_.count(key(e)) > 0) {
        feasible = false;
        break;
      }
      const auto it = load_.find(key(e));
      const double reserved = it == load_.end() ? 0.0 : it->second.reserved_bytes_per_sec;
      // 1 B/s epsilon: accumulated FP dust must not reject an exact fit.
      if (reserved + want_bps > budget_bps + 1.0) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    const auto pl = path_load(links);
    if (!best || pl < best_load) {
      best = c;
      best_load = pl;
    }
  }
  return best;
}

std::optional<FlowSpec> AdmissionController::admit(const FlowRequest& req) {
  DQOS_EXPECTS(topo_.is_host(req.src) && topo_.is_host(req.dst));
  DQOS_EXPECTS(req.src != req.dst);

  const double want_bps = req.reserve_bw.valid() ? req.reserve_bw.bytes_per_sec() : 0.0;
  const auto best = pick_route(req.src, req.dst, want_bps);
  if (!best) {
    ++rejected_;
    return std::nullopt;
  }

  // Commit the reservation / path counts.
  for (const auto& e : topo_.route_links(req.src, req.dst, *best)) {
    LinkLoad& l = load_[key(e)];
    l.reserved_bytes_per_sec += want_bps;
    ++l.flow_count;
  }

  FlowSpec spec;
  spec.id = next_id_++;
  spec.src = req.src;
  spec.dst = req.dst;
  spec.tclass = req.tclass;
  spec.vc = class_vc_[static_cast<std::size_t>(req.tclass)];
  spec.policy = req.policy;
  spec.reserve_bw = req.reserve_bw;
  spec.frame_budget = req.frame_budget;
  spec.use_eligible_time = req.use_eligible_time;
  spec.eligible_lead = req.eligible_lead;
  spec.police = req.police && req.reserve_bw.valid();
  spec.police_burst = req.police_burst;
  spec.route_choice = *best;
  spec.route = topo_.build_route(req.src, req.dst, *best);
  // Deadline bandwidth: explicit > reserved > link rate (control).
  if (req.deadline_bw.valid()) {
    spec.deadline_bw = req.deadline_bw;
  } else if (req.policy == DeadlinePolicy::kControlLatency || !req.reserve_bw.valid()) {
    spec.deadline_bw = link_bw_;
  } else {
    spec.deadline_bw = req.reserve_bw;
  }

  flows_.emplace(spec.id,
                 FlowRecord{req.src, req.dst, *best, want_bps, req.tclass});
  return spec;
}

void AdmissionController::release(FlowId id) {
  const auto it = flows_.find(id);
  DQOS_EXPECTS(it != flows_.end());
  const FlowRecord& rec = it->second;
  for (const auto& e : topo_.route_links(rec.src, rec.dst, rec.choice)) {
    LinkLoad& l = load_[key(e)];
    l.reserved_bytes_per_sec -= rec.reserved_bytes_per_sec;
    DQOS_ASSERT(l.flow_count > 0);
    --l.flow_count;
    // Sweep FP dust in both directions so ledgers return to exactly zero.
    if (std::abs(l.reserved_bytes_per_sec) < 1e-6) l.reserved_bytes_per_sec = 0.0;
  }
  flows_.erase(it);
}

void AdmissionController::mark_link_failed(const Endpoint& link) {
  failed_.insert(key(link));
}

void AdmissionController::mark_link_repaired(const Endpoint& link) {
  failed_.erase(key(link));
}

std::vector<AdmissionController::Reroute> AdmissionController::reroute_around_failures() {
  std::vector<Reroute> out;
  if (failed_.empty()) return out;

  // Ascending FlowId order: unordered_map iteration order must not leak
  // into which flow wins contended residual bandwidth.
  std::vector<FlowId> affected;
  // dqos-lint: allow(unordered-iteration) — harvest, sorted below
  for (const auto& [id, rec] : flows_) {
    for (const auto& e : topo_.route_links(rec.src, rec.dst, rec.choice)) {
      if (failed_.count(key(e)) > 0) {
        affected.push_back(id);
        break;
      }
    }
  }
  std::sort(affected.begin(), affected.end());

  for (const FlowId id : affected) {
    const FlowRecord rec = flows_.at(id);  // copy: release() erases it
    release(id);
    Reroute r;
    r.flow = id;
    r.src = rec.src;
    const auto best = pick_route(rec.src, rec.dst, rec.reserved_bytes_per_sec);
    if (best) {
      for (const auto& e : topo_.route_links(rec.src, rec.dst, *best)) {
        LinkLoad& l = load_[key(e)];
        l.reserved_bytes_per_sec += rec.reserved_bytes_per_sec;
        ++l.flow_count;
      }
      flows_.emplace(id, FlowRecord{rec.src, rec.dst, *best,
                                    rec.reserved_bytes_per_sec, rec.tclass});
      r.rerouted = true;
      r.new_choice = *best;
      r.new_route = topo_.build_route(rec.src, rec.dst, *best);
      ++flows_rerouted_;
    } else {
      ++flows_shed_;
    }
    out.push_back(r);
  }
  return out;
}

std::vector<AdmissionController::Reroute> AdmissionController::shed_to_highwater(
    double highwater) {
  std::vector<Reroute> out;
  if (highwater <= 0.0 || flows_.empty()) return out;
  const double mark_bps =
      link_bw_.bytes_per_sec() * reservable_fraction_ * highwater;
  // 1 B/s epsilon mirrors pick_route(): FP dust must not trigger shedding.
  const auto over = [&](const LinkLoad& l) {
    return l.reserved_bytes_per_sec > mark_bps + 1.0;
  };
  bool any_over = false;
  for (const auto& [k, l] : load_) any_over = any_over || over(l);
  if (!any_over) return out;

  // Shedding order: lowest traffic class first (highest enum value), newest
  // flow first within a class — the freshest low-priority admissions give
  // way before anything long-lived or important. Only reserving flows can
  // relieve a reserved-bandwidth overload.
  std::vector<FlowId> order;
  // dqos-lint: allow(unordered-iteration) — harvest, sorted below
  for (const auto& [id, rec] : flows_) {
    if (rec.reserved_bytes_per_sec > 0.0) order.push_back(id);
  }
  std::sort(order.begin(), order.end(), [&](FlowId a, FlowId b) {
    const FlowRecord& ra = flows_.at(a);
    const FlowRecord& rb = flows_.at(b);
    if (ra.tclass != rb.tclass) return ra.tclass > rb.tclass;
    return a > b;
  });

  for (const FlowId id : order) {
    const FlowRecord& rec = flows_.at(id);
    bool crosses_over = false;
    for (const auto& e : topo_.route_links(rec.src, rec.dst, rec.choice)) {
      const auto it = load_.find(key(e));
      if (it != load_.end() && over(it->second)) {
        crosses_over = true;
        break;
      }
    }
    if (!crosses_over) continue;  // its links already drained under the mark
    Reroute r;
    r.flow = id;
    r.src = rec.src;
    r.rerouted = false;
    release(id);
    ++flows_shed_;
    out.push_back(r);
  }
  return out;
}

std::string AdmissionController::audit_ledger() const {
  // Recompute the per-link ledger from first principles (the flow records)
  // and diff it against the incrementally-maintained `load_`.
  std::unordered_map<std::uint64_t, LinkLoad> want;
  // dqos-lint: allow(unordered-iteration) — order-independent accumulation
  for (const auto& [id, rec] : flows_) {
    for (const auto& e : topo_.route_links(rec.src, rec.dst, rec.choice)) {
      LinkLoad& l = want[key(e)];
      l.reserved_bytes_per_sec += rec.reserved_bytes_per_sec;
      ++l.flow_count;
    }
  }
  // Deterministic report order: smallest divergent link key wins.
  std::vector<std::uint64_t> keys;
  for (const auto& [k, l] : load_) keys.push_back(k);
  for (const auto& [k, l] : want) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const std::uint64_t k : keys) {
    const auto hit = load_.find(k);
    const auto wit = want.find(k);
    const LinkLoad have = hit == load_.end() ? LinkLoad{} : hit->second;
    const LinkLoad exp = wit == want.end() ? LinkLoad{} : wit->second;
    const auto node = static_cast<NodeId>(k >> 8);
    const auto port = static_cast<PortId>(k & 0xff);
    if (have.flow_count != exp.flow_count) {
      return "admission ledger: link (" + std::to_string(node) + "," +
             std::to_string(port) + ") counts " + std::to_string(have.flow_count) +
             " flows, records say " + std::to_string(exp.flow_count);
    }
    if (std::abs(have.reserved_bytes_per_sec - exp.reserved_bytes_per_sec) > 1e-6) {
      return "admission ledger: link (" + std::to_string(node) + "," +
             std::to_string(port) + ") reserves " +
             std::to_string(have.reserved_bytes_per_sec) +
             " B/s, records say " + std::to_string(exp.reserved_bytes_per_sec);
    }
  }
  return "";
}

std::vector<FlowId> AdmissionController::admitted_ids() const {
  std::vector<FlowId> out;
  out.reserve(flows_.size());
  // dqos-lint: allow(unordered-iteration) — harvest, sorted below
  for (const auto& [id, rec] : flows_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

double AdmissionController::total_reserved_bytes_per_sec() const {
  double sum = 0.0;
  for (const auto& [k, l] : load_) sum += l.reserved_bytes_per_sec;
  return sum;
}

double AdmissionController::reserved_fraction(const Endpoint& link) const {
  const auto it = load_.find(key(link));
  if (it == load_.end()) return 0.0;
  return it->second.reserved_bytes_per_sec / link_bw_.bytes_per_sec();
}

std::uint32_t AdmissionController::flows_on_link(const Endpoint& link) const {
  const auto it = load_.find(key(link));
  return it == load_.end() ? 0 : it->second.flow_count;
}

}  // namespace dqos
