#include "qos/admission.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/contracts.hpp"

namespace dqos {

AdmissionController::AdmissionController(const Topology& topo, Bandwidth link_bw,
                                         double reservable_fraction,
                                         bool hierarchical)
    : topo_(topo), link_bw_(link_bw), reservable_fraction_(reservable_fraction) {
  DQOS_EXPECTS(link_bw.valid());
  DQOS_EXPECTS(reservable_fraction > 0.0 && reservable_fraction <= 1.0);

  const std::uint32_t slots = topo_.num_link_slots();
  failed_.assign(slots, 0);
  link_owner_.assign(slots, 0);
  link_local_.assign(slots, 0);

  num_pod_brokers_ = hierarchical ? topo_.num_pods() : 0;
  brokers_.resize(num_pod_brokers_ + 1);
  const std::uint32_t root = num_pod_brokers_;
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    std::uint32_t owner = root;
    if (num_pod_brokers_ > 0) {
      const std::uint32_t pod = topo_.link_pod(topo_.link_endpoint(slot));
      if (pod != Topology::kNoPod) owner = pod;
    }
    link_owner_[slot] = owner;
    link_local_[slot] = static_cast<std::uint32_t>(brokers_[owner].load.size());
    brokers_[owner].load.emplace_back();
  }
}

std::uint32_t AdmissionController::home_broker(NodeId src, NodeId dst) const {
  if (num_pod_brokers_ == 0) return 0;
  const std::uint32_t sp = topo_.pod_of(src);
  return (sp != Topology::kNoPod && sp == topo_.pod_of(dst))
             ? sp
             : num_pod_brokers_;  // root
}

std::pair<double, std::uint32_t> AdmissionController::path_load(
    const std::vector<Endpoint>& links) const {
  // The first (host injection) and last (leaf -> destination) links are
  // shared by every minimal path of the pair; including them in the *max*
  // would mask the differences between candidate paths. Feasibility is
  // still checked on every link in admit().
  double max_frac = 0.0;
  std::uint32_t max_flows = 0;
  for (std::size_t i = 1; i + 1 < links.size(); ++i) {
    const LinkLoad& l = load_at(topo_.link_index(links[i]));
    max_frac = std::max(max_frac,
                        l.reserved_bytes_per_sec / link_bw_.bytes_per_sec());
    max_flows = std::max(max_flows, l.flow_count);
  }
  return {max_frac, max_flows};
}

std::optional<std::size_t> AdmissionController::pick_route(NodeId src, NodeId dst,
                                                           double want_bps) {
  const double budget_bps = link_bw_.bytes_per_sec() * reservable_fraction_;

  // Evaluate every minimal path; keep the least loaded feasible one.
  const std::size_t n_choices = topo_.route_count(src, dst);
  std::optional<std::size_t> best;
  std::pair<double, std::uint32_t> best_load{0.0, 0};
  for (std::size_t c = 0; c < n_choices; ++c) {
    topo_.route_links_into(src, dst, c, scratch_links_);
    bool feasible = true;
    for (const Endpoint& e : scratch_links_) {
      const std::uint32_t slot = topo_.link_index(e);
      if (failed_[slot] != 0) {
        feasible = false;
        break;
      }
      // 1 B/s epsilon: accumulated FP dust must not reject an exact fit.
      if (load_at(slot).reserved_bytes_per_sec + want_bps > budget_bps + 1.0) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    const auto pl = path_load(scratch_links_);
    if (!best || pl < best_load) {
      best = c;
      best_load = pl;
    }
  }
  return best;
}

void AdmissionController::commit_flow(FlowId id, NodeId src, NodeId dst,
                                      std::size_t choice, double want_bps,
                                      TrafficClass tclass) {
  topo_.route_links_into(src, dst, choice, scratch_links_);
  for (const Endpoint& e : scratch_links_) {
    LinkLoad& l = load_at(topo_.link_index(e));
    l.reserved_bytes_per_sec += want_bps;
    ++l.flow_count;
  }
  FlowRecord rec;
  rec.src = src;
  rec.dst = dst;
  rec.choice = static_cast<std::uint32_t>(choice);
  rec.reserved_bytes_per_sec = want_bps;
  rec.tclass = tclass;
  rec.broker = home_broker(src, dst);
  Broker& b = brokers_[rec.broker];
  rec.member_pos = static_cast<std::uint32_t>(b.members.size());
  b.members.push_back(id);
  flows_.insert(id, rec);
}

void AdmissionController::remove_member(FlowId id, std::uint32_t broker,
                                        std::uint32_t pos) {
  Broker& b = brokers_[broker];
  DQOS_ASSERT(pos < b.members.size() && b.members[pos] == id);
  const FlowId moved = b.members.back();
  b.members[pos] = moved;
  b.members.pop_back();
  if (moved != id) flows_.at(moved).member_pos = pos;
}

std::optional<FlowSpec> AdmissionController::admit(const FlowRequest& req) {
  DQOS_EXPECTS(topo_.is_host(req.src) && topo_.is_host(req.dst));
  DQOS_EXPECTS(req.src != req.dst);

  const double want_bps = req.reserve_bw.valid() ? req.reserve_bw.bytes_per_sec() : 0.0;
  const auto best = pick_route(req.src, req.dst, want_bps);
  if (!best) {
    ++rejected_;
    return std::nullopt;
  }

  FlowSpec spec;
  spec.id = next_id_++;
  spec.src = req.src;
  spec.dst = req.dst;
  spec.tclass = req.tclass;
  spec.vc = class_vc_[static_cast<std::size_t>(req.tclass)];
  spec.policy = req.policy;
  spec.reserve_bw = req.reserve_bw;
  spec.frame_budget = req.frame_budget;
  spec.use_eligible_time = req.use_eligible_time;
  spec.eligible_lead = req.eligible_lead;
  spec.police = req.police && req.reserve_bw.valid();
  spec.police_burst = req.police_burst;
  spec.route_choice = *best;
  spec.route = topo_.build_route(req.src, req.dst, *best);
  // Deadline bandwidth: explicit > reserved > link rate (control).
  if (req.deadline_bw.valid()) {
    spec.deadline_bw = req.deadline_bw;
  } else if (req.policy == DeadlinePolicy::kControlLatency || !req.reserve_bw.valid()) {
    spec.deadline_bw = link_bw_;
  } else {
    spec.deadline_bw = req.reserve_bw;
  }

  commit_flow(spec.id, req.src, req.dst, *best, want_bps, req.tclass);
  return spec;
}

void AdmissionController::release(FlowId id) {
  const FlowRecord* found = flows_.find(id);
  DQOS_EXPECTS(found != nullptr);
  const FlowRecord rec = *found;  // copy: the table entry is erased below
  topo_.route_links_into(rec.src, rec.dst, rec.choice, scratch_links_);
  for (const Endpoint& e : scratch_links_) {
    LinkLoad& l = load_at(topo_.link_index(e));
    l.reserved_bytes_per_sec -= rec.reserved_bytes_per_sec;
    DQOS_ASSERT(l.flow_count > 0);
    --l.flow_count;
    // Sweep FP dust in both directions so ledgers return to exactly zero.
    if (std::abs(l.reserved_bytes_per_sec) < 1e-6) l.reserved_bytes_per_sec = 0.0;
  }
  remove_member(id, rec.broker, rec.member_pos);
  flows_.erase(id);
}

void AdmissionController::mark_link_failed(const Endpoint& link) {
  std::uint8_t& f = failed_[topo_.link_index(link)];
  failed_count_ += f == 0 ? 1 : 0;
  f = 1;
}

void AdmissionController::mark_link_repaired(const Endpoint& link) {
  std::uint8_t& f = failed_[topo_.link_index(link)];
  failed_count_ -= f != 0 ? 1 : 0;
  f = 0;
}

std::vector<AdmissionController::Reroute> AdmissionController::reroute_around_failures() {
  std::vector<Reroute> out;
  if (failed_count_ == 0) return out;

  // Pod-first recovery: each broker repairs its own flows before the root
  // touches the inter-pod population (flat mode: one broker, one pass).
  // Within a broker, ascending FlowId order — member-list order is
  // insert-history dependent and must not leak into which flow wins
  // contended residual bandwidth.
  std::vector<FlowId> affected;
  for (std::uint32_t b = 0; b < brokers_.size(); ++b) {
    affected.clear();
    for (const FlowId id : brokers_[b].members) {
      const FlowRecord& rec = flows_.at(id);
      topo_.route_links_into(rec.src, rec.dst, rec.choice, scratch_links_);
      for (const Endpoint& e : scratch_links_) {
        if (failed_[topo_.link_index(e)] != 0) {
          affected.push_back(id);
          break;
        }
      }
    }
    std::sort(affected.begin(), affected.end());

    for (const FlowId id : affected) {
      const FlowRecord rec = flows_.at(id);  // copy: release() erases it
      release(id);
      Reroute r;
      r.flow = id;
      r.src = rec.src;
      const auto best = pick_route(rec.src, rec.dst, rec.reserved_bytes_per_sec);
      if (best) {
        commit_flow(id, rec.src, rec.dst, *best, rec.reserved_bytes_per_sec,
                    rec.tclass);
        r.rerouted = true;
        r.new_choice = *best;
        r.new_route = topo_.build_route(rec.src, rec.dst, *best);
        ++flows_rerouted_;
      } else {
        ++flows_shed_;
      }
      out.push_back(r);
    }
  }
  return out;
}

std::vector<AdmissionController::Reroute> AdmissionController::shed_to_highwater(
    double highwater) {
  std::vector<Reroute> out;
  if (highwater <= 0.0 || flows_.empty()) return out;
  const double mark_bps =
      link_bw_.bytes_per_sec() * reservable_fraction_ * highwater;
  // 1 B/s epsilon mirrors pick_route(): FP dust must not trigger shedding.
  const auto over = [&](const LinkLoad& l) {
    return l.reserved_bytes_per_sec > mark_bps + 1.0;
  };
  bool any_over = false;
  for (const Broker& b : brokers_) {
    for (const LinkLoad& l : b.load) any_over = any_over || over(l);
  }
  if (!any_over) return out;

  // Shedding order: pod brokers first (ascending), then the root — a pod
  // relieves its own links before inter-pod flows are touched. Within a
  // broker: lowest traffic class first (highest enum value), newest flow
  // first within a class — the freshest low-priority admissions give way
  // before anything long-lived or important. Only reserving flows can
  // relieve a reserved-bandwidth overload. Any examination order drains
  // every link under the mark: loads only decrease, so a link still over
  // at the end would have shed every flow crossing it — a contradiction.
  std::vector<FlowId> order;
  for (std::uint32_t b = 0; b < brokers_.size(); ++b) {
    order.clear();
    for (const FlowId id : brokers_[b].members) {
      if (flows_.at(id).reserved_bytes_per_sec > 0.0) order.push_back(id);
    }
    std::sort(order.begin(), order.end(), [&](FlowId a, FlowId c) {
      const FlowRecord& ra = flows_.at(a);
      const FlowRecord& rc = flows_.at(c);
      if (ra.tclass != rc.tclass) return ra.tclass > rc.tclass;
      return a > c;
    });

    for (const FlowId id : order) {
      const FlowRecord& rec = flows_.at(id);
      bool crosses_over = false;
      topo_.route_links_into(rec.src, rec.dst, rec.choice, scratch_links_);
      for (const Endpoint& e : scratch_links_) {
        if (over(load_at(topo_.link_index(e)))) {
          crosses_over = true;
          break;
        }
      }
      if (!crosses_over) continue;  // its links already drained under the mark
      Reroute r;
      r.flow = id;
      r.src = rec.src;
      r.rerouted = false;
      release(id);
      ++flows_shed_;
      out.push_back(r);
    }
  }
  return out;
}

std::string AdmissionController::audit_ledger() const {
  // Recompute the per-link ledger from first principles (the flow records)
  // and diff it against the incrementally-maintained broker slices.
  std::vector<LinkLoad> want(topo_.num_link_slots());
  std::vector<Endpoint> links;
  // Slot-order traversal of the flow table is insert-history dependent but
  // the accumulation is order-independent (per-link sums compared with an
  // FP-dust tolerance).
  std::string membership_error;
  flows_.for_each([&](FlowId id, const FlowRecord& rec) {
    topo_.route_links_into(rec.src, rec.dst, rec.choice, links);
    for (const Endpoint& e : links) {
      LinkLoad& l = want[topo_.link_index(e)];
      l.reserved_bytes_per_sec += rec.reserved_bytes_per_sec;
      ++l.flow_count;
    }
    if (membership_error.empty()) {
      const std::uint32_t home = home_broker(rec.src, rec.dst);
      const Broker& b = brokers_[rec.broker];
      if (rec.broker != home) {
        membership_error = "admission brokers: flow " + std::to_string(id) +
                           " homed on broker " + std::to_string(rec.broker) +
                           ", endpoints prescribe " + std::to_string(home);
      } else if (rec.member_pos >= b.members.size() ||
                 b.members[rec.member_pos] != id) {
        membership_error = "admission brokers: flow " + std::to_string(id) +
                           " member list slot mismatch on broker " +
                           std::to_string(rec.broker);
      }
    }
  });
  if (!membership_error.empty()) return membership_error;
  std::size_t member_total = 0;
  for (const Broker& b : brokers_) member_total += b.members.size();
  if (member_total != flows_.size()) {
    return "admission brokers: member lists hold " +
           std::to_string(member_total) + " flows, table has " +
           std::to_string(flows_.size());
  }

  // Deterministic report order: smallest divergent link slot wins.
  for (std::uint32_t slot = 0; slot < topo_.num_link_slots(); ++slot) {
    const LinkLoad& have = load_at(slot);
    const LinkLoad& exp = want[slot];
    const Endpoint e = topo_.link_endpoint(slot);
    if (have.flow_count != exp.flow_count) {
      return "admission ledger: link (" + std::to_string(e.node) + "," +
             std::to_string(e.port) + ") counts " + std::to_string(have.flow_count) +
             " flows, records say " + std::to_string(exp.flow_count);
    }
    if (std::abs(have.reserved_bytes_per_sec - exp.reserved_bytes_per_sec) > 1e-6) {
      return "admission ledger: link (" + std::to_string(e.node) + "," +
             std::to_string(e.port) + ") reserves " +
             std::to_string(have.reserved_bytes_per_sec) +
             " B/s, records say " + std::to_string(exp.reserved_bytes_per_sec);
    }
  }
  return "";
}

double AdmissionController::total_reserved_bytes_per_sec() const {
  double sum = 0.0;
  for (const Broker& b : brokers_) {
    for (const LinkLoad& l : b.load) sum += l.reserved_bytes_per_sec;
  }
  return sum;
}

double AdmissionController::reserved_fraction(const Endpoint& link) const {
  return load_at(topo_.link_index(link)).reserved_bytes_per_sec /
         link_bw_.bytes_per_sec();
}

std::uint32_t AdmissionController::flows_on_link(const Endpoint& link) const {
  return load_at(topo_.link_index(link)).flow_count;
}

}  // namespace dqos
