/// \file token_bucket.hpp
/// Token-bucket policer for regulated flows at the source NIC.
///
/// The paper's guarantees rest on "traffic is regulated (no
/// over-subscription of the links)" (§3.2) — admission control promises it,
/// but nothing in the paper *enforces* it against a misbehaving sender. A
/// production deployment needs ingress policing: each reserved flow gets a
/// token bucket refilled at its reserved rate; messages that would overdraw
/// the bucket are shed before they can poison the regulated VC (ablation
/// A9 shows the damage without it).
///
/// Classic leaky-bucket arithmetic, integer bytes, lazy refill on the
/// host's local clock.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace dqos {

class TokenBucket {
 public:
  /// `rate` — sustained refill rate (the flow's reserved bandwidth).
  /// `capacity_bytes` — burst allowance.
  TokenBucket(Bandwidth rate, std::uint64_t capacity_bytes);

  /// Consumes `bytes` if available (refilling first). `local_now` must be
  /// monotone across calls.
  bool try_consume(std::uint64_t bytes, TimePoint local_now);

  /// Current fill after refilling to `local_now`.
  [[nodiscard]] std::uint64_t available(TimePoint local_now);

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] Bandwidth rate() const { return rate_; }

 private:
  void refill(TimePoint local_now);

  Bandwidth rate_;
  std::uint64_t capacity_;
  std::uint64_t tokens_;
  TimePoint last_refill_;
  bool started_ = false;
};

}  // namespace dqos
