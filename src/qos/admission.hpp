/// \file admission.hpp
/// Centralized connection admission control and path assignment (§3).
///
/// "Bandwidth reservation is performed at a centralized point and no record
/// is kept in the switches. This makes the use of fixed routing mandatory
/// ... the admission control can ensure load balancing when assigning
/// paths."
///
/// The controller keeps a per-directed-link reservation ledger. An admitted
/// regulated flow reserves its average bandwidth on every link of the
/// chosen route; unregulated flows reserve nothing but are still assigned a
/// balanced fixed path (counted, so best-effort spreading is even too).
/// Path choice: the minimal route minimizing the maximum reserved fraction
/// along its links, tie-broken by assigned flow count, then lowest index
/// (deterministic).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qos/flow.hpp"
#include "topo/topology.hpp"

namespace dqos {

class AdmissionController {
 public:
  /// `reservable_fraction` caps how much of each link regulated flows may
  /// reserve (headroom left for control/best-effort; 1.0 = full link).
  AdmissionController(const Topology& topo, Bandwidth link_bw,
                      double reservable_fraction = 1.0);

  /// Sets the TrafficClass -> VC mapping applied to admitted flows.
  /// Defaults to the paper's: {Control,Multimedia} -> VC0, others -> VC1.
  void set_class_vc_map(const std::array<VcId, kNumTrafficClasses>& map) {
    class_vc_ = map;
  }

  /// Admits a flow: picks the balanced fixed route, reserves bandwidth if
  /// requested, and returns the complete FlowSpec. nullopt = rejected
  /// (reservation would oversubscribe some link on *every* candidate path).
  std::optional<FlowSpec> admit(const FlowRequest& req);

  /// Releases an admitted flow's reservation and path-count contributions.
  void release(FlowId id);

  /// --- Fault handling -----------------------------------------------------
  /// A permanently-failed directed link: admit() treats it as infeasible,
  /// and reroute_around_failures() moves or sheds the flows crossing it.
  void mark_link_failed(const Endpoint& link);
  /// Clears the failed mark (transient outages that recover before any
  /// reroute, or repaired hardware readmitted to service).
  void mark_link_repaired(const Endpoint& link);
  [[nodiscard]] bool link_failed(const Endpoint& link) const {
    return failed_.count(key(link)) > 0;
  }

  /// One rerouted (or shed) flow, for the caller to apply to hosts.
  struct Reroute {
    FlowId flow = kInvalidFlow;
    NodeId src = kInvalidNode;
    bool rerouted = false;      ///< false = shed (no surviving feasible path)
    SourceRoute new_route;      ///< valid only when rerouted
    std::size_t new_choice = 0;
  };

  /// Re-examines every admitted flow whose fixed path crosses a failed
  /// link: releases its reservation, then re-admits it over the least
  /// loaded surviving feasible path, or sheds it when none exists. Flows
  /// are processed in ascending FlowId order (deterministic). Shed flows
  /// are erased from the ledger; the caller must stop their sources.
  std::vector<Reroute> reroute_around_failures();

  /// Load shedding (overload backpressure): while any directed link's
  /// reserved bandwidth exceeds `highwater` x its reservable budget, sheds
  /// reserving flows crossing it — lowest traffic class first, newest flow
  /// first within a class (deterministic) — until every link is back under
  /// the mark. Returned entries have rerouted == false; the caller must
  /// stop the sources, exactly as for fault sheds. No-op for
  /// highwater <= 0 or >= 1 with nothing over the mark.
  std::vector<Reroute> shed_to_highwater(double highwater);

  [[nodiscard]] std::uint64_t flows_rerouted() const { return flows_rerouted_; }
  [[nodiscard]] std::uint64_t flows_shed() const { return flows_shed_; }

  /// Reserved fraction of a directed link's bandwidth (diagnostics/tests).
  [[nodiscard]] double reserved_fraction(const Endpoint& link) const;
  /// Number of flows routed over the directed link.
  [[nodiscard]] std::uint32_t flows_on_link(const Endpoint& link) const;

  [[nodiscard]] std::size_t admitted_flows() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t rejected_flows() const { return rejected_; }
  [[nodiscard]] Bandwidth link_bandwidth() const { return link_bw_; }

  /// Whether `id` is currently admitted (released and shed flows are not).
  [[nodiscard]] bool has_flow(FlowId id) const { return flows_.count(id) > 0; }
  /// Every admitted flow id, ascending — a deterministic iteration order
  /// for teardown sweeps and invariant tests.
  [[nodiscard]] std::vector<FlowId> admitted_ids() const;
  /// Reserved bandwidth summed over every directed link in the ledger.
  /// The §3.2 accounting invariant: after every admitted flow is released
  /// this returns exactly 0.0 — release() sweeps FP dust so admit/release
  /// storms (and fault-path reroutes) cannot leave drift behind.
  [[nodiscard]] double total_reserved_bytes_per_sec() const;

  /// Conservation audit (fault/auditor.hpp): recomputes the per-link ledger
  /// from the admitted-flow records and compares it with the incremental
  /// `load_` bookkeeping — flow counts must match exactly, reserved
  /// bandwidth within 1e-6 B/s of absolute FP dust per link (the same
  /// tolerance release() sweeps). Returns "" when consistent, else a
  /// description of the first divergent link.
  [[nodiscard]] std::string audit_ledger() const;

 private:
  struct LinkLoad {
    double reserved_bytes_per_sec = 0.0;
    std::uint32_t flow_count = 0;
  };
  struct FlowRecord {
    NodeId src, dst;
    std::size_t choice;
    double reserved_bytes_per_sec;  // 0 if none
    TrafficClass tclass = TrafficClass::kBestEffort;
  };

  [[nodiscard]] static std::uint64_t key(const Endpoint& e) {
    return (static_cast<std::uint64_t>(e.node) << 8) | e.port;
  }
  /// Fitness of a candidate path = (max reserved fraction, max flow count).
  [[nodiscard]] std::pair<double, std::uint32_t> path_load(
      const std::vector<Endpoint>& links) const;

  /// Best feasible route choice for (src, dst) given current load and
  /// failed links; `want_bps` is the bandwidth about to be reserved.
  [[nodiscard]] std::optional<std::size_t> pick_route(NodeId src, NodeId dst,
                                                      double want_bps) const;

  const Topology& topo_;
  Bandwidth link_bw_;
  double reservable_fraction_;
  std::array<VcId, kNumTrafficClasses> class_vc_{0, 0, 1, 1};
  std::unordered_map<std::uint64_t, LinkLoad> load_;
  std::unordered_map<FlowId, FlowRecord> flows_;
  std::unordered_set<std::uint64_t> failed_;
  FlowId next_id_ = 1;
  std::uint64_t rejected_ = 0;
  std::uint64_t flows_rerouted_ = 0;
  std::uint64_t flows_shed_ = 0;
};

}  // namespace dqos
