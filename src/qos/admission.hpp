/// \file admission.hpp
/// Centralized connection admission control and path assignment (§3),
/// scaled out hierarchically for pod-structured fabrics (DESIGN.md §13).
///
/// "Bandwidth reservation is performed at a centralized point and no record
/// is kept in the switches. This makes the use of fixed routing mandatory
/// ... the admission control can ensure load balancing when assigning
/// paths."
///
/// The controller keeps a per-directed-link reservation ledger. An admitted
/// regulated flow reserves its average bandwidth on every link of the
/// chosen route; unregulated flows reserve nothing but are still assigned a
/// balanced fixed path (counted, so best-effort spreading is even too).
/// Path choice: the minimal route minimizing the maximum reserved fraction
/// along its links, tie-broken by assigned flow count, then lowest index
/// (deterministic).
///
/// State model (the 1k+ host memory refactor):
///   - per-link state (reservations, failure marks) lives in flat arrays
///     indexed by the topology's dense link slots — no hashing, no per-node
///     heap overhead;
///   - per-flow records live in a DenseFlowTable;
///   - on a pod-structured topology with `hierarchical = true`, the ledger
///     splits into one **PodBroker** per pod plus a **root broker**: a pod
///     broker owns exactly the intra-pod directed links and the flows whose
///     endpoints share its pod, the root owns the inter-pod (core) links
///     and the inter-pod flows. Intra-pod admission touches only its pod
///     broker's state, and `reroute_around_failures` / `shed_to_highwater`
///     recurse pod-first (pods ascending, then root). Path-choice
///     arithmetic is identical in both modes — hierarchy changes where
///     state lives and the recovery sweep order, never a route decision.
/// Exact-rollback invariant (§3.2) holds in both modes: releasing every
/// admitted flow returns every ledger entry to exactly 0.0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "qos/flow.hpp"
#include "topo/topology.hpp"
#include "util/dense_flow_table.hpp"

namespace dqos {

class AdmissionController {
 public:
  /// `reservable_fraction` caps how much of each link regulated flows may
  /// reserve (headroom left for control/best-effort; 1.0 = full link).
  /// `hierarchical` opts into per-pod brokers; it requires a topology that
  /// declares pods and silently stays flat otherwise (mesh/Clos builders).
  AdmissionController(const Topology& topo, Bandwidth link_bw,
                      double reservable_fraction = 1.0,
                      bool hierarchical = false);

  /// True when the ledger is split into pod brokers + root.
  [[nodiscard]] bool hierarchical() const { return num_pod_brokers_ > 0; }
  [[nodiscard]] std::uint32_t num_pod_brokers() const { return num_pod_brokers_; }

  /// Sets the TrafficClass -> VC mapping applied to admitted flows.
  /// Defaults to the paper's: {Control,Multimedia} -> VC0, others -> VC1.
  void set_class_vc_map(const std::array<VcId, kNumTrafficClasses>& map) {
    class_vc_ = map;
  }

  /// Admits a flow: picks the balanced fixed route, reserves bandwidth if
  /// requested, and returns the complete FlowSpec. nullopt = rejected
  /// (reservation would oversubscribe some link on *every* candidate path).
  std::optional<FlowSpec> admit(const FlowRequest& req);

  /// Releases an admitted flow's reservation and path-count contributions.
  void release(FlowId id);

  /// --- Fault handling -----------------------------------------------------
  /// A permanently-failed directed link: admit() treats it as infeasible,
  /// and reroute_around_failures() moves or sheds the flows crossing it.
  void mark_link_failed(const Endpoint& link);
  /// Clears the failed mark (transient outages that recover before any
  /// reroute, or repaired hardware readmitted to service).
  void mark_link_repaired(const Endpoint& link);
  [[nodiscard]] bool link_failed(const Endpoint& link) const {
    return failed_[topo_.link_index(link)] != 0;
  }

  /// One rerouted (or shed) flow, for the caller to apply to hosts.
  struct Reroute {
    FlowId flow = kInvalidFlow;
    NodeId src = kInvalidNode;
    bool rerouted = false;      ///< false = shed (no surviving feasible path)
    SourceRoute new_route;      ///< valid only when rerouted
    std::size_t new_choice = 0;
  };

  /// Re-examines every admitted flow whose fixed path crosses a failed
  /// link: releases its reservation, then re-admits it over the least
  /// loaded surviving feasible path, or sheds it when none exists. Flows
  /// are processed in ascending FlowId order (deterministic); under
  /// hierarchical admission the sweep recurses pod-first — each pod broker
  /// repairs its own flows (pods ascending, FlowIds ascending within),
  /// then the root broker sweeps the inter-pod flows. Shed flows are
  /// erased from the ledger; the caller must stop their sources.
  std::vector<Reroute> reroute_around_failures();

  /// Load shedding (overload backpressure): while any directed link's
  /// reserved bandwidth exceeds `highwater` x its reservable budget, sheds
  /// reserving flows crossing it — lowest traffic class first, newest flow
  /// first within a class (deterministic) — until every link is back under
  /// the mark. Under hierarchical admission the sweep recurses pod-first
  /// (each pod broker sheds its own members, then the root broker sheds
  /// inter-pod flows for whatever is still over). Returned entries have
  /// rerouted == false; the caller must stop the sources, exactly as for
  /// fault sheds. No-op for highwater <= 0 or >= 1 with nothing over the
  /// mark.
  std::vector<Reroute> shed_to_highwater(double highwater);

  [[nodiscard]] std::uint64_t flows_rerouted() const { return flows_rerouted_; }
  [[nodiscard]] std::uint64_t flows_shed() const { return flows_shed_; }

  /// Reserved fraction of a directed link's bandwidth (diagnostics/tests).
  [[nodiscard]] double reserved_fraction(const Endpoint& link) const;
  /// Number of flows routed over the directed link.
  [[nodiscard]] std::uint32_t flows_on_link(const Endpoint& link) const;

  [[nodiscard]] std::size_t admitted_flows() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t rejected_flows() const { return rejected_; }
  [[nodiscard]] Bandwidth link_bandwidth() const { return link_bw_; }

  /// Whether `id` is currently admitted (released and shed flows are not).
  [[nodiscard]] bool has_flow(FlowId id) const { return flows_.contains(id); }
  /// Every admitted flow id, ascending — a deterministic iteration order
  /// for teardown sweeps and invariant tests.
  [[nodiscard]] std::vector<FlowId> admitted_ids() const {
    return flows_.ids_ascending();
  }
  /// Reserved bandwidth summed over every directed link in the ledger.
  /// The §3.2 accounting invariant: after every admitted flow is released
  /// this returns exactly 0.0 — release() sweeps FP dust so admit/release
  /// storms (and fault-path reroutes) cannot leave drift behind.
  [[nodiscard]] double total_reserved_bytes_per_sec() const;

  /// Conservation audit (fault/auditor.hpp): recomputes the per-link ledger
  /// from the admitted-flow records and compares it with the incremental
  /// broker bookkeeping — flow counts must match exactly, reserved
  /// bandwidth within 1e-6 B/s of absolute FP dust per link (the same
  /// tolerance release() sweeps). Under hierarchical admission it also
  /// checks broker membership (every flow homed on the broker its endpoint
  /// pods prescribe, member lists exact). Returns "" when consistent, else
  /// a description of the first divergence.
  [[nodiscard]] std::string audit_ledger() const;

 private:
  struct LinkLoad {
    double reserved_bytes_per_sec = 0.0;
    std::uint32_t flow_count = 0;
  };
  struct FlowRecord {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint32_t choice = 0;
    double reserved_bytes_per_sec = 0.0;
    TrafficClass tclass = TrafficClass::kBestEffort;
    /// Owning broker: pod index, or the root broker (last index). Flat
    /// controllers home everything on broker 0.
    std::uint32_t broker = 0;
    /// Position in the owning broker's member list (swap-remove O(1)).
    std::uint32_t member_pos = 0;
  };
  /// One bandwidth broker: a slice of the per-link ledger plus the flows
  /// homed on it. Pod brokers own their pod's intra-pod directed links;
  /// the root broker owns inter-pod (core) links. Every directed link has
  /// exactly one owner, so ledger arithmetic is never double-counted.
  struct Broker {
    std::vector<LinkLoad> load;   ///< indexed by link_local_[slot]
    std::vector<FlowId> members;  ///< homed flows, swap-remove order
  };

  [[nodiscard]] LinkLoad& load_at(std::uint32_t slot) {
    return brokers_[link_owner_[slot]].load[link_local_[slot]];
  }
  [[nodiscard]] const LinkLoad& load_at(std::uint32_t slot) const {
    return brokers_[link_owner_[slot]].load[link_local_[slot]];
  }
  /// Broker a (src, dst) flow is homed on: the shared pod's broker when
  /// both endpoints sit in one pod, else the root (flat: always 0).
  [[nodiscard]] std::uint32_t home_broker(NodeId src, NodeId dst) const;

  /// Fitness of a candidate path = (max reserved fraction, max flow count).
  [[nodiscard]] std::pair<double, std::uint32_t> path_load(
      const std::vector<Endpoint>& links) const;

  /// Best feasible route choice for (src, dst) given current load and
  /// failed links; `want_bps` is the bandwidth about to be reserved.
  [[nodiscard]] std::optional<std::size_t> pick_route(NodeId src, NodeId dst,
                                                      double want_bps);

  /// Commits `want_bps` + path counts along (src,dst,choice) and records
  /// the flow (admit and reroute share it).
  void commit_flow(FlowId id, NodeId src, NodeId dst, std::size_t choice,
                   double want_bps, TrafficClass tclass);
  void remove_member(FlowId id, std::uint32_t broker, std::uint32_t pos);

  const Topology& topo_;
  Bandwidth link_bw_;
  double reservable_fraction_;
  std::array<VcId, kNumTrafficClasses> class_vc_{0, 0, 1, 1};

  /// Directed-link slot -> owning broker and index into its load array.
  std::vector<std::uint32_t> link_owner_;
  std::vector<std::uint32_t> link_local_;
  std::vector<std::uint8_t> failed_;  ///< by link slot
  std::uint32_t failed_count_ = 0;
  /// Pod brokers [0, num_pod_brokers_), then the root broker. Flat mode:
  /// a single broker at index 0 (num_pod_brokers_ == 0).
  std::vector<Broker> brokers_;
  std::uint32_t num_pod_brokers_ = 0;
  DenseFlowTable<FlowRecord> flows_;
  /// Scratch route buffer: route expansion is on every admit/audit path,
  /// one reused arena instead of a vector per candidate route.
  std::vector<Endpoint> scratch_links_;

  FlowId next_id_ = 1;
  std::uint64_t rejected_ = 0;
  std::uint64_t flows_rerouted_ = 0;
  std::uint64_t flows_shed_ = 0;
};

}  // namespace dqos
