/// \file cost_model.hpp
/// First-order silicon cost model for the four switch architectures.
///
/// The paper's economic argument (§2.2, §5, §6): per-flow EDF needs ordered
/// buffers; a hardware heap per buffer (Ioannou & Katevenis's pipelined
/// heap) is "not practical for high-speed switches with high radix", while
/// the take-over scheme adds only a second FIFO and two deadline
/// comparators — "the cost of these architectures is similar, except the
/// Ideal". This model quantifies that with standard ASIC first-order
/// counts:
///
///   - buffer storage: SRAM bits (dominant),
///   - queue control: head/tail pointers per FIFO, deadline tag storage,
///   - heap: per-entry tag+pointer storage plus a pipelined comparator
///     tree (2 comparators per level, log2(entries) levels, per Ioannou &
///     Katevenis), and per-level swap registers,
///   - arbitration: an (inputs-1)-comparator tag tree for EDF, a simple
///     rotating priority encoder for round-robin,
///   - VC selection and crossbar are identical across architectures and
///     excluded from the comparison.
///
/// Outputs are gate-equivalents (NAND2) and SRAM bits; `area_units()`
/// folds them together with a configurable SRAM-bit-to-gate factor.
#pragma once

#include <cstdint>
#include <string>

#include "switchfab/switch.hpp"

namespace dqos {

/// Technology/dimension constants. Defaults follow common first-order ASIC
/// estimates; all knobs are explicit so the sensitivity is inspectable.
struct CostParams {
  std::uint32_t deadline_tag_bits = 24;  ///< TTD tag compared by EDF logic
  std::uint32_t pointer_bits = 16;       ///< SRAM address / linked pointers
  double gates_per_comparator_bit = 6.0; ///< magnitude comparator
  double gates_per_register_bit = 8.0;   ///< flip-flop + mux
  double gates_per_fifo_control = 150.0; ///< FSM, credit logic per FIFO
  double sram_bits_per_gate = 2.2;       ///< area of one SRAM bit in NAND2-eq
  std::uint32_t min_packet_bytes = 64;   ///< sizing heap entry count
};

struct CostBreakdown {
  double sram_bits = 0.0;
  double logic_gates = 0.0;

  [[nodiscard]] double area_units(const CostParams& p) const {
    return logic_gates + sram_bits / p.sram_bits_per_gate;
  }
  CostBreakdown& operator+=(const CostBreakdown& o) {
    sram_bits += o.sram_bits;
    logic_gates += o.logic_gates;
    return *this;
  }
  friend CostBreakdown operator*(double k, const CostBreakdown& c) {
    return CostBreakdown{c.sram_bits * k, c.logic_gates * k};
  }
};

class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams{}) : p_(params) {}

  /// Cost of one buffer instance (one VC on one port side) of
  /// `buffer_bytes` organized as `kind`.
  [[nodiscard]] CostBreakdown buffer_cost(QueueKind kind,
                                          std::uint32_t buffer_bytes) const;

  /// Cost of one output's input-selection arbiter over `num_inputs`.
  [[nodiscard]] CostBreakdown arbiter_cost(InputArbiterKind kind,
                                           std::size_t num_inputs) const;

  /// Whole-switch cost for an architecture: `ports` x `vcs` buffer
  /// instances on each side (combined input/output buffering) plus one
  /// arbiter per (output, VC).
  [[nodiscard]] CostBreakdown switch_cost(SwitchArch arch, std::size_t ports,
                                          std::uint8_t vcs,
                                          std::uint32_t buffer_bytes) const;

  /// Relative area of `arch` vs the Traditional baseline (same geometry).
  [[nodiscard]] double relative_area(SwitchArch arch, std::size_t ports,
                                     std::uint8_t vcs,
                                     std::uint32_t buffer_bytes) const;

  [[nodiscard]] const CostParams& params() const { return p_; }

 private:
  CostParams p_;
};

}  // namespace dqos
