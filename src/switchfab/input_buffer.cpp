#include "switchfab/input_buffer.hpp"

#include "util/contracts.hpp"

namespace dqos {

InputBuffer::InputBuffer(QueueKind kind, std::uint32_t capacity_bytes,
                         std::size_t num_outputs)
    : capacity_(capacity_bytes) {
  DQOS_EXPECTS(capacity_bytes > 0 && num_outputs > 0);
  queues_.reserve(num_outputs);
  for (std::size_t i = 0; i < num_outputs; ++i) queues_.emplace_back(kind);
}

void InputBuffer::enqueue(PacketPtr p, std::size_t output) {
  DQOS_EXPECTS(p != nullptr && output < queues_.size());
  // Credit-based flow control must prevent overruns; an overflow here means
  // the upstream consumed credits it did not hold.
  DQOS_ASSERT(has_space(p->size()));
  used_bytes_ += p->size();
  ++total_packets_;
  queues_[output].enqueue(std::move(p));
}

PacketPtr InputBuffer::dequeue(std::size_t output) {
  DQOS_EXPECTS(output < queues_.size());
  PacketPtr p = queues_[output].dequeue();
  DQOS_ASSERT(used_bytes_ >= p->size() && total_packets_ > 0);
  used_bytes_ -= p->size();
  --total_packets_;
  return p;
}

std::uint64_t InputBuffer::order_errors() const {
  std::uint64_t sum = 0;
  for (const auto& q : queues_) sum += q.order_errors();
  return sum;
}

std::uint64_t InputBuffer::takeovers() const {
  std::uint64_t sum = 0;
  for (const auto& q : queues_) sum += q.takeovers();
  return sum;
}

}  // namespace dqos
