#include "switchfab/cost_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {
namespace {

double log2_ceil(double x) { return std::ceil(std::log2(x)); }

}  // namespace

CostBreakdown CostModel::buffer_cost(QueueKind kind,
                                     std::uint32_t buffer_bytes) const {
  DQOS_EXPECTS(buffer_bytes > 0);
  CostBreakdown c;
  c.sram_bits = buffer_bytes * 8.0;  // payload storage, all organizations

  const double max_entries =
      std::max(1.0, static_cast<double>(buffer_bytes) / p_.min_packet_bytes);
  const double tag_reg_bits = p_.deadline_tag_bits + p_.pointer_bits;

  switch (kind) {
    case QueueKind::kFifo:
      // Head/tail pointers + control FSM.
      c.logic_gates = 2 * p_.pointer_bits * p_.gates_per_register_bit +
                      p_.gates_per_fifo_control;
      break;
    case QueueKind::kTakeover:
      // Two FIFOs over the same SRAM + one enqueue comparator (against the
      // ordered queue's tail tag) + one dequeue comparator (between the two
      // head tags) + three extra tag registers (L tail, L head, U head).
      c.logic_gates = 4 * p_.pointer_bits * p_.gates_per_register_bit +
                      2 * p_.gates_per_fifo_control +
                      2 * p_.deadline_tag_bits * p_.gates_per_comparator_bit +
                      3 * p_.deadline_tag_bits * p_.gates_per_register_bit;
      break;
    case QueueKind::kHeap: {
      // Pipelined heap (Ioannou & Katevenis): every entry stores a
      // (tag, pointer) record; each of the log2(entries) levels needs two
      // tag comparators and a swap register stage.
      const double levels = log2_ceil(max_entries);
      c.sram_bits += max_entries * tag_reg_bits;
      c.logic_gates =
          levels * (2 * p_.deadline_tag_bits * p_.gates_per_comparator_bit +
                    2 * tag_reg_bits * p_.gates_per_register_bit) +
          p_.gates_per_fifo_control;
      break;
    }
  }
  return c;
}

CostBreakdown CostModel::arbiter_cost(InputArbiterKind kind,
                                      std::size_t num_inputs) const {
  DQOS_EXPECTS(num_inputs >= 1);
  CostBreakdown c;
  switch (kind) {
    case InputArbiterKind::kEdf:
      // Comparator tree over the candidate head tags.
      c.logic_gates = static_cast<double>(num_inputs - 1) *
                      p_.deadline_tag_bits * p_.gates_per_comparator_bit;
      break;
    case InputArbiterKind::kRoundRobin:
      // Rotating priority encoder: ~4 gates per input plus pointer reg.
      c.logic_gates = 4.0 * static_cast<double>(num_inputs) +
                      log2_ceil(static_cast<double>(num_inputs)) *
                          p_.gates_per_register_bit;
      break;
  }
  return c;
}

CostBreakdown CostModel::switch_cost(SwitchArch arch, std::size_t ports,
                                     std::uint8_t vcs,
                                     std::uint32_t buffer_bytes) const {
  DQOS_EXPECTS(ports >= 2 && vcs >= 1);
  const QueueKind kind = queue_kind_for(arch);
  const InputArbiterKind arb = input_arbiter_for(arch);
  CostBreakdown total;
  // Combined input/output buffering: 2 buffer instances per (port, VC).
  total += (2.0 * static_cast<double>(ports) * vcs) *
           buffer_cost(kind, buffer_bytes);
  // One crossbar arbiter per (output, VC).
  total += (static_cast<double>(ports) * vcs) * arbiter_cost(arb, ports);
  return total;
}

double CostModel::relative_area(SwitchArch arch, std::size_t ports,
                                std::uint8_t vcs,
                                std::uint32_t buffer_bytes) const {
  const double base =
      switch_cost(SwitchArch::kTraditional2Vc, ports, vcs, buffer_bytes)
          .area_units(p_);
  return switch_cost(arch, ports, vcs, buffer_bytes).area_units(p_) / base;
}

}  // namespace dqos
