/// \file queue_discipline.hpp
/// The three buffer organizations the paper evaluates (§3.2, §3.4, §4.1).
///
/// - FifoQueue     — a plain FIFO. The *Simple 2 VCs* architecture: the
///                   arbiter may only look at the head, so a high-deadline
///                   packet at the front penalizes low-deadline packets
///                   behind it (an *order error*).
/// - HeapQueue     — a deadline-ordered priority queue. The *Ideal*
///                   architecture: always exposes the minimum-deadline
///                   packet, but a hardware heap per buffer is unfeasible
///                   at high radix (the paper cites Ioannou & Katevenis).
/// - TakeoverQueue — the paper's contribution (§3.4 + appendix): two FIFOs,
///                   an *ordered queue* L and a *take-over queue* U.
///                   Enqueue (Definition 1): to L iff deadline >= L's tail,
///                   else to U. Dequeue (Definition 2): the smaller-deadline
///                   of the two heads. Provably never reorders packets of a
///                   single flow (Theorems 1-3) while sharply reducing order
///                   errors.
///
/// All disciplines expose a single `candidate()`: per the appendix's flow
/// control note, **only the minimum-deadline head is checked for credits**,
/// otherwise a smaller packet could sneak out and corrupt the discipline.
///
/// Order errors are counted at dequeue time: an order error occurs when the
/// packet handed out has a strictly larger deadline than some packet still
/// waiting in the same buffer (the scheduler did not choose the earliest
/// deadline; §3.4 distinguishes this from out-of-order *delivery*).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>

#include "proto/packet_pool.hpp"
#include "util/time.hpp"

namespace dqos {

enum class QueueKind : std::uint8_t {
  kFifo = 0,      ///< Simple 2 VCs / Traditional
  kHeap = 1,      ///< Ideal
  kTakeover = 2,  ///< Advanced 2 VCs
};

std::string_view to_string(QueueKind k);

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  /// Stores `p`. `p->local_deadline` must already be reconstructed into this
  /// node's clock domain.
  virtual void enqueue(PacketPtr p) = 0;

  /// The unique packet eligible for transmission, or nullptr if empty.
  [[nodiscard]] virtual const Packet* candidate() const = 0;

  /// Removes and returns the candidate. Queue must be non-empty.
  virtual PacketPtr dequeue() = 0;

  [[nodiscard]] virtual std::size_t packets() const = 0;
  [[nodiscard]] bool empty() const { return packets() == 0; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

  /// Smallest deadline currently queued (TimePoint::max() if empty).
  /// Diagnostic only — architectures must not schedule from it.
  [[nodiscard]] virtual TimePoint min_deadline() const = 0;

  /// Dequeues whose packet was not the true queue minimum.
  [[nodiscard]] std::uint64_t order_errors() const { return order_errors_; }

 protected:
  void note_enqueue(const Packet& p) { bytes_ += p.size(); }
  /// `min_before_removal` is min_deadline() computed while `p` was still
  /// queued; a strictly larger deadline means another packet deserved to go.
  void note_dequeue(const Packet& p, TimePoint min_before_removal) {
    bytes_ -= p.size();
    if (p.local_deadline > min_before_removal) ++order_errors_;
  }

 private:
  std::uint64_t bytes_ = 0;
  std::uint64_t order_errors_ = 0;
};

/// Plain FIFO. Tracks the multiset of queued deadlines purely for order-
/// error diagnostics (a real switch would not).
class FifoQueue final : public QueueDiscipline {
 public:
  void enqueue(PacketPtr p) override;
  [[nodiscard]] const Packet* candidate() const override;
  PacketPtr dequeue() override;
  [[nodiscard]] std::size_t packets() const override { return q_.size(); }
  [[nodiscard]] TimePoint min_deadline() const override;

 private:
  std::deque<PacketPtr> q_;
  std::multiset<std::int64_t> deadlines_;
};

/// Deadline-ordered heap with FIFO tie-break (stable: equal deadlines leave
/// in arrival order, so single-flow order is preserved even with ties).
class HeapQueue final : public QueueDiscipline {
 public:
  void enqueue(PacketPtr p) override;
  [[nodiscard]] const Packet* candidate() const override;
  PacketPtr dequeue() override;
  [[nodiscard]] std::size_t packets() const override { return heap_.size(); }
  [[nodiscard]] TimePoint min_deadline() const override;

 private:
  struct Entry {
    TimePoint deadline;
    std::uint64_t seq;
    PacketPtr pkt;
    bool operator>(const Entry& o) const {
      if (deadline != o.deadline) return deadline > o.deadline;
      return seq > o.seq;
    }
  };
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Entry> heap_;  // manual binary min-heap (entries move-only)
  std::uint64_t next_seq_ = 0;
};

/// The paper's ordered-queue + take-over-queue pair.
class TakeoverQueue final : public QueueDiscipline {
 public:
  void enqueue(PacketPtr p) override;
  [[nodiscard]] const Packet* candidate() const override;
  PacketPtr dequeue() override;
  [[nodiscard]] std::size_t packets() const override { return lq_.size() + uq_.size(); }
  [[nodiscard]] TimePoint min_deadline() const override;

  /// Packets routed to the take-over queue so far (ablation A1 metric).
  [[nodiscard]] std::uint64_t takeovers() const { return takeovers_; }
  [[nodiscard]] std::size_t ordered_packets() const { return lq_.size(); }
  [[nodiscard]] std::size_t takeover_packets() const { return uq_.size(); }

 private:
  /// True if the dequeue candidate is U's head (strictly smaller deadline
  /// than L's head; ties stay with L, matching Definition 2's "smallest").
  [[nodiscard]] bool pick_upper() const;

  std::deque<PacketPtr> lq_;  ///< L: ordered queue
  std::deque<PacketPtr> uq_;  ///< U: take-over queue
  std::uint64_t takeovers_ = 0;
};

std::unique_ptr<QueueDiscipline> make_queue(QueueKind kind);

}  // namespace dqos
