/// \file queue_discipline.hpp
/// The three buffer organizations the paper evaluates (§3.2, §3.4, §4.1),
/// as one devirtualized, cache-resident queue type.
///
/// - fifo     — a plain FIFO. The *Simple 2 VCs* architecture: the arbiter
///              may only look at the head, so a high-deadline packet at the
///              front penalizes low-deadline packets behind it (an *order
///              error*).
/// - heap     — a deadline-ordered priority queue. The *Ideal*
///              architecture: always exposes the minimum-deadline packet,
///              but a hardware heap per buffer is unfeasible at high radix
///              (the paper cites Ioannou & Katevenis).
/// - takeover — the paper's contribution (§3.4 + appendix): two FIFOs, an
///              *ordered queue* L and a *take-over queue* U.
///              Enqueue (Definition 1): to L iff deadline >= L's tail,
///              else to U. Dequeue (Definition 2): the smaller-deadline of
///              the two heads. Provably never reorders packets of a single
///              flow (Theorems 1-3) while sharply reducing order errors.
///
/// PacketQueue is a tagged union over the three schemes: the kind is fixed
/// at construction (one per switch configuration), `enqueue` / `dequeue` /
/// `candidate` dispatch on a two-bit tag through a perfectly-predicted
/// branch instead of a vtable, and all storage is ring buffers / a flat
/// vector — no per-packet node allocation anywhere. A switch holds
/// PacketQueues by value in contiguous arrays (see switch.hpp), which is
/// what lets the arbitration hot path stay in cache.
///
/// All schemes expose a single `candidate()`: per the appendix's flow
/// control note, **only the minimum-deadline head is checked for credits**,
/// otherwise a smaller packet could sneak out and corrupt the discipline.
///
/// Order errors are counted at dequeue time: an order error occurs when the
/// packet handed out has a strictly larger deadline than some packet still
/// waiting in the same buffer (the scheduler did not choose the earliest
/// deadline; §3.4 distinguishes this from out-of-order *delivery*). The
/// FIFO scheme tracks the true queue minimum with a monotonic ring (the
/// classic sliding-window-minimum structure) instead of the old
/// `std::multiset`, so the diagnostic costs O(1) amortized and zero
/// allocations rather than two red-black-tree operations per packet.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "proto/packet_pool.hpp"
#include "switchfab/packet_ring.hpp"
#include "util/time.hpp"

namespace dqos {

enum class QueueKind : std::uint8_t {
  kFifo = 0,      ///< Simple 2 VCs / Traditional
  kHeap = 1,      ///< Ideal
  kTakeover = 2,  ///< Advanced 2 VCs
};

std::string_view to_string(QueueKind k);

class PacketQueue {
 public:
  explicit PacketQueue(QueueKind kind) : kind_(kind) {}

  PacketQueue(PacketQueue&&) noexcept = default;
  PacketQueue& operator=(PacketQueue&&) noexcept = default;

  [[nodiscard]] QueueKind kind() const { return kind_; }

  /// Stores `p`. `p->local_deadline` must already be reconstructed into this
  /// node's clock domain.
  void enqueue(PacketPtr p);

  /// The unique packet eligible for transmission, or nullptr if empty.
  [[nodiscard]] const Packet* candidate() const {
    switch (kind_) {
      case QueueKind::kFifo:
        return lq_.empty() ? nullptr : lq_.front().get();
      case QueueKind::kHeap:
        return heap_.empty() ? nullptr : heap_.front().pkt.get();
      case QueueKind::kTakeover:
        if (lq_.empty()) return nullptr;
        return pick_upper() ? uq_.front().get() : lq_.front().get();
    }
    return nullptr;
  }

  /// Removes and returns the candidate. Queue must be non-empty.
  PacketPtr dequeue();

  [[nodiscard]] std::size_t packets() const {
    return kind_ == QueueKind::kHeap ? heap_.size() : lq_.size() + uq_.size();
  }
  [[nodiscard]] bool empty() const { return packets() == 0; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

  /// Smallest deadline currently queued (TimePoint::max() if empty).
  /// Diagnostic only — architectures must not schedule from it.
  [[nodiscard]] TimePoint min_deadline() const;

  /// Dequeues whose packet was not the true queue minimum.
  [[nodiscard]] std::uint64_t order_errors() const { return order_errors_; }

  /// Pre-sizes the rings/heap so a run at the expected occupancy never
  /// allocates past warm-up.
  void reserve(std::size_t packets);

  // --- take-over-scheme diagnostics (zero / empty for other kinds) ---
  /// Packets routed to the take-over queue so far (ablation A1 metric).
  [[nodiscard]] std::uint64_t takeovers() const { return takeovers_; }
  [[nodiscard]] std::size_t ordered_packets() const { return lq_.size(); }
  [[nodiscard]] std::size_t takeover_packets() const { return uq_.size(); }

 private:
  struct HeapEntry {
    TimePoint deadline;
    std::uint64_t seq;
    PacketPtr pkt;
    bool operator>(const HeapEntry& o) const {
      if (deadline != o.deadline) return deadline > o.deadline;
      return seq > o.seq;
    }
  };
  /// One candidate for "minimum of the FIFO window": deadline plus the
  /// arrival sequence it belongs to (so the tracker can tell when its
  /// minimum left the queue).
  struct MonoEntry {
    std::int64_t deadline_ps;
    std::uint64_t seq;
  };

  /// True if the dequeue candidate is U's head (strictly smaller deadline
  /// than L's head; ties stay with L, matching Definition 2's "smallest").
  [[nodiscard]] bool pick_upper() const {
    DQOS_ASSERT(!lq_.empty());  // Lemma 1
    return !uq_.empty() &&
           uq_.front()->local_deadline < lq_.front()->local_deadline;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  void note_enqueue(const Packet& p) { bytes_ += p.size(); }
  /// `min_before_removal` is min_deadline() computed while `p` was still
  /// queued; a strictly larger deadline means another packet deserved to go.
  void note_dequeue(const Packet& p, TimePoint min_before_removal) {
    bytes_ -= p.size();
    if (p.local_deadline > min_before_removal) ++order_errors_;
  }

  QueueKind kind_;
  PacketRing lq_;  ///< fifo: the queue; takeover: L, the ordered queue
  PacketRing uq_;  ///< takeover only: U, the take-over queue
  std::vector<HeapEntry> heap_;  ///< heap only: manual binary min-heap
  RingBuffer<MonoEntry> mono_;   ///< fifo only: sliding-window minimum
  std::uint64_t next_seq_ = 0;   ///< arrival counter (heap ties, fifo mono)
  std::uint64_t head_seq_ = 0;   ///< fifo: arrival seq of lq_'s front
  std::uint64_t bytes_ = 0;
  std::uint64_t order_errors_ = 0;
  std::uint64_t takeovers_ = 0;
};

/// Convenience constructors retained from the virtual-hierarchy era; the
/// paper-facing names still appear in tests, benches and docs.
class FifoQueue final : public PacketQueue {
 public:
  FifoQueue() : PacketQueue(QueueKind::kFifo) {}
};
class HeapQueue final : public PacketQueue {
 public:
  HeapQueue() : PacketQueue(QueueKind::kHeap) {}
};
class TakeoverQueue final : public PacketQueue {
 public:
  TakeoverQueue() : PacketQueue(QueueKind::kTakeover) {}
};

[[nodiscard]] PacketQueue make_queue(QueueKind kind);

}  // namespace dqos
