#include "switchfab/pipelined_heap.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace dqos {

PipelinedHeapModel::PipelinedHeapModel(std::size_t capacity, Duration cycle)
    : capacity_(capacity), cycle_(cycle) {
  DQOS_EXPECTS(capacity >= 2);
  DQOS_EXPECTS(cycle > Duration::zero());
  levels_ = 1;
  while ((std::size_t{1} << levels_) - 1 < capacity) ++levels_;
  keys_.reserve(capacity);
}

PipelinedHeapModel::Timing PipelinedHeapModel::issue(TimePoint now) {
  // Pipelining: ops may issue every cycle, but never before the previous
  // op has cleared the first level.
  const TimePoint start = max(now, next_issue_);
  next_issue_ = start + cycle_;
  ++ops_;
  return Timing{start + op_latency(), next_issue_};
}

PipelinedHeapModel::Timing PipelinedHeapModel::insert(std::int64_t key,
                                                      TimePoint now) {
  DQOS_EXPECTS(keys_.size() < capacity_);
  // dqos-lint: allow(hot-path-transitive) — capacity reserved up front
  keys_.push_back(key);
  sift_up(keys_.size() - 1);
  return issue(now);
}

PipelinedHeapModel::Timing PipelinedHeapModel::extract_min(TimePoint now,
                                                           std::int64_t* key_out) {
  DQOS_EXPECTS(!keys_.empty());
  if (key_out) *key_out = keys_.front();
  keys_.front() = keys_.back();
  keys_.pop_back();
  if (!keys_.empty()) sift_down(0);
  return issue(now);
}

PipelinedHeapModel::Timing PipelinedHeapModel::extract_min(
    std::int64_t key_out_check, TimePoint now) {
  std::int64_t k = 0;
  const Timing t = extract_min(now, &k);
  DQOS_ASSERT(k == key_out_check);
  return t;
}

std::int64_t PipelinedHeapModel::min() const {
  DQOS_EXPECTS(!keys_.empty());
  return keys_.front();
}

void PipelinedHeapModel::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (keys_[parent] <= keys_[i]) break;
    std::swap(keys_[parent], keys_[i]);
    i = parent;
  }
}

void PipelinedHeapModel::sift_down(std::size_t i) {
  const std::size_t n = keys_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && keys_[l] < keys_[smallest]) smallest = l;
    if (r < n && keys_[r] < keys_[smallest]) smallest = r;
    if (smallest == i) return;
    std::swap(keys_[i], keys_[smallest]);
    i = smallest;
  }
}

}  // namespace dqos
