#include "switchfab/arbiter.hpp"

#include <numeric>

#include "util/contracts.hpp"

namespace dqos {

std::optional<std::size_t> EdfInputArbiter::pick(std::span<const ArbCandidate> cands) {
  if (cands.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < cands.size(); ++i) {
    const bool earlier =
        cands[i].pkt->local_deadline < cands[best].pkt->local_deadline ||
        (cands[i].pkt->local_deadline == cands[best].pkt->local_deadline &&
         cands[i].input < cands[best].input);
    if (earlier) best = i;
  }
  return best;
}

std::optional<std::size_t> RoundRobinInputArbiter::pick(
    std::span<const ArbCandidate> cands) {
  if (cands.empty()) return std::nullopt;
  // Candidates come sorted by input index (the switch scans inputs in
  // order); pick the first with input > last_, wrapping.
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].input > last_ && cands[i].input < num_inputs_) return i;
  }
  return 0;  // wrap around
}

std::unique_ptr<InputArbiter> make_input_arbiter(InputArbiterKind kind,
                                                 std::size_t num_inputs) {
  switch (kind) {
    case InputArbiterKind::kEdf: return std::make_unique<EdfInputArbiter>();
    case InputArbiterKind::kRoundRobin:
      return std::make_unique<RoundRobinInputArbiter>(num_inputs);
  }
  DQOS_ASSERT(false);
  return nullptr;
}

StrictPriorityVcPolicy::StrictPriorityVcPolicy(std::uint8_t num_vcs) {
  DQOS_EXPECTS(num_vcs >= 1);
  order_.resize(num_vcs);
  std::iota(order_.begin(), order_.end(), VcId{0});
}

WeightedVcPolicy::WeightedVcPolicy(std::vector<std::uint32_t> weights,
                                   std::uint32_t quantum_bytes)
    : weights_(std::move(weights)),
      deficit_(weights_.size(), 0),
      quantum_(quantum_bytes) {
  DQOS_EXPECTS(!weights_.empty() && quantum_bytes > 0);
  for (std::size_t vc = 0; vc < weights_.size(); ++vc) {
    DQOS_EXPECTS(weights_[vc] > 0);
    deficit_[vc] = static_cast<std::int64_t>(weights_[vc]) * quantum_;
  }
}

void WeightedVcPolicy::order(std::vector<VcId>& out) {
  // Current VC first while it retains deficit, then the others in ring
  // order. The switch skips unservable VCs, keeping the policy
  // work-conserving.
  out.clear();
  out.reserve(weights_.size());
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    out.push_back(static_cast<VcId>((current_ + i) % weights_.size()));
  }
}

void WeightedVcPolicy::granted(VcId vc, std::uint32_t bytes) {
  DQOS_EXPECTS(vc < weights_.size());
  if (vc != current_) {
    // The ring moved on (earlier VCs were empty/blocked): make `vc` current
    // and bank a fresh allocation on top of its residue before charging.
    current_ = vc;
    replenish(vc);
  }
  deficit_[vc] -= bytes;
  if (deficit_[vc] <= 0) {
    // Advance past VCs still in debt, banking one allocation per visit: a
    // VC that overshot its allocation pays the debt off in skipped rounds
    // before the ring offers it the link first again. Terminates because
    // each visit adds a positive allocation toward the positive clamp.
    do {
      current_ = (current_ + 1) % weights_.size();
      replenish(current_);
    } while (deficit_[current_] <= 0);
  }
}

}  // namespace dqos
