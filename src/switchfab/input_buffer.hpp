/// \file input_buffer.hpp
/// One input-port, one-VC buffer with virtual output queuing (VOQ).
///
/// The paper's switches use combined input/output buffering with VOQ "at
/// the switch level ... the usual solution to avoid head-of-line blocking"
/// (§4.1), and 8 KB of buffer *per VC* shared by that VC's virtual output
/// queues. Each VOQ is an instance of the architecture's queue discipline
/// (FIFO / heap / take-over); the byte budget is accounted here, across all
/// VOQs of the VC, which is exactly what the upstream credit counter
/// mirrors.
///
/// The VOQs are held by value in one contiguous array (PacketQueue is the
/// devirtualized tagged-union discipline), so a crossbar arbitration pass
/// touches no per-queue heap indirection.
#pragma once

#include <vector>

#include "switchfab/queue_discipline.hpp"

namespace dqos {

class InputBuffer {
 public:
  /// `capacity_bytes` — the per-VC budget (8 KB in the paper).
  /// `num_outputs`    — VOQ fan-out (one queue per switch output).
  InputBuffer(QueueKind kind, std::uint32_t capacity_bytes, std::size_t num_outputs);

  InputBuffer(InputBuffer&&) noexcept = default;
  InputBuffer& operator=(InputBuffer&&) noexcept = default;

  [[nodiscard]] bool has_space(std::uint32_t bytes) const {
    return used_bytes_ + bytes <= capacity_;
  }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }

  /// Enqueues into the VOQ for `output`. Caller must have checked space
  /// (credit flow control guarantees it; violation is a protocol bug).
  void enqueue(PacketPtr p, std::size_t output);

  /// Transmission candidate of the VOQ for `output` (nullptr if empty).
  [[nodiscard]] const Packet* candidate(std::size_t output) const {
    return queues_[output].candidate();
  }

  PacketPtr dequeue(std::size_t output);

  [[nodiscard]] std::size_t packets(std::size_t output) const {
    return queues_[output].packets();
  }
  [[nodiscard]] std::size_t total_packets() const { return total_packets_; }
  [[nodiscard]] bool empty() const { return total_packets_ == 0; }
  [[nodiscard]] std::size_t num_outputs() const { return queues_.size(); }

  /// Diagnostics aggregated over the VOQs.
  [[nodiscard]] std::uint64_t order_errors() const;
  [[nodiscard]] std::uint64_t takeovers() const;

 private:
  std::uint32_t capacity_;
  std::uint64_t used_bytes_ = 0;
  std::size_t total_packets_ = 0;
  std::vector<PacketQueue> queues_;  ///< by value: one cache-resident array
};

}  // namespace dqos
