/// \file arbiter.hpp
/// Output-port arbitration policies.
///
/// Two orthogonal decisions are made whenever an output link frees up:
///   1. Which VC to serve — VcSelectionPolicy. The paper's architectures
///      give the regulated VC *absolute* priority over best-effort (§3.2);
///      the Traditional architecture may also be configured with a
///      PCI AS / InfiniBand style weighted arbitration table over many VCs
///      (ablation A5).
///   2. Which input's VOQ head to grant within that VC — InputArbiter.
///      EDF architectures compare the deadline tags of the candidate heads
///      (the "sorting network" argument of §3.2: inputs present ascending-
///      deadline streams, so heads suffice). The Traditional architecture
///      is deadline-blind and uses round-robin.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "proto/packet.hpp"
#include "proto/types.hpp"

namespace dqos {

/// One entrant in an arbitration round: the candidate head of an input's
/// VOQ for the contended output.
struct ArbCandidate {
  std::size_t input = 0;
  const Packet* pkt = nullptr;
};

// ---------------------------------------------------------------------------
// Input selection within a VC
// ---------------------------------------------------------------------------

class InputArbiter {
 public:
  virtual ~InputArbiter() = default;
  /// Index into `cands` of the winner; nullopt iff `cands` is empty.
  /// Must be deterministic.
  [[nodiscard]] virtual std::optional<std::size_t> pick(
      std::span<const ArbCandidate> cands) = 0;
  /// Called when the picked packet was actually granted (round-robin
  /// pointers advance only on grants, not on credit-blocked attempts).
  virtual void granted(std::size_t input) = 0;
};

/// EDF: minimum deadline wins; ties resolved by lowest input index
/// (deterministic; with picosecond deadlines ties are negligible).
class EdfInputArbiter final : public InputArbiter {
 public:
  [[nodiscard]] std::optional<std::size_t> pick(
      std::span<const ArbCandidate> cands) override;
  void granted(std::size_t /*input*/) override {}
};

/// Round-robin over input ports, starting after the last grant.
class RoundRobinInputArbiter final : public InputArbiter {
 public:
  explicit RoundRobinInputArbiter(std::size_t num_inputs) : num_inputs_(num_inputs) {}
  [[nodiscard]] std::optional<std::size_t> pick(
      std::span<const ArbCandidate> cands) override;
  void granted(std::size_t input) override { last_ = input; }

 private:
  std::size_t num_inputs_;
  std::size_t last_ = ~std::size_t{0};  // first round starts at input 0
};

enum class InputArbiterKind : std::uint8_t { kEdf, kRoundRobin };
std::unique_ptr<InputArbiter> make_input_arbiter(InputArbiterKind kind,
                                                 std::size_t num_inputs);

// ---------------------------------------------------------------------------
// VC selection
// ---------------------------------------------------------------------------

class VcSelectionPolicy {
 public:
  virtual ~VcSelectionPolicy() = default;
  /// Fills `out` (cleared first) with VCs in the order they should be
  /// offered the link for this decision. The switch takes the first VC that
  /// yields a transmittable packet. Out-param so hot-path callers reuse one
  /// scratch buffer per port instead of allocating per decision.
  virtual void order(std::vector<VcId>& out) = 0;
  /// Allocating convenience wrapper (tests, diagnostics).
  [[nodiscard]] std::vector<VcId> order() {
    std::vector<VcId> out;
    order(out);
    return out;
  }
  virtual void granted(VcId vc, std::uint32_t bytes) = 0;
};

/// Strict priority: VC0 always first. The paper's two-VC architectures.
class StrictPriorityVcPolicy final : public VcSelectionPolicy {
 public:
  explicit StrictPriorityVcPolicy(std::uint8_t num_vcs);
  using VcSelectionPolicy::order;
  void order(std::vector<VcId>& out) override {
    out.assign(order_.begin(), order_.end());
  }
  void granted(VcId, std::uint32_t) override {}

 private:
  std::vector<VcId> order_;
};

/// Deficit-weighted round robin, modelling the IBA / PCI AS VC arbitration
/// table. Each VC carries a weight; a VC keeps the grant as long as its
/// deficit (replenished as quantum * weight) lasts. Work-conserving: empty
/// or blocked VCs are skipped.
///
/// The deficit is *banked* (classic DRR): service a VC did not use, and
/// debt from a packet that overshot its allocation, carry into the next
/// round rather than being reset — otherwise a VC that keeps overshooting
/// by one max-size packet per round gets systematically more than its
/// share. The bank is clamped at one allocation plus one quantum so a VC
/// that sits idle or blocked for a long stretch cannot hoard unbounded
/// credit and then monopolize the link (the DRR "unbounded deficit
/// growth" hazard); the regression test asserts exactly this bound after
/// every grant.
class WeightedVcPolicy final : public VcSelectionPolicy {
 public:
  /// `weights` — one per VC, relative shares (e.g. {1,1,1,1}).
  /// `quantum_bytes` — bytes of service per weight unit per round.
  explicit WeightedVcPolicy(std::vector<std::uint32_t> weights,
                            std::uint32_t quantum_bytes = 4096);
  using VcSelectionPolicy::order;
  void order(std::vector<VcId>& out) override;
  void granted(VcId vc, std::uint32_t bytes) override;

  /// Current banked deficit of `vc` (diagnostics / tests). Bounded above
  /// by allocation(vc) + quantum at every quiescent point.
  [[nodiscard]] std::int64_t deficit(VcId vc) const { return deficit_[vc]; }
  /// One round's allocation for `vc`: weight * quantum bytes.
  [[nodiscard]] std::int64_t allocation(VcId vc) const {
    return static_cast<std::int64_t>(weights_[vc]) * quantum_;
  }

 private:
  /// Replenishes `vc` for a new round: adds one allocation to the banked
  /// residue, clamped at one allocation + one quantum of carried credit.
  void replenish(std::size_t vc) {
    deficit_[vc] = std::min(deficit_[vc] + allocation(static_cast<VcId>(vc)),
                            allocation(static_cast<VcId>(vc)) + quantum_);
  }

  std::vector<std::uint32_t> weights_;
  std::vector<std::int64_t> deficit_;
  std::uint32_t quantum_;
  std::size_t current_ = 0;
};

}  // namespace dqos
