/// \file packet_ring.hpp
/// Power-of-two ring buffer — the storage of the switch datapath.
///
/// Every packet queue in the switch (FIFO buffers, the take-over scheme's
/// L/U queues, the FIFO min-deadline tracker) is a bounded-occupancy queue
/// with push-back/pop-front access. `std::deque` serves that pattern with
/// heap-scattered blocks and a steady trickle of block allocations as the
/// cursor migrates; a power-of-two ring keeps the whole queue in one
/// contiguous slab, wraps with a mask (no invalidation, no relocation on
/// wrap), and allocates only when occupancy exceeds every previous high
/// water mark — i.e. never at steady state.
///
/// Growth is by whole chunks (capacity doubles, with a small floor), so a
/// cold queue reaches its working size in a handful of allocations and a
/// switch with hundreds of queues does not over-commit memory.
///
/// The element type only needs to be movable (PacketPtr is move-only).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "proto/packet_pool.hpp"
#include "util/contracts.hpp"

namespace dqos {

template <typename T>
class RingBuffer {
 public:
  /// Smallest non-zero capacity (one growth chunk).
  static constexpr std::size_t kMinCapacity = 16;

  RingBuffer() = default;
  explicit RingBuffer(std::size_t initial_capacity) {
    if (initial_capacity > 0) reallocate(pow2_at_least(initial_capacity));
  }

  RingBuffer(RingBuffer&&) noexcept = default;
  RingBuffer& operator=(RingBuffer&&) noexcept = default;
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  /// Ensures room for at least `n` elements without further allocation.
  void reserve(std::size_t n) {
    if (n > cap_) reallocate(pow2_at_least(n));
  }

  void push_back(T v) {
    if (count_ == cap_) reallocate(cap_ ? cap_ * 2 : kMinCapacity);
    slots_[(head_ + count_) & mask_] = std::move(v);
    ++count_;
  }

  T pop_front() {
    DQOS_EXPECTS(count_ > 0);
    T v = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask_;
    --count_;
    return v;
  }

  T pop_back() {
    DQOS_EXPECTS(count_ > 0);
    --count_;
    return std::move(slots_[(head_ + count_) & mask_]);
  }

  [[nodiscard]] T& front() {
    DQOS_EXPECTS(count_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    DQOS_EXPECTS(count_ > 0);
    return slots_[head_];
  }
  [[nodiscard]] T& back() {
    DQOS_EXPECTS(count_ > 0);
    return slots_[(head_ + count_ - 1) & mask_];
  }
  [[nodiscard]] const T& back() const {
    DQOS_EXPECTS(count_ > 0);
    return slots_[(head_ + count_ - 1) & mask_];
  }

  /// i-th element from the front (0 = front). For diagnostic scans.
  [[nodiscard]] const T& at(std::size_t i) const {
    DQOS_EXPECTS(i < count_);
    return slots_[(head_ + i) & mask_];
  }

  void clear() {
    while (count_ > 0) (void)pop_front();
  }

 private:
  static std::size_t pow2_at_least(std::size_t n) {
    std::size_t c = kMinCapacity;
    while (c < n) c *= 2;
    return c;
  }

  /// Moves the live window to the front of a fresh power-of-two slab.
  void reallocate(std::size_t new_cap) {
    // dqos-lint: allow(hot-path-transitive) — doubling slab swap, amortized
    auto fresh = std::make_unique<T[]>(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      fresh[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(fresh);
    cap_ = new_cap;
    mask_ = new_cap - 1;
    head_ = 0;
  }

  std::unique_ptr<T[]> slots_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// The switch datapath's packet queue storage.
using PacketRing = RingBuffer<PacketPtr>;

}  // namespace dqos
