#include "switchfab/queue_discipline.hpp"

#include "util/contracts.hpp"

namespace dqos {

std::string_view to_string(QueueKind k) {
  switch (k) {
    case QueueKind::kFifo: return "fifo";
    case QueueKind::kHeap: return "heap";
    case QueueKind::kTakeover: return "takeover";
  }
  return "?";
}

// ---------------------------------------------------------------- FifoQueue

void FifoQueue::enqueue(PacketPtr p) {
  DQOS_EXPECTS(p != nullptr);
  note_enqueue(*p);
  deadlines_.insert(p->local_deadline.ps());
  q_.push_back(std::move(p));
}

const Packet* FifoQueue::candidate() const {
  return q_.empty() ? nullptr : q_.front().get();
}

PacketPtr FifoQueue::dequeue() {
  DQOS_EXPECTS(!q_.empty());
  const TimePoint min_before = min_deadline();
  PacketPtr p = std::move(q_.front());
  q_.pop_front();
  note_dequeue(*p, min_before);
  const auto it = deadlines_.find(p->local_deadline.ps());
  DQOS_ASSERT(it != deadlines_.end());
  deadlines_.erase(it);
  return p;
}

TimePoint FifoQueue::min_deadline() const {
  return deadlines_.empty() ? TimePoint::max() : TimePoint::from_ps(*deadlines_.begin());
}

// ---------------------------------------------------------------- HeapQueue

void HeapQueue::enqueue(PacketPtr p) {
  DQOS_EXPECTS(p != nullptr);
  note_enqueue(*p);
  heap_.push_back(Entry{p->local_deadline, next_seq_++, std::move(p)});
  sift_up(heap_.size() - 1);
}

const Packet* HeapQueue::candidate() const {
  return heap_.empty() ? nullptr : heap_.front().pkt.get();
}

PacketPtr HeapQueue::dequeue() {
  DQOS_EXPECTS(!heap_.empty());
  // Head is the min: never an order error.
  note_dequeue(*heap_.front().pkt, min_deadline());
  PacketPtr p = std::move(heap_.front().pkt);
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return p;
}

TimePoint HeapQueue::min_deadline() const {
  return heap_.empty() ? TimePoint::max() : heap_.front().deadline;
}

void HeapQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(heap_[parent] > heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void HeapQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && heap_[smallest] > heap_[l]) smallest = l;
    if (r < n && heap_[smallest] > heap_[r]) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

// ------------------------------------------------------------ TakeoverQueue

void TakeoverQueue::enqueue(PacketPtr p) {
  DQOS_EXPECTS(p != nullptr);
  note_enqueue(*p);
  if (lq_.empty()) {
    // Definition 1: both queues empty -> L. (L empty while U holds packets
    // is unreachable, Lemma 1 — assert the invariant instead of handling it.)
    DQOS_ASSERT(uq_.empty());
    lq_.push_back(std::move(p));
    return;
  }
  if (p->local_deadline >= lq_.back()->local_deadline) {
    lq_.push_back(std::move(p));
  } else {
    ++takeovers_;
    uq_.push_back(std::move(p));
  }
}

bool TakeoverQueue::pick_upper() const {
  DQOS_ASSERT(!lq_.empty());  // Lemma 1
  return !uq_.empty() && uq_.front()->local_deadline < lq_.front()->local_deadline;
}

const Packet* TakeoverQueue::candidate() const {
  if (lq_.empty()) return nullptr;
  return pick_upper() ? uq_.front().get() : lq_.front().get();
}

PacketPtr TakeoverQueue::dequeue() {
  DQOS_EXPECTS(!empty());
  const TimePoint min_before = min_deadline();
  auto& q = pick_upper() ? uq_ : lq_;
  PacketPtr p = std::move(q.front());
  q.pop_front();
  note_dequeue(*p, min_before);
  return p;
}

TimePoint TakeoverQueue::min_deadline() const {
  // L is deadline-sorted (Theorem 1) so its min is the head; U is not, so
  // scan it. U is small in practice (only take-over packets), and this is
  // diagnostics-only — hardware would not do it.
  TimePoint m = lq_.empty() ? TimePoint::max() : lq_.front()->local_deadline;
  for (const auto& p : uq_) m = min(m, p->local_deadline);
  return m;
}

// ------------------------------------------------------------------ factory

std::unique_ptr<QueueDiscipline> make_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kFifo: return std::make_unique<FifoQueue>();
    case QueueKind::kHeap: return std::make_unique<HeapQueue>();
    case QueueKind::kTakeover: return std::make_unique<TakeoverQueue>();
  }
  DQOS_ASSERT(false);
  return nullptr;
}

}  // namespace dqos
