#include "switchfab/queue_discipline.hpp"

#include "util/contracts.hpp"

namespace dqos {

std::string_view to_string(QueueKind k) {
  switch (k) {
    case QueueKind::kFifo: return "fifo";
    case QueueKind::kHeap: return "heap";
    case QueueKind::kTakeover: return "takeover";
  }
  return "?";
}

void PacketQueue::enqueue(PacketPtr p) {
  DQOS_EXPECTS(p != nullptr);
  note_enqueue(*p);
  switch (kind_) {
    case QueueKind::kFifo: {
      // Maintain the sliding-window minimum: drop tail candidates the new
      // arrival dominates, then append. The ring stays sorted by deadline
      // (non-decreasing), so its front is always the true queue minimum.
      const std::int64_t d = p->local_deadline.ps();
      while (!mono_.empty() && mono_.back().deadline_ps > d) {
        (void)mono_.pop_back();
      }
      mono_.push_back(MonoEntry{d, next_seq_});
      ++next_seq_;
      lq_.push_back(std::move(p));
      return;
    }
    case QueueKind::kHeap:
      heap_.push_back(HeapEntry{p->local_deadline, next_seq_++, std::move(p)});
      sift_up(heap_.size() - 1);
      return;
    case QueueKind::kTakeover:
      if (lq_.empty()) {
        // Definition 1: both queues empty -> L. (L empty while U holds
        // packets is unreachable, Lemma 1 — assert the invariant instead of
        // handling it.)
        DQOS_ASSERT(uq_.empty());
        lq_.push_back(std::move(p));
        return;
      }
      if (p->local_deadline >= lq_.back()->local_deadline) {
        lq_.push_back(std::move(p));
      } else {
        ++takeovers_;
        uq_.push_back(std::move(p));
      }
      return;
  }
  DQOS_ASSERT(false);
}

PacketPtr PacketQueue::dequeue() {
  switch (kind_) {
    case QueueKind::kFifo: {
      DQOS_EXPECTS(!lq_.empty());
      const TimePoint min_before = min_deadline();
      PacketPtr p = lq_.pop_front();
      note_dequeue(*p, min_before);
      // The departing head owned the tracker's front entry iff it was the
      // window minimum; otherwise its candidacy was already dominated.
      DQOS_ASSERT(!mono_.empty());
      if (mono_.front().seq == head_seq_) (void)mono_.pop_front();
      ++head_seq_;
      return p;
    }
    case QueueKind::kHeap: {
      DQOS_EXPECTS(!heap_.empty());
      // Head is the min: never an order error.
      note_dequeue(*heap_.front().pkt, min_deadline());
      PacketPtr p = std::move(heap_.front().pkt);
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      if (!heap_.empty()) sift_down(0);
      return p;
    }
    case QueueKind::kTakeover: {
      DQOS_EXPECTS(!empty());
      const TimePoint min_before = min_deadline();
      PacketRing& q = pick_upper() ? uq_ : lq_;
      PacketPtr p = q.pop_front();
      note_dequeue(*p, min_before);
      return p;
    }
  }
  DQOS_ASSERT(false);
  return nullptr;
}

TimePoint PacketQueue::min_deadline() const {
  switch (kind_) {
    case QueueKind::kFifo:
      return mono_.empty() ? TimePoint::max()
                           : TimePoint::from_ps(mono_.front().deadline_ps);
    case QueueKind::kHeap:
      return heap_.empty() ? TimePoint::max() : heap_.front().deadline;
    case QueueKind::kTakeover: {
      // L is deadline-sorted (Theorem 1) so its min is the head; U is not,
      // so scan it. U is small in practice (only take-over packets), and
      // this is diagnostics-only — hardware would not do it.
      TimePoint m = lq_.empty() ? TimePoint::max() : lq_.front()->local_deadline;
      for (std::size_t i = 0; i < uq_.size(); ++i) {
        m = min(m, uq_.at(i)->local_deadline);
      }
      return m;
    }
  }
  return TimePoint::max();
}

void PacketQueue::reserve(std::size_t packets) {
  switch (kind_) {
    case QueueKind::kFifo:
      lq_.reserve(packets);
      mono_.reserve(packets);
      return;
    case QueueKind::kHeap:
      heap_.reserve(packets);
      return;
    case QueueKind::kTakeover:
      lq_.reserve(packets);
      uq_.reserve(packets);
      return;
  }
}

void PacketQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(heap_[parent] > heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void PacketQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && heap_[smallest] > heap_[l]) smallest = l;
    if (r < n && heap_[smallest] > heap_[r]) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

PacketQueue make_queue(QueueKind kind) { return PacketQueue(kind); }

}  // namespace dqos
