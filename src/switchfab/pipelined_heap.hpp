/// \file pipelined_heap.hpp
/// A cycle-accurate model of the pipelined hardware heap of Ioannou &
/// Katevenis (ICC 2001) — the design the paper cites as the way to build
/// the *Ideal* architecture, and rejects as too expensive at high radix
/// (§3.2).
///
/// The hardware organizes a binary heap by *levels*; each level owns its
/// own SRAM bank and comparator stage, so successive operations pipeline:
/// a new operation may issue every `cycle` as long as it is one level
/// behind the previous one, and an operation completes after
/// `levels x cycle`. This model tracks exactly that timing:
///
///   - issue(op, now) returns the completion time of the operation and
///     the earliest time the *next* operation may issue;
///   - the logical heap contents are tracked with an ordinary binary heap
///     (the hardware's functional behaviour), so results are identical to
///     HeapQueue — only the timing differs.
///
/// The Ideal switch architecture with `SwitchParams::heap_op_latency` is a
/// first-order stand-in (a flat per-op latency); this model supplies the
/// *derived* numbers: per-op issue interval = 1 cycle, latency =
/// ceil(log2(capacity)) cycles, from which A10's sweep points can be
/// grounded in a concrete design instead of a free parameter.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace dqos {

class PipelinedHeapModel {
 public:
  /// `capacity` — max entries (sets the level count = ceil(log2(cap))+1).
  /// `cycle` — SRAM access + comparator time per level (e.g. 4 ns at
  /// 250 MHz, the ICC'01 design point).
  PipelinedHeapModel(std::size_t capacity, Duration cycle);

  struct Timing {
    TimePoint completes;   ///< when the operation's result is available
    TimePoint next_issue;  ///< earliest issue time of the next operation
  };

  /// Issues an insert of `key` at `now` (>= the previous next_issue).
  Timing insert(std::int64_t key, TimePoint now);
  /// Issues an extract-min at `now`. Heap must be non-empty.
  Timing extract_min(std::int64_t key_out_check, TimePoint now);
  /// Extract-min that also returns the popped key.
  Timing extract_min(TimePoint now, std::int64_t* key_out);

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::size_t levels() const { return levels_; }
  [[nodiscard]] Duration op_latency() const {
    return cycle_ * static_cast<std::int64_t>(levels_);
  }
  [[nodiscard]] Duration issue_interval() const { return cycle_; }

  /// Total operations issued (diagnostics).
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

 private:
  Timing issue(TimePoint now);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::size_t capacity_;
  std::size_t levels_;
  Duration cycle_;
  TimePoint next_issue_;
  std::uint64_t ops_ = 0;
  std::vector<std::int64_t> keys_;  // functional binary min-heap
};

}  // namespace dqos
