/// \file channel.hpp
/// A directed network channel with credit-based flow control.
///
/// High-speed interconnects never drop packets: the sender only transmits
/// when it holds byte credits for the receiver's input buffer (§2.2, §5:
/// "no packets are dropped due to the use of credit-based flow control").
/// A Channel models one direction of a physical link:
///   - sender-side credit counters, one per VC, initialized to the
///     downstream per-VC buffer capacity;
///   - serialization at the link bandwidth plus a fixed propagation +
///     downstream-processing latency;
///   - the credit-return path (the reverse wire), modelled as the same
///     fixed latency applied to credit symbols.
#pragma once

#include <functional>
#include <vector>

#include "proto/packet_pool.hpp"
#include "proto/types.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace dqos {

/// Anything that can accept packets from a channel (switches and hosts).
class PacketReceiver {
 public:
  virtual ~PacketReceiver() = default;
  virtual void receive_packet(PacketPtr p, PortId in_port) = 0;
};

class Channel {
 public:
  /// `credits_per_vc` must equal the downstream input buffer's per-VC
  /// capacity for flow control to be lossless and deadlock-free.
  Channel(Simulator& sim, Bandwidth bw, Duration latency, std::uint8_t num_vcs,
          std::uint32_t credits_per_vc);

  void connect_to(PacketReceiver* dst, PortId dst_port);

  /// Called by the sender when fresh credits arrive (to retry arbitration).
  void set_on_credit(std::function<void()> cb) { on_credit_ = std::move(cb); }

  // --- sender-side credit view ---
  [[nodiscard]] bool has_credits(VcId vc, std::uint32_t bytes) const {
    return credits_[vc] >= static_cast<std::int64_t>(bytes);
  }
  [[nodiscard]] std::int64_t credits(VcId vc) const { return credits_[vc]; }
  void consume_credits(VcId vc, std::uint32_t bytes);

  /// Called by the *receiver* when it frees `bytes` of VC buffer space.
  /// The credits become visible to the sender after the wire latency.
  void return_credits(VcId vc, std::uint32_t bytes);

  /// Time the link needs to serialize `bytes`.
  [[nodiscard]] Duration serialization_time(std::uint32_t bytes) const {
    return bw_.transfer_time(bytes);
  }
  [[nodiscard]] Bandwidth bandwidth() const { return bw_; }
  [[nodiscard]] Duration latency() const { return latency_; }

  /// Ships a packet departing *now*: the receiver gets it at
  /// now + serialization + latency. The caller is responsible for keeping
  /// its output busy for the serialization time (crossbar/link occupancy).
  void send(PacketPtr p);

  // --- occupancy statistics ---
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] Duration busy_time() const { return busy_time_; }

 private:
  Simulator& sim_;
  Bandwidth bw_;
  Duration latency_;
  std::vector<std::int64_t> credits_;
  PacketReceiver* dst_ = nullptr;
  PortId dst_port_ = kInvalidPort;
  std::function<void()> on_credit_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  Duration busy_time_ = Duration::zero();
};

}  // namespace dqos
