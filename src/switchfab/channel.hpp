/// \file channel.hpp
/// A directed network channel with credit-based flow control.
///
/// High-speed interconnects never drop packets: the sender only transmits
/// when it holds byte credits for the receiver's input buffer (§2.2, §5:
/// "no packets are dropped due to the use of credit-based flow control").
/// A Channel models one direction of a physical link:
///   - sender-side credit counters, one per VC, initialized to the
///     downstream per-VC buffer capacity;
///   - serialization at the link bandwidth plus a fixed propagation +
///     downstream-processing latency;
///   - the credit-return path (the reverse wire), modelled as the same
///     fixed latency applied to credit symbols.
///
/// Fault model (the lossless assumption, relaxed): a channel can be taken
/// down (transiently or permanently), lose credit symbols on the reverse
/// wire, or corrupt a TTD tag in transit. Recovery is a credit-resync
/// watchdog: the sender tracks bytes in flight in both directions, and
/// after a configurable silence window re-derives its credit counter from
/// the conservation invariant
///
///   credits + in_flight_packets + downstream_occupancy + credits_in_flight
///     == capacity
///
/// restoring exactly what was lost. All fault machinery is opt-in: a
/// default-constructed channel schedules no extra events and behaves
/// bit-identically to the lossless model.
#pragma once

#include <vector>

#include "proto/packet_pool.hpp"
#include "proto/types.hpp"
#include "sim/shard_link.hpp"
#include "sim/simulator.hpp"
#include "util/callback.hpp"
#include "util/time.hpp"

namespace dqos {

class ShardExecutor;

/// Anything that can accept packets from a channel (switches and hosts).
class PacketReceiver {
 public:
  virtual ~PacketReceiver() = default;
  virtual void receive_packet(PacketPtr p, PortId in_port) = 0;
};

class Channel {
 public:
  /// `credits_per_vc` must equal the downstream input buffer's per-VC
  /// capacity for flow control to be lossless and deadlock-free.
  Channel(Simulator& sim, Bandwidth bw, Duration latency, std::uint8_t num_vcs,
          std::uint32_t credits_per_vc);

  void connect_to(PacketReceiver* dst, PortId dst_port);

  /// Called by the sender when fresh credits arrive (to retry arbitration).
  /// Also invoked on repair() so stalled senders resume draining. The
  /// context pointer must outlive this channel's event activity.
  void set_on_credit(Callback<void()> cb) { on_credit_ = cb; }

  // --- sender-side credit view ---
  [[nodiscard]] bool has_credits(VcId vc, std::uint32_t bytes) const {
    return credits_[vc] >= static_cast<std::int64_t>(bytes);
  }
  [[nodiscard]] std::int64_t credits(VcId vc) const { return credits_[vc]; }
  void consume_credits(VcId vc, std::uint32_t bytes);

  /// Called by the *receiver* when it frees `bytes` of VC buffer space.
  /// The credits become visible to the sender after the wire latency.
  ///
  /// Returns landing at the same delivery instant on the same VC are
  /// **coalesced** (DESIGN.md §11): the bytes fold into the newest pending
  /// batch and no second calendar event is scheduled — one flush per
  /// (channel, vc, instant) instead of one per packet. Cumulative byte
  /// counts, the credits_in_flight audit view, and the sender-visible
  /// delivery times are identical to the per-packet model; in fault-free
  /// runs same-instant returns never occur, so the event stream (and the
  /// golden fire-order hash) is unchanged.
  void return_credits(VcId vc, std::uint32_t bytes);

  /// Time the link needs to serialize `bytes`.
  [[nodiscard]] Duration serialization_time(std::uint32_t bytes) const {
    return bw_.transfer_time(bytes);
  }
  [[nodiscard]] Bandwidth bandwidth() const { return bw_; }
  [[nodiscard]] Duration latency() const { return latency_; }
  [[nodiscard]] std::uint8_t num_vcs() const {
    return static_cast<std::uint8_t>(credits_.size());
  }
  [[nodiscard]] std::uint32_t credits_per_vc() const { return capacity_; }

  /// Ships a packet departing *now*: the receiver gets it at
  /// now + serialization + latency. The caller is responsible for keeping
  /// its output busy for the serialization time (crossbar/link occupancy).
  /// If the link is down the packet is dropped and counted (the consumed
  /// credits stay consumed until resync restores them).
  void send(PacketPtr p);

  // --- link fault state -----------------------------------------------
  [[nodiscard]] bool is_up() const { return up_; }
  [[nodiscard]] bool failed_permanently() const { return !up_ && permanent_; }
  /// Takes the link down. Packets already serialized onto the wire still
  /// arrive; subsequent send() calls drop.
  void fail(bool permanent);
  /// Brings a transiently-failed link back; kicks the sender via the
  /// on_credit callback so stalled arbitration resumes.
  void repair();

  /// Fault injection: `bytes` of credit symbols vanish from the reverse
  /// wire (sender-side counter decremented, receiver never knows). Returns
  /// the bytes actually lost (clamped at the current counter).
  std::uint32_t lose_credits(VcId vc, std::uint32_t bytes);

  /// Fault injection: the next packet sent carries a TTD skewed by `delta`.
  void corrupt_next_ttd(Duration delta);

  // --- credit-resync protocol -------------------------------------------
  /// The receiver-side occupancy oracle (bytes queued downstream for a VC);
  /// wired by Switch::attach_input. Unset = downstream consumes instantly
  /// (hosts), occupancy 0.
  void set_occupancy_probe(Callback<std::uint64_t(VcId)> probe) {
    occupancy_probe_ = probe;
  }
  /// Arms the periodic resync check: every `silence_window`, any VC with no
  /// credit activity for at least that long has its counter re-derived from
  /// the conservation invariant. Self-rescheduling until `horizon`.
  void enable_credit_resync(Duration silence_window, TimePoint horizon);

  // --- occupancy statistics ---
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] Duration busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t credits_lost() const { return credits_lost_; }
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  [[nodiscard]] std::uint64_t resynced_bytes() const { return resynced_bytes_; }
  [[nodiscard]] std::uint64_t ttd_corruptions() const { return ttd_corruptions_; }

  // --- auditor view (fault/auditor.hpp) -----------------------------------
  /// Bytes serialized onto the wire and not yet delivered, per VC.
  [[nodiscard]] std::int64_t in_flight_bytes(VcId vc) const {
    return in_flight_bytes_[vc];
  }
  /// Credit bytes on the reverse wire, not yet visible to the sender.
  [[nodiscard]] std::int64_t credits_in_flight(VcId vc) const {
    return credits_in_flight_[vc];
  }
  /// Bytes queued in the downstream input buffer (0 when no probe is wired:
  /// host downlinks consume instantly).
  [[nodiscard]] std::uint64_t downstream_occupancy(VcId vc) const {
    return occupancy_probe_ ? occupancy_probe_(vc) : 0;
  }
  /// Packets currently on the wire (sent, not yet arrived).
  [[nodiscard]] std::uint64_t packets_in_flight() const {
    return packets_in_flight_;
  }
  /// Test hook: silently adjusts the sender-side credit counter *without*
  /// any accounting — a planted bug (not a modelled fault), used by auditor
  /// positive tests to prove credit-conservation violations are caught.
  void debug_corrupt_credits(VcId vc, std::int64_t delta) {
    credits_[vc] += delta;
  }

  /// The wire-arrival closure send() schedules, as a named capture struct:
  /// a lambda holding a PacketPtr cannot opt into the trivially-relocatable
  /// InlineTask path (lambdas cannot be named for the trait), and this is
  /// the single hottest closure in the datapath — one per packet hop.
  struct ArrivalTask {
    Channel* ch;
    PacketPtr p;
    VcId vc;
    void operator()();
  };

  // --- sharded execution (DESIGN.md §12) --------------------------------
  /// Marks this channel as crossing a shard boundary: the send side lives
  /// on shard `src_shard` (which owns `sim_`), the receive side on
  /// `dst_shard` (which owns `dst_sim`). During parallel windows, packet
  /// arrivals and credit returns travel through the engine's mailboxes and
  /// sender-owned wire accounting is reconciled at barriers; outside
  /// windows (serial instants, setup, teardown) the channel behaves
  /// exactly serially except that arrivals land on the receiver's
  /// calendar. A channel never marked stays byte-for-byte on the serial
  /// code path.
  void set_cross_shard(ShardExecutor* engine, std::uint32_t src_shard,
                       std::uint32_t dst_shard, Simulator* dst_sim);
  [[nodiscard]] bool cross_shard() const { return engine_ != nullptr; }

  /// Barrier reconciliation: applies one deferred arrival's sender-side
  /// accounting (in-flight bytes/packets), recorded by CrossArrivalTask
  /// while the receiver shard was running concurrently.
  void apply_cross_arrival(VcId vc, std::uint32_t bytes);

  /// Cross-shard counterpart of ArrivalTask: fires on the *receiver's*
  /// calendar; sender-owned accounting is deferred to the barrier when a
  /// window is active, applied directly otherwise.
  struct CrossArrivalTask {
    Channel* ch;
    PacketPtr p;
    VcId vc;
    void operator()();
  };
  /// Cross-shard credit flush: fires on the *sender's* calendar carrying
  /// the (possibly coalesced) byte count, since the receiver-side batch
  /// FIFO is not readable from the sender's shard.
  struct CrossFlushTask {
    Channel* ch;
    VcId vc;
    std::uint32_t bytes;
    void operator()();
  };

 private:
  /// Mailbox delivery thunks (coordinator, at the barrier).
  static void deliver_arrival_msg(CrossMsg&& m);
  static void deliver_credit_msg(CrossMsg&& m);
  /// Window-mode credit return: replicates the serial coalescing decision
  /// on the receiver side (fold into the newest same-instant batch posted
  /// this window, else post a new mailbox message + one flush event).
  void cross_return_credits(VcId vc, std::uint32_t bytes);
  /// The calendar that carries this channel's resync timer: the control
  /// calendar for cross-shard channels (the check reads state owned by
  /// both shards, so it must run at a serial instant), the channel's own
  /// otherwise.
  [[nodiscard]] Simulator& timer_sim();
  /// One pending coalesced credit delivery: every return folded into it
  /// shares the same delivery instant. Batches per VC form a FIFO (delivery
  /// instants are non-decreasing: now + fixed latency), consumed from
  /// `credit_head_` by flush_credits — one scheduled flush per batch.
  struct CreditBatch {
    std::int64_t deliver_ps;
    std::uint32_t bytes;
  };
  /// Applies the front batch of `vc` (the flush event's body).
  void flush_credits(VcId vc);

  void resync_check();

  Simulator& sim_;
  Bandwidth bw_;
  Duration latency_;
  std::uint32_t capacity_;
  std::vector<std::int64_t> credits_;
  PacketReceiver* dst_ = nullptr;
  PortId dst_port_ = kInvalidPort;
  Callback<void()> on_credit_;
  /// Per-VC pending credit batches + FIFO consume index. The vector is
  /// cleared (capacity retained) whenever the last batch flushes, so the
  /// steady state allocates nothing.
  std::vector<std::vector<CreditBatch>> pending_credits_;
  std::vector<std::size_t> credit_head_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  Duration busy_time_ = Duration::zero();

  // fault state (inert unless a fault is injected / resync enabled)
  bool up_ = true;
  bool permanent_ = false;
  bool ttd_corrupt_armed_ = false;
  Duration ttd_corrupt_delta_ = Duration::zero();
  Callback<std::uint64_t(VcId)> occupancy_probe_;
  Duration resync_window_ = Duration::zero();  ///< zero = resync disabled
  TimePoint resync_horizon_ = TimePoint::zero();
  std::vector<std::int64_t> in_flight_bytes_;      ///< packets on the wire
  std::vector<std::int64_t> credits_in_flight_;    ///< credits on reverse wire
  std::vector<TimePoint> last_credit_activity_;    ///< per VC
  std::uint64_t packets_in_flight_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t credits_lost_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t resynced_bytes_ = 0;
  std::uint64_t ttd_corruptions_ = 0;

  // sharded-execution wiring (null/empty when the channel is shard-local)
  ShardExecutor* engine_ = nullptr;
  Simulator* dst_sim_ = nullptr;
  const bool* win_ = nullptr;  ///< engine's window-active flag
  std::uint32_t src_shard_ = 0;
  std::uint32_t dst_shard_ = 0;
  /// Receiver-side coalescing tracker, per VC: the window id and outbox
  /// index of the newest credit message posted this window. Stale entries
  /// invalidate via the window id — no per-barrier clearing needed.
  std::vector<std::uint64_t> cross_fold_window_;
  std::vector<std::uint32_t> cross_fold_idx_;
};

/// PacketPtr relocates by memcpy (the moved-from unique_ptr is null and is
/// dropped, not destroyed — see the trait contract in inline_task.hpp).
template <>
struct is_trivially_relocatable<Channel::ArrivalTask> : std::true_type {};
template <>
struct is_trivially_relocatable<Channel::CrossArrivalTask> : std::true_type {};

}  // namespace dqos
