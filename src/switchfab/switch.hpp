/// \file switch.hpp
/// The interconnect switch model (§4.1): **combined input and output
/// buffering** with VOQ at the inputs, a finite-speedup crossbar, credit-
/// based flow control, and one of the four evaluated architectures:
///
///   | Architecture      | queue discipline | crossbar arbiter | deadlines |
///   |-------------------|------------------|------------------|-----------|
///   | Traditional 2 VCs | FIFO             | round-robin      | ignored   |
///   | Ideal             | heap             | EDF              | full sort |
///   | Simple 2 VCs      | FIFO             | EDF              | heads only|
///   | Advanced 2 VCs    | take-over        | EDF              | heads only|
///
/// Packet path through the switch:
///   link -> input buffer (per VC, virtual output queues) -> crossbar
///   (one read per input, one write per output at speedup x link rate)
///   -> output buffer (per VC, one disciplined queue) -> output link.
///
/// The queue discipline applies to *both* sides, exactly as §3.4 describes
/// ("the high priority VC of an input or output buffer"). With plain FIFOs
/// the output buffer freezes transmission order at crossbar-transfer time —
/// that is where order errors delay low-deadline packets; the take-over
/// queue gives them a second chance, and the Ideal heap re-sorts fully.
///
/// All four architectures use the same VC structure (regulated VC0 with
/// absolute priority over best-effort VC1 by default) so the silicon cost
/// is comparable — only the Ideal heap is unimplementable.
///
/// The deadline tag crosses links as TTD and is reconstructed against this
/// switch's (skewed) local clock at header arrival — no behaviour may
/// depend on the global clock.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "switchfab/arbiter.hpp"
#include "switchfab/channel.hpp"
#include "switchfab/input_buffer.hpp"
#include "trace/tracer.hpp"

namespace dqos {

/// The four architectures of §4.1.
enum class SwitchArch : std::uint8_t {
  kTraditional2Vc = 0,
  kIdeal = 1,
  kSimple2Vc = 2,
  kAdvanced2Vc = 3,
};
std::string_view to_string(SwitchArch a);
constexpr std::array<SwitchArch, 4> all_switch_archs() {
  return {SwitchArch::kTraditional2Vc, SwitchArch::kIdeal, SwitchArch::kSimple2Vc,
          SwitchArch::kAdvanced2Vc};
}

[[nodiscard]] QueueKind queue_kind_for(SwitchArch a);
[[nodiscard]] InputArbiterKind input_arbiter_for(SwitchArch a);

struct SwitchParams {
  SwitchArch arch = SwitchArch::kAdvanced2Vc;
  std::uint8_t num_vcs = 2;
  std::uint32_t buffer_bytes_per_vc = 8 * 1024;  ///< 8 KB/VC (§4.1), each side
  /// Crossbar bandwidth = speedup x link bandwidth (CIOQ switches use a
  /// small internal speedup so the fabric is not the bottleneck).
  double crossbar_speedup = 2.0;
  /// Non-empty => Traditional multi-VC weighted arbitration table (A5);
  /// empty => strict VC priority (all paper architectures).
  std::vector<std::uint32_t> vc_weights;
  /// Extra per-decision scheduling latency of the buffer data structure
  /// (ablation A10): a hardware heap needs multiple SRAM accesses per
  /// dequeue (Ioannou & Katevenis report pipelined designs precisely to
  /// hide this). Applied to every link-drain grant when the architecture
  /// uses heap buffers; zero (default) = the paper's idealized heap.
  Duration heap_op_latency = Duration::zero();
};

struct SwitchCounters {
  std::array<std::uint64_t, kNumTrafficClasses> packets_forwarded{};
  std::array<std::uint64_t, kNumTrafficClasses> bytes_forwarded{};
  std::uint64_t credit_stalls = 0;  ///< link-drain rounds blocked on credits
  std::uint64_t link_down_stalls = 0;   ///< drain rounds blocked on a dead link
  std::uint64_t dropped_link_down = 0;  ///< packets shed at/for a failed link
};

class Switch final : public PacketReceiver {
 public:
  Switch(Simulator& sim, NodeId id, std::size_t num_ports, const SwitchParams& params,
         LocalClock clock = LocalClock{});

  /// Wires the outbound channel of `port` (this switch is the sender).
  void attach_output(PortId port, Channel* ch);
  /// Wires the inbound channel of `port` (this switch is the receiver;
  /// used for returning credits upstream).
  void attach_input(PortId port, Channel* ch);

  void receive_packet(PacketPtr p, PortId in_port) override;

  /// Optional packet-event tracing (null = off, zero cost).
  void set_tracer(PacketTracer* tracer) { tracer_ = tracer; }
  /// Observer for packets this switch sheds (failed-link drops).
  void set_drop_callback(std::function<void(TrafficClass)> cb) {
    drop_cb_ = std::move(cb);
  }

  /// Drops everything queued for `port` (output buffers and the input VOQs
  /// feeding it), returning upstream credits for VOQ packets. Called when
  /// the attached link fails permanently and flows are rerouted; queued
  /// packets would otherwise wedge the VOQ forever. Returns packets shed.
  std::size_t flush_output(PortId port);

  /// Fault injection: re-bases this switch's local clock (clock drift).
  /// Deadlines of already-queued packets keep the old domain — exactly the
  /// mis-stamping hazard drift injection is meant to exercise.
  void set_clock_offset(Duration offset) { clock_ = LocalClock(offset); }

  /// Per-port credit/occupancy snapshot for the deadlock watchdog report.
  [[nodiscard]] std::string debug_dump() const;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::size_t num_ports() const { return inputs_.size(); }
  [[nodiscard]] const LocalClock& clock() const { return clock_; }
  [[nodiscard]] const SwitchCounters& counters() const { return counters_; }

  /// Aggregated queue diagnostics (input VOQs + output queues).
  [[nodiscard]] std::uint64_t order_errors() const;
  /// Order errors on one VC only (e.g. the regulated VC).
  [[nodiscard]] std::uint64_t order_errors_vc(VcId vc) const;
  [[nodiscard]] std::uint64_t takeovers() const;
  /// Packets currently buffered inside the switch (both sides).
  [[nodiscard]] std::size_t packets_queued() const;

 private:
  struct Input {
    Channel* channel = nullptr;                        ///< upstream (credits)
    std::vector<std::unique_ptr<InputBuffer>> vc_buf;  ///< one per VC (VOQ)
    TimePoint read_busy_until;                         ///< crossbar read port
  };
  struct Output {
    Channel* channel = nullptr;  ///< downstream link
    std::vector<std::unique_ptr<QueueDiscipline>> vc_q;  ///< output buffers
    TimePoint write_busy_until;  ///< crossbar write port
    TimePoint link_busy_until;   ///< wire
    std::unique_ptr<VcSelectionPolicy> link_vc_policy;
    std::vector<std::unique_ptr<InputArbiter>> xbar_arb;  ///< one per VC
  };

  [[nodiscard]] bool output_q_has_space(const Output& o, VcId vc,
                                        std::uint32_t bytes) const {
    return o.vc_q[vc]->bytes() + bytes <= params_.buffer_bytes_per_vc;
  }

  /// Crossbar scheduling: move one packet from an input VOQ into `out`'s
  /// output buffer, if ports and space allow.
  void try_fill(std::size_t out);
  /// Link scheduling: transmit the best packet from `out`'s output buffers.
  void try_drain(std::size_t out);
  /// An input's crossbar read port freed: outputs it feeds may fill again.
  void on_input_free(std::size_t in);
  /// Crossbar transfer completion: the packet lands in the output buffer.
  void xbar_arrive(PacketPtr p, std::size_t out);

  Simulator& sim_;
  NodeId id_;
  SwitchParams params_;
  LocalClock clock_;
  Bandwidth xbar_bw_;  ///< derived: link bw x speedup (set on first attach)
  std::vector<Input> inputs_;
  std::vector<Output> outputs_;
  SwitchCounters counters_;
  PacketTracer* tracer_ = nullptr;
  std::function<void(TrafficClass)> drop_cb_;
  // Hot-path scratch buffers (single-threaded switch; reused to keep the
  // per-decision paths allocation-free).
  std::vector<ArbCandidate> cands_scratch_;
  std::vector<VcId> vc_order_scratch_;
};

}  // namespace dqos
