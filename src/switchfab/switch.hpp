/// \file switch.hpp
/// The interconnect switch model (§4.1): **combined input and output
/// buffering** with VOQ at the inputs, a finite-speedup crossbar, credit-
/// based flow control, and one of the four evaluated architectures:
///
///   | Architecture      | queue discipline | crossbar arbiter | deadlines |
///   |-------------------|------------------|------------------|-----------|
///   | Traditional 2 VCs | FIFO             | round-robin      | ignored   |
///   | Ideal             | heap             | EDF              | full sort |
///   | Simple 2 VCs      | FIFO             | EDF              | heads only|
///   | Advanced 2 VCs    | take-over        | EDF              | heads only|
///
/// Packet path through the switch:
///   link -> input buffer (per VC, virtual output queues) -> crossbar
///   (one read per input, one write per output at speedup x link rate)
///   -> output buffer (per VC, one disciplined queue) -> output link.
///
/// The queue discipline applies to *both* sides, exactly as §3.4 describes
/// ("the high priority VC of an input or output buffer"). With plain FIFOs
/// the output buffer freezes transmission order at crossbar-transfer time —
/// that is where order errors delay low-deadline packets; the take-over
/// queue gives them a second chance, and the Ideal heap re-sorts fully.
///
/// All four architectures use the same VC structure (regulated VC0 with
/// absolute priority over best-effort VC1 by default) so the silicon cost
/// is comparable — only the Ideal heap is unimplementable.
///
/// The deadline tag crosses links as TTD and is reconstructed against this
/// switch's (skewed) local clock at header arrival — no behaviour may
/// depend on the global clock.
///
/// ## Datapath micro-architecture (DESIGN.md §8)
///
/// The software model mirrors the paper's hardware-cost argument: the
/// datapath is flat arrays, not pointer graphs.
///
///   - All queues (input VOQs and output buffers) are `PacketQueue` values
///     in contiguous arrays — the discipline is a tagged union resolved at
///     construction, so enqueue/dequeue/candidate are direct calls.
///   - `try_fill` arbitration never peeks into queues: a **candidate
///     deadline cache** (`voq_dl_` / `voq_sz_`, laid out `[vc][out][in]`)
///     is maintained incrementally at every VOQ mutation, so one
///     arbitration round is a linear scan of `num_ports` int64s — the
///     software analogue of the paper's "heads suffice" sorting-network
///     argument (§3.2).
///   - The crossbar input arbiter (EDF or round-robin) is inlined into the
///     scan; only the round-robin pointer is state (`rr_last_`).
///   - Per-switch occupancy is an O(1) counter (`queued_packets_`)
///     maintained at the same mutation points, so periodic probe sampling
///     reads a word instead of walking every queue.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "switchfab/arbiter.hpp"
#include "switchfab/channel.hpp"
#include "switchfab/input_buffer.hpp"
#include "trace/tracer.hpp"

namespace dqos {

/// The four architectures of §4.1.
enum class SwitchArch : std::uint8_t {
  kTraditional2Vc = 0,
  kIdeal = 1,
  kSimple2Vc = 2,
  kAdvanced2Vc = 3,
};
std::string_view to_string(SwitchArch a);
constexpr std::array<SwitchArch, 4> all_switch_archs() {
  return {SwitchArch::kTraditional2Vc, SwitchArch::kIdeal, SwitchArch::kSimple2Vc,
          SwitchArch::kAdvanced2Vc};
}

[[nodiscard]] QueueKind queue_kind_for(SwitchArch a);
[[nodiscard]] InputArbiterKind input_arbiter_for(SwitchArch a);

struct SwitchParams {
  SwitchArch arch = SwitchArch::kAdvanced2Vc;
  std::uint8_t num_vcs = 2;
  std::uint32_t buffer_bytes_per_vc = 8 * 1024;  ///< 8 KB/VC (§4.1), each side
  /// Crossbar bandwidth = speedup x link bandwidth (CIOQ switches use a
  /// small internal speedup so the fabric is not the bottleneck).
  double crossbar_speedup = 2.0;
  /// Non-empty => Traditional multi-VC weighted arbitration table (A5);
  /// empty => strict VC priority (all paper architectures).
  std::vector<std::uint32_t> vc_weights;
  /// Extra per-decision scheduling latency of the buffer data structure
  /// (ablation A10): a hardware heap needs multiple SRAM accesses per
  /// dequeue (Ioannou & Katevenis report pipelined designs precisely to
  /// hide this). Applied to every link-drain grant when the architecture
  /// uses heap buffers; zero (default) = the paper's idealized heap.
  Duration heap_op_latency = Duration::zero();
};

struct SwitchCounters {
  std::array<std::uint64_t, kNumTrafficClasses> packets_forwarded{};
  std::array<std::uint64_t, kNumTrafficClasses> bytes_forwarded{};
  std::uint64_t credit_stalls = 0;  ///< link-drain rounds blocked on credits
  std::uint64_t link_down_stalls = 0;   ///< drain rounds blocked on a dead link
  std::uint64_t dropped_link_down = 0;  ///< packets shed at/for a failed link
};

class Switch final : public PacketReceiver {
 public:
  Switch(Simulator& sim, NodeId id, std::size_t num_ports, const SwitchParams& params,
         LocalClock clock = LocalClock{});

  /// Wires the outbound channel of `port` (this switch is the sender).
  void attach_output(PortId port, Channel* ch);
  /// Wires the inbound channel of `port` (this switch is the receiver;
  /// used for returning credits upstream).
  void attach_input(PortId port, Channel* ch);

  void receive_packet(PacketPtr p, PortId in_port) override;

  /// Optional packet-event tracing (null = off, zero cost).
  void set_tracer(PacketTracer* tracer) { tracer_ = tracer; }
  /// Observer for packets this switch sheds (failed-link drops). Raw
  /// Callback (fn-pointer + context); the context must outlive the switch.
  void set_drop_callback(Callback<void(TrafficClass)> cb) { drop_cb_ = cb; }

  /// Drops everything queued for `port` (output buffers and the input VOQs
  /// feeding it), returning upstream credits for VOQ packets. Called when
  /// the attached link fails permanently and flows are rerouted; queued
  /// packets would otherwise wedge the VOQ forever. Returns packets shed.
  std::size_t flush_output(PortId port);

  /// Fault injection: re-bases this switch's local clock (clock drift).
  /// Deadlines of already-queued packets keep the old domain — exactly the
  /// mis-stamping hazard drift injection is meant to exercise.
  void set_clock_offset(Duration offset) { clock_ = LocalClock(offset); }

  /// Per-port credit/occupancy snapshot for the deadlock watchdog report.
  [[nodiscard]] std::string debug_dump() const;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::size_t num_ports() const { return inputs_.size(); }
  [[nodiscard]] const LocalClock& clock() const { return clock_; }
  [[nodiscard]] const SwitchCounters& counters() const { return counters_; }

  /// Aggregated queue diagnostics (input VOQs + output queues).
  [[nodiscard]] std::uint64_t order_errors() const;
  /// Order errors on one VC only (e.g. the regulated VC).
  [[nodiscard]] std::uint64_t order_errors_vc(VcId vc) const;
  [[nodiscard]] std::uint64_t takeovers() const;
  /// Packets currently buffered inside the switch (both sides). O(1): an
  /// incrementally-maintained per-switch counter (probe sampling reads
  /// this every interval; it must not walk the queues).
  [[nodiscard]] std::size_t packets_queued() const { return queued_packets_; }
  /// Packets mid-crossbar (dequeued from a VOQ, not yet landed in an
  /// output buffer) — they live in scheduled transfer events and are not
  /// counted by packets_queued(). The auditor's packet census needs them.
  [[nodiscard]] std::size_t packets_in_transit() const { return xbar_in_transit_; }

 private:
  /// Sentinel in the candidate-deadline cache: VOQ empty.
  static constexpr std::int64_t kNoCandidate =
      std::numeric_limits<std::int64_t>::max();
  static constexpr std::size_t kNoWinner = ~std::size_t{0};

  /// Input/Output carry a back-pointer + port index so channel callbacks
  /// can be wired as raw (fn, ctx) pairs with the struct as context — the
  /// vectors are sized once in the constructor and never reallocate, so
  /// element addresses are stable for the life of the switch.
  struct Input {
    Switch* self = nullptr;      ///< owning switch (callback context)
    PortId port = kInvalidPort;  ///< this input's index
    Channel* channel = nullptr;  ///< upstream (credits)
    TimePoint read_busy_until;   ///< crossbar read port
  };
  struct Output {
    Switch* self = nullptr;      ///< owning switch (callback context)
    PortId port = kInvalidPort;  ///< this output's index
    Channel* channel = nullptr;  ///< downstream link
    TimePoint write_busy_until;  ///< crossbar write port
    TimePoint link_busy_until;   ///< wire
    /// Weighted VC arbitration table (A5) — null for the paper's strict
    /// VC priority, which is inlined in try_drain.
    std::unique_ptr<WeightedVcPolicy> weighted_vc;
  };

  // --- flat datapath storage accessors ---
  [[nodiscard]] InputBuffer& in_buf(std::size_t in, VcId vc) {
    return in_bufs_[in * params_.num_vcs + vc];
  }
  [[nodiscard]] const InputBuffer& in_buf(std::size_t in, VcId vc) const {
    return in_bufs_[in * params_.num_vcs + vc];
  }
  [[nodiscard]] PacketQueue& out_q(std::size_t out, VcId vc) {
    return out_qs_[out * params_.num_vcs + vc];
  }
  [[nodiscard]] const PacketQueue& out_q(std::size_t out, VcId vc) const {
    return out_qs_[out * params_.num_vcs + vc];
  }
  /// Candidate-cache index, laid out so an arbitration round for a given
  /// (vc, out) scans `num_ports` contiguous entries over `in`.
  [[nodiscard]] std::size_t voq_index(VcId vc, std::size_t out,
                                      std::size_t in) const {
    return (static_cast<std::size_t>(vc) * inputs_.size() + out) * inputs_.size() +
           in;
  }
  /// Re-derives the cached candidate deadline/size of one VOQ after a
  /// mutation (the cache invariant: cache == candidate() at all times).
  void refresh_voq(std::size_t in, VcId vc, std::size_t out) {
    const Packet* c = in_buf(in, vc).candidate(out);
    const std::size_t i = voq_index(vc, out, in);
    voq_dl_[i] = c != nullptr ? c->local_deadline.ps() : kNoCandidate;
    voq_sz_[i] = c != nullptr ? c->size() : 0;
  }

  /// Crossbar scheduling: move one packet from an input VOQ into `out`'s
  /// output buffer, if ports and space allow.
  void try_fill(std::size_t out);
  /// Link scheduling: transmit the best packet from `out`'s output buffers.
  void try_drain(std::size_t out);
  /// One drain attempt on a single VC; true if a packet left on the link.
  bool drain_vc(std::size_t out, VcId vc, TimePoint now);
  /// An input's crossbar read port freed: outputs it feeds may fill again.
  void on_input_free(std::size_t in);
  /// Crossbar transfer completion: the packet lands in the output buffer.
  void xbar_arrive(PacketPtr p, std::size_t out);

 public:
  /// try_fill's transfer-completion closure as a named capture struct so it
  /// can opt into the trivially-relocatable InlineTask path (one per
  /// crossbar grant; a PacketPtr lambda capture cannot be named for the
  /// trait). Public only for the trait specialization below.
  struct XbarTask {
    Switch* sw;
    PacketPtr p;
    std::size_t out;
    void operator()() { sw->xbar_arrive(std::move(p), out); }
  };

 private:
  Simulator& sim_;
  NodeId id_;
  SwitchParams params_;
  LocalClock clock_;
  Bandwidth xbar_bw_;  ///< derived: link bw x speedup (set on first attach)
  bool edf_arbiter_ = true;   ///< resolved once from params_.arch
  bool heap_queues_ = false;  ///< arch uses heap buffers (A10 latency)
  std::vector<Input> inputs_;
  std::vector<Output> outputs_;
  std::vector<InputBuffer> in_bufs_;   ///< [in * num_vcs + vc]
  std::vector<PacketQueue> out_qs_;    ///< [out * num_vcs + vc]
  /// Candidate deadline / size per VOQ, indexed by voq_index() — what the
  /// crossbar arbiter scans instead of peeking through the queues.
  std::vector<std::int64_t> voq_dl_;
  std::vector<std::uint32_t> voq_sz_;
  /// Round-robin grant pointer per (out, vc) (Traditional arch only).
  std::vector<std::size_t> rr_last_;
  std::size_t queued_packets_ = 0;
  std::size_t xbar_in_transit_ = 0;
  SwitchCounters counters_;
  PacketTracer* tracer_ = nullptr;
  Callback<void(TrafficClass)> drop_cb_;
  /// Scratch for the weighted VC order (A5 path only; strict priority never
  /// materializes an order).
  std::vector<VcId> vc_order_scratch_;
};

/// PacketPtr relocates by memcpy (the moved-from unique_ptr is null and is
/// dropped, not destroyed — see the trait contract in inline_task.hpp).
template <>
struct is_trivially_relocatable<Switch::XbarTask> : std::true_type {};

}  // namespace dqos
