#include "switchfab/channel.hpp"

#include "util/contracts.hpp"

namespace dqos {

Channel::Channel(Simulator& sim, Bandwidth bw, Duration latency, std::uint8_t num_vcs,
                 std::uint32_t credits_per_vc)
    : sim_(sim), bw_(bw), latency_(latency) {
  DQOS_EXPECTS(bw.valid());
  DQOS_EXPECTS(latency >= Duration::zero());
  DQOS_EXPECTS(num_vcs >= 1);
  DQOS_EXPECTS(credits_per_vc > 0);
  credits_.assign(num_vcs, static_cast<std::int64_t>(credits_per_vc));
}

void Channel::connect_to(PacketReceiver* dst, PortId dst_port) {
  DQOS_EXPECTS(dst != nullptr && dst_ == nullptr);
  dst_ = dst;
  dst_port_ = dst_port;
}

void Channel::consume_credits(VcId vc, std::uint32_t bytes) {
  DQOS_EXPECTS(vc < credits_.size());
  DQOS_EXPECTS(has_credits(vc, bytes));
  credits_[vc] -= bytes;
}

void Channel::return_credits(VcId vc, std::uint32_t bytes) {
  DQOS_EXPECTS(vc < credits_.size());
  sim_.schedule_after(latency_, [this, vc, bytes] {
    credits_[vc] += bytes;
    if (on_credit_) on_credit_();
  });
}

void Channel::send(PacketPtr p) {
  DQOS_EXPECTS(dst_ != nullptr);
  DQOS_EXPECTS(p != nullptr);
  const Duration ser = serialization_time(p->size());
  ++packets_sent_;
  bytes_sent_ += p->size();
  busy_time_ += ser;
  // shared_ptr shim: std::function requires copyable closures, PacketPtr is
  // move-only.
  auto shared = std::make_shared<PacketPtr>(std::move(p));
  sim_.schedule_after(ser + latency_, [this, shared]() mutable {
    dst_->receive_packet(std::move(*shared), dst_port_);
  });
}

}  // namespace dqos
