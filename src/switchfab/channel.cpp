#include "switchfab/channel.hpp"

#include <algorithm>

#include "sim/shard_executor.hpp"
#include "util/contracts.hpp"

namespace dqos {

Channel::Channel(Simulator& sim, Bandwidth bw, Duration latency, std::uint8_t num_vcs,
                 std::uint32_t credits_per_vc)
    : sim_(sim), bw_(bw), latency_(latency), capacity_(credits_per_vc) {
  DQOS_EXPECTS(bw.valid());
  DQOS_EXPECTS(latency >= Duration::zero());
  DQOS_EXPECTS(num_vcs >= 1);
  DQOS_EXPECTS(credits_per_vc > 0);
  credits_.assign(num_vcs, static_cast<std::int64_t>(credits_per_vc));
  in_flight_bytes_.assign(num_vcs, 0);
  credits_in_flight_.assign(num_vcs, 0);
  last_credit_activity_.assign(num_vcs, TimePoint::zero());
  pending_credits_.assign(num_vcs, {});
  credit_head_.assign(num_vcs, 0);
}

void Channel::connect_to(PacketReceiver* dst, PortId dst_port) {
  DQOS_EXPECTS(dst != nullptr && dst_ == nullptr);
  dst_ = dst;
  dst_port_ = dst_port;
}

void Channel::consume_credits(VcId vc, std::uint32_t bytes) {
  DQOS_EXPECTS(vc < credits_.size());
  DQOS_EXPECTS(has_credits(vc, bytes));
  credits_[vc] -= bytes;
  last_credit_activity_[vc] = sim_.now();
}

void Channel::return_credits(VcId vc, std::uint32_t bytes) {
  DQOS_EXPECTS(vc < credits_.size());
  if (engine_ != nullptr && *win_) {
    cross_return_credits(vc, bytes);
    return;
  }
  credits_in_flight_[vc] += static_cast<std::int64_t>(bytes);
  std::vector<CreditBatch>& q = pending_credits_[vc];
  const std::int64_t deliver_ps = (sim_.now() + latency_).ps();
  // Coalesce (DESIGN.md §11): a return landing at the same delivery
  // instant as the newest pending batch folds into it — no second event.
  // Delivery instants are non-decreasing (now + fixed latency), so the
  // batch FIFO stays sorted and each flush consumes exactly the front.
  if (q.size() > credit_head_[vc] && q.back().deliver_ps == deliver_ps) {
    q.back().bytes += bytes;
    return;
  }
  // dqos-lint: allow(hot-path-transitive) — amortized batch-FIFO growth
  q.push_back(CreditBatch{deliver_ps, bytes});
  sim_.schedule_after(latency_, [this, vc] { flush_credits(vc); });
}

// dqos-lint: hot
void Channel::flush_credits(VcId vc) {
  std::vector<CreditBatch>& q = pending_credits_[vc];
  DQOS_ASSERT(credit_head_[vc] < q.size());
  const CreditBatch b = q[credit_head_[vc]];
  DQOS_ASSERT(b.deliver_ps == sim_.now().ps());
  if (++credit_head_[vc] == q.size()) {
    q.clear();  // capacity retained: allocation-free steady state
    credit_head_[vc] = 0;
  }
  credits_in_flight_[vc] -= static_cast<std::int64_t>(b.bytes);
  credits_[vc] += b.bytes;
  last_credit_activity_[vc] = sim_.now();
  if (on_credit_) on_credit_();
}

void Channel::send(PacketPtr p) {
  DQOS_EXPECTS(dst_ != nullptr);
  DQOS_EXPECTS(p != nullptr);
  DQOS_EXPECTS(p->hdr.vc < credits_.size());
  if (!up_) {
    // The wire is dead: the packet evaporates. The sender's consumed
    // credits stay consumed — the credit-resync protocol (or a reroute)
    // makes the loss good later.
    ++dropped_;
    retire_packet(std::move(p));
    return;
  }
  if (ttd_corrupt_armed_) {
    p->hdr.ttd += ttd_corrupt_delta_;
    ttd_corrupt_armed_ = false;
    ++ttd_corruptions_;
  }
  const VcId vc = p->hdr.vc;
  const Duration ser = serialization_time(p->size());
  ++packets_sent_;
  bytes_sent_ += p->size();
  busy_time_ += ser;
  in_flight_bytes_[vc] += static_cast<std::int64_t>(p->size());
  ++packets_in_flight_;
  if (engine_ == nullptr) {
    sim_.schedule_after(ser + latency_, ArrivalTask{this, std::move(p), vc});
    return;
  }
  const TimePoint at = sim_.now() + ser + latency_;
  if (*win_) {
    // dqos-lint: shard
    // Window mode: the arrival crosses a shard boundary — post it to the
    // mailbox and record the kid so the merge assigns it the serial
    // sequence number the schedule call would have consumed.
    ShardWindowLog& slog = engine_->log(src_shard_);
    std::vector<CrossMsg>& box = slog.outboxes[dst_shard_];
    slog.kids.push_back(ShardWindowLog::mailbox_ref(dst_shard_, box.size()));
    CrossMsg m;
    m.at_ps = at.ps();
    m.vc = vc;
    m.ctx = this;
    m.p = std::move(p);
    m.deliver = &Channel::deliver_arrival_msg;
    box.push_back(std::move(m));
    return;
  }
  // Serial stretch (setup or an instant): schedule directly on the
  // receiver's calendar with an eagerly-assigned global sequence number.
  dst_sim_->schedule_at(at, CrossArrivalTask{this, std::move(p), vc});
}

void Channel::ArrivalTask::operator()() {
  ch->in_flight_bytes_[vc] -= static_cast<std::int64_t>(p->size());
  --ch->packets_in_flight_;
  ch->dst_->receive_packet(std::move(p), ch->dst_port_);
}

void Channel::set_cross_shard(ShardExecutor* engine, std::uint32_t src_shard,
                              std::uint32_t dst_shard, Simulator* dst_sim) {
  DQOS_EXPECTS(engine != nullptr && dst_sim != nullptr);
  DQOS_EXPECTS(src_shard != dst_shard);
  engine_ = engine;
  dst_sim_ = dst_sim;
  win_ = engine->window_active_flag();
  src_shard_ = src_shard;
  dst_shard_ = dst_shard;
  cross_fold_window_.assign(num_vcs(), ~std::uint64_t{0});
  cross_fold_idx_.assign(num_vcs(), 0);
}

void Channel::apply_cross_arrival(VcId vc, std::uint32_t bytes) {
  in_flight_bytes_[vc] -= static_cast<std::int64_t>(bytes);
  --packets_in_flight_;
}

void Channel::CrossArrivalTask::operator()() {
  const auto size = static_cast<std::uint32_t>(p->size());
  if (*ch->win_) {
    // dqos-lint: shard
    // Running on the receiver's worker thread: the in-flight counters are
    // sender-owned, so park the decrement for the barrier.
    ch->engine_->arrival_notes(ch->dst_shard_)
        .push_back(CrossArrivalNote{ch, vc, size});
  } else {
    ch->in_flight_bytes_[vc] -= static_cast<std::int64_t>(size);
    --ch->packets_in_flight_;
  }
  ch->dst_->receive_packet(std::move(p), ch->dst_port_);
}

void Channel::CrossFlushTask::operator()() {
  ch->credits_in_flight_[vc] -= static_cast<std::int64_t>(bytes);
  ch->credits_[vc] += bytes;
  ch->last_credit_activity_[vc] = ch->sim_.now();
  if (ch->on_credit_) ch->on_credit_();
}

void Channel::deliver_arrival_msg(CrossMsg&& m) {
  auto* ch = static_cast<Channel*>(m.ctx);
  const VcId vc = m.vc;
  ch->dst_sim_->schedule_keyed(TimePoint::from_ps(m.at_ps), m.seq,
                               CrossArrivalTask{ch, std::move(m.p), vc});
}

void Channel::deliver_credit_msg(CrossMsg&& m) {
  auto* ch = static_cast<Channel*>(m.ctx);
  // The serial model debits credits_in_flight_ at return time; deferring
  // the debit to the barrier is invisible because the counter is only read
  // at serial instants (resync, audits), which all happen-after this.
  ch->credits_in_flight_[m.vc] += static_cast<std::int64_t>(m.bytes);
  ch->sim_.schedule_keyed(TimePoint::from_ps(m.at_ps), m.seq,
                          CrossFlushTask{ch, m.vc, m.bytes});
}

void Channel::cross_return_credits(VcId vc, std::uint32_t bytes) {
  // dqos-lint: shard
  // Receiver-side replication of the serial coalescing decision: delivery
  // instants for one VC are non-decreasing within a window (now + fixed
  // latency), and same-instant events always share a window, so folding
  // into the newest batch posted this window reproduces the serial
  // "fold into q.back()" exactly — including consuming no sequence number.
  ShardWindowLog& rlog = engine_->log(dst_shard_);
  std::vector<CrossMsg>& box = rlog.outboxes[src_shard_];
  const std::int64_t deliver_ps = (dst_sim_->now() + latency_).ps();
  if (cross_fold_window_[vc] == engine_->window_id() &&
      box[cross_fold_idx_[vc]].at_ps == deliver_ps) {
    box[cross_fold_idx_[vc]].bytes += bytes;
    return;
  }
  // dqos-lint: allow(hot-path-transitive) — replay-log growth is amortized
  rlog.kids.push_back(ShardWindowLog::mailbox_ref(src_shard_, box.size()));
  cross_fold_window_[vc] = engine_->window_id();
  cross_fold_idx_[vc] = static_cast<std::uint32_t>(box.size());
  CrossMsg m;
  m.at_ps = deliver_ps;
  m.bytes = bytes;
  m.vc = vc;
  m.ctx = this;
  m.deliver = &Channel::deliver_credit_msg;
  // dqos-lint: allow(hot-path-transitive) — outbox growth is amortized
  box.push_back(std::move(m));
}

Simulator& Channel::timer_sim() {
  return engine_ != nullptr ? engine_->control() : sim_;
}

void Channel::fail(bool permanent) {
  up_ = false;
  permanent_ = permanent_ || permanent;
}

void Channel::repair() {
  DQOS_EXPECTS(!permanent_);  // permanent failures are rerouted, not repaired
  if (up_) return;
  up_ = true;
  // Stalled senders re-arbitrate as if credits had just arrived.
  if (on_credit_) on_credit_();
}

std::uint32_t Channel::lose_credits(VcId vc, std::uint32_t bytes) {
  DQOS_EXPECTS(vc < credits_.size());
  const auto lost = static_cast<std::uint32_t>(std::min<std::int64_t>(
      static_cast<std::int64_t>(bytes), std::max<std::int64_t>(credits_[vc], 0)));
  credits_[vc] -= lost;
  credits_lost_ += lost;
  return lost;
}

void Channel::corrupt_next_ttd(Duration delta) {
  ttd_corrupt_armed_ = true;
  ttd_corrupt_delta_ = delta;
}

void Channel::enable_credit_resync(Duration silence_window, TimePoint horizon) {
  DQOS_EXPECTS(silence_window > Duration::zero());
  resync_window_ = silence_window;
  resync_horizon_ = horizon;
  if (timer_sim().now() + silence_window <= horizon) {
    timer_sim().schedule_after(silence_window, [this] { resync_check(); });
  }
}

void Channel::resync_check() {
  const TimePoint now = timer_sim().now();
  for (VcId vc = 0; up_ && vc < num_vcs(); ++vc) {
    // Quiet VC only: any credit activity within the window means the normal
    // protocol is alive and the counter is trusted.
    if (last_credit_activity_[vc] + resync_window_ > now) continue;
    const std::int64_t occupancy =
        occupancy_probe_ ? static_cast<std::int64_t>(occupancy_probe_(vc)) : 0;
    const std::int64_t expected = static_cast<std::int64_t>(capacity_) -
                                  occupancy - in_flight_bytes_[vc] -
                                  credits_in_flight_[vc];
    if (expected > credits_[vc]) {
      resynced_bytes_ += static_cast<std::uint64_t>(expected - credits_[vc]);
      credits_[vc] = expected;
      ++resyncs_;
      last_credit_activity_[vc] = now;
      if (on_credit_) on_credit_();
    }
  }
  if (now + resync_window_ <= resync_horizon_) {
    timer_sim().schedule_after(resync_window_, [this] { resync_check(); });
  }
}

}  // namespace dqos
