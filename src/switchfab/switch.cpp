#include "switchfab/switch.hpp"

#include <sstream>

#include "util/contracts.hpp"
#include "util/log.hpp"
#include "util/simd.hpp"

namespace dqos {

std::string_view to_string(SwitchArch a) {
  switch (a) {
    case SwitchArch::kTraditional2Vc: return "Traditional 2 VCs";
    case SwitchArch::kIdeal: return "Ideal";
    case SwitchArch::kSimple2Vc: return "Simple 2 VCs";
    case SwitchArch::kAdvanced2Vc: return "Advanced 2 VCs";
  }
  return "?";
}

QueueKind queue_kind_for(SwitchArch a) {
  switch (a) {
    case SwitchArch::kTraditional2Vc: return QueueKind::kFifo;
    case SwitchArch::kIdeal: return QueueKind::kHeap;
    case SwitchArch::kSimple2Vc: return QueueKind::kFifo;
    case SwitchArch::kAdvanced2Vc: return QueueKind::kTakeover;
  }
  DQOS_ASSERT(false);
  return QueueKind::kFifo;
}

InputArbiterKind input_arbiter_for(SwitchArch a) {
  return a == SwitchArch::kTraditional2Vc ? InputArbiterKind::kRoundRobin
                                          : InputArbiterKind::kEdf;
}

Switch::Switch(Simulator& sim, NodeId id, std::size_t num_ports,
               const SwitchParams& params, LocalClock clock)
    : sim_(sim), id_(id), params_(params), clock_(clock) {
  DQOS_EXPECTS(num_ports >= 2);
  DQOS_EXPECTS(params.num_vcs >= 1);
  DQOS_EXPECTS(params.crossbar_speedup >= 1.0);
  DQOS_EXPECTS(params.vc_weights.empty() ||
               params.vc_weights.size() == params.num_vcs);
  const QueueKind kind = queue_kind_for(params.arch);
  edf_arbiter_ = input_arbiter_for(params.arch) == InputArbiterKind::kEdf;
  heap_queues_ = kind == QueueKind::kHeap;
  inputs_.resize(num_ports);
  outputs_.resize(num_ports);
  for (std::size_t i = 0; i < num_ports; ++i) {
    inputs_[i].self = this;
    inputs_[i].port = static_cast<PortId>(i);
    outputs_[i].self = this;
    outputs_[i].port = static_cast<PortId>(i);
  }
  const std::size_t nvq = num_ports * params.num_vcs;
  in_bufs_.reserve(nvq);
  out_qs_.reserve(nvq);
  for (std::size_t i = 0; i < num_ports; ++i) {
    for (std::uint8_t vc = 0; vc < params.num_vcs; ++vc) {
      in_bufs_.emplace_back(kind, params.buffer_bytes_per_vc, num_ports);
      out_qs_.emplace_back(kind);
    }
  }
  if (!params.vc_weights.empty()) {
    for (auto& out : outputs_) {
      out.weighted_vc = std::make_unique<WeightedVcPolicy>(params.vc_weights);
    }
  }
  voq_dl_.assign(params.num_vcs * num_ports * num_ports, kNoCandidate);
  voq_sz_.assign(params.num_vcs * num_ports * num_ports, 0);
  rr_last_.assign(nvq, kNoWinner);  // first round starts at input 0
}

void Switch::attach_output(PortId port, Channel* ch) {
  DQOS_EXPECTS(port < outputs_.size() && ch != nullptr);
  DQOS_EXPECTS(outputs_[port].channel == nullptr);
  outputs_[port].channel = ch;
  ch->set_on_credit({[](void* ctx) {
                       auto* out = static_cast<Output*>(ctx);
                       out->self->try_drain(out->port);
                     },
                     &outputs_[port]});
  xbar_bw_ = Bandwidth::from_ps_per_byte(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             static_cast<double>(ch->bandwidth().ps_per_byte()) /
             params_.crossbar_speedup)));
}

void Switch::attach_input(PortId port, Channel* ch) {
  DQOS_EXPECTS(port < inputs_.size() && ch != nullptr);
  DQOS_EXPECTS(inputs_[port].channel == nullptr);
  inputs_[port].channel = ch;
  // Credit-resync oracle: the upstream sender may re-derive its counter
  // from this buffer's occupancy after a credit loss.
  ch->set_occupancy_probe({[](void* ctx, VcId vc) -> std::uint64_t {
                             auto* in = static_cast<Input*>(ctx);
                             return in->self->in_buf(in->port, vc).used_bytes();
                           },
                           &inputs_[port]});
}

void Switch::receive_packet(PacketPtr p, PortId in_port) {
  DQOS_EXPECTS(p != nullptr && in_port < inputs_.size());
  DQOS_EXPECTS(p->hdr.vc < params_.num_vcs);
  // Reconstruct the deadline in this switch's clock domain (§3.3). The
  // switch never recomputes the deadline itself (§3.1) — only re-bases it.
  // Reconstruction happens when the *header* arrives (cut-through hardware
  // reads the tag before the payload lands): the packet's full arrival
  // event fires at tail time, so subtract the serialization time. Anchoring
  // at the tail would shift each deadline by its own length/bandwidth and
  // could invert deadline order *within a flow*, breaking the appendix's
  // hypothesis (1).
  DQOS_ASSERT(inputs_[in_port].channel != nullptr);
  const Duration ser = inputs_[in_port].channel->serialization_time(p->size());
  p->local_deadline = clock_.decode_ttd(p->hdr.ttd, sim_.now() - ser);
  if (tracer_) tracer_->record(sim_.now(), TraceEvent::kHopArrival, *p, id_);
  // Source routing: consume the next hop from the header.
  const PortId out = p->hdr.route.next_hop();
  DQOS_EXPECTS(out < outputs_.size());
  const VcId vc = p->hdr.vc;
  // Graceful shed: a packet routed at a permanently-failed link would wedge
  // its VOQ forever (the flow has been rerouted or shed by admission).
  // Drop it here and free the upstream buffer claim immediately.
  if (outputs_[out].channel != nullptr && outputs_[out].channel->failed_permanently()) {
    ++counters_.dropped_link_down;
    if (drop_cb_) drop_cb_(p->hdr.tclass);
    if (tracer_) tracer_->record(sim_.now(), TraceEvent::kDropped, *p, id_);
    if (inputs_[in_port].channel != nullptr) {
      inputs_[in_port].channel->return_credits(vc, p->size());
    }
    retire_packet(std::move(p));
    return;
  }
  in_buf(in_port, vc).enqueue(std::move(p), out);
  ++queued_packets_;
  refresh_voq(in_port, vc, out);
  try_fill(out);
}

std::size_t Switch::flush_output(PortId port) {
  DQOS_EXPECTS(port < outputs_.size());
  std::size_t shed = 0;
  const auto drop = [&](const PacketPtr& p) {
    ++shed;
    DQOS_ASSERT(queued_packets_ > 0);
    --queued_packets_;
    if (drop_cb_) drop_cb_(p->hdr.tclass);
    if (tracer_) tracer_->record(sim_.now(), TraceEvent::kDropped, *p, id_);
  };
  for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
    PacketQueue& q = out_q(port, vc);
    while (q.candidate() != nullptr) {
      PacketPtr p = q.dequeue();
      drop(p);
      retire_packet(std::move(p));
    }
  }
  for (std::size_t in = 0; in < inputs_.size(); ++in) {
    for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
      InputBuffer& buf = in_buf(in, vc);
      while (buf.candidate(port) != nullptr) {
        PacketPtr p = buf.dequeue(port);
        if (inputs_[in].channel != nullptr) {
          inputs_[in].channel->return_credits(vc, p->size());
        }
        drop(p);
        retire_packet(std::move(p));
      }
      refresh_voq(in, vc, port);
    }
  }
  counters_.dropped_link_down += shed;
  return shed;
}

// dqos-lint: hot
void Switch::try_fill(std::size_t out) {
  Output& o = outputs_[out];
  const TimePoint now = sim_.now();
  if (o.write_busy_until > now) return;  // retried when the port frees

  const std::size_t num_ports = inputs_.size();
  // Crossbar fill uses strict VC priority: the regulated VC claims fabric
  // bandwidth first (§3.2 "absolute priority"); per-VC output queues keep
  // lower VCs from being starved of *space*.
  for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
    // Occupancy may transiently exceed the cap: a grant issued at the exact
    // completion instant of an in-flight transfer does not see its bytes
    // yet (same race the virtual-dispatch datapath had), so clamp at zero.
    const std::uint64_t used = out_q(out, vc).bytes();
    const std::uint64_t space_left =
        used < params_.buffer_bytes_per_vc ? params_.buffer_bytes_per_vc - used
                                           : 0;
    // One arbitration round = one linear scan of the candidate cache row
    // for this (vc, out): deadlines and sizes, no queue pointers touched.
    const std::int64_t* dl = voq_dl_.data() + voq_index(vc, out, 0);
    const std::uint32_t* sz = voq_sz_.data() + voq_index(vc, out, 0);
    std::size_t win = kNoWinner;
    if (edf_arbiter_) {
      // EDF fast path: a pure horizontal argmin over the contiguous row —
      // no per-element eligibility tests. The row-wide minimum *is* the
      // arbitration winner whenever it is itself eligible: argmin breaks
      // ties toward the lowest index, exactly the guarded scan's rule, and
      // any eligible input the scan would prefer would have to carry a
      // smaller deadline than the row minimum. A minimum of kNoCandidate
      // means the whole row is empty. Only a blocked minimum (read port
      // busy / does not fit) falls back to the guarded scan.
      const std::size_t cand = simd::argmin_i64(dl, num_ports);
      if (dl[cand] == kNoCandidate) continue;  // row empty: next VC
      if (inputs_[cand].read_busy_until <= now && sz[cand] <= space_left) {
        win = cand;
      } else {
        // Congested slow path: minimum deadline among *eligible* inputs;
        // ties go to the lowest input (strict < over an ascending scan).
        std::int64_t best = kNoCandidate;
        for (std::size_t in = 0; in < num_ports; ++in) {
          if (dl[in] == kNoCandidate) continue;
          if (inputs_[in].read_busy_until > now) continue;
          if (sz[in] > space_left) continue;
          if (dl[in] < best) {
            best = dl[in];
            win = in;
          }
        }
      }
    } else {
      // Round-robin: first eligible input after the last grant, wrapping.
      const std::size_t last = rr_last_[out * params_.num_vcs + vc];
      std::size_t first = kNoWinner;
      for (std::size_t in = 0; in < num_ports; ++in) {
        if (dl[in] == kNoCandidate) continue;
        if (inputs_[in].read_busy_until > now) continue;
        if (sz[in] > space_left) continue;
        if (first == kNoWinner) first = in;
        if (in > last) {
          win = in;
          break;
        }
      }
      if (win == kNoWinner) win = first;
    }
    if (win == kNoWinner) continue;

    Input& i = inputs_[win];
    PacketPtr p = in_buf(win, vc).dequeue(out);
    DQOS_ASSERT(queued_packets_ > 0);
    --queued_packets_;  // in flight across the crossbar until xbar_arrive
    ++xbar_in_transit_;
    refresh_voq(win, vc, out);
    if (!edf_arbiter_) rr_last_[out * params_.num_vcs + vc] = win;

    // Freed input-buffer space: return credits upstream.
    DQOS_ASSERT(i.channel != nullptr);
    i.channel->return_credits(vc, p->size());

    const Duration xfer = xbar_bw_.transfer_time(p->size());
    o.write_busy_until = i.read_busy_until = now + xfer;
    // The packet is in flight across the crossbar; it lands in the output
    // buffer after the transfer.
    sim_.schedule_after(xfer, XbarTask{this, std::move(p), out});
    sim_.schedule_after(xfer, [this, out] { try_fill(out); });
    sim_.schedule_after(xfer, [this, in = win] { on_input_free(in); });
    return;
  }
}

void Switch::xbar_arrive(PacketPtr p, std::size_t out) {
  const VcId vc = p->hdr.vc;
  if (tracer_) tracer_->record(sim_.now(), TraceEvent::kXbarTransfer, *p, id_);
  DQOS_ASSERT(xbar_in_transit_ > 0);
  --xbar_in_transit_;
  out_q(out, vc).enqueue(std::move(p));
  ++queued_packets_;
  try_drain(out);
}

bool Switch::drain_vc(std::size_t out, VcId vc, TimePoint now) {
  Output& o = outputs_[out];
  PacketQueue& q = out_q(out, vc);
  const Packet* head = q.candidate();
  if (head == nullptr) return false;
  // Only the selected (minimum-deadline) packet is checked for credits
  // (appendix flow-control rule); if it does not fit, this VC stalls and
  // a lower-priority VC may use the link instead.
  if (!o.channel->has_credits(vc, head->size())) {
    ++counters_.credit_stalls;
    return false;
  }
  PacketPtr p = q.dequeue();
  DQOS_ASSERT(queued_packets_ > 0);
  --queued_packets_;
  if (o.weighted_vc) o.weighted_vc->granted(vc, p->size());

  const auto cls = static_cast<std::size_t>(p->hdr.tclass);
  ++counters_.packets_forwarded[cls];
  counters_.bytes_forwarded[cls] += p->size();

  // Re-encode the deadline as TTD for the wire (§3.3).
  p->hdr.ttd = clock_.encode_ttd(p->local_deadline, now);
  if (tracer_) tracer_->record(now, TraceEvent::kLinkDepart, *p, id_);

  const Duration ser = o.channel->serialization_time(p->size());
  o.channel->consume_credits(vc, p->size());
  o.channel->send(std::move(p));
  // A heap buffer pays its access latency on every scheduling decision;
  // the link sits idle for that long after each packet (A10).
  const Duration op = heap_queues_ ? params_.heap_op_latency : Duration::zero();
  o.link_busy_until = now + ser + op;
  sim_.schedule_after(ser + op, [this, out] { try_drain(out); });
  // Output-buffer space freed: the crossbar may refill.
  try_fill(out);
  return true;
}

void Switch::try_drain(std::size_t out) {
  Output& o = outputs_[out];
  DQOS_ASSERT(o.channel != nullptr);
  const TimePoint now = sim_.now();
  if (o.link_busy_until > now) return;
  if (!o.channel->is_up()) {
    // Transient outage: hold the packets; repair() re-kicks this drain via
    // the channel's on_credit callback.
    for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
      if (!out_q(out, vc).empty()) {
        ++counters_.link_down_stalls;
        break;
      }
    }
    return;
  }

  if (o.weighted_vc == nullptr) {
    // Strict VC priority (all paper architectures): VC0 first, no order
    // materialization.
    for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
      if (drain_vc(out, vc, now)) return;
    }
    return;
  }
  o.weighted_vc->order(vc_order_scratch_);
  for (const VcId vc : vc_order_scratch_) {
    if (drain_vc(out, vc, now)) return;
  }
}

void Switch::on_input_free(std::size_t in) {
  // Any output this input holds traffic for may now be able to fill. The
  // candidate cache answers "holds traffic" without touching the queues.
  const std::size_t num_ports = inputs_.size();
  for (std::size_t out = 0; out < num_ports; ++out) {
    for (std::uint8_t vc = 0; vc < params_.num_vcs; ++vc) {
      if (voq_dl_[voq_index(vc, out, in)] != kNoCandidate) {
        try_fill(out);
        break;
      }
    }
  }
}

std::uint64_t Switch::order_errors() const {
  std::uint64_t sum = 0;
  for (const auto& buf : in_bufs_) sum += buf.order_errors();
  for (const auto& q : out_qs_) sum += q.order_errors();
  return sum;
}

std::uint64_t Switch::order_errors_vc(VcId vc) const {
  DQOS_EXPECTS(vc < params_.num_vcs);
  std::uint64_t sum = 0;
  for (std::size_t in = 0; in < inputs_.size(); ++in) {
    sum += in_buf(in, vc).order_errors();
  }
  for (std::size_t out = 0; out < outputs_.size(); ++out) {
    sum += out_q(out, vc).order_errors();
  }
  return sum;
}

std::uint64_t Switch::takeovers() const {
  std::uint64_t sum = 0;
  for (const auto& buf : in_bufs_) sum += buf.takeovers();
  for (const auto& q : out_qs_) sum += q.takeovers();
  return sum;
}

std::string Switch::debug_dump() const {
  std::ostringstream out;
  out << "switch " << id_ << ": queued=" << packets_queued()
      << " credit_stalls=" << counters_.credit_stalls
      << " link_down_stalls=" << counters_.link_down_stalls
      << " dropped=" << counters_.dropped_link_down << "\n";
  // Walk the queues and cross-check the O(1) occupancy counter — the dump
  // runs off the hot path (watchdog reports), so the audit is free.
  std::size_t walked = 0;
  for (const auto& buf : in_bufs_) walked += buf.total_packets();
  for (const auto& q : out_qs_) walked += q.packets();
  if (walked != queued_packets_) {
    out << "  WARNING: occupancy counter " << queued_packets_
        << " != walked total " << walked << "\n";
  }
  for (std::size_t port = 0; port < outputs_.size(); ++port) {
    const Output& o = outputs_[port];
    if (o.channel == nullptr) continue;
    std::size_t out_pkts = 0;
    for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
      out_pkts += out_q(port, vc).packets();
    }
    std::size_t voq_pkts = 0;
    for (std::size_t in = 0; in < inputs_.size(); ++in) {
      for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
        voq_pkts += in_buf(in, vc).packets(port);
      }
    }
    if (out_pkts == 0 && voq_pkts == 0 && o.channel->is_up()) continue;
    out << "  out " << port << ": link="
        << (o.channel->is_up() ? "up"
                               : (o.channel->failed_permanently() ? "down(permanent)"
                                                                  : "down"))
        << " outq=" << out_pkts << " voq=" << voq_pkts << " credits=[";
    for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
      out << (vc ? "," : "") << o.channel->credits(vc);
    }
    out << "]\n";
  }
  for (std::size_t port = 0; port < inputs_.size(); ++port) {
    std::uint64_t used = 0;
    for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
      used += in_buf(port, vc).used_bytes();
    }
    if (used == 0) continue;
    out << "  in " << port << ": used_bytes=[";
    for (VcId vc = 0; vc < params_.num_vcs; ++vc) {
      out << (vc ? "," : "") << in_buf(port, vc).used_bytes();
    }
    out << "]\n";
  }
  return out.str();
}

}  // namespace dqos
