/// \file types.hpp
/// Shared protocol-level vocabulary: node/port/VC identifiers and the four
/// traffic classes of the paper's workload (Table 1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dqos {

/// Network node (host or switch) identifier. The topology module assigns a
/// contiguous id space: hosts first, then switches.
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~NodeId{0};

/// Port index within a node.
using PortId = std::uint8_t;
constexpr PortId kInvalidPort = 0xff;

/// Flow identifier, unique network-wide (assigned by the admission
/// controller / flow registry).
using FlowId = std::uint32_t;
constexpr FlowId kInvalidFlow = ~FlowId{0};

/// Virtual channel index. The paper's architectures use two:
/// VC0 carries regulated (QoS) traffic with absolute priority,
/// VC1 carries unregulated best-effort traffic. The Traditional
/// architecture may be configured with more VCs (ablation A5).
using VcId = std::uint8_t;
constexpr VcId kRegulatedVc = 0;
constexpr VcId kBestEffortVc = 1;

/// The four classes of Table 1. Control and Multimedia are regulated
/// (VC0 under the EDF architectures); Best-effort and Background are
/// unregulated (VC1), differentiated only by their deadline weights.
enum class TrafficClass : std::uint8_t {
  kControl = 0,
  kMultimedia = 1,
  kBestEffort = 2,
  kBackground = 3,
};
constexpr std::size_t kNumTrafficClasses = 4;

constexpr std::array<TrafficClass, kNumTrafficClasses> all_traffic_classes() {
  return {TrafficClass::kControl, TrafficClass::kMultimedia,
          TrafficClass::kBestEffort, TrafficClass::kBackground};
}

constexpr std::string_view to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kControl: return "Control";
    case TrafficClass::kMultimedia: return "Multimedia";
    case TrafficClass::kBestEffort: return "Best-effort";
    case TrafficClass::kBackground: return "Background";
  }
  return "?";
}

/// True for classes that pass admission control and ride the regulated VC.
constexpr bool is_regulated(TrafficClass c) {
  return c == TrafficClass::kControl || c == TrafficClass::kMultimedia;
}

}  // namespace dqos
