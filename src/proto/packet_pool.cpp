#include "proto/packet_pool.hpp"

#include "util/contracts.hpp"

namespace dqos {

void PacketRecycler::operator()(Packet* p) const {
  if (!p) return;
  if (pool) {
    pool->recycle(p);
  } else {
    delete p;
  }
}

PacketPool::~PacketPool() {
  // Packets still outstanding keep raw pointers to this pool via their
  // deleters; destroying the pool first is a use-after-free in the making.
  // Contract-check it instead of letting it fester.
  DQOS_ASSERT(outstanding_ == 0);
  for (Packet* p : free_) delete p;
}

PacketPtr PacketPool::make() {
  Packet* p;
  if (free_.empty()) {
    p = new Packet();
  } else {
    p = free_.back();
    free_.pop_back();
    *p = Packet{};
  }
  ++outstanding_;
  return PacketPtr(p, PacketRecycler{this});
}

void PacketPool::recycle(Packet* p) {
  DQOS_ASSERT(outstanding_ > 0);
  --outstanding_;
  free_.push_back(p);
}

}  // namespace dqos
