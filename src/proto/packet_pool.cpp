#include "proto/packet_pool.hpp"

#include "util/contracts.hpp"

namespace dqos {

void PacketRecycler::operator()(Packet* p) const {
  if (!p) return;
  if (pool) {
    pool->recycle(p);
  } else {
    delete p;  // not pool storage: an individually allocated Packet
  }
}

PacketPool::~PacketPool() {
  // Packets still outstanding keep raw pointers to this pool via their
  // deleters; destroying the pool first is a use-after-free in the making.
  // Contract-check it instead of letting it fester.
  DQOS_ASSERT(outstanding_ == 0);
}

void PacketPool::grow() {
  auto chunk = std::make_unique<Packet[]>(kChunkPackets);
  free_.reserve(free_.size() + kChunkPackets);
  for (std::size_t i = 0; i < kChunkPackets; ++i) free_.push_back(&chunk[i]);
  chunks_.push_back(std::move(chunk));
}

void PacketPool::preallocate(std::size_t n) {
  while (free_.size() < n) grow();
}

PacketPtr PacketPool::make() {
  if (free_.empty()) grow();
  Packet* p = free_.back();
  free_.pop_back();
  *p = Packet{};
  ++outstanding_;
  ++allocated_total_;
  return PacketPtr(p, PacketRecycler{this});
}

void PacketPool::recycle(Packet* p) {
  DQOS_ASSERT(outstanding_ > 0);
  --outstanding_;
  ++recycled_total_;
  free_.push_back(p);
}

}  // namespace dqos
