#include "proto/packet_pool.hpp"

#include "util/contracts.hpp"

namespace dqos {

namespace {
/// Which shard's window drain this thread is currently executing; -1 for
/// the serial/coordinator context (setup, instants, barriers, teardown).
thread_local std::int32_t tls_current_shard = -1;
}  // namespace

void PacketRecycler::operator()(Packet* p) const {
  if (!p) return;
  if (pool) {
    pool->recycle(p);
  } else {
    delete p;  // not pool storage: an individually allocated Packet
  }
}

PacketPool::~PacketPool() {
  // Packets still outstanding keep raw pointers to this pool via their
  // deleters; destroying the pool first is a use-after-free in the making.
  // Contract-check it instead of letting it fester.
  DQOS_ASSERT(outstanding_ == 0);
}

void PacketPool::grow() {
  auto chunk = std::make_unique<Packet[]>(kChunkPackets);
  free_.reserve(free_.size() + kChunkPackets);
  for (std::size_t i = 0; i < kChunkPackets; ++i) free_.push_back(&chunk[i]);
  chunks_.push_back(std::move(chunk));
}

void PacketPool::preallocate(std::size_t n) {
  while (free_.size() < n) grow();
}

PacketPtr PacketPool::make() {
  if (free_.empty()) grow();
  Packet* p = free_.back();
  free_.pop_back();
  *p = Packet{};
  ++outstanding_;
  ++allocated_total_;
  return PacketPtr(p, PacketRecycler{this});
}

void PacketPool::recycle(Packet* p) {
  if (cross_free_) {
    const std::int32_t s = tls_current_shard;
    if (s >= 0 && s != owner_shard_) {
      lanes_[static_cast<std::size_t>(s)].push_back(LaneEntry{p, false});
      return;
    }
  }
  DQOS_ASSERT(outstanding_ > 0);
  --outstanding_;
  ++recycled_total_;
  free_.push_back(p);
}

void PacketPool::retire(Packet* p) {
  DQOS_ASSERT(p != nullptr);
  if (cross_free_) {
    const std::int32_t s = tls_current_shard;
    if (s >= 0 && s != owner_shard_) {
      lanes_[static_cast<std::size_t>(s)].push_back(LaneEntry{p, true});
      return;
    }
  }
  ++retired_total_;
  recycle(p);
}

void PacketPool::enable_cross_free(std::uint32_t num_shards,
                                   std::int32_t owner_shard) {
  DQOS_EXPECTS(num_shards >= 2);
  DQOS_EXPECTS(owner_shard >= 0 &&
               owner_shard < static_cast<std::int32_t>(num_shards));
  cross_free_ = true;
  owner_shard_ = owner_shard;
  lanes_.resize(num_shards);
}

void PacketPool::drain_free_lanes() {
  for (std::vector<LaneEntry>& lane : lanes_) {
    for (const LaneEntry& e : lane) {
      if (e.retired) ++retired_total_;
      DQOS_ASSERT(outstanding_ > 0);
      --outstanding_;
      ++recycled_total_;
      free_.push_back(e.p);
    }
    lane.clear();
  }
}

void PacketPool::set_current_shard(std::int32_t shard) {
  tls_current_shard = shard;
}

}  // namespace dqos
