/// \file packet.hpp
/// The network packet and its header, as the paper's switches see it.
///
/// Two design rules from the paper are encoded here:
///   1. Switches keep **no per-flow state** (§3): everything a switch may
///      consult for scheduling lives in the header — the deadline tag and
///      the routing information. Fields outside the header are either
///      host-side state (eligible time, §3.1: "not transmitted in the
///      header") or simulation observer timestamps that no component's
///      behaviour may depend on.
///   2. The deadline crosses links as a **time-to-deadline** (TTD, §3.3):
///      TTD = D - T_local at departure, D' = TTD + T'_local at arrival, so
///      no clock synchronization between nodes is required. LocalClock
///      performs the encode/decode.
#pragma once

#include <cstdint>

#include "proto/types.hpp"
#include "util/contracts.hpp"
#include "util/time.hpp"

namespace dqos {

/// Fixed source route, PCI AS style: one output port per hop plus a cursor
/// that each switch advances (the header mutation that forces per-hop CRC
/// recomputation, which the paper notes is needed for TTD anyway).
class SourceRoute {
 public:
  static constexpr std::size_t kMaxHops = 24;  // fits a 12x12 mesh XY route

  SourceRoute() = default;

  void push_hop(PortId port) {
    DQOS_EXPECTS(length_ < kMaxHops);
    hops_[length_++] = port;
  }

  /// Output port to take at the current hop; advances the cursor.
  PortId next_hop() {
    DQOS_EXPECTS(cursor_ < length_);
    return hops_[cursor_++];
  }

  [[nodiscard]] PortId hop(std::size_t i) const {
    DQOS_EXPECTS(i < length_);
    return hops_[i];
  }
  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] std::size_t hops_taken() const { return cursor_; }
  [[nodiscard]] bool at_destination() const { return cursor_ == length_; }
  void reset_cursor() { cursor_ = 0; }

 private:
  std::array<PortId, kMaxHops> hops_{};
  std::uint8_t length_ = 0;
  std::uint8_t cursor_ = 0;
};

/// Wire header. 16 bytes of modelled overhead are added to every packet's
/// payload to account for header + CRC (kHeaderBytes).
struct PacketHeader {
  std::uint64_t packet_id = 0;   ///< globally unique, for tracing
  FlowId flow = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TrafficClass tclass = TrafficClass::kBestEffort;
  VcId vc = kBestEffortVc;
  std::uint32_t wire_bytes = 0;  ///< payload + header overhead
  std::uint32_t flow_seq = 0;    ///< per-flow sequence (order checking)
  Duration ttd;                  ///< time-to-deadline while on a link
  SourceRoute route;
  // Message/frame bookkeeping: a video frame or large best-effort message is
  // fragmented into MTU packets; receivers report full-transfer latency.
  std::uint32_t message_id = 0;
  std::uint16_t message_parts = 1;
  std::uint16_t message_part_idx = 0;
};

/// A packet in flight or queued. Beyond the header: per-holder reconstructed
/// deadline, host-side eligible time, and observer timestamps.
struct Packet {
  PacketHeader hdr;

  /// Deadline in the *current holder's* clock domain, reconstructed from
  /// hdr.ttd on arrival. Only meaningful while the packet sits at a node.
  TimePoint local_deadline;

  /// Earliest local (source-host clock) instant the packet may enter the
  /// network. Host-side only; never serialized (§3.1).
  TimePoint eligible_local;

  // --- observer timestamps (global clock; for metrics only) ---
  TimePoint t_created;    ///< handed over by the application
  TimePoint t_injected;   ///< first byte left the source NIC
  TimePoint t_delivered;  ///< last byte arrived at the destination host

  [[nodiscard]] std::uint32_t size() const { return hdr.wire_bytes; }
};

/// Modelled per-packet header+CRC overhead on the wire.
constexpr std::uint32_t kHeaderBytes = 16;

/// Per-node clock with a fixed skew against the simulator's global clock.
/// The paper's TTD scheme exists precisely so that scheduling never compares
/// timestamps from two different LocalClocks; tests assert behaviour is
/// invariant under arbitrary offsets.
class LocalClock {
 public:
  LocalClock() = default;
  explicit LocalClock(Duration offset) : offset_(offset) {}

  [[nodiscard]] Duration offset() const { return offset_; }

  /// Local reading for a given global instant.
  [[nodiscard]] TimePoint local_now(TimePoint global_now) const {
    return global_now + offset_;
  }

  /// TTD to put in the header when the packet departs at `global_now`.
  [[nodiscard]] Duration encode_ttd(TimePoint local_deadline, TimePoint global_now) const {
    return local_deadline - local_now(global_now);
  }

  /// Deadline reconstructed on arrival at `global_now`.
  [[nodiscard]] TimePoint decode_ttd(Duration ttd, TimePoint global_now) const {
    return local_now(global_now) + ttd;
  }

 private:
  Duration offset_ = Duration::zero();
};

}  // namespace dqos
