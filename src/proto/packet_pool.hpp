/// \file packet_pool.hpp
/// Recycling allocator for Packet objects.
///
/// A saturated 128-host run creates millions of packets; allocating each
/// from the general heap is measurable and fragments memory. The pool keeps
/// a free list and hands out unique_ptrs whose deleter returns the object
/// to the pool (RAII — packets can never leak even on early unwinds).
#pragma once

#include <memory>
#include <vector>

#include "proto/packet.hpp"

namespace dqos {

class PacketPool;

/// Deleter that recycles into the owning pool (or frees if the pool died
/// first — pools outlive packets in normal operation, but unit tests may
/// tear down in any order).
struct PacketRecycler {
  PacketPool* pool = nullptr;
  void operator()(Packet* p) const;
};

using PacketPtr = std::unique_ptr<Packet, PacketRecycler>;

class PacketPool {
 public:
  PacketPool() = default;
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Returns a zero-initialized packet (fields reset to defaults).
  PacketPtr make();

  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

 private:
  friend struct PacketRecycler;
  void recycle(Packet* p);

  std::vector<Packet*> free_;
  std::size_t outstanding_ = 0;
};

}  // namespace dqos
