/// \file packet_pool.hpp
/// Recycling allocator for Packet objects.
///
/// A saturated 128-host run creates millions of packets; allocating each
/// from the general heap is measurable and fragments memory. The pool keeps
/// a free list and hands out unique_ptrs whose deleter returns the object
/// to the pool (RAII — packets can never leak even on early unwinds).
///
/// Storage grows in chunks of kChunkPackets (not one object at a time), so
/// a cold-started pool reaches steady state in a handful of allocations,
/// and NetworkSimulator can preallocate() the expected working set up
/// front, making the simulation loop allocation-free on the packet path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "proto/packet.hpp"

namespace dqos {

class PacketPool;

/// Deleter that recycles into the owning pool. Pool-made packets always
/// carry a valid pool pointer (the pool asserts it outlives them); the
/// null-pool branch only serves PacketPtrs built around an individually
/// new-ed Packet outside any pool.
struct PacketRecycler {
  PacketPool* pool = nullptr;
  void operator()(Packet* p) const;
};

using PacketPtr = std::unique_ptr<Packet, PacketRecycler>;

class PacketPool {
 public:
  /// Packets per storage chunk: big enough to amortize the allocation,
  /// small enough that a tiny test platform does not over-commit.
  static constexpr std::size_t kChunkPackets = 256;

  PacketPool() = default;
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Returns a zero-initialized packet (fields reset to defaults).
  PacketPtr make();

  /// Grows the pool until at least `n` packets are free, in whole chunks.
  /// Called by NetworkSimulator setup so the measured run starts warm.
  void preallocate(std::size_t n);

  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

  /// Lifetime totals for conservation auditing (fault/auditor.hpp):
  /// outstanding() must equal allocated_total() - recycled_total() at all
  /// times, or a packet left the pool without going through the deleter.
  [[nodiscard]] std::uint64_t allocated_total() const { return allocated_total_; }
  [[nodiscard]] std::uint64_t recycled_total() const { return recycled_total_; }
  /// Packets released through retire_packet() (accounted drop paths).
  [[nodiscard]] std::uint64_t retired_total() const { return retired_total_; }

  /// Accounted release (see retire_packet below). Public so the free
  /// function can route through the pool's thread-aware path.
  void retire(Packet* p);

  // --- sharded execution (DESIGN.md §12) ---------------------------------
  /// Arms cross-shard frees: a recycle arriving from a worker thread other
  /// than the owner shard's is parked in that caller shard's side lane
  /// (single-producer, touched by no one else mid-window) and folded back
  /// — free list and counters alike — by the coordinator at the next
  /// barrier via drain_free_lanes(). Frees from the owner shard or from
  /// serial stretches (current shard -1) stay direct, so a serial run is
  /// untouched.
  void enable_cross_free(std::uint32_t num_shards, std::int32_t owner_shard);
  /// Folds all parked foreign frees into the free list (coordinator only,
  /// at a window barrier or after the run).
  void drain_free_lanes();
  /// Thread-local caller-shard id: set by the engine around each window
  /// drain; -1 (the default) means the serial/coordinator context.
  static void set_current_shard(std::int32_t shard);

 private:
  friend struct PacketRecycler;
  void recycle(Packet* p);
  void grow();

  struct LaneEntry {
    Packet* p;
    bool retired;  ///< came through retire() — count it at the drain
  };

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  std::size_t outstanding_ = 0;
  std::uint64_t allocated_total_ = 0;
  std::uint64_t recycled_total_ = 0;
  std::uint64_t retired_total_ = 0;
  std::int32_t owner_shard_ = -1;
  bool cross_free_ = false;
  std::vector<std::vector<LaneEntry>> lanes_;  ///< indexed by caller shard
};

/// Accounted release for drop paths (expiry, purge, shed): recycles `p`
/// through its deleter while counting the retirement, so the auditor can
/// prove no drop path leaks packets. Dropping a packet by plain `.reset()`
/// in src/ is forbidden by the `unaudited-packet-free` lint rule.
inline void retire_packet(PacketPtr p) {
  if (!p) return;
  if (PacketPool* pool = p.get_deleter().pool) {
    pool->retire(p.release());
    return;
  }
  p.reset();  // dqos-lint: allow(unaudited-packet-free) — this IS the audit point
}

}  // namespace dqos
