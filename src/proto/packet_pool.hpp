/// \file packet_pool.hpp
/// Recycling allocator for Packet objects.
///
/// A saturated 128-host run creates millions of packets; allocating each
/// from the general heap is measurable and fragments memory. The pool keeps
/// a free list and hands out unique_ptrs whose deleter returns the object
/// to the pool (RAII — packets can never leak even on early unwinds).
///
/// Storage grows in chunks of kChunkPackets (not one object at a time), so
/// a cold-started pool reaches steady state in a handful of allocations,
/// and NetworkSimulator can preallocate() the expected working set up
/// front, making the simulation loop allocation-free on the packet path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "proto/packet.hpp"

namespace dqos {

class PacketPool;

/// Deleter that recycles into the owning pool. Pool-made packets always
/// carry a valid pool pointer (the pool asserts it outlives them); the
/// null-pool branch only serves PacketPtrs built around an individually
/// new-ed Packet outside any pool.
struct PacketRecycler {
  PacketPool* pool = nullptr;
  void operator()(Packet* p) const;
};

using PacketPtr = std::unique_ptr<Packet, PacketRecycler>;

class PacketPool {
 public:
  /// Packets per storage chunk: big enough to amortize the allocation,
  /// small enough that a tiny test platform does not over-commit.
  static constexpr std::size_t kChunkPackets = 256;

  PacketPool() = default;
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Returns a zero-initialized packet (fields reset to defaults).
  PacketPtr make();

  /// Grows the pool until at least `n` packets are free, in whole chunks.
  /// Called by NetworkSimulator setup so the measured run starts warm.
  void preallocate(std::size_t n);

  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

  /// Lifetime totals for conservation auditing (fault/auditor.hpp):
  /// outstanding() must equal allocated_total() - recycled_total() at all
  /// times, or a packet left the pool without going through the deleter.
  [[nodiscard]] std::uint64_t allocated_total() const { return allocated_total_; }
  [[nodiscard]] std::uint64_t recycled_total() const { return recycled_total_; }
  /// Packets released through retire_packet() (accounted drop paths).
  [[nodiscard]] std::uint64_t retired_total() const { return retired_total_; }

 private:
  friend struct PacketRecycler;
  friend void retire_packet(PacketPtr p);
  void recycle(Packet* p);
  void grow();

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  std::size_t outstanding_ = 0;
  std::uint64_t allocated_total_ = 0;
  std::uint64_t recycled_total_ = 0;
  std::uint64_t retired_total_ = 0;
};

/// Accounted release for drop paths (expiry, purge, shed): recycles `p`
/// through its deleter while counting the retirement, so the auditor can
/// prove no drop path leaks packets. Dropping a packet by plain `.reset()`
/// in src/ is forbidden by the `unaudited-packet-free` lint rule.
inline void retire_packet(PacketPtr p) {
  if (!p) return;
  if (PacketPool* pool = p.get_deleter().pool) ++pool->retired_total_;
  p.reset();  // dqos-lint: allow(unaudited-packet-free) — this IS the audit point
}

}  // namespace dqos
