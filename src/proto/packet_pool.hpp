/// \file packet_pool.hpp
/// Recycling allocator for Packet objects.
///
/// A saturated 128-host run creates millions of packets; allocating each
/// from the general heap is measurable and fragments memory. The pool keeps
/// a free list and hands out unique_ptrs whose deleter returns the object
/// to the pool (RAII — packets can never leak even on early unwinds).
///
/// Storage grows in chunks of kChunkPackets (not one object at a time), so
/// a cold-started pool reaches steady state in a handful of allocations,
/// and NetworkSimulator can preallocate() the expected working set up
/// front, making the simulation loop allocation-free on the packet path.
#pragma once

#include <memory>
#include <vector>

#include "proto/packet.hpp"

namespace dqos {

class PacketPool;

/// Deleter that recycles into the owning pool. Pool-made packets always
/// carry a valid pool pointer (the pool asserts it outlives them); the
/// null-pool branch only serves PacketPtrs built around an individually
/// new-ed Packet outside any pool.
struct PacketRecycler {
  PacketPool* pool = nullptr;
  void operator()(Packet* p) const;
};

using PacketPtr = std::unique_ptr<Packet, PacketRecycler>;

class PacketPool {
 public:
  /// Packets per storage chunk: big enough to amortize the allocation,
  /// small enough that a tiny test platform does not over-commit.
  static constexpr std::size_t kChunkPackets = 256;

  PacketPool() = default;
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Returns a zero-initialized packet (fields reset to defaults).
  PacketPtr make();

  /// Grows the pool until at least `n` packets are free, in whole chunks.
  /// Called by NetworkSimulator setup so the measured run starts warm.
  void preallocate(std::size_t n);

  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

 private:
  friend struct PacketRecycler;
  void recycle(Packet* p);
  void grow();

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  std::size_t outstanding_ = 0;
};

}  // namespace dqos
