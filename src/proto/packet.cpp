#include "proto/packet.hpp"

// Header-only module; TU anchors the static library.
