#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

#include <memory>
#include <vector>

namespace dqos {
namespace {

using namespace dqos::literals;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::zero());
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_ps(300), [&] { order.push_back(3); });
  sim.schedule_at(TimePoint::from_ps(100), [&] { order.push_back(1); });
  sim.schedule_at(TimePoint::from_ps(200), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ps(), 300);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SimultaneousEventsFifo) {
  // Events at the same instant fire in scheduling order — the determinism
  // guarantee the whole simulator's reproducibility rests on.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(TimePoint::from_ps(1000), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesNow) {
  Simulator sim;
  TimePoint fired;
  sim.schedule_after(5_us, [&] {
    fired = sim.now();
  });
  sim.run();
  EXPECT_EQ(fired.ps(), 5'000'000);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) sim.schedule_after(1_us, tick);
  };
  sim.schedule_after(1_us, tick);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.now().ps(), 10 * 1'000'000);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(1_us, [&] { fired = true; });
  sim.schedule_after(2_us, [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now().ps(), 2'000'000);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.cancel(0);
  sim.cancel(999);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.run_until(TimePoint::from_ps(7777));
  EXPECT_EQ(sim.now().ps(), 7777);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint::from_ps(100), [&] { ++fired; });
  sim.schedule_at(TimePoint::from_ps(200), [&] { ++fired; });
  sim.schedule_at(TimePoint::from_ps(300), [&] { ++fired; });
  sim.run_until(TimePoint::from_ps(200));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now().ps(), 200);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(TimePoint::from_ps(50), [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(TimePoint::from_ps(100));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now().ps(), 100);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_for(3_us);
  sim.run_for(2_us);
  EXPECT_EQ(sim.now().ps(), 5'000'000);
}

TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator sim;
  sim.schedule_at(TimePoint::from_ps(100), [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(TimePoint::from_ps(50), [] {}), "precondition");
}

TEST(Simulator, EventCascadeAtSameInstant) {
  // An event scheduling another event at the *same* time must fire it in
  // this step loop (time does not advance).
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_ps(10), [&] {
    order.push_back(1);
    sim.schedule_at(TimePoint::from_ps(10), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now().ps(), 10);
}

TEST(Simulator, RandomScheduleCancelStress) {
  // Property: every scheduled-and-not-cancelled event fires exactly once,
  // in non-decreasing time order, regardless of interleaving.
  Simulator sim;
  Rng rng(7);
  std::vector<EventId> pending;
  std::uint64_t fired = 0, scheduled = 0, cancelled = 0;
  TimePoint last_fire;
  for (int i = 0; i < 5000; ++i) {
    if (pending.empty() || rng.chance(0.7)) {
      const auto delay =
          Duration::picoseconds(static_cast<std::int64_t>(rng.uniform_int(0, 100000)));
      pending.push_back(sim.schedule_after(delay, [&] {
        EXPECT_GE(sim.now(), last_fire);
        last_fire = sim.now();
        ++fired;
      }));
      ++scheduled;
    } else {
      const auto j = rng.uniform_int(0, pending.size() - 1);
      sim.cancel(pending[j]);
      pending[j] = pending.back();
      pending.pop_back();
      ++cancelled;
    }
    if (rng.chance(0.1)) sim.step();  // interleave execution
  }
  sim.run();
  // Some cancels may have targeted already-fired events; the invariant is
  // fired + (effective cancels) == scheduled, bounded by attempted cancels.
  EXPECT_LE(fired, scheduled);
  EXPECT_GE(fired, scheduled - cancelled);
}

TEST(Simulator, CancelBookkeepingStaysBounded) {
  // Regression: cancel() used to park every cancelled id in a tombstone set
  // forever. The set must shrink as the heap pops (or skips) entries, so a
  // long-running schedule/cancel churn cannot grow memory without bound.
  Simulator sim;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> ids;
    ids.reserve(100);
    for (int i = 0; i < 100; ++i) {
      ids.push_back(sim.schedule_after(Duration::nanoseconds(i + 1), [] {}));
    }
    for (const EventId id : ids) sim.cancel(id);
    sim.run();
    EXPECT_EQ(sim.events_pending(), 0u);
    EXPECT_EQ(sim.cancelled_pending(), 0u);  // tombstones fully reclaimed
  }
}

TEST(Simulator, CancelAfterFireIsNoopAndLeavesNoTombstone) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_after(Duration::nanoseconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.cancel(id);  // already fired: must not register a tombstone
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, DoubleCancelRegistersOneTombstone) {
  Simulator sim;
  const EventId id = sim.schedule_after(Duration::nanoseconds(5), [] {});
  sim.cancel(id);
  sim.cancel(id);
  EXPECT_EQ(sim.cancelled_pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(Simulator, CancelThenRescheduleStorm) {
  // The host retry-timer pattern, at storm intensity: one logical timer is
  // cancelled and re-armed thousands of times; only the last arming may
  // fire, and the indexed heap must not leak slots or tombstones.
  Simulator sim;
  int fired = 0;
  EventId timer = 0;
  for (int i = 0; i < 10000; ++i) {
    if (i > 0) sim.cancel(timer);
    timer = sim.schedule_after(Duration::nanoseconds(100 + i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(Simulator, StaleIdAfterSlotReuseIsNoop) {
  // Generation tags: once an event fires, its id must never alias a newer
  // event that recycled the same heap slot.
  Simulator sim;
  int first = 0, second = 0;
  const EventId old_id = sim.schedule_after(Duration::nanoseconds(1), [&] { ++first; });
  sim.run();
  EXPECT_EQ(first, 1);
  // The freed slot is recycled by the next schedule; the stale id differs
  // only in generation.
  const EventId new_id = sim.schedule_after(Duration::nanoseconds(1), [&] { ++second; });
  EXPECT_NE(old_id, new_id);
  sim.cancel(old_id);  // stale: must NOT cancel the new occupant
  sim.run();
  EXPECT_EQ(second, 1);
}

TEST(Simulator, CancelInsideCallback) {
  // A firing event cancels a later one and a simultaneous one — both from
  // inside the kernel's dispatch loop.
  Simulator sim;
  bool later_fired = false, peer_fired = false;
  const EventId later =
      sim.schedule_at(TimePoint::from_ps(200), [&] { later_fired = true; });
  EventId peer = 0;
  sim.schedule_at(TimePoint::from_ps(100), [&] {
    sim.cancel(later);
    sim.cancel(peer);
  });
  peer = sim.schedule_at(TimePoint::from_ps(100), [&] { peer_fired = true; });
  sim.run();
  EXPECT_FALSE(later_fired);
  EXPECT_FALSE(peer_fired);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  EXPECT_EQ(sim.now().ps(), 100);
}

TEST(Simulator, CancelOwnEventInsideItsCallbackIsNoop) {
  Simulator sim;
  int fired = 0;
  EventId self = 0;
  self = sim.schedule_after(Duration::nanoseconds(1), [&] {
    ++fired;
    sim.cancel(self);  // already popped: must be a no-op, not a tombstone
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(Simulator, MoveOnlyClosure) {
  // The kernel accepts move-only callables directly (the zero-copy packet
  // hand-off relies on this — no shared_ptr shim).
  Simulator sim;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  sim.schedule_after(Duration::nanoseconds(1),
                     [p = std::move(payload), &seen] { seen = *p; });
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(Simulator, CancelDestroysClosureEagerly) {
  // cancel() releases the closure's resources immediately, not at pop time
  // — a cancelled retry timer must not pin its captures for the remaining
  // heap lifetime of the tombstone.
  Simulator sim;
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  const EventId id = sim.schedule_after(Duration::nanoseconds(1000),
                                        [p = std::move(tracked)] { (void)*p; });
  EXPECT_FALSE(watch.expired());
  sim.cancel(id);
  EXPECT_TRUE(watch.expired());
  sim.run();
}

TEST(Simulator, DrainDueFiresExactlyTheDueBatch) {
  // The public batch API (DESIGN.md §11): drain whole due batches until
  // nothing at or before the limit remains, leaving later events pending.
  Simulator sim;
  std::vector<int> fired;
  for (const int t : {1, 5, 9, 9, 12}) {
    sim.schedule_at(TimePoint::from_ps(t * 1000), [&fired, t] { fired.push_back(t); });
  }
  while (sim.drain_due(TimePoint::from_ps(9000))) {
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 5, 9, 9}));
  EXPECT_EQ(sim.events_pending(), 1u);
  EXPECT_EQ(sim.now().ps(), 9000);  // clock follows the last firing
  sim.run();
  EXPECT_EQ(fired.back(), 12);
  EXPECT_EQ(sim.now().ps(), 12000);
}

TEST(Simulator, CancelStormMidBatchSkipsTombstonedRungEntries) {
  // drain_due() fires a whole due batch per loop iteration; the trigger
  // (lowest seq at the instant) cancels events *later in the same sorted
  // rung*, which the eager cancel path tombstones in place. The drain
  // must skip those sentinels without firing or reordering anything.
  Simulator sim;
  std::vector<EventId> victims;
  int fired_victims = 0;
  int fired_keepers = 0;
  sim.schedule_after(Duration::nanoseconds(10), [&] {
    for (const EventId id : victims) sim.cancel(id);
  });
  for (int i = 0; i < 64; ++i) {
    victims.push_back(
        sim.schedule_after(Duration::nanoseconds(10), [&] { ++fired_victims; }));
    sim.schedule_after(Duration::nanoseconds(10), [&] { ++fired_keepers; });
  }
  sim.run();
  EXPECT_EQ(fired_victims, 0);
  EXPECT_EQ(fired_keepers, 64);
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(Simulator, TombstoneHeavyBatchDrainKeepsSurvivorOrder) {
  // 90% of a 10k-event band is cancelled up front — a mix of in-rung
  // sentinels and bucket tombstones. The batch drain must bulk-skip all
  // of them, fire the survivors in exact (time, seq) order, and reclaim
  // every tombstone by the end of the run.
  Simulator sim;
  std::vector<EventId> ids;
  std::vector<int> order;
  ids.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(sim.schedule_after(Duration::nanoseconds(1 + (i % 97)),
                                     [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 10000; ++i) {
    if (i % 10 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
  }
  sim.run();
  ASSERT_EQ(order.size(), 1000u);
  const auto t_of = [](int tag) { return 1 + (tag % 97); };
  for (std::size_t k = 1; k < order.size(); ++k) {
    const bool ordered =
        t_of(order[k - 1]) < t_of(order[k]) ||
        (t_of(order[k - 1]) == t_of(order[k]) && order[k - 1] < order[k]);
    EXPECT_TRUE(ordered) << order[k - 1] << " fired before " << order[k];
  }
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(Simulator, ScheduleInsideDrainBatchHonorsTheLimit) {
  // A callback firing mid-batch inserts a new event inside the same due
  // window (must fire in this drain) and one past the limit (must stay
  // pending) — the reentrancy case the batch loop's re-read guards.
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(TimePoint::from_ps(1000), [&] {
    fired.push_back(1);
    sim.schedule_at(TimePoint::from_ps(1500), [&] { fired.push_back(15); });
    sim.schedule_at(TimePoint::from_ps(9000), [&] { fired.push_back(90); });
  });
  sim.schedule_at(TimePoint::from_ps(2000), [&] { fired.push_back(2); });
  sim.run_until(TimePoint::from_ps(3000));
  EXPECT_EQ(fired, (std::vector<int>{1, 15, 2}));
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(fired.back(), 90);
}

TEST(Simulator, InterleavedCancelRescheduleKeepsFifoOrder) {
  // Cancelling and rescheduling at one instant must not perturb the FIFO
  // order of the surviving same-time events (the determinism contract).
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(
        sim.schedule_at(TimePoint::from_ps(500), [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 20; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
  sim.run();
  std::vector<int> expect;
  for (int i = 0; i < 20; i += 2) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace dqos
