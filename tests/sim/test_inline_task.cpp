#include "sim/inline_task.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace dqos {
namespace {

TEST(InlineTask, EmptyIsFalsy) {
  InlineTask t;
  EXPECT_FALSE(t);
}

TEST(InlineTask, InvokesSmallClosure) {
  int hits = 0;
  InlineTask t([&hits] { ++hits; });
  ASSERT_TRUE(t);
  t();
  EXPECT_EQ(hits, 1);
  t();
  EXPECT_EQ(hits, 2);
}

TEST(InlineTask, MoveTransfersTarget) {
  int hits = 0;
  InlineTask a([&hits] { ++hits; });
  InlineTask b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — contract under test
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, MoveAssignReplacesAndDestroysOld) {
  auto counted = std::make_shared<int>(0);
  std::weak_ptr<int> watch = counted;
  InlineTask a([p = std::move(counted)] { ++*p; });
  InlineTask b([] {});
  a = std::move(b);  // old target (holding the shared_ptr) must be destroyed
  EXPECT_TRUE(watch.expired());
  ASSERT_TRUE(a);
  a();  // the replacement no-op target
}

TEST(InlineTask, MoveOnlyCapture) {
  auto p = std::make_unique<int>(9);
  int seen = 0;
  InlineTask t([p = std::move(p), &seen] { seen = *p; });
  InlineTask moved(std::move(t));
  moved();
  EXPECT_EQ(seen, 9);
}

TEST(InlineTask, ResetDestroysCapturesImmediately) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  InlineTask t([p = std::move(tracked)] { (void)*p; });
  EXPECT_FALSE(watch.expired());
  t.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(t);
}

// A closure bigger than the 48-byte inline buffer but within the slab
// block size: exercises the TaskSlab fallback path.
TEST(InlineTask, OversizedClosureUsesSlabAndStillWorks) {
  static_assert(sizeof(std::array<std::uint64_t, 12>) > InlineTask::kInlineBytes);
  std::array<std::uint64_t, 12> big{};
  big[0] = 3;
  big[11] = 4;
  std::uint64_t sum = 0;
  InlineTask t([big, &sum] { sum = big[0] + big[11]; });
  InlineTask moved(std::move(t));  // heap path: move is a pointer swap
  moved();
  EXPECT_EQ(sum, 7u);
}

TEST(InlineTask, SlabRecyclesBlocks) {
  // Two sequential oversized tasks should reuse the same slab block
  // (create → destroy → create returns the freed block, LIFO).
  std::array<std::byte, 100> payload{};
  void* first = nullptr;
  {
    InlineTask t([payload, &first]() mutable { first = payload.data(); });
    t();
  }
  void* second = nullptr;
  {
    InlineTask t([payload, &second]() mutable { second = payload.data(); });
    t();
  }
  EXPECT_EQ(first, second);
}

// Beyond the slab block size: plain operator-new fallback.
TEST(InlineTask, HugeClosureFallsBackToHeap) {
  static_assert(sizeof(std::array<std::uint64_t, 64>) > detail::TaskSlab::kBlockBytes);
  std::array<std::uint64_t, 64> huge{};
  huge[63] = 42;
  std::uint64_t seen = 0;
  InlineTask t([huge, &seen] { seen = huge[63]; });
  t();
  EXPECT_EQ(seen, 42u);
}

TEST(InlineTask, SelfMoveAssignIsSafe) {
  int hits = 0;
  InlineTask t([&hits] { ++hits; });
  InlineTask& alias = t;
  t = std::move(alias);
  ASSERT_TRUE(t);
  t();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace dqos
