#include "core/config_io.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace dqos {
namespace {

ArgParser parse(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail);
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseArch, AllSpellings) {
  EXPECT_EQ(parse_arch("traditional"), SwitchArch::kTraditional2Vc);
  EXPECT_EQ(parse_arch("trad"), SwitchArch::kTraditional2Vc);
  EXPECT_EQ(parse_arch("ideal"), SwitchArch::kIdeal);
  EXPECT_EQ(parse_arch("simple"), SwitchArch::kSimple2Vc);
  EXPECT_EQ(parse_arch("advanced"), SwitchArch::kAdvanced2Vc);
  EXPECT_EQ(parse_arch("takeover"), SwitchArch::kAdvanced2Vc);
  EXPECT_FALSE(parse_arch("bogus").has_value());
}

TEST(ParseTopology, AllSpellings) {
  EXPECT_EQ(parse_topology("clos"), TopologyKind::kFoldedClos);
  EXPECT_EQ(parse_topology("min"), TopologyKind::kFoldedClos);
  EXPECT_EQ(parse_topology("kary"), TopologyKind::kKaryNTree);
  EXPECT_EQ(parse_topology("single"), TopologyKind::kSingleSwitch);
  EXPECT_FALSE(parse_topology("torus??").has_value());
}

TEST(ConfigFromArgs, DefaultsUntouched) {
  const SimConfig cfg = config_from_args(parse({}));
  const SimConfig ref;
  EXPECT_EQ(cfg.arch, ref.arch);
  EXPECT_EQ(cfg.num_hosts(), ref.num_hosts());
  EXPECT_DOUBLE_EQ(cfg.load, ref.load);
}

TEST(ConfigFromArgs, OverridesPlatform) {
  const SimConfig cfg = config_from_args(parse(
      {"--arch=simple", "--leaves=4", "--hosts-per-leaf=2", "--spines=3",
       "--load=0.6", "--seed=77", "--vcs=4", "--vc-weights=8,4,2,1",
       "--buffer=16384", "--mtu=1024", "--link-gbps=16",
       "--link-latency-ns=250"}));
  EXPECT_EQ(cfg.arch, SwitchArch::kSimple2Vc);
  EXPECT_EQ(cfg.num_hosts(), 8u);
  EXPECT_EQ(cfg.num_spines, 3u);
  EXPECT_DOUBLE_EQ(cfg.load, 0.6);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.num_vcs, 4);
  EXPECT_EQ(cfg.vc_weights, (std::vector<std::uint32_t>{8, 4, 2, 1}));
  EXPECT_EQ(cfg.buffer_bytes_per_vc, 16384u);
  EXPECT_EQ(cfg.mtu_bytes, 1024u);
  EXPECT_DOUBLE_EQ(cfg.link_bw.gbps(), 16.0);
  EXPECT_EQ(cfg.link_latency, Duration::nanoseconds(250));
}

TEST(ConfigFromArgs, WorkloadToggles) {
  const SimConfig cfg = config_from_args(
      parse({"--no-video", "--no-background", "--be-weight=5",
             "--frame-budget-ms=20", "--no-eligible", "--skew-us=100"}));
  EXPECT_FALSE(cfg.enable_video);
  EXPECT_TRUE(cfg.enable_control);
  EXPECT_FALSE(cfg.enable_background);
  EXPECT_DOUBLE_EQ(cfg.best_effort_weight, 5.0);
  EXPECT_EQ(cfg.video_frame_budget, Duration::milliseconds(20));
  EXPECT_FALSE(cfg.video_eligible_time);
  EXPECT_EQ(cfg.max_clock_skew, Duration::microseconds(100));
}

TEST(ConfigFromArgs, Pattern) {
  const SimConfig cfg = config_from_args(
      parse({"--pattern=hotspot", "--hotspot-fraction=0.5", "--hotspot-node=3"}));
  EXPECT_EQ(cfg.pattern.kind, PatternKind::kHotSpot);
  EXPECT_DOUBLE_EQ(cfg.pattern.hotspot_fraction, 0.5);
  EXPECT_EQ(cfg.pattern.hotspot_node, 3u);
}

TEST(ConfigFromArgs, TimeWindows) {
  const SimConfig cfg = config_from_args(
      parse({"--warmup-ms=5", "--measure-ms=50", "--drain-ms=7"}));
  EXPECT_EQ(cfg.warmup, Duration::milliseconds(5));
  EXPECT_EQ(cfg.measure, Duration::milliseconds(50));
  EXPECT_EQ(cfg.drain, Duration::milliseconds(7));
}

TEST(ConfigFromArgs, KaryAndSingleTopologies) {
  const SimConfig kary = config_from_args(
      parse({"--topology=kary", "--kary-k=2", "--kary-n=4"}));
  EXPECT_EQ(kary.topology, TopologyKind::kKaryNTree);
  EXPECT_EQ(kary.num_hosts(), 16u);
  const SimConfig single =
      config_from_args(parse({"--topology=single", "--hosts=6"}));
  EXPECT_EQ(single.num_hosts(), 6u);
}

TEST(ConfigFromArgs, MeshKeys) {
  const SimConfig cfg = config_from_args(parse(
      {"--topology=mesh", "--mesh-width=5", "--mesh-height=3",
       "--mesh-concentration=2"}));
  EXPECT_EQ(cfg.topology, TopologyKind::kMesh2D);
  EXPECT_EQ(cfg.num_hosts(), 30u);
}

TEST(ConfigFromArgs, HeapOpLatency) {
  const SimConfig cfg = config_from_args(parse({"--heap-op-ns=150"}));
  EXPECT_EQ(cfg.heap_op_latency, Duration::nanoseconds(150));
  EXPECT_EQ(config_from_args(parse({})).heap_op_latency, Duration::zero());
}

TEST(ConfigFromArgs, VideoTracePath) {
  const SimConfig cfg = config_from_args(parse({"--video-trace=/tmp/x.trace"}));
  EXPECT_EQ(cfg.video_trace_path, "/tmp/x.trace");
}

TEST(ConfigRoundTrip, MeshToStringAndBack) {
  SimConfig original;
  original.topology = TopologyKind::kMesh2D;
  original.mesh_width = 6;
  original.mesh_height = 2;
  original.mesh_concentration = 3;
  const std::string path = testing::TempDir() + "/dqos_mesh_roundtrip.cfg";
  {
    std::ofstream out(path);
    out << config_to_string(original);
  }
  ArgParser args;
  ASSERT_TRUE(args.load_file(path));
  const SimConfig loaded = config_from_args(args);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.topology, TopologyKind::kMesh2D);
  EXPECT_EQ(loaded.num_hosts(), 36u);
}

TEST(ConfigRoundTrip, ToStringAndBack) {
  SimConfig original;
  original.arch = SwitchArch::kSimple2Vc;
  original.topology = TopologyKind::kKaryNTree;
  original.kary_k = 2;
  original.kary_n = 3;
  original.load = 0.65;
  original.seed = 123;
  original.num_vcs = 4;
  original.vc_weights = {4, 3, 2, 1};
  original.buffer_bytes_per_vc = 4096;
  original.enable_video = false;
  original.video_eligible_time = false;
  original.best_effort_weight = 3.5;
  original.pattern.kind = PatternKind::kTornado;
  original.max_clock_skew = Duration::microseconds(42);

  const std::string path = testing::TempDir() + "/dqos_cfg_roundtrip.cfg";
  {
    std::ofstream out(path);
    out << config_to_string(original);
  }
  ArgParser args;
  ASSERT_TRUE(args.load_file(path));
  const SimConfig loaded = config_from_args(args);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.arch, original.arch);
  EXPECT_EQ(loaded.topology, original.topology);
  EXPECT_EQ(loaded.num_hosts(), original.num_hosts());
  EXPECT_DOUBLE_EQ(loaded.load, original.load);
  EXPECT_EQ(loaded.seed, original.seed);
  EXPECT_EQ(loaded.num_vcs, original.num_vcs);
  EXPECT_EQ(loaded.vc_weights, original.vc_weights);
  EXPECT_EQ(loaded.buffer_bytes_per_vc, original.buffer_bytes_per_vc);
  EXPECT_EQ(loaded.enable_video, original.enable_video);
  EXPECT_EQ(loaded.video_eligible_time, original.video_eligible_time);
  EXPECT_DOUBLE_EQ(loaded.best_effort_weight, original.best_effort_weight);
  EXPECT_EQ(loaded.pattern.kind, original.pattern.kind);
  EXPECT_EQ(loaded.max_clock_skew, original.max_clock_skew);
}

TEST(ConfigRoundTrip, ScaleKeysSurviveAndStayOffLegacyDumps) {
  // The DESIGN.md §13 scale knobs round-trip through dump/parse…
  SimConfig original;
  original.topology = TopologyKind::kKaryNTree;
  original.kary_k = 4;
  original.kary_n = 3;
  original.fanout = 8;
  original.hier_admission = true;
  const std::string dumped = config_to_string(original);
  EXPECT_NE(dumped.find("fanout=8"), std::string::npos);
  EXPECT_NE(dumped.find("hier-admission=true"), std::string::npos);
  const std::string path = testing::TempDir() + "/dqos_scale_roundtrip.cfg";
  {
    std::ofstream out(path);
    out << dumped;
  }
  ArgParser args;
  ASSERT_TRUE(args.load_file(path));
  const SimConfig loaded = config_from_args(args);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.fanout, 8u);
  EXPECT_TRUE(loaded.hier_admission);
  // …and default (off) values are not emitted at all, so legacy config
  // dumps — and the golden byte-identity that rides on them — are
  // untouched by the new keys.
  const std::string legacy = config_to_string(SimConfig{});
  EXPECT_EQ(legacy.find("fanout"), std::string::npos);
  EXPECT_EQ(legacy.find("hier-admission"), std::string::npos);
}

// --- negative paths: user input must raise ConfigError, never abort --------

/// Runs config_from_args and returns the ConfigError message ("" = accepted).
std::string error_of(std::initializer_list<const char*> argv_tail) {
  try {
    (void)config_from_args(parse(argv_tail));
    return "";
  } catch (const ConfigError& e) {
    return e.what();
  }
}

TEST(ConfigFromArgsErrors, MalformedNumberNamesKeyAndValue) {
  const std::string msg = error_of({"--load=fast"});
  EXPECT_NE(msg.find("--load"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fast"), std::string::npos) << msg;
  EXPECT_NE(msg.find("command line"), std::string::npos) << msg;
}

TEST(ConfigFromArgsErrors, TrailingGarbageIsMalformed) {
  EXPECT_NE(error_of({"--load=0.9x"}), "");
  EXPECT_NE(error_of({"--seed=12abc"}), "");
  EXPECT_NE(error_of({"--leaves=4.5"}), "");  // integer key rejects fractions
}

TEST(ConfigFromArgsErrors, OutOfRangeValues) {
  EXPECT_NE(error_of({"--load=0"}), "");      // load must be in (0, 2]
  EXPECT_NE(error_of({"--load=2.5"}), "");
  EXPECT_NE(error_of({"--load=-1"}), "");
  EXPECT_NE(error_of({"--vcs=256"}), "");     // VcId is 8-bit
  EXPECT_NE(error_of({"--vcs=0"}), "");
  EXPECT_NE(error_of({"--link-gbps=0"}), "");
  EXPECT_NE(error_of({"--leaves=0"}), "");
}

TEST(ConfigFromArgsErrors, UnknownEnumerations) {
  const std::string arch = error_of({"--arch=quantum"});
  EXPECT_NE(arch.find("traditional|ideal|simple|advanced"), std::string::npos)
      << arch;
  const std::string topo = error_of({"--topology=torus"});
  EXPECT_NE(topo.find("clos|kary|single|mesh"), std::string::npos) << topo;
  EXPECT_NE(error_of({"--pattern=zigzag"}), "");
}

TEST(ConfigFromArgsErrors, MalformedBooleanAndWeightList) {
  EXPECT_NE(error_of({"--no-video=perhaps"}), "");
  EXPECT_NE(error_of({"--vc-weights=8,x,2"}), "");
  EXPECT_EQ(error_of({"--no-video=yes"}), "");
}

TEST(ConfigFromArgsErrors, InconsistentCombinationIsAnError) {
  // Buffer too small for one MTU packet: a cross-field rule, still a clean
  // ConfigError (this used to trip a contract abort).
  const std::string msg = error_of({"--buffer=64", "--mtu=2048"});
  EXPECT_NE(msg, "");
  EXPECT_NE(msg.find("buffer"), std::string::npos) << msg;
}

TEST(ConfigFromArgsErrors, FaultKeysValidated) {
  EXPECT_EQ(error_of({"--fault-inject", "--fault-link-down-per-sec=100"}), "");
  EXPECT_NE(error_of({"--fault-link-down-per-sec=-5"}), "");
  EXPECT_NE(error_of({"--fault-permanent-fraction=1.5"}), "");
  EXPECT_NE(error_of({"--fault-credit-loss-per-sec=10",
                      "--fault-credit-loss-bytes=0"}), "");
  EXPECT_NE(error_of({"--retry-timeout-us=0"}), "");
  EXPECT_NE(error_of({"--watchdog-ms=1", "--watchdog-rounds=0"}), "");
}

TEST(ConfigFileErrors, MessageCarriesFileAndLine) {
  const std::string path = testing::TempDir() + "/dqos_bad.cfg";
  {
    std::ofstream out(path);
    out << "# comment\n"
           "load=0.8\n"
           "buffer=banana\n";
  }
  ArgParser args;
  ASSERT_TRUE(args.load_file(path));
  std::string msg;
  try {
    (void)config_from_args(args);
  } catch (const ConfigError& e) {
    msg = e.what();
  }
  std::remove(path.c_str());
  EXPECT_NE(msg.find("--buffer"), std::string::npos) << msg;
  EXPECT_NE(msg.find(path + ":3"), std::string::npos) << msg;
}

TEST(RequireKnownKeys, CatchesTypos) {
  const ArgParser args = parse({"--laod=0.9"});
  try {
    require_known_keys(args);
    FAIL() << "typo accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("laod"), std::string::npos);
  }
}

TEST(RequireKnownKeys, AcceptsConfigKeysAndExtras) {
  EXPECT_NO_THROW(require_known_keys(
      parse({"--arch=ideal", "--load=0.9", "--fault-inject", "--csv=x.csv"}),
      {"csv"}));
}

// --- scenario ([phase.N]) parsing -------------------------------------------

TEST(ScenarioFromArgs, NoPhaseKeysMeansNoScenario) {
  EXPECT_FALSE(scenario_from_args(parse({"--load=0.8"}), SimConfig{})
                   .has_value());
}

TEST(ScenarioFromArgs, PhasesInheritBaseAndOverride) {
  SimConfig base;
  base.load = 0.4;
  base.measure = Duration::milliseconds(10);
  const auto scn = scenario_from_args(
      parse({"--phase.0.load=0.3", "--phase.1.start-ms=4",
             "--phase.1.flow-arrivals-per-sec=2000",
             "--phase.1.flow-departures-per-sec=500",
             "--phase.2.start-ms=8", "--phase.2.share=0.4,0.1,0.25,0.25"}),
      base);
  ASSERT_TRUE(scn.has_value());
  ASSERT_EQ(scn->phases.size(), 3u);
  EXPECT_DOUBLE_EQ(scn->phases[0].load, 0.3);
  EXPECT_DOUBLE_EQ(scn->phases[1].load, 0.4);  // inherited from base
  EXPECT_EQ(scn->phases[1].start, Duration::milliseconds(4));
  EXPECT_DOUBLE_EQ(scn->phases[1].flow_arrivals_per_sec, 2000.0);
  EXPECT_DOUBLE_EQ(scn->phases[1].flow_departures_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(scn->phases[2].class_share[0], 0.4);
  EXPECT_DOUBLE_EQ(scn->phases[2].class_share[1], 0.1);
  EXPECT_TRUE(scn->multi_phase());
  EXPECT_TRUE(scn->has_churn());
}

TEST(ScenarioRoundTrip, ToStringAndBack) {
  SimConfig base;
  base.measure = Duration::milliseconds(20);
  Scenario original;
  original.phases.resize(3);
  original.phases[0].load = 0.3;
  original.phases[1].start = Duration::milliseconds(5);
  original.phases[1].load = 0.9;
  original.phases[1].flow_arrivals_per_sec = 1500.0;
  original.phases[1].flow_departures_per_sec = 250.0;
  original.phases[1].pattern.kind = PatternKind::kHotSpot;
  original.phases[1].pattern.hotspot_fraction = 0.5;
  original.phases[1].pattern.hotspot_node = 3;
  original.phases[2].start = Duration::milliseconds(12);
  original.phases[2].class_share = {0.4, 0.1, 0.25, 0.25};
  ASSERT_EQ(original.check(base), "");

  const std::string path = testing::TempDir() + "/dqos_scn_roundtrip.cfg";
  {
    std::ofstream out(path);
    out << scenario_to_string(original);
  }
  ArgParser args;
  ASSERT_TRUE(args.load_file(path));
  EXPECT_NO_THROW(require_known_keys(args));
  const auto loaded = scenario_from_args(args, base);
  std::remove(path.c_str());

  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->phases.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const PhaseSpec& a = original.phases[i];
    const PhaseSpec& b = loaded->phases[i];
    EXPECT_EQ(b.start, a.start) << "phase " << i;
    EXPECT_DOUBLE_EQ(b.load, a.load) << "phase " << i;
    EXPECT_EQ(b.class_share, a.class_share) << "phase " << i;
    EXPECT_EQ(b.pattern.kind, a.pattern.kind) << "phase " << i;
    EXPECT_DOUBLE_EQ(b.pattern.hotspot_fraction, a.pattern.hotspot_fraction);
    EXPECT_EQ(b.pattern.hotspot_node, a.pattern.hotspot_node);
    EXPECT_DOUBLE_EQ(b.flow_arrivals_per_sec, a.flow_arrivals_per_sec);
    EXPECT_DOUBLE_EQ(b.flow_departures_per_sec, a.flow_departures_per_sec);
  }
}

/// Runs scenario_from_args and returns the ConfigError message.
std::string scenario_error_of(std::initializer_list<const char*> argv_tail,
                              const SimConfig& base = SimConfig{}) {
  try {
    (void)scenario_from_args(parse(argv_tail), base);
    return "";
  } catch (const ConfigError& e) {
    return e.what();
  }
}

TEST(ScenarioFromArgsErrors, UnsortedOrDuplicateStarts) {
  EXPECT_NE(scenario_error_of({"--phase.0.load=0.5", "--phase.1.start-ms=8",
                               "--phase.2.start-ms=4"}),
            "");
  const std::string dup = scenario_error_of(
      {"--phase.0.load=0.5", "--phase.1.start-ms=4", "--phase.2.start-ms=4"});
  EXPECT_NE(dup.find("strictly increasing"), std::string::npos) << dup;
}

TEST(ScenarioFromArgsErrors, PhaseZeroMustStartAtZero) {
  const std::string msg = scenario_error_of({"--phase.0.start-ms=2"});
  EXPECT_NE(msg.find("phase 0"), std::string::npos) << msg;
}

TEST(ScenarioFromArgsErrors, IndexGapAndMissingStart) {
  EXPECT_NE(scenario_error_of({"--phase.0.load=0.5", "--phase.2.start-ms=4"}),
            "");
  const std::string msg =
      scenario_error_of({"--phase.0.load=0.5", "--phase.1.load=0.9"});
  EXPECT_NE(msg.find("start-ms"), std::string::npos) << msg;
}

TEST(ScenarioFromArgsErrors, UnknownSubkeyAndBadIndex) {
  EXPECT_NE(scenario_error_of({"--phase.0.laod=0.5"}), "");
  EXPECT_NE(scenario_error_of({"--phase.x.load=0.5"}), "");
  EXPECT_NE(scenario_error_of({"--phase.9999.load=0.5"}), "");
}

TEST(ScenarioFromArgsErrors, ChurnNeedsVideoEnabled) {
  SimConfig base;
  base.enable_video = false;
  EXPECT_NE(
      scenario_error_of({"--phase.0.flow-arrivals-per-sec=100"}, base), "");
}

TEST(ScenarioFileErrors, MessageCarriesFileAndLine) {
  // `[phase.N]` sections in a file: a bad start ordering must cite the
  // offending file:line, like every other config error.
  const std::string path = testing::TempDir() + "/dqos_bad_scn.cfg";
  {
    std::ofstream out(path);
    out << "[phase.0]\n"
           "load=0.5\n"
           "[phase.1]\n"
           "start-ms=8\n"
           "[phase.2]\n"
           "start-ms=4\n";
  }
  ArgParser args;
  ASSERT_TRUE(args.load_file(path));
  std::string msg;
  try {
    (void)scenario_from_args(args, SimConfig{});
  } catch (const ConfigError& e) {
    msg = e.what();
  }
  std::remove(path.c_str());
  EXPECT_NE(msg.find("--phase.2.start-ms"), std::string::npos) << msg;
  EXPECT_NE(msg.find(path + ":6"), std::string::npos) << msg;
}

TEST(SimConfigCheck, ProgrammaticUseStillAborts) {
  // Library users bypass config_io; a bad SimConfig there is a programming
  // error and keeps the contract abort.
  SimConfig cfg;
  cfg.load = 0.0;
  EXPECT_DEATH(cfg.validate(), "precondition");
}

}  // namespace
}  // namespace dqos
