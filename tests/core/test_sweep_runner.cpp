/// \file test_sweep_runner.cpp
/// SweepRunner contract tests plus the multi-threaded determinism smoke
/// that the tsan preset runs race-free (DESIGN.md §9): a ≥4-thread
/// run_sweep must be bit-identical to the serial reference execution.
#include "core/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

TEST(SweepRunner, CoversEveryIndexExactlyOnceAcrossThreads) {
  SweepRunner runner(4);
  EXPECT_EQ(runner.threads(), 4u);
  std::vector<std::atomic<int>> hits(97);
  runner.run(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, SerialPathRunsInIndexOrder) {
  SweepRunner runner(1);
  std::vector<std::size_t> order;
  runner.run(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(SweepRunner, ZeroJobsIsANoop) {
  SweepRunner runner(4);
  bool ran = false;
  runner.run(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(SweepRunner, LowestIndexedFailureIsRethrown) {
  // Indices are handed out in order, and a dispatched job always executes,
  // so index 3 always throws; it must win over the later failure at 11.
  SweepRunner runner(4);
  const auto attempt = [&] {
    runner.run(32, [](std::size_t i) {
      if (i == 3 || i == 11) {
        throw std::runtime_error("job " + std::to_string(i));
      }
    });
  };
  EXPECT_THROW(
      {
        try {
          attempt();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "job 3");
          throw;
        }
      },
      std::runtime_error);
}

TEST(SweepRunner, ResolveThreadsPrefersExplicitThenEnv) {
  ASSERT_EQ(::setenv("DQOS_SWEEP_THREADS", "7", /*overwrite=*/1), 0);
  EXPECT_EQ(SweepRunner::resolve_threads(3), 3u);  // explicit wins
  EXPECT_EQ(SweepRunner::resolve_threads(0), 7u);  // env fallback
  ASSERT_EQ(::setenv("DQOS_SWEEP_THREADS", "nonsense", 1), 0);
  EXPECT_GE(SweepRunner::resolve_threads(0), 1u);  // garbage -> hw/1
  ASSERT_EQ(::unsetenv("DQOS_SWEEP_THREADS"), 0);
}

/// A small single-switch platform: big enough to exercise every traffic
/// class, small enough that a 3x sweep stays test-suite fast.
SimConfig smoke_config() {
  SimConfig cfg;
  cfg.topology = TopologyKind::kSingleSwitch;
  cfg.single_switch_hosts = 4;
  cfg.warmup = 200_us;
  cfg.measure = 1_ms;
  cfg.drain = 500_us;
  cfg.seed = 42;
  cfg.enable_video = false;  // video flows dominate runtime; not needed here
  return cfg;
}

/// Serializes the fields every figure/CSV derives from, with full double
/// precision — byte equality here means byte-equal CSVs downstream.
std::string fingerprint(const std::vector<SweepPoint>& points) {
  std::string out;
  for (const SweepPoint& p : points) {
    char head[64];
    std::snprintf(head, sizeof head, "%d,%.3f,%llu,%llu\n",
                  static_cast<int>(p.arch), p.load,
                  static_cast<unsigned long long>(p.report.packets_delivered),
                  static_cast<unsigned long long>(p.report.events_processed));
    out += head;
    for (const TrafficClass c : all_traffic_classes()) {
      const ClassReport& r = p.report.classes[static_cast<std::size_t>(c)];
      char row[256];
      std::snprintf(row, sizeof row, "%llu,%llu,%.17g,%.17g,%.17g,%.17g\n",
                    static_cast<unsigned long long>(r.packets),
                    static_cast<unsigned long long>(r.messages),
                    r.avg_packet_latency_us, r.p99_packet_latency_us,
                    r.throughput_bytes_per_sec, r.offered_bytes_per_sec);
      out += row;
    }
  }
  return out;
}

TEST(SweepDeterminism, FourThreadSweepMatchesSerialBitForBit) {
  const auto run_with = [](const char* threads) {
    EXPECT_EQ(::setenv("DQOS_SWEEP_THREADS", threads, 1), 0);
    const SimConfig base = smoke_config();
    const std::vector<SwitchArch> archs = {SwitchArch::kSimple2Vc,
                                           SwitchArch::kAdvanced2Vc};
    const std::vector<double> loads = {0.2, 0.4};
    const std::vector<SweepPoint> points = run_sweep(base, archs, loads);
    EXPECT_EQ(::unsetenv("DQOS_SWEEP_THREADS"), 0);
    return fingerprint(points);
  };
  const std::string serial = run_with("1");
  const std::string parallel4 = run_with("4");
  const std::string parallel4_again = run_with("4");
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel4)
      << "4-thread sweep diverged from the serial reference";
  EXPECT_EQ(parallel4, parallel4_again) << "4-thread sweep is not replayable";
}

TEST(SweepRunner, OversubscriptionGuardClampsPoolToCoreBudget) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned cores = hw > 0 ? hw : 1;
  // Width 1 (unsharded replicas): never clamped, whatever the pool size.
  EXPECT_EQ(SweepRunner::clamp_for_width(8, 1), 8u);
  EXPECT_EQ(SweepRunner::clamp_for_width(1, 1), 1u);
  // A single wide replica is allowed (its own workers are the load).
  EXPECT_EQ(SweepRunner::clamp_for_width(1, 64), 1u);
  // A pool of wide replicas shrinks to fit: pool x width <= cores, >= 1.
  const unsigned clamped = SweepRunner::clamp_for_width(cores, 4);
  EXPECT_GE(clamped, 1u);
  EXPECT_LE(static_cast<std::uint64_t>(clamped) * 4, std::max(cores, 4u));
  // Way oversubscribed: always collapses to one replica at a time.
  EXPECT_EQ(SweepRunner::clamp_for_width(64, 2 * cores + 1), 1u);
}

}  // namespace
}  // namespace dqos
