/// \file test_overload.cpp
/// Graceful-degradation scenarios (EXPERIMENTS.md O1, DESIGN.md §10):
/// every degradation counter is bit-deterministic across same-seed runs,
/// a retry/backoff storm still hands back every reserved byte at
/// teardown, and end-host expiry strictly lowers the admitted classes'
/// deadline-miss rate past capacity. (The features-off == legacy
/// bit-identity guard lives in test_determinism.cpp: all knobs default
/// off and the golden hashes pin that path.)
#include <gtest/gtest.h>

#include "core/network_simulator.hpp"
#include "core/run_controller.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

/// mesh16 past capacity with the whole degradation stack armed — a
/// shrunk configs/mesh16_overload.cfg (shorter windows, same knobs).
SimConfig overload_cfg() {
  SimConfig cfg;
  cfg.topology = TopologyKind::kMesh2D;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.mesh_concentration = 1;
  cfg.arch = SwitchArch::kAdvanced2Vc;
  cfg.load = 1.2;
  cfg.warmup = 500_us;
  cfg.measure = 4_ms;
  cfg.drain = 2_ms;
  cfg.seed = 1;
  cfg.reservable_fraction = 0.4;
  cfg.video.frame_period = 2_ms;
  cfg.video_frame_budget = 2_ms;
  cfg.expiry_drop = true;
  cfg.expiry_abort_ratio = 0.3;
  cfg.admit_retry_max = 5;
  cfg.admit_retry_backoff = 50_us;
  cfg.shed_highwater = 0.9;
  cfg.fault.audit_epoch = 500_us;
  return cfg;
}

/// O1's two phases: an arrival storm against a full reservation ledger,
/// then partial relief.
Scenario overload_scenario() {
  Scenario scn;
  scn.phases.resize(2);
  scn.phases[0].load = 1.2;
  scn.phases[0].flow_arrivals_per_sec = 8000.0;
  scn.phases[0].flow_departures_per_sec = 400.0;
  scn.phases[1].start = 2_ms;
  scn.phases[1].load = 0.7;
  scn.phases[1].flow_arrivals_per_sec = 500.0;
  scn.phases[1].flow_departures_per_sec = 400.0;
  return scn;
}

TEST(OverloadTest, DegradationCountersAreDeterministicAcrossSameSeedRuns) {
  auto run_once = [] {
    NetworkSimulator net(overload_cfg());
    RunController controller(net, overload_scenario());
    return controller.run();
  };
  const ScenarioReport a = run_once();
  const ScenarioReport b = run_once();

  // The run exercised the degradation stack, not just the happy path.
  const SimReport::DegradationReport& d = a.total.degradation;
  EXPECT_GT(d.expired_packets, 0u);
  EXPECT_GT(d.expired_bytes, d.expired_packets);  // multi-byte packets
  EXPECT_GT(d.admit_retries, 0u);
  EXPECT_GT(d.audits_passed, 0u);

  // Bit-identical across same-seed runs: every counter and every SLO
  // metric, down to the doubles.
  const SimReport::DegradationReport& e = b.total.degradation;
  EXPECT_EQ(d.expired_packets, e.expired_packets);
  EXPECT_EQ(d.expired_bytes, e.expired_bytes);
  EXPECT_EQ(d.flows_aborted, e.flows_aborted);
  EXPECT_EQ(d.frames_dropped, e.frames_dropped);
  EXPECT_EQ(d.messages_refused, e.messages_refused);
  EXPECT_EQ(d.admit_retries, e.admit_retries);
  EXPECT_EQ(d.admit_retries_exhausted, e.admit_retries_exhausted);
  EXPECT_EQ(d.flows_readmitted, e.flows_readmitted);
  EXPECT_EQ(d.flows_shed_highwater, e.flows_shed_highwater);
  EXPECT_EQ(d.audits_passed, e.audits_passed);
  EXPECT_EQ(a.total.events_processed, b.total.events_processed);
  EXPECT_EQ(a.total.packets_delivered, b.total.packets_delivered);
  for (const TrafficClass c : all_traffic_classes()) {
    EXPECT_EQ(a.total.of(c).expired_packets, b.total.of(c).expired_packets)
        << to_string(c);
    EXPECT_EQ(a.total.of(c).deadline_miss_rate, b.total.of(c).deadline_miss_rate)
        << to_string(c);
    EXPECT_EQ(a.total.of(c).goodput_bytes_per_sec,
              b.total.of(c).goodput_bytes_per_sec)
        << to_string(c);
    EXPECT_EQ(a.total.of(c).p999_packet_latency_us,
              b.total.of(c).p999_packet_latency_us)
        << to_string(c);
  }
}

TEST(OverloadTest, RetryStormHandsBackEveryReservedByte) {
  NetworkSimulator net(overload_cfg());
  RunController controller(net, overload_scenario());
  const ScenarioReport rep = controller.run();

  // The backpressure path ran hot: rejected arrivals retried, some were
  // readmitted, and the auditor held at every epoch along the way.
  const SimReport::DegradationReport& d = rep.total.degradation;
  EXPECT_GT(d.admit_retries, 0u);
  EXPECT_GE(d.admit_retries, d.flows_readmitted);
  EXPECT_GT(d.audits_passed, 0u);

  // §3.2 exact rollback survives the storm: retries, readmissions,
  // high-water sheds and expiry aborts all balance to exactly zero
  // reserved bytes after teardown — no epsilon.
  EXPECT_EQ(rep.reserved_bps_after_teardown, 0.0);
  EXPECT_EQ(net.admission().admitted_flows(), 0u);
}

TEST(OverloadTest, ExpiryStrictlyLowersMultimediaMissRatePastCapacity) {
  // At 1.2x load without expiry, late packets clog NIC queues and push
  // every successor later still. Dropping already-late packets at the
  // head ("skip it, already late") must strictly improve the admitted
  // multimedia class's SLO miss rate — the degradation is graceful, not
  // just accounted. Single-phase static population: expiry needs no
  // churn, which isolates the NIC-side effect.
  SimConfig on = overload_cfg();
  on.fault.audit_epoch = Duration::zero();  // isolate expiry
  SimConfig off = on;
  off.expiry_drop = false;
  off.expiry_abort_ratio = 0.0;

  NetworkSimulator net_on(on);
  const SimReport rep_on = net_on.run();
  NetworkSimulator net_off(off);
  const SimReport rep_off = net_off.run();

  EXPECT_GT(rep_on.degradation.expired_packets, 0u);
  EXPECT_EQ(rep_off.degradation.expired_packets, 0u);
  const ClassReport& mm_on = rep_on.of(TrafficClass::kMultimedia);
  const ClassReport& mm_off = rep_off.of(TrafficClass::kMultimedia);
  EXPECT_GT(mm_off.deadline_miss_rate, 0.0);
  EXPECT_LT(mm_on.deadline_miss_rate, mm_off.deadline_miss_rate);
  // Goodput (bytes that made their deadline) must not degrade either:
  // expiry spends the freed bandwidth on packets that can still arrive
  // in time.
  EXPECT_GE(mm_on.goodput_bytes_per_sec, mm_off.goodput_bytes_per_sec);
}

}  // namespace
}  // namespace dqos
