/// \file test_run_controller.cpp
/// Scenario-engine tests: phased execution, mid-run flow churn through
/// admission control, exact reservation rollback at teardown, and the
/// RunError lifecycle diagnostics. (The one-phase == legacy bit-identity
/// guard lives in test_determinism.cpp.)
#include "core/run_controller.hpp"

#include <gtest/gtest.h>

#include "core/network_simulator.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

/// mesh16 (configs/mesh16.cfg) with short windows so tests stay fast.
SimConfig mesh16() {
  SimConfig cfg;
  cfg.topology = TopologyKind::kMesh2D;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.mesh_concentration = 1;
  cfg.arch = SwitchArch::kAdvanced2Vc;
  cfg.load = 0.5;
  cfg.warmup = 500_us;
  cfg.measure = 3_ms;
  cfg.drain = 1_ms;
  cfg.seed = 1;
  return cfg;
}

/// The C1-style churn scenario: calm, churn burst, control-heavy recovery.
Scenario churn_scenario() {
  Scenario scn;
  scn.phases.resize(3);
  scn.phases[0].load = 0.4;
  scn.phases[1].start = 1_ms;
  scn.phases[1].load = 0.8;
  scn.phases[1].flow_arrivals_per_sec = 10000.0;  // ~10 arrivals in 1 ms
  scn.phases[1].flow_departures_per_sec = 800.0;
  scn.phases[2].start = 2_ms;
  scn.phases[2].load = 0.5;
  scn.phases[2].class_share = {0.4, 0.1, 0.25, 0.25};
  return scn;
}

TEST(RunControllerTest, ThreePhaseChurnRunsToCompletion) {
  NetworkSimulator net(mesh16());
  RunController controller(net, churn_scenario());
  const ScenarioReport rep = controller.run();

  // The run did real work and kept the paper's hard invariant.
  EXPECT_GT(rep.total.packets_delivered, 10'000u);
  EXPECT_EQ(rep.total.out_of_order, 0u);

  ASSERT_EQ(rep.phases.size(), 3u);
  std::uint64_t arrivals = 0, departures = 0;
  for (const PhaseReport& ph : rep.phases) {
    EXPECT_LT(ph.start, ph.end) << "phase " << ph.index;
    arrivals += ph.churn_arrivals;
    departures += ph.churn_departures;
    // Every phase delivered control traffic within its own window.
    EXPECT_GT(ph.of(TrafficClass::kControl).packets, 0u)
        << "phase " << ph.index;
  }
  // The burst phase admitted flows mid-run; churn is confined to phase 1's
  // window (departures of its flows may land in phase 2).
  EXPECT_GT(rep.phases[1].churn_arrivals, 0u);
  EXPECT_EQ(rep.phases[0].churn_arrivals, 0u);
  EXPECT_GT(arrivals, 0u);
  EXPECT_GE(arrivals, departures);

  // §3.2 exact rollback: after teardown the admission ledger is at exactly
  // zero — mid-run admits, departures and the drain all balanced out.
  EXPECT_GT(rep.flows_released, 0u);
  EXPECT_EQ(rep.reserved_bps_after_teardown, 0.0);
  EXPECT_EQ(net.admission().admitted_flows(), 0u);
}

TEST(RunControllerTest, PhaseWindowsPartitionMeasurement) {
  NetworkSimulator net(mesh16());
  RunController controller(net, churn_scenario());
  const ScenarioReport rep = controller.run();
  ASSERT_EQ(rep.phases.size(), 3u);
  for (std::size_t i = 1; i < rep.phases.size(); ++i) {
    EXPECT_EQ(rep.phases[i].start, rep.phases[i - 1].end);
  }
  EXPECT_EQ(rep.phases[1].end - rep.phases[1].start, 1_ms);
}

TEST(RunControllerTest, PhaseLoadsShapeOfferedTraffic) {
  NetworkSimulator net(mesh16());
  RunController controller(net, churn_scenario());
  const ScenarioReport rep = controller.run();
  // Phase 1 runs at 2x phase 0's load: the Poisson control sources track
  // the retarget closely (the heavy-tailed self-similar classes are too
  // bursty to compare over 1 ms windows).
  const double p0 =
      rep.phases[0].of(TrafficClass::kControl).offered_bytes_per_sec;
  const double p1 =
      rep.phases[1].of(TrafficClass::kControl).offered_bytes_per_sec;
  EXPECT_GT(p0, 0.0);
  EXPECT_GT(p1, p0 * 1.5);
  EXPECT_LT(p1, p0 * 2.5);
}

TEST(RunControllerTest, ChurnFreeScenarioLeavesLegacyLedgerAlone) {
  // A pure single-phase scenario keeps the legacy post-run behaviour: the
  // static population's reservations stay inspectable after the run.
  NetworkSimulator net(mesh16());
  RunController controller(net, Scenario::single_phase(net.config()));
  const ScenarioReport rep = controller.run();
  EXPECT_EQ(rep.flows_released, 0u);
  EXPECT_GT(net.admission().admitted_flows(), 0u);
  EXPECT_GT(rep.reserved_bps_after_teardown, 0.0);
}

TEST(RunControllerTest, CtorThrowsOnBadScenario) {
  NetworkSimulator net(mesh16());
  Scenario empty;
  EXPECT_THROW(RunController(net, empty), RunError);

  Scenario unsorted = churn_scenario();
  unsorted.phases[2].start = 500_us;  // before phase 1
  EXPECT_THROW(RunController(net, unsorted), RunError);

  Scenario late = churn_scenario();
  late.phases[2].start = 10_ms;  // past the 3 ms measurement window
  EXPECT_THROW(RunController(net, late), RunError);

  SimConfig no_video = mesh16();
  no_video.enable_video = false;
  NetworkSimulator net2(no_video);
  Scenario churn = churn_scenario();
  EXPECT_THROW(RunController(net2, churn), RunError);
}

TEST(RunControllerTest, SecondRunOnSameSimulatorThrows) {
  NetworkSimulator net(mesh16());
  RunController a(net, Scenario::single_phase(net.config()));
  (void)a.run();
  RunController b(net, Scenario::single_phase(net.config()));
  EXPECT_THROW((void)b.run(), RunError);
}

TEST(RunControllerTest, ChurnIsDeterministicForSameSeed) {
  auto run_once = [] {
    NetworkSimulator net(mesh16());
    RunController controller(net, churn_scenario());
    return controller.run();
  };
  const ScenarioReport a = run_once();
  const ScenarioReport b = run_once();
  EXPECT_EQ(a.total.events_processed, b.total.events_processed);
  EXPECT_EQ(a.total.packets_delivered, b.total.packets_delivered);
  EXPECT_EQ(a.flows_released, b.flows_released);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.phases[i].churn_arrivals, b.phases[i].churn_arrivals);
    EXPECT_EQ(a.phases[i].churn_rejected, b.phases[i].churn_rejected);
    EXPECT_EQ(a.phases[i].churn_departures, b.phases[i].churn_departures);
  }
}

}  // namespace
}  // namespace dqos
