#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dqos {
namespace {

using namespace dqos::literals;

SimConfig micro(SwitchArch arch, double load) {
  SimConfig cfg;
  cfg.arch = arch;
  cfg.load = load;
  cfg.topology = TopologyKind::kSingleSwitch;
  cfg.single_switch_hosts = 4;
  cfg.warmup = 100_us;
  cfg.measure = 1_ms;
  cfg.drain = 500_us;
  cfg.enable_video = false;  // keep micro runs fast
  return cfg;
}

TEST(RunSweep, CoversEveryCombination) {
  const SwitchArch archs[] = {SwitchArch::kIdeal, SwitchArch::kSimple2Vc};
  const double loads[] = {0.2, 0.5};
  const auto points = run_sweep(micro(SwitchArch::kIdeal, 0.2), archs, loads);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].arch, SwitchArch::kIdeal);
  EXPECT_DOUBLE_EQ(points[0].load, 0.2);
  EXPECT_EQ(points[3].arch, SwitchArch::kSimple2Vc);
  EXPECT_DOUBLE_EQ(points[3].load, 0.5);
  for (const auto& p : points) EXPECT_GT(p.report.packets_delivered, 0u);
}

TEST(RunSweep, TweakHookAdjustsConfig) {
  const SwitchArch archs[] = {SwitchArch::kIdeal};
  const double loads[] = {0.3};
  bool tweaked = false;
  const auto points =
      run_sweep(micro(SwitchArch::kIdeal, 0.3), archs, loads, [&](SimConfig& cfg) {
        tweaked = true;
        cfg.seed = 777;
      });
  EXPECT_TRUE(tweaked);
  ASSERT_EQ(points.size(), 1u);
}

TEST(PrintSeries, ProducesTableAndCsv) {
  const SwitchArch archs[] = {SwitchArch::kIdeal, SwitchArch::kAdvanced2Vc};
  const double loads[] = {0.2, 0.4};
  const auto points = run_sweep(micro(SwitchArch::kIdeal, 0.2), archs, loads);
  const std::string csv_path = testing::TempDir() + "/dqos_series.csv";
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_series(tmp, points, "Control latency", "us", control_latency_us, 1,
               csv_path);
  std::rewind(tmp);
  std::string all;
  char buf[512];
  while (std::fgets(buf, sizeof buf, tmp)) all += buf;
  std::fclose(tmp);
  EXPECT_NE(all.find("Control latency"), std::string::npos);
  EXPECT_NE(all.find("Ideal"), std::string::npos);
  EXPECT_NE(all.find("0.20"), std::string::npos);

  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "load,Ideal,Advanced 2 VCs");
  int rows = 0;
  std::string line;
  while (std::getline(csv, line)) ++rows;
  EXPECT_EQ(rows, 2);
  std::remove(csv_path.c_str());
}

TEST(PrintCdf, RendersCurve) {
  SampleSet samples;
  for (int i = 1; i <= 100; ++i) samples.add(i);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  print_cdf(tmp, samples, "test cdf", 5);
  std::rewind(tmp);
  std::string all;
  char buf[256];
  while (std::fgets(buf, sizeof buf, tmp)) all += buf;
  std::fclose(tmp);
  EXPECT_NE(all.find("test cdf"), std::string::npos);
  EXPECT_NE(all.find("P[X<=x]"), std::string::npos);
  EXPECT_NE(all.find("1.0000"), std::string::npos);
}

TEST(MetricAccessors, ComputeFromReport) {
  SimReport rep;
  rep.classes[0].avg_packet_latency_us = 42.0;
  rep.classes[0].offered_bytes_per_sec = 100.0;
  rep.classes[0].throughput_bytes_per_sec = 80.0;
  rep.classes[1].avg_message_latency_us = 10'000.0;
  rep.classes[2].offered_bytes_per_sec = 200.0;
  rep.classes[2].throughput_bytes_per_sec = 100.0;
  rep.classes[3].offered_bytes_per_sec = 0.0;
  EXPECT_DOUBLE_EQ(control_latency_us(rep), 42.0);
  EXPECT_DOUBLE_EQ(control_throughput_frac(rep), 0.8);
  EXPECT_DOUBLE_EQ(video_frame_latency_ms(rep), 10.0);
  EXPECT_DOUBLE_EQ(best_effort_throughput_frac(rep), 0.5);
  EXPECT_DOUBLE_EQ(background_throughput_frac(rep), 0.0);  // no offered
}

TEST(HasFlag, MatchesExactToken) {
  const char* argv[] = {"prog", "--paper", "-x"};
  EXPECT_TRUE(has_flag(3, const_cast<char**>(argv), "--paper"));
  EXPECT_FALSE(has_flag(3, const_cast<char**>(argv), "--pap"));
  EXPECT_FALSE(has_flag(1, const_cast<char**>(argv), "--paper"));
}

}  // namespace
}  // namespace dqos
