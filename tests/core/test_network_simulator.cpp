#include "core/network_simulator.hpp"

#include <gtest/gtest.h>

namespace dqos {
namespace {

using namespace dqos::literals;

/// Tiny-but-real configuration: full Table 1 mix on a 2x4-host Clos.
SimConfig tiny(SwitchArch arch, double load) {
  SimConfig cfg;
  cfg.arch = arch;
  cfg.load = load;
  cfg.num_leaves = 2;
  cfg.hosts_per_leaf = 4;
  cfg.num_spines = 4;
  cfg.warmup = 500_us;
  cfg.measure = 4_ms;
  cfg.drain = 1_ms;
  return cfg;
}

TEST(SimConfigTest, Presets) {
  const SimConfig p = SimConfig::paper(SwitchArch::kIdeal, 0.7);
  EXPECT_EQ(p.num_hosts(), 128u);
  EXPECT_EQ(p.arch, SwitchArch::kIdeal);
  EXPECT_DOUBLE_EQ(p.load, 0.7);
  p.validate();
  const SimConfig s = SimConfig::small(SwitchArch::kSimple2Vc, 0.5);
  EXPECT_EQ(s.num_hosts(), 32u);
  s.validate();
}

TEST(SimConfigTest, NumHostsPerTopology) {
  SimConfig cfg;
  cfg.topology = TopologyKind::kKaryNTree;
  cfg.kary_k = 4;
  cfg.kary_n = 2;
  EXPECT_EQ(cfg.num_hosts(), 16u);
  cfg.topology = TopologyKind::kSingleSwitch;
  cfg.single_switch_hosts = 10;
  EXPECT_EQ(cfg.num_hosts(), 10u);
}

TEST(SimConfigDeathTest, ValidateRejectsNonsense) {
  SimConfig cfg;
  cfg.load = 0.0;
  EXPECT_DEATH(cfg.validate(), "precondition");
  SimConfig cfg2;
  cfg2.buffer_bytes_per_vc = 64;  // smaller than one MTU packet
  EXPECT_DEATH(cfg2.validate(), "precondition");
}

class EndToEnd : public testing::TestWithParam<SwitchArch> {};

TEST_P(EndToEnd, DeliversTrafficWithoutReordering) {
  NetworkSimulator net(tiny(GetParam(), 0.6));
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 1000u);
  // The paper's hard invariant: never out-of-order within a flow.
  EXPECT_EQ(rep.out_of_order, 0u);
  // All four classes saw traffic.
  for (const TrafficClass c : all_traffic_classes()) {
    EXPECT_GT(rep.of(c).packets, 0u) << to_string(c);
  }
}

TEST_P(EndToEnd, ControlLatencyBounded) {
  NetworkSimulator net(tiny(GetParam(), 0.4));
  const SimReport rep = net.run();
  const auto& ctrl = rep.of(TrafficClass::kControl);
  EXPECT_GT(ctrl.packets, 100u);
  // At 40% load control latency stays far below a millisecond on all archs.
  EXPECT_LT(ctrl.avg_packet_latency_us, 1000.0);
  EXPECT_GT(ctrl.avg_packet_latency_us, 2.0);  // at least wire time
}

INSTANTIATE_TEST_SUITE_P(Archs, EndToEnd,
                         testing::ValuesIn(all_switch_archs()),
                         [](const testing::TestParamInfo<SwitchArch>& pi) {
                           std::string n{to_string(pi.param)};
                           for (char& ch : n) {
                             if (ch == ' ') ch = '_';
                           }
                           return n;
                         });

TEST(NetworkSimulatorTest, DeterministicForSameSeed) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.8);
  cfg.seed = 42;
  NetworkSimulator a(cfg);
  NetworkSimulator b(cfg);
  const SimReport ra = a.run();
  const SimReport rb = b.run();
  EXPECT_EQ(ra.packets_delivered, rb.packets_delivered);
  EXPECT_EQ(ra.events_processed, rb.events_processed);
  EXPECT_EQ(ra.order_errors, rb.order_errors);
  for (const TrafficClass c : all_traffic_classes()) {
    EXPECT_DOUBLE_EQ(ra.of(c).avg_packet_latency_us, rb.of(c).avg_packet_latency_us);
  }
}

TEST(NetworkSimulatorTest, SeedChangesTraffic) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.8);
  cfg.seed = 1;
  NetworkSimulator a(cfg);
  cfg.seed = 2;
  NetworkSimulator b(cfg);
  EXPECT_NE(a.run().packets_delivered, b.run().packets_delivered);
}

TEST(NetworkSimulatorTest, ClockSkewInvariance) {
  // §3.3: the TTD mechanism makes scheduling independent of clock offsets.
  SimConfig sync = tiny(SwitchArch::kAdvanced2Vc, 0.9);
  SimConfig skew = sync;
  skew.max_clock_skew = 10_ms;  // offsets far larger than any latency
  NetworkSimulator a(sync);
  NetworkSimulator b(skew);
  const SimReport ra = a.run();
  const SimReport rb = b.run();
  EXPECT_EQ(ra.packets_delivered, rb.packets_delivered);
  EXPECT_EQ(ra.order_errors, rb.order_errors);
  for (const TrafficClass c : all_traffic_classes()) {
    EXPECT_DOUBLE_EQ(ra.of(c).avg_packet_latency_us, rb.of(c).avg_packet_latency_us);
    EXPECT_DOUBLE_EQ(ra.of(c).jitter_us, rb.of(c).jitter_us);
  }
}

TEST(NetworkSimulatorTest, IdealHasNoOrderErrors) {
  NetworkSimulator net(tiny(SwitchArch::kIdeal, 1.0));
  const SimReport rep = net.run();
  EXPECT_EQ(rep.order_errors, 0u);
  EXPECT_EQ(rep.takeovers, 0u);
}

TEST(NetworkSimulatorTest, TakeoversOnlyOnAdvanced) {
  NetworkSimulator simple(tiny(SwitchArch::kSimple2Vc, 1.0));
  EXPECT_EQ(simple.run().takeovers, 0u);
}

TEST(NetworkSimulatorTest, EdfBeatsTraditionalOnControlLatencyUnderLoad) {
  // The paper's headline qualitative result (Fig. 2).
  NetworkSimulator trad(tiny(SwitchArch::kTraditional2Vc, 1.0));
  NetworkSimulator adv(tiny(SwitchArch::kAdvanced2Vc, 1.0));
  const double lat_trad = trad.run().of(TrafficClass::kControl).avg_packet_latency_us;
  const double lat_adv = adv.run().of(TrafficClass::kControl).avg_packet_latency_us;
  EXPECT_LT(lat_adv, lat_trad);
}

TEST(NetworkSimulatorTest, VideoFrameLatencyNearBudget) {
  // Fig. 3: EDF architectures pin frame latency at ~the 10 ms budget.
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.8);
  cfg.measure = 30_ms;  // enough frames
  cfg.drain = 12_ms;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  const auto& mm = rep.of(TrafficClass::kMultimedia);
  ASSERT_GT(mm.messages, 20u);
  EXPECT_GT(mm.avg_message_latency_us, 7000.0);
  EXPECT_LT(mm.avg_message_latency_us, 13000.0);
}

TEST(NetworkSimulatorTest, AdmissionRejectsOnlyWhenSaturated) {
  NetworkSimulator net(tiny(SwitchArch::kAdvanced2Vc, 0.5));
  net.prepare_workload();  // admit the static mix (run() would, lazily)
  EXPECT_GT(net.admission().admitted_flows(), 0u);
  const SimReport rep = net.run();
  EXPECT_EQ(rep.flows_rejected, 0u);
}

TEST(NetworkSimulatorTest, SingleSwitchTopologyWorks) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.7);
  cfg.topology = TopologyKind::kSingleSwitch;
  cfg.single_switch_hosts = 8;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 100u);
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(NetworkSimulatorTest, KaryTreeTopologyWorks) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.5);
  cfg.topology = TopologyKind::kKaryNTree;
  cfg.kary_k = 2;
  cfg.kary_n = 3;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 100u);
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(NetworkSimulatorTest, BoundedFanoutCapsPerDestinationFlowState) {
  // fanout=4 on a 16-host tree: each host opens control/unregulated flows
  // to at most 4 pattern-drawn peers instead of all 15, so the admitted
  // static mix is O(hosts * fanout) — the datacenter-scale memory contract
  // (DESIGN.md §13) — and the run still completes in order.
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.5);
  cfg.topology = TopologyKind::kKaryNTree;
  cfg.kary_k = 4;
  cfg.kary_n = 2;
  cfg.enable_video = false;  // per-stream anyway; isolate per-dest classes
  cfg.fanout = 4;
  NetworkSimulator net(cfg);
  net.prepare_workload();
  const std::size_t admitted = net.admission().admitted_flows();
  EXPECT_GT(admitted, 0u);
  // 3 per-destination classes (control, BE, background) x 16 hosts x <= 4
  // peers; all-to-all would open 16 x 15 x 3 = 720.
  EXPECT_LE(admitted, 16u * 4u * 3u);
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 100u);
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(NetworkSimulatorTest, Mesh2DTopologyWorks) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.3);
  cfg.topology = TopologyKind::kMesh2D;
  cfg.mesh_width = 3;
  cfg.mesh_height = 3;
  cfg.mesh_concentration = 1;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 100u);
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(NetworkSimulatorTest, HotSpotPatternRuns) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.5);
  cfg.pattern.kind = PatternKind::kHotSpot;
  cfg.pattern.hotspot_fraction = 0.4;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 100u);
  EXPECT_EQ(rep.out_of_order, 0u);
  // The hot node receives far more than an average node.
  std::uint64_t hot = net.host(0).packets_received();
  std::uint64_t other = net.host(5).packets_received();
  EXPECT_GT(hot, other * 2);
}

TEST(NetworkSimulatorTest, ProbeSeriesPopulated) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.8);
  cfg.probe_interval = 50_us;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  ASSERT_NE(rep.queue_depth, nullptr);
  ASSERT_NE(rep.injected_bytes, nullptr);
  EXPECT_GT(rep.injected_bytes->bin_stats().sum(), 0.0);
  EXPECT_GT(rep.queue_depth->bin_stats().max(), 0.0);
}

TEST(NetworkSimulatorTest, ProbesOffByDefault) {
  NetworkSimulator net(tiny(SwitchArch::kIdeal, 0.3));
  const SimReport rep = net.run();
  EXPECT_EQ(rep.queue_depth, nullptr);
  EXPECT_EQ(rep.injected_bytes, nullptr);
}

TEST(NetworkSimulatorTest, TraditionalMultiVcConfig) {
  // Ablation A5: Traditional with one VC per class and an arbitration table.
  SimConfig cfg = tiny(SwitchArch::kTraditional2Vc, 0.8);
  cfg.num_vcs = 4;
  cfg.vc_weights = {1, 1, 1, 1};
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 1000u);
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(NetworkSimulatorTest, PaperScaleConstructionWiring) {
  // Build (not run) the full 128-endpoint platform: checks id layout,
  // wiring contracts and admission bookkeeping at the paper's scale.
  SimConfig cfg = SimConfig::paper(SwitchArch::kAdvanced2Vc, 1.0);
  NetworkSimulator net(cfg);
  net.prepare_workload();
  EXPECT_EQ(net.num_hosts(), 128u);
  EXPECT_EQ(net.num_switches(), 24u);  // 16 leaves + 8 spines
  // Every host opened control flows to all 127 peers plus video and two
  // unregulated aggregates.
  EXPECT_GT(net.admission().admitted_flows(), 128u * 127u);
  EXPECT_EQ(net.topology().num_ports(net.topology().switch_id(0)), 16u);
}

TEST(NetworkSimulatorTest, TransposePatternOnSquareHostCount) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.4);
  cfg.num_leaves = 4;
  cfg.hosts_per_leaf = 4;  // 16 hosts: a perfect square
  cfg.pattern.kind = PatternKind::kTranspose;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 100u);
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(NetworkSimulatorTest, BitComplementPatternOnPow2Hosts) {
  SimConfig cfg = tiny(SwitchArch::kSimple2Vc, 0.4);
  cfg.pattern.kind = PatternKind::kBitComplement;  // 8 hosts = 2^3
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.packets_delivered, 100u);
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(NetworkSimulatorTest, LinkUtilizationTiersPopulated) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.8);
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.util_injection.mean, 0.1);
  EXPECT_GT(rep.util_fabric.mean, 0.0);
  EXPECT_GT(rep.util_delivery.mean, 0.1);
  EXPECT_LE(rep.util_injection.max, 1.0 + 1e-9);
  EXPECT_GE(rep.util_injection.max, rep.util_injection.mean);
}

TEST(NetworkSimulatorTest, DeadlineMissAccountingSane) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.6);
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  // Control deadlines are link-rate tight: some misses are expected under
  // contention, but the regulated video class must rarely miss its 10ms.
  const auto& mm = rep.of(TrafficClass::kMultimedia);
  EXPECT_LT(mm.deadline_miss_fraction, 0.05);
  EXPECT_GT(mm.avg_slack_us, 0.0);
}

TEST(NetworkSimulatorTest, VideoTraceFileDrivesMultimedia) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.5);
  cfg.video_trace_path = DQOS_DATA_DIR "/mpeg4_sample.trace";
  cfg.measure = 30_ms;
  cfg.drain = 12_ms;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  const auto& mm = rep.of(TrafficClass::kMultimedia);
  EXPECT_GT(mm.messages, 10u);
  // Frame-budget deadlines still pin frame latency at the budget.
  EXPECT_NEAR(mm.avg_message_latency_us, 10'000.0, 1'000.0);
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(NetworkSimulatorDeathTest, MissingVideoTraceAborts) {
  SimConfig cfg = tiny(SwitchArch::kAdvanced2Vc, 0.5);
  cfg.video_trace_path = "/nonexistent/never.trace";
  EXPECT_DEATH(NetworkSimulator net(cfg), "precondition");
}

TEST(NetworkSimulatorTest, RunTwiceThrowsRunError) {
  // The calendar and metric windows are single-shot: a second run() is a
  // usage error reported like a ConfigError, not a contract abort.
  NetworkSimulator net(tiny(SwitchArch::kIdeal, 0.3));
  (void)net.run();
  EXPECT_THROW((void)net.run(), RunError);
  try {
    (void)net.run();
    FAIL() << "second run() must throw";
  } catch (const RunError& e) {
    EXPECT_NE(std::string(e.what()).find("already run"), std::string::npos);
  }
}

}  // namespace
}  // namespace dqos
