/// \file test_determinism.cpp
/// Golden-determinism guards for the event kernel.
///
/// The simulator's reproducibility contract is that two events scheduled
/// for the same instant fire in scheduling order — (time, sequence) — and
/// that nothing else (heap layout, allocator, hash-set iteration, thread
/// fan-out of independent replicas) can perturb a run. These tests pin the
/// contract with golden hashes captured on the pre-InlineTask kernel
/// (priority_queue + std::function + unordered_set tombstones): any kernel
/// or sweep-runner change that alters the fire order, the simulated
/// results, or even the CSV formatting of a Figure-2 style sweep must
/// update these constants *consciously*.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/network_simulator.hpp"
#include "core/run_controller.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

/// FNV-1a over a stream of 64-bit words.
class StreamHash {
 public:
  void mix(std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (w >> (8 * i)) & 0xffULL;
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// The mesh16 platform (configs/mesh16.cfg) with shortened phases so the
/// test stays fast; seed pinned.
SimConfig mesh16_config() {
  SimConfig cfg;
  cfg.topology = TopologyKind::kMesh2D;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.mesh_concentration = 1;
  cfg.arch = SwitchArch::kAdvanced2Vc;
  cfg.load = 0.5;
  cfg.warmup = 500_us;
  cfg.measure = 2_ms;
  cfg.drain = 1_ms;
  cfg.seed = 1;
  return cfg;
}

/// Wires `h` as the simulator fire hook via a raw (fn, ctx) Callback;
/// `h` must outlive the run.
void hook_hash(NetworkSimulator& net, StreamHash& h) {
  net.sim().set_fire_hook({[](void* ctx, std::uint64_t seq, TimePoint t) {
                             auto* hash = static_cast<StreamHash*>(ctx);
                             hash->mix(seq);
                             hash->mix(static_cast<std::uint64_t>(t.ps()));
                           },
                           &h});
}

// Golden values captured on the pre-change kernel (priority_queue-based,
// PR 1 tree). A mismatch means the fire order or simulation outcome moved.
constexpr std::uint64_t kGoldenMesh16FireOrderHash = 0xe2e7ad102854c2e4ULL;
constexpr std::uint64_t kGoldenFig2CsvHash = 0x291d89f300f86c23ULL;

TEST(GoldenDeterminism, Mesh16EventFireOrderHash) {
  NetworkSimulator net(mesh16_config());
  StreamHash h;
  hook_hash(net, h);
  const SimReport rep = net.run();
  EXPECT_GT(rep.events_processed, 100'000u);  // the run actually did work
  EXPECT_EQ(h.value(), kGoldenMesh16FireOrderHash)
      << "event fire order changed: seq/time stream hash = " << std::hex
      << h.value();
}

TEST(GoldenDeterminism, OnePhaseScenarioMatchesLegacyRun) {
  // The scenario engine's compatibility contract: a one-phase scenario
  // schedules zero extra events, so RunController(single_phase) replays
  // the legacy run() bit-for-bit — same fire-order stream, same goldens,
  // same per-class CSV bytes.
  auto fire_hash = [](NetworkSimulator& net) {
    auto h = std::make_unique<StreamHash>();
    hook_hash(net, *h);
    return h;
  };
  auto csv_bytes = [](const SimReport& rep) {
    std::string out;
    for (const TrafficClass c : all_traffic_classes()) {
      const ClassReport& r = rep.of(c);
      char row[256];
      std::snprintf(row, sizeof row, "%s,%llu,%llu,%.3f,%.3f,%.1f,%.1f\n",
                    std::string(to_string(c)).c_str(),
                    static_cast<unsigned long long>(r.packets),
                    static_cast<unsigned long long>(r.messages),
                    r.avg_packet_latency_us, r.p99_packet_latency_us,
                    r.throughput_bytes_per_sec, r.offered_bytes_per_sec);
      out += row;
    }
    return out;
  };

  NetworkSimulator legacy(mesh16_config());
  const auto legacy_hash = fire_hash(legacy);
  const SimReport legacy_rep = legacy.run();

  NetworkSimulator scenario(mesh16_config());
  const auto scenario_hash = fire_hash(scenario);
  RunController controller(scenario,
                           Scenario::single_phase(scenario.config()));
  const ScenarioReport srep = controller.run();

  EXPECT_EQ(scenario_hash->value(), legacy_hash->value());
  EXPECT_EQ(legacy_hash->value(), kGoldenMesh16FireOrderHash);
  EXPECT_EQ(csv_bytes(srep.total), csv_bytes(legacy_rep));
  ASSERT_EQ(srep.phases.size(), 1u);
  EXPECT_EQ(srep.phases.front().of(TrafficClass::kControl).packets,
            legacy_rep.of(TrafficClass::kControl).packets);
}

TEST(GoldenDeterminism, Mesh16RerunsAreBitIdentical) {
  // Same seed, two replicas: byte-for-byte identical fire-order streams.
  auto run_hash = [] {
    NetworkSimulator net(mesh16_config());
    StreamHash h;
    hook_hash(net, h);
    (void)net.run();
    return h.value();
  };
  EXPECT_EQ(run_hash(), run_hash());
}

TEST(GoldenDeterminism, Fig2StyleSweepCsvBytes) {
  // A reduced Figure-2 sweep through the real harness (run_sweep +
  // print_series + CsvWriter): hashes the CSV bytes, so this guards the
  // sweep fan-out, the metric math, and the formatting in one bite.
  SimConfig base = SimConfig::small(SwitchArch::kIdeal, 1.0);
  base.warmup = 500_us;
  base.measure = 2_ms;
  base.drain = 1_ms;
  const SwitchArch archs[] = {SwitchArch::kIdeal, SwitchArch::kAdvanced2Vc};
  const double loads[] = {0.4, 1.0};
  const auto points = run_sweep(base, archs, loads);
  ASSERT_EQ(points.size(), 4u);

  const std::string csv_path = "golden_fig2_sweep.csv";
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  print_series(sink, points, "golden", "us", control_latency_us, 1, csv_path);
  std::fclose(sink);

  std::FILE* f = std::fopen(csv_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  StreamHash h;
  std::uint64_t bytes = 0;
  for (int c = std::fgetc(f); c != EOF; c = std::fgetc(f)) {
    h.mix(static_cast<std::uint64_t>(c));
    ++bytes;
  }
  std::fclose(f);
  EXPECT_GT(bytes, 40u);
  EXPECT_EQ(h.value(), kGoldenFig2CsvHash)
      << "Fig2-style CSV bytes changed: hash = " << std::hex << h.value();
}

}  // namespace
}  // namespace dqos
