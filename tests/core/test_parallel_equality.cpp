/// \file test_parallel_equality.cpp
/// Bit-equality guards for the sharded conservative-parallel engine
/// (DESIGN.md §12).
///
/// The engine's contract is stronger than "statistically equivalent": a
/// sharded run must replay the serial run byte-for-byte — same event fire
/// order (seq/time stream), same metrics, same CSV output — at every shard
/// count, with or without faults, overload machinery, or the invariant
/// auditor. These tests pin that contract against the same golden hashes
/// the serial kernel is pinned to, so a divergence anywhere in the window
/// merge, mailbox ordering, or deferred-effect replay fails loudly.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/network_simulator.hpp"
#include "core/run_controller.hpp"
#include "fault/fault_injector.hpp"
#include "topo/partition.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

/// FNV-1a over a stream of 64-bit words (same as test_determinism.cpp).
class StreamHash {
 public:
  void mix(std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (w >> (8 * i)) & 0xffULL;
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Golden fire-order hash of the serial mesh16 run (test_determinism.cpp
/// owns the constant's provenance) — the parallel engine must reproduce it
/// exactly at every shard count.
constexpr std::uint64_t kGoldenMesh16FireOrderHash = 0xe2e7ad102854c2e4ULL;
constexpr std::uint64_t kGoldenFig2CsvHash = 0x291d89f300f86c23ULL;

/// Same platform as test_determinism.cpp's mesh16_config(), with the shard
/// count as a parameter.
SimConfig mesh16_config(std::uint32_t shards) {
  SimConfig cfg;
  cfg.topology = TopologyKind::kMesh2D;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.mesh_concentration = 1;
  cfg.arch = SwitchArch::kAdvanced2Vc;
  cfg.load = 0.5;
  cfg.warmup = 500_us;
  cfg.measure = 2_ms;
  cfg.drain = 1_ms;
  cfg.seed = 1;
  cfg.shards = shards;
  return cfg;
}

/// A small fat tree (4-ary 2-tree, 16 hosts) — the cross-shard cut runs
/// through the spine stage instead of a mesh row boundary.
SimConfig fat_tree_config(std::uint32_t shards) {
  SimConfig cfg;
  cfg.topology = TopologyKind::kKaryNTree;
  cfg.kary_k = 4;
  cfg.kary_n = 2;
  cfg.arch = SwitchArch::kAdvanced2Vc;
  cfg.load = 0.7;
  cfg.warmup = 500_us;
  cfg.measure = 2_ms;
  cfg.drain = 1_ms;
  cfg.seed = 7;
  cfg.shards = shards;
  return cfg;
}

/// Installs the hash as the fire hook on whichever engine the simulator
/// runs — the shard executor when sharded, the plain calendar otherwise.
void hook_hash(NetworkSimulator& net, StreamHash& h) {
  const Callback<void(std::uint64_t, TimePoint)> cb{
      [](void* ctx, std::uint64_t seq, TimePoint t) {
        auto* hash = static_cast<StreamHash*>(ctx);
        hash->mix(seq);
        hash->mix(static_cast<std::uint64_t>(t.ps()));
      },
      &h};
  if (ShardExecutor* engine = net.shard_engine()) {
    engine->set_fire_hook(cb);
  } else {
    net.sim().set_fire_hook(cb);
  }
}

/// Per-class result rows formatted exactly like the golden determinism
/// test, so "CSV bytes equal" means the figures would be byte-identical.
std::string csv_bytes(const SimReport& rep) {
  std::string out;
  for (const TrafficClass c : all_traffic_classes()) {
    const ClassReport& r = rep.of(c);
    char row[256];
    std::snprintf(row, sizeof row, "%s,%llu,%llu,%.3f,%.3f,%.1f,%.1f\n",
                  std::string(to_string(c)).c_str(),
                  static_cast<unsigned long long>(r.packets),
                  static_cast<unsigned long long>(r.messages),
                  r.avg_packet_latency_us, r.p99_packet_latency_us,
                  r.throughput_bytes_per_sec, r.offered_bytes_per_sec);
    out += row;
  }
  return out;
}

struct RunResult {
  std::uint64_t hash = 0;
  std::string csv;
  SimReport rep;
};

RunResult run_config(const SimConfig& cfg,
                     void (*script)(NetworkSimulator&) = nullptr) {
  NetworkSimulator net(cfg);
  StreamHash h;
  hook_hash(net, h);
  if (script != nullptr) script(net);
  RunResult r;
  r.rep = net.run();
  r.hash = h.value();
  r.csv = csv_bytes(r.rep);
  return r;
}

TEST(ParallelEquality, Mesh16GoldenHashAtEveryShardCount) {
  for (const std::uint32_t shards : {2u, 3u, 8u}) {
    const RunResult r = run_config(mesh16_config(shards));
    EXPECT_GT(r.rep.events_processed, 100'000u);
    EXPECT_EQ(r.hash, kGoldenMesh16FireOrderHash)
        << "shards=" << shards << ": fire order diverged, hash=" << std::hex
        << r.hash;
  }
}

TEST(ParallelEquality, Mesh16CsvMatchesSerial) {
  const RunResult serial = run_config(mesh16_config(1));
  for (const std::uint32_t shards : {2u, 3u, 8u}) {
    const RunResult par = run_config(mesh16_config(shards));
    EXPECT_EQ(par.csv, serial.csv) << "shards=" << shards;
    EXPECT_EQ(par.rep.events_processed, serial.rep.events_processed);
  }
}

TEST(ParallelEquality, FatTreeMatchesSerial) {
  const RunResult serial = run_config(fat_tree_config(1));
  for (const std::uint32_t shards : {2u, 3u}) {
    const RunResult par = run_config(fat_tree_config(shards));
    EXPECT_EQ(par.hash, serial.hash) << "shards=" << shards;
    EXPECT_EQ(par.csv, serial.csv) << "shards=" << shards;
  }
}

/// Scripts a transient link failure on a *cut* link (endpoints in
/// different shards of the 3-way mesh16 partition), plus a credit loss on
/// the same link, so fault handling and credit resync both cross the shard
/// boundary.
void script_cut_link_fault(NetworkSimulator& net) {
  const Topology& topo = net.topology();
  const Partition part = partition_topology(topo, 3);
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    const NodeId n = topo.switch_id(s);
    for (PortId p = 0; p < topo.num_ports(n); ++p) {
      const Endpoint peer = topo.peer(n, p);
      if (!peer.valid() || !topo.is_switch(peer.node)) continue;
      if (part.shard_of(n) == part.shard_of(peer.node)) continue;
      const Endpoint link{n, p};
      net.fault_injector().fail_link_at(TimePoint::from_ps(800_us .ps()),
                                        link, 300_us, /*permanent=*/false);
      net.fault_injector().lose_credits_at(TimePoint::from_ps(1500_us .ps()),
                                           link, /*vc=*/0, /*bytes=*/512);
      return;
    }
  }
  FAIL() << "no cut switch-switch link found in the 3-shard partition";
}

TEST(ParallelEquality, CutLinkFaultMatchesSerial) {
  auto fault_cfg = [](std::uint32_t shards) {
    SimConfig cfg = mesh16_config(shards);
    cfg.fault.enabled = true;            // arms recovery machinery
    cfg.fault.control_retry = false;     // required when sharded
    cfg.fault.credit_resync_window = 200_us;
    return cfg;
  };
  const RunResult serial = run_config(fault_cfg(1), &script_cut_link_fault);
  for (const std::uint32_t shards : {2u, 3u}) {
    const RunResult par =
        run_config(fault_cfg(shards), &script_cut_link_fault);
    EXPECT_EQ(par.hash, serial.hash) << "shards=" << shards;
    EXPECT_EQ(par.csv, serial.csv) << "shards=" << shards;
    EXPECT_EQ(par.rep.fault.credit_resyncs, serial.rep.fault.credit_resyncs);
    EXPECT_EQ(par.rep.fault.packets_dropped_link_down,
              serial.rep.fault.packets_dropped_link_down);
  }
}

/// The mesh16_faults.cfg storm: random link failures + credit losses with
/// the deadlock watchdog armed. Regression for a sharded-only false fire:
/// the watchdog's end-of-run check read events_pending() off the control
/// calendar, which is legitimately empty under sharding while data events
/// still sit on shard calendars — a packet queued at the horizon then
/// "deadlocked". The probe now spans every calendar.
TEST(ParallelEquality, FaultStormWatchdogMatchesSerial) {
  auto storm_cfg = [](std::uint32_t shards) {
    SimConfig cfg = mesh16_config(shards);
    cfg.warmup = 1_ms;
    cfg.measure = 10_ms;
    cfg.drain = 3_ms;
    cfg.fault.enabled = true;
    cfg.fault.seed = 7;
    cfg.fault.link_down_per_sec = 1000.0;
    cfg.fault.link_outage_mean = 300_us;
    cfg.fault.credit_loss_per_sec = 500.0;
    cfg.fault.credit_loss_bytes = 256;
    cfg.fault.credit_resync_window = 100_us;
    cfg.fault.control_retry = false;  // required when sharded
    cfg.fault.watchdog_interval = 1_ms;
    cfg.fault.watchdog_rounds = 5;
    return cfg;
  };
  const RunResult serial = run_config(storm_cfg(1));
  EXPECT_FALSE(serial.rep.fault.watchdog_fired);
  const RunResult par = run_config(storm_cfg(4));
  EXPECT_FALSE(par.rep.fault.watchdog_fired) << par.rep.fault.watchdog_report;
  EXPECT_EQ(par.hash, serial.hash);
  EXPECT_EQ(par.csv, serial.csv);
  EXPECT_EQ(par.rep.fault.credit_resyncs, serial.rep.fault.credit_resyncs);
}

TEST(ParallelEquality, OverloadBackpressureMatchesSerial) {
  auto overload_cfg = [](std::uint32_t shards) {
    SimConfig cfg = mesh16_config(shards);
    cfg.load = 1.4;                 // oversubscribed: expiry machinery fires
    cfg.expiry_drop = true;
    cfg.expiry_abort_ratio = 0.5;
    cfg.shed_highwater = 0.9;
    return cfg;
  };
  const RunResult serial = run_config(overload_cfg(1));
  const RunResult par = run_config(overload_cfg(2));
  EXPECT_EQ(par.hash, serial.hash);
  EXPECT_EQ(par.csv, serial.csv);
  EXPECT_EQ(par.rep.degradation.expired_packets,
            serial.rep.degradation.expired_packets);
  EXPECT_EQ(par.rep.degradation.flows_aborted,
            serial.rep.degradation.flows_aborted);
  EXPECT_GT(serial.rep.degradation.expired_packets, 0u)
      << "overload scenario too mild to exercise the expiry path";
}

TEST(ParallelEquality, AuditorPassesUnderSharding) {
  // Auditing schedules its own calendar events, so the audited stream has
  // its own fire order — it must still match serial-vs-sharded exactly.
  auto audit_cfg = [](std::uint32_t shards) {
    SimConfig cfg = mesh16_config(shards);
    cfg.fault.audit_epoch = 300_us;  // credit/custody audits during the run
    return cfg;
  };
  const RunResult serial = run_config(audit_cfg(1));
  const RunResult par = run_config(audit_cfg(3));
  EXPECT_GT(par.rep.degradation.audits_passed, 0u);
  EXPECT_EQ(par.rep.degradation.audits_passed,
            serial.rep.degradation.audits_passed);
  EXPECT_EQ(par.hash, serial.hash)
      << "auditor scheduling perturbed the sharded fire order";
  EXPECT_EQ(par.csv, serial.csv);
}

TEST(ParallelEquality, Fig2SweepCsvBytesUnderSharding) {
  // The reduced Figure-2 sweep from the golden determinism test, with every
  // point simulated on 2 shards: the CSV must hash to the same golden.
  SimConfig base = SimConfig::small(SwitchArch::kIdeal, 1.0);
  base.warmup = 500_us;
  base.measure = 2_ms;
  base.drain = 1_ms;
  base.shards = 2;
  const SwitchArch archs[] = {SwitchArch::kIdeal, SwitchArch::kAdvanced2Vc};
  const double loads[] = {0.4, 1.0};
  const auto points = run_sweep(base, archs, loads);
  ASSERT_EQ(points.size(), 4u);

  const std::string csv_path = "parallel_fig2_sweep.csv";
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  print_series(sink, points, "golden", "us", control_latency_us, 1, csv_path);
  std::fclose(sink);

  std::FILE* f = std::fopen(csv_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  StreamHash h;
  for (int c = std::fgetc(f); c != EOF; c = std::fgetc(f)) {
    h.mix(static_cast<std::uint64_t>(c));
  }
  std::fclose(f);
  EXPECT_EQ(h.value(), kGoldenFig2CsvHash)
      << "sharded Fig2 CSV bytes diverged: hash = " << std::hex << h.value();
}

TEST(ParallelEquality, HierAdmissionFatTreeMatchesSerial) {
  // Hierarchical admission on: the broker split moves ledger state, never
  // a route decision, so serial-vs-sharded bit-equality must hold exactly
  // as in flat mode (DESIGN.md §13 acceptance).
  auto hier_cfg = [](std::uint32_t shards) {
    SimConfig cfg = fat_tree_config(shards);
    cfg.hier_admission = true;
    return cfg;
  };
  const RunResult serial = run_config(hier_cfg(1));
  EXPECT_GT(serial.rep.events_processed, 50'000u);
  for (const std::uint32_t shards : {2u, 4u}) {
    const RunResult par = run_config(hier_cfg(shards));
    EXPECT_EQ(par.hash, serial.hash) << "shards=" << shards;
    EXPECT_EQ(par.csv, serial.csv) << "shards=" << shards;
  }
}

TEST(ParallelEquality, HierAdmissionChurnScenarioMatchesSerial) {
  // Churn admits/releases whole video flows through the pod brokers while
  // the fabric runs sharded — the broker recursion happens on the control
  // calendar at window barriers, and the fire-order stream must still
  // replay the serial run bit-for-bit.
  Scenario scn;
  scn.phases.resize(2);
  scn.phases[0].load = 0.4;
  scn.phases[1].start = 1_ms;
  scn.phases[1].load = 0.7;
  scn.phases[1].flow_arrivals_per_sec = 8000.0;
  scn.phases[1].flow_departures_per_sec = 600.0;
  auto run_scn = [&](std::uint32_t shards) {
    SimConfig cfg = fat_tree_config(shards);
    cfg.hier_admission = true;
    NetworkSimulator net(cfg);
    StreamHash h;
    hook_hash(net, h);
    RunController controller(net, scn);
    const ScenarioReport rep = controller.run();
    RunResult r;
    r.rep = rep.total;
    r.hash = h.value();
    r.csv = csv_bytes(r.rep);
    return r;
  };
  const RunResult serial = run_scn(1);
  const RunResult par = run_scn(3);
  EXPECT_EQ(par.hash, serial.hash);
  EXPECT_EQ(par.csv, serial.csv);
  EXPECT_EQ(par.rep.events_processed, serial.rep.events_processed);
}

TEST(ParallelEquality, ThreadedWindowsMatchInline) {
  // Force worker threads even on a single-core box: the threaded drain must
  // produce the same stream as the inline drain (and as serial).
  SimConfig cfg = mesh16_config(3);
  cfg.shard_threads = 1;
  const RunResult threaded = run_config(cfg);
  EXPECT_EQ(threaded.hash, kGoldenMesh16FireOrderHash);
}

}  // namespace
}  // namespace dqos
