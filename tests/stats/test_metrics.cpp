#include "stats/metrics.hpp"

#include <gtest/gtest.h>

namespace dqos {
namespace {

using namespace dqos::literals;

Packet mk_packet(TrafficClass tc, TimePoint created, std::uint32_t bytes) {
  Packet p;
  p.hdr.tclass = tc;
  p.hdr.wire_bytes = bytes;
  p.t_created = created;
  return p;
}

TEST(MetricsCollector, RecordsLatencyAndThroughput) {
  MetricsCollector m;
  m.set_window(TimePoint::zero(), TimePoint::zero() + 10_ms);
  const Packet p = mk_packet(TrafficClass::kControl, TimePoint::zero() + 1_ms, 1000);
  m.on_packet_delivered(p, TimePoint::zero() + 1_ms + 50_us);
  const ClassReport r = m.report(TrafficClass::kControl);
  EXPECT_EQ(r.packets, 1u);
  EXPECT_DOUBLE_EQ(r.avg_packet_latency_us, 50.0);
  EXPECT_DOUBLE_EQ(r.max_packet_latency_us, 50.0);
  EXPECT_DOUBLE_EQ(r.throughput_bytes_per_sec, 1000.0 / 0.01);
}

TEST(MetricsCollector, WindowFiltersByCreationTime) {
  MetricsCollector m;
  m.set_window(TimePoint::zero() + 5_ms, TimePoint::zero() + 10_ms);
  // Created before the window: ignored even though delivered inside it.
  m.on_packet_delivered(mk_packet(TrafficClass::kControl, TimePoint::zero() + 1_ms, 100),
                        TimePoint::zero() + 6_ms);
  // Created inside: counted, even if delivered after the window.
  m.on_packet_delivered(mk_packet(TrafficClass::kControl, TimePoint::zero() + 7_ms, 100),
                        TimePoint::zero() + 12_ms);
  // Created at the end boundary: excluded (half-open interval).
  m.on_packet_delivered(mk_packet(TrafficClass::kControl, TimePoint::zero() + 10_ms, 100),
                        TimePoint::zero() + 11_ms);
  EXPECT_EQ(m.report(TrafficClass::kControl).packets, 1u);
}

TEST(MetricsCollector, JitterIsLatencyStddev) {
  MetricsCollector m;
  m.set_window(TimePoint::zero(), TimePoint::zero() + 1_s);
  for (const int us : {10, 20, 30}) {
    m.on_packet_delivered(mk_packet(TrafficClass::kMultimedia, TimePoint::zero() + 1_ms, 100),
                          TimePoint::zero() + 1_ms + Duration::microseconds(us));
  }
  const ClassReport r = m.report(TrafficClass::kMultimedia);
  EXPECT_DOUBLE_EQ(r.avg_packet_latency_us, 20.0);
  EXPECT_NEAR(r.jitter_us, 8.1649, 1e-3);  // population stddev of {10,20,30}
}

TEST(MetricsCollector, MessageLatencySeparateFromPacketLatency) {
  MetricsCollector m;
  m.set_window(TimePoint::zero(), TimePoint::zero() + 1_s);
  m.on_message_delivered(TrafficClass::kMultimedia, TimePoint::zero() + 1_ms, 80000,
                         TimePoint::zero() + 11_ms);
  const ClassReport r = m.report(TrafficClass::kMultimedia);
  EXPECT_EQ(r.messages, 1u);
  EXPECT_DOUBLE_EQ(r.avg_message_latency_us, 10000.0);
  EXPECT_EQ(r.packets, 0u);
}

TEST(MetricsCollector, PerClassSeparation) {
  MetricsCollector m;
  m.set_window(TimePoint::zero(), TimePoint::zero() + 1_s);
  m.on_packet_delivered(mk_packet(TrafficClass::kBestEffort, TimePoint::zero(), 500),
                        TimePoint::zero() + 1_us);
  m.on_packet_delivered(mk_packet(TrafficClass::kBackground, TimePoint::zero(), 700),
                        TimePoint::zero() + 2_us);
  EXPECT_EQ(m.delivered_bytes(TrafficClass::kBestEffort), 500u);
  EXPECT_EQ(m.delivered_bytes(TrafficClass::kBackground), 700u);
  EXPECT_EQ(m.report(TrafficClass::kControl).packets, 0u);
}

TEST(MetricsCollector, OfferedBytesTracked) {
  MetricsCollector m;
  m.set_window(TimePoint::zero(), TimePoint::zero() + 10_ms);
  m.on_message_offered(TrafficClass::kBestEffort, 4096, TimePoint::zero() + 1_ms);
  m.on_message_offered(TrafficClass::kBestEffort, 4096, TimePoint::zero() + 20_ms);  // late
  EXPECT_DOUBLE_EQ(m.report(TrafficClass::kBestEffort).offered_bytes_per_sec,
                   4096.0 / 0.01);
}

TEST(MetricsCollector, CdfAccess) {
  MetricsCollector m;
  m.set_window(TimePoint::zero(), TimePoint::zero() + 1_s);
  for (int i = 1; i <= 100; ++i) {
    m.on_packet_delivered(mk_packet(TrafficClass::kControl, TimePoint::zero(), 64),
                          TimePoint::zero() + Duration::microseconds(i));
  }
  const SampleSet& lat = m.packet_latency(TrafficClass::kControl);
  EXPECT_EQ(lat.count(), 100u);
  EXPECT_NEAR(lat.cdf_at(50.0), 0.5, 0.01);
}

TEST(MetricsCollector, DeadlineSlackAndMisses) {
  MetricsCollector m;
  m.set_window(TimePoint::zero(), TimePoint::zero() + 1_s);
  const Packet p = mk_packet(TrafficClass::kControl, TimePoint::zero(), 100);
  m.on_packet_delivered(p, TimePoint::zero() + 10_us, /*slack=*/5_us);
  m.on_packet_delivered(p, TimePoint::zero() + 20_us, /*slack=*/-3_us);
  m.on_packet_delivered(p, TimePoint::zero() + 30_us, /*slack=*/1_us);
  const ClassReport r = m.report(TrafficClass::kControl);
  EXPECT_DOUBLE_EQ(r.avg_slack_us, 1.0);
  EXPECT_DOUBLE_EQ(r.deadline_miss_fraction, 1.0 / 3.0);
}

TEST(MetricsCollector, ZeroSlackIsNotAMiss) {
  MetricsCollector m;
  m.set_window(TimePoint::zero(), TimePoint::zero() + 1_s);
  const Packet p = mk_packet(TrafficClass::kControl, TimePoint::zero(), 100);
  m.on_packet_delivered(p, TimePoint::zero() + 10_us, Duration::zero());
  EXPECT_DOUBLE_EQ(m.report(TrafficClass::kControl).deadline_miss_fraction, 0.0);
}

TEST(MetricsCollectorDeathTest, BadWindow) {
  MetricsCollector m;
  EXPECT_DEATH(m.set_window(TimePoint::zero() + 1_ms, TimePoint::zero()), "precondition");
}

}  // namespace
}  // namespace dqos
