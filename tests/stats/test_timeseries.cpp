#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace dqos {
namespace {

using namespace dqos::literals;

TEST(TimeSeries, AccumulatesIntoCorrectBins) {
  TimeSeries ts(TimePoint::zero(), 10_us, 5);
  ts.add(TimePoint::zero(), 1.0);            // bin 0 (inclusive start)
  ts.add(TimePoint::zero() + 9_us, 2.0);     // bin 0
  ts.add(TimePoint::zero() + 10_us, 4.0);    // bin 1
  ts.add(TimePoint::zero() + 49_us, 8.0);    // bin 4
  EXPECT_DOUBLE_EQ(ts.bin_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.bin_sum(1), 4.0);
  EXPECT_DOUBLE_EQ(ts.bin_sum(4), 8.0);
  EXPECT_EQ(ts.clipped(), 0u);
}

TEST(TimeSeries, ClipsOutOfRange) {
  TimeSeries ts(TimePoint::zero() + 100_us, 10_us, 2);
  ts.add(TimePoint::zero() + 50_us, 1.0);   // before start
  ts.add(TimePoint::zero() + 120_us, 1.0);  // past last bin
  EXPECT_EQ(ts.clipped(), 2u);
  EXPECT_DOUBLE_EQ(ts.bin_sum(0), 0.0);
}

TEST(TimeSeries, BinStartAndWidth) {
  TimeSeries ts(TimePoint::zero() + 5_us, 2_us, 3);
  EXPECT_EQ(ts.bin_start(0), TimePoint::zero() + 5_us);
  EXPECT_EQ(ts.bin_start(2), TimePoint::zero() + 9_us);
  EXPECT_EQ(ts.bin_width(), 2_us);
  EXPECT_EQ(ts.bins(), 3u);
}

TEST(TimeSeries, BinStatsWithRange) {
  TimeSeries ts(TimePoint::zero(), 1_us, 4);
  for (int i = 0; i < 4; ++i) {
    ts.add(TimePoint::zero() + Duration::microseconds(i), static_cast<double>(i + 1));
  }
  const StreamingStats all = ts.bin_stats();
  EXPECT_EQ(all.count(), 4u);
  EXPECT_DOUBLE_EQ(all.mean(), 2.5);
  const StreamingStats tail = ts.bin_stats(2);
  EXPECT_EQ(tail.count(), 2u);
  EXPECT_DOUBLE_EQ(tail.mean(), 3.5);
}

TEST(TimeSeries, BurstinessZeroForConstantSeries) {
  TimeSeries ts(TimePoint::zero(), 1_us, 10);
  for (int i = 0; i < 10; ++i) {
    ts.add(TimePoint::zero() + Duration::microseconds(i), 5.0);
  }
  EXPECT_DOUBLE_EQ(ts.burstiness(), 0.0);
}

TEST(TimeSeries, BurstinessHighForSpikySeries) {
  TimeSeries smooth(TimePoint::zero(), 1_us, 10);
  TimeSeries spiky(TimePoint::zero(), 1_us, 10);
  for (int i = 0; i < 10; ++i) {
    const TimePoint t = TimePoint::zero() + Duration::microseconds(i);
    smooth.add(t, 10.0);
    spiky.add(t, i == 0 ? 100.0 : 0.0);  // same total, one spike
  }
  EXPECT_GT(spiky.burstiness(), smooth.burstiness() + 1.0);
}

TEST(TimeSeries, EmptySeriesSafe) {
  TimeSeries ts(TimePoint::zero(), 1_us, 3);
  EXPECT_DOUBLE_EQ(ts.burstiness(), 0.0);
  EXPECT_EQ(ts.bin_stats().count(), 3u);  // three zero bins
}

TEST(TimeSeriesDeathTest, BadConstruction) {
  EXPECT_DEATH(TimeSeries(TimePoint::zero(), Duration::zero(), 4), "precondition");
  EXPECT_DEATH(TimeSeries(TimePoint::zero(), 1_us, 0), "precondition");
}

}  // namespace
}  // namespace dqos
