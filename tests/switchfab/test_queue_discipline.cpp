#include "switchfab/queue_discipline.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "proto/packet_pool.hpp"
#include "util/rng.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

class QueueFixture : public testing::Test {
 protected:
  PacketPtr pkt(std::int64_t deadline_us, FlowId flow = 0, std::uint32_t bytes = 256,
                std::uint32_t seq = 0) {
    PacketPtr p = pool_.make();
    p->local_deadline = TimePoint::from_ps(deadline_us * 1'000'000);
    p->hdr.flow = flow;
    p->hdr.wire_bytes = bytes;
    p->hdr.flow_seq = seq;
    return p;
  }
  PacketPool pool_;
};

// ---------------------------------------------------------------- FifoQueue

class FifoQueueTest : public QueueFixture {};

TEST_F(FifoQueueTest, FifoOrderRegardlessOfDeadline) {
  FifoQueue q;
  q.enqueue(pkt(30));
  q.enqueue(pkt(10));
  q.enqueue(pkt(20));
  EXPECT_EQ(q.dequeue()->local_deadline, TimePoint::from_ps(30'000'000));
  EXPECT_EQ(q.dequeue()->local_deadline, TimePoint::from_ps(10'000'000));
  EXPECT_EQ(q.dequeue()->local_deadline, TimePoint::from_ps(20'000'000));
}

TEST_F(FifoQueueTest, OrderErrorsCountHeadNotMin) {
  FifoQueue q;
  q.enqueue(pkt(30));  // head with late deadline
  q.enqueue(pkt(10));
  q.enqueue(pkt(20));
  (void)q.dequeue();  // 30 leaves while 10,20 wait -> order error
  (void)q.dequeue();  // 10 is min -> fine
  (void)q.dequeue();  // 20 is min -> fine
  EXPECT_EQ(q.order_errors(), 1u);
}

TEST_F(FifoQueueTest, NoOrderErrorsWhenArrivalsSorted) {
  FifoQueue q;
  for (int d = 1; d <= 20; ++d) q.enqueue(pkt(d));
  for (int d = 1; d <= 20; ++d) (void)q.dequeue();
  EXPECT_EQ(q.order_errors(), 0u);
}

TEST_F(FifoQueueTest, MinDeadlineTracksContents) {
  FifoQueue q;
  EXPECT_EQ(q.min_deadline(), TimePoint::max());
  q.enqueue(pkt(30));
  q.enqueue(pkt(10));
  EXPECT_EQ(q.min_deadline(), TimePoint::from_ps(10'000'000));
  (void)q.dequeue();  // removes the 30
  EXPECT_EQ(q.min_deadline(), TimePoint::from_ps(10'000'000));
  (void)q.dequeue();
  EXPECT_EQ(q.min_deadline(), TimePoint::max());
}

// ---------------------------------------------------------------- HeapQueue

class HeapQueueTest : public QueueFixture {};

TEST_F(HeapQueueTest, AlwaysDequeuesMinimum) {
  HeapQueue q;
  Rng rng(5);
  std::vector<std::int64_t> deadlines;
  for (int i = 0; i < 500; ++i) {
    const auto d = static_cast<std::int64_t>(rng.uniform_int(1, 100000));
    deadlines.push_back(d);
    q.enqueue(pkt(d));
  }
  std::sort(deadlines.begin(), deadlines.end());
  for (const auto expect : deadlines) {
    EXPECT_EQ(q.dequeue()->local_deadline.ps(), expect * 1'000'000);
  }
  EXPECT_EQ(q.order_errors(), 0u);
}

TEST_F(HeapQueueTest, StableOnEqualDeadlines) {
  // Equal deadlines leave in arrival order, preserving single-flow order.
  HeapQueue q;
  for (std::uint32_t s = 0; s < 50; ++s) q.enqueue(pkt(7, /*flow=*/1, 256, s));
  for (std::uint32_t s = 0; s < 50; ++s) EXPECT_EQ(q.dequeue()->hdr.flow_seq, s);
}

TEST_F(HeapQueueTest, InterleavedEnqueueDequeue) {
  HeapQueue q;
  q.enqueue(pkt(50));
  q.enqueue(pkt(10));
  EXPECT_EQ(q.dequeue()->local_deadline.ps(), 10 * 1'000'000);
  q.enqueue(pkt(5));
  q.enqueue(pkt(70));
  EXPECT_EQ(q.dequeue()->local_deadline.ps(), 5 * 1'000'000);
  EXPECT_EQ(q.dequeue()->local_deadline.ps(), 50 * 1'000'000);
  EXPECT_EQ(q.dequeue()->local_deadline.ps(), 70 * 1'000'000);
}

// ------------------------------------------------------------ TakeoverQueue

class TakeoverQueueTest : public QueueFixture {};

TEST_F(TakeoverQueueTest, InOrderArrivalsStayInOrderedQueue) {
  TakeoverQueue q;
  for (int d = 1; d <= 10; ++d) q.enqueue(pkt(d));
  EXPECT_EQ(q.ordered_packets(), 10u);
  EXPECT_EQ(q.takeover_packets(), 0u);
  EXPECT_EQ(q.takeovers(), 0u);
}

TEST_F(TakeoverQueueTest, SmallerDeadlineGoesToTakeoverQueue) {
  TakeoverQueue q;
  q.enqueue(pkt(100));
  q.enqueue(pkt(50));  // smaller than L tail -> U
  EXPECT_EQ(q.ordered_packets(), 1u);
  EXPECT_EQ(q.takeover_packets(), 1u);
  EXPECT_EQ(q.takeovers(), 1u);
  // Dequeue picks the smaller head: the take-over packet advances.
  EXPECT_EQ(q.dequeue()->local_deadline.ps(), 50 * 1'000'000);
  EXPECT_EQ(q.dequeue()->local_deadline.ps(), 100 * 1'000'000);
}

TEST_F(TakeoverQueueTest, EqualToTailGoesToOrderedQueue) {
  // Definition 1: D(p) >= D(L_tail) -> L.
  TakeoverQueue q;
  q.enqueue(pkt(100));
  q.enqueue(pkt(100));
  EXPECT_EQ(q.ordered_packets(), 2u);
  EXPECT_EQ(q.takeovers(), 0u);
}

TEST_F(TakeoverQueueTest, TieBetweenHeadsPrefersOrderedQueue) {
  TakeoverQueue q;
  q.enqueue(pkt(100, /*flow=*/1));
  q.enqueue(pkt(50, /*flow=*/2));   // -> U
  q.enqueue(pkt(100, /*flow=*/3));  // -> L (equal to tail)
  // Drain the 50 first; then heads tie at 100: L (flow 1) must win.
  EXPECT_EQ(q.dequeue()->hdr.flow, 2u);
  EXPECT_EQ(q.dequeue()->hdr.flow, 1u);
  EXPECT_EQ(q.dequeue()->hdr.flow, 3u);
}

TEST_F(TakeoverQueueTest, OrderErrorsReducedVsFifo) {
  // Same arrival trace through FIFO and take-over: the take-over queue must
  // commit strictly fewer order errors (the paper's 25% -> 5% effect).
  Rng rng(77);
  std::vector<std::int64_t> trace;
  std::int64_t base = 0;
  for (int i = 0; i < 2000; ++i) {
    base += 10;
    // Mostly ascending with occasional out-of-order lows.
    trace.push_back(rng.chance(0.15) ? base - static_cast<std::int64_t>(rng.uniform_int(1, 500))
                                     : base);
  }
  FifoQueue fifo;
  TakeoverQueue takeover;
  std::uint64_t fifo_errors = 0, takeover_errors = 0;
  // Keep occupancy shallow (a few packets), like a real 8 KB / 2 KB-MTU
  // switch buffer under load.
  for (const std::int64_t d : trace) {
    fifo.enqueue(pkt(d));
    takeover.enqueue(pkt(d));
    while (fifo.packets() > 4) {
      (void)fifo.dequeue();
      (void)takeover.dequeue();
    }
  }
  while (!fifo.empty()) (void)fifo.dequeue();
  while (!takeover.empty()) (void)takeover.dequeue();
  fifo_errors = fifo.order_errors();
  takeover_errors = takeover.order_errors();
  EXPECT_GT(fifo_errors, 0u);
  EXPECT_LT(takeover_errors, fifo_errors / 2);  // "greatly diminished"
}

// --------- appendix property tests (Theorems 1-3) over random traces -------

struct TraceParams {
  std::uint64_t seed;
  int flows;
  int packets;
  double takeover_rate;  // fraction of arrivals with regressed deadlines
};

class TakeoverTheorems : public testing::TestWithParam<TraceParams> {};

TEST_P(TakeoverTheorems, NoOutOfOrderDeliveryWithinFlows) {
  // Theorem 3: under hypotheses (1)(2) — per-flow increasing deadlines and
  // ordered arrivals — departures of each flow preserve arrival order.
  const auto& tp = GetParam();
  Rng rng(tp.seed);
  PacketPool pool;
  TakeoverQueue q;
  std::vector<std::int64_t> flow_deadline(static_cast<std::size_t>(tp.flows), 0);
  std::vector<std::uint32_t> flow_seq(static_cast<std::size_t>(tp.flows), 0);
  std::map<FlowId, std::uint32_t> last_departed;

  int in_flight = 0, emitted = 0;
  while (emitted < tp.packets || in_flight > 0) {
    const bool can_emit = emitted < tp.packets;
    const bool do_enqueue = can_emit && (in_flight == 0 || rng.chance(0.55));
    if (do_enqueue) {
      const auto f = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::uint64_t>(tp.flows - 1)));
      // Strictly increasing per-flow deadlines (hypothesis 1); across flows,
      // deadlines may regress to trigger take-overs.
      const std::int64_t jump =
          rng.chance(tp.takeover_rate) ? 1 : static_cast<std::int64_t>(rng.uniform_int(5, 120));
      flow_deadline[f] += jump;
      PacketPtr p = pool.make();
      p->local_deadline = TimePoint::from_ps(flow_deadline[f]);
      p->hdr.flow = static_cast<FlowId>(f);
      p->hdr.flow_seq = flow_seq[f]++;
      p->hdr.wire_bytes = 128;
      q.enqueue(std::move(p));
      ++in_flight;
      ++emitted;
    } else {
      PacketPtr p = q.dequeue();
      --in_flight;
      auto [it, inserted] = last_departed.try_emplace(p->hdr.flow, p->hdr.flow_seq);
      if (!inserted) {
        ASSERT_GT(p->hdr.flow_seq, it->second)
            << "flow " << p->hdr.flow << " delivered out of order";
        it->second = p->hdr.flow_seq;
      }
    }
  }
}

TEST_P(TakeoverTheorems, DequeueIsMinOfHeadsAndLemma1Holds) {
  // Theorem 1 (L ordered) is exercised implicitly: candidate() of L is its
  // head; here we check the dequeued packet never has a larger deadline
  // than *both* queue heads had, and that L never empties before U
  // (Lemma 1), by driving the public API only.
  const auto& tp = GetParam();
  Rng rng(tp.seed ^ 0xabcdef);
  PacketPool pool;
  TakeoverQueue q;
  std::int64_t clock = 0;
  int in_flight = 0;
  for (int i = 0; i < tp.packets; ++i) {
    const bool do_enqueue = in_flight == 0 || rng.chance(0.5);
    if (do_enqueue) {
      clock += 10;
      const bool regress = rng.chance(tp.takeover_rate);
      const std::int64_t d =
          regress ? clock - static_cast<std::int64_t>(rng.uniform_int(1, 40)) : clock;
      PacketPtr p = pool.make();
      p->local_deadline = TimePoint::from_ps(d);
      p->hdr.wire_bytes = 64;
      q.enqueue(std::move(p));
      ++in_flight;
    } else {
      const TimePoint head_min = q.candidate()->local_deadline;
      const TimePoint true_min = q.min_deadline();
      PacketPtr p = q.dequeue();
      --in_flight;
      EXPECT_EQ(p->local_deadline, head_min);
      EXPECT_GE(p->local_deadline, true_min);
      // Lemma 1: if anything remains, L is non-empty (candidate non-null).
      if (in_flight > 0) {
        EXPECT_NE(q.candidate(), nullptr);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Traces, TakeoverTheorems,
    testing::Values(TraceParams{1, 1, 3000, 0.0}, TraceParams{2, 2, 3000, 0.1},
                    TraceParams{3, 8, 5000, 0.2}, TraceParams{4, 16, 5000, 0.4},
                    TraceParams{5, 4, 5000, 0.8}, TraceParams{6, 32, 8000, 0.3}),
    [](const testing::TestParamInfo<TraceParams>& pi) {
      return "seed" + std::to_string(pi.param.seed) + "_flows" +
             std::to_string(pi.param.flows) + "_rate" +
             std::to_string(static_cast<int>(pi.param.takeover_rate * 100));
    });

// --------- properties common to all disciplines ---------------------------

class AnyQueue : public testing::TestWithParam<QueueKind> {};

TEST_P(AnyQueue, BytesAccounting) {
  PacketPool pool;
  auto q = make_queue(GetParam());
  auto mk = [&](std::uint32_t bytes, std::int64_t d) {
    PacketPtr p = pool.make();
    p->hdr.wire_bytes = bytes;
    p->local_deadline = TimePoint::from_ps(d);
    return p;
  };
  EXPECT_EQ(q.bytes(), 0u);
  q.enqueue(mk(100, 5));
  q.enqueue(mk(200, 3));
  EXPECT_EQ(q.bytes(), 300u);
  EXPECT_EQ(q.packets(), 2u);
  (void)q.dequeue();
  (void)q.dequeue();
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST_P(AnyQueue, CandidateNullWhenEmpty) {
  auto q = make_queue(GetParam());
  EXPECT_EQ(q.candidate(), nullptr);
  EXPECT_EQ(q.min_deadline(), TimePoint::max());
}

TEST_P(AnyQueue, CandidateMatchesDequeue) {
  PacketPool pool;
  Rng rng(99);
  auto q = make_queue(GetParam());
  for (int i = 0; i < 200; ++i) {
    if (q.empty() || rng.chance(0.6)) {
      PacketPtr p = pool.make();
      p->hdr.wire_bytes = 64;
      p->local_deadline = TimePoint::from_ps(static_cast<std::int64_t>(rng.uniform_int(0, 1000)));
      q.enqueue(std::move(p));
    } else {
      const Packet* c = q.candidate();
      ASSERT_NE(c, nullptr);
      PacketPtr p = q.dequeue();
      EXPECT_EQ(p.get(), c);
    }
  }
}

TEST_P(AnyQueue, PerFlowOrderPreservedUnderHypotheses) {
  // All three disciplines must avoid out-of-order delivery when flows have
  // increasing deadlines (FIFO trivially, heap via stable ties, take-over
  // via Theorem 3).
  PacketPool pool;
  Rng rng(123);
  auto q = make_queue(GetParam());
  std::vector<std::int64_t> flow_deadline(4, 0);
  std::vector<std::uint32_t> flow_seq(4, 0);
  std::map<FlowId, std::uint32_t> last;
  int in_flight = 0;
  for (int i = 0; i < 4000; ++i) {
    if (in_flight == 0 || rng.chance(0.5)) {
      const auto f = static_cast<std::size_t>(rng.uniform_int(0, 3));
      flow_deadline[f] += static_cast<std::int64_t>(rng.uniform_int(1, 50));
      PacketPtr p = pool.make();
      p->local_deadline = TimePoint::from_ps(flow_deadline[f]);
      p->hdr.flow = static_cast<FlowId>(f);
      p->hdr.flow_seq = flow_seq[f]++;
      p->hdr.wire_bytes = 64;
      q.enqueue(std::move(p));
      ++in_flight;
    } else {
      PacketPtr p = q.dequeue();
      --in_flight;
      auto [it, inserted] = last.try_emplace(p->hdr.flow, p->hdr.flow_seq);
      if (!inserted) {
        ASSERT_GT(p->hdr.flow_seq, it->second);
        it->second = p->hdr.flow_seq;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AnyQueue,
                         testing::Values(QueueKind::kFifo, QueueKind::kHeap,
                                         QueueKind::kTakeover),
                         [](const testing::TestParamInfo<QueueKind>& pi) {
                           return std::string(to_string(pi.param));
                         });

TEST(QueueKindTest, Names) {
  EXPECT_EQ(to_string(QueueKind::kFifo), "fifo");
  EXPECT_EQ(to_string(QueueKind::kHeap), "heap");
  EXPECT_EQ(to_string(QueueKind::kTakeover), "takeover");
}

}  // namespace
}  // namespace dqos
