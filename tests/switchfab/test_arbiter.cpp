#include "switchfab/arbiter.hpp"

#include <gtest/gtest.h>

#include "proto/packet.hpp"

namespace dqos {
namespace {

Packet mk(std::int64_t deadline) {
  Packet p;
  p.local_deadline = TimePoint::from_ps(deadline);
  return p;
}

TEST(EdfInputArbiter, PicksMinimumDeadline) {
  EdfInputArbiter arb;
  Packet a = mk(300), b = mk(100), c = mk(200);
  std::vector<ArbCandidate> cands{{0, &a}, {3, &b}, {7, &c}};
  const auto w = arb.pick(cands);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(cands[*w].input, 3u);
}

TEST(EdfInputArbiter, TieBreaksByLowestInput) {
  EdfInputArbiter arb;
  Packet a = mk(100), b = mk(100);
  std::vector<ArbCandidate> cands{{5, &a}, {2, &b}};
  const auto w = arb.pick(cands);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(cands[*w].input, 2u);
}

TEST(EdfInputArbiter, EmptyYieldsNothing) {
  EdfInputArbiter arb;
  EXPECT_FALSE(arb.pick({}).has_value());
}

TEST(RoundRobinInputArbiter, RotatesAcrossGrants) {
  RoundRobinInputArbiter arb(4);
  Packet p = mk(0);
  std::vector<ArbCandidate> cands{{0, &p}, {1, &p}, {2, &p}, {3, &p}};
  std::vector<std::size_t> grants;
  for (int i = 0; i < 8; ++i) {
    const auto w = arb.pick(cands);
    ASSERT_TRUE(w.has_value());
    grants.push_back(cands[*w].input);
    arb.granted(cands[*w].input);
  }
  EXPECT_EQ(grants, (std::vector<std::size_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(RoundRobinInputArbiter, SkipsAbsentInputs) {
  RoundRobinInputArbiter arb(4);
  Packet p = mk(0);
  std::vector<ArbCandidate> cands{{1, &p}, {3, &p}};
  auto w = arb.pick(cands);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(cands[*w].input, 1u);
  arb.granted(1);
  w = arb.pick(cands);
  EXPECT_EQ(cands[*w].input, 3u);
  arb.granted(3);
  w = arb.pick(cands);  // wraps
  EXPECT_EQ(cands[*w].input, 1u);
}

TEST(RoundRobinInputArbiter, PointerAdvancesOnlyOnGrant) {
  RoundRobinInputArbiter arb(4);
  Packet p = mk(0);
  std::vector<ArbCandidate> cands{{0, &p}, {2, &p}};
  // Two picks without granted(): same winner (credit-blocked retry must not
  // unfairly skip an input).
  EXPECT_EQ(cands[*arb.pick(cands)].input, 0u);
  EXPECT_EQ(cands[*arb.pick(cands)].input, 0u);
}

TEST(StrictPriorityVc, AlwaysLowIndexFirst) {
  StrictPriorityVcPolicy pol(3);
  const auto order = pol.order();
  EXPECT_EQ(order, (std::vector<VcId>{0, 1, 2}));
  pol.granted(2, 4096);
  EXPECT_EQ(pol.order(), (std::vector<VcId>{0, 1, 2}));
}

TEST(WeightedVc, OrderContainsAllVcsOnce) {
  WeightedVcPolicy pol({1, 1, 1, 1});
  const auto order = pol.order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<bool> seen(4, false);
  for (const VcId vc : order) seen[vc] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(WeightedVc, EqualWeightsShareEvenly) {
  WeightedVcPolicy pol({1, 1}, 4096);
  std::vector<std::uint64_t> bytes(2, 0);
  // All VCs always have traffic: grant repeatedly to the first VC in order.
  for (int i = 0; i < 10000; ++i) {
    const VcId vc = pol.order().front();
    bytes[vc] += 1024;
    pol.granted(vc, 1024);
  }
  const double share0 = static_cast<double>(bytes[0]) / (10000.0 * 1024.0);
  EXPECT_NEAR(share0, 0.5, 0.02);
}

TEST(WeightedVc, WeightsRespectedUnderSaturation) {
  WeightedVcPolicy pol({3, 1}, 4096);
  std::vector<std::uint64_t> bytes(2, 0);
  for (int i = 0; i < 40000; ++i) {
    const VcId vc = pol.order().front();
    bytes[vc] += 512;
    pol.granted(vc, 512);
  }
  const double share0 =
      static_cast<double>(bytes[0]) / static_cast<double>(bytes[0] + bytes[1]);
  EXPECT_NEAR(share0, 0.75, 0.03);
}

TEST(WeightedVc, WorkConservingWhenVcSkipped) {
  // If the preferred VC is empty, the switch takes the next in order; the
  // policy then treats the actually-granted VC as current.
  WeightedVcPolicy pol({1, 1}, 4096);
  // Simulate: VC0 always empty; grants all go to VC1.
  for (int i = 0; i < 100; ++i) pol.granted(1, 1024);
  const auto order = pol.order();
  EXPECT_EQ(order.size(), 2u);  // still valid and complete
}

TEST(MakeInputArbiter, Factory) {
  EXPECT_NE(make_input_arbiter(InputArbiterKind::kEdf, 4), nullptr);
  EXPECT_NE(make_input_arbiter(InputArbiterKind::kRoundRobin, 4), nullptr);
}

}  // namespace
}  // namespace dqos
