#include "switchfab/input_buffer.hpp"

#include <gtest/gtest.h>

#include "proto/packet_pool.hpp"

namespace dqos {
namespace {

PacketPtr pkt(PacketPool& pool, std::uint32_t bytes) {
  PacketPtr p = pool.make();
  p->hdr.wire_bytes = bytes;
  return p;
}

TEST(InputBufferTest, AccountsBytesAndPackets) {
  PacketPool pool;
  InputBuffer buf(QueueKind::kFifo, 8192, /*num_outputs=*/2);
  buf.enqueue(pkt(pool, 3000), 0);
  buf.enqueue(pkt(pool, 2000), 1);
  EXPECT_EQ(buf.used_bytes(), 5000u);
  EXPECT_EQ(buf.total_packets(), 2u);
  EXPECT_TRUE(buf.has_space(3192));
  EXPECT_FALSE(buf.has_space(3193));
  (void)buf.dequeue(0);
  EXPECT_EQ(buf.used_bytes(), 2000u);
  EXPECT_EQ(buf.total_packets(), 1u);
}

TEST(InputBufferTest, EnqueueOverCapacityTripsInvariant) {
  // Credit flow control must make this unreachable: enqueueing past the
  // per-VC byte budget means the upstream spent credits it did not hold.
  PacketPool pool;
  InputBuffer buf(QueueKind::kFifo, 4096, /*num_outputs=*/1);
  buf.enqueue(pkt(pool, 4000), 0);
  EXPECT_DEATH(buf.enqueue(pkt(pool, 97), 0), "invariant");
}

TEST(InputBufferTest, ExactFillIsNotAViolation) {
  PacketPool pool;
  InputBuffer buf(QueueKind::kFifo, 4096, /*num_outputs=*/1);
  buf.enqueue(pkt(pool, 4000), 0);
  buf.enqueue(pkt(pool, 96), 0);  // lands exactly on the budget
  EXPECT_EQ(buf.used_bytes(), 4096u);
  EXPECT_FALSE(buf.has_space(1));
}

}  // namespace
}  // namespace dqos
