#include "switchfab/pipelined_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

TEST(PipelinedHeap, LevelsFromCapacity) {
  // levels = smallest L with 2^L - 1 >= capacity.
  EXPECT_EQ(PipelinedHeapModel(2, 4_ns).levels(), 2u);
  EXPECT_EQ(PipelinedHeapModel(3, 4_ns).levels(), 2u);
  EXPECT_EQ(PipelinedHeapModel(4, 4_ns).levels(), 3u);
  EXPECT_EQ(PipelinedHeapModel(7, 4_ns).levels(), 3u);
  EXPECT_EQ(PipelinedHeapModel(128, 4_ns).levels(), 8u);
  EXPECT_EQ(PipelinedHeapModel(128, 4_ns).op_latency(), 32_ns);
}

TEST(PipelinedHeap, FunctionalMinHeap) {
  PipelinedHeapModel h(64, 4_ns);
  Rng rng(1);
  std::vector<std::int64_t> keys;
  TimePoint t;
  for (int i = 0; i < 60; ++i) {
    const auto k = static_cast<std::int64_t>(rng.uniform_int(0, 10000));
    keys.push_back(k);
    t = h.insert(k, t).next_issue;
  }
  std::sort(keys.begin(), keys.end());
  for (const auto expect : keys) {
    EXPECT_EQ(h.min(), expect);
    std::int64_t got = 0;
    t = h.extract_min(t, &got).next_issue;
    EXPECT_EQ(got, expect);
  }
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.ops(), 120u);
}

TEST(PipelinedHeap, OperationsPipelineAtOnePerCycle) {
  PipelinedHeapModel h(128, 4_ns);
  // Back-to-back inserts at t=0: issues at 0, 4, 8 ns (one per cycle)...
  const auto t1 = h.insert(10, TimePoint::zero());
  const auto t2 = h.insert(20, TimePoint::zero());
  const auto t3 = h.insert(5, TimePoint::zero());
  EXPECT_EQ(t1.next_issue.ps(), 4'000);
  EXPECT_EQ(t2.next_issue.ps(), 8'000);
  EXPECT_EQ(t3.next_issue.ps(), 12'000);
  // ...while each op completes a full pipeline later (8 levels x 4 ns).
  EXPECT_EQ(t1.completes.ps(), 32'000);
  EXPECT_EQ(t2.completes.ps(), 4'000 + 32'000);
}

TEST(PipelinedHeap, IdleHeapIssuesImmediately) {
  PipelinedHeapModel h(128, 4_ns);
  (void)h.insert(1, TimePoint::zero());
  // Long idle: the next op starts exactly at `now`, not at a stale time.
  const auto t = h.insert(2, TimePoint::zero() + 1_ms);
  EXPECT_EQ(t.completes, TimePoint::zero() + 1_ms + 32_ns);
}

TEST(PipelinedHeap, ThroughputVsLatencyArgument) {
  // The ICC'01 point: a pipelined heap sustains one op per cycle (so it
  // *can* keep line rate) — the cost is one comparator+SRAM stage per
  // level, which is what bench_cost_table charges for. A non-pipelined
  // heap would instead pay op_latency() per op: for 8 KB / 64 B = 128
  // entries at 4 ns cycles that is 32 ns/op vs 4 ns/op.
  PipelinedHeapModel h(128, 4_ns);
  EXPECT_EQ(h.issue_interval(), 4_ns);
  EXPECT_EQ(h.op_latency(), 32_ns);
  EXPECT_GT(h.op_latency(), h.issue_interval() * 4);
}

TEST(PipelinedHeap, RandomizedAgainstStdSort) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    PipelinedHeapModel h(512, 2_ns);
    std::vector<std::int64_t> keys;
    TimePoint t;
    const int n = static_cast<int>(rng.uniform_int(1, 400));
    for (int i = 0; i < n; ++i) {
      const auto k = static_cast<std::int64_t>(rng.uniform_int(0, 1 << 20));
      keys.push_back(k);
      t = h.insert(k, t).next_issue;
    }
    std::sort(keys.begin(), keys.end());
    std::vector<std::int64_t> out;
    while (!h.empty()) {
      std::int64_t k = 0;
      t = h.extract_min(t, &k).next_issue;
      out.push_back(k);
    }
    EXPECT_EQ(out, keys);
  }
}

TEST(PipelinedHeapDeathTest, Contracts) {
  EXPECT_DEATH(PipelinedHeapModel(1, 4_ns), "precondition");
  EXPECT_DEATH(PipelinedHeapModel(8, Duration::zero()), "precondition");
  PipelinedHeapModel h(4, 4_ns);
  EXPECT_DEATH((void)h.min(), "precondition");
  std::int64_t k;
  EXPECT_DEATH((void)h.extract_min(TimePoint::zero(), &k), "precondition");
}

}  // namespace
}  // namespace dqos
