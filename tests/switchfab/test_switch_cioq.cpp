/// Combined input/output queueing specifics: output-buffer capacity,
/// crossbar speedup, order errors frozen at the output stage, and per-VC
/// diagnostics.
#include <gtest/gtest.h>

#include "proto/packet_pool.hpp"
#include "switchfab/switch.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

struct SinkHost final : PacketReceiver {
  void receive_packet(PacketPtr p, PortId) override {
    delivered.push_back({sim->now(), p->hdr.packet_id});
    if (!hold_credits) {
      from_switch->return_credits(p->hdr.vc, p->size());
    } else {
      held.push_back({p->hdr.vc, p->size()});
    }
  }
  void release() {
    for (auto [vc, b] : held) from_switch->return_credits(vc, b);
    held.clear();
  }
  Simulator* sim = nullptr;
  Channel* from_switch = nullptr;
  bool hold_credits = false;
  std::vector<std::pair<VcId, std::uint32_t>> held;
  std::vector<std::pair<TimePoint, std::uint64_t>> delivered;
};

class CioqFixture : public testing::Test {
 protected:
  static constexpr std::size_t kPorts = 4;

  void build(SwitchParams params) {
    sw_ = std::make_unique<Switch>(sim_, 100, kPorts, params);
    for (PortId port = 0; port < kPorts; ++port) {
      hosts_[port].sim = &sim_;
      in_[port] = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0),
                                            100_ns, params.num_vcs,
                                            params.buffer_bytes_per_vc);
      in_[port]->connect_to(sw_.get(), port);
      sw_->attach_input(port, in_[port].get());
      out_[port] = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0),
                                             100_ns, params.num_vcs,
                                             params.buffer_bytes_per_vc);
      out_[port]->connect_to(&hosts_[port], 0);
      sw_->attach_output(port, out_[port].get());
      hosts_[port].from_switch = out_[port].get();
    }
  }

  void inject(PortId in, PortId out, Duration ttd, std::uint32_t bytes,
              VcId vc = kRegulatedVc, std::uint64_t id = 0) {
    PacketPtr p = pool_.make();
    p->hdr.packet_id = id;
    p->hdr.wire_bytes = bytes;
    p->hdr.vc = vc;
    p->hdr.tclass =
        vc == kRegulatedVc ? TrafficClass::kControl : TrafficClass::kBestEffort;
    p->hdr.ttd = ttd;
    p->hdr.route.push_hop(out);
    ASSERT_TRUE(in_[in]->has_credits(vc, bytes));
    in_[in]->consume_credits(vc, bytes);
    in_[in]->send(std::move(p));
  }

  Simulator sim_;
  PacketPool pool_;
  std::unique_ptr<Switch> sw_;
  std::array<std::unique_ptr<Channel>, kPorts> in_, out_;
  std::array<SinkHost, kPorts> hosts_;
};

TEST_F(CioqFixture, SpeedupOneMakesCrossbarTransferFullLength) {
  SwitchParams p;
  p.arch = SwitchArch::kAdvanced2Vc;
  p.crossbar_speedup = 1.0;
  build(p);
  inject(0, 2, 1_ms, 1000, kRegulatedVc, 1);
  sim_.run();
  ASSERT_EQ(hosts_[2].delivered.size(), 1u);
  // tail at 1100ns; crossbar 1000ns at 1x; output link 1000+100.
  EXPECT_EQ(hosts_[2].delivered[0].first.ps(), 3200 * 1000);
}

TEST_F(CioqFixture, HigherSpeedupShortensTransit) {
  SwitchParams p;
  p.arch = SwitchArch::kAdvanced2Vc;
  p.crossbar_speedup = 4.0;
  build(p);
  inject(0, 2, 1_ms, 1000, kRegulatedVc, 1);
  sim_.run();
  ASSERT_EQ(hosts_[2].delivered.size(), 1u);
  EXPECT_EQ(hosts_[2].delivered[0].first.ps(), 2450 * 1000);  // 250ns xbar
}

TEST_F(CioqFixture, OutputBufferAbsorbsExactlyItsCapacity) {
  SwitchParams p;
  p.arch = SwitchArch::kSimple2Vc;
  build(p);
  hosts_[1].hold_credits = true;
  // 8 x 2048B from two inputs toward one output with a dead downstream:
  // 4 packets consume all downstream credit (transmitted into the void of
  // the held host), then the 8KB output buffer absorbs 4 more? No — the
  // first 4 *drain* (credits exist); after that credits are gone, so the
  // output queue retains what the crossbar moved: 4 packets (8192 B), and
  // nothing remains at the inputs.
  for (std::uint64_t i = 0; i < 8; ++i) {
    inject(static_cast<PortId>(i % 2), 1, 1_ms, 2048, kRegulatedVc, i);
  }
  sim_.run();
  EXPECT_EQ(hosts_[1].delivered.size(), 4u);
  EXPECT_EQ(sw_->packets_queued(), 4u);
  hosts_[1].release();
  sim_.run();
  EXPECT_EQ(hosts_[1].delivered.size(), 8u);
  EXPECT_EQ(sw_->packets_queued(), 0u);
}

TEST_F(CioqFixture, InputBuffersHoldOverflowBeyondOutputBuffer) {
  SwitchParams p;
  p.arch = SwitchArch::kSimple2Vc;
  build(p);
  hosts_[1].hold_credits = true;
  // 12 x 2048 paced at link rate (so injection credits recycle): 4 drain
  // into held credits, 4 sit in the output buffer, 4 remain across the two
  // input buffers.
  for (std::uint64_t i = 0; i < 12; ++i) {
    sim_.schedule_at(TimePoint::from_ps(static_cast<std::int64_t>(i / 2) * 2'200'000),
                     [this, i] {
                       inject(static_cast<PortId>(i % 2), 1, 1_ms, 2048,
                              kRegulatedVc, i);
                     });
  }
  sim_.run();
  EXPECT_EQ(hosts_[1].delivered.size(), 4u);
  EXPECT_EQ(sw_->packets_queued(), 8u);
  hosts_[1].hold_credits = false;  // resume normal credit returns
  hosts_[1].release();
  sim_.run();
  EXPECT_EQ(hosts_[1].delivered.size(), 12u);
}

TEST_F(CioqFixture, OrderErrorFrozenInOutputFifo) {
  // Two packets from *different inputs*: the later-deadline one crosses the
  // crossbar first and freezes ahead in the output FIFO. With Simple this
  // is an order error; with Advanced the take-over queue fixes it.
  for (const SwitchArch arch :
       {SwitchArch::kSimple2Vc, SwitchArch::kAdvanced2Vc}) {
    SCOPED_TRACE(std::string(to_string(arch)));
    sw_.reset();
    for (auto& c : in_) c.reset();
    for (auto& c : out_) c.reset();
    for (auto& h : hosts_) h = SinkHost{};
    SwitchParams p;
    p.arch = arch;
    build(p);
    // id1 late deadline, arrives first; id2 early deadline, 300ns later;
    // a long id0 occupies the output link so both wait in the output queue.
    inject(0, 3, 1_ms, 2048, kRegulatedVc, 0);
    sim_.schedule_at(sim_.now() + 2200_ns,
                     [&] { inject(1, 3, 900_us, 1000, kRegulatedVc, 1); });
    sim_.schedule_at(sim_.now() + 2500_ns,
                     [&] { inject(2, 3, 10_us, 1000, kRegulatedVc, 2); });
    sim_.run();
    ASSERT_EQ(hosts_[3].delivered.size(), 3u);
    if (arch == SwitchArch::kSimple2Vc) {
      EXPECT_EQ(hosts_[3].delivered[1].second, 1u);  // frozen inversion
      EXPECT_GE(sw_->order_errors(), 1u);
      EXPECT_EQ(sw_->order_errors_vc(kRegulatedVc), sw_->order_errors());
    } else {
      EXPECT_EQ(hosts_[3].delivered[1].second, 2u);  // take-over wins
      EXPECT_EQ(sw_->order_errors(), 0u);
      EXPECT_GE(sw_->takeovers(), 1u);
    }
  }
}

TEST_F(CioqFixture, PerVcOrderErrorAccounting) {
  SwitchParams p;
  p.arch = SwitchArch::kSimple2Vc;
  build(p);
  // Inversion on the best-effort VC only.
  inject(0, 3, 1_ms, 2048, kBestEffortVc, 0);
  sim_.schedule_at(sim_.now() + 2200_ns,
                   [&] { inject(1, 3, 900_us, 1000, kBestEffortVc, 1); });
  sim_.schedule_at(sim_.now() + 2500_ns,
                   [&] { inject(2, 3, 10_us, 1000, kBestEffortVc, 2); });
  sim_.run();
  EXPECT_GE(sw_->order_errors_vc(kBestEffortVc), 1u);
  EXPECT_EQ(sw_->order_errors_vc(kRegulatedVc), 0u);
}

TEST_F(CioqFixture, HeapOpLatencySlowsIdealDrain) {
  SwitchParams p;
  p.arch = SwitchArch::kIdeal;
  p.heap_op_latency = 500_ns;
  build(p);
  // Two packets to the same output: second drain must wait an extra 500ns
  // beyond the first packet's serialization.
  inject(0, 1, 1_ms, 1000, kRegulatedVc, 1);
  inject(2, 1, 1_ms, 1000, kRegulatedVc, 2);
  sim_.run();
  ASSERT_EQ(hosts_[1].delivered.size(), 2u);
  const auto gap = hosts_[1].delivered[1].first - hosts_[1].delivered[0].first;
  EXPECT_EQ(gap.ps(), (1000 + 500) * 1000);
}

TEST_F(CioqFixture, HeapOpLatencyIgnoredByNonHeapArchs) {
  SwitchParams p;
  p.arch = SwitchArch::kAdvanced2Vc;
  p.heap_op_latency = 500_ns;  // must have no effect
  build(p);
  inject(0, 1, 1_ms, 1000, kRegulatedVc, 1);
  inject(2, 1, 1_ms, 1000, kRegulatedVc, 2);
  sim_.run();
  ASSERT_EQ(hosts_[1].delivered.size(), 2u);
  const auto gap = hosts_[1].delivered[1].first - hosts_[1].delivered[0].first;
  EXPECT_EQ(gap.ps(), 1000 * 1000);
}

}  // namespace
}  // namespace dqos
