/// RingBuffer / PacketRing — the contiguous storage under every switch
/// queue. The properties that matter to the datapath: FIFO order survives
/// wrap-around and growth, capacity only ever moves in power-of-two chunks
/// (so steady state never allocates), and move-only elements (PacketPtr)
/// round-trip without copies. The last test drives a recorded random trace
/// against a std::deque reference model — the container the ring replaced —
/// so any divergence in observable behaviour fails loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "proto/packet_pool.hpp"
#include "switchfab/packet_ring.hpp"
#include "util/rng.hpp"

namespace dqos {
namespace {

TEST(RingBuffer, StartsEmptyWithNoSlab) {
  RingBuffer<int> r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.capacity(), 0u);  // no allocation until first push
}

TEST(RingBuffer, FifoOrderAcrossManyWraps) {
  RingBuffer<int> r;
  // Keep occupancy low but push far beyond capacity so the head cursor
  // laps the slab many times; order must hold through every wrap.
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int k = 0; k < 7; ++k) r.push_back(next_in++);
    for (int k = 0; k < 7; ++k) {
      ASSERT_EQ(r.front(), next_out);
      EXPECT_EQ(r.pop_front(), next_out++);
    }
  }
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.capacity(), RingBuffer<int>::kMinCapacity);  // never grew
}

TEST(RingBuffer, GrowsInPowerOfTwoChunksOnlyWhenFull) {
  RingBuffer<int> r;
  std::size_t last_cap = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t cap_before = r.capacity();
    r.push_back(i);
    if (r.capacity() != cap_before) {
      // A growth step: only ever triggered by a full ring, and always to
      // the next power of two (or the floor chunk).
      EXPECT_EQ(cap_before, last_cap);
      EXPECT_EQ(r.capacity(),
                cap_before ? cap_before * 2 : RingBuffer<int>::kMinCapacity);
      EXPECT_EQ(r.size() - 1, cap_before);  // was full before the push
      last_cap = r.capacity();
    }
  }
  // Growth mid-wrap must preserve order.
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(r.pop_front(), i);
}

TEST(RingBuffer, GrowthPreservesOrderWhenWindowWraps) {
  RingBuffer<int> r;
  // Advance the head so the live window straddles the slab boundary, then
  // fill to capacity and push once more to force a mid-wrap reallocate.
  for (int i = 0; i < 12; ++i) r.push_back(i);
  for (int i = 0; i < 12; ++i) r.pop_front();
  int v = 100;
  while (r.size() < r.capacity()) r.push_back(v++);
  r.push_back(v++);  // reallocates with head != 0
  int expect = 100;
  while (!r.empty()) EXPECT_EQ(r.pop_front(), expect++);
  EXPECT_EQ(expect, v);
}

TEST(RingBuffer, PopBackAndBackAccessors) {
  RingBuffer<int> r;
  for (int i = 0; i < 20; ++i) r.push_back(i);
  EXPECT_EQ(r.back(), 19);
  EXPECT_EQ(r.pop_back(), 19);
  EXPECT_EQ(r.pop_back(), 18);
  EXPECT_EQ(r.front(), 0);
  EXPECT_EQ(r.size(), 18u);
  // Deque usage from both ends (the FIFO min-tracker pattern).
  r.push_back(40);
  EXPECT_EQ(r.back(), 40);
  EXPECT_EQ(r.at(0), 0);
  EXPECT_EQ(r.at(r.size() - 1), 40);
}

TEST(RingBuffer, ReserveRoundsUpAndPreventsReallocation) {
  RingBuffer<int> r;
  r.reserve(100);
  EXPECT_EQ(r.capacity(), 128u);
  for (int i = 0; i < 128; ++i) r.push_back(i);
  EXPECT_EQ(r.capacity(), 128u);  // no growth while within reserve
  RingBuffer<int> sized(33);
  EXPECT_EQ(sized.capacity(), 64u);
}

TEST(PacketRingMoveOnly, PacketPtrsRoundTripByMove) {
  PacketPool pool;
  PacketRing ring;
  for (std::uint32_t i = 0; i < 64; ++i) {
    PacketPtr p = pool.make();
    p->hdr.wire_bytes = 64 + i;
    p->hdr.flow_seq = i;
    ring.push_back(std::move(p));
  }
  EXPECT_EQ(ring.size(), 64u);
  EXPECT_EQ(ring.front()->hdr.flow_seq, 0u);
  EXPECT_EQ(ring.back()->hdr.flow_seq, 63u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    PacketPtr p = ring.pop_front();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->hdr.flow_seq, i);
    EXPECT_EQ(p->size(), 64 + i);
  }
  // clear() on live move-only contents releases them back to the pool.
  for (std::uint32_t i = 0; i < 10; ++i) ring.push_back(pool.make());
  ring.clear();
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, MatchesDequeReferenceOnRandomTrace) {
  // Replay one recorded random op trace against both containers; every
  // observable (front/back/size/popped values, at() sweeps) must agree.
  RingBuffer<std::uint64_t> ring;
  std::deque<std::uint64_t> ref;
  Rng rng(0x51a6u);
  std::uint64_t next = 0;
  for (int step = 0; step < 200000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op < 5 || ref.empty()) {  // bias toward growth, never pop empty
      ring.push_back(next);
      ref.push_back(next);
      ++next;
    } else if (op < 8) {
      ASSERT_EQ(ring.pop_front(), ref.front());
      ref.pop_front();
    } else {
      ASSERT_EQ(ring.pop_back(), ref.back());
      ref.pop_back();
    }
    ASSERT_EQ(ring.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(ring.front(), ref.front());
      ASSERT_EQ(ring.back(), ref.back());
    }
    if (step % 4096 == 0) {  // periodic full-window sweep via at()
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ring.at(i), ref[i]);
      }
    }
  }
}

}  // namespace
}  // namespace dqos
