/// Weighted VC arbitration end-to-end at a switch (the Traditional
/// multi-VC ablation's machinery): with both VCs continuously backlogged,
/// the link's byte shares must follow the configured table.
#include <gtest/gtest.h>

#include "proto/packet_pool.hpp"
#include "switchfab/switch.hpp"
#include "util/rng.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

struct CountingHost final : PacketReceiver {
  void receive_packet(PacketPtr p, PortId) override {
    bytes_per_vc[p->hdr.vc] += p->size();
    from_switch->return_credits(p->hdr.vc, p->size());
  }
  Channel* from_switch = nullptr;
  std::array<std::uint64_t, 4> bytes_per_vc{};
};

class WeightedVcFixture : public testing::Test {
 protected:
  void build(std::vector<std::uint32_t> weights) {
    SwitchParams params;
    params.arch = SwitchArch::kTraditional2Vc;
    params.num_vcs = static_cast<std::uint8_t>(weights.size());
    params.vc_weights = std::move(weights);
    sw_ = std::make_unique<Switch>(sim_, 100, 4, params);
    for (PortId port = 0; port < 4; ++port) {
      // Injection credits must mirror the switch's input buffer capacity.
      in_[port] = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0),
                                            100_ns, params.num_vcs,
                                            params.buffer_bytes_per_vc);
      in_[port]->connect_to(sw_.get(), port);
      sw_->attach_input(port, in_[port].get());
      out_[port] = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0),
                                             100_ns, params.num_vcs, 1 << 20);
      out_[port]->connect_to(&hosts_[port], 0);
      sw_->attach_output(port, out_[port].get());
      hosts_[port].from_switch = out_[port].get();
    }
  }

  /// Feeds `n` packets of `vc` from input 0 toward output 1 over time;
  /// the default interval offers twice the link rate so the output stays
  /// saturated (packets without injection credits are skipped).
  void feed(VcId vc, int n, std::int64_t interval_ps = 1'100'000) {
    for (int i = 0; i < n; ++i) {
      sim_.schedule_at(TimePoint::from_ps(i * interval_ps), [this, vc] {
        PacketPtr p = pool_.make();
        p->hdr.wire_bytes = 2048;
        p->hdr.vc = vc;
        p->hdr.tclass = vc == 0 ? TrafficClass::kControl : TrafficClass::kBestEffort;
        p->hdr.ttd = 1_ms;
        p->hdr.route.push_hop(1);
        if (in_[0]->has_credits(vc, 2048)) {
          in_[0]->consume_credits(vc, 2048);
          in_[0]->send(std::move(p));
        }
      });
    }
  }

  Simulator sim_;
  PacketPool pool_;
  std::unique_ptr<Switch> sw_;
  std::array<std::unique_ptr<Channel>, 4> in_, out_;
  std::array<CountingHost, 4> hosts_;
};

TEST_F(WeightedVcFixture, EqualWeightsShareTheLinkEvenly) {
  build({1, 1});
  feed(0, 400);
  feed(1, 400);
  sim_.run();
  const double b0 = static_cast<double>(hosts_[1].bytes_per_vc[0]);
  const double b1 = static_cast<double>(hosts_[1].bytes_per_vc[1]);
  ASSERT_GT(b0 + b1, 0.0);
  EXPECT_NEAR(b0 / (b0 + b1), 0.5, 0.06);
}

TEST_F(WeightedVcFixture, ThreeToOneWeights) {
  build({3, 1});
  feed(0, 600);
  feed(1, 600);
  sim_.run();
  const double b0 = static_cast<double>(hosts_[1].bytes_per_vc[0]);
  const double b1 = static_cast<double>(hosts_[1].bytes_per_vc[1]);
  EXPECT_NEAR(b0 / (b0 + b1), 0.75, 0.08);
}

TEST_F(WeightedVcFixture, IdleVcDoesNotWasteBandwidth) {
  // Work conservation: only VC1 offers traffic; it gets the whole link.
  // Feed at a sustainable rate so no injection is credit-skipped.
  build({3, 1});
  feed(1, 200, 2'300'000);
  sim_.run();
  EXPECT_EQ(hosts_[1].bytes_per_vc[0], 0u);
  EXPECT_EQ(hosts_[1].bytes_per_vc[1], 200u * 2048u);
}

TEST_F(WeightedVcFixture, FourVcTable) {
  build({4, 2, 1, 1});
  for (VcId vc = 0; vc < 4; ++vc) feed(vc, 400);
  sim_.run();
  double total = 0;
  for (const auto b : hosts_[1].bytes_per_vc) total += static_cast<double>(b);
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(static_cast<double>(hosts_[1].bytes_per_vc[0]) / total, 0.5, 0.08);
  EXPECT_NEAR(static_cast<double>(hosts_[1].bytes_per_vc[1]) / total, 0.25, 0.06);
}

// --------- banked-deficit bound (policy-level regression) -----------------

/// The DRR bank must never exceed one allocation plus one quantum, no
/// matter how adversarial the grant sequence: without the clamp, a VC that
/// the ring repeatedly skips (blocked upstream) would accrue unbounded
/// credit and then monopolize the link for arbitrarily long when it wakes.
TEST(WeightedVcDeficit, BankIsClampedUnderAdversarialSequences) {
  const std::uint32_t quantum = 4096;
  WeightedVcPolicy pol({4, 2, 1, 1}, quantum);
  Rng rng(2024);
  const auto check_bound = [&] {
    for (VcId vc = 0; vc < 4; ++vc) {
      EXPECT_LE(pol.deficit(vc), pol.allocation(vc) + quantum)
          << "vc " << static_cast<int>(vc) << " hoarded credit";
    }
  };
  check_bound();
  // Phase 1: VC3 never transmits (simulates a long credit block) while the
  // others cycle with max-size packets — the classic hoarding setup.
  for (int i = 0; i < 50'000; ++i) {
    pol.granted(static_cast<VcId>(rng.uniform_int(0, 2)), 2048);
    check_bound();
  }
  // Phase 2: VC3 wakes. Its first service round must be bounded by one
  // allocation + one quantum of bytes, not 50k rounds of back-credit.
  std::int64_t vc3_burst = 0;
  pol.granted(3, 2048);
  vc3_burst += 2048;
  while (pol.order().front() == 3) {
    pol.granted(3, 2048);
    vc3_burst += 2048;
    ASSERT_LE(vc3_burst, pol.allocation(3) + quantum + 2048);
  }
  check_bound();
  // Phase 3: random interleavings with mixed sizes (including overshooting
  // jumbo grants) keep the bank bounded on every step.
  for (int i = 0; i < 50'000; ++i) {
    const auto vc = static_cast<VcId>(rng.uniform_int(0, 3));
    const auto bytes =
        static_cast<std::uint32_t>(rng.uniform_int(64, 9000));
    pol.granted(vc, bytes);
    check_bound();
  }
}

/// Overshoot debt carries into the next round (banked DRR): a VC whose
/// packets always overshoot its allocation must not get a fresh full
/// allocation every round, or its long-run share exceeds its weight.
TEST(WeightedVcDeficit, OvershootDebtCarriesAcrossRounds) {
  const std::uint32_t quantum = 1024;
  WeightedVcPolicy pol({1, 1}, quantum);
  // VC0 sends one 4 KB packet per round against a 1 KB allocation; VC1
  // drains in 1 KB packets. Over many rounds the byte shares must track the
  // 1:1 weights despite VC0's per-round overshoot.
  std::int64_t b0 = 0, b1 = 0;
  for (int round = 0; round < 4000; ++round) {
    std::vector<VcId> order = pol.order();
    if (order.front() == 0) {
      pol.granted(0, 4096);
      b0 += 4096;
    } else {
      pol.granted(1, 1024);
      b1 += 1024;
    }
  }
  ASSERT_GT(b0, 0);
  ASSERT_GT(b1, 0);
  const double share0 =
      static_cast<double>(b0) / static_cast<double>(b0 + b1);
  EXPECT_NEAR(share0, 0.5, 0.05);
}

}  // namespace
}  // namespace dqos
