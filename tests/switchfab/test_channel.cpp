#include "switchfab/channel.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

#include <vector>

#include "proto/packet_pool.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

struct Recorder final : PacketReceiver {
  struct Delivery {
    TimePoint when;
    PortId port;
    std::uint64_t packet_id;
  };
  explicit Recorder(Simulator& s) : sim(s) {}
  void receive_packet(PacketPtr p, PortId in_port) override {
    deliveries.push_back({sim.now(), in_port, p->hdr.packet_id});
  }
  Simulator& sim;
  std::vector<Delivery> deliveries;
};

class ChannelTest : public testing::Test {
 protected:
  ChannelTest()
      : ch_(sim_, Bandwidth::from_gbps(8.0), 100_ns, /*num_vcs=*/2,
            /*credits_per_vc=*/8192),
        rx_(sim_) {
    ch_.connect_to(&rx_, 3);
  }
  PacketPtr pkt(std::uint32_t bytes, std::uint64_t id = 1) {
    PacketPtr p = pool_.make();
    p->hdr.wire_bytes = bytes;
    p->hdr.packet_id = id;
    return p;
  }
  Simulator sim_;
  Channel ch_;
  Recorder rx_;
  PacketPool pool_;
};

TEST_F(ChannelTest, DeliversAfterSerializationPlusLatency) {
  ch_.send(pkt(2048));
  sim_.run();
  ASSERT_EQ(rx_.deliveries.size(), 1u);
  // 2048 B at 8 Gb/s = 2048 ns; + 100 ns latency.
  EXPECT_EQ(rx_.deliveries[0].when.ps(), (2048 + 100) * 1000);
  EXPECT_EQ(rx_.deliveries[0].port, 3);
}

TEST_F(ChannelTest, SerializationScalesWithSize) {
  EXPECT_EQ(ch_.serialization_time(128).ps(), 128'000);
  EXPECT_EQ(ch_.serialization_time(100 * 1024).ps(),
            static_cast<std::int64_t>(100 * 1024) * 1000);
}

TEST_F(ChannelTest, CreditsStartAtCapacityPerVc) {
  EXPECT_EQ(ch_.credits(0), 8192);
  EXPECT_EQ(ch_.credits(1), 8192);
  EXPECT_TRUE(ch_.has_credits(0, 8192));
  EXPECT_FALSE(ch_.has_credits(0, 8193));
}

TEST_F(ChannelTest, ConsumeAndReturnRoundTrip) {
  ch_.consume_credits(0, 5000);
  EXPECT_EQ(ch_.credits(0), 3192);
  EXPECT_EQ(ch_.credits(1), 8192);  // independent pools
  ch_.return_credits(0, 5000);
  EXPECT_EQ(ch_.credits(0), 3192);  // not yet: credits ride the wire
  sim_.run();
  EXPECT_EQ(ch_.credits(0), 8192);
}

TEST_F(ChannelTest, CreditReturnTakesWireLatency) {
  ch_.consume_credits(1, 100);
  ch_.return_credits(1, 100);
  sim_.run_until(TimePoint::from_ps(99'000));
  EXPECT_EQ(ch_.credits(1), 8092);
  sim_.run_until(TimePoint::from_ps(100'000));
  EXPECT_EQ(ch_.credits(1), 8192);
}

TEST_F(ChannelTest, OnCreditCallbackFires) {
  int calls = 0;
  ch_.set_on_credit({[](void* c) { ++*static_cast<int*>(c); }, &calls});
  ch_.consume_credits(0, 10);
  ch_.return_credits(0, 10);
  sim_.run();
  EXPECT_EQ(calls, 1);
}

TEST_F(ChannelTest, StatsAccumulate) {
  ch_.send(pkt(1000, 1));
  sim_.run();
  ch_.send(pkt(500, 2));
  sim_.run();
  EXPECT_EQ(ch_.packets_sent(), 2u);
  EXPECT_EQ(ch_.bytes_sent(), 1500u);
  EXPECT_EQ(ch_.busy_time().ps(), 1'500'000);
}

TEST_F(ChannelTest, BackToBackPacketsKeepOrder) {
  ch_.send(pkt(1000, 1));
  ch_.send(pkt(100, 2));  // shorter, sent immediately after (sender's duty
                          // to respect serialization; channel keeps order by
                          // schedule: 1100ns < 1? no: 1st at 1100, 2nd at 200)
  sim_.run();
  ASSERT_EQ(rx_.deliveries.size(), 2u);
  // Without sender-side busy handling, the short packet *would* overtake —
  // documenting that the sender must serialize sends. Here we just check
  // both arrive.
}

TEST_F(ChannelTest, ConsumeWithoutCreditsAborts) {
  ch_.consume_credits(0, 8192);
  EXPECT_DEATH(ch_.consume_credits(0, 1), "precondition");
}

TEST_F(ChannelTest, CreditConservationUnderRandomTraffic) {
  // Property: consumed - returned == capacity - credits at every quiescent
  // point; credits never exceed capacity after a full drain.
  Rng rng(3);
  std::int64_t outstanding = 0;  // bytes consumed but not yet returned
  for (int i = 0; i < 500; ++i) {
    const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 2000));
    if (rng.chance(0.5) && ch_.has_credits(0, bytes)) {
      ch_.consume_credits(0, bytes);
      outstanding += bytes;
    } else if (outstanding > 0) {
      const auto back = std::min<std::int64_t>(outstanding, bytes);
      ch_.return_credits(0, static_cast<std::uint32_t>(back));
      outstanding -= back;
    }
    if (rng.chance(0.2)) sim_.run();
  }
  ch_.return_credits(0, static_cast<std::uint32_t>(outstanding));
  sim_.run();
  EXPECT_EQ(ch_.credits(0), 8192);
}

TEST_F(ChannelTest, ZeroCreditStallResumesOnReturn) {
  int kicks = 0;
  ch_.set_on_credit({[](void* c) { ++*static_cast<int*>(c); }, &kicks});
  ch_.consume_credits(0, 8192);  // drain VC0 to zero — sender must stall
  EXPECT_FALSE(ch_.has_credits(0, 1));
  EXPECT_EQ(kicks, 0);
  ch_.return_credits(0, 2048);
  sim_.run();
  EXPECT_EQ(kicks, 1);  // the stalled sender gets re-armed exactly once
  EXPECT_TRUE(ch_.has_credits(0, 2048));
  EXPECT_FALSE(ch_.has_credits(0, 2049));
}

TEST_F(ChannelTest, SameInstantCreditReturnsCoalesceIntoOneFlush) {
  // PR 7 coalescing (DESIGN.md §11): returns folded within one instant on
  // one (channel, vc) ride a single wire event — cumulative bytes exact,
  // exactly one on_credit kick when the merged batch lands.
  int kicks = 0;
  ch_.set_on_credit({[](void* c) { ++*static_cast<int*>(c); }, &kicks});
  ch_.consume_credits(0, 600);
  ch_.return_credits(0, 100);
  ch_.return_credits(0, 200);
  ch_.return_credits(0, 300);
  EXPECT_EQ(ch_.credits(0), 8192 - 600);  // nothing lands early
  sim_.run();
  EXPECT_EQ(ch_.credits(0), 8192);
  EXPECT_EQ(kicks, 1);
}

TEST_F(ChannelTest, DistinctInstantCreditReturnsKeepTheirOwnFlushes) {
  // Returns at different instants must NOT merge: each lands exactly one
  // wire latency after it was issued, with its own kick.
  int kicks = 0;
  ch_.set_on_credit({[](void* c) { ++*static_cast<int*>(c); }, &kicks});
  ch_.consume_credits(0, 300);
  ch_.return_credits(0, 100);  // t=0 -> lands at 100 ns
  sim_.run_until(TimePoint::from_ps(50'000));
  ch_.return_credits(0, 200);  // t=50 ns -> lands at 150 ns
  sim_.run_until(TimePoint::from_ps(100'000));
  EXPECT_EQ(ch_.credits(0), 8192 - 200);  // only the first batch landed
  EXPECT_EQ(kicks, 1);
  sim_.run();
  EXPECT_EQ(ch_.credits(0), 8192);
  EXPECT_EQ(kicks, 2);
}

TEST_F(ChannelTest, CreditCoalescingIsPerVc) {
  // Same instant, different VCs: separate batches, separate flushes, and
  // per-VC byte totals stay exact.
  ch_.consume_credits(0, 150);
  ch_.consume_credits(1, 250);
  ch_.return_credits(0, 100);
  ch_.return_credits(1, 250);
  ch_.return_credits(0, 50);
  sim_.run();
  EXPECT_EQ(ch_.credits(0), 8192);
  EXPECT_EQ(ch_.credits(1), 8192);
}

TEST_F(ChannelTest, CoalescedReturnsConserveBytesUnderChurn) {
  // Conservation property across many mixed-instant groups: the sum of
  // every per-packet return equals the sum delivered by the coalesced
  // flushes, regardless of how the groups fold.
  Rng rng(11);
  std::int64_t outstanding = 0;
  for (int round = 0; round < 200; ++round) {
    const int group = static_cast<int>(rng.uniform_int(1, 5));
    for (int g = 0; g < group; ++g) {
      const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 512));
      if (ch_.has_credits(0, bytes)) {
        ch_.consume_credits(0, bytes);
        ch_.return_credits(0, bytes);  // same instant: folds into the group
      }
    }
    // Advance a random sub-latency step so some groups share instants
    // with later ones resolved and some batches are still mid-flight.
    sim_.run_for(Duration::picoseconds(
        static_cast<std::int64_t>(rng.uniform_int(1, 60'000))));
  }
  (void)outstanding;
  sim_.run();
  EXPECT_EQ(ch_.credits(0), 8192);
}

TEST_F(ChannelTest, SendWhileDownDropsAndCounts) {
  ch_.fail(/*permanent=*/false);
  EXPECT_FALSE(ch_.is_up());
  ch_.send(pkt(1000));
  ch_.send(pkt(500));
  sim_.run();
  EXPECT_TRUE(rx_.deliveries.empty());
  EXPECT_EQ(ch_.packets_dropped(), 2u);
  EXPECT_EQ(ch_.packets_sent(), 0u);  // drops are not sends
}

TEST_F(ChannelTest, RepairResumesDeliveryAndKicksSender) {
  int kicks = 0;
  ch_.set_on_credit({[](void* c) { ++*static_cast<int*>(c); }, &kicks});
  ch_.fail(/*permanent=*/false);
  ch_.send(pkt(1000, 1));  // lost
  ch_.repair();
  EXPECT_TRUE(ch_.is_up());
  EXPECT_EQ(kicks, 1);  // stalled arbitration re-armed on repair
  ch_.send(pkt(1000, 2));
  sim_.run();
  ASSERT_EQ(rx_.deliveries.size(), 1u);
  EXPECT_EQ(rx_.deliveries[0].packet_id, 2u);
  EXPECT_EQ(ch_.packets_dropped(), 1u);
}

TEST_F(ChannelTest, PermanentFailureSticks) {
  ch_.fail(/*permanent=*/true);
  EXPECT_TRUE(ch_.failed_permanently());
  // Transient repair machinery must refuse to resurrect a dead cable.
  EXPECT_DEATH(ch_.repair(), "precondition");
}

TEST_F(ChannelTest, LoseCreditsClampsAtCounter) {
  EXPECT_EQ(ch_.lose_credits(0, 100), 100u);
  EXPECT_EQ(ch_.credits(0), 8092);
  EXPECT_EQ(ch_.lose_credits(0, 1 << 20), 8092u);  // clamped, never negative
  EXPECT_EQ(ch_.credits(0), 0);
  EXPECT_EQ(ch_.credits_lost(), 8192u);
}

TEST_F(ChannelTest, CreditResyncRestoresLostCredits) {
  ch_.enable_credit_resync(10_us, TimePoint::from_ps(Duration::milliseconds(1).ps()));
  ch_.lose_credits(0, 3000);
  EXPECT_EQ(ch_.credits(0), 5192);
  sim_.run();  // resync window elapses with the VC quiet
  EXPECT_EQ(ch_.credits(0), 8192);  // conservation invariant restores the loss
  EXPECT_GE(ch_.resyncs(), 1u);
  EXPECT_EQ(ch_.resynced_bytes(), 3000u);
}

TEST_F(ChannelTest, CreditResyncRespectsOutstandingBytes) {
  // 2000 B legitimately outstanding downstream (occupancy probe reports it),
  // plus 1000 B genuinely lost: resync must restore only the 1000.
  ch_.set_occupancy_probe(
      {[](void*, VcId) -> std::uint64_t { return 2000; }, nullptr});
  ch_.consume_credits(0, 2000);
  ch_.lose_credits(0, 1000);
  ch_.enable_credit_resync(10_us, TimePoint::from_ps(Duration::milliseconds(1).ps()));
  sim_.run();
  EXPECT_EQ(ch_.credits(0), 8192 - 2000);
  EXPECT_EQ(ch_.resynced_bytes(), 1000u);
}

TEST_F(ChannelTest, CreditResyncNeverConfiscates) {
  // Occupancy says more is downstream than the counter implies (e.g. a stale
  // probe): resync only restores, it never lowers the counter.
  ch_.set_occupancy_probe(
      {[](void*, VcId) -> std::uint64_t { return 4000; }, nullptr});
  ch_.enable_credit_resync(10_us, TimePoint::from_ps(Duration::milliseconds(1).ps()));
  sim_.run();
  EXPECT_EQ(ch_.credits(0), 8192);
  EXPECT_EQ(ch_.resyncs(), 0u);
}

TEST_F(ChannelTest, CorruptNextTtdHitsExactlyOnePacket) {
  ch_.corrupt_next_ttd(50_us);
  ch_.send(pkt(100, 1));
  ch_.send(pkt(100, 2));
  sim_.run();
  EXPECT_EQ(ch_.ttd_corruptions(), 1u);
}

}  // namespace
}  // namespace dqos
