/// Randomized switch-level property tests: for every architecture, under
/// random admissible traffic,
///   (1) conservation — every injected packet is delivered exactly once,
///   (2) per-flow order — flows (fixed input, fixed output, increasing
///       deadlines) are never reordered,
///   (3) quiescence — buffers drain completely once arrivals stop.
#include <gtest/gtest.h>

#include <map>

#include "proto/packet_pool.hpp"
#include "switchfab/switch.hpp"
#include "util/rng.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

struct PropHost final : PacketReceiver {
  void receive_packet(PacketPtr p, PortId) override {
    ++delivered;
    bytes += p->size();
    auto [it, first] = last_seq.try_emplace(p->hdr.flow, p->hdr.flow_seq);
    if (!first) {
      EXPECT_GT(p->hdr.flow_seq, it->second) << "flow " << p->hdr.flow;
      it->second = p->hdr.flow_seq;
    }
    from_switch->return_credits(p->hdr.vc, p->size());
  }
  Channel* from_switch = nullptr;
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  std::map<FlowId, std::uint32_t> last_seq;
};

class SwitchProperty : public testing::TestWithParam<SwitchArch> {
 protected:
  static constexpr std::size_t kPorts = 6;

  void SetUp() override {
    SwitchParams params;
    params.arch = GetParam();
    sw_ = std::make_unique<Switch>(sim_, 100, kPorts, params);
    for (PortId port = 0; port < kPorts; ++port) {
      in_[port] = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0),
                                            100_ns, 2, 8192);
      in_[port]->connect_to(sw_.get(), port);
      sw_->attach_input(port, in_[port].get());
      out_[port] = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0),
                                             100_ns, 2, 8192);
      out_[port]->connect_to(&hosts_[port], 0);
      sw_->attach_output(port, out_[port].get());
      hosts_[port].from_switch = out_[port].get();
    }
  }

  Simulator sim_;
  PacketPool pool_;
  std::unique_ptr<Switch> sw_;
  std::array<std::unique_ptr<Channel>, kPorts> in_, out_;
  std::array<PropHost, kPorts> hosts_;
};

TEST_P(SwitchProperty, ConservationOrderAndQuiescence) {
  Rng rng(2024);
  // One flow per (input, output, vc) triple, with its own increasing
  // deadline clock and sequence counter — the appendix hypotheses.
  struct FlowState {
    std::int64_t deadline_ps = 0;
    std::uint32_t seq = 0;
  };
  std::map<std::tuple<int, int, int>, FlowState> flows;
  std::uint64_t injected = 0, injected_bytes = 0;
  // The raw Channel does not serialize back-to-back sends (a real NIC
  // does): enforce one in-flight serialization per input so same-channel
  // arrival order is preserved (appendix hypothesis 2).
  std::array<TimePoint, kPorts> wire_free{};

  // Drive random admissible traffic for 3 ms: each port-pair flow fires
  // with random sizes/gaps; injections honour credits (skip otherwise).
  for (std::int64_t t_ps = 0; t_ps < 3'000'000'000; t_ps += 40'000'000) {
    const int n_events = static_cast<int>(rng.uniform_int(4, 16));
    for (int e = 0; e < n_events; ++e) {
      const int in = static_cast<int>(rng.uniform_int(0, kPorts - 1));
      const int out = static_cast<int>(rng.uniform_int(0, kPorts - 1));
      const int vc = rng.chance(0.7) ? 0 : 1;
      const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(64, 2064));
      const auto when = TimePoint::from_ps(
          t_ps + static_cast<std::int64_t>(rng.uniform_int(0, 39'000'000)));
      sim_.schedule_at(when, [this, in, out, vc, bytes, &flows, &injected,
                              &injected_bytes, &wire_free, &rng] {
        if (!in_[static_cast<std::size_t>(in)]->has_credits(
                static_cast<VcId>(vc), bytes)) {
          return;  // NIC would wait; the property driver just skips
        }
        if (sim_.now() < wire_free[static_cast<std::size_t>(in)]) return;
        wire_free[static_cast<std::size_t>(in)] =
            sim_.now() + in_[static_cast<std::size_t>(in)]->serialization_time(bytes);
        FlowState& fs = flows[{in, out, vc}];
        fs.deadline_ps += static_cast<std::int64_t>(rng.uniform_int(1, 3'000'000));
        PacketPtr p = pool_.make();
        p->hdr.packet_id = ++injected;
        p->hdr.flow = static_cast<FlowId>(1000 + in * 100 + out * 10 + vc);
        p->hdr.flow_seq = fs.seq++;
        p->hdr.wire_bytes = bytes;
        p->hdr.vc = static_cast<VcId>(vc);
        p->hdr.tclass = vc == 0 ? TrafficClass::kControl : TrafficClass::kBestEffort;
        // TTD relative to "now": deadlines in the near future, sometimes
        // already expired (negative slack is legal).
        p->hdr.ttd = Duration::picoseconds(fs.deadline_ps - sim_.now().ps() +
                                           1'000'000);
        p->hdr.route.push_hop(static_cast<PortId>(out));
        injected_bytes += bytes;
        in_[static_cast<std::size_t>(in)]->consume_credits(static_cast<VcId>(vc),
                                                           bytes);
        in_[static_cast<std::size_t>(in)]->send(std::move(p));
      });
    }
  }
  sim_.run();

  std::uint64_t delivered = 0, delivered_bytes = 0;
  for (const auto& h : hosts_) {
    delivered += h.delivered;
    delivered_bytes += h.bytes;
  }
  EXPECT_GT(injected, 500u);
  EXPECT_EQ(delivered, injected);              // conservation
  EXPECT_EQ(delivered_bytes, injected_bytes);  // byte conservation
  EXPECT_EQ(sw_->packets_queued(), 0u);        // quiescence
  if (GetParam() == SwitchArch::kIdeal) {
    EXPECT_EQ(sw_->order_errors(), 0u);
  }
  // (2) per-flow order is asserted inside PropHost::receive_packet.
}

INSTANTIATE_TEST_SUITE_P(Archs, SwitchProperty, testing::ValuesIn(all_switch_archs()),
                         [](const testing::TestParamInfo<SwitchArch>& pi) {
                           std::string n{to_string(pi.param)};
                           for (char& ch : n) {
                             if (ch == ' ') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace dqos
