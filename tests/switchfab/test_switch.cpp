#include "switchfab/switch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "proto/packet_pool.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

constexpr std::uint32_t kBufBytes = 8 * 1024;

/// Endpoint stub: records deliveries and (optionally) returns credits.
struct TestHost final : PacketReceiver {
  struct Delivery {
    TimePoint when;
    std::uint64_t id;
    Duration ttd;
  };
  void receive_packet(PacketPtr p, PortId) override {
    deliveries.push_back({sim->now(), p->hdr.packet_id, p->hdr.ttd});
    if (!hold_credits) from_switch->return_credits(p->hdr.vc, p->size());
    else held.push_back({p->hdr.vc, p->size()});
  }
  void release_held() {
    for (const auto& [vc, bytes] : held) from_switch->return_credits(vc, bytes);
    held.clear();
  }
  Simulator* sim = nullptr;
  Channel* from_switch = nullptr;  ///< the switch->host channel (credit path)
  bool hold_credits = false;
  std::vector<std::pair<VcId, std::uint32_t>> held;
  std::vector<Delivery> deliveries;
};

class SwitchFixture : public testing::Test {
 protected:
  static constexpr std::size_t kPorts = 4;

  void build(SwitchArch arch, Duration switch_clock_offset = Duration::zero()) {
    SwitchParams params;
    params.arch = arch;
    sw_ = std::make_unique<Switch>(sim_, /*id=*/100, kPorts, params,
                                   LocalClock(switch_clock_offset));
    for (PortId port = 0; port < kPorts; ++port) {
      hosts_[port].sim = &sim_;
      // host -> switch
      to_switch_[port] = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0),
                                                   100_ns, 2, kBufBytes);
      to_switch_[port]->connect_to(sw_.get(), port);
      sw_->attach_input(port, to_switch_[port].get());
      // switch -> host
      to_host_[port] = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0),
                                                 100_ns, 2, kBufBytes);
      to_host_[port]->connect_to(&hosts_[port], 0);
      sw_->attach_output(port, to_host_[port].get());
      hosts_[port].from_switch = to_host_[port].get();
    }
  }

  /// Injects a packet from `in` to `out` with time-to-deadline `ttd`,
  /// consuming injection credits like a real NIC.
  void inject(PortId in, PortId out, Duration ttd, std::uint32_t bytes,
              VcId vc = kRegulatedVc, std::uint64_t id = 0, FlowId flow = 0,
              std::uint32_t seq = 0) {
    PacketPtr p = pool_.make();
    p->hdr.packet_id = id;
    p->hdr.flow = flow;
    p->hdr.flow_seq = seq;
    p->hdr.wire_bytes = bytes;
    p->hdr.vc = vc;
    p->hdr.tclass = vc == kRegulatedVc ? TrafficClass::kControl : TrafficClass::kBestEffort;
    p->hdr.ttd = ttd;
    p->hdr.route.push_hop(out);
    ASSERT_TRUE(to_switch_[in]->has_credits(vc, bytes));
    to_switch_[in]->consume_credits(vc, bytes);
    to_switch_[in]->send(std::move(p));
  }

  Simulator sim_;
  PacketPool pool_;
  std::unique_ptr<Switch> sw_;
  std::array<std::unique_ptr<Channel>, kPorts> to_switch_;
  std::array<std::unique_ptr<Channel>, kPorts> to_host_;
  std::array<TestHost, kPorts> hosts_;
};

TEST_F(SwitchFixture, ForwardsWithExpectedLatency) {
  build(SwitchArch::kAdvanced2Vc);
  inject(0, 2, 1_ms, 1000, kRegulatedVc, 42);
  sim_.run();
  ASSERT_EQ(hosts_[2].deliveries.size(), 1u);
  // 1000B @ 8Gb/s = 1000ns ser + 100ns wire to the switch (tail at 1100);
  // crossbar at 2x speedup moves it in 500ns (output buffer at 1600);
  // output link: 1000ns + 100ns. Total 2700ns.
  EXPECT_EQ(hosts_[2].deliveries[0].when.ps(), 2700 * 1000);
  EXPECT_EQ(hosts_[2].deliveries[0].id, 42u);
  EXPECT_EQ(sw_->counters().packets_forwarded[0], 1u);
  EXPECT_EQ(sw_->packets_queued(), 0u);
}

TEST_F(SwitchFixture, TtdShrinksByTimeSpentInside) {
  build(SwitchArch::kAdvanced2Vc);
  inject(0, 2, 1_ms, 1000);
  sim_.run();
  // TTD was 1 ms at injection-departure (t=0). The switch reconstructs the
  // deadline at *header* arrival (t=100ns): D = 100ns + 1ms. It starts
  // transmitting at 1600ns (tail arrival 1100 + 500ns crossbar transfer),
  // so the re-encoded TTD = 1ms - 1500ns: the time the packet's own
  // serialization and crossbar transfer consumed.
  EXPECT_EQ(hosts_[2].deliveries[0].ttd, 1_ms - 1500_ns);
}

TEST_F(SwitchFixture, TtdInvariantUnderSwitchClockSkew) {
  // Same scenario, wildly skewed switch clock: delivered TTD identical.
  build(SwitchArch::kAdvanced2Vc, /*switch_clock_offset=*/123456_us);
  inject(0, 2, 1_ms, 1000);
  sim_.run();
  ASSERT_EQ(hosts_[2].deliveries.size(), 1u);
  EXPECT_EQ(hosts_[2].deliveries[0].ttd, 1_ms - 1500_ns);
  EXPECT_EQ(hosts_[2].deliveries[0].when.ps(), 2700 * 1000);
}

TEST_F(SwitchFixture, EdfOrdersContendingInputsByDeadline) {
  build(SwitchArch::kAdvanced2Vc);
  // A occupies the output; B and C queue behind and EDF must pick C (50us)
  // over B (100us) despite B arriving first.
  inject(0, 3, 500_us, 1000, kRegulatedVc, 1);
  sim_.schedule_at(TimePoint::from_ps(100'000),
                   [&] { inject(1, 3, 100_us, 1000, kRegulatedVc, 2); });
  sim_.schedule_at(TimePoint::from_ps(200'000),
                   [&] { inject(2, 3, 50_us, 1000, kRegulatedVc, 3); });
  sim_.run();
  ASSERT_EQ(hosts_[3].deliveries.size(), 3u);
  EXPECT_EQ(hosts_[3].deliveries[0].id, 1u);
  EXPECT_EQ(hosts_[3].deliveries[1].id, 3u);  // earliest deadline overtakes
  EXPECT_EQ(hosts_[3].deliveries[2].id, 2u);
}

TEST_F(SwitchFixture, TraditionalIgnoresDeadlines) {
  build(SwitchArch::kTraditional2Vc);
  inject(0, 3, 500_us, 1000, kRegulatedVc, 1);
  sim_.schedule_at(TimePoint::from_ps(100'000),
                   [&] { inject(1, 3, 100_us, 1000, kRegulatedVc, 2); });
  sim_.schedule_at(TimePoint::from_ps(200'000),
                   [&] { inject(2, 3, 50_us, 1000, kRegulatedVc, 3); });
  sim_.run();
  ASSERT_EQ(hosts_[3].deliveries.size(), 3u);
  // Round-robin after port0: port1 then port2, regardless of deadlines.
  EXPECT_EQ(hosts_[3].deliveries[1].id, 2u);
  EXPECT_EQ(hosts_[3].deliveries[2].id, 3u);
}

TEST_F(SwitchFixture, RegulatedVcHasAbsolutePriority) {
  build(SwitchArch::kAdvanced2Vc);
  // Keep output 3 busy with a first packet, then queue one BE (earlier
  // deadline!) and one regulated packet: regulated wins anyway.
  inject(0, 3, 1_ms, 1000, kRegulatedVc, 1);
  sim_.schedule_at(TimePoint::from_ps(100'000),
                   [&] { inject(1, 3, 10_us, 1000, kBestEffortVc, 2); });
  sim_.schedule_at(TimePoint::from_ps(200'000),
                   [&] { inject(2, 3, 900_us, 1000, kRegulatedVc, 3); });
  sim_.run();
  ASSERT_EQ(hosts_[3].deliveries.size(), 3u);
  EXPECT_EQ(hosts_[3].deliveries[1].id, 3u);
  EXPECT_EQ(hosts_[3].deliveries[2].id, 2u);
}

TEST_F(SwitchFixture, BestEffortUsesLinkWhenRegulatedIdle) {
  build(SwitchArch::kAdvanced2Vc);
  inject(0, 1, 1_ms, 2048, kBestEffortVc, 7);
  sim_.run();
  ASSERT_EQ(hosts_[1].deliveries.size(), 1u);
  EXPECT_EQ(hosts_[1].deliveries[0].id, 7u);
}

TEST_F(SwitchFixture, CreditStallThenResume) {
  build(SwitchArch::kAdvanced2Vc);
  hosts_[1].hold_credits = true;
  // 5 x 2KB = 10KB > 8KB of credit: the 5th must wait for credit return.
  for (std::uint64_t i = 0; i < 5; ++i) {
    inject(static_cast<PortId>(i % 2), 1, 1_ms, 2048, kRegulatedVc, i);
  }
  sim_.run();
  EXPECT_EQ(hosts_[1].deliveries.size(), 4u);
  EXPECT_GT(sw_->counters().credit_stalls, 0u);
  EXPECT_EQ(sw_->packets_queued(), 1u);
  hosts_[1].release_held();
  sim_.run();
  EXPECT_EQ(hosts_[1].deliveries.size(), 5u);
  EXPECT_EQ(sw_->packets_queued(), 0u);
}

TEST_F(SwitchFixture, BlockedRegulatedVcDoesNotBlockBestEffort) {
  build(SwitchArch::kAdvanced2Vc);
  hosts_[1].hold_credits = true;
  // Fill VC0 credits toward host 1 (4 x 2KB = 8KB).
  for (std::uint64_t i = 0; i < 4; ++i) inject(0, 1, 1_ms, 2048, kRegulatedVc, i);
  sim_.run();
  ASSERT_EQ(hosts_[1].deliveries.size(), 4u);
  // A 5th regulated packet is credit-blocked; a best-effort packet must
  // still get the link (different VC, own credits).
  inject(0, 1, 1_ms, 2048, kRegulatedVc, 10);
  inject(2, 1, 1_ms, 1024, kBestEffortVc, 11);
  sim_.run();
  ASSERT_EQ(hosts_[1].deliveries.size(), 5u);
  EXPECT_EQ(hosts_[1].deliveries[4].id, 11u);
  hosts_[1].release_held();
  sim_.run();
  EXPECT_EQ(hosts_[1].deliveries.size(), 6u);
}

TEST_F(SwitchFixture, OrderErrorsCountedOnSimpleArch) {
  build(SwitchArch::kSimple2Vc);
  // Same input, same output: a late-deadline packet arrives first and a
  // FIFO cannot let the early-deadline one overtake -> 1 order error.
  inject(0, 3, 900_us, 2048, kRegulatedVc, 1);   // keeps output busy
  sim_.schedule_at(TimePoint::from_ps(2'300'000), [&] {
    inject(1, 3, 800_us, 1000, kRegulatedVc, 2);  // queues (high deadline)
  });
  sim_.schedule_at(TimePoint::from_ps(2'500'000), [&] {
    inject(1, 3, 10_us, 1000, kRegulatedVc, 3);  // lower deadline behind it
  });
  sim_.run();
  ASSERT_EQ(hosts_[3].deliveries.size(), 3u);
  EXPECT_EQ(hosts_[3].deliveries[1].id, 2u);  // FIFO forces the inversion
  EXPECT_EQ(sw_->order_errors(), 1u);
}

TEST_F(SwitchFixture, AdvancedArchTakesOverInSameScenario) {
  build(SwitchArch::kAdvanced2Vc);
  inject(0, 3, 900_us, 2048, kRegulatedVc, 1);
  sim_.schedule_at(TimePoint::from_ps(2'300'000), [&] {
    inject(1, 3, 800_us, 1000, kRegulatedVc, 2);
  });
  sim_.schedule_at(TimePoint::from_ps(2'500'000), [&] {
    inject(1, 3, 10_us, 1000, kRegulatedVc, 3);
  });
  sim_.run();
  ASSERT_EQ(hosts_[3].deliveries.size(), 3u);
  EXPECT_EQ(hosts_[3].deliveries[1].id, 3u);  // take-over queue lets it pass
  EXPECT_EQ(sw_->order_errors(), 0u);
  EXPECT_EQ(sw_->takeovers(), 1u);
}

TEST_F(SwitchFixture, VoqPreventsHeadOfLineBlocking) {
  build(SwitchArch::kSimple2Vc);
  hosts_[1].hold_credits = true;
  // Block output 1 completely (credits exhausted), then send from the same
  // input to output 2: VOQ must let it through immediately.
  for (std::uint64_t i = 0; i < 4; ++i) inject(0, 1, 1_ms, 2048, kRegulatedVc, i);
  sim_.run();
  inject(0, 1, 1_ms, 2048, kRegulatedVc, 50);  // credit-blocked
  inject(0, 2, 1_ms, 1000, kRegulatedVc, 51);  // different VOQ
  sim_.run();
  ASSERT_EQ(hosts_[2].deliveries.size(), 1u);
  EXPECT_EQ(hosts_[2].deliveries[0].id, 51u);
  EXPECT_EQ(sw_->packets_queued(), 1u);
}

TEST_F(SwitchFixture, CrossbarInputSerializes) {
  build(SwitchArch::kAdvanced2Vc);
  // Two packets from the same input to different (idle) outputs cannot
  // leave simultaneously: second starts after the first's serialization.
  inject(0, 1, 1_ms, 2000, kRegulatedVc, 1);
  inject(0, 2, 1_ms, 2000, kRegulatedVc, 2);
  sim_.run();
  ASSERT_EQ(hosts_[1].deliveries.size(), 1u);
  ASSERT_EQ(hosts_[2].deliveries.size(), 1u);
  const auto t1 = hosts_[1].deliveries[0].when.ps();
  const auto t2 = hosts_[2].deliveries[0].when.ps();
  // Raw inject() bypasses NIC pacing: both packets land at the switch at
  // 2100ns. The crossbar *read port* of input 0 then serializes them:
  // transfers 2100-3100 and 3100-4100 (2000B at 2x speedup), each followed
  // by 2000+100ns on its own output link.
  EXPECT_EQ(t1, 5200 * 1000);
  EXPECT_EQ(t2, 6200 * 1000);
}

TEST_F(SwitchFixture, CountersPerClass) {
  build(SwitchArch::kAdvanced2Vc);
  inject(0, 1, 1_ms, 1000, kRegulatedVc, 1);
  inject(1, 2, 1_ms, 500, kBestEffortVc, 2);
  sim_.run();
  EXPECT_EQ(sw_->counters().packets_forwarded[static_cast<std::size_t>(
                TrafficClass::kControl)],
            1u);
  EXPECT_EQ(sw_->counters().bytes_forwarded[static_cast<std::size_t>(
                TrafficClass::kBestEffort)],
            500u);
}

TEST(SwitchArchTest, Names) {
  EXPECT_EQ(to_string(SwitchArch::kTraditional2Vc), "Traditional 2 VCs");
  EXPECT_EQ(to_string(SwitchArch::kIdeal), "Ideal");
  EXPECT_EQ(to_string(SwitchArch::kSimple2Vc), "Simple 2 VCs");
  EXPECT_EQ(to_string(SwitchArch::kAdvanced2Vc), "Advanced 2 VCs");
  EXPECT_EQ(all_switch_archs().size(), 4u);
}

TEST(SwitchArchTest, ArchitectureIngredients) {
  EXPECT_EQ(queue_kind_for(SwitchArch::kIdeal), QueueKind::kHeap);
  EXPECT_EQ(queue_kind_for(SwitchArch::kSimple2Vc), QueueKind::kFifo);
  EXPECT_EQ(queue_kind_for(SwitchArch::kAdvanced2Vc), QueueKind::kTakeover);
  EXPECT_EQ(queue_kind_for(SwitchArch::kTraditional2Vc), QueueKind::kFifo);
  EXPECT_EQ(input_arbiter_for(SwitchArch::kTraditional2Vc),
            InputArbiterKind::kRoundRobin);
  EXPECT_EQ(input_arbiter_for(SwitchArch::kIdeal), InputArbiterKind::kEdf);
}

}  // namespace
}  // namespace dqos
