#include "switchfab/cost_model.hpp"

#include <gtest/gtest.h>

namespace dqos {
namespace {

constexpr std::uint32_t kBuf = 8 * 1024;  // the paper's 8 KB per VC

TEST(CostModel, SramDominatesEveryOrganization) {
  CostModel m;
  for (const QueueKind k :
       {QueueKind::kFifo, QueueKind::kTakeover, QueueKind::kHeap}) {
    const CostBreakdown c = m.buffer_cost(k, kBuf);
    EXPECT_GE(c.sram_bits, kBuf * 8.0);
    EXPECT_GT(c.logic_gates, 0.0);
  }
}

TEST(CostModel, TakeoverBarelyCostsMoreThanFifo) {
  // The paper's pitch: the take-over queue is FIFO hardware plus two
  // comparators — within a few percent of a plain FIFO buffer.
  CostModel m;
  const double fifo = m.buffer_cost(QueueKind::kFifo, kBuf).area_units(m.params());
  const double takeover =
      m.buffer_cost(QueueKind::kTakeover, kBuf).area_units(m.params());
  EXPECT_GT(takeover, fifo);
  EXPECT_LT(takeover / fifo, 1.10);  // < 10% over FIFO
}

TEST(CostModel, HeapSubstantiallyMoreExpensive) {
  CostModel m;
  const double fifo = m.buffer_cost(QueueKind::kFifo, kBuf).area_units(m.params());
  const double heap = m.buffer_cost(QueueKind::kHeap, kBuf).area_units(m.params());
  EXPECT_GT(heap / fifo, 1.15);  // visibly more area per buffer
}

TEST(CostModel, HeapLogicGrowsWithBufferDepth) {
  CostModel m;
  const double small = m.buffer_cost(QueueKind::kHeap, 2 * 1024).logic_gates;
  const double big = m.buffer_cost(QueueKind::kHeap, 64 * 1024).logic_gates;
  EXPECT_GT(big, small);
  // FIFO control logic is depth-independent.
  EXPECT_DOUBLE_EQ(m.buffer_cost(QueueKind::kFifo, 2 * 1024).logic_gates,
                   m.buffer_cost(QueueKind::kFifo, 64 * 1024).logic_gates);
}

TEST(CostModel, EdfArbiterScalesWithRadixRoundRobinBarely) {
  CostModel m;
  const double edf8 = m.arbiter_cost(InputArbiterKind::kEdf, 8).logic_gates;
  const double edf32 = m.arbiter_cost(InputArbiterKind::kEdf, 32).logic_gates;
  const double rr32 = m.arbiter_cost(InputArbiterKind::kRoundRobin, 32).logic_gates;
  EXPECT_NEAR(edf32 / edf8, 31.0 / 7.0, 0.01);  // (n-1) comparators
  EXPECT_LT(rr32, edf32 / 10.0);                // RR is tiny by comparison
}

TEST(CostModel, PaperClaimSimilarCostExceptIdeal) {
  // §5: "the cost of these architectures is similar, except the Ideal".
  CostModel m;
  const std::size_t ports = 16;
  const std::uint8_t vcs = 2;
  const double trad = m.relative_area(SwitchArch::kTraditional2Vc, ports, vcs, kBuf);
  const double simple = m.relative_area(SwitchArch::kSimple2Vc, ports, vcs, kBuf);
  const double advanced = m.relative_area(SwitchArch::kAdvanced2Vc, ports, vcs, kBuf);
  const double ideal = m.relative_area(SwitchArch::kIdeal, ports, vcs, kBuf);
  EXPECT_DOUBLE_EQ(trad, 1.0);
  EXPECT_LT(simple, 1.05);
  EXPECT_LT(advanced, 1.10);
  EXPECT_GT(ideal, advanced * 1.10);  // the odd one out
  EXPECT_GT(ideal, 1.20);
}

TEST(CostModel, MoreVcsCostProportionalBuffers) {
  // The motivation for few VCs (§2.2): buffer area scales with VC count.
  CostModel m;
  const double two =
      m.switch_cost(SwitchArch::kTraditional2Vc, 16, 2, kBuf).sram_bits;
  const double eight =
      m.switch_cost(SwitchArch::kTraditional2Vc, 16, 8, kBuf).sram_bits;
  EXPECT_DOUBLE_EQ(eight / two, 4.0);
}

TEST(CostModel, BreakdownArithmetic) {
  CostBreakdown a{100.0, 10.0};
  CostBreakdown b{50.0, 5.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.sram_bits, 150.0);
  EXPECT_DOUBLE_EQ(a.logic_gates, 15.0);
  const CostBreakdown c = 2.0 * b;
  EXPECT_DOUBLE_EQ(c.sram_bits, 100.0);
  CostParams p;
  p.sram_bits_per_gate = 2.0;
  EXPECT_DOUBLE_EQ(c.area_units(p), 10.0 + 100.0 / 2.0);
}

}  // namespace
}  // namespace dqos
