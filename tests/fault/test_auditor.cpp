/// \file test_auditor.cpp
/// Invariant-auditor tests, positive and negative: a clean run passes
/// every epoch, and planted bugs — a custody leak, an invented credit —
/// throw AuditError naming the violated law, with the census dump
/// attached. The planted bugs bypass all modelled fault accounting on
/// purpose: the auditor must catch corruption no component declared.
#include "fault/auditor.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/network_simulator.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

SimConfig audited_cfg() {
  SimConfig cfg;
  cfg.topology = TopologyKind::kSingleSwitch;
  cfg.single_switch_hosts = 8;
  cfg.load = 0.5;
  cfg.warmup = 200_us;
  cfg.measure = 2_ms;
  cfg.drain = 1_ms;
  cfg.fault.audit_epoch = 200_us;
  return cfg;
}

TEST(AuditorTest, CleanRunPassesEveryEpochAndTheFinalAudit) {
  NetworkSimulator net(audited_cfg());
  const SimReport rep = net.run();
  // ~16 epochs across the 3.2 ms horizon plus the collect_report pass;
  // any violation would have thrown out of run() instead.
  EXPECT_GT(rep.degradation.audits_passed, 10u);
  EXPECT_GT(rep.packets_delivered, 0u);
}

TEST(AuditorTest, CoalescedCreditBatchesBalanceMidFlightEveryEpoch) {
  // PR 7 folds same-batch credit returns into one wire event per
  // (channel, vc). The credit-conservation law must hold at *every*
  // audit epoch, including instants where a merged batch is still riding
  // the wire — credits_in_flight carries the folded bytes until the
  // flush lands, so the census sees identical cumulative totals whether
  // returns travelled per-packet or coalesced.
  SimConfig cfg = audited_cfg();
  cfg.load = 0.8;                 // denser drain batches -> more folding
  cfg.fault.audit_epoch = 50_us;  // audit mid-flight often
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_GT(rep.degradation.audits_passed, 30u);
  EXPECT_GT(rep.packets_delivered, 0u);
}

TEST(AuditorTest, LeakedPacketFailsTheCustodyCensus) {
  NetworkSimulator net(audited_cfg());
  InvariantAuditor* aud = net.auditor();
  ASSERT_NE(aud, nullptr);
  aud->audit_now("baseline");  // pristine platform: every ledger balances

  // Take a packet out of the pool and hide it: outstanding grows, but no
  // registered custody point (host queue, switch buffer, wire) holds it.
  PacketPtr leaked = net.packet_pool().make();
  try {
    aud->audit_now("leak planted");
    FAIL() << "custody census missed a leaked packet";
  } catch (const AuditError& e) {
    EXPECT_NE(std::string(e.what()).find("packet custody"), std::string::npos)
        << e.what();
    EXPECT_NE(e.dump().find("pool:"), std::string::npos);
  }

  leaked.reset();            // hand it back...
  aud->audit_now("healed");  // ...and the census balances again
}

TEST(AuditorTest, CorruptedCreditCounterIsCaughtEitherDirection) {
  NetworkSimulator net(audited_cfg());
  InvariantAuditor* aud = net.auditor();
  ASSERT_NE(aud, nullptr);
  ASSERT_GT(net.num_channels(), 0u);
  aud->audit_now("baseline");

  // Credit invented from nothing: a surplus is a bug whether or not the
  // link was ever faulted.
  net.channel(0).debug_corrupt_credits(/*vc=*/0, +64);
  try {
    aud->audit_now("surplus planted");
    FAIL() << "credit audit missed an invented credit";
  } catch (const AuditError& e) {
    EXPECT_NE(std::string(e.what()).find("credit conservation"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("surplus"), std::string::npos)
        << e.what();
  }

  // Credit destroyed with no fault on record: a deficit on a clean link
  // is equally a violation (only fault-touched links may run deficits).
  net.channel(0).debug_corrupt_credits(/*vc=*/0, -128);  // now 64 short
  EXPECT_THROW(aud->audit_now("deficit planted"), AuditError);

  net.channel(0).debug_corrupt_credits(/*vc=*/0, +64);  // restore
  aud->audit_now("healed");
}

}  // namespace
}  // namespace dqos
