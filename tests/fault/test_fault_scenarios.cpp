/// End-to-end degradation scenarios: a real workload rides out seeded fault
/// storms without hanging, reordering, or losing traffic unaccounted.
#include <gtest/gtest.h>

#include "core/network_simulator.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

TEST(FaultScenario, Mesh16RidesOutTransientLinkStorm) {
  // 16-node mesh, XY routing, repeated seeded link down/up bursts. The run
  // must complete (no hang, no abort), the watchdog must stay silent, and
  // the flow-order invariant must hold through every outage.
  SimConfig cfg;
  cfg.topology = TopologyKind::kMesh2D;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.mesh_concentration = 1;
  cfg.arch = SwitchArch::kAdvanced2Vc;
  cfg.load = 0.5;
  cfg.warmup = 200_us;
  cfg.measure = 3_ms;
  cfg.drain = 2_ms;
  cfg.fault.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.link_down_per_sec = 2500.0;  // ~8 outages in the window
  cfg.fault.link_outage_mean = 200_us;
  cfg.fault.credit_loss_per_sec = 1000.0;
  cfg.fault.credit_resync_window = 100_us;
  cfg.fault.watchdog_interval = 200_us;

  NetworkSimulator net(cfg);
  const SimReport rep = net.run();

  EXPECT_GT(rep.fault.injected.link_failures, 2u);
  EXPECT_EQ(rep.fault.injected.link_failures, rep.fault.injected.link_repairs);
  EXPECT_FALSE(rep.fault.watchdog_fired) << rep.fault.watchdog_report;
  EXPECT_EQ(rep.out_of_order, 0u);
  EXPECT_GT(rep.packets_delivered, 1000u);
  for (const TrafficClass c : all_traffic_classes()) {
    EXPECT_GT(rep.of(c).packets, 0u) << to_string(c);
  }
}

TEST(FaultScenario, ClosPermanentFailuresKeepRegulatedDeadlinesOrShed) {
  // Permanent spine-link deaths on a Clos: admitted regulated flows must
  // either be rerouted over surviving minimal paths (and keep delivering)
  // or be shed with full accounting — never silently starve.
  SimConfig cfg;
  cfg.num_leaves = 4;
  cfg.hosts_per_leaf = 4;
  cfg.num_spines = 4;
  cfg.arch = SwitchArch::kAdvanced2Vc;
  cfg.load = 0.4;
  cfg.warmup = 200_us;
  cfg.measure = 3_ms;
  cfg.drain = 2_ms;
  cfg.fault.enabled = true;
  cfg.fault.seed = 11;
  cfg.fault.link_down_per_sec = 800.0;
  cfg.fault.link_permanent_fraction = 1.0;
  cfg.fault.watchdog_interval = 200_us;

  NetworkSimulator net(cfg);
  const SimReport rep = net.run();

  EXPECT_GT(rep.fault.injected.permanent_link_failures, 0u);
  // Every affected admitted flow is accounted: rerouted or shed.
  EXPECT_GT(rep.fault.flows_rerouted + rep.fault.flows_shed, 0u);
  EXPECT_FALSE(rep.fault.watchdog_fired) << rep.fault.watchdog_report;
  EXPECT_EQ(rep.out_of_order, 0u);
  // Regulated traffic keeps flowing after the reroutes.
  EXPECT_GT(rep.of(TrafficClass::kControl).packets, 100u);
  EXPECT_GT(rep.of(TrafficClass::kMultimedia).packets, 100u);
  // Rerouted control keeps a sane latency at this load (deadline proxy:
  // the class average stays well under a millisecond).
  EXPECT_LT(rep.of(TrafficClass::kControl).avg_packet_latency_us, 1000.0);
}

TEST(FaultScenario, ControlRetriesRecoverMessagesLostToOutages) {
  // With messages dying on dead links, end-to-end control retry must
  // resubmit them; abandoned count stays bounded by the retry budget.
  SimConfig cfg;
  cfg.topology = TopologyKind::kSingleSwitch;
  cfg.single_switch_hosts = 8;
  cfg.load = 0.4;
  cfg.warmup = 200_us;
  cfg.measure = 3_ms;
  cfg.drain = 2_ms;
  cfg.fault.enabled = true;
  cfg.fault.seed = 3;
  cfg.fault.link_down_per_sec = 4000.0;
  cfg.fault.link_outage_mean = 300_us;
  cfg.fault.retry_timeout = 2_ms;
  cfg.fault.watchdog_interval = 200_us;
  // Single switch has no fabric links, so random link-downs have no pool —
  // script outages on injection links instead.
  NetworkSimulator net(cfg);
  net.fault_injector().fail_link_at(TimePoint::from_ps((500_us).ps()),
                                    Endpoint{0, 0}, 800_us);
  net.fault_injector().fail_link_at(TimePoint::from_ps((1500_us).ps()),
                                    Endpoint{1, 0}, 800_us);
  const SimReport rep = net.run();

  EXPECT_EQ(rep.fault.injected.link_failures, 2u);
  EXPECT_FALSE(rep.fault.watchdog_fired) << rep.fault.watchdog_report;
  EXPECT_EQ(rep.out_of_order, 0u);
  EXPECT_GT(rep.packets_delivered, 0u);
}

TEST(FaultScenario, FaultFreeRunMatchesFaultMachineryDisarmed) {
  // cfg.fault.enabled with zero rates arms the recovery machinery (resync
  // cadence, watchdog) but injects nothing: the traffic outcome must be
  // identical to a fully disarmed run — recovery must be invisible on a
  // healthy fabric.
  SimConfig armed;
  armed.num_leaves = 2;
  armed.hosts_per_leaf = 4;
  armed.num_spines = 2;
  armed.load = 0.5;
  armed.warmup = 200_us;
  armed.measure = 2_ms;
  armed.drain = 1_ms;
  SimConfig disarmed = armed;
  armed.fault.enabled = true;

  NetworkSimulator na(armed);
  const SimReport ra = na.run();
  NetworkSimulator nd(disarmed);
  const SimReport rd = nd.run();

  EXPECT_TRUE(ra.fault.active);
  EXPECT_FALSE(rd.fault.active);
  EXPECT_EQ(ra.packets_delivered, rd.packets_delivered);
  EXPECT_EQ(ra.packets_injected, rd.packets_injected);
  EXPECT_EQ(ra.fault.credit_resyncs, 0u);  // healthy fabric: nothing to fix
  for (const TrafficClass c : all_traffic_classes()) {
    EXPECT_EQ(ra.of(c).packets, rd.of(c).packets) << to_string(c);
    EXPECT_DOUBLE_EQ(ra.of(c).avg_packet_latency_us,
                     rd.of(c).avg_packet_latency_us)
        << to_string(c);
  }
}

}  // namespace
}  // namespace dqos
