#include "fault/watchdog.hpp"

#include <gtest/gtest.h>

#include "core/network_simulator.hpp"
#include "host/host.hpp"
#include "switchfab/channel.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

/// Two hosts wired back-to-back through failable channels: small enough to
/// wedge (or not) on demand.
class WatchdogFixture : public testing::Test {
 protected:
  WatchdogFixture() {
    h0_ = std::make_unique<Host>(sim_, 0, HostParams{}, LocalClock{}, pool_);
    h1_ = std::make_unique<Host>(sim_, 1, HostParams{}, LocalClock{}, pool_);
    c01_ = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0), 100_ns,
                                     2, 8192);
    c10_ = std::make_unique<Channel>(sim_, Bandwidth::from_gbps(8.0), 100_ns,
                                     2, 8192);
    c01_->connect_to(h1_.get(), 0);
    c10_->connect_to(h0_.get(), 0);
    h0_->attach_uplink(c01_.get());
    h0_->attach_downlink(c10_.get());
    h1_->attach_uplink(c10_.get());
    h1_->attach_downlink(c01_.get());
  }

  FlowSpec control_spec(FlowId id) {
    FlowSpec s;
    s.id = id;
    s.src = 0;
    s.dst = 1;
    s.tclass = TrafficClass::kControl;
    s.vc = kRegulatedVc;
    s.policy = DeadlinePolicy::kControlLatency;
    s.deadline_bw = Bandwidth::from_gbps(8.0);
    return s;
  }

  Simulator sim_;
  PacketPool pool_;
  std::unique_ptr<Host> h0_, h1_;
  std::unique_ptr<Channel> c01_, c10_;
};

TEST_F(WatchdogFixture, SilentOnHealthyTraffic) {
  DeadlockWatchdog dog(sim_, 10_us, 3);
  dog.register_host(h0_.get());
  dog.register_host(h1_.get());
  h0_->open_flow(control_spec(1));
  h0_->submit(1, 8192);
  dog.arm(TimePoint::from_ps((1_ms).ps()));
  sim_.run();
  dog.final_check();
  EXPECT_FALSE(dog.fired());
  EXPECT_EQ(h1_->packets_received(), h0_->packets_injected());
  EXPECT_GT(dog.progress_signature(), 0u);
  EXPECT_EQ(dog.queued_packets(), 0u);
}

TEST_F(WatchdogFixture, FiresWhenLinkWedgesTheNic) {
  DeadlockWatchdog dog(sim_, 10_us, 3);
  dog.register_host(h0_.get());
  dog.register_host(h1_.get());
  h0_->open_flow(control_spec(1));
  c01_->fail(/*permanent=*/false);  // nobody ever repairs it
  h0_->submit(1, 4096);
  EXPECT_GT(dog.queued_packets(), 0u);  // parked in the NIC, link down
  dog.arm(TimePoint::from_ps((1_ms).ps()));
  sim_.run();
  EXPECT_TRUE(dog.fired());
  // The report names the stall and carries per-node queue diagnostics.
  EXPECT_NE(dog.report().find("DEADLOCK WATCHDOG"), std::string::npos);
  EXPECT_NE(dog.report().find("host 0"), std::string::npos);
}

TEST_F(WatchdogFixture, FinalCheckCatchesWedgeWithoutCadence) {
  // No periodic sampling armed at all: an empty calendar with traffic still
  // queued is a deadlock by definition.
  DeadlockWatchdog dog(sim_, 10_us, 3);
  dog.register_host(h0_.get());
  dog.register_host(h1_.get());
  h0_->open_flow(control_spec(1));
  c01_->fail(/*permanent=*/false);
  h0_->submit(1, 2048);
  sim_.run();
  EXPECT_FALSE(dog.fired());
  dog.final_check();
  EXPECT_TRUE(dog.fired());
  EXPECT_EQ(sim_.events_pending(), 0u);
}

TEST_F(WatchdogFixture, EligibleParkedPacketsAreNotAStall) {
  // Video-style packets waiting for their eligible time are deliberately
  // parked; the census must not read them as wedged traffic.
  DeadlockWatchdog dog(sim_, 10_us, 3);
  dog.register_host(h0_.get());
  FlowSpec s = control_spec(1);
  s.tclass = TrafficClass::kMultimedia;
  s.policy = DeadlinePolicy::kVirtualClock;
  s.deadline_bw = Bandwidth::from_gbps(0.001);  // deadline (and thus
  s.use_eligible_time = true;                   // eligibility) far away
  s.eligible_lead = 1_us;
  h0_->open_flow(s);
  h0_->submit(1, 2048);
  if (h0_->eligible_waiting() > 0) {
    EXPECT_EQ(dog.queued_packets(), 0u);
  }
}

TEST(WatchdogEndToEnd, ArmedButSilentOnCleanRun) {
  SimConfig cfg;
  cfg.topology = TopologyKind::kSingleSwitch;
  cfg.single_switch_hosts = 4;
  cfg.warmup = 200_us;
  cfg.measure = 1_ms;
  cfg.drain = 1_ms;
  cfg.load = 0.4;
  cfg.fault.enabled = true;  // arms the watchdog, no fault rates set
  cfg.fault.watchdog_interval = 100_us;
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  ASSERT_NE(net.watchdog(), nullptr);
  EXPECT_FALSE(rep.fault.watchdog_fired);
  EXPECT_TRUE(rep.fault.watchdog_report.empty());
  EXPECT_TRUE(rep.fault.active);
  EXPECT_GT(rep.packets_delivered, 0u);
}

}  // namespace
}  // namespace dqos
