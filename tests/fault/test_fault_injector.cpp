#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include "core/network_simulator.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

/// Small Clos with the full Table 1 mix; fault machinery armed but all
/// random rates zero, so only scripted faults fire.
SimConfig small_clos(double load = 0.4) {
  SimConfig cfg;
  cfg.num_leaves = 2;
  cfg.hosts_per_leaf = 4;
  cfg.num_spines = 2;
  cfg.warmup = 200_us;
  cfg.measure = 2_ms;
  cfg.drain = 1_ms;
  cfg.load = load;
  cfg.fault.enabled = true;
  cfg.fault.watchdog_interval = 200_us;
  return cfg;
}

/// The leaf->spine hop of host 0's cross-leaf route (a true fabric link).
Endpoint fabric_link_of(const NetworkSimulator& net, const Topology& topo) {
  (void)net;
  const std::vector<Endpoint> links =
      topo.route_links(0, topo.num_hosts() - 1, 0);
  EXPECT_GE(links.size(), 2u);
  return links[1];
}

TEST(FaultInjector, ScriptedTransientOutageFailsAndRepairs) {
  NetworkSimulator net(small_clos());
  const Endpoint link = fabric_link_of(net, net.topology());
  net.fault_injector().fail_link_at(TimePoint::from_ps((500_us).ps()), link,
                                    /*outage=*/300_us);
  const SimReport rep = net.run();
  EXPECT_EQ(rep.fault.injected.link_failures, 1u);
  EXPECT_EQ(rep.fault.injected.link_repairs, 1u);
  EXPECT_EQ(rep.fault.injected.permanent_link_failures, 0u);
  // Transient outage: stall-and-resume, nothing rerouted or shed.
  EXPECT_EQ(rep.fault.flows_rerouted, 0u);
  EXPECT_EQ(rep.fault.flows_shed, 0u);
  EXPECT_FALSE(rep.fault.watchdog_fired) << rep.fault.watchdog_report;
  EXPECT_EQ(rep.out_of_order, 0u);
  EXPECT_GT(rep.packets_delivered, 0u);
}

TEST(FaultInjector, PermanentFailureReroutesOverSurvivingSpine) {
  NetworkSimulator net(small_clos(0.3));
  const Endpoint link = fabric_link_of(net, net.topology());
  net.fault_injector().fail_link_at(TimePoint::from_ps((500_us).ps()), link,
                                    Duration::zero(), /*permanent=*/true);
  const SimReport rep = net.run();
  EXPECT_EQ(rep.fault.injected.permanent_link_failures, 1u);
  EXPECT_EQ(rep.fault.injected.link_repairs, 0u);
  // Two spines: every flow over the dead uplink has a surviving path and
  // fits at this load — rerouted, not shed.
  EXPECT_GT(rep.fault.flows_rerouted, 0u);
  EXPECT_EQ(rep.fault.flows_shed, 0u);
  EXPECT_TRUE(net.admission().link_failed(link));
  EXPECT_FALSE(rep.fault.watchdog_fired) << rep.fault.watchdog_report;
  EXPECT_EQ(rep.out_of_order, 0u);
  EXPECT_GT(rep.packets_delivered, 0u);
}

TEST(FaultInjector, CreditLossIsRestoredByResync) {
  SimConfig cfg = small_clos();
  cfg.fault.credit_resync_window = 100_us;
  NetworkSimulator net(cfg);
  // Kill credits on host 0's injection link, VC0.
  net.fault_injector().lose_credits_at(TimePoint::from_ps((400_us).ps()),
                                       Endpoint{0, 0}, kRegulatedVc, 512);
  net.fault_injector().lose_credits_at(TimePoint::from_ps((800_us).ps()),
                                       Endpoint{0, 0}, kRegulatedVc, 512);
  const SimReport rep = net.run();
  EXPECT_EQ(rep.fault.injected.credit_loss_events, 2u);
  // lose_credits clamps at the live counter, so ≤ 2×512 but nonzero here.
  EXPECT_GT(rep.fault.injected.credit_bytes_lost, 0u);
  EXPECT_LE(rep.fault.injected.credit_bytes_lost, 1024u);
  // Conservation: by the end of the drain every quiet VC has been
  // re-derived, restoring exactly what the wire ate.
  EXPECT_GE(rep.fault.credit_resyncs, 1u);
  EXPECT_EQ(rep.fault.credit_bytes_resynced, rep.fault.injected.credit_bytes_lost);
  EXPECT_FALSE(rep.fault.watchdog_fired) << rep.fault.watchdog_report;
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(FaultInjector, ScriptedTtdCorruptionAndClockDriftAreCounted) {
  NetworkSimulator net(small_clos());
  net.fault_injector().corrupt_ttd_at(TimePoint::from_ps((500_us).ps()),
                                      Endpoint{0, 0}, 30_us);
  net.fault_injector().drift_clock_at(TimePoint::from_ps((600_us).ps()),
                                      /*host=*/1, 5_us);
  const SimReport rep = net.run();
  EXPECT_EQ(rep.fault.injected.ttd_corruptions, 1u);
  EXPECT_EQ(rep.fault.injected.clock_drift_events, 1u);
  EXPECT_FALSE(rep.fault.watchdog_fired) << rep.fault.watchdog_report;
  // A skewed TTD / drifted clock distorts slack accounting but must never
  // reorder packets within a flow.
  EXPECT_EQ(rep.out_of_order, 0u);
}

TEST(FaultInjector, RandomFaultProcessesAreDeterministic) {
  SimConfig cfg = small_clos(0.5);
  cfg.fault.link_down_per_sec = 3000.0;
  cfg.fault.link_outage_mean = 200_us;
  cfg.fault.credit_loss_per_sec = 1500.0;
  cfg.fault.seed = 42;

  NetworkSimulator a(cfg);
  const SimReport ra = a.run();
  NetworkSimulator b(cfg);
  const SimReport rb = b.run();

  EXPECT_GT(ra.fault.injected.link_failures, 0u);  // the sweep actually ran
  EXPECT_EQ(ra.fault.injected.link_failures, rb.fault.injected.link_failures);
  EXPECT_EQ(ra.fault.injected.credit_loss_events,
            rb.fault.injected.credit_loss_events);
  EXPECT_EQ(ra.fault.injected.credit_bytes_lost,
            rb.fault.injected.credit_bytes_lost);
  EXPECT_EQ(ra.packets_delivered, rb.packets_delivered);
  EXPECT_EQ(ra.events_processed, rb.events_processed);
  EXPECT_EQ(ra.fault.packets_dropped_link_down, rb.fault.packets_dropped_link_down);
}

TEST(FaultInjector, DisabledFaultConfigLeavesReportInert) {
  SimConfig cfg = small_clos();
  cfg.fault.enabled = false;  // machinery disarmed
  NetworkSimulator net(cfg);
  const SimReport rep = net.run();
  EXPECT_FALSE(rep.fault.active);
  EXPECT_EQ(rep.fault.injected.link_failures, 0u);
  EXPECT_EQ(rep.fault.credit_resyncs, 0u);
  EXPECT_EQ(rep.fault.control_retries, 0u);
  EXPECT_EQ(net.watchdog(), nullptr);
}

}  // namespace
}  // namespace dqos
