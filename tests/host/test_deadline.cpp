#include "host/deadline.hpp"

#include <gtest/gtest.h>

namespace dqos {
namespace {

using namespace dqos::literals;

FlowSpec base_spec(DeadlinePolicy policy, Bandwidth bw) {
  FlowSpec spec;
  spec.id = 1;
  spec.policy = policy;
  spec.deadline_bw = bw;
  spec.frame_budget = 10_ms;
  return spec;
}

TEST(DeadlineStamper, VirtualClockFirstPacket) {
  // D(P_1) = T_now + L/BW.
  DeadlineStamper s(base_spec(DeadlinePolicy::kVirtualClock,
                              Bandwidth::from_bytes_per_sec(1e6)));  // 1 MB/s
  const TimePoint now = TimePoint::from_ps(5'000'000);
  const TimePoint d = s.stamp(now, 1000);  // 1000B at 1 MB/s = 1 ms
  EXPECT_EQ(d, now + 1_ms);
}

TEST(DeadlineStamper, VirtualClockAccumulatesWhenBusy) {
  // Back-to-back packets: D(P_i) = D(P_{i-1}) + L/BW (max picks D_prev).
  DeadlineStamper s(base_spec(DeadlinePolicy::kVirtualClock,
                              Bandwidth::from_bytes_per_sec(1e6)));
  const TimePoint now = TimePoint::zero();
  const TimePoint d1 = s.stamp(now, 1000);
  const TimePoint d2 = s.stamp(now, 1000);
  const TimePoint d3 = s.stamp(now, 500);
  EXPECT_EQ(d1, now + 1_ms);
  EXPECT_EQ(d2, now + 2_ms);
  EXPECT_EQ(d3.ps() - d2.ps(), (1_ms / 2).ps());
}

TEST(DeadlineStamper, VirtualClockResetsAfterIdle) {
  // After an idle gap longer than the backlog, T_now wins the max().
  DeadlineStamper s(base_spec(DeadlinePolicy::kVirtualClock,
                              Bandwidth::from_bytes_per_sec(1e6)));
  (void)s.stamp(TimePoint::zero(), 1000);           // D = 1ms
  const TimePoint late = TimePoint::zero() + 50_ms;  // long silence
  const TimePoint d = s.stamp(late, 1000);
  EXPECT_EQ(d, late + 1_ms);
}

TEST(DeadlineStamper, ControlUsesLinkBandwidth) {
  // A 2 KB control packet at 8 Gb/s: deadline 2.048+ us out — maximum
  // priority in practice.
  DeadlineStamper s(base_spec(DeadlinePolicy::kControlLatency,
                              Bandwidth::from_gbps(8.0)));
  const TimePoint d = s.stamp(TimePoint::zero(), 2048);
  EXPECT_EQ(d.ps(), 2048 * 1000);
}

TEST(DeadlineStamper, FrameBudgetSplitsEvenly) {
  // An 80 KB frame at MTU 2 KB = 40 parts; each packet gets 10ms/40 = 250us.
  FlowSpec spec = base_spec(DeadlinePolicy::kFrameBudget,
                            Bandwidth::from_bytes_per_sec(3e6));
  DeadlineStamper s(spec);
  const TimePoint now = TimePoint::zero();
  s.begin_frame(40);
  TimePoint prev = now;
  for (int i = 0; i < 40; ++i) {
    const TimePoint d = s.stamp_frame_packet(now);
    EXPECT_EQ(d - prev, 250_us);
    prev = d;
  }
  // Last packet's deadline = frame budget: the whole frame lands at ~10 ms.
  EXPECT_EQ(prev, now + 10_ms);
}

TEST(DeadlineStamper, FrameBudgetIndependentOfFrameSize) {
  // Paper §3.1: "every frame will have a latency close to 10 milliseconds,
  // independently of frame size."
  FlowSpec spec = base_spec(DeadlinePolicy::kFrameBudget,
                            Bandwidth::from_bytes_per_sec(3e6));
  for (const std::uint16_t parts : {std::uint16_t{1}, std::uint16_t{3},
                                    std::uint16_t{17}, std::uint16_t{60}}) {
    DeadlineStamper s(spec);
    const TimePoint now = TimePoint::from_ps(1'000'000);
    s.begin_frame(parts);
    TimePoint last;
    for (std::uint16_t i = 0; i < parts; ++i) last = s.stamp_frame_packet(now);
    // Integer division may shave < parts picoseconds.
    EXPECT_NEAR(static_cast<double>((last - now).ps()), 1e10, parts);
  }
}

TEST(DeadlineStamper, ConsecutiveFramesChainThroughMax) {
  // A frame arriving before the previous one's budget elapsed queues after
  // it (max(D_prev, T_now)).
  FlowSpec spec = base_spec(DeadlinePolicy::kFrameBudget,
                            Bandwidth::from_bytes_per_sec(3e6));
  DeadlineStamper s(spec);
  s.begin_frame(10);
  TimePoint last;
  for (int i = 0; i < 10; ++i) last = s.stamp_frame_packet(TimePoint::zero());
  EXPECT_EQ(last, TimePoint::zero() + 10_ms);
  // Next frame arrives at t=2ms (<10ms): its first packet extends the chain.
  s.begin_frame(10);
  const TimePoint d = s.stamp_frame_packet(TimePoint::zero() + 2_ms);
  EXPECT_EQ(d, TimePoint::zero() + 11_ms);
}

TEST(DeadlineStamperDeathTest, PolicyMisuse) {
  DeadlineStamper vc(base_spec(DeadlinePolicy::kVirtualClock,
                               Bandwidth::from_gbps(8.0)));
  EXPECT_DEATH(vc.begin_frame(4), "precondition");
  DeadlineStamper fb(base_spec(DeadlinePolicy::kFrameBudget,
                               Bandwidth::from_bytes_per_sec(3e6)));
  EXPECT_DEATH((void)fb.stamp(TimePoint::zero(), 100), "precondition");
  EXPECT_DEATH((void)fb.stamp_frame_packet(TimePoint::zero()), "precondition");
}

}  // namespace
}  // namespace dqos
