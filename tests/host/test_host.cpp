#include "host/host.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace dqos {
namespace {

using namespace dqos::literals;

/// Two hosts wired back-to-back (empty source routes): isolates the NIC
/// logic from switches entirely.
class HostPairFixture : public testing::Test {
 protected:
  void build(HostParams params = HostParams{}, Duration skew0 = Duration::zero(),
             Duration skew1 = Duration::zero()) {
    Simulator& sim_ref = sim();
    h0_ = std::make_unique<Host>(sim_ref, 0, params, LocalClock(skew0), pool_);
    h1_ = std::make_unique<Host>(sim_ref, 1, params, LocalClock(skew1), pool_);
    c01_ = std::make_unique<Channel>(sim_ref, Bandwidth::from_gbps(8.0), 100_ns,
                                     params.num_vcs, 8192);
    c10_ = std::make_unique<Channel>(sim_ref, Bandwidth::from_gbps(8.0), 100_ns,
                                     params.num_vcs, 8192);
    c01_->connect_to(h1_.get(), 0);
    c10_->connect_to(h0_.get(), 0);
    h0_->attach_uplink(c01_.get());
    h0_->attach_downlink(c10_.get());
    h1_->attach_uplink(c10_.get());
    h1_->attach_downlink(c01_.get());
    h1_->set_packet_callback(
        [this](const Packet& p, TimePoint now, Duration slack) {
          deliveries_.push_back({p.hdr.flow, p.hdr.flow_seq, now, p.t_injected,
                                 p.t_created, p.size(), slack});
        });
    h1_->set_message_callback(
        [this](const MessageDelivered& m) { messages_.push_back(m); });
  }

  FlowSpec spec(FlowId id, TrafficClass tc, DeadlinePolicy policy, Bandwidth dbw,
                bool eligible = false) {
    FlowSpec s;
    s.id = id;
    s.src = 0;
    s.dst = 1;
    s.tclass = tc;
    s.vc = is_regulated(tc) ? kRegulatedVc : kBestEffortVc;
    s.policy = policy;
    s.deadline_bw = dbw;
    s.use_eligible_time = eligible;
    s.eligible_lead = 20_us;
    s.frame_budget = 10_ms;
    return s;
  }

  struct Delivery {
    FlowId flow;
    std::uint32_t seq;
    TimePoint when;
    TimePoint injected;
    TimePoint created;
    std::uint32_t bytes;
    Duration slack;
  };

  Simulator& sim() {
    if (!sim_ptr_) sim_ptr_ = std::make_unique<Simulator>();
    return *sim_ptr_;
  }
  void reset_sim() {
    h0_.reset();
    h1_.reset();
    c01_.reset();
    c10_.reset();
    sim_ptr_.reset();
  }

  std::unique_ptr<Simulator> sim_ptr_;
  PacketPool pool_;
  std::unique_ptr<Host> h0_, h1_;
  std::unique_ptr<Channel> c01_, c10_;
  std::vector<Delivery> deliveries_;
  std::vector<MessageDelivered> messages_;
};

TEST_F(HostPairFixture, FragmentsToMtuAndReassembles) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                      Bandwidth::from_gbps(8.0)));
  EXPECT_TRUE(h0_->submit(1, 5000));  // 2048 + 2048 + 904
  sim().run();
  ASSERT_EQ(deliveries_.size(), 3u);
  EXPECT_EQ(deliveries_[0].bytes, 2048u + kHeaderBytes);
  EXPECT_EQ(deliveries_[1].bytes, 2048u + kHeaderBytes);
  EXPECT_EQ(deliveries_[2].bytes, 904u + kHeaderBytes);
  ASSERT_EQ(messages_.size(), 1u);
  EXPECT_EQ(messages_[0].bytes, 5000u + 3 * kHeaderBytes);
  EXPECT_EQ(messages_[0].created, TimePoint::zero());
  EXPECT_EQ(messages_[0].completed, deliveries_[2].when);
  EXPECT_EQ(h0_->packets_injected(), 3u);
  EXPECT_EQ(h1_->packets_received(), 3u);
}

TEST_F(HostPairFixture, TimestampsMonotone) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                      Bandwidth::from_gbps(8.0)));
  h0_->submit(1, 4096);
  sim().run();
  for (const auto& d : deliveries_) {
    EXPECT_LE(d.created, d.injected);
    EXPECT_LT(d.injected, d.when);
  }
}

TEST_F(HostPairFixture, InjectionSerializesAtLinkRate) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                      Bandwidth::from_gbps(8.0)));
  h0_->submit(1, 3 * 2048);  // three full-MTU packets
  sim().run();
  ASSERT_EQ(deliveries_.size(), 3u);
  const auto gap1 = deliveries_[1].when - deliveries_[0].when;
  const auto gap2 = deliveries_[2].when - deliveries_[1].when;
  // Each packet serializes for (2048+16) ns.
  EXPECT_EQ(gap1.ps(), (2048 + 16) * 1000);
  EXPECT_EQ(gap2.ps(), (2048 + 16) * 1000);
}

TEST_F(HostPairFixture, EligibleTimeDelaysInjection) {
  build();
  // One-part frame with a 10 ms budget: eligible at D - 20 us = 9.98 ms.
  h0_->open_flow(spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kFrameBudget,
                      Bandwidth::from_bytes_per_sec(3e6), /*eligible=*/true));
  h0_->submit(1, 2048);
  EXPECT_EQ(h0_->eligible_waiting(), 1u);
  sim().run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].injected, TimePoint::zero() + 10_ms - 20_us);
  EXPECT_EQ(h0_->eligible_waiting(), 0u);
}

TEST_F(HostPairFixture, NoEligibleTimeInjectsImmediately) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kFrameBudget,
                      Bandwidth::from_bytes_per_sec(3e6), /*eligible=*/false));
  h0_->submit(1, 2048);
  sim().run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].injected, TimePoint::zero());
}

TEST_F(HostPairFixture, EdfReordersAcrossFlowsAtInjection) {
  build();
  // Flow 1: loose deadlines (slow deadline bandwidth). Flow 2: tight.
  h0_->open_flow(spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(1e6)));
  h0_->open_flow(spec(2, TrafficClass::kMultimedia, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(100e6)));
  // Submit 4 loose packets first (first starts transmitting immediately),
  // then 2 tight ones, which must overtake the 3 still queued.
  h0_->submit(1, 4 * 2048);
  h0_->submit(2, 2 * 2048);
  sim().run();
  ASSERT_EQ(deliveries_.size(), 6u);
  EXPECT_EQ(deliveries_[0].flow, 1u);  // already on the wire
  EXPECT_EQ(deliveries_[1].flow, 2u);
  EXPECT_EQ(deliveries_[2].flow, 2u);
  EXPECT_EQ(deliveries_[3].flow, 1u);
  EXPECT_EQ(h1_->out_of_order_deliveries(), 0u);
}

TEST_F(HostPairFixture, FifoModeKeepsSubmissionOrder) {
  HostParams params;
  params.edf_queues = false;  // Traditional endpoint
  build(params);
  h0_->open_flow(spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(1e6)));
  h0_->open_flow(spec(2, TrafficClass::kMultimedia, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(100e6)));
  h0_->submit(1, 4 * 2048);
  h0_->submit(2, 2 * 2048);
  sim().run();
  ASSERT_EQ(deliveries_.size(), 6u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(deliveries_[i].flow, 1u);
  for (std::size_t i = 4; i < 6; ++i) EXPECT_EQ(deliveries_[i].flow, 2u);
}

TEST_F(HostPairFixture, RegulatedVcPreemptsBestEffortQueue) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kBestEffort, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(250e6)));
  h0_->open_flow(spec(2, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                      Bandwidth::from_gbps(8.0)));
  h0_->submit(1, 5 * 2048);  // best-effort backlog
  h0_->submit(2, 512);       // control message must jump the queue
  sim().run();
  ASSERT_EQ(deliveries_.size(), 6u);
  EXPECT_EQ(deliveries_[0].flow, 1u);  // was already transmitting
  EXPECT_EQ(deliveries_[1].flow, 2u);  // control next
}

TEST_F(HostPairFixture, BestEffortCapDropsWholeMessages) {
  HostParams params;
  params.best_effort_queue_cap = 4;
  build(params);
  h0_->open_flow(spec(1, TrafficClass::kBackground, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(250e6)));
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += h0_->submit(1, 2048) ? 1 : 0;
  EXPECT_LT(accepted, 10);
  EXPECT_EQ(h0_->best_effort_drops(), static_cast<std::uint64_t>(10 - accepted));
  sim().run();
  EXPECT_EQ(deliveries_.size(), static_cast<std::size_t>(accepted));
}

TEST_F(HostPairFixture, RegulatedTrafficIsNeverDropped) {
  HostParams params;
  params.best_effort_queue_cap = 2;
  build(params);
  h0_->open_flow(spec(1, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                      Bandwidth::from_gbps(8.0)));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(h0_->submit(1, 2048));
  sim().run();
  EXPECT_EQ(deliveries_.size(), 50u);
  EXPECT_EQ(h0_->best_effort_drops(), 0u);
}

TEST_F(HostPairFixture, FlowWatchCollectsPerFlowStats) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                      Bandwidth::from_gbps(8.0)));
  h0_->open_flow(spec(2, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                      Bandwidth::from_gbps(8.0)));
  h1_->watch_flow(1);
  h0_->submit(1, 2048);
  h0_->submit(2, 1024);
  sim().run();
  const auto* w1 = h1_->flow_watch(1);
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->packets, 1u);
  EXPECT_EQ(w1->bytes, 2048u + kHeaderBytes);
  EXPECT_GT(w1->latency_us.mean(), 0.0);
  EXPECT_EQ(h1_->flow_watch(2), nullptr);  // not watched
  EXPECT_EQ(h0_->flow_watch(1), nullptr);  // wrong side
}

TEST_F(HostPairFixture, PolicedFlowShedsExcessMessages) {
  build();
  FlowSpec s = spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kVirtualClock,
                    Bandwidth::from_bytes_per_sec(1e6));
  s.reserve_bw = Bandwidth::from_bytes_per_sec(1e6);  // 1 MB/s reservation
  s.police = true;
  s.police_burst = 10_ms;  // bucket: 10 KB (floored at 128 KB -> 128 KB)
  h0_->open_flow(s);
  // Offer 100 x 64 KB back-to-back = 6.4 MB instantly: only the bucket's
  // 128 KB (2 messages) fit; the rest are policed away.
  int accepted = 0;
  for (int i = 0; i < 100; ++i) accepted += h0_->submit(1, 64 * 1024) ? 1 : 0;
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(h0_->policed_drops(), 98u);
  sim().run();
}

TEST_F(HostPairFixture, ConformantPolicedFlowUnaffected) {
  build();
  FlowSpec s = spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kVirtualClock,
                    Bandwidth::from_bytes_per_sec(10e6));
  s.reserve_bw = Bandwidth::from_bytes_per_sec(10e6);
  s.police = true;
  h0_->open_flow(s);
  // 1 KB per ms = 1 MB/s, a tenth of the reservation: nothing shed.
  for (int i = 0; i < 50; ++i) {
    sim().schedule_at(TimePoint::zero() + Duration::milliseconds(i),
                      [this] { EXPECT_TRUE(h0_->submit(1, 1024)); });
  }
  sim().run();
  EXPECT_EQ(h0_->policed_drops(), 0u);
  EXPECT_EQ(deliveries_.size(), 50u);
}

TEST_F(HostPairFixture, DeliverySlackReflectsDeadline) {
  build();
  // Frame-budget flow: a lone 2 KB frame has ~10 ms of slack at delivery
  // (delivered in microseconds, deadline 10 ms out).
  h0_->open_flow(spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kFrameBudget,
                      Bandwidth::from_bytes_per_sec(3e6)));
  h0_->submit(1, 2048);
  sim().run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_GT(deliveries_[0].slack, 9_ms);
  EXPECT_LT(deliveries_[0].slack, 10_ms);
}

TEST_F(HostPairFixture, ClockSkewDoesNotChangeBehaviour) {
  // Run the same workload twice: once synchronized, once with wild skews.
  std::vector<TimePoint> base_times;
  for (int pass = 0; pass < 2; ++pass) {
    deliveries_.clear();
    messages_.clear();
    reset_sim();  // fresh calendar
    const Duration skew0 = pass ? 5'000'000_us : 0_us;
    const Duration skew1 = pass ? 123_us : 0_us;
    build(HostParams{}, skew0, skew1);
    h0_->open_flow(spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kFrameBudget,
                        Bandwidth::from_bytes_per_sec(3e6), /*eligible=*/true));
    h0_->open_flow(spec(2, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                        Bandwidth::from_gbps(8.0)));
    h0_->submit(1, 8192);
    h0_->submit(2, 512);
    sim().run();
    if (pass == 0) {
      for (const auto& d : deliveries_) base_times.push_back(d.when);
    } else {
      ASSERT_EQ(deliveries_.size(), base_times.size());
      for (std::size_t i = 0; i < base_times.size(); ++i) {
        EXPECT_EQ(deliveries_[i].when, base_times[i]) << "delivery " << i;
      }
    }
  }
}

TEST_F(HostPairFixture, MultiVcWeightedInjectionShares) {
  // Traditional multi-VC endpoint: 4 VCs with an 8:4:2:1 arbitration
  // table; all VCs saturated -> injected byte shares follow the weights.
  HostParams params;
  params.num_vcs = 4;
  params.vc_weights = {8, 4, 2, 1};
  params.edf_queues = false;
  build(params);
  for (FlowId f = 1; f <= 4; ++f) {
    FlowSpec s = spec(f, TrafficClass::kBestEffort, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_gbps(8.0));
    s.vc = static_cast<VcId>(f - 1);
    h0_->open_flow(s);
    h0_->submit(f, 300 * 2048);  // deep backlog on every VC
  }
  // Run long enough to inject ~150 packets total, then count shares.
  sim().run_until(TimePoint::zero() + Duration::microseconds(310));
  std::array<double, 4> bytes{};
  double total = 0;
  for (const auto& d : deliveries_) {
    bytes[d.flow - 1] += d.bytes;
    total += d.bytes;
  }
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(bytes[0] / total, 8.0 / 15.0, 0.08);
  EXPECT_NEAR(bytes[1] / total, 4.0 / 15.0, 0.06);
  EXPECT_NEAR(bytes[2] / total, 2.0 / 15.0, 0.05);
  EXPECT_NEAR(bytes[3] / total, 1.0 / 15.0, 0.04);
  // Drain the backlog so no packet outlives the pool at teardown.
  sim().run();
}

TEST_F(HostPairFixture, MultiVcStrictPriorityWithoutWeights) {
  // Without a table, lower VC index always wins at the injection link.
  HostParams params;
  params.num_vcs = 3;
  build(params);
  for (FlowId f = 1; f <= 3; ++f) {
    FlowSpec s = spec(f, TrafficClass::kBestEffort, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_gbps(8.0));
    s.vc = static_cast<VcId>(f - 1);
    h0_->open_flow(s);
  }
  h0_->submit(3, 2048);  // lowest priority, submitted first
  h0_->submit(2, 2048);
  h0_->submit(1, 3 * 2048);  // highest priority, bulk
  sim().run();
  ASSERT_EQ(deliveries_.size(), 5u);
  // First delivery may be flow 3 (already on the wire); all flow-1 packets
  // precede flow 2's.
  std::size_t last_f1 = 0, first_f2 = deliveries_.size();
  for (std::size_t i = 0; i < deliveries_.size(); ++i) {
    if (deliveries_[i].flow == 1) last_f1 = i;
    if (deliveries_[i].flow == 2 && i < first_f2) first_f2 = i;
  }
  EXPECT_LT(last_f1, first_f2);
}

TEST_F(HostPairFixture, ManyMessagesNoOutOfOrder) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(100e6)));
  h0_->open_flow(spec(2, TrafficClass::kMultimedia, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(30e6)));
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    h0_->submit(rng.chance(0.5) ? 1 : 2, rng.uniform_int(100, 50000));
  }
  sim().run();
  EXPECT_EQ(h1_->out_of_order_deliveries(), 0u);
  EXPECT_EQ(h0_->queued_packets(), 0u);
  EXPECT_EQ(messages_.size(), 200u);
}

TEST_F(HostPairFixture, EligibleTimesInterleaveAcrossFlows) {
  // Two frame-budget flows with different budgets: the one with the
  // earlier eligible instant is injected first even if submitted second.
  build();
  FlowSpec fast = spec(1, TrafficClass::kMultimedia, DeadlinePolicy::kFrameBudget,
                       Bandwidth::from_bytes_per_sec(3e6), /*eligible=*/true);
  fast.frame_budget = 2_ms;
  FlowSpec slow = spec(2, TrafficClass::kMultimedia, DeadlinePolicy::kFrameBudget,
                       Bandwidth::from_bytes_per_sec(3e6), /*eligible=*/true);
  slow.frame_budget = 10_ms;
  h0_->open_flow(fast);
  h0_->open_flow(slow);
  h0_->submit(2, 2048);  // eligible at ~9.98 ms
  h0_->submit(1, 2048);  // eligible at ~1.98 ms — must go first
  EXPECT_EQ(h0_->eligible_waiting(), 2u);
  sim().run();
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(deliveries_[0].flow, 1u);
  EXPECT_EQ(deliveries_[0].injected, TimePoint::zero() + 2_ms - 20_us);
  EXPECT_EQ(deliveries_[1].flow, 2u);
  EXPECT_EQ(deliveries_[1].injected, TimePoint::zero() + 10_ms - 20_us);
}

TEST_F(HostPairFixture, SubmitToUnknownFlowAborts) {
  build();
  EXPECT_DEATH((void)h0_->submit(999, 100), "precondition");
}

TEST_F(HostPairFixture, OpenDuplicateFlowAborts) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kControl, DeadlinePolicy::kControlLatency,
                      Bandwidth::from_gbps(8.0)));
  EXPECT_DEATH(
      h0_->open_flow(spec(1, TrafficClass::kControl,
                          DeadlinePolicy::kControlLatency,
                          Bandwidth::from_gbps(8.0))),
      "precondition");
}

TEST_F(HostPairFixture, QueuedPacketsIntrospection) {
  build();
  h0_->open_flow(spec(1, TrafficClass::kBestEffort, DeadlinePolicy::kVirtualClock,
                      Bandwidth::from_bytes_per_sec(250e6)));
  h0_->submit(1, 10 * 2048);
  EXPECT_GT(h0_->queued_packets(), 0u);
  sim().run();
  EXPECT_EQ(h0_->queued_packets(), 0u);
}

}  // namespace
}  // namespace dqos
