// Pretends to live at src/switchfab/window_bad.cpp.
// A shard-marked window branch that schedules straight onto the other
// shard's calendar instead of posting through the mailbox: every calendar
// call below must be flagged.
void Channel::send_window(PacketPtr p, VcId vc) {
  if (*win_) {
    // dqos-lint: shard
    dst_sim_->schedule_at(at, CrossArrivalTask{this, std::move(p), vc});
    dst_sim_->schedule_keyed(at, seq, CrossArrivalTask{this, std::move(p), vc});
    sim_.schedule_after(latency_, FlushTask{this, vc});
  }
  // Outside the marked block: direct scheduling is the serial path, fine.
  dst_sim_->schedule_at(at, CrossArrivalTask{this, std::move(p), vc});
}
