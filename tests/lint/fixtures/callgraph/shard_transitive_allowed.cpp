// Pretends to live at src/fab/shard_chain_ok.cpp. The reached calendar
// call carries a reviewed allow marker (it is the mailbox drain itself),
// so the region must lint clean.
namespace fab {

struct Calendar {
  void schedule_at(long t);
};
void Calendar::schedule_at(long t) { (void)t; }

struct Worker {
  Calendar cal;
  void drain_mailbox(long t);
  void step(long t);
};

void Worker::drain_mailbox(long t) {
  // dqos-lint: allow(shard-ownership) — the drain runs at the barrier
  cal.schedule_at(t);
}

void Worker::step(long t) {
  // dqos-lint: shard
  {
    drain_mailbox(t);
  }
}

}  // namespace fab
