// Pretends to live at src/fab/window_merge_ok.cpp. Integer accumulation
// plus one reviewed float site under an allow marker — must lint clean.
namespace fab {

double jitter_of(int idx) { return idx * 0.25; }
long span_ps_of(int idx) { return idx * 4; }

struct Merger {
  long merged_ps = 0;
  double debug_time = 0;
  void fold(int idx);
  void merge_windows(int n);
};

void Merger::fold(int idx) {
  merged_ps += span_ps_of(idx);
  // dqos-lint: allow(float-time-transitive) — debug-only, not replayed
  debug_time += jitter_of(idx);
}

void Merger::merge_windows(int n) {
  for (int i = 0; i < n; ++i) fold(i);
}

}  // namespace fab
