// Pretends to live at src/host/traffic.cpp: the owning home of the
// named stream 0xbacc0ff5 (first site in sorted (file, line) order);
// any other subsystem splitting the same constant gets flagged.
namespace host {

struct Rng {
  Rng split(unsigned long salt);
};
Rng Rng::split(unsigned long salt) { return (void)salt, Rng{}; }

struct Traffic {
  Rng seed(Rng root) {
    return root.split(0xbacc0ff5);
  }
  Rng seed_local(Rng root) {
    // Small salts are loop-local derivations, not named streams.
    return root.split(7);
  }
};

}  // namespace host
