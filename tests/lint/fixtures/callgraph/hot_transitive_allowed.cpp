// Pretends to live at src/fab/hot_chain_ok.cpp. Same shape as
// hot_transitive_bad.cpp, but every reachable growth site carries a
// reviewed allow marker — must lint clean.
#include <vector>

namespace fab {

struct Store {
  std::vector<int> xs;
  void remember(int v);
};

void Store::remember(int v) {
  // dqos-lint: allow(hot-path-transitive) — amortized, reviewed
  xs.push_back(v);
}

void drain(Store& s, int v) { s.remember(v); }

// dqos-lint: hot
void pump(Store& s, int v) { drain(s, v); }

}  // namespace fab
