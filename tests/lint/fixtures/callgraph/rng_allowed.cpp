// Pretends to live at src/sim/rng_ok.cpp. One stream per function and a
// reviewed two-stream site under an allow marker — must lint clean.
namespace sim {

struct Rng {
  Rng split(unsigned long salt);
  double uniform();
};
Rng Rng::split(unsigned long salt) { return (void)salt, Rng{}; }
double Rng::uniform() { return 0.5; }

struct Model {
  Rng arrival_rng;
  Rng service_rng;
  double arrivals() { return arrival_rng.uniform(); }
  double services() { return service_rng.uniform(); }
  double audited_mix() {
    const double a = arrival_rng.uniform();
    // dqos-lint: allow(rng-stream-discipline) — replay-audited pairing
    return a + service_rng.uniform();
  }
};

}  // namespace sim
