// Pretends to live at src/fab/window_merge.cpp. The float accumulation
// hides behind a call: the accumulator and callee live in different
// functions, so only the transitive rule connects them.
namespace fab {

double span_time_of(int idx) { return idx * 0.25; }

struct Merger {
  double merged_time = 0;
  void fold(int idx);
  void merge_windows(int n);
};

void Merger::fold(int idx) {
  merged_time += span_time_of(idx);
}

void Merger::merge_windows(int n) {
  for (int i = 0; i < n; ++i) fold(i);
}

}  // namespace fab
