// Pretends to live at src/fab/shard_chain.cpp. The shard region itself
// only calls a helper — but the helper reaches the calendar directly,
// which the per-file cross-shard-access rule cannot see.
namespace fab {

struct Calendar {
  void schedule_at(long t);
};
void Calendar::schedule_at(long t) { (void)t; }

struct Worker {
  Calendar cal;
  void post(long t);
  void relay(long t);
  void step(long t);
};

void Worker::post(long t) { cal.schedule_at(t); }

void Worker::relay(long t) { post(t); }

void Worker::step(long t) {
  // dqos-lint: shard
  {
    relay(t);
  }
}

}  // namespace fab
