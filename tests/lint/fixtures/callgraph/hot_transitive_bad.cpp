// Pretends to live at src/fab/hot_chain.cpp. A hot root whose own body
// is clean, but whose transitive callees allocate — only dqos_lint v2's
// call-graph pass can see it. Exercises direct, indirect, recursive and
// virtual-dispatch chains.
#include <memory>
#include <vector>

namespace fab {

struct Store {
  std::vector<int> xs;
  void remember(int v);
  void spill(int v);
};

// Indirect chain target: hot -> drain -> Store::remember (growth).
void Store::remember(int v) { xs.push_back(v); }

// Recursive chain: spill calls itself before allocating.
void Store::spill(int v) {
  if (v > 0) spill(v - 1);
  xs.push_back(v);
}

struct Sink {
  virtual ~Sink() = default;
  virtual void put(int v) = 0;
};

struct CleanSink : Sink {
  int last = 0;
  void put(int v) override { last = v; }
};

struct AllocSink : Sink {
  std::vector<int> kept;
  // Virtual-dispatch chain: the hot root calls `sink.put(v)` through the
  // base; resolution over-approximates to every `put`, including this one.
  void put(int v) override { kept.push_back(v); }
};

void drain(Store& s, int v) { s.remember(v); }

// dqos-lint: hot
void pump(Store& s, Sink& sink, int v) {
  drain(s, v);
  s.spill(v);
  sink.put(v);
}

}  // namespace fab
