// Pretends to live at src/sim/arrivals.cpp: splits the named stream
// 0xbacc0ff5 that src/host owns (first site in sorted (file, line)
// order), plus a function that draws from two distinct streams — one
// draw too many.
namespace sim {

struct Rng {
  Rng split(unsigned long salt);
  double uniform();
  unsigned long next();
};
Rng Rng::split(unsigned long salt) { return (void)salt, Rng{}; }
double Rng::uniform() { return 0.5; }
unsigned long Rng::next() { return 1; }

struct Arrivals {
  Rng arrival_rng;
  Rng service_rng;
  Rng seed(Rng root) { return root.split(0xbacc0ff5); }
  double mix() {
    const double a = arrival_rng.uniform();
    return a + static_cast<double>(service_rng.next());
  }
};

}  // namespace sim
