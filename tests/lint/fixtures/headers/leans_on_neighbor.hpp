// Fixture for header_compiles(): uses std::vector without including
// <vector> — compiles only when some earlier include dragged it in, so
// the standalone check must fail it.
#pragma once

inline std::vector<int> make_row() { return {1, 2, 3}; }
