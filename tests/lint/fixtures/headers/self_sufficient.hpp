// Fixture for header_compiles(): includes everything it uses.
#pragma once
#include <cstdint>
#include <vector>

inline std::uint64_t checksum(const std::vector<std::uint64_t>& xs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint64_t x : xs) h = (h ^ x) * 1099511628211ULL;
  return h;
}
