// Fixture: linted as src/util/rng_seed.cpp — the one place allowed to
// touch <random> and hardware entropy. The test asserts zero findings.
#include <random>

unsigned hardware_seed() {
  std::random_device dev;
  std::mt19937_64 gen(dev());
  return static_cast<unsigned>(gen());
}
