// Fixture: linted as src/core/flow_state_ok.cpp — order-independent
// harvests over the same containers, suppressed with a rationale. The
// test asserts zero findings. An int-keyed map is fine without any
// suppression: iteration order can't leak through a commutative sum.
#include <cstdint>
#include <unordered_map>

using FlowId = std::uint32_t;

int walk_flows_allowed() {
  std::unordered_map<FlowId, int> flows;  // dqos-lint: allow(per-flow-map) — fixture: iteration-rule subject
  std::unordered_map<int, int> histogram;
  int sum = 0;
  // dqos-lint: allow(unordered-iteration) — commutative sum, order-free
  for (const auto& [id, v] : flows) sum += v;
  for (const auto& [bucket, n] : histogram) sum += n;
  return sum;
}
