// Fixture: linted as src/core/companion.hpp — declares the
// FlowId-keyed member that companion.cpp iterates; the pairing logic must
// carry `table_` into the .cpp's flagged set.
#pragma once
#include <cstdint>
#include <unordered_map>

using FlowId = std::uint32_t;

class Registry {
 public:
  int total() const;

 private:
  std::unordered_map<FlowId, int> table_;
};
