// Fixture: linted as src/core/clockish.cpp — every wall-clock idiom the
// rule must catch. Never compiled; tests/lint/test_lint.cpp feeds it to
// lint_source() and asserts on the findings.
#include <chrono>  // line 4: banned header

int wall_seed() {
  const auto t = std::chrono::steady_clock::now();  // line 7: banned ident
  int noise = rand();                               // line 8: banned call
  (void)t;
  return noise;
}
