// Fixture: linted as bench/wall_timer.cpp — a benchmark that measures
// wall time on purpose; the file-wide suppression must silence every
// no-wallclock finding below.
// dqos-lint: allow-file(no-wallclock)
#include <chrono>

double bench_elapsed() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
