/// Pretends to live at src/host/drop_path.cpp: freeing a PacketPtr
/// without the pool's retirement accounting hides the packet from the
/// auditor's custody census.
void drop_path(PacketPtr incoming) {
  PacketPtr held = grab();
  held.reset();
  incoming = nullptr;
}
