// Fixture: linted as src/core/flow_state.cpp — iteration over containers
// whose order depends on the hash layout (FlowId keys, pointer keys).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

using FlowId = std::uint32_t;
struct Flow {};

int walk_flows() {
  std::unordered_map<FlowId, int> flows;  // dqos-lint: allow(per-flow-map) — this fixture exercises the iteration rule
  std::unordered_set<Flow*> live;
  int sum = 0;
  for (const auto& [id, v] : flows) sum += v;  // line 14: range-for
  for (Flow* f : live) sum += f != nullptr;    // line 15: pointer-keyed
  auto it = flows.begin();                     // line 16: explicit begin()
  (void)it;
  return sum;
}
