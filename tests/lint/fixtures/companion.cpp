// Fixture: linted as src/core/companion.cpp with companion.hpp as the
// paired header — the container is declared over there, so this file
// alone looks clean; only the pairing makes line 8 a finding.
#include "companion.hpp"

int Registry::total() const {
  int sum = 0;
  for (const auto& [id, v] : table_) sum += v;  // line 8
  return sum;
}
