// Fixture: linted as src/core/flow_maps_ok.cpp — the sanctioned shapes:
// DenseFlowTable for per-flow state, int-keyed maps for everything else,
// and a suppressed FlowId map with a rationale (cold path, built once).
// The test asserts zero findings.
#include <cstdint>
#include <unordered_map>

using FlowId = std::uint32_t;
template <class T>
class DenseFlowTable {};

struct TrackerOk {
  DenseFlowTable<double> reserved_;
  std::unordered_map<int, int> histogram_;
  // dqos-lint: allow(per-flow-map) — startup-only config table, never hot
  std::unordered_map<FlowId, double> boot_overrides_;
};
