// Fixture: linted as src/core/flow_maps.cpp — per-flow state held in
// hash containers keyed by FlowId. The scale refactor keeps such state
// in DenseFlowTable (src/util/dense_flow_table.hpp); an int-keyed
// histogram is not per-flow state and must not fire.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

using FlowId = std::uint32_t;

struct Tracker {
  std::unordered_map<FlowId, double> reserved_;  // line 12: FlowId-keyed map
  std::unordered_set<FlowId> watched_;           // line 13: FlowId-keyed set
  std::unordered_map<int, int> histogram_;       // int-keyed: fine
};
