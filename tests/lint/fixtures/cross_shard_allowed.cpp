// Pretends to live at src/switchfab/window_ok.cpp.
// Clean shard-marked regions: cross-shard traffic goes through the
// mailbox (CrossMsg into an outbox, note into arrival_notes); plus one
// deliberate violation suppressed with an allow marker.
void Channel::send_window(PacketPtr p, VcId vc) {
  if (*win_) {
    // dqos-lint: shard
    ShardWindowLog& slog = engine_->log(src_shard_);
    std::vector<CrossMsg>& box = slog.outboxes[dst_shard_];
    slog.kids.push_back(ShardWindowLog::mailbox_ref(dst_shard_, box.size()));
    CrossMsg m;
    m.at_ps = at.ps();
    m.deliver = &Channel::deliver_arrival_msg;
    box.push_back(std::move(m));
  }
}

void Channel::note_window(VcId vc, std::uint32_t bytes) {
  if (*win_) {
    // dqos-lint: shard
    engine_->arrival_notes(dst_shard_).push_back(CrossArrivalNote{this, vc, bytes});
    // dqos-lint: allow(cross-shard-access)
    dst_sim_->schedule_at(at, CrossArrivalTask{this, nullptr, vc});
  }
}
