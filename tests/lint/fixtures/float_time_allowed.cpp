// Fixture: linted as src/core/clock_math_ok.cpp — a statistics
// accumulator legitimately sums time-valued doubles (already converted
// out of the simulation clock), suppressed with a rationale.
int summarize(double sample_us) {
  double total_latency_time = 0.0;
  // dqos-lint: allow(float-time-accum) — post-run statistics, not the clock
  total_latency_time += sample_us;
  return total_latency_time > 0.0;
}
