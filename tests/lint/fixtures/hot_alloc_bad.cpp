/// Deliberate hot-path-alloc violations. Pretends to live at
/// src/sim/drain_bad.cpp: the marked function allocates and grows.
#include <memory>
#include <vector>

struct Q {
  std::vector<int> v;
  // dqos-lint: hot
  void drain() {
    int* p = new int(3);
    auto u = std::make_unique<int>(4);
    v.push_back(*p);
    delete p;
  }
  void cold() { v.push_back(1); }  // unmarked: growth is fine here
};
