// Fixture: linted as src/core/clockish_ok.cpp — the same wall-clock
// idioms as wallclock_bad.cpp, each silenced by a line suppression. The
// test asserts zero findings.
#include <chrono>  // dqos-lint: allow(no-wallclock)

int wall_seed_allowed() {
  // dqos-lint: allow(no-wallclock) — next-line form
  const auto t = std::chrono::steady_clock::now();
  int noise = rand();  // dqos-lint: allow(no-wallclock)
  (void)t;
  return noise;
}
