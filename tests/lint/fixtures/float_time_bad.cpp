// Fixture: linted as src/core/clock_math.cpp — accumulating simulation
// time in floating point drifts; time must stay integer picoseconds.
int advance(double dt) {
  double sim_time_s = 0.0;
  double elapsed = 0.0;
  sim_time_s += dt;                // line 6
  elapsed = elapsed + dt;          // line 7
  double ratio = 0.0;
  ratio += dt;  // not time-named: must NOT be flagged
  return sim_time_s > 0.0 && elapsed > 0.0 && ratio > 0.0;
}
