/// A marked hot function lints clean when its body is allocation-free;
/// a deliberate, justified allocation is waivable with an allow marker.
/// Pretends to live at src/sim/drain_ok.cpp.
#include <vector>

struct Q {
  std::vector<int> v;
  void setup() { v.reserve(64); }  // unmarked setup: growth is fine
  // dqos-lint: hot
  void drain() {
    // dqos-lint: allow(hot-path-alloc)
    v.push_back(1);   // waived: cold slow-path inside the hot function
    const int x = v.back();
    v.pop_back();
    v.clear();
    (void)x;
  }
};
