// Mini-tree fixture: benchmark wall-clock use under a file suppression —
// the walk must report nothing for this file.
// dqos-lint: allow-file(no-wallclock)
#include <chrono>

double tick() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
