// Mini-tree fixture: type erasure in a hot-path dir, found by the walk.
#pragma once
#include <functional>  // line 3

struct Hot {
  std::function<void()> cb;  // line 6
};
