// Mini-tree fixture for the lint_tree walk test: one wall-clock call.
int jitter() { return rand(); }  // line 2
