// Fixture: linted as src/sim/hot_callbacks.hpp — type erasure and shared
// ownership on the hot path. Each banned construct is one finding.
#pragma once
#include <functional>  // line 4: banned include in hot-path dirs
#include <memory>

struct HotPath {
  std::function<void(int)> on_fire;  // line 8
  std::shared_ptr<int> refcounted;   // line 9
};
