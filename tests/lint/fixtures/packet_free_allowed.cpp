/// Pretends to live at src/proto/pool_ok.cpp: the sanctioned audit point
/// carries a suppression, and non-packet smart pointers are not flagged.
void retire_like(PacketPtr p, BufferPtr scratch) {
  // dqos-lint: allow(unaudited-packet-free) — this IS the audit point
  p.reset();
  scratch.reset();  // not a PacketPtr: out of scope for the rule
  scratch = nullptr;
}
