/// \file test_lint.cpp
/// dqos_lint's own test coverage (DESIGN.md §9): every rule has a
/// positive fixture with a deliberate violation and a suppressed-negative
/// fixture that must lint clean. Fixtures live under
/// tests/lint/fixtures/; each states the repo-relative path it pretends
/// to live at, because rule scoping keys off the path.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"
#include "lint/rules.hpp"

namespace dqos::lintkit {
namespace {

std::string slurp(const std::string& rel) {
  const std::string path = std::string(DQOS_LINT_FIXTURE_DIR) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const Finding& f : fs) out.push_back(f.rule);
  return out;
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; })));
}

// ---------------------------------------------------------------- lexer

TEST(LintLexer, StripsCommentsAndLiteralsButKeepsLines) {
  const LexedFile lx = lex(
      "int a; // rand() inside a comment\n"
      "const char* s = \"std::chrono::steady_clock\";\n"
      "/* time() in a block\n   comment */ int b;\n");
  for (const Token& t : lx.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "steady_clock");
  }
  // `int b;` sits on line 4, after the multi-line comment.
  const auto b = std::find_if(lx.tokens.begin(), lx.tokens.end(),
                              [](const Token& t) { return t.text == "b"; });
  ASSERT_NE(b, lx.tokens.end());
  EXPECT_EQ(b->line, 4);
}

TEST(LintLexer, RawStringsAndIncludesLexAsOpaqueTokens) {
  const LexedFile lx = lex(
      "#include <unordered_map>\n"
      "auto s = R\"(for (auto& x : rand_map))\";\n");
  ASSERT_FALSE(lx.tokens.empty());
  const auto hdr =
      std::find_if(lx.tokens.begin(), lx.tokens.end(), [](const Token& t) {
        return t.kind == Token::Kind::kHeaderName;
      });
  ASSERT_NE(hdr, lx.tokens.end());
  EXPECT_EQ(hdr->text, "unordered_map");
  for (const Token& t : lx.tokens) EXPECT_NE(t.text, "rand_map");
}

TEST(LintLexer, AllowMarkerCoversSameAndNextLineOnly) {
  const LexedFile lx = lex(
      "// dqos-lint: allow(no-wallclock)\n"
      "int a;\n"
      "int b;\n");
  EXPECT_TRUE(lx.allowed("no-wallclock", 1));
  EXPECT_TRUE(lx.allowed("no-wallclock", 2));
  EXPECT_FALSE(lx.allowed("no-wallclock", 3));
  EXPECT_FALSE(lx.allowed("unordered-iteration", 1));
}

TEST(LintLexer, AllowFileMarkerCoversEveryLine) {
  const LexedFile lx = lex(
      "int a;\n"
      "// dqos-lint: allow-file(no-wallclock)\n"
      "int b;\n");
  EXPECT_TRUE(lx.allowed("no-wallclock", 1));
  EXPECT_TRUE(lx.allowed("no-wallclock", 999));
}

// ------------------------------------------------------- rule: wallclock

TEST(LintRules, WallclockFixtureFlagsHeaderIdentAndCall) {
  const auto fs = lint_source("src/core/clockish.cpp", slurp("wallclock_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "no-wallclock"), 3) << testing::PrintToString(rules_of(fs));
  std::set<int> lines;
  for (const Finding& f : fs) lines.insert(f.line);
  EXPECT_EQ(lines, (std::set<int>{4, 7, 8}));
}

TEST(LintRules, WallclockSuppressionsSilenceEveryForm) {
  const auto fs =
      lint_source("src/core/clockish_ok.cpp", slurp("wallclock_allowed.cpp"));
  EXPECT_TRUE(fs.empty()) << testing::PrintToString(rules_of(fs));
}

TEST(LintRules, WallclockAllowFileSilencesWholeBenchmark) {
  const auto fs =
      lint_source("bench/wall_timer.cpp", slurp("wallclock_allow_file.cpp"));
  EXPECT_TRUE(fs.empty()) << testing::PrintToString(rules_of(fs));
}

TEST(LintRules, RngUtilIsExemptFromWallclock) {
  const auto fs = lint_source("src/util/rng_seed.cpp", slurp("rng_exempt.cpp"));
  EXPECT_TRUE(fs.empty()) << testing::PrintToString(rules_of(fs));
}

TEST(LintRules, MemberCallNamedTimeIsNotAWallclockCall) {
  // sim.time() / clock.rand() are project methods, not libc.
  const auto fs = lint_source("src/core/x.cpp",
                              "int f(S& sim) { return sim.time() + sim->clock(); }\n");
  EXPECT_TRUE(fs.empty()) << testing::PrintToString(rules_of(fs));
}

// --------------------------------------------- rule: unordered-iteration

TEST(LintRules, UnorderedFixtureFlagsRangeForPointerSetAndBegin) {
  const auto fs =
      lint_source("src/core/flow_state.cpp", slurp("unordered_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "unordered-iteration"), 3)
      << testing::PrintToString(rules_of(fs));
  std::set<int> lines;
  for (const Finding& f : fs) lines.insert(f.line);
  EXPECT_EQ(lines, (std::set<int>{14, 15, 16}));
}

TEST(LintRules, UnorderedSuppressionAndIntKeysLintClean) {
  const auto fs = lint_source("src/core/flow_state_ok.cpp",
                              slurp("unordered_allowed.cpp"));
  EXPECT_TRUE(fs.empty()) << testing::PrintToString(rules_of(fs));
}

TEST(LintRules, CompanionHeaderContainersCarryIntoTheCpp) {
  const std::string hpp = slurp("companion.hpp");
  const std::string cpp = slurp("companion.cpp");
  // Alone, the .cpp has no container declaration in sight — clean.
  EXPECT_TRUE(lint_source("src/core/companion.cpp", cpp).empty());
  // Paired with its header, the iteration over table_ is a finding.
  const auto fs = lint_source("src/core/companion.cpp", cpp, hpp);
  ASSERT_EQ(fs.size(), 1u) << testing::PrintToString(rules_of(fs));
  EXPECT_EQ(fs[0].rule, "unordered-iteration");
  EXPECT_EQ(fs[0].line, 8);
}

TEST(LintRules, UnorderedIterationOutsideSrcIsNotSimState) {
  const auto fs =
      lint_source("tools/some_tool.cpp", slurp("unordered_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "unordered-iteration"), 0)
      << testing::PrintToString(rules_of(fs));
}

// ------------------------------------------------- rule: per-flow-map

TEST(LintRules, PerFlowMapFixtureFlagsFlowKeyedMapAndSet) {
  const auto fs =
      lint_source("src/core/flow_maps.cpp", slurp("per_flow_map_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "per-flow-map"), 2)
      << testing::PrintToString(rules_of(fs));
  std::set<int> lines;
  for (const Finding& f : fs) {
    if (f.rule == "per-flow-map") lines.insert(f.line);
  }
  EXPECT_EQ(lines, (std::set<int>{12, 13}));
}

TEST(LintRules, PerFlowMapDenseTableIntKeysAndSuppressionLintClean) {
  const auto fs = lint_source("src/core/flow_maps_ok.cpp",
                              slurp("per_flow_map_allowed.cpp"));
  EXPECT_TRUE(fs.empty()) << testing::PrintToString(rules_of(fs));
}

TEST(LintRules, PerFlowMapOutsideSrcIsNotSimState) {
  // Tests and tools may key scratch maps however they like.
  const auto fs =
      lint_source("tools/flow_tool.cpp", slurp("per_flow_map_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "per-flow-map"), 0)
      << testing::PrintToString(rules_of(fs));
}

// ------------------------------------------- rule: hot-path-type-erasure

TEST(LintRules, TypeErasureFixtureFlagsIncludeFunctionAndSharedPtr) {
  const auto fs = lint_source("src/sim/hot_callbacks.hpp",
                              slurp("type_erasure_bad.hpp"));
  EXPECT_EQ(count_rule(fs, "hot-path-type-erasure"), 3)
      << testing::PrintToString(rules_of(fs));
}

TEST(LintRules, TypeErasureIsAllowedOffTheHotPath) {
  const auto fs = lint_source("src/core/cold_callbacks.hpp",
                              slurp("type_erasure_bad.hpp"));
  EXPECT_EQ(count_rule(fs, "hot-path-type-erasure"), 0)
      << testing::PrintToString(rules_of(fs));
}

// ----------------------------------------------- rule: float-time-accum

TEST(LintRules, FloatTimeFixtureFlagsBothAccumulationForms) {
  const auto fs =
      lint_source("src/core/clock_math.cpp", slurp("float_time_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "float-time-accum"), 2)
      << testing::PrintToString(rules_of(fs));
  std::set<int> lines;
  for (const Finding& f : fs) lines.insert(f.line);
  EXPECT_EQ(lines, (std::set<int>{6, 7}));
}

TEST(LintRules, FloatTimeSuppressionLintsClean) {
  const auto fs = lint_source("src/core/clock_math_ok.cpp",
                              slurp("float_time_allowed.cpp"));
  EXPECT_TRUE(fs.empty()) << testing::PrintToString(rules_of(fs));
}

// ------------------------------------------ rule: unaudited-packet-free

TEST(LintRules, PacketFreeFixtureFlagsResetAndNullAssignment) {
  const auto fs =
      lint_source("src/host/drop_path.cpp", slurp("packet_free_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "unaudited-packet-free"), 2)
      << testing::PrintToString(rules_of(fs));
  std::set<int> lines;
  for (const Finding& f : fs) lines.insert(f.line);
  EXPECT_EQ(lines, (std::set<int>{6, 7}));
}

TEST(LintRules, PacketFreeSuppressionAndOtherPointersLintClean) {
  const auto fs =
      lint_source("src/proto/pool_ok.cpp", slurp("packet_free_allowed.cpp"));
  EXPECT_TRUE(fs.empty()) << testing::PrintToString(rules_of(fs));
}

TEST(LintRules, PacketFreeOutsideSrcIsNotSimState) {
  const auto fs =
      lint_source("tests/some_test.cpp", slurp("packet_free_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "unaudited-packet-free"), 0)
      << testing::PrintToString(rules_of(fs));
}

// ------------------------------------------------- rule: hot-path-alloc

TEST(LintLexer, HotMarkerRecordsItsLineWithWordBoundary) {
  const LexedFile lx = lex(
      "// dqos-lint: hot\n"
      "void f() {}\n"
      "// dqos-lint: hotel\n");
  EXPECT_EQ(lx.hot_marks, (std::set<int>{1}));
}

TEST(LintRules, HotAllocFixtureFlagsNewMakeUniqueAndGrowth) {
  const auto fs =
      lint_source("src/sim/drain_bad.cpp", slurp("hot_alloc_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "hot-path-alloc"), 3)
      << testing::PrintToString(rules_of(fs));
  std::set<int> lines;
  for (const Finding& f : fs) {
    if (f.rule == "hot-path-alloc") lines.insert(f.line);
  }
  EXPECT_EQ(lines, (std::set<int>{10, 11, 12}));
}

TEST(LintRules, HotAllocSuppressionAndUnmarkedFunctionsLintClean) {
  const auto fs =
      lint_source("src/sim/drain_ok.cpp", slurp("hot_alloc_allowed.cpp"));
  EXPECT_EQ(count_rule(fs, "hot-path-alloc"), 0)
      << testing::PrintToString(rules_of(fs));
}

TEST(LintRules, HotAllocIsMarkerDrivenSoItAppliesOutsideSrcToo) {
  // Unlike the directory-scoped rules, `dqos-lint: hot` is a claim the
  // author makes wherever the function lives (e.g. a header-only util).
  const auto fs =
      lint_source("tools/somewhere.cpp", slurp("hot_alloc_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "hot-path-alloc"), 3)
      << testing::PrintToString(rules_of(fs));
}

TEST(LintLexer, ShardMarkerRecordsItsLineWithWordBoundary) {
  const LexedFile lx = lex(
      "// dqos-lint: shard\n"
      "void f() {}\n"
      "// dqos-lint: sharded\n");
  EXPECT_EQ(lx.shard_marks, (std::set<int>{1}));
}

TEST(LintRules, CrossShardFixtureFlagsDirectCalendarCalls) {
  const auto fs =
      lint_source("src/switchfab/window_bad.cpp", slurp("cross_shard_bad.cpp"));
  EXPECT_EQ(count_rule(fs, "cross-shard-access"), 3)
      << testing::PrintToString(rules_of(fs));
  std::set<int> lines;
  for (const Finding& f : fs) {
    if (f.rule == "cross-shard-access") lines.insert(f.line);
  }
  // The serial-path call after the marked block closes must NOT fire.
  EXPECT_EQ(lines, (std::set<int>{8, 9, 10}));
}

TEST(LintRules, CrossShardMailboxUsageAndSuppressionLintClean) {
  const auto fs = lint_source("src/switchfab/window_ok.cpp",
                              slurp("cross_shard_allowed.cpp"));
  EXPECT_EQ(count_rule(fs, "cross-shard-access"), 0)
      << testing::PrintToString(rules_of(fs));
}

// --------------------------------------------------- tree walk + headers

TEST(LintDriver, TreeWalkFindsViolationsAndHonorsFileSuppression) {
  Options opt;
  opt.root = std::string(DQOS_LINT_FIXTURE_DIR) + "/tree";
  const auto fs = lint_tree(opt);
  ASSERT_EQ(fs.size(), 3u) << testing::PrintToString(rules_of(fs));
  // Sorted by (file, line, rule): bench/timer.cpp contributes nothing.
  EXPECT_EQ(fs[0].file, "src/core/clocky.cpp");
  EXPECT_EQ(fs[0].rule, "no-wallclock");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].file, "src/sim/hot.hpp");
  EXPECT_EQ(count_rule(fs, "hot-path-type-erasure"), 2);
}

TEST(LintDriver, HeaderStandaloneCheckSeparatesGoodFromBad) {
  Options opt;
  opt.root = std::string(DQOS_LINT_FIXTURE_DIR) + "/headers";
  opt.include_dirs = {};
  const std::string base = std::string(DQOS_LINT_FIXTURE_DIR) + "/headers/";
  EXPECT_TRUE(header_compiles(base + "self_sufficient.hpp", opt));
  EXPECT_FALSE(header_compiles(base + "leans_on_neighbor.hpp", opt));
}

// ------------------------------------------------------------- baseline

TEST(LintBaseline, RoundTripsAndGatesOnlyNewFindings) {
  const std::vector<Finding> old = {
      {"src/a.cpp", 3, "no-wallclock", "m"},
      {"src/a.cpp", 9, "no-wallclock", "m"},
      {"src/b.cpp", 1, "float-time-accum", "m"},
  };
  const std::string text = format_baseline(old);
  // Parse what format_baseline wrote, via a temp file.
  const std::string path = ::testing::TempDir() + "dqos_lint_baseline_test.txt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  const std::map<BaselineKey, int> base = load_baseline(path);
  ASSERT_EQ(base.size(), 2u);
  EXPECT_EQ(base.at({"src/a.cpp", "no-wallclock"}), 2);
  EXPECT_EQ(base.at({"src/b.cpp", "float-time-accum"}), 1);

  // Same debt -> nothing new; one extra finding in a.cpp -> exactly the
  // overflow is reported; a fresh (file, rule) pair is always new.
  EXPECT_TRUE(new_findings(old, base).empty());
  std::vector<Finding> grown = old;
  grown.push_back({"src/a.cpp", 20, "no-wallclock", "m"});
  grown.push_back({"src/c.cpp", 2, "unordered-iteration", "m"});
  const auto fresh = new_findings(grown, base);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].file, "src/a.cpp");
  EXPECT_EQ(fresh[1].file, "src/c.cpp");
}

TEST(LintBaseline, MissingBaselineFileMeansZeroAllowance) {
  const std::map<BaselineKey, int> base =
      load_baseline("/nonexistent/dqos/baseline.txt");
  EXPECT_TRUE(base.empty());
  const std::vector<Finding> fs = {{"src/a.cpp", 1, "no-wallclock", "m"}};
  EXPECT_EQ(new_findings(fs, base).size(), 1u);
}

}  // namespace
}  // namespace dqos::lintkit
